package core

import (
	"schedsearch/internal/cluster"
)

// Warm-started (incremental) search. Between consecutive decision
// points the queue typically changes by one job, so the previous
// decision's best ordering is usually still the best reachable
// schedule. WarmStart carries that ordering across decisions by job ID,
// drops departed jobs, splices arrivals in at their heuristic rank, and
// evaluates the result once against the new availability profile. The
// seed is deliberately kept OUT of the enumeration: the committed
// schedule is still the argmin over enumerated leaves, so warm and cold
// search commit bit-identical schedules at equal budget (the keystone
// differential enforces this over every suite month). What the seed
// changes is accounting and pruning: it initializes the nodes-to-best
// incumbent (Stats.NodesToBest drops to ~0 on decisions where the
// carried plan is never beaten) and, with Prune on, joins the
// branch-and-bound cutoff as soon as one enumerated schedule exists.

// warmState is the carry between decisions plus reusable scratch.
type warmState struct {
	// valid marks order as the previous decision's best ordering.
	valid bool
	// order is the carried ordering as job IDs (robust against queue
	// reordering and arrivals/departures between decisions).
	order []int

	pos  map[int]int         // scratch: job ID -> current ordered index
	seq  []int               // scratch: spliced seed as ordered indices
	undo []cluster.Placement // scratch: seed evaluation undo stack
}

// spliceCarried maps the carried ordering onto the current queue:
// survivors keep their carried relative order, departed jobs are
// dropped, and arrivals splice in at their heuristic rank. It returns
// the result as ordered indices (reusing the warm scratch), or nil
// when there is no valid carry to splice.
func (sch *Scheduler) spliceCarried(s *searchState) []int {
	w := &sch.warm
	if !w.valid || len(w.order) == 0 {
		return nil
	}
	n := len(s.ordered)
	if w.pos == nil {
		w.pos = make(map[int]int, n)
	}
	clear(w.pos)
	for oi := range s.ordered {
		w.pos[s.ordered[oi].Job.ID] = oi
	}

	// Survivors keep their carried relative order; consuming the map
	// entries as we go leaves exactly the arrivals behind.
	seq := w.seq[:0]
	for _, id := range w.order {
		if oi, ok := w.pos[id]; ok {
			seq = append(seq, oi)
			delete(w.pos, id)
		}
	}
	// Arrivals splice in at their heuristic rank (their index in the
	// branch order, clamped to the current seed length), most urgent
	// first so earlier insertions do not displace later ones.
	for oi := 0; oi < n; oi++ {
		if _, ok := w.pos[s.ordered[oi].Job.ID]; !ok {
			continue
		}
		at := oi
		if at > len(seq) {
			at = len(seq)
		}
		seq = append(seq, 0)
		copy(seq[at+1:], seq[at:])
		seq[at] = oi
	}
	w.seq = seq
	return seq
}

// seedWarm builds the warm seed for the current decision from the
// carried ordering and installs its cost as the initial incumbent. The
// search state must be freshly reset.
func (sch *Scheduler) seedWarm(s *searchState) {
	seq := sch.spliceCarried(s)
	if seq == nil {
		return
	}
	cost := s.evalOrder(seq, &sch.warm.undo)
	s.seedCost = cost
	s.seedSet = true
	s.ntbCost = cost
	s.ntbSet = true
	s.nodesToBest = 0
	sch.SearchStats.WarmDecisions++
	sch.SearchStats.WarmSeedNodes += int64(len(seq))
}

// seedClimbRef re-anchors CDDS's starting reference to the carried
// ordering (CarryClimb): the free list is relinked so branch rank 0
// follows the previous decision's climb target instead of restarting
// from the heuristic order. Unlike the warm seed — pure accounting —
// this changes which orderings the budget reaches, so the committed
// schedules legitimately differ from the restart-every-decision CDDS.
// Iteration 0 then evaluates (and may commit) the carried reference
// itself, so validity is untouched: commits are still argmin over
// enumerated, profile-checked leaves.
func (sch *Scheduler) seedClimbRef(s *searchState) {
	seq := sch.spliceCarried(s)
	if len(seq) != len(s.ordered) || len(seq) == 0 {
		return
	}
	s.relinkOrder(seq)
	sch.SearchStats.CarryDecisions++
}

// carryBest records the committed ordering for the next decision and
// updates the seed-held counter. Called after the search ran.
func (sch *Scheduler) carryBest(s *searchState) {
	if s.seedSet && s.bestFound && !s.bestCost.Less(s.seedCost) {
		sch.SearchStats.WarmSeedHeld++
	}
	w := &sch.warm
	w.order = w.order[:0]
	for _, oi := range s.bestPath {
		w.order = append(w.order, s.ordered[oi].Job.ID)
	}
	w.valid = len(w.order) == len(s.ordered) && len(w.order) > 0
}

// evalOrder scores one complete ordering (ordered indices) against the
// decision profile, restoring the profile before returning. Placements
// are charged to the caller (Stats.WarmSeedNodes), not to s.nodes: the
// seed is not part of the enumerated tree.
func (s *searchState) evalOrder(order []int, undo *[]cluster.Placement) Cost {
	var total Cost
	u := (*undo)[:0]
	for _, oi := range order {
		w := s.ordered[oi]
		est := w.Estimate
		if est < 1 {
			est = 1
		}
		start, pl := s.prof.PlaceEarliest(s.now, w.Job.Nodes, est)
		u = append(u, pl)
		total = total.Add(s.cost(w, start, s.now, s.bound))
	}
	for i := len(u) - 1; i >= 0; i-- {
		s.prof.Undo(u[i])
	}
	*undo = u
	return total
}
