package core

import (
	"testing"
	"testing/quick"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func TestCostLess(t *testing.T) {
	cases := []struct {
		a, b Cost
		want bool
	}{
		{Cost{0, 5}, Cost{1, 0}, true},                 // lower excess wins regardless of slowdown
		{Cost{1, 0}, Cost{0, 5}, false},                //
		{Cost{2, 3}, Cost{2, 4}, true},                 // tie on excess: lower slowdown wins
		{Cost{2, 4}, Cost{2, 3}, false},                //
		{Cost{2, 3}, Cost{2, 3}, false},                // equal is not less
		{Cost{2, 3}, Cost{2.0000000000001, 3.1}, true}, // epsilon tie on level 0
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCostLessIsStrictOrder(t *testing.T) {
	// Irreflexivity and asymmetry over random costs.
	prop := func(a0, a1, b0, b1 float64) bool {
		a, b := Cost{a0, a1}, Cost{b0, b1}
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostAddSub(t *testing.T) {
	a, b := Cost{1, 2}, Cost{3, 4}
	if got := a.Add(b); got != (Cost{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Cost{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
}

func waiting(id int, submit job.Time, nodes int, est job.Duration) sim.WaitingJob {
	return sim.WaitingJob{
		Job:      job.Job{ID: id, Submit: submit, Nodes: nodes, Runtime: est, Request: est},
		Estimate: est,
	}
}

func TestHierarchicalCost(t *testing.T) {
	w := waiting(1, 0, 1, 3600)
	// Started at t=7200 with bound 3600: one hour of excess.
	c := HierarchicalCost(w, 7200, 7200, 3600)
	if c[0] != 3600 {
		t.Errorf("excess = %v, want 3600", c[0])
	}
	// Bounded slowdown: (wait + rt)/rt = (7200+3600)/3600 = 3.
	if c[1] != 3 {
		t.Errorf("bsld = %v, want 3", c[1])
	}
	// Within the bound: zero excess.
	c = HierarchicalCost(w, 3000, 3000, 3600)
	if c[0] != 0 {
		t.Errorf("excess = %v, want 0", c[0])
	}
}

func TestHierarchicalCostShortJobFloor(t *testing.T) {
	// A 10-second job uses the 1-minute floor: bsld = 1 + wait/60s.
	w := waiting(1, 0, 1, 10)
	c := HierarchicalCost(w, 120, 120, 1<<40)
	want := float64(120+60) / 60
	if c[1] != want {
		t.Errorf("bsld = %v, want %v", c[1], want)
	}
}

func TestRuntimeScaledCost(t *testing.T) {
	fn := RuntimeScaledCost(2.0, 600)
	// Short job (est 300s): bound = max(600, 2*300) = 600, tighter than
	// the global bound of 7200.
	w := waiting(1, 0, 1, 300)
	c := fn(w, 1000, 1000, 7200)
	if c[0] != 400 { // wait 1000 - bound 600
		t.Errorf("scaled excess = %v, want 400", c[0])
	}
	// Long job (est 10000s): 2*est = 20000 > global bound 7200, so the
	// global bound applies.
	w2 := waiting(2, 0, 1, 10000)
	c2 := fn(w2, 8000, 8000, 7200)
	if c2[0] != 800 {
		t.Errorf("long-job excess = %v, want 800", c2[0])
	}
}

func TestBoundSpecAt(t *testing.T) {
	fixed := FixedBound(100 * job.Hour)
	snap := &sim.Snapshot{Now: 5000}
	snap.Queue = []sim.WaitingJob{waiting(1, 2000, 1, 60), waiting(2, 4000, 1, 60)}
	if got := fixed.At(snap); got != 100*job.Hour {
		t.Errorf("fixed bound = %d", got)
	}
	dyn := DynamicBound()
	if got := dyn.At(snap); got != 3000 {
		t.Errorf("dynamic bound = %d, want 3000 (longest current wait)", got)
	}
	// Empty queue: dynamic bound is zero.
	if got := dyn.At(&sim.Snapshot{Now: 5000}); got != 0 {
		t.Errorf("dynamic bound on empty queue = %d, want 0", got)
	}
}

func TestBoundSpecString(t *testing.T) {
	if got := DynamicBound().String(); got != "dynB" {
		t.Errorf("String = %q", got)
	}
	if got := FixedBound(50 * job.Hour).String(); got != "fixB=50h" {
		t.Errorf("String = %q", got)
	}
}

// TestDynamicBoundProtectsLongestWaiter: under dynB, the schedule that
// starts the longest-waiting job now always beats one that delays it,
// all else equal — the mechanism that bounds maximum wait.
func TestDynamicBoundProtectsLongestWaiter(t *testing.T) {
	// Machine with 2 free nodes; an old 2-node job and two fresh 1-node
	// jobs. Starting both fresh jobs now fills the machine and delays
	// the old job past its (dynamic) bound; the search should start the
	// old job instead.
	now := job.Time(100 * 3600)
	old := waiting(1, now-50*3600, 2, 10*3600) // waited 50h
	f1 := waiting(2, now-60, 1, 10*3600)
	f2 := waiting(3, now-30, 1, 10*3600)
	snap := &sim.Snapshot{Now: now, Capacity: 2, FreeNodes: 2,
		Queue: []sim.WaitingJob{old, f1, f2}}
	for i := range snap.Queue {
		snap.Queue[i].QueuePos = i
	}
	sch := New(DDS, HeuristicLXF, DynamicBound(), 10000)
	starts := sch.Decide(snap)
	if len(starts) != 1 || starts[0] != 0 {
		t.Errorf("Decide = %v, want [0] (start the 50h-old 2-node job)", starts)
	}
}
