// Package core implements the paper's contribution: goal-oriented,
// search-based on-line job scheduling. At each decision point the
// scheduler explores the tree of waiting-queue orderings with a complete
// discrepancy-based search algorithm (LDS or DDS), evaluates each
// complete ordering against a hierarchical objective — minimize total
// excessive wait, then minimize average bounded slowdown — under a
// node-visit budget L, and commits the job starts of the best schedule
// found.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Cost is an additive, lexicographically ordered objective value for one
// schedule. Level 0 is the paper's first-level goal (total excessive
// wait, in seconds); level 1 is the second-level goal (sum of bounded
// slowdowns — equivalent to the average, since every schedule at a
// decision point covers the same job set). Lower is better.
type Cost [2]float64

// Add returns the element-wise sum.
func (c Cost) Add(o Cost) Cost { return Cost{c[0] + o[0], c[1] + o[1]} }

// Sub returns the element-wise difference.
func (c Cost) Sub(o Cost) Cost { return Cost{c[0] - o[0], c[1] - o[1]} }

// Less compares lexicographically with a small absolute epsilon per
// level, implementing the paper's "schedule A is better than B" rule.
func (c Cost) Less(o Cost) bool {
	const eps = 1e-9
	if c[0] < o[0]-eps {
		return true
	}
	if c[0] > o[0]+eps {
		return false
	}
	return c[1] < o[1]-eps
}

// CostFn scores the placement of one waiting job at a given start time.
// The total cost of a schedule is the sum over its jobs. bound is the
// target wait bound active at this decision point.
type CostFn func(w sim.WaitingJob, start, now job.Time, bound job.Duration) Cost

// HierarchicalCost is the paper's objective: level 0 accumulates the
// job's wait in excess of the bound (seconds), level 1 accumulates the
// job's bounded slowdown computed with the runtime estimate the
// scheduler sees.
func HierarchicalCost(w sim.WaitingJob, start, now job.Time, bound job.Duration) Cost {
	excess := (start - w.Job.Submit) - bound
	if excess < 0 {
		excess = 0
	}
	return Cost{
		float64(excess),
		job.BoundedSlowdownAt(w.Job.Submit, w.Estimate, start),
	}
}

// RuntimeScaledCost is the paper's future-work variant: the target wait
// bound is scaled per job as a function of its runtime estimate, so
// short jobs are held to tighter wait bounds. A job with estimate e gets
// the bound min(bound, max(MinBound, Factor×e)).
func RuntimeScaledCost(factor float64, minBound job.Duration) CostFn {
	return func(w sim.WaitingJob, start, now job.Time, bound job.Duration) Cost {
		b := job.Duration(factor * float64(w.Estimate))
		if b < minBound {
			b = minBound
		}
		if b > bound {
			b = bound
		}
		return HierarchicalCost(w, start, now, b)
	}
}

// BoundSpec selects the target wait bound of the first-level goal.
type BoundSpec struct {
	// Dynamic selects the paper's dynB bound: the wait time of the
	// currently longest-waiting job in the queue. When false, the fixed
	// bound Omega is used.
	Dynamic bool
	// Omega is the fixed target wait bound ω (ignored when Dynamic).
	Omega job.Duration
}

// FixedBound returns a fixed target wait bound of ω.
func FixedBound(omega job.Duration) BoundSpec { return BoundSpec{Omega: omega} }

// DynamicBound returns the paper's dynB bound.
func DynamicBound() BoundSpec { return BoundSpec{Dynamic: true} }

// At resolves the bound for a decision point.
func (b BoundSpec) At(snap *sim.Snapshot) job.Duration {
	if !b.Dynamic {
		return b.Omega
	}
	var longest job.Duration
	for _, w := range snap.Queue {
		if wait := snap.Now - w.Job.Submit; wait > longest {
			longest = wait
		}
	}
	return longest
}

// String names the bound in policy names ("dynB", "fixB=100h"). Fixed
// bounds render losslessly in the largest whole unit: whole hours as
// "fixB=100h", whole minutes as "fixB=30m", anything else in seconds
// ("fixB=90s"), so ParseBound(b.String()) always round-trips.
func (b BoundSpec) String() string {
	if b.Dynamic {
		return "dynB"
	}
	switch {
	case b.Omega%job.Hour == 0:
		return fmt.Sprintf("fixB=%dh", b.Omega/job.Hour)
	case b.Omega%job.Minute == 0:
		return fmt.Sprintf("fixB=%dm", b.Omega/job.Minute)
	default:
		return fmt.Sprintf("fixB=%ds", b.Omega)
	}
}

// ParseBound parses the bound component of a policy name: "dynB", or a
// fixed bound as a non-negative integer with an h/m/s unit suffix
// ("100h", "30m", "90s"), optionally in the canonical "fixB=" spelling
// BoundSpec.String emits ("fixB=100h"). Trailing characters are
// rejected: "100h30" is an error, not 100 hours.
func ParseBound(s string) (BoundSpec, error) {
	if s == "dynB" {
		return DynamicBound(), nil
	}
	spec := strings.TrimPrefix(s, "fixB=")
	if len(spec) < 2 {
		return BoundSpec{}, fmt.Errorf("core: bound %q: want dynB or a fixed bound like 100h, 30m or 90s", s)
	}
	var unit job.Duration
	switch spec[len(spec)-1] {
	case 'h':
		unit = job.Hour
	case 'm':
		unit = job.Minute
	case 's':
		unit = 1
	default:
		return BoundSpec{}, fmt.Errorf("core: bound %q: want dynB or a fixed bound like 100h, 30m or 90s", s)
	}
	digits := spec[:len(spec)-1]
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || n < 0 || n > int64(1)<<62/int64(unit) {
		// The upper limit rejects magnitudes whose seconds conversion
		// would overflow into a negative bound.
		return BoundSpec{}, fmt.Errorf("core: bound %q: want dynB or a fixed bound like 100h, 30m or 90s", s)
	}
	return FixedBound(job.Duration(n) * unit), nil
}
