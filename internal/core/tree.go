package core

// TreeSize describes the search tree over orderings of n waiting jobs
// (Figure 1(d) of the paper): n! complete paths and sum_{k=1..n}
// n!/(n-k)! tree nodes excluding the root.
type TreeSize struct {
	Jobs  int
	Paths int64
	Nodes int64
}

// MaxTreeSizeJobs is the largest n whose node count fits in int64
// comfortably with this formula (the paper tabulates up to n = 15; the
// int64 limit is n = 20).
const MaxTreeSizeJobs = 20

// SizeOfTree returns the exact tree size for n waiting jobs. It panics
// if n is negative or larger than MaxTreeSizeJobs.
func SizeOfTree(n int) TreeSize {
	if n < 0 || n > MaxTreeSizeJobs {
		panic("core: SizeOfTree out of range")
	}
	// paths = n!; nodes = n + n(n-1) + ... + n! (one term per depth).
	var paths int64 = 1
	var nodes int64
	var partial int64 = 1
	for k := 1; k <= n; k++ {
		paths *= int64(k)
		partial *= int64(n - k + 1) // n, n(n-1), ...
		nodes += partial
	}
	return TreeSize{Jobs: n, Paths: paths, Nodes: nodes}
}

// CountLDSPaths returns the number of complete paths containing exactly
// k discrepancies in a tree of n jobs, where choosing any non-leftmost
// branch at a level counts as one discrepancy. Level i (0-based) has
// n-i branches, so it contributes a factor of (n-i-1) non-leftmost
// choices if a discrepancy is placed there. The count is therefore the
// elementary symmetric polynomial e_k(n-1, n-2, ..., 1).
func CountLDSPaths(n, k int) int64 {
	if k < 0 || k > n-1 {
		if k == 0 && n >= 0 {
			return 1
		}
		return 0
	}
	// dp over levels: dp[j] = #ways to place j discrepancies so far.
	dp := make([]int64, k+1)
	dp[0] = 1
	for level := 0; level < n; level++ {
		choices := int64(n - level - 1) // non-leftmost branches at this level
		if choices <= 0 {
			continue
		}
		for j := k; j >= 1; j-- {
			dp[j] += dp[j-1] * choices
		}
	}
	return dp[k]
}

// CountDDSPaths returns the number of complete paths explored by DDS
// iteration i in a tree of n jobs: free branching above depth i, a
// forced discrepancy at depth i, and heuristic-only branching below.
// Iteration 0 explores exactly the heuristic path.
func CountDDSPaths(n, i int) int64 {
	if n <= 0 {
		return 0
	}
	if i == 0 {
		return 1
	}
	if i < 0 || i > n-1 {
		return 0
	}
	// Levels 0..i-2 free: product of branch counts n, n-1, ...;
	// level i-1 forced discrepancy: n-i choices... branch count at
	// level l is n-l, so discrepancies at level i-1 number n-(i-1)-1 =
	// n-i.
	var paths int64 = 1
	for l := 0; l <= i-2; l++ {
		paths *= int64(n - l)
	}
	return paths * int64(n-i)
}
