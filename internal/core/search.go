package core

import (
	"fmt"
	"time"

	"schedsearch/internal/cluster"
	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Algorithm selects the complete search algorithm.
type Algorithm int

const (
	// LDS is limited discrepancy search (Harvey & Ginsberg 1995, with
	// Korf's exact-k iteration improvement): iteration k explores all
	// paths containing exactly k discrepancies, fewest first.
	LDS Algorithm = iota
	// DDS is depth-bounded discrepancy search (Walsh 1997): iteration
	// i explores paths whose deepest discrepancy is exactly at depth i,
	// with free branching above, biasing search toward discrepancies
	// high in the tree.
	DDS
	// DFS is plain chronological depth-first enumeration — the naive
	// baseline: within a budget it only ever varies the END of the
	// heuristic schedule, which is why the paper uses discrepancy
	// search instead (demonstrated by the ext-dfs experiment).
	DFS
	// ADDS is adjacent depth-bounded discrepancy search (the
	// depth-bounded member of Lahimer, Lopez & Haouari's adjacent
	// family): DDS with every discrepancy restricted to the branch
	// adjacent to the heuristic one, so iteration i explores the
	// orderings whose per-level branch rank is at most 1 with the
	// deepest rank-1 choice exactly at level i-1. The restricted tree
	// holds 2^(n-1) leaves instead of n!, concentrating the budget on
	// near-heuristic orderings.
	ADDS
	// CDDS is climbing ADDS: the reference ordering the discrepancies
	// are taken against starts as the heuristic order and is re-anchored
	// to the incumbent whenever a sweep improves it, restarting the
	// sweep from the shallowest discrepancy. The search ends at a local
	// optimum of the adjacent neighborhood (or on budget).
	CDDS
)

// String returns the paper's tag for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case LDS:
		return "LDS"
	case DDS:
		return "DDS"
	case DFS:
		return "DFS"
	case ADDS:
		return "ADDS"
	case CDDS:
		return "CDDS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Heuristic selects the branching heuristic that orders the branches at
// every search-tree node (the left-most branch follows the heuristic;
// every other branch is a discrepancy).
type Heuristic int

const (
	// HeuristicFCFS orders jobs by arrival (first come first served).
	HeuristicFCFS Heuristic = iota
	// HeuristicLXF orders jobs by largest current bounded slowdown
	// first.
	HeuristicLXF
)

// String returns the paper's tag for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeuristicFCFS:
		return "fcfs"
	case HeuristicLXF:
		return "lxf"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Stats aggregates search effort over a simulation run.
type Stats struct {
	// Decisions counts decision points where a search ran.
	Decisions int
	// Nodes counts search-tree nodes visited (job placements).
	Nodes int64
	// Leaves counts complete schedules evaluated.
	Leaves int64
	// Exhausted counts decisions where the whole tree was enumerated
	// within the budget.
	Exhausted int
	// BudgetHits counts decisions cut off by the node limit.
	BudgetHits int
	// Pruned counts subtrees cut by branch-and-bound (zero unless
	// Prune is enabled).
	Pruned int64
	// WallNs is the total wall-clock time spent searching, in
	// nanoseconds, across all decisions.
	WallNs int64
	// BusyNs is the summed per-worker search time in nanoseconds. For
	// sequential search it equals WallNs; for parallel search the ratio
	// BusyNs/WallNs is the effective parallelism (see Speedup).
	BusyNs int64
	// NodesToBest sums, over decisions, the node count at which the
	// search last improved its incumbent (the warm seed counts as the
	// initial incumbent when WarmStart is on, at zero nodes). Lower
	// means the best schedule was in hand earlier; NodesToBest/Decisions
	// is the average search effort actually needed per decision.
	NodesToBest int64
	// WarmDecisions counts decisions seeded from a carried ordering;
	// WarmSeedNodes counts the job placements spent evaluating those
	// seeds (charged separately from Nodes — the seed is not part of the
	// enumerated tree); WarmSeedHeld counts warm decisions where no
	// enumerated schedule beat the seed's cost.
	WarmDecisions int
	WarmSeedNodes int64
	WarmSeedHeld  int
	// CarryDecisions counts decisions where CDDS started from a carried
	// climbing reference instead of the heuristic order (CarryClimb).
	CarryDecisions int
	// EffectiveLimit is the node budget applied at the most recent
	// decision and EffectiveLimitSum its total across decisions
	// (EffectiveLimitSum/Decisions is the average effective L). Both
	// track NodeLimit unless an SLO adapts the budget per decision.
	EffectiveLimit    int
	EffectiveLimitSum int64
}

// Speedup returns the effective search parallelism: summed worker busy
// time over wall time. It is 1.0 for sequential runs and approaches the
// worker count when the parallel search scales.
func (st Stats) Speedup() float64 {
	if st.WallNs <= 0 || st.BusyNs <= 0 {
		return 1
	}
	return float64(st.BusyNs) / float64(st.WallNs)
}

// AutoWorkers selects one search worker per available CPU (GOMAXPROCS)
// when assigned to Scheduler.Workers.
const AutoWorkers = -1

// Scheduler is the search-based scheduling policy (sim.Policy). The
// zero value is not valid; use New or populate all fields.
type Scheduler struct {
	Algorithm Algorithm
	Heuristic Heuristic
	Bound     BoundSpec
	// NodeLimit is L, the maximum search-tree nodes visited per
	// decision point. The heuristic (iteration-0) schedule is always
	// completed even if it alone exceeds the limit, so the policy can
	// always commit a schedule.
	NodeLimit int
	// Workers selects search parallelism across discrepancy iterations:
	// 0 or 1 runs the sequential search; AutoWorkers (-1) uses one
	// worker per CPU (GOMAXPROCS); any other positive value is used as
	// given (values above GOMAXPROCS add no speed but remain
	// deterministic). Parallel search commits the same schedules as
	// sequential search: iterations carry deterministic node-budget
	// shards and the merge prefers lowest cost, then lowest iteration.
	// DFS and Prune runs are always sequential.
	Workers int
	// Cost scores job placements; nil means the paper's
	// HierarchicalCost.
	Cost CostFn
	// Prune enables branch-and-bound pruning (the paper's future-work
	// suggestion): a subtree is cut as soon as the partial schedule's
	// cost is already no better than the best complete schedule, which
	// is admissible because per-job costs are non-negative and
	// additive. Custom Cost functions returning negative components
	// must leave this off. Off by default (paper-faithful search).
	Prune bool
	// WarmStart makes Decide incremental: the previous decision's best
	// ordering is carried across decision points (departed jobs
	// dropped, arrivals spliced in at their heuristic rank), evaluated
	// once against the new profile, and installed as the initial
	// incumbent. The seed never enters the enumeration and is never
	// committable, so warm-started search commits bit-identical
	// schedules to cold search at equal budget; what it buys is
	// NodesToBest (the seed usually already is the best reachable
	// schedule, so the effort needed to re-find it drops to ~zero) and,
	// with Prune on, a bound that is tight from the first enumerated
	// leaf onward.
	WarmStart bool
	// CarryClimb makes CDDS carry its climbing reference across
	// decision points: instead of restarting each decision's sweep from
	// the heuristic order, the previous decision's final climb target
	// (departed jobs dropped, arrivals spliced at their heuristic rank)
	// becomes the new reference ordering. Unlike WarmStart this is NOT
	// inert — the reference determines which orderings the budget
	// reaches, so committed schedules legitimately differ from the
	// restart variant (commits remain valid: still the argmin over
	// enumerated, profile-verified leaves; the carry differential pins
	// this). Ignored by every algorithm except CDDS, and not encoded in
	// Name (like Workers/WarmStart, it tunes how the named policy
	// searches, not what it optimizes).
	CarryClimb bool
	// SLO, when positive, makes the node budget adaptive: an
	// exponentially weighted average of the observed ns/node converts
	// the per-decision latency target into an effective NodeLimit for
	// each decision (clamped to [1, 1<<30]; the first decision, with no
	// rate observed yet, uses NodeLimit). Stats.EffectiveLimit records
	// the result. Adaptive budgets depend on wall-clock measurements,
	// so runs with an SLO are NOT bit-reproducible across machines or
	// runs — leave it zero where determinism matters.
	SLO time.Duration

	// SearchStats accumulates effort counters across the run.
	SearchStats Stats

	lastPlan     []PlannedStart
	lastDecision DecisionSummary
	startsBuf    []int
	s            searchState // reusable scratch (sequential search + merge target)
	warm         warmState   // WarmStart carry + scratch
	nsPerNode    float64     // EWMA of observed search pace (SLO budget)

	// Parallel-search scratch, reused across decisions.
	wstates []*searchState
	tasks   []iterTask
	results []iterResult
	shard   shardScratch
}

// New returns a search-based scheduler; the paper's best policy is
// New(DDS, HeuristicLXF, DynamicBound(), 1000).
func New(algo Algorithm, h Heuristic, bound BoundSpec, nodeLimit int) *Scheduler {
	return &Scheduler{Algorithm: algo, Heuristic: h, Bound: bound, NodeLimit: nodeLimit}
}

// Name implements sim.Policy, producing the paper's naming scheme, e.g.
// "DDS/lxf/dynB".
func (sch *Scheduler) Name() string {
	return fmt.Sprintf("%s/%s/%s", sch.Algorithm, sch.Heuristic, sch.Bound)
}

// maxAdaptiveLimit caps the node budget an SLO can grant per decision.
const maxAdaptiveLimit = 1 << 30

// effectiveLimit resolves the node budget for the next decision: the
// configured NodeLimit, or — with an SLO set and a pace estimate in
// hand — the node count the latency target buys at the observed pace.
func (sch *Scheduler) effectiveLimit() int {
	limit := sch.NodeLimit
	if limit < 1 {
		limit = 1
	}
	if sch.SLO > 0 && sch.nsPerNode > 0 {
		l := float64(sch.SLO.Nanoseconds()) / sch.nsPerNode
		switch {
		case l < 1:
			limit = 1
		case l > maxAdaptiveLimit:
			limit = maxAdaptiveLimit
		default:
			limit = int(l)
		}
	}
	return limit
}

// observePace folds one decision's measured ns/node into the EWMA the
// SLO budget converts from (alpha 0.2: a few decisions to adapt, stable
// against one slow decision).
func (sch *Scheduler) observePace(wallNs, nodes int64) {
	if wallNs <= 0 || nodes <= 0 {
		return
	}
	obs := float64(wallNs) / float64(nodes)
	if sch.nsPerNode <= 0 {
		sch.nsPerNode = obs
		return
	}
	sch.nsPerNode += 0.2 * (obs - sch.nsPerNode)
}

// Decide implements sim.Policy. The returned slice is reused by the
// next Decide.
func (sch *Scheduler) Decide(snap *sim.Snapshot) []int {
	n := len(snap.Queue)
	if n == 0 {
		// Nothing to schedule — and nothing from the previous decision
		// is still planned, so LastPlan/LastCost must not report stale
		// data and the warm carry has no survivors.
		sch.lastPlan = sch.lastPlan[:0]
		sch.s.bestCost = Cost{}
		sch.s.bestFound = false
		sch.warm.valid = false
		sch.lastDecision = DecisionSummary{Trajectory: sch.lastDecision.Trajectory[:0]}
		return nil
	}
	cost := sch.Cost
	if cost == nil {
		cost = HierarchicalCost
	}
	limit := sch.effectiveLimit()
	sch.SearchStats.EffectiveLimit = limit
	sch.SearchStats.EffectiveLimitSum += int64(limit)

	t0 := time.Now()
	s := &sch.s
	s.reset(snap, sch.Heuristic, sch.Bound.At(snap), cost, limit)
	s.prune = sch.Prune
	if sch.WarmStart {
		sch.seedWarm(s)
	}
	carry := sch.CarryClimb && sch.Algorithm == CDDS
	if carry {
		sch.seedClimbRef(s)
	}
	// The incumbent-improvement log feeds LastDecision's cost
	// trajectory (flight recorder). Recording is strictly passive: leaf
	// and the parallel merge append to a reused slice exactly at the
	// improvements they already track, so enabling it unconditionally
	// cannot perturb the search (the inertness differentials pin this).
	s.recordImprov = true
	parallel := false
	if workers := sch.parallelWorkers(n); workers > 1 {
		parallel = sch.runParallel(snap, workers)
	}
	if !parallel {
		s.memoRecord = true // iteration 0 records the heuristic-path starts
		switch sch.Algorithm {
		case LDS:
			s.runLDS()
		case DDS:
			s.runDDS()
		case DFS:
			s.memoRecord = false // no iteration structure to replay against
			s.runDFS(0)
		case ADDS:
			s.runADDS()
		case CDDS:
			s.runCDDS()
		default:
			panic(fmt.Sprintf("core: unknown algorithm %d", sch.Algorithm))
		}
	}
	wall := time.Since(t0).Nanoseconds()
	sch.observePace(wall, s.nodes)

	sch.SearchStats.Decisions++
	sch.SearchStats.Nodes += s.nodes
	sch.SearchStats.Leaves += s.leaves
	sch.SearchStats.Pruned += s.pruned
	sch.SearchStats.WallNs += wall
	sch.SearchStats.NodesToBest += s.nodesToBest
	if !parallel {
		sch.SearchStats.BusyNs += wall
	}
	if s.aborted {
		sch.SearchStats.BudgetHits++
	} else {
		sch.SearchStats.Exhausted++
	}
	if sch.WarmStart || carry {
		sch.carryBest(s)
	}

	traj := sch.lastDecision.Trajectory[:0]
	for _, im := range s.improv {
		traj = append(traj, CostPoint{Nodes: im.nodes, Cost: im.cost})
	}
	sch.lastDecision = DecisionSummary{
		QueueDepth:     n,
		EffectiveLimit: int64(limit),
		Nodes:          s.nodes,
		Leaves:         s.leaves,
		Pruned:         s.pruned,
		NodesToBest:    s.nodesToBest,
		BudgetHit:      s.aborted,
		WarmSeeded:     s.seedSet,
		SeedHeld:       s.seedSet && s.bestFound && !s.bestCost.Less(s.seedCost),
		Parallel:       parallel,
		BestFound:      s.bestFound,
		BestCost:       s.bestCost,
		Trajectory:     traj,
	}

	starts := sch.startsBuf[:0]
	sch.lastPlan = sch.lastPlan[:0]
	for oi, now := range s.bestStartNow {
		if now {
			starts = append(starts, s.ordered[oi].QueuePos)
		}
		sch.lastPlan = append(sch.lastPlan, PlannedStart{
			JobID:   s.ordered[oi].Job.ID,
			User:    s.ordered[oi].Job.User,
			Nodes:   s.ordered[oi].Job.Nodes,
			Planned: s.bestStart[oi],
		})
	}
	sch.startsBuf = starts
	return starts
}

// PlannedStart is one queued job's planned start time under the best
// schedule found at the most recent decision — the "estimated start
// time" a production scheduler would show users. Plans are advisory:
// they are recomputed (and typically improve) at every later decision.
type PlannedStart struct {
	JobID   int
	User    int
	Nodes   int
	Planned job.Time
}

// LastPlan returns the planned start of every job queued at the most
// recent decision, in the heuristic's branch order. The slice is reused
// by the next Decide.
func (sch *Scheduler) LastPlan() []PlannedStart { return sch.lastPlan }

// LastCost returns the objective value of the schedule committed at the
// most recent decision.
func (sch *Scheduler) LastCost() Cost { return sch.s.bestCost }

// CostPoint is one incumbent improvement during a decision's search:
// after Nodes placements the incumbent cost dropped to Cost.
type CostPoint struct {
	Nodes int64
	Cost  Cost
}

// DecisionSummary describes the most recent Decide call for the
// observability layer (the engine's decision flight recorder). It is
// assembled from state the search already tracks; producing it never
// perturbs a decision.
type DecisionSummary struct {
	QueueDepth     int
	EffectiveLimit int64
	Nodes          int64
	Leaves         int64
	Pruned         int64
	NodesToBest    int64
	BudgetHit      bool
	WarmSeeded     bool
	SeedHeld       bool
	Parallel       bool
	BestFound      bool
	BestCost       Cost
	Trajectory     []CostPoint
}

// LastDecision returns the summary of the most recent decision. The
// Trajectory slice is reused by the next Decide.
func (sch *Scheduler) LastDecision() DecisionSummary { return sch.lastDecision }

// searchState holds the per-decision search machinery; it is reused
// across decisions (and per worker, across iterations) to avoid
// allocation churn.
type searchState struct {
	now   job.Time
	bound job.Duration
	cost  CostFn
	// limit is the node budget for this state's run; parallel workers
	// receive per-iteration shards here (possibly unbounded).
	limit  int64
	nodes  int64
	leaves int64

	prof      *cluster.Profile
	ordered   []sim.WaitingJob // heuristic branch order
	orderKeys []float64        // scratch: precomputed heuristic sort keys

	// Unused jobs form a doubly-linked free list over ordered indices,
	// so enumerating and claiming the b-th unused job is O(1) instead
	// of an O(n) scan per node visit. Unlinking keeps the removed
	// entry's own pointers intact (dancing links), so LIFO relinking on
	// backtrack is O(1) too.
	freeHead int
	freeNext []int
	freePrev []int

	curCost      Cost
	curPath      []int // ordered indices along the current partial path
	curStartNow  []bool
	curStart     []job.Time // planned start per ordered index (current path)
	bestCost     Cost
	bestStartNow []bool
	bestStart    []job.Time // planned start per ordered index (best schedule)
	bestPath     []int      // ordered indices of the best complete schedule
	bestFound    bool
	aborted      bool
	prune        bool
	pruned       int64
	// hardBudget makes overBudget ignore bestFound: parallel workers on
	// iterations > 0 abort purely on their node shard, because in the
	// equivalent sequential run the iteration-0 schedule already exists.
	hardBudget bool

	// Warm seed: the carried ordering's cost, installed before the
	// search runs. The seed is never committable — it only initializes
	// the nodes-to-best incumbent and, with prune on, tightens the
	// branch-and-bound bound once an enumerated schedule exists.
	seedCost Cost
	seedSet  bool

	// Nodes-to-best incumbent: strictly tighter than bestCost when the
	// warm seed is better than anything enumerated. nodesToBest is the
	// node counter at the incumbent's last improvement (0 when the seed
	// was never beaten).
	ntbCost     Cost
	ntbSet      bool
	nodesToBest int64
	// recordImprov makes leaf() log every incumbent improvement
	// (parallel workers only; the merge threads the global incumbent
	// through the per-iteration logs to reproduce the sequential
	// nodesToBest exactly).
	recordImprov bool
	improv       []improvement

	// Memo of the current reference path's placements, keyed on the
	// surviving ordered prefix: while the partial path matches
	// memoPath, each level's start time is known from iteration 0 (or,
	// for CDDS, the last climb target), so visit skips the EarliestFit
	// scan and places directly. Sound because an identical placement
	// prefix yields an identical profile, hence an identical earliest
	// fit; bit-identical by construction.
	memoPath    []int
	memoStart   []job.Time
	memoMatched int // length of the curPath prefix matching memoPath
	memoRecord  bool

	// leafHook, when set (tests only), observes every complete path in
	// exploration order.
	leafHook func(path []int, cost Cost)
}

// improvement is one incumbent improvement inside a single iteration:
// the cost reached and the iteration-local node counter at that leaf.
type improvement struct {
	cost  Cost
	nodes int64
}

func (s *searchState) reset(snap *sim.Snapshot, h Heuristic, bound job.Duration, cost CostFn, limit int) {
	s.now = snap.Now
	s.bound = bound
	s.cost = cost
	s.limit = int64(limit)
	s.prune = false
	s.hardBudget = false

	s.ordered = append(s.ordered[:0], snap.Queue...)
	s.orderKeys = orderJobs(s.ordered, h, snap.Now, s.orderKeys)

	s.resetSearch()
	s.resetProfile(snap)
}

// resetWorker prepares a parallel worker state from the master state:
// same decision parameters and branch order, its own profile copy.
func (s *searchState) resetWorker(snap *sim.Snapshot, master *searchState) {
	s.now = master.now
	s.bound = master.bound
	s.cost = master.cost
	s.limit = master.limit
	s.prune = false
	s.hardBudget = false
	s.leafHook = nil

	s.ordered = append(s.ordered[:0], master.ordered...)

	s.resetSearch()
	s.resetProfile(snap)
}

// resetSearch reinitializes the per-run search buffers (free list,
// path, best/current schedules) for the current ordered set.
func (s *searchState) resetSearch() {
	n := len(s.ordered)
	s.nodes = 0
	s.leaves = 0
	s.pruned = 0
	s.bestFound = false
	s.aborted = false
	s.curCost = Cost{}
	s.seedSet = false
	s.ntbSet = false
	s.nodesToBest = 0
	s.recordImprov = false
	s.improv = s.improv[:0]
	s.memoPath = s.memoPath[:0]
	s.memoStart = s.memoStart[:0]
	s.memoMatched = 0
	s.memoRecord = false

	s.freeNext = resizeInts(s.freeNext, n)
	s.freePrev = resizeInts(s.freePrev, n)
	for i := 0; i < n; i++ {
		s.freeNext[i] = i + 1
		s.freePrev[i] = i - 1
	}
	if n > 0 {
		s.freeNext[n-1] = -1
		s.freeHead = 0
	} else {
		s.freeHead = -1
	}

	s.curStartNow = resizeBool(s.curStartNow, n)
	s.bestStartNow = resizeBool(s.bestStartNow, n)
	s.curStart = resizeTimes(s.curStart, n)
	s.bestStart = resizeTimes(s.bestStart, n)
	s.curPath = s.curPath[:0]
}

// resetProfile rebuilds the availability profile from the running jobs'
// predicted ends, reusing the profile storage across decisions.
func (s *searchState) resetProfile(snap *sim.Snapshot) {
	if s.prof == nil {
		s.prof = cluster.New(snap.Capacity, snap.Now)
	} else {
		s.prof.Reset(snap.Capacity, snap.Now)
	}
	for _, r := range snap.Running {
		end := r.PredictedEnd
		if end <= snap.Now {
			end = snap.Now + 1
		}
		s.prof.Place(snap.Now, r.Nodes, end-snap.Now)
	}
}

func resizeBool(b []bool, n int) []bool {
	b = b[:0]
	for i := 0; i < n; i++ {
		b = append(b, false)
	}
	return b
}

func resizeTimes(ts []job.Time, n int) []job.Time {
	ts = ts[:0]
	for i := 0; i < n; i++ {
		ts = append(ts, 0)
	}
	return ts
}

func resizeInts(xs []int, n int) []int {
	xs = xs[:0]
	for i := 0; i < n; i++ {
		xs = append(xs, 0)
	}
	return xs
}

// orderJobs sorts jobs into the heuristic's branch order with
// deterministic tiebreaks, reusing (and returning) keys as scratch for
// the precomputed sort keys. Insertion sort keeps the hot path
// allocation-free (sort.SliceStable allocates for its closure and
// reflection swapper); queues are tens of jobs, and both orders are
// total (ID tiebreak), so the result matches any stable sort. The LXF
// slowdown key is computed once per job, not once per comparison — the
// key is a pure function of (submit, estimate, now), so the order is
// bit-identical to recomputing inside the comparator.
func orderJobs(jobs []sim.WaitingJob, h Heuristic, now job.Time, keys []float64) []float64 {
	switch h {
	case HeuristicFCFS:
		for i := 1; i < len(jobs); i++ {
			for k := i; k > 0 && fcfsLess(&jobs[k], &jobs[k-1]); k-- {
				jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
			}
		}
	case HeuristicLXF:
		keys = keys[:0]
		for i := range jobs {
			keys = append(keys, job.BoundedSlowdownAt(jobs[i].Job.Submit, jobs[i].Estimate, now))
		}
		for i := 1; i < len(jobs); i++ {
			for k := i; k > 0 && lxfLess(keys[k], keys[k-1], &jobs[k], &jobs[k-1]); k-- {
				jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
				keys[k], keys[k-1] = keys[k-1], keys[k]
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown heuristic %d", h))
	}
	return keys
}

func fcfsLess(a, b *sim.WaitingJob) bool {
	if a.Job.Submit != b.Job.Submit {
		return a.Job.Submit < b.Job.Submit
	}
	return a.Job.ID < b.Job.ID
}

func lxfLess(sa, sb float64, a, b *sim.WaitingJob) bool {
	if sa != sb {
		return sa > sb
	}
	return fcfsLess(a, b)
}

// overBudget reports whether the node budget is spent; the search keeps
// going until at least one complete schedule exists, so a decision can
// always be committed (parallel iteration shards waive that via
// hardBudget: their iteration-0 sibling guarantees the schedule).
func (s *searchState) overBudget() bool {
	if s.nodes < s.limit {
		return false
	}
	return s.hardBudget || s.bestFound
}

// unlink removes ordered index oi from the free list. oi's own pointers
// are left intact so relink can restore it in O(1) (LIFO order).
func (s *searchState) unlink(oi int) {
	p, nx := s.freePrev[oi], s.freeNext[oi]
	if p >= 0 {
		s.freeNext[p] = nx
	} else {
		s.freeHead = nx
	}
	if nx >= 0 {
		s.freePrev[nx] = p
	}
}

// relink restores ordered index oi into the free list (inverse of the
// most recent unlink of oi).
func (s *searchState) relink(oi int) {
	p, nx := s.freePrev[oi], s.freeNext[oi]
	if p >= 0 {
		s.freeNext[p] = oi
	} else {
		s.freeHead = oi
	}
	if nx >= 0 {
		s.freePrev[nx] = oi
	}
}

// visit places the job at ordered index oi (which must be on the free
// list), recurses via down, and undoes the placement. It returns false
// when the search aborted on budget.
func (s *searchState) visit(oi int, down func()) bool {
	if s.overBudget() {
		s.aborted = true
		return false
	}
	s.nodes++

	w := s.ordered[oi]
	est := w.Estimate
	if est < 1 {
		est = 1
	}
	level := len(s.curPath)
	var start job.Time
	var pl cluster.Placement
	memoHit := s.memoMatched == level && level < len(s.memoPath) && s.memoPath[level] == oi
	if memoHit {
		// The path so far equals the memoized reference prefix, so the
		// profile is in the exact state it was when the reference path
		// placed this job: its earliest fit is already known.
		start = s.memoStart[level]
		pl = s.prof.Place(start, w.Job.Nodes, est)
		s.memoMatched = level + 1
	} else {
		start, pl = s.prof.PlaceEarliest(s.now, w.Job.Nodes, est)
		if s.memoRecord {
			s.memoPath = append(s.memoPath, oi)
			s.memoStart = append(s.memoStart, start)
		}
	}
	delta := s.cost(w, start, s.now, s.bound)
	prevCost := s.curCost
	s.curCost = s.curCost.Add(delta)
	s.unlink(oi)
	s.curStartNow[oi] = start == s.now
	s.curStart[oi] = start
	s.curPath = append(s.curPath, oi)

	// Branch and bound: per-job costs are non-negative, so the partial
	// cost lower-bounds every completion of this path. Once an
	// enumerated schedule exists, a better warm seed tightens the bound
	// further (the first leaf is exempt so a complete schedule can
	// always be committed).
	if s.prune && s.bestFound && !s.curCost.Less(s.pruneBound()) {
		s.pruned++
	} else {
		down()
	}

	s.curPath = s.curPath[:len(s.curPath)-1]
	if memoHit {
		s.memoMatched = level
	}
	s.relink(oi)
	s.curCost = prevCost
	s.prof.Undo(pl)
	return !s.aborted
}

// pruneBound is the branch-and-bound cutoff: the best enumerated cost,
// tightened by the warm seed when the seed is better.
func (s *searchState) pruneBound() Cost {
	if s.seedSet && s.seedCost.Less(s.bestCost) {
		return s.seedCost
	}
	return s.bestCost
}

// leaf records the completed schedule if it beats the best so far.
func (s *searchState) leaf() {
	s.leaves++
	s.memoRecord = false // iteration 0's path is complete
	if s.leafHook != nil {
		s.leafHook(s.curPath, s.curCost)
	}
	if !s.bestFound || s.curCost.Less(s.bestCost) {
		s.bestFound = true
		s.bestCost = s.curCost
		copy(s.bestStartNow, s.curStartNow)
		copy(s.bestStart, s.curStart)
		s.bestPath = append(s.bestPath[:0], s.curPath...)
	}
	// Nodes-to-best incumbent: includes the warm seed, so it only moves
	// when a leaf beats everything seen — including the carried plan.
	if !s.ntbSet || s.curCost.Less(s.ntbCost) {
		s.ntbCost = s.curCost
		s.ntbSet = true
		s.nodesToBest = s.nodes
		if s.recordImprov {
			s.improv = append(s.improv, improvement{cost: s.curCost, nodes: s.nodes})
		}
	}
}

// runLDS runs exact-k limited discrepancy search, k = 0, 1, ... until
// the budget is spent or the tree is exhausted.
func (s *searchState) runLDS() {
	n := len(s.ordered)
	maxK := n - 1 // at most one discrepancy per level with >= 2 branches
	if maxK < 0 {
		maxK = 0
	}
	for k := 0; k <= maxK && !s.aborted; k++ {
		s.ldsDFS(0, k)
	}
}

// ldsDFS explores, below the current partial path, all completions that
// consume exactly rem further discrepancies.
func (s *searchState) ldsDFS(depth, rem int) {
	n := len(s.ordered)
	if depth == n {
		if rem == 0 {
			s.leaf()
		}
		return
	}
	// Levels strictly below this one that can still host a discrepancy
	// (a level needs at least two branches).
	choiceBelow := n - 2 - depth
	if choiceBelow < 0 {
		choiceBelow = 0
	}
	b := 0
	for oi := s.freeHead; oi >= 0; oi = s.freeNext[oi] {
		if b == 0 {
			b++
			if rem > choiceBelow {
				continue // cannot consume all remaining discrepancies below
			}
			if !s.visit(oi, func() { s.ldsDFS(depth+1, rem) }) {
				return
			}
			continue
		}
		b++
		if rem == 0 {
			break // every b > 0 would add a discrepancy
		}
		if !s.visit(oi, func() { s.ldsDFS(depth+1, rem-1) }) {
			return
		}
	}
}

// runDDS runs depth-bounded discrepancy search: iteration 0 is the pure
// heuristic path; iteration i forces a discrepancy exactly at depth i,
// allows any branch above, and follows the heuristic below.
func (s *searchState) runDDS() {
	n := len(s.ordered)
	s.ddsDFS(0, 0)
	for i := 1; i <= n-1 && !s.aborted; i++ {
		s.ddsDFS(0, i)
	}
}

// runDFS explores the whole tree in plain left-to-right depth-first
// order (every branch allowed at every level).
func (s *searchState) runDFS(level int) {
	n := len(s.ordered)
	if level == n {
		s.leaf()
		return
	}
	for oi := s.freeHead; oi >= 0; oi = s.freeNext[oi] {
		if !s.visit(oi, func() { s.runDFS(level + 1) }) {
			return
		}
	}
}

// ddsDFS explores iteration iter of DDS from the given level. Level l
// chooses the node at tree depth l+1, so iteration iter forces the
// discrepancy at level iter-1. Iteration 0 is the leftmost path.
func (s *searchState) ddsDFS(level, iter int) {
	n := len(s.ordered)
	if level == n {
		s.leaf()
		return
	}
	// Heuristic-only below the forced depth (and everywhere in
	// iteration 0); forced discrepancy exactly at level iter-1; free
	// branching above it.
	heuristicOnly := iter == 0 || level > iter-1
	forced := iter > 0 && level == iter-1
	b := 0
	for oi := s.freeHead; oi >= 0; oi = s.freeNext[oi] {
		if forced && b == 0 {
			b++
			continue
		}
		b++
		if !s.visit(oi, func() { s.ddsDFS(level+1, iter) }) {
			return
		}
		if heuristicOnly {
			break
		}
	}
}
