package core

import (
	"fmt"
	"sort"

	"schedsearch/internal/cluster"
	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Algorithm selects the complete search algorithm.
type Algorithm int

const (
	// LDS is limited discrepancy search (Harvey & Ginsberg 1995, with
	// Korf's exact-k iteration improvement): iteration k explores all
	// paths containing exactly k discrepancies, fewest first.
	LDS Algorithm = iota
	// DDS is depth-bounded discrepancy search (Walsh 1997): iteration
	// i explores paths whose deepest discrepancy is exactly at depth i,
	// with free branching above, biasing search toward discrepancies
	// high in the tree.
	DDS
	// DFS is plain chronological depth-first enumeration — the naive
	// baseline: within a budget it only ever varies the END of the
	// heuristic schedule, which is why the paper uses discrepancy
	// search instead (demonstrated by the ext-dfs experiment).
	DFS
)

// String returns the paper's tag for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case LDS:
		return "LDS"
	case DDS:
		return "DDS"
	case DFS:
		return "DFS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Heuristic selects the branching heuristic that orders the branches at
// every search-tree node (the left-most branch follows the heuristic;
// every other branch is a discrepancy).
type Heuristic int

const (
	// HeuristicFCFS orders jobs by arrival (first come first served).
	HeuristicFCFS Heuristic = iota
	// HeuristicLXF orders jobs by largest current bounded slowdown
	// first.
	HeuristicLXF
)

// String returns the paper's tag for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeuristicFCFS:
		return "fcfs"
	case HeuristicLXF:
		return "lxf"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Stats aggregates search effort over a simulation run.
type Stats struct {
	// Decisions counts decision points where a search ran.
	Decisions int
	// Nodes counts search-tree nodes visited (job placements).
	Nodes int64
	// Leaves counts complete schedules evaluated.
	Leaves int64
	// Exhausted counts decisions where the whole tree was enumerated
	// within the budget.
	Exhausted int
	// BudgetHits counts decisions cut off by the node limit.
	BudgetHits int
	// Pruned counts subtrees cut by branch-and-bound (zero unless
	// Prune is enabled).
	Pruned int64
}

// Scheduler is the search-based scheduling policy (sim.Policy). The
// zero value is not valid; use New or populate all fields.
type Scheduler struct {
	Algorithm Algorithm
	Heuristic Heuristic
	Bound     BoundSpec
	// NodeLimit is L, the maximum search-tree nodes visited per
	// decision point. The heuristic (iteration-0) schedule is always
	// completed even if it alone exceeds the limit, so the policy can
	// always commit a schedule.
	NodeLimit int
	// Cost scores job placements; nil means the paper's
	// HierarchicalCost.
	Cost CostFn
	// Prune enables branch-and-bound pruning (the paper's future-work
	// suggestion): a subtree is cut as soon as the partial schedule's
	// cost is already no better than the best complete schedule, which
	// is admissible because per-job costs are non-negative and
	// additive. Custom Cost functions returning negative components
	// must leave this off. Off by default (paper-faithful search).
	Prune bool

	// SearchStats accumulates effort counters across the run.
	SearchStats Stats

	lastPlan []PlannedStart
	s        searchState // reusable scratch
}

// New returns a search-based scheduler; the paper's best policy is
// New(DDS, HeuristicLXF, DynamicBound(), 1000).
func New(algo Algorithm, h Heuristic, bound BoundSpec, nodeLimit int) *Scheduler {
	return &Scheduler{Algorithm: algo, Heuristic: h, Bound: bound, NodeLimit: nodeLimit}
}

// Name implements sim.Policy, producing the paper's naming scheme, e.g.
// "DDS/lxf/dynB".
func (sch *Scheduler) Name() string {
	return fmt.Sprintf("%s/%s/%s", sch.Algorithm, sch.Heuristic, sch.Bound)
}

// Decide implements sim.Policy.
func (sch *Scheduler) Decide(snap *sim.Snapshot) []int {
	n := len(snap.Queue)
	if n == 0 {
		return nil
	}
	cost := sch.Cost
	if cost == nil {
		cost = HierarchicalCost
	}
	limit := sch.NodeLimit
	if limit < 1 {
		limit = 1
	}

	s := &sch.s
	s.reset(snap, sch.Heuristic, sch.Bound.At(snap), cost, limit)
	s.prune = sch.Prune
	switch sch.Algorithm {
	case LDS:
		s.runLDS()
	case DDS:
		s.runDDS()
	case DFS:
		s.runDFS(0)
	default:
		panic(fmt.Sprintf("core: unknown algorithm %d", sch.Algorithm))
	}

	sch.SearchStats.Decisions++
	sch.SearchStats.Nodes += s.nodes
	sch.SearchStats.Leaves += s.leaves
	sch.SearchStats.Pruned += s.pruned
	if s.aborted {
		sch.SearchStats.BudgetHits++
	} else {
		sch.SearchStats.Exhausted++
	}

	var starts []int
	sch.lastPlan = sch.lastPlan[:0]
	for oi, now := range s.bestStartNow {
		if now {
			starts = append(starts, s.ordered[oi].QueuePos)
		}
		sch.lastPlan = append(sch.lastPlan, PlannedStart{
			JobID:   s.ordered[oi].Job.ID,
			User:    s.ordered[oi].Job.User,
			Nodes:   s.ordered[oi].Job.Nodes,
			Planned: s.bestStart[oi],
		})
	}
	return starts
}

// PlannedStart is one queued job's planned start time under the best
// schedule found at the most recent decision — the "estimated start
// time" a production scheduler would show users. Plans are advisory:
// they are recomputed (and typically improve) at every later decision.
type PlannedStart struct {
	JobID   int
	User    int
	Nodes   int
	Planned job.Time
}

// LastPlan returns the planned start of every job queued at the most
// recent decision, in the heuristic's branch order. The slice is reused
// by the next Decide.
func (sch *Scheduler) LastPlan() []PlannedStart { return sch.lastPlan }

// searchState holds the per-decision search machinery; it is reused
// across decisions to avoid allocation churn.
type searchState struct {
	now    job.Time
	bound  job.Duration
	cost   CostFn
	limit  int
	nodes  int64
	leaves int64

	prof    *cluster.Profile
	ordered []sim.WaitingJob // heuristic branch order
	used    []bool

	curCost      Cost
	curPath      []int // ordered indices along the current partial path
	curStartNow  []bool
	curStart     []job.Time // planned start per ordered index (current path)
	bestCost     Cost
	bestStartNow []bool
	bestStart    []job.Time // planned start per ordered index (best schedule)
	bestPath     []int      // ordered indices of the best complete schedule
	bestFound    bool
	aborted      bool
	prune        bool
	pruned       int64

	// leafHook, when set (tests only), observes every complete path in
	// exploration order.
	leafHook func(path []int, cost Cost)
}

func (s *searchState) reset(snap *sim.Snapshot, h Heuristic, bound job.Duration, cost CostFn, limit int) {
	n := len(snap.Queue)
	s.now = snap.Now
	s.bound = bound
	s.cost = cost
	s.limit = limit
	s.nodes = 0
	s.leaves = 0
	s.pruned = 0
	s.prune = false
	s.bestFound = false
	s.aborted = false
	s.curCost = Cost{}

	s.ordered = append(s.ordered[:0], snap.Queue...)
	orderJobs(s.ordered, h, snap.Now)

	s.used = resizeBool(s.used, n)
	s.curStartNow = resizeBool(s.curStartNow, n)
	s.bestStartNow = resizeBool(s.bestStartNow, n)
	s.curStart = resizeTimes(s.curStart, n)
	s.bestStart = resizeTimes(s.bestStart, n)
	s.curPath = s.curPath[:0]

	// Build the availability profile from running jobs' predicted ends.
	s.prof = cluster.New(snap.Capacity, snap.Now)
	for _, r := range snap.Running {
		end := r.PredictedEnd
		if end <= snap.Now {
			end = snap.Now + 1
		}
		s.prof.Place(snap.Now, r.Nodes, end-snap.Now)
	}
}

func resizeBool(b []bool, n int) []bool {
	b = b[:0]
	for i := 0; i < n; i++ {
		b = append(b, false)
	}
	return b
}

func resizeTimes(ts []job.Time, n int) []job.Time {
	ts = ts[:0]
	for i := 0; i < n; i++ {
		ts = append(ts, 0)
	}
	return ts
}

// orderJobs sorts jobs into the heuristic's branch order with
// deterministic tiebreaks.
func orderJobs(jobs []sim.WaitingJob, h Heuristic, now job.Time) {
	switch h {
	case HeuristicFCFS:
		sort.SliceStable(jobs, func(a, b int) bool {
			if jobs[a].Job.Submit != jobs[b].Job.Submit {
				return jobs[a].Job.Submit < jobs[b].Job.Submit
			}
			return jobs[a].Job.ID < jobs[b].Job.ID
		})
	case HeuristicLXF:
		sort.SliceStable(jobs, func(a, b int) bool {
			sa := job.BoundedSlowdownAt(jobs[a].Job.Submit, jobs[a].Estimate, now)
			sb := job.BoundedSlowdownAt(jobs[b].Job.Submit, jobs[b].Estimate, now)
			if sa != sb {
				return sa > sb
			}
			if jobs[a].Job.Submit != jobs[b].Job.Submit {
				return jobs[a].Job.Submit < jobs[b].Job.Submit
			}
			return jobs[a].Job.ID < jobs[b].Job.ID
		})
	default:
		panic(fmt.Sprintf("core: unknown heuristic %d", h))
	}
}

// overBudget reports whether the node budget is spent; the search keeps
// going until at least one complete schedule exists, so a decision can
// always be committed.
func (s *searchState) overBudget() bool {
	return s.nodes >= int64(s.limit) && s.bestFound
}

// visit places the b-th unused job (in heuristic order), recurses via
// down, and undoes the placement. It returns false when the search
// aborted on budget.
func (s *searchState) visit(branch int, down func()) bool {
	if s.overBudget() {
		s.aborted = true
		return false
	}
	// Locate the branch-th unused job.
	oi := -1
	seen := 0
	for i := range s.ordered {
		if s.used[i] {
			continue
		}
		if seen == branch {
			oi = i
			break
		}
		seen++
	}
	if oi < 0 {
		panic("core: branch index out of range")
	}
	s.nodes++

	w := s.ordered[oi]
	est := w.Estimate
	if est < 1 {
		est = 1
	}
	start, pl := s.prof.PlaceEarliest(s.now, w.Job.Nodes, est)
	delta := s.cost(w, start, s.now, s.bound)
	prevCost := s.curCost
	s.curCost = s.curCost.Add(delta)
	s.used[oi] = true
	s.curStartNow[oi] = start == s.now
	s.curStart[oi] = start
	s.curPath = append(s.curPath, oi)

	// Branch and bound: per-job costs are non-negative, so the partial
	// cost lower-bounds every completion of this path.
	if s.prune && s.bestFound && !s.curCost.Less(s.bestCost) {
		s.pruned++
	} else {
		down()
	}

	s.curPath = s.curPath[:len(s.curPath)-1]
	s.used[oi] = false
	s.curCost = prevCost
	s.prof.Undo(pl)
	return !s.aborted
}

// leaf records the completed schedule if it beats the best so far.
func (s *searchState) leaf() {
	s.leaves++
	if s.leafHook != nil {
		s.leafHook(s.curPath, s.curCost)
	}
	if !s.bestFound || s.curCost.Less(s.bestCost) {
		s.bestFound = true
		s.bestCost = s.curCost
		copy(s.bestStartNow, s.curStartNow)
		copy(s.bestStart, s.curStart)
		s.bestPath = append(s.bestPath[:0], s.curPath...)
	}
}

// runLDS runs exact-k limited discrepancy search, k = 0, 1, ... until
// the budget is spent or the tree is exhausted.
func (s *searchState) runLDS() {
	n := len(s.ordered)
	maxK := n - 1 // at most one discrepancy per level with >= 2 branches
	if maxK < 0 {
		maxK = 0
	}
	for k := 0; k <= maxK && !s.aborted; k++ {
		s.ldsDFS(0, k)
	}
}

// ldsDFS explores, below the current partial path, all completions that
// consume exactly rem further discrepancies.
func (s *searchState) ldsDFS(depth, rem int) {
	n := len(s.ordered)
	if depth == n {
		if rem == 0 {
			s.leaf()
		}
		return
	}
	branches := n - depth
	// Levels strictly below this one that can still host a discrepancy
	// (a level needs at least two branches).
	choiceBelow := n - 2 - depth
	if choiceBelow < 0 {
		choiceBelow = 0
	}
	for b := 0; b < branches; b++ {
		if b == 0 {
			if rem > choiceBelow {
				continue // cannot consume all remaining discrepancies below
			}
			if !s.visit(0, func() { s.ldsDFS(depth+1, rem) }) {
				return
			}
			continue
		}
		if rem == 0 {
			break // every b > 0 would add a discrepancy
		}
		if !s.visit(b, func() { s.ldsDFS(depth+1, rem-1) }) {
			return
		}
	}
}

// runDDS runs depth-bounded discrepancy search: iteration 0 is the pure
// heuristic path; iteration i forces a discrepancy exactly at depth i,
// allows any branch above, and follows the heuristic below.
func (s *searchState) runDDS() {
	n := len(s.ordered)
	s.ddsDFS(0, 0)
	for i := 1; i <= n-1 && !s.aborted; i++ {
		s.ddsDFS(0, i)
	}
}

// runDFS explores the whole tree in plain left-to-right depth-first
// order (every branch allowed at every level).
func (s *searchState) runDFS(level int) {
	n := len(s.ordered)
	if level == n {
		s.leaf()
		return
	}
	for b := 0; b < n-level; b++ {
		if !s.visit(b, func() { s.runDFS(level + 1) }) {
			return
		}
	}
}

// ddsDFS explores iteration iter of DDS from the given level. Level l
// chooses the node at tree depth l+1, so iteration iter forces the
// discrepancy at level iter-1. Iteration 0 is the leftmost path.
func (s *searchState) ddsDFS(level, iter int) {
	n := len(s.ordered)
	if level == n {
		s.leaf()
		return
	}
	branches := n - level
	var lo, hi int // allowed branch range [lo, hi)
	switch {
	case iter == 0 || level > iter-1:
		lo, hi = 0, 1 // heuristic only
	case level == iter-1:
		lo, hi = 1, branches // forced discrepancy
	default:
		lo, hi = 0, branches // free branching above the forced depth
	}
	for b := lo; b < hi; b++ {
		if !s.visit(b, func() { s.ddsDFS(level+1, iter) }) {
			return
		}
	}
}
