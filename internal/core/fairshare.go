package core

import (
	"math"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Fairshare wraps a search scheduler with the paper's third future-work
// direction: incorporating fairshare into the scheduling objective. It
// tracks each user's recent machine usage (an exponentially decayed
// node-seconds integral) and discounts the slowdown cost of jobs whose
// user is over-served, so the search more willingly delays them in
// favour of under-served users. The first-level goal (excessive wait)
// is untouched: fairshare never starves anyone past the wait bound.
type Fairshare struct {
	// Inner is the wrapped search scheduler; its Cost field is managed
	// by the wrapper.
	Inner *Scheduler
	// Alpha is the discount strength: a user at k times their fair
	// share has their jobs' slowdown cost divided by 1 + Alpha*(k-1).
	Alpha float64
	// Halflife of the usage decay (default 24h via NewFairshare).
	Halflife job.Duration

	usage   map[int]float64 // user -> decayed node-seconds
	lastNow job.Time
}

// NewFairshare wraps the scheduler with conventional parameters.
func NewFairshare(inner *Scheduler, alpha float64) *Fairshare {
	return &Fairshare{Inner: inner, Alpha: alpha, Halflife: 24 * job.Hour}
}

// Name implements sim.Policy.
func (f *Fairshare) Name() string { return f.Inner.Name() + "+fs" }

// Decide implements sim.Policy.
func (f *Fairshare) Decide(snap *sim.Snapshot) []int {
	f.update(snap)

	// The fair share is an equal split over the users present (running
	// or queued) at this decision.
	users := map[int]bool{}
	for _, w := range snap.Queue {
		users[w.Job.User] = true
	}
	var total float64
	for _, u := range f.usage {
		total += u
	}
	active := float64(len(users))
	orig := f.Inner.Cost
	base := orig
	if base == nil {
		base = HierarchicalCost
	}
	f.Inner.Cost = func(w sim.WaitingJob, start, now job.Time, bound job.Duration) Cost {
		c := base(w, start, now, bound)
		if total <= 0 || active == 0 || w.Job.User == 0 {
			return c
		}
		over := f.usage[w.Job.User] / total * active // 1 = exactly fair
		if over > 1 {
			c[1] /= 1 + f.Alpha*(over-1)
		}
		return c
	}
	defer func() { f.Inner.Cost = orig }()
	return f.Inner.Decide(snap)
}

// update decays the usage integral and accrues the running jobs' usage
// since the previous decision.
func (f *Fairshare) update(snap *sim.Snapshot) {
	if f.usage == nil {
		f.usage = make(map[int]float64)
	}
	dt := snap.Now - f.lastNow
	if f.lastNow == 0 {
		dt = 0
	}
	f.lastNow = snap.Now
	if dt > 0 && f.Halflife > 0 {
		decay := math.Exp2(-float64(dt) / float64(f.Halflife))
		for u := range f.usage {
			f.usage[u] *= decay
			if f.usage[u] < 1e-6 {
				delete(f.usage, u)
			}
		}
	}
	// Accrue usage for the interval just elapsed. Decisions happen at
	// every start and completion, so integrating running jobs over
	// [lastNow, now] captures the full usage up to boundary overlaps.
	if dt > 0 {
		for _, r := range snap.Running {
			span := dt
			if r.Start > snap.Now-dt {
				span = snap.Now - r.Start
			}
			if span > 0 && r.User != 0 {
				f.usage[r.User] += float64(r.Nodes) * float64(span)
			}
		}
	}
}
