package core

import (
	"runtime"
	"sync"
	"time"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Parallel complete search across discrepancy iterations.
//
// LDS's exact-k passes and DDS's forced-depth-i passes explore disjoint
// leaf sets, so the iterations can run concurrently on independent
// search states. Sequential equivalence is preserved by construction:
//
//   - The per-iteration node-visit counts of an n-job tree are a pure
//     function of (algorithm, n, iteration) when pruning is off, so the
//     sequential run's budget consumption can be replayed exactly:
//     iteration 0 always completes, later iterations receive the
//     remaining budget in order, and the iteration that exhausts it
//     gets exactly the node shard the sequential search would have
//     spent there (shardBudget).
//   - Within an iteration the exploration order is the sequential one
//     (same code), so each iteration's best schedule — first strictly
//     better wins — matches the sequential pass over that iteration.
//   - The merge scans iterations in ascending order and replaces only
//     on strictly lower cost, so ties keep the lowest iteration and
//     (within it) the earliest path, exactly like the sequential scan.
//
// The result: identical committed starts, best cost, planned starts,
// node/leaf counts, and budget-hit accounting, independent of worker
// count and goroutine scheduling. (The one theoretical exception:
// Cost.Less is an epsilon comparison, so two schedules whose costs
// differ by ~epsilon across different iterations are "incomparable" and
// order-dependent chains of such near-ties could diverge; the
// differential tests run the whole workload suite without hitting one.)

// iterTask is one discrepancy iteration to run, with its node shard.
type iterTask struct {
	iter int
	// budget is the maximum number of nodes this iteration may visit.
	// Full iterations get an effectively unlimited budget; the cutoff
	// iteration gets the sequential search's remaining nodes.
	budget int64
}

// iterResult is one iteration's outcome, merged deterministically.
type iterResult struct {
	run      bool
	found    bool
	cost     Cost
	startNow []bool
	start    []job.Time
	path     []int
	nodes    int64
	leaves   int64
	// improv logs the iteration-local incumbent improvements (cost and
	// local node counter); the merge threads the global incumbent —
	// warm seed included — through these logs in ascending iteration
	// order, reproducing the sequential nodesToBest exactly.
	improv []improvement
}

// satCap is the saturation ceiling for tree-node counts: any count at
// or above it is treated as "larger than any realistic node budget".
const satCap int64 = 1 << 60

func satAdd(a, b int64) int64 {
	if a >= satCap || b >= satCap || a > satCap-b {
		return satCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= satCap || b >= satCap || a > satCap/b {
		return satCap
	}
	return a * b
}

// shardScratch holds reusable buffers for the budget shard computation.
type shardScratch struct {
	e []int64 // elementary symmetric polynomial DP row (LDS)
}

// ldsIterNodes returns the number of visit() calls exact-k LDS performs
// on an n-job tree (saturating at satCap). A node at depth d whose path
// carries j discrepancies is visited iff j <= k and the remaining k-j
// discrepancies fit below: k-j <= max(0, n-1-d). The number of depth-d
// prefixes with j discrepancies is the elementary symmetric polynomial
// e_j(c_0..c_{d-1}) over the per-level discrepancy choice counts
// c_l = n-l-1.
func (sc *shardScratch) ldsIterNodes(n, k int) int64 {
	if n <= 0 {
		return 0
	}
	if cap(sc.e) < k+1 {
		sc.e = make([]int64, k+1)
	}
	e := sc.e[:k+1]
	e[0] = 1
	for j := 1; j <= k; j++ {
		e[j] = 0
	}
	var total int64
	for d := 1; d <= n; d++ {
		c := int64(n - d) // c_{d-1}: discrepancy choices at level d-1
		jmax := k
		if d < jmax {
			jmax = d
		}
		for j := jmax; j >= 1; j-- {
			e[j] = satAdd(e[j], satMul(e[j-1], c))
		}
		cb := n - 1 - d
		if cb < 0 {
			cb = 0
		}
		lo := k - cb
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= jmax; j++ {
			total = satAdd(total, e[j])
		}
	}
	return total
}

// ddsIterNodes returns the number of visit() calls DDS iteration i
// performs on an n-job tree (saturating at satCap): free branching
// above the forced depth contributes P(n,d) nodes at depth d < i, the
// forced discrepancy multiplies in n-i, and each resulting path runs
// heuristically to depth n.
func ddsIterNodes(n, i int) int64 {
	if n <= 0 {
		return 0
	}
	if i == 0 {
		return int64(n)
	}
	var total int64
	p := int64(1) // P(n, d) running product
	for d := 1; d <= i-1; d++ {
		p = satMul(p, int64(n-d+1))
		total = satAdd(total, p)
	}
	paths := satMul(p, int64(n-i)) // P(n,i-1) × forced choices
	// Depths i..n: one node per path per depth.
	total = satAdd(total, satMul(paths, int64(n-i+1)))
	return total
}

// iterNodes dispatches the per-iteration node count for the algorithm.
func (sch *Scheduler) iterNodes(n, iter int) int64 {
	switch sch.Algorithm {
	case LDS:
		return sch.shard.ldsIterNodes(n, iter)
	case DDS:
		return ddsIterNodes(n, iter)
	case ADDS:
		return addsIterNodes(n, iter)
	default:
		panic("core: iterNodes on non-iterative algorithm")
	}
}

// shardBudget replays the sequential budget consumption over the
// iterations of an n-job tree: iteration 0 always completes (the search
// must always commit a schedule); each later iteration receives the
// remaining budget in order; the iteration that exhausts it gets
// exactly the remaining node count and everything after it is skipped.
// It returns the tasks to run and whether the sequential search would
// have aborted on budget (BudgetHits accounting).
func (sch *Scheduler) shardBudget(n int, limit int64) (tasks []iterTask, aborted bool) {
	tasks = sch.tasks[:0]
	spent := int64(0)
	for i := 0; i <= n-1; i++ {
		full := sch.iterNodes(n, i)
		if i == 0 {
			tasks = append(tasks, iterTask{iter: 0, budget: satCap})
			spent = full
			continue
		}
		rem := limit - spent
		if rem <= 0 {
			// The sequential search would enter this iteration and
			// abort on its first visit without spending a node.
			aborted = true
			break
		}
		if full <= rem {
			tasks = append(tasks, iterTask{iter: i, budget: satCap})
			spent += full
			continue
		}
		tasks = append(tasks, iterTask{iter: i, budget: rem})
		aborted = true
		break
	}
	sch.tasks = tasks
	return tasks, aborted
}

// parallelWorkers resolves the worker count for a decision over an
// n-job queue: 0 for sequential-only configurations.
func (sch *Scheduler) parallelWorkers(n int) int {
	w := sch.Workers
	if w == AutoWorkers {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	if sch.Prune || (sch.Algorithm != LDS && sch.Algorithm != DDS && sch.Algorithm != ADDS) {
		// Pruning couples iterations; DFS has no iteration structure;
		// CDDS climbs, which makes each iteration depend on the last.
		return 1
	}
	if n < 2 {
		return 1
	}
	return w
}

// runParallel runs the discrepancy iterations of the current decision
// on a worker pool and merges the per-iteration results into the master
// state sch.s, which must already be reset. It reports whether the
// parallel path ran (false falls back to sequential search).
func (sch *Scheduler) runParallel(snap *sim.Snapshot, workers int) bool {
	s := &sch.s
	n := len(s.ordered)
	tasks, aborted := sch.shardBudget(n, s.limit)
	if len(tasks) < 2 {
		return false // budget confined to iteration 0: nothing to overlap
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// Per-iteration result slots, indexed by iteration, reused across
	// decisions.
	for len(sch.results) < n {
		sch.results = append(sch.results, iterResult{})
	}
	results := sch.results[:n]
	for i := range results {
		results[i].run = false
	}

	for len(sch.wstates) < workers {
		sch.wstates = append(sch.wstates, &searchState{})
	}

	taskCh := make(chan iterTask)
	busy := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := sch.wstates[w]
		ws.resetWorker(snap, s)
		wg.Add(1)
		go func(w int, ws *searchState) {
			defer wg.Done()
			for t := range taskCh {
				t0 := time.Now()
				ws.runIteration(sch.Algorithm, t, &results[t.iter])
				busy[w] += time.Since(t0).Nanoseconds()
			}
		}(w, ws)
	}
	for _, t := range tasks {
		taskCh <- t
	}
	close(taskCh)
	wg.Wait()

	// Deterministic merge: ascending iteration order, strict
	// improvement only — ties keep the lowest iteration, matching the
	// sequential scan. The nodes-to-best incumbent (seeded by seedWarm
	// on warm decisions) is threaded through the per-iteration
	// improvement logs the same way: an improvement counts only if it
	// beats everything from earlier iterations and the seed, and its
	// node position is the sum of the preceding iterations' spend plus
	// its local counter — exactly the sequential node counter.
	s.nodes, s.leaves = 0, 0
	s.bestFound = false
	s.aborted = aborted
	for i := range results {
		r := &results[i]
		if !r.run {
			continue
		}
		for _, im := range r.improv {
			if !s.ntbSet || im.cost.Less(s.ntbCost) {
				s.ntbCost = im.cost
				s.ntbSet = true
				s.nodesToBest = s.nodes + im.nodes
				if s.recordImprov {
					// Thread the accepted improvement into the master's log
					// with its global node position, so the trajectory
					// matches the sequential run's.
					s.improv = append(s.improv, improvement{cost: im.cost, nodes: s.nodes + im.nodes})
				}
			}
		}
		s.nodes += r.nodes
		s.leaves += r.leaves
		if !r.found {
			continue
		}
		if !s.bestFound || r.cost.Less(s.bestCost) {
			s.bestFound = true
			s.bestCost = r.cost
			copy(s.bestStartNow, r.startNow)
			copy(s.bestStart, r.start)
			s.bestPath = append(s.bestPath[:0], r.path...)
		}
	}
	for _, b := range busy {
		sch.SearchStats.BusyNs += b
	}
	return true
}

// runIteration runs one discrepancy iteration on a worker state whose
// profile and branch order are already prepared, recording the outcome
// into r. The state's free list and profile are fully restored on
// return (backtracking is LIFO even on abort), so the same worker can
// run further iterations.
func (ws *searchState) runIteration(algo Algorithm, t iterTask, r *iterResult) {
	ws.nodes, ws.leaves, ws.pruned = 0, 0, 0
	ws.bestFound = false
	ws.aborted = false
	ws.curCost = Cost{}
	ws.curPath = ws.curPath[:0]
	ws.limit = t.budget
	// Iterations past 0 abort purely on their node shard: the
	// sequential run they replay already holds the iteration-0 schedule
	// when the budget trips.
	ws.hardBudget = t.iter > 0
	// Log iteration-local incumbent improvements for the merge's
	// nodes-to-best replay.
	ws.ntbSet = false
	ws.nodesToBest = 0
	ws.recordImprov = true
	ws.improv = ws.improv[:0]

	switch algo {
	case LDS:
		ws.ldsDFS(0, t.iter)
	case DDS:
		ws.ddsDFS(0, t.iter)
	case ADDS:
		ws.addsDFS(0, t.iter)
	default:
		panic("core: runIteration on non-iterative algorithm")
	}

	r.run = true
	r.nodes = ws.nodes
	r.leaves = ws.leaves
	r.found = ws.bestFound
	r.improv = append(r.improv[:0], ws.improv...)
	if ws.bestFound {
		r.cost = ws.bestCost
		r.startNow = append(r.startNow[:0], ws.bestStartNow...)
		r.start = append(r.start[:0], ws.bestStart...)
		r.path = append(r.path[:0], ws.bestPath...)
	}
}
