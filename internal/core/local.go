package core

import (
	"fmt"

	"schedsearch/internal/cluster"
	"schedsearch/internal/job"
	"schedsearch/internal/sim"
	"schedsearch/internal/stats"
)

// LocalScheduler is the paper's first future-work direction: combining
// complete search with local search. It evaluates whole queue orderings
// (each evaluation costs one tree-node visit per queued job, so budgets
// are comparable with the complete-search policies) and hill-climbs by
// random pairwise swaps, optionally seeded with a truncated DDS pass
// (the hybrid of Crawford 1993 the paper cites).
type LocalScheduler struct {
	Heuristic Heuristic
	Bound     BoundSpec
	// NodeLimit is the shared budget L in tree-node visits.
	NodeLimit int
	// Cost scores placements; nil means HierarchicalCost.
	Cost CostFn
	// Hybrid spends half the budget on a DDS pass and starts the climb
	// from its best schedule instead of the heuristic ordering.
	Hybrid bool
	// Seed makes the random walk deterministic.
	Seed uint64

	// SearchStats accumulates effort counters across the run.
	SearchStats Stats
	// LastBestCost is the objective value of the schedule committed at
	// the most recent decision (introspection and tests).
	LastBestCost Cost

	decisions uint64
	s         searchState
}

// NewLocal returns a pure local-search scheduler.
func NewLocal(h Heuristic, bound BoundSpec, nodeLimit int) *LocalScheduler {
	return &LocalScheduler{Heuristic: h, Bound: bound, NodeLimit: nodeLimit, Seed: 1}
}

// NewHybrid returns the DDS-seeded local-search scheduler.
func NewHybrid(h Heuristic, bound BoundSpec, nodeLimit int) *LocalScheduler {
	ls := NewLocal(h, bound, nodeLimit)
	ls.Hybrid = true
	return ls
}

// Name implements sim.Policy.
func (ls *LocalScheduler) Name() string {
	algo := "LS"
	if ls.Hybrid {
		algo = "DDS+LS"
	}
	return fmt.Sprintf("%s/%s/%s", algo, ls.Heuristic, ls.Bound)
}

// Decide implements sim.Policy.
func (ls *LocalScheduler) Decide(snap *sim.Snapshot) []int {
	n := len(snap.Queue)
	if n == 0 {
		return nil
	}
	cost := ls.Cost
	if cost == nil {
		cost = HierarchicalCost
	}
	limit := ls.NodeLimit
	if limit < 1 {
		limit = 1
	}
	ls.decisions++
	rng := stats.NewRNG(ls.Seed, ls.decisions)

	// Current ordering: heuristic order by default, the best DDS path
	// in hybrid mode (the DDS pass consumes half the budget).
	s := &ls.s
	s.reset(snap, ls.Heuristic, ls.Bound.At(snap), cost, limit)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	budget := int64(limit)
	if ls.Hybrid && n > 1 {
		s.limit = int64(limit / 2)
		s.runDDS()
		budget -= s.nodes
		if len(s.bestPath) == n {
			copy(order, s.bestPath)
		}
		ls.SearchStats.Nodes += s.nodes
		ls.SearchStats.Leaves += s.leaves
	}

	eval := newOrderEvaluator(snap, s.ordered, cost, ls.Bound.At(snap))

	c0, sn0 := eval.run(order)
	bestCost := c0
	bestStartNow := append([]bool(nil), sn0...) // eval reuses its slice
	used := int64(n)
	cur := append([]int(nil), order...)
	curCost := bestCost

	// Hill climbing by pairwise swaps: accept improvements, revert the
	// rest. Each evaluation costs n node visits.
	for used+int64(n) <= budget && n > 1 {
		i, k := rng.IntN(n), rng.IntN(n)
		if i == k {
			k = (k + 1) % n
		}
		cur[i], cur[k] = cur[k], cur[i]
		c, startNow := eval.run(cur)
		used += int64(n)
		if c.Less(curCost) {
			curCost = c
			if c.Less(bestCost) {
				bestCost = c
				copy(bestStartNow, startNow)
			}
		} else {
			cur[i], cur[k] = cur[k], cur[i] // revert
		}
	}

	ls.SearchStats.Decisions++
	ls.SearchStats.Nodes += used
	ls.SearchStats.Leaves += used / int64(n)
	ls.LastBestCost = bestCost

	var starts []int
	for oi, now := range bestStartNow {
		if now {
			starts = append(starts, s.ordered[oi].QueuePos)
		}
	}
	return starts
}

// orderEvaluator scores complete orderings against a fresh profile of
// the running jobs, reusing buffers across evaluations.
type orderEvaluator struct {
	prof     *cluster.Profile
	jobs     []sim.WaitingJob
	cost     CostFn
	bound    job.Duration
	now      job.Time
	startNow []bool
	undo     []cluster.Placement
}

func newOrderEvaluator(snap *sim.Snapshot, ordered []sim.WaitingJob, cost CostFn, bound job.Duration) *orderEvaluator {
	prof := cluster.New(snap.Capacity, snap.Now)
	for _, r := range snap.Running {
		end := r.PredictedEnd
		if end <= snap.Now {
			end = snap.Now + 1
		}
		prof.Place(snap.Now, r.Nodes, end-snap.Now)
	}
	return &orderEvaluator{
		prof:     prof,
		jobs:     ordered,
		cost:     cost,
		bound:    bound,
		now:      snap.Now,
		startNow: make([]bool, len(ordered)),
		undo:     make([]cluster.Placement, 0, len(ordered)),
	}
}

// run places the jobs in the given ordering (ordered indices) and
// returns the schedule cost and per-ordered-index start-now flags. The
// returned slice is reused by the next call.
func (e *orderEvaluator) run(order []int) (Cost, []bool) {
	var total Cost
	e.undo = e.undo[:0]
	for _, oi := range order {
		w := e.jobs[oi]
		est := w.Estimate
		if est < 1 {
			est = 1
		}
		start, pl := e.prof.PlaceEarliest(e.now, w.Job.Nodes, est)
		e.undo = append(e.undo, pl)
		total = total.Add(e.cost(w, start, e.now, e.bound))
		e.startNow[oi] = start == e.now
	}
	for i := len(e.undo) - 1; i >= 0; i-- {
		e.prof.Undo(e.undo[i])
	}
	return total, e.startNow
}
