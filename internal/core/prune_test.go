package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// randomSnapshot builds a random contended decision point.
func randomSnapshot(rng *rand.Rand, queueLen int) *sim.Snapshot {
	capacity := 8 + rng.Intn(24)
	now := job.Time(50000)
	snap := &sim.Snapshot{Now: now, Capacity: capacity, FreeNodes: capacity}
	used := 0
	for used < capacity && rng.Float64() < 0.6 {
		n := 1 + rng.Intn(capacity-used)
		snap.Running = append(snap.Running, sim.RunningJob{
			ID: 100 + len(snap.Running), Nodes: n, Start: 0,
			PredictedEnd: now + job.Duration(1+rng.Intn(7200)),
		})
		used += n
	}
	snap.FreeNodes = capacity - used
	for i := 0; i < queueLen; i++ {
		est := job.Duration(60 + rng.Intn(14400))
		snap.Queue = append(snap.Queue, sim.WaitingJob{
			Job: job.Job{
				ID:      i + 1,
				Submit:  now - job.Time(rng.Intn(40000)),
				Nodes:   1 + rng.Intn(capacity),
				Runtime: est, Request: est,
			},
			Estimate: est,
			QueuePos: i,
		})
	}
	return snap
}

// TestPruningPreservesOptimum: with an unlimited budget (full
// enumeration), branch-and-bound pruning must find exactly the same
// best cost as the exhaustive search, and prune a non-trivial amount of
// the tree.
func TestPruningPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	totalPruned := int64(0)
	for trial := 0; trial < 40; trial++ {
		snap := randomSnapshot(rng, 2+rng.Intn(5)) // up to 6! = 720 paths
		for _, algo := range []Algorithm{LDS, DDS} {
			plain := New(algo, HeuristicLXF, DynamicBound(), 1<<30)
			pruned := New(algo, HeuristicLXF, DynamicBound(), 1<<30)
			pruned.Prune = true

			plainStarts := plain.Decide(snap)
			prunedStarts := pruned.Decide(snap)

			if plain.s.bestCost != pruned.s.bestCost {
				t.Fatalf("trial %d %s: best cost %v with pruning, %v without",
					trial, algo, pruned.s.bestCost, plain.s.bestCost)
			}
			if len(plainStarts) != len(prunedStarts) {
				t.Fatalf("trial %d %s: starts %v with pruning, %v without",
					trial, algo, prunedStarts, plainStarts)
			}
			for i := range plainStarts {
				if plainStarts[i] != prunedStarts[i] {
					t.Fatalf("trial %d %s: starts %v with pruning, %v without",
						trial, algo, prunedStarts, plainStarts)
				}
			}
			if pruned.SearchStats.Nodes > plain.SearchStats.Nodes {
				t.Fatalf("trial %d %s: pruning visited MORE nodes (%d > %d)",
					trial, algo, pruned.SearchStats.Nodes, plain.SearchStats.Nodes)
			}
			totalPruned += pruned.SearchStats.Pruned
		}
	}
	if totalPruned == 0 {
		t.Error("pruning never cut a subtree across 40 random trials")
	}
}

// TestPruningDisabledByDefault: the paper-faithful configuration does
// not prune.
func TestPruningDisabledByDefault(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 1<<30)
	sch.Decide(fourJobSnapshot())
	if sch.SearchStats.Pruned != 0 {
		t.Errorf("Pruned = %d without Prune", sch.SearchStats.Pruned)
	}
	if sch.SearchStats.Leaves != 24 {
		t.Errorf("Leaves = %d, want full enumeration", sch.SearchStats.Leaves)
	}
}
