package core

import (
	"fmt"
	"testing"
)

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(perm) == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// iterationLeaves runs one discrepancy iteration with unlimited budget
// and returns the complete paths it evaluates, in exploration order.
func iterationLeaves(t *testing.T, n int, algo Algorithm, iter int) [][]int {
	t.Helper()
	snap := flatQueueSnapshot(n)
	var s searchState
	var paths [][]int
	s.leafHook = func(path []int, _ Cost) {
		paths = append(paths, append([]int(nil), path...))
	}
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 1)
	s.limit = satCap
	switch algo {
	case LDS:
		s.ldsDFS(0, iter)
	case DDS:
		s.ddsDFS(0, iter)
	case ADDS:
		s.addsDFS(0, iter)
	}
	if s.aborted {
		t.Fatalf("n=%d %s iter=%d aborted with unlimited budget", n, algo, iter)
	}
	return paths
}

func permKey(p []int) string {
	return fmt.Sprint(p)
}

// TestIterationLeafSetsMatchBruteForce cross-checks the leaf
// enumeration of every LDS and DDS iteration against brute-force
// permutation enumeration: LDS iteration k must evaluate exactly the
// permutations carrying k discrepancies, DDS iteration i exactly those
// whose deepest discrepancy sits at level i-1 (iteration 0 = the
// heuristic path), each exactly once, and the union over iterations
// must be all n! permutations.
func TestIterationLeafSetsMatchBruteForce(t *testing.T) {
	for n := 1; n <= 6; n++ {
		perms := permutations(n)
		wantLDS := make(map[int]map[string]bool) // k -> perm set
		wantDDS := make(map[int]map[string]bool) // iter -> perm set
		for _, p := range perms {
			k := discrepancies(p)
			if wantLDS[k] == nil {
				wantLDS[k] = map[string]bool{}
			}
			wantLDS[k][permKey(p)] = true
			i := deepestDiscrepancy(p) + 1 // leftmost path (-1) is iteration 0
			if wantDDS[i] == nil {
				wantDDS[i] = map[string]bool{}
			}
			wantDDS[i][permKey(p)] = true
		}

		for _, tc := range []struct {
			algo Algorithm
			want map[int]map[string]bool
		}{{LDS, wantLDS}, {DDS, wantDDS}} {
			total := 0
			for iter := 0; iter <= n-1; iter++ {
				got := iterationLeaves(t, n, tc.algo, iter)
				want := tc.want[iter]
				if len(got) != len(want) {
					t.Errorf("n=%d %s iter=%d: %d leaves, brute force %d",
						n, tc.algo, iter, len(got), len(want))
				}
				seen := map[string]bool{}
				for _, p := range got {
					key := permKey(p)
					if seen[key] {
						t.Errorf("n=%d %s iter=%d: leaf %v evaluated twice", n, tc.algo, iter, p)
					}
					seen[key] = true
					if !want[key] {
						t.Errorf("n=%d %s iter=%d: leaf %v does not belong to this iteration",
							n, tc.algo, iter, p)
					}
				}
				total += len(got)
			}
			if want := len(perms); total != want {
				t.Errorf("n=%d %s: %d leaves across iterations, want %d (all permutations)",
					n, tc.algo, total, want)
			}
		}
	}
}
