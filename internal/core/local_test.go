package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func TestLocalSchedulerBasics(t *testing.T) {
	for _, mk := range []func() *LocalScheduler{
		func() *LocalScheduler { return NewLocal(HeuristicLXF, DynamicBound(), 200) },
		func() *LocalScheduler { return NewHybrid(HeuristicLXF, DynamicBound(), 200) },
	} {
		ls := mk()
		if starts := ls.Decide(&sim.Snapshot{Now: 0, Capacity: 4, FreeNodes: 4}); len(starts) != 0 {
			t.Errorf("%s: starts on empty queue: %v", ls.Name(), starts)
		}
		snap := fourJobSnapshot()
		starts := ls.Decide(snap)
		if len(starts) != 4 {
			t.Errorf("%s: started %d of 4 trivially fitting jobs", ls.Name(), len(starts))
		}
		if ls.SearchStats.Decisions != 1 {
			t.Errorf("%s: Decisions = %d, want 1 (empty-queue calls do not count)", ls.Name(), ls.SearchStats.Decisions)
		}
	}
}

func TestLocalSchedulerNames(t *testing.T) {
	if got := NewLocal(HeuristicLXF, DynamicBound(), 100).Name(); got != "LS/lxf/dynB" {
		t.Errorf("Name = %q", got)
	}
	if got := NewHybrid(HeuristicFCFS, FixedBound(50*job.Hour), 100).Name(); got != "DDS+LS/fcfs/fixB=50h" {
		t.Errorf("Name = %q", got)
	}
}

func TestLocalSchedulerDeterministic(t *testing.T) {
	snap := randomSnapshot(rand.New(rand.NewSource(3)), 8)
	a := NewLocal(HeuristicLXF, DynamicBound(), 500)
	b := NewLocal(HeuristicLXF, DynamicBound(), 500)
	sa := a.Decide(snap)
	sb := b.Decide(snap)
	if len(sa) != len(sb) {
		t.Fatalf("nondeterministic: %v vs %v", sa, sb)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("nondeterministic: %v vs %v", sa, sb)
		}
	}
}

func TestLocalSchedulerFeasibleStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		snap := randomSnapshot(rng, 1+rng.Intn(10))
		for _, ls := range []*LocalScheduler{
			NewLocal(HeuristicLXF, DynamicBound(), 300),
			NewHybrid(HeuristicLXF, DynamicBound(), 300),
		} {
			starts := ls.Decide(snap)
			total := 0
			seen := map[int]bool{}
			for _, qi := range starts {
				if qi < 0 || qi >= len(snap.Queue) || seen[qi] {
					t.Fatalf("trial %d %s: bad starts %v", trial, ls.Name(), starts)
				}
				seen[qi] = true
				total += snap.Queue[qi].Job.Nodes
			}
			if total > snap.FreeNodes {
				t.Fatalf("trial %d %s: %d nodes started with %d free",
					trial, ls.Name(), total, snap.FreeNodes)
			}
		}
	}
}

// TestLocalSearchNeverWorseThanSeed: the committed schedule's cost is at
// least as good as the seed ordering's cost, because the climb only
// accepts improvements. We verify via the one-decision contract: with a
// budget of exactly n (one evaluation), the result equals the heuristic
// schedule; larger budgets may only improve the objective.
func TestLocalSearchBudgetMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		snap := randomSnapshot(rng, 6)
		n := len(snap.Queue)
		costOf := func(budget int) Cost {
			ls := NewLocal(HeuristicLXF, DynamicBound(), budget)
			ls.Decide(snap)
			return ls.LastBestCost
		}
		small := costOf(n)       // heuristic order only
		large := costOf(100 * n) // plenty of climbing
		if small.Less(large) {
			t.Fatalf("trial %d: larger budget worsened cost: %v -> %v", trial, small, large)
		}
	}
}
