package core

import "testing"

// TestSizeOfTreePaperValues checks the exact values in Figure 1(d).
func TestSizeOfTreePaperValues(t *testing.T) {
	cases := []struct {
		n     int
		paths int64
		nodes int64
	}{
		{1, 1, 1},
		{2, 2, 4},
		{3, 6, 15},
		{4, 24, 64},
		{8, 40320, 109600},                 // paper: "110K"
		{10, 3628800, 9864100},             // paper: "3,629K paths, 9,864K nodes"
		{15, 1307674368000, 3554627472075}, // paper: "1,307,674M / 3,554,627M"
	}
	for _, c := range cases {
		got := SizeOfTree(c.n)
		if got.Paths != c.paths {
			t.Errorf("SizeOfTree(%d).Paths = %d, want %d", c.n, got.Paths, c.paths)
		}
		if got.Nodes != c.nodes {
			t.Errorf("SizeOfTree(%d).Nodes = %d, want %d", c.n, got.Nodes, c.nodes)
		}
	}
}

func TestSizeOfTreeZero(t *testing.T) {
	got := SizeOfTree(0)
	if got.Paths != 1 || got.Nodes != 0 {
		t.Errorf("SizeOfTree(0) = %+v, want 1 path (empty), 0 nodes", got)
	}
}

func TestSizeOfTreePanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, MaxTreeSizeJobs + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SizeOfTree(%d) did not panic", n)
				}
			}()
			SizeOfTree(n)
		}()
	}
}

// TestCountLDSPathsPaperValues: for n = 4, iterations 0,1,2 explore
// 1, 6, 11 paths (Section 2.2).
func TestCountLDSPathsPaperValues(t *testing.T) {
	want := []int64{1, 6, 11, 6}
	for k, w := range want {
		if got := CountLDSPaths(4, k); got != w {
			t.Errorf("CountLDSPaths(4, %d) = %d, want %d", k, got, w)
		}
	}
	// All iterations together cover the full tree.
	var sum int64
	for k := 0; k <= 3; k++ {
		sum += CountLDSPaths(4, k)
	}
	if sum != 24 {
		t.Errorf("sum of LDS iteration paths = %d, want 24", sum)
	}
}

// TestCountDDSPathsPaperValues: for n = 4, iterations 0,1,2 explore
// 1, 3, 8 paths (Figure 1(a), (e), (f)).
func TestCountDDSPathsPaperValues(t *testing.T) {
	want := []int64{1, 3, 8, 12}
	for i, w := range want {
		if got := CountDDSPaths(4, i); got != w {
			t.Errorf("CountDDSPaths(4, %d) = %d, want %d", i, got, w)
		}
	}
	var sum int64
	for i := 0; i <= 3; i++ {
		sum += CountDDSPaths(4, i)
	}
	if sum != 24 {
		t.Errorf("sum of DDS iteration paths = %d, want 24", sum)
	}
}

// TestCountPathsSumToFactorial checks the partition property for a
// range of n.
func TestCountPathsSumToFactorial(t *testing.T) {
	for n := 1; n <= 10; n++ {
		want := SizeOfTree(n).Paths
		var lds, dds int64
		for k := 0; k <= n-1; k++ {
			lds += CountLDSPaths(n, k)
			dds += CountDDSPaths(n, k)
		}
		if lds != want {
			t.Errorf("n=%d: LDS iterations cover %d paths, want %d", n, lds, want)
		}
		if dds != want {
			t.Errorf("n=%d: DDS iterations cover %d paths, want %d", n, dds, want)
		}
	}
}

func TestCountPathsEdgeCases(t *testing.T) {
	if got := CountLDSPaths(4, -1); got != 0 {
		t.Errorf("CountLDSPaths(4, -1) = %d, want 0", got)
	}
	if got := CountLDSPaths(4, 4); got != 0 {
		t.Errorf("CountLDSPaths(4, 4) = %d, want 0", got)
	}
	if got := CountDDSPaths(0, 0); got != 0 {
		t.Errorf("CountDDSPaths(0, 0) = %d, want 0", got)
	}
	if got := CountDDSPaths(4, 7); got != 0 {
		t.Errorf("CountDDSPaths(4, 7) = %d, want 0", got)
	}
}
