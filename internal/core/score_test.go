package core

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func scoreSnap() *sim.Snapshot {
	// 4-node machine, one 2-node job running 100s more; two queued jobs.
	return &sim.Snapshot{
		Now:       1000,
		Capacity:  4,
		FreeNodes: 2,
		Running: []sim.RunningJob{
			{ID: 1, Nodes: 2, Start: 900, PredictedEnd: 1100},
		},
		Queue: []sim.WaitingJob{
			{Job: job.Job{ID: 2, Submit: 500, Nodes: 2, Runtime: 50}, Estimate: 50, QueuePos: 0},
			{Job: job.Job{ID: 3, Submit: 990, Nodes: 4, Runtime: 10}, Estimate: 10, QueuePos: 1},
		},
	}
}

// TestPlanScorerHandComputed pins the scorer against hand-placed plans
// on a tiny snapshot: dynB bound is the longest wait (500s), the
// started job is charged its committed start, the rest continue
// greedily in arrival order.
func TestPlanScorerHandComputed(t *testing.T) {
	ps := NewPlanScorer()
	snap := scoreSnap()

	// Plan A: start job 2 now (fits the 2 free nodes). Job 2 waits
	// 500s = bound, zero excess. Job 3 needs all 4 nodes: earliest at
	// 1100 (running ends) — but job 2 occupies 2 nodes until 1050, so
	// still 1100. Wait 110s, no excess.
	a := ps.Score(snap, []int{0})
	if a[0] != 0 {
		t.Errorf("plan A excess = %v, want 0", a[0])
	}
	wantA := job.BoundedSlowdownAt(500, 50, 1000) + job.BoundedSlowdownAt(990, 10, 1100)
	if diff := a[1] - wantA; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("plan A slowdown sum = %v, want %v", a[1], wantA)
	}

	// Plan B: start nothing. Job 2 places earliest (now — the nodes are
	// free), same plan as A in this geometry, so the costs tie.
	b := ps.Score(snap, nil)
	if a != b {
		t.Errorf("plan B %v differs from plan A %v (greedy continuation starts job 2 anyway)", b, a)
	}

	// Scoring twice must be bit-identical (no profile residue).
	if again := ps.Score(snap, []int{0}); again != a {
		t.Errorf("rescoring diverged: %v then %v", a, again)
	}
}

// TestPlanScorerPrefersBetterPlans: delaying a wide urgent job behind a
// started narrow one must score worse than the plan the search favors.
func TestPlanScorerPrefersBetterPlans(t *testing.T) {
	ps := NewPlanScorer()
	snap := &sim.Snapshot{
		Now:       10000,
		Capacity:  4,
		FreeNodes: 4,
		Queue: []sim.WaitingJob{
			// Long-waiting wide job: already 9000s in queue.
			{Job: job.Job{ID: 1, Submit: 1000, Nodes: 4, Runtime: 5000}, Estimate: 5000, QueuePos: 0},
			// Fresh narrow long job.
			{Job: job.Job{ID: 2, Submit: 9990, Nodes: 1, Runtime: 8000}, Estimate: 8000, QueuePos: 1},
		},
	}
	wide := ps.Scalar(ps.Score(snap, []int{0}))
	narrow := ps.Scalar(ps.Score(snap, []int{1}))
	if wide >= narrow {
		t.Errorf("starting the urgent wide job scores %v, delaying it %v — want strictly better", wide, narrow)
	}
}
