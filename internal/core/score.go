package core

import (
	"schedsearch/internal/cluster"
	"schedsearch/internal/sim"
)

// DefaultExcessWeight is the scalarization weight PlanScorer applies to
// the first-level goal (excess wait seconds) relative to the second
// (sum of bounded slowdowns). A run's excess is typically orders of
// magnitude larger than a single job's slowdown, so the weight mostly
// preserves the lexicographic preference while keeping the second
// level as a tiebreak between excess-free plans.
const DefaultExcessWeight = 1000

// PlanScorer scores one decision — a set of jobs started now — on the
// uniform objective the search policies optimize, independent of which
// policy (or external agent) produced it. It is the common yardstick
// the meta-scheduler compares portfolio arms with and the environment
// export derives rewards from.
//
// The score is the hierarchical cost of the induced plan: the started
// jobs placed at the decision time, every remaining queued job placed
// greedily at its earliest fit in arrival order (FCFS completion — the
// neutral continuation, favoring no arm's private ordering). Scoring
// is passive: it runs on its own profile scratch and never touches the
// ledger or any policy state.
type PlanScorer struct {
	// Bound resolves the target wait bound per decision; zero value
	// means the paper's dynB.
	Bound BoundSpec
	// Cost scores individual placements; nil means HierarchicalCost.
	Cost CostFn
	// ExcessWeight scalarizes the two cost levels; 0 means
	// DefaultExcessWeight.
	ExcessWeight float64

	prof    *cluster.Profile
	started []bool
	undo    []cluster.Placement
}

// NewPlanScorer returns a scorer with the paper's objective (dynB +
// hierarchical cost) and the default scalarization.
func NewPlanScorer() *PlanScorer {
	return &PlanScorer{Bound: DynamicBound()}
}

// Score evaluates starting the given QueuePos set at snap.Now and
// returns the plan's hierarchical cost. starts must be feasible
// (distinct queue positions whose total width fits the free nodes);
// infeasibility shows up as a plan whose "started" jobs simply cost
// their earliest achievable start, not as an error — the ledger, not
// the scorer, is the feasibility authority.
func (ps *PlanScorer) Score(snap *sim.Snapshot, starts []int) Cost {
	costFn := ps.Cost
	if costFn == nil {
		costFn = HierarchicalCost
	}
	bound := ps.Bound.At(snap)

	if ps.prof == nil {
		ps.prof = cluster.New(snap.Capacity, snap.Now)
	} else {
		ps.prof.Reset(snap.Capacity, snap.Now)
	}
	for _, r := range snap.Running {
		end := r.PredictedEnd
		if end <= snap.Now {
			end = snap.Now + 1
		}
		ps.prof.Place(snap.Now, r.Nodes, end-snap.Now)
	}

	n := len(snap.Queue)
	ps.started = resizeBool(ps.started, n)
	for _, qi := range starts {
		if qi >= 0 && qi < n {
			ps.started[qi] = true
		}
	}

	var total Cost
	undo := ps.undo[:0]
	place := func(w sim.WaitingJob) {
		est := w.Estimate
		if est < 1 {
			est = 1
		}
		start, pl := ps.prof.PlaceEarliest(snap.Now, w.Job.Nodes, est)
		undo = append(undo, pl)
		total = total.Add(costFn(w, start, snap.Now, bound))
	}
	// Started jobs first: with feasible starts their earliest fit IS
	// snap.Now, so they are charged their committed start.
	for qi := 0; qi < n; qi++ {
		if ps.started[qi] {
			place(snap.Queue[qi])
		}
	}
	for qi := 0; qi < n; qi++ {
		if !ps.started[qi] {
			place(snap.Queue[qi])
		}
	}
	for i := len(undo) - 1; i >= 0; i-- {
		ps.prof.Undo(undo[i])
	}
	ps.undo = undo
	return total
}

// Scalar collapses a hierarchical cost into one comparable number
// (lower is better) using the configured excess weight.
func (ps *PlanScorer) Scalar(c Cost) float64 {
	w := ps.ExcessWeight
	if w == 0 {
		w = DefaultExcessWeight
	}
	return c[0]*w + c[1]
}
