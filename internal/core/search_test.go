package core

import (
	"fmt"
	"reflect"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// fourJobSnapshot builds the paper's running example: four waiting jobs
// whose fcfs order is 1-2-3-4 (ordered indices 0-3). Jobs are tiny
// one-node jobs on a large machine so every placement starts now and the
// search tree is explored in pure branch order.
func fourJobSnapshot() *sim.Snapshot {
	snap := &sim.Snapshot{Now: 1000, Capacity: 100, FreeNodes: 100}
	for i := 0; i < 4; i++ {
		j := job.Job{ID: i + 1, Submit: job.Time(i), Nodes: 1, Runtime: 60, Request: 60}
		snap.Queue = append(snap.Queue, sim.WaitingJob{Job: j, Estimate: 60, QueuePos: i})
	}
	return snap
}

// collectPaths runs one algorithm with unlimited budget and returns the
// explored complete paths (as ordered-index sequences) in exploration
// order.
func collectPaths(t *testing.T, snap *sim.Snapshot, algo Algorithm, limit int) [][]int {
	t.Helper()
	var s searchState
	var paths [][]int
	s.leafHook = func(path []int, _ Cost) {
		cp := make([]int, len(path))
		copy(cp, path)
		paths = append(paths, cp)
	}
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, limit)
	switch algo {
	case LDS:
		s.runLDS()
	case DDS:
		s.runDDS()
	}
	return paths
}

func pathIDs(path []int) string {
	// ordered indices equal job IDs - 1 in fourJobSnapshot (fcfs order).
	out := ""
	for i, oi := range path {
		if i > 0 {
			out += "-"
		}
		out += fmt.Sprintf("%d", oi+1)
	}
	return out
}

// TestLDSExplorationOrder verifies the LDS iteration structure of
// Section 2.2: iteration 0 is the heuristic path; iteration 1 holds the
// six 1-discrepancy paths; iteration 2 the eleven 2-discrepancy paths.
func TestLDSExplorationOrder(t *testing.T) {
	paths := collectPaths(t, fourJobSnapshot(), LDS, 1<<30)
	if len(paths) != 24 {
		t.Fatalf("LDS explored %d paths, want 24", len(paths))
	}
	if got := pathIDs(paths[0]); got != "1-2-3-4" {
		t.Errorf("iteration 0 path = %s, want 1-2-3-4", got)
	}
	// Paths 1..6 contain exactly one discrepancy each.
	for i := 1; i <= 6; i++ {
		if got := discrepancies(paths[i]); got != 1 {
			t.Errorf("path %d (%s) has %d discrepancies, want 1", i, pathIDs(paths[i]), got)
		}
	}
	// Paths 7..17 contain exactly two discrepancies each.
	for i := 7; i <= 17; i++ {
		if got := discrepancies(paths[i]); got != 2 {
			t.Errorf("path %d (%s) has %d discrepancies, want 2", i, pathIDs(paths[i]), got)
		}
	}
	// The example from the paper: 0-4-3-1-2 is the 18th path explored
	// under LDS (index 17 within iterations 0..2... it has two
	// discrepancies and is the last of them).
	if got := pathIDs(paths[17]); got != "4-3-1-2" {
		t.Errorf("18th LDS path = %s, want 4-3-1-2", got)
	}
	// No duplicates across iterations.
	seen := map[string]bool{}
	for _, p := range paths {
		id := pathIDs(p)
		if seen[id] {
			t.Errorf("path %s explored twice", id)
		}
		seen[id] = true
	}
}

// TestDDSExplorationOrder verifies the DDS iteration structure:
// iteration 0 = heuristic path (1 path), iteration 1 = 3 paths with the
// discrepancy at the root branch, iteration 2 = 8 paths.
func TestDDSExplorationOrder(t *testing.T) {
	paths := collectPaths(t, fourJobSnapshot(), DDS, 1<<30)
	if len(paths) != 1+3+8+12 {
		t.Fatalf("DDS explored %d paths, want 24", len(paths))
	}
	if got := pathIDs(paths[0]); got != "1-2-3-4" {
		t.Errorf("iteration 0 path = %s, want 1-2-3-4", got)
	}
	// Iteration 1: discrepancy at the root, heuristic below:
	// 2-1-3-4, 3-1-2-4, 4-1-2-3.
	want1 := []string{"2-1-3-4", "3-1-2-4", "4-1-2-3"}
	for i, w := range want1 {
		if got := pathIDs(paths[1+i]); got != w {
			t.Errorf("iteration 1 path %d = %s, want %s", i, got, w)
		}
	}
	// The paper's example: 4-3-1-2 is the 12th path explored under DDS.
	if got := pathIDs(paths[11]); got != "4-3-1-2" {
		t.Errorf("12th DDS path = %s, want 4-3-1-2", got)
	}
	// Iteration 2 paths (indices 4..11) all have their deepest
	// discrepancy at depth 2.
	for i := 4; i <= 11; i++ {
		if got := deepestDiscrepancy(paths[i]); got != 1 {
			t.Errorf("iteration-2 path %s deepest discrepancy at level %d, want 1",
				pathIDs(paths[i]), got)
		}
	}
	seen := map[string]bool{}
	for _, p := range paths {
		id := pathIDs(p)
		if seen[id] {
			t.Errorf("path %s explored twice", id)
		}
		seen[id] = true
	}
}

// discrepancies counts non-leftmost branch choices along a path of
// ordered indices: at each level the leftmost branch is the smallest
// remaining index.
func discrepancies(path []int) int {
	used := make([]bool, len(path))
	count := 0
	for _, oi := range path {
		smallest := -1
		for i := range used {
			if !used[i] {
				smallest = i
				break
			}
		}
		if oi != smallest {
			count++
		}
		used[oi] = true
	}
	return count
}

// deepestDiscrepancy returns the deepest level (0-based branch level)
// at which the path deviates from the heuristic, or -1 for the leftmost
// path.
func deepestDiscrepancy(path []int) int {
	used := make([]bool, len(path))
	deepest := -1
	for lvl, oi := range path {
		smallest := -1
		for i := range used {
			if !used[i] {
				smallest = i
				break
			}
		}
		if oi != smallest {
			deepest = lvl
		}
		used[oi] = true
	}
	return deepest
}

// TestIterationPathCountsMatchFormulas cross-checks the closed-form
// counts against actual exploration for several tree sizes.
func TestIterationPathCountsMatchFormulas(t *testing.T) {
	for n := 1; n <= 6; n++ {
		snap := &sim.Snapshot{Now: 1000, Capacity: 100, FreeNodes: 100}
		for i := 0; i < n; i++ {
			j := job.Job{ID: i + 1, Submit: job.Time(i), Nodes: 1, Runtime: 60, Request: 60}
			snap.Queue = append(snap.Queue, sim.WaitingJob{Job: j, Estimate: 60, QueuePos: i})
		}
		ldsPaths := collectPaths(t, snap, LDS, 1<<30)
		ddsPaths := collectPaths(t, snap, DDS, 1<<30)
		want := SizeOfTree(n).Paths
		if int64(len(ldsPaths)) != want {
			t.Errorf("n=%d: LDS explored %d paths, want %d", n, len(ldsPaths), want)
		}
		if int64(len(ddsPaths)) != want {
			t.Errorf("n=%d: DDS explored %d paths, want %d", n, len(ddsPaths), want)
		}
		// Per-iteration counts.
		byK := map[int]int64{}
		for _, p := range ldsPaths {
			byK[discrepancies(p)]++
		}
		for k := 0; k <= n-1; k++ {
			if byK[k] != CountLDSPaths(n, k) {
				t.Errorf("n=%d k=%d: %d LDS paths, want %d", n, k, byK[k], CountLDSPaths(n, k))
			}
		}
		byI := map[int]int64{}
		for _, p := range ddsPaths {
			byI[deepestDiscrepancy(p)+1]++ // iteration = deepest level + 1; leftmost = iteration 0
		}
		for i := 0; i <= n-1; i++ {
			if byI[i] != CountDDSPaths(n, i) {
				t.Errorf("n=%d iter=%d: %d DDS paths, want %d", n, i, byI[i], CountDDSPaths(n, i))
			}
		}
	}
}

// TestNodeCountMatchesTreeSize verifies that full enumeration visits
// every tree node the closed form predicts... once per iteration pass
// it appears in, for DDS (iterations share prefixes), so we check LDS
// leaf count and the scheduler's node accounting instead: iteration 0
// visits exactly n nodes.
func TestBudgetStopsSearch(t *testing.T) {
	snap := fourJobSnapshot()
	var s searchState
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 4)
	s.runDDS()
	if !s.aborted {
		t.Error("search with L=4 over a 64-node tree did not abort")
	}
	if !s.bestFound {
		t.Error("aborted search has no best schedule")
	}
	if s.nodes < 4 || s.nodes > 8 {
		t.Errorf("visited %d nodes with L=4, want a handful past the first full path", s.nodes)
	}
}

// TestFirstScheduleAlwaysCompletes: even with L=1 the iteration-0 path
// must complete so a schedule can be committed.
func TestFirstScheduleAlwaysCompletes(t *testing.T) {
	snap := fourJobSnapshot()
	var s searchState
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 1)
	s.runLDS()
	if !s.bestFound {
		t.Fatal("no schedule found with L=1")
	}
	if s.leaves < 1 {
		t.Fatal("no leaf evaluated with L=1")
	}
}

// TestSchedulerDecideStartsFeasibleSet runs Decide on a contended
// snapshot and verifies the returned set fits in the free nodes.
func TestSchedulerDecideStartsFeasibleSet(t *testing.T) {
	snap := &sim.Snapshot{Now: 500, Capacity: 8, FreeNodes: 5}
	snap.Running = []sim.RunningJob{{ID: 99, Nodes: 3, Start: 0, PredictedEnd: 1000}}
	sizes := []int{4, 3, 2, 1}
	for i, n := range sizes {
		j := job.Job{ID: i + 1, Submit: job.Time(i * 10), Nodes: n, Runtime: 600, Request: 600}
		snap.Queue = append(snap.Queue, sim.WaitingJob{Job: j, Estimate: 600, QueuePos: i})
	}
	for _, algo := range []Algorithm{LDS, DDS} {
		for _, h := range []Heuristic{HeuristicFCFS, HeuristicLXF} {
			sch := New(algo, h, DynamicBound(), 1000)
			starts := sch.Decide(snap)
			total := 0
			seen := map[int]bool{}
			for _, qi := range starts {
				if qi < 0 || qi >= len(snap.Queue) {
					t.Fatalf("%s: invalid queue index %d", sch.Name(), qi)
				}
				if seen[qi] {
					t.Fatalf("%s: duplicate queue index %d", sch.Name(), qi)
				}
				seen[qi] = true
				total += snap.Queue[qi].Job.Nodes
			}
			if total > snap.FreeNodes {
				t.Errorf("%s: started %d nodes with %d free", sch.Name(), total, snap.FreeNodes)
			}
			if len(starts) == 0 {
				t.Errorf("%s: started nothing although the 4-node job fits", sch.Name())
			}
		}
	}
}

// TestSchedulerFindsBackfillPackingBeyondHeuristic builds a case where
// the heuristic order wastes the machine but one discrepancy packs it:
// job A (8 nodes) blocked behind running load, jobs B, C (4 nodes each)
// could run now. FCFS order A-B-C starts B and C only if the search
// branches past A... with earliest-fit placement B and C start now even
// on the heuristic path, so instead check the search prefers the
// schedule that starts more work when the objective says so.
func TestSchedulerEmptyQueue(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 100)
	snap := &sim.Snapshot{Now: 0, Capacity: 4, FreeNodes: 4}
	if starts := sch.Decide(snap); len(starts) != 0 {
		t.Errorf("Decide on empty queue = %v, want empty", starts)
	}
}

// TestSchedulerSingleJob starts the only queued job immediately when it
// fits.
func TestSchedulerSingleJob(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 100)
	snap := &sim.Snapshot{Now: 100, Capacity: 4, FreeNodes: 4}
	j := job.Job{ID: 1, Submit: 0, Nodes: 2, Runtime: 60, Request: 60}
	snap.Queue = []sim.WaitingJob{{Job: j, Estimate: 60, QueuePos: 0}}
	starts := sch.Decide(snap)
	if !reflect.DeepEqual(starts, []int{0}) {
		t.Errorf("Decide = %v, want [0]", starts)
	}
}

// TestSchedulerNames checks the paper's naming scheme.
func TestSchedulerNames(t *testing.T) {
	cases := []struct {
		sch  *Scheduler
		want string
	}{
		{New(DDS, HeuristicLXF, DynamicBound(), 1000), "DDS/lxf/dynB"},
		{New(LDS, HeuristicFCFS, FixedBound(100*job.Hour), 1000), "LDS/fcfs/fixB=100h"},
	}
	for _, c := range cases {
		if got := c.sch.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// TestStatsAccumulate verifies the search effort counters.
func TestStatsAccumulate(t *testing.T) {
	sch := New(DDS, HeuristicFCFS, DynamicBound(), 1<<30)
	snap := fourJobSnapshot()
	sch.Decide(snap)
	st := sch.SearchStats
	if st.Decisions != 1 {
		t.Errorf("Decisions = %d, want 1", st.Decisions)
	}
	if st.Leaves != 24 {
		t.Errorf("Leaves = %d, want 24 (full enumeration)", st.Leaves)
	}
	if st.Exhausted != 1 || st.BudgetHits != 0 {
		t.Errorf("Exhausted/BudgetHits = %d/%d, want 1/0", st.Exhausted, st.BudgetHits)
	}
	if st.Nodes < 24 {
		t.Errorf("Nodes = %d, want >= 24", st.Nodes)
	}
}
