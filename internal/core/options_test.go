package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// TestDFSExploresInTreeOrder: plain DFS visits permutations in
// lexicographic branch order.
func TestDFSExploresInTreeOrder(t *testing.T) {
	paths := collectPathsAlgo(t, fourJobSnapshot(), func(s *searchState) { s.runDFS(0) })
	if len(paths) != 24 {
		t.Fatalf("DFS explored %d paths, want 24", len(paths))
	}
	want := []string{"1-2-3-4", "1-2-4-3", "1-3-2-4", "1-3-4-2", "1-4-2-3", "1-4-3-2", "2-1-3-4"}
	for i, w := range want {
		if got := pathIDs(paths[i]); got != w {
			t.Fatalf("DFS path %d = %s, want %s", i, got, w)
		}
	}
	// Last path is the full reversal.
	if got := pathIDs(paths[23]); got != "4-3-2-1" {
		t.Errorf("last DFS path = %s", got)
	}
}

// collectPathsAlgo mirrors collectPaths for a custom runner.
func collectPathsAlgo(t *testing.T, snap *sim.Snapshot, run func(*searchState)) [][]int {
	t.Helper()
	var s searchState
	var paths [][]int
	s.leafHook = func(path []int, _ Cost) {
		cp := make([]int, len(path))
		copy(cp, path)
		paths = append(paths, cp)
	}
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 1<<30)
	run(&s)
	return paths
}

// TestDFSWithinBudgetOnlyVariesTail: with a small budget, every path
// DFS explores shares the heuristic prefix — the weakness that
// motivates discrepancy search (Section 2.2's premise).
func TestDFSWithinBudgetOnlyVariesTail(t *testing.T) {
	snap := &sim.Snapshot{Now: 1000, Capacity: 100, FreeNodes: 100}
	n := 8
	for i := 0; i < n; i++ {
		j := job.Job{ID: i + 1, Submit: job.Time(i), Nodes: 1, Runtime: 60, Request: 60}
		snap.Queue = append(snap.Queue, sim.WaitingJob{Job: j, Estimate: 60, QueuePos: i})
	}
	var s searchState
	prefixIntact := true
	s.leafHook = func(path []int, _ Cost) {
		// With a 100-node budget over an 8-job tree, DFS cannot afford
		// to deviate in the first positions.
		if path[0] != 0 || path[1] != 1 {
			prefixIntact = false
		}
	}
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 100)
	s.runDFS(0)
	if !prefixIntact {
		t.Error("budgeted DFS deviated in the first two positions; expected tail-only variation")
	}
	// DDS with the same budget DOES vary the first position.
	var d searchState
	variedRoot := false
	d.leafHook = func(path []int, _ Cost) {
		if path[0] != 0 {
			variedRoot = true
		}
	}
	d.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 100)
	d.runDDS()
	if !variedRoot {
		t.Error("budgeted DDS never varied the root branch")
	}
}

// TestSchedulerWithPruneAndBudget: pruning composes with the budget and
// still returns feasible decisions.
func TestSchedulerWithPruneAndBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		snap := randomSnapshot(rng, 4+rng.Intn(8))
		sch := New(DDS, HeuristicLXF, DynamicBound(), 50)
		sch.Prune = true
		starts := sch.Decide(snap)
		total := 0
		for _, qi := range starts {
			total += snap.Queue[qi].Job.Nodes
		}
		if total > snap.FreeNodes {
			t.Fatalf("trial %d: infeasible starts %v", trial, starts)
		}
	}
}

// TestLocalSchedulerWithCustomCost: LocalScheduler accepts the same
// CostFn extension point as the complete-search scheduler.
func TestLocalSchedulerWithCustomCost(t *testing.T) {
	ls := NewLocal(HeuristicLXF, DynamicBound(), 300)
	ls.Cost = RuntimeScaledCost(2, job.Hour)
	starts := ls.Decide(fourJobSnapshot())
	if len(starts) != 4 {
		t.Errorf("starts = %v, want all four trivial jobs", starts)
	}
}

// TestFairshareWithFixedBound: the wrapper composes with any bound.
func TestFairshareWithFixedBound(t *testing.T) {
	fs := NewFairshare(New(DDS, HeuristicLXF, FixedBound(50*job.Hour), 300), 2)
	if got := fs.Name(); got != "DDS/lxf/fixB=50h+fs" {
		t.Errorf("Name = %q", got)
	}
	starts := fs.Decide(fourJobSnapshot())
	if len(starts) != 4 {
		t.Errorf("starts = %v", starts)
	}
}

// TestHybridSpendsBudgetInBothPhases: the hybrid's node accounting must
// cover the DDS pass plus the climb, within the limit.
func TestHybridBudgetAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	snap := randomSnapshot(rng, 8)
	ls := NewHybrid(HeuristicLXF, DynamicBound(), 400)
	ls.Decide(snap)
	if ls.SearchStats.Nodes > 400+8 { // one final evaluation may straddle
		t.Errorf("hybrid visited %d nodes with budget 400", ls.SearchStats.Nodes)
	}
	if ls.SearchStats.Nodes < 200 {
		t.Errorf("hybrid visited only %d nodes; the DDS pass alone should use ~200", ls.SearchStats.Nodes)
	}
}
