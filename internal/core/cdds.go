package core

// Adjacent discrepancy search (Lahimer, Lopez & Haouari: climbing
// depth-bounded adjacent discrepancy search, arXiv:1103.1516).
//
// ADDS is DDS with every discrepancy restricted to the branch adjacent
// to the heuristic choice: at any level the search takes branch rank 0
// (the heuristic) or rank 1 (the adjacent discrepancy), never deeper.
// The restricted tree holds 2^(n-1) leaves — the orderings reachable by
// swapping a job with its heuristic neighbor at any subset of levels —
// partitioned by iteration exactly like DDS: iteration i forces the
// rank-1 branch at level i-1, branches freely over {0, 1} above it and
// follows the heuristic below.
//
// CDDS adds climbing: the reference ordering the ranks are measured
// against starts as the heuristic order; whenever a sweep improves the
// incumbent, the free list is relinked to the incumbent ordering and
// the sweep restarts from the shallowest discrepancy. With an unbounded
// budget CDDS terminates at a local optimum of the adjacent
// neighborhood (a full sweep without improvement); under a budget it
// aborts like every other algorithm, with the iteration-0 schedule
// always in hand.

// addsDFS explores iteration iter of ADDS from the given level: like
// ddsDFS but with branching restricted to ranks {0, 1} everywhere.
func (s *searchState) addsDFS(level, iter int) {
	n := len(s.ordered)
	if level == n {
		s.leaf()
		return
	}
	heuristicOnly := iter == 0 || level > iter-1
	forced := iter > 0 && level == iter-1
	b := 0
	for oi := s.freeHead; oi >= 0; oi = s.freeNext[oi] {
		if forced && b == 0 {
			b++
			continue
		}
		b++
		if !s.visit(oi, func() { s.addsDFS(level+1, iter) }) {
			return
		}
		if heuristicOnly || b >= 2 {
			break
		}
	}
}

// runADDS runs the full adjacent sweep: iteration 0 is the heuristic
// path, iteration i forces the adjacent discrepancy at level i-1.
func (s *searchState) runADDS() {
	n := len(s.ordered)
	s.addsDFS(0, 0)
	for i := 1; i <= n-1 && !s.aborted; i++ {
		s.addsDFS(0, i)
	}
}

// runCDDS runs climbing ADDS: sweep the adjacent iterations against the
// current reference ordering; on improvement, re-anchor the reference
// to the incumbent and restart the sweep. Terminates on a full sweep
// without improvement (a local optimum of the adjacent neighborhood) or
// on budget.
func (s *searchState) runCDDS() {
	n := len(s.ordered)
	s.addsDFS(0, 0) // evaluate the initial (heuristic) reference
	if n < 2 {
		return
	}
	for {
		improved := false
		ref := s.bestCost // incumbent at sweep start (iteration 0 set it)
		for i := 1; i <= n-1; i++ {
			s.addsDFS(0, i)
			if s.aborted {
				return
			}
			if s.bestCost.Less(ref) {
				improved = true
				break
			}
		}
		if !improved {
			return
		}
		// Each climb strictly improves the incumbent, so the loop
		// terminates: costs cannot cycle downward forever over a finite
		// leaf set.
		s.climbToBest()
	}
}

// relinkOrder rebuilds the (fully linked) free list so it enumerates
// the ordered indices in the given order: branch rank 0 at every level
// then follows that ordering. order must cover every ordered index
// exactly once, and every job must currently be free (no partial path).
func (s *searchState) relinkOrder(order []int) {
	n := len(order)
	for l, oi := range order {
		if l > 0 {
			s.freePrev[oi] = order[l-1]
		} else {
			s.freePrev[oi] = -1
			s.freeHead = oi
		}
		if l < n-1 {
			s.freeNext[oi] = order[l+1]
		} else {
			s.freeNext[oi] = -1
		}
	}
}

// climbToBest re-anchors the search on the incumbent: the free list is
// relinked into bestPath order (so branch rank 0 now follows the
// incumbent ordering) and the placement memo is re-recorded from the
// incumbent's known starts — the new reference path's prefixes are
// served from the memo without re-running EarliestFit.
func (s *searchState) climbToBest() {
	order := s.bestPath
	s.relinkOrder(order)
	s.memoPath = append(s.memoPath[:0], order...)
	s.memoStart = s.memoStart[:0]
	for _, oi := range order {
		s.memoStart = append(s.memoStart, s.bestStart[oi])
	}
	s.memoMatched = 0
	s.memoRecord = false
}

// addsIterNodes returns the number of visit() calls ADDS iteration i
// performs on an n-job tree (saturating at satCap): levels above the
// forced depth branch two ways, the forced level takes exactly the
// adjacent branch, and each of the 2^(i-1) surviving paths runs
// heuristically to depth n. Iteration 0 is the heuristic path.
func addsIterNodes(n, i int) int64 {
	if n <= 0 {
		return 0
	}
	if i == 0 {
		return int64(n)
	}
	var total int64
	p := int64(1) // 2^l running product
	for l := 0; l <= i-2; l++ {
		p = satMul(p, 2) // 2^(l+1) visits at free level l
		total = satAdd(total, p)
	}
	// p == 2^(i-1): one forced visit per prefix, then n-i heuristic
	// levels per path.
	total = satAdd(total, satMul(p, int64(n-i+1)))
	return total
}
