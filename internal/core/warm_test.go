package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// TestSchedulerEmptyQueueClearsState is the regression for the stale
// LastPlan/LastCost bug: after a decision over a non-empty queue, a
// decision over an empty queue must not keep reporting the previous
// plan and cost.
func TestSchedulerEmptyQueueClearsState(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 100)
	sch.WarmStart = true
	sch.Decide(fourJobSnapshot())
	if len(sch.LastPlan()) != 4 || sch.LastCost() == (Cost{}) {
		t.Fatalf("precondition: first decision planned %d jobs at cost %v",
			len(sch.LastPlan()), sch.LastCost())
	}
	empty := &sim.Snapshot{Now: 2000, Capacity: 100, FreeNodes: 100}
	if starts := sch.Decide(empty); len(starts) != 0 {
		t.Fatalf("Decide on empty queue = %v, want empty", starts)
	}
	if got := sch.LastPlan(); len(got) != 0 {
		t.Errorf("LastPlan after empty decision = %v, want empty", got)
	}
	if got := sch.LastCost(); got != (Cost{}) {
		t.Errorf("LastCost after empty decision = %v, want zero", got)
	}
	if sch.warm.valid {
		t.Error("warm carry still valid after empty decision")
	}
}

// TestWarmSeedSplice pins the seed construction: survivors keep their
// carried relative order, departures vanish, arrivals enter at their
// heuristic rank.
func TestWarmSeedSplice(t *testing.T) {
	snap := &sim.Snapshot{Now: 1000, Capacity: 100, FreeNodes: 100}
	// fcfs branch order: 1, 5, 3, 4 (ordered indices 0..3).
	for i, id := range []int{1, 5, 3, 4} {
		j := job.Job{ID: id, Submit: job.Time(i), Nodes: 1, Runtime: 60, Request: 60}
		snap.Queue = append(snap.Queue, sim.WaitingJob{Job: j, Estimate: 60, QueuePos: i})
	}
	sch := New(DDS, HeuristicFCFS, DynamicBound(), 100)
	sch.WarmStart = true
	// Carried ordering from the "previous" decision: job 2 departed,
	// job 5 (ordered index 1) is a new arrival.
	sch.warm.order = []int{4, 2, 3, 1}
	sch.warm.valid = true

	s := &sch.s
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 100)
	sch.seedWarm(s)

	// Survivors in carried order: 4, 3, 1 -> ordered indices 3, 2, 0.
	// Arrival 5 has heuristic rank 1, so it splices in at position 1.
	want := []int{3, 1, 2, 0}
	if len(sch.warm.seq) != len(want) {
		t.Fatalf("seed %v, want %v", sch.warm.seq, want)
	}
	for i := range want {
		if sch.warm.seq[i] != want[i] {
			t.Fatalf("seed %v, want %v", sch.warm.seq, want)
		}
	}
	if !s.seedSet || !s.ntbSet || s.nodesToBest != 0 {
		t.Errorf("seed not installed as incumbent: seedSet=%v ntbSet=%v ntb=%d",
			s.seedSet, s.ntbSet, s.nodesToBest)
	}
	if sch.SearchStats.WarmDecisions != 1 || sch.SearchStats.WarmSeedNodes != 4 {
		t.Errorf("warm accounting: %+v", sch.SearchStats)
	}
}

// evolvingQueue mutates a queue the way decision points see it: some
// jobs leave (started or completed), new jobs arrive with fresh IDs.
type evolvingQueue struct {
	rng    *rand.Rand
	nextID int
	jobs   []sim.WaitingJob
	now    job.Time
}

func (q *evolvingQueue) step(capacity int) *sim.Snapshot {
	q.now += job.Time(1 + q.rng.Intn(600))
	// Departures.
	kept := q.jobs[:0]
	for _, w := range q.jobs {
		if q.rng.Float64() < 0.35 {
			continue
		}
		kept = append(kept, w)
	}
	q.jobs = kept
	// Arrivals.
	for len(q.jobs) < 2 || q.rng.Float64() < 0.5 {
		if len(q.jobs) >= 7 {
			break
		}
		est := job.Duration(60 + q.rng.Intn(7200))
		q.jobs = append(q.jobs, sim.WaitingJob{
			Job: job.Job{
				ID:      q.nextID,
				Submit:  q.now - job.Time(q.rng.Intn(3000)),
				Nodes:   1 + q.rng.Intn(capacity),
				Runtime: est, Request: est,
			},
			Estimate: est,
		})
		q.nextID++
	}
	snap := &sim.Snapshot{Now: q.now, Capacity: capacity, FreeNodes: capacity}
	used := 0
	if q.rng.Float64() < 0.5 {
		used = q.rng.Intn(capacity)
		if used > 0 {
			snap.Running = append(snap.Running, sim.RunningJob{
				ID: 1_000_000, Nodes: used, Start: 0,
				PredictedEnd: q.now + job.Duration(1+q.rng.Intn(3600)),
			})
		}
	}
	snap.FreeNodes = capacity - used
	for i := range q.jobs {
		q.jobs[i].QueuePos = i
		snap.Queue = append(snap.Queue, q.jobs[i])
	}
	return snap
}

// TestWarmMatchesColdSequences is the keystone discipline at unit
// scale: over evolving decision sequences — every algorithm, pruning on
// and off, budgets from starvation to full enumeration — a warm-started
// scheduler must commit bit-identical schedules, plans, costs and
// enumeration counters to a cold one.
func TestWarmMatchesColdSequences(t *testing.T) {
	algos := []Algorithm{DDS, LDS, DFS, ADDS, CDDS}
	for _, algo := range algos {
		for _, prune := range []bool{false, true} {
			rng := rand.New(rand.NewSource(61))
			limit := []int{5, 60, 1 << 30}[rng.Intn(3)]
			cold := New(algo, HeuristicLXF, DynamicBound(), limit)
			warm := New(algo, HeuristicLXF, DynamicBound(), limit)
			cold.Prune, warm.Prune = prune, prune
			warm.WarmStart = true
			q := &evolvingQueue{rng: rng, nextID: 1}
			for step := 0; step < 30; step++ {
				snap := q.step(16)
				assertSameDecision(t, warm.Name(), snap, cold, warm)
				if d := warm.SearchStats.NodesToBest - cold.SearchStats.NodesToBest; d > 0 {
					t.Fatalf("%s prune=%v step %d: warm nodes-to-best exceeds cold by %d",
						warm.Name(), prune, step, d)
				}
			}
			if warm.SearchStats.WarmDecisions == 0 {
				t.Errorf("%s prune=%v: no decision was ever seeded", warm.Name(), prune)
			}
		}
	}
}

// TestWarmParallelMatchesSequential: warm seeding must compose with the
// parallel search — identical commits AND identical NodesToBest, since
// the merge replays the sequential improvement order.
func TestWarmParallelMatchesSequential(t *testing.T) {
	for _, algo := range []Algorithm{DDS, LDS, ADDS} {
		rng := rand.New(rand.NewSource(67))
		seq := New(algo, HeuristicLXF, DynamicBound(), 150)
		par := New(algo, HeuristicLXF, DynamicBound(), 150)
		seq.WarmStart, par.WarmStart = true, true
		par.Workers = 4
		q := &evolvingQueue{rng: rng, nextID: 1}
		for step := 0; step < 25; step++ {
			snap := q.step(16)
			assertSameDecision(t, par.Name(), snap, seq, par)
			if seq.SearchStats.NodesToBest != par.SearchStats.NodesToBest {
				t.Fatalf("%s step %d: nodes-to-best %d parallel, %d sequential",
					par.Name(), step, par.SearchStats.NodesToBest, seq.SearchStats.NodesToBest)
			}
		}
		if par.SearchStats.WarmDecisions == 0 {
			t.Errorf("%s: no decision was ever seeded", par.Name())
		}
	}
}

// TestWarmSeedNeverCommitted: the seed is accounting only — even when
// the budget is too small to re-find the carried schedule, the commit
// comes from the enumerated tree (here: the heuristic path), exactly as
// cold search would.
func TestWarmSeedNeverCommitted(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cold := New(DDS, HeuristicLXF, DynamicBound(), 1)
	warm := New(DDS, HeuristicLXF, DynamicBound(), 1)
	warm.WarmStart = true
	q := &evolvingQueue{rng: rng, nextID: 1}
	for step := 0; step < 20; step++ {
		snap := q.step(12)
		assertSameDecision(t, "L=1", snap, cold, warm)
	}
}

// TestSLOAdaptsBudget: with an SLO set, the effective limit must move
// off the configured NodeLimit once a pace estimate exists, stay within
// its clamp, and be recorded in the stats.
func TestSLOAdaptsBudget(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 50)
	sch.SLO = 1 // 1ns: starves the budget to the minimum once paced
	snap := fourJobSnapshot()
	sch.Decide(snap)
	if got := sch.SearchStats.EffectiveLimit; got != 50 {
		t.Fatalf("first decision effective limit = %d, want NodeLimit 50", got)
	}
	if sch.nsPerNode <= 0 {
		t.Fatal("no pace estimate after a decision")
	}
	sch.Decide(snap)
	if got := sch.SearchStats.EffectiveLimit; got != 1 {
		t.Errorf("1ns SLO effective limit = %d, want clamp to 1", got)
	}

	fast := New(DDS, HeuristicLXF, DynamicBound(), 50)
	fast.SLO = 1 << 40 // ~18 minutes: buys more than the cap
	fast.nsPerNode = 0.0001
	fast.Decide(snap)
	fast.Decide(snap)
	if got := fast.SearchStats.EffectiveLimit; got != maxAdaptiveLimit {
		t.Errorf("huge SLO effective limit = %d, want cap %d", got, maxAdaptiveLimit)
	}
	if fast.SearchStats.EffectiveLimitSum < int64(50)+maxAdaptiveLimit {
		t.Errorf("EffectiveLimitSum = %d, want at least %d",
			fast.SearchStats.EffectiveLimitSum, int64(50)+maxAdaptiveLimit)
	}
}

// TestOrderJobsLXFKeysBitIdentical: the precomputed-key LXF sort must
// order exactly as the direct recomputing comparator did.
func TestOrderJobsLXFKeysBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		now := job.Time(10000 + rng.Intn(50000))
		n := 1 + rng.Intn(10)
		mk := func() []sim.WaitingJob {
			rj := rand.New(rand.NewSource(int64(trial)))
			var jobs []sim.WaitingJob
			for i := 0; i < n; i++ {
				est := job.Duration(1 + rj.Intn(14400))
				jobs = append(jobs, sim.WaitingJob{
					Job: job.Job{
						ID:     i + 1,
						Submit: now - job.Time(rj.Intn(40000)),
					},
					Estimate: est, QueuePos: i,
				})
			}
			return jobs
		}
		got := mk()
		orderJobs(got, HeuristicLXF, now, nil)

		// Reference: the original insertion sort recomputing the key in
		// every comparison.
		want := mk()
		for i := 1; i < len(want); i++ {
			for k := i; k > 0; k-- {
				a, b := &want[k], &want[k-1]
				sa := job.BoundedSlowdownAt(a.Job.Submit, a.Estimate, now)
				sb := job.BoundedSlowdownAt(b.Job.Submit, b.Estimate, now)
				if !(sa != sb && sa > sb ||
					sa == sb && (a.Job.Submit < b.Job.Submit ||
						a.Job.Submit == b.Job.Submit && a.Job.ID < b.Job.ID)) {
					break
				}
				want[k], want[k-1] = want[k-1], want[k]
			}
		}
		for i := range want {
			if got[i].Job.ID != want[i].Job.ID {
				t.Fatalf("trial %d: order %v, want %v at %d", trial, got[i].Job.ID, want[i].Job.ID, i)
			}
		}
	}
}

// TestDecideSteadyStateAllocFree: the sequential search — warm start,
// LXF keys and all — must not allocate per decision once its scratch is
// sized.
func TestDecideSteadyStateAllocFree(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 200)
	sch.WarmStart = true
	snap := fourJobSnapshot()
	sch.Decide(snap) // size the scratch
	sch.Decide(snap)
	if avg := testing.AllocsPerRun(20, func() { sch.Decide(snap) }); avg > 0 {
		t.Errorf("Decide allocates %.1f times per decision in steady state", avg)
	}
}
