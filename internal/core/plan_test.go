package core

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func TestLastPlanCoversQueue(t *testing.T) {
	snap := fourJobSnapshot()
	sch := New(DDS, HeuristicLXF, DynamicBound(), 1000)
	starts := sch.Decide(snap)
	plan := sch.LastPlan()
	if len(plan) != len(snap.Queue) {
		t.Fatalf("plan has %d entries for a %d-job queue", len(plan), len(snap.Queue))
	}
	ids := map[int]bool{}
	for _, p := range plan {
		ids[p.JobID] = true
		if p.Planned < snap.Now {
			t.Errorf("job %d planned at %d, before now %d", p.JobID, p.Planned, snap.Now)
		}
	}
	for _, w := range snap.Queue {
		if !ids[w.Job.ID] {
			t.Errorf("job %d missing from plan", w.Job.ID)
		}
	}
	// Jobs the decision starts must be planned at exactly now.
	byID := map[int]PlannedStart{}
	for _, p := range plan {
		byID[p.JobID] = p
	}
	for _, qi := range starts {
		id := snap.Queue[qi].Job.ID
		if byID[id].Planned != snap.Now {
			t.Errorf("started job %d planned at %d, want now", id, byID[id].Planned)
		}
	}
}

func TestLastPlanReflectsContention(t *testing.T) {
	// One free node, two one-node jobs with equal estimates: one starts
	// now, the other is planned after the first completes.
	now := job.Time(5000)
	snap := &sim.Snapshot{Now: now, Capacity: 2, FreeNodes: 1}
	snap.Running = []sim.RunningJob{{ID: 9, Nodes: 1, Start: 0, PredictedEnd: now + 10000}}
	for i := 0; i < 2; i++ {
		snap.Queue = append(snap.Queue, sim.WaitingJob{
			Job:      job.Job{ID: i + 1, Submit: job.Time(i), Nodes: 1, Runtime: 600, Request: 600},
			Estimate: 600, QueuePos: i,
		})
	}
	sch := New(DDS, HeuristicLXF, DynamicBound(), 1000)
	sch.Decide(snap)
	plan := sch.LastPlan()
	var nowCount, laterCount int
	for _, p := range plan {
		switch p.Planned {
		case now:
			nowCount++
		case now + 600:
			laterCount++
		default:
			t.Errorf("job %d planned at %d, want %d or %d", p.JobID, p.Planned, now, now+600)
		}
	}
	if nowCount != 1 || laterCount != 1 {
		t.Errorf("plan spread now=%d later=%d, want 1/1", nowCount, laterCount)
	}
}

func TestLastPlanResetsBetweenDecisions(t *testing.T) {
	sch := New(DDS, HeuristicLXF, DynamicBound(), 1000)
	sch.Decide(fourJobSnapshot())
	if len(sch.LastPlan()) != 4 {
		t.Fatalf("plan size %d", len(sch.LastPlan()))
	}
	// A smaller queue must shrink the plan.
	snap := fourJobSnapshot()
	snap.Queue = snap.Queue[:2]
	sch.Decide(snap)
	if len(sch.LastPlan()) != 2 {
		t.Errorf("plan size %d after 2-job decision", len(sch.LastPlan()))
	}
}
