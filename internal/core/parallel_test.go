package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// flatQueueSnapshot builds an uncontended n-job queue whose fcfs branch
// order equals queue order (ordered index i = job i), so search-tree
// shape is the full n! permutation tree.
func flatQueueSnapshot(n int) *sim.Snapshot {
	snap := &sim.Snapshot{Now: 1000, Capacity: 100, FreeNodes: 100}
	for i := 0; i < n; i++ {
		j := job.Job{ID: i + 1, Submit: job.Time(i), Nodes: 1, Runtime: 60, Request: 60}
		snap.Queue = append(snap.Queue, sim.WaitingJob{Job: j, Estimate: 60, QueuePos: i})
	}
	return snap
}

// seqIterNodes runs one discrepancy iteration sequentially with an
// unlimited budget and returns the number of nodes it visits.
func seqIterNodes(snap *sim.Snapshot, algo Algorithm, iter int) int64 {
	var s searchState
	s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 1)
	s.limit = satCap
	switch algo {
	case LDS:
		s.ldsDFS(0, iter)
	case DDS:
		s.ddsDFS(0, iter)
	case ADDS:
		s.addsDFS(0, iter)
	}
	return s.nodes
}

// TestIterNodeCountsMatchSequential is the foundation of the budget
// shard: the closed-form per-iteration node counts must equal the
// sequential search's actual visit counts for every iteration.
func TestIterNodeCountsMatchSequential(t *testing.T) {
	var sc shardScratch
	for n := 1; n <= 8; n++ {
		snap := flatQueueSnapshot(n)
		for iter := 0; iter <= n-1; iter++ {
			if got, want := sc.ldsIterNodes(n, iter), seqIterNodes(snap, LDS, iter); got != want {
				t.Errorf("ldsIterNodes(%d, %d) = %d, sequential visits %d", n, iter, got, want)
			}
			if got, want := ddsIterNodes(n, iter), seqIterNodes(snap, DDS, iter); got != want {
				t.Errorf("ddsIterNodes(%d, %d) = %d, sequential visits %d", n, iter, got, want)
			}
		}
	}
}

// TestIterNodeCountsShapeOnly: the counts are a pure function of the
// tree shape, so a contended snapshot (different placements, same n)
// must yield identical per-iteration visit counts.
func TestIterNodeCountsShapeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var sc shardScratch
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		snap := randomSnapshot(rng, n)
		for iter := 0; iter <= n-1; iter++ {
			if got, want := sc.ldsIterNodes(n, iter), seqIterNodes(snap, LDS, iter); got != want {
				t.Errorf("trial %d: ldsIterNodes(%d, %d) = %d, sequential visits %d",
					trial, n, iter, got, want)
			}
			if got, want := ddsIterNodes(n, iter), seqIterNodes(snap, DDS, iter); got != want {
				t.Errorf("trial %d: ddsIterNodes(%d, %d) = %d, sequential visits %d",
					trial, n, iter, got, want)
			}
		}
	}
}

// TestIterNodeCountsSaturate: factorial node counts overflow int64
// around n=20; the saturating arithmetic must clamp, never wrap.
func TestIterNodeCountsSaturate(t *testing.T) {
	var sc shardScratch
	for n := 2; n <= 64; n++ {
		for iter := 0; iter <= n-1; iter++ {
			if c := sc.ldsIterNodes(n, iter); c < int64(n) || c > satCap {
				t.Fatalf("ldsIterNodes(%d, %d) = %d out of range", n, iter, c)
			}
			if c := ddsIterNodes(n, iter); c <= 0 || c > satCap {
				t.Fatalf("ddsIterNodes(%d, %d) = %d out of range", n, iter, c)
			}
		}
	}
	if got := satAdd(satCap-1, satCap-1); got != satCap {
		t.Errorf("satAdd near cap = %d, want %d", got, satCap)
	}
	if got := satMul(1<<31, 1<<31); got != satCap {
		t.Errorf("satMul overflow = %d, want %d", got, satCap)
	}
	if got := satMul(0, satCap); got != 0 {
		t.Errorf("satMul(0, cap) = %d, want 0", got)
	}
}

// assertSameDecision runs one decision on both schedulers and requires
// bit-identical outcomes: committed starts, best cost, planned starts,
// and all effort counters.
func assertSameDecision(t *testing.T, tag string, snap *sim.Snapshot, seq, par *Scheduler) {
	t.Helper()
	seqStarts := append([]int(nil), seq.Decide(snap)...)
	parStarts := append([]int(nil), par.Decide(snap)...)

	if len(seqStarts) != len(parStarts) {
		t.Fatalf("%s: starts %v parallel, %v sequential", tag, parStarts, seqStarts)
	}
	for i := range seqStarts {
		if seqStarts[i] != parStarts[i] {
			t.Fatalf("%s: starts %v parallel, %v sequential", tag, parStarts, seqStarts)
		}
	}
	if seq.LastCost() != par.LastCost() {
		t.Fatalf("%s: best cost %v parallel, %v sequential", tag, par.LastCost(), seq.LastCost())
	}
	seqPlan, parPlan := seq.LastPlan(), par.LastPlan()
	if len(seqPlan) != len(parPlan) {
		t.Fatalf("%s: plan length %d parallel, %d sequential", tag, len(parPlan), len(seqPlan))
	}
	for i := range seqPlan {
		if seqPlan[i] != parPlan[i] {
			t.Fatalf("%s: plan[%d] %+v parallel, %+v sequential", tag, i, parPlan[i], seqPlan[i])
		}
	}
	ss, ps := seq.SearchStats, par.SearchStats
	if ss.Nodes != ps.Nodes || ss.Leaves != ps.Leaves {
		t.Fatalf("%s: nodes/leaves %d/%d parallel, %d/%d sequential",
			tag, ps.Nodes, ps.Leaves, ss.Nodes, ss.Leaves)
	}
	if ss.BudgetHits != ps.BudgetHits || ss.Exhausted != ps.Exhausted {
		t.Fatalf("%s: budgetHits/exhausted %d/%d parallel, %d/%d sequential",
			tag, ps.BudgetHits, ps.Exhausted, ss.BudgetHits, ss.Exhausted)
	}
}

// TestParallelDecideMatchesSequential is the tentpole guarantee: over
// random contended decision points, random budgets (from heuristic-only
// up to full enumeration), both algorithms and both heuristics, the
// parallel search must commit bit-identical schedules with identical
// effort accounting. Run under -race this also exercises the worker
// pool for data races.
func TestParallelDecideMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		snap := randomSnapshot(rng, 2+rng.Intn(6))
		limit := 1 + rng.Intn(400)
		for _, algo := range []Algorithm{LDS, DDS} {
			for _, h := range []Heuristic{HeuristicFCFS, HeuristicLXF} {
				seq := New(algo, h, DynamicBound(), limit)
				par := New(algo, h, DynamicBound(), limit)
				par.Workers = 4
				tag := par.Name()
				assertSameDecision(t, tag, snap, seq, par)
			}
		}
	}
}

// TestParallelWorkerCountIndependence: the committed schedule must not
// depend on the worker count.
func TestParallelWorkerCountIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		snap := randomSnapshot(rng, 3+rng.Intn(4))
		limit := 20 + rng.Intn(200)
		for _, algo := range []Algorithm{LDS, DDS} {
			for _, workers := range []int{2, 3, 4, 8} {
				seq := New(algo, HeuristicLXF, DynamicBound(), limit)
				par := New(algo, HeuristicLXF, DynamicBound(), limit)
				par.Workers = workers
				assertSameDecision(t, par.Name(), snap, seq, par)
			}
		}
	}
}

// TestParallelSchedulerReuse: the parallel scratch (worker states, task
// and result slots) is reused across decisions; a sequence of decisions
// with varying queue sizes on ONE scheduler pair must stay identical.
func TestParallelSchedulerReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, algo := range []Algorithm{LDS, DDS} {
		seq := New(algo, HeuristicLXF, DynamicBound(), 150)
		par := New(algo, HeuristicLXF, DynamicBound(), 150)
		par.Workers = 3
		for step := 0; step < 25; step++ {
			snap := randomSnapshot(rng, 1+rng.Intn(7))
			assertSameDecision(t, par.Name(), snap, seq, par)
		}
	}
}

// TestParallelPathActuallyRuns guards against the parallel branch
// silently falling back to sequential: with enough budget for several
// iterations the shard must produce multiple tasks and record worker
// busy time.
func TestParallelPathActuallyRuns(t *testing.T) {
	sch := New(DDS, HeuristicFCFS, DynamicBound(), 1<<20)
	sch.Workers = 2
	sch.Decide(flatQueueSnapshot(5))
	if len(sch.tasks) < 2 {
		t.Fatalf("shard produced %d tasks, want every iteration", len(sch.tasks))
	}
	if sch.SearchStats.BusyNs <= 0 {
		t.Error("no worker busy time recorded")
	}
	if sch.SearchStats.WallNs <= 0 {
		t.Error("no search wall time recorded")
	}
}

// TestSequentialFallbacks: configurations the parallel path must refuse
// (DFS, pruning, tiny queues, budget confined to iteration 0) still
// decide correctly via the sequential search.
func TestSequentialFallbacks(t *testing.T) {
	cases := []struct {
		name string
		sch  *Scheduler
		snap *sim.Snapshot
	}{
		{"dfs", func() *Scheduler {
			s := New(DFS, HeuristicFCFS, DynamicBound(), 100)
			s.Workers = 4
			return s
		}(), flatQueueSnapshot(4)},
		{"prune", func() *Scheduler {
			s := New(DDS, HeuristicFCFS, DynamicBound(), 100)
			s.Workers = 4
			s.Prune = true
			return s
		}(), flatQueueSnapshot(4)},
		{"single job", func() *Scheduler {
			s := New(DDS, HeuristicFCFS, DynamicBound(), 100)
			s.Workers = 4
			return s
		}(), flatQueueSnapshot(1)},
		{"budget below iteration 0", func() *Scheduler {
			s := New(LDS, HeuristicFCFS, DynamicBound(), 3)
			s.Workers = 4
			return s
		}(), flatQueueSnapshot(6)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			starts := c.sch.Decide(c.snap)
			if len(starts) == 0 {
				t.Fatalf("%s committed nothing", c.sch.Name())
			}
			if !c.sch.s.bestFound {
				t.Fatal("no best schedule recorded")
			}
		})
	}
}

// TestAutoWorkersMatchesSequential: AutoWorkers resolves to GOMAXPROCS;
// whatever that is on the test machine, the outcome must equal the
// sequential scheduler's.
func TestAutoWorkersMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		snap := randomSnapshot(rng, 2+rng.Intn(5))
		seq := New(DDS, HeuristicLXF, DynamicBound(), 200)
		par := New(DDS, HeuristicLXF, DynamicBound(), 200)
		par.Workers = AutoWorkers
		assertSameDecision(t, "auto", snap, seq, par)
	}
}

// TestSpeedup covers the Stats.Speedup accessor.
func TestSpeedup(t *testing.T) {
	if got := (Stats{}).Speedup(); got != 1 {
		t.Errorf("zero stats speedup = %v, want 1", got)
	}
	if got := (Stats{WallNs: 100, BusyNs: 300}).Speedup(); got != 3 {
		t.Errorf("speedup = %v, want 3", got)
	}
	if got := (Stats{WallNs: 200, BusyNs: 200}).Speedup(); got != 1 {
		t.Errorf("sequential speedup = %v, want 1", got)
	}
}

// TestShardBudgetAccounting replays shardBudget against instrumented
// sequential runs: summing each task's actual node spend must reproduce
// the sequential total, and the aborted flag the budget-hit outcome.
func TestShardBudgetAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		snap := flatQueueSnapshot(n)
		limit := 1 + rng.Intn(300)
		for _, algo := range []Algorithm{LDS, DDS} {
			var s searchState
			s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, limit)
			switch algo {
			case LDS:
				s.runLDS()
			case DDS:
				s.runDDS()
			}

			sch := New(algo, HeuristicFCFS, DynamicBound(), limit)
			tasks, aborted := sch.shardBudget(n, int64(limit))
			var total int64
			for _, task := range tasks {
				full := sch.iterNodes(n, task.iter)
				if full < task.budget {
					total += full
				} else {
					total += task.budget
				}
			}
			if total != s.nodes {
				t.Errorf("trial %d %s n=%d L=%d: shard spends %d nodes, sequential %d",
					trial, algo, n, limit, total, s.nodes)
			}
			if aborted != s.aborted {
				t.Errorf("trial %d %s n=%d L=%d: shard aborted=%v, sequential %v",
					trial, algo, n, limit, aborted, s.aborted)
			}
		}
	}
}
