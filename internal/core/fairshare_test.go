package core

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// fairshareScenario: two nodes free, two queued 2-node jobs from
// different users. User 7 has been hogging the machine (long-running
// 126-node job); user 8 is new. Both queued jobs have equal wait and
// equal estimates, but user 7's job was submitted earlier so every
// tiebreak favours it. With a strong fairshare discount, user 8's job
// should win the slot instead.
func fairshareScenario() *sim.Snapshot {
	now := job.Time(100000)
	snap := &sim.Snapshot{Now: now, Capacity: 128, FreeNodes: 2}
	snap.Running = []sim.RunningJob{{
		ID: 50, Nodes: 126, User: 7, Start: 0, PredictedEnd: now + 50000,
	}}
	mk := func(id, user int, submit job.Time) sim.WaitingJob {
		return sim.WaitingJob{
			Job:      job.Job{ID: id, Submit: submit, Nodes: 2, Runtime: 1800, Request: 1800, User: user},
			Estimate: 1800,
		}
	}
	// Equal submits: the first-level excess is identical for both
	// orderings, so the decision rests on the slowdown level, where the
	// fairshare discount acts; the ID tiebreak favours user 7's job.
	snap.Queue = []sim.WaitingJob{
		mk(1, 7, now-3600), // hog's job, wins every tiebreak
		mk(2, 8, now-3600),
	}
	for i := range snap.Queue {
		snap.Queue[i].QueuePos = i
	}
	return snap
}

func TestFairshareRedirectsService(t *testing.T) {
	// Baseline: the older job (user 7) wins the two free nodes.
	base := New(DDS, HeuristicLXF, DynamicBound(), 1000)
	starts := base.Decide(fairshareScenario())
	if len(starts) != 1 || starts[0] != 0 {
		t.Fatalf("baseline starts = %v, want [0] (user 7's job via tiebreak)", starts)
	}

	// Fairshare-wrapped: drive usage accounting with a first decision,
	// then decide the contended one.
	fs := NewFairshare(New(DDS, HeuristicLXF, DynamicBound(), 1000), 50)
	warm := fairshareScenario()
	warm.Now -= 50000 // earlier decision to accrue usage for user 7
	warm.Queue = nil
	fs.Decide(warm)
	starts = fs.Decide(fairshareScenario())
	if len(starts) != 1 || starts[0] != 1 {
		t.Fatalf("fairshare starts = %v, want [1] (user 8's job)", starts)
	}
}

func TestFairshareRestoresInnerCost(t *testing.T) {
	inner := New(DDS, HeuristicLXF, DynamicBound(), 1000)
	fs := NewFairshare(inner, 10)
	fs.Decide(fairshareScenario())
	if inner.Cost != nil {
		t.Error("wrapper left a cost function installed on the inner scheduler")
	}
}

func TestFairshareName(t *testing.T) {
	fs := NewFairshare(New(DDS, HeuristicLXF, DynamicBound(), 100), 1)
	if got := fs.Name(); got != "DDS/lxf/dynB+fs" {
		t.Errorf("Name = %q", got)
	}
}

func TestFairshareIgnoresUnknownUsers(t *testing.T) {
	fs := NewFairshare(New(DDS, HeuristicLXF, DynamicBound(), 1000), 50)
	snap := fairshareScenario()
	for i := range snap.Queue {
		snap.Queue[i].Job.User = 0
	}
	snap.Running[0].User = 0
	// Must behave exactly like the baseline when no user info exists.
	starts := fs.Decide(snap)
	if len(starts) != 1 || starts[0] != 0 {
		t.Errorf("starts = %v, want [0]", starts)
	}
}
