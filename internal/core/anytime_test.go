package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// TestAnytimeBudgetMonotonicity: discrepancy search explores paths in a
// fixed order, so a larger node budget explores a superset of schedules
// and the committed best cost can only improve (the anytime property
// the paper relies on to compare L values).
func TestAnytimeBudgetMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		snap := randomSnapshot(rng, 3+rng.Intn(5))
		for _, algo := range []Algorithm{LDS, DDS} {
			var prev Cost
			first := true
			for _, limit := range []int{1, 5, 20, 100, 1000, 1 << 20} {
				sch := New(algo, HeuristicLXF, DynamicBound(), limit)
				sch.Decide(snap)
				cur := sch.s.bestCost
				if !first && prev.Less(cur) {
					t.Fatalf("trial %d %s: best cost worsened %v -> %v when budget grew to %d",
						trial, algo, prev, cur, limit)
				}
				prev = cur
				first = false
			}
		}
	}
}

// TestFullEnumerationAgreesAcrossAlgorithms: with unlimited budget both
// algorithms see every schedule, so they must agree on the optimal cost.
func TestFullEnumerationAgreesAcrossAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		snap := randomSnapshot(rng, 2+rng.Intn(5))
		lds := New(LDS, HeuristicLXF, DynamicBound(), 1<<30)
		dds := New(DDS, HeuristicLXF, DynamicBound(), 1<<30)
		lds.Decide(snap)
		dds.Decide(snap)
		if lds.s.bestCost != dds.s.bestCost {
			t.Fatalf("trial %d: LDS best %v != DDS best %v",
				trial, lds.s.bestCost, dds.s.bestCost)
		}
		if lds.s.leaves != dds.s.leaves {
			t.Fatalf("trial %d: LDS evaluated %d leaves, DDS %d",
				trial, lds.s.leaves, dds.s.leaves)
		}
	}
}

// TestHeuristicOrderFCFS and ...LXF verify the branch orders.
func TestHeuristicOrderFCFS(t *testing.T) {
	jobs := []sim.WaitingJob{
		{Job: job.Job{ID: 2, Submit: 100}},
		{Job: job.Job{ID: 1, Submit: 50}},
		{Job: job.Job{ID: 3, Submit: 100}},
	}
	orderJobs(jobs, HeuristicFCFS, 1000, nil)
	want := []int{1, 2, 3}
	for i, w := range want {
		if jobs[i].Job.ID != w {
			t.Fatalf("position %d: job %d, want %d", i, jobs[i].Job.ID, w)
		}
	}
}

func TestHeuristicOrderLXF(t *testing.T) {
	now := job.Time(10000)
	jobs := []sim.WaitingJob{
		{Job: job.Job{ID: 1, Submit: 0}, Estimate: 10000},   // bsld (10000+10000)/10000 = 2
		{Job: job.Job{ID: 2, Submit: 9000}, Estimate: 100},  // bsld (1000+100)/100 = 11
		{Job: job.Job{ID: 3, Submit: 5000}, Estimate: 5000}, // bsld 2
	}
	orderJobs(jobs, HeuristicLXF, now, nil)
	if jobs[0].Job.ID != 2 {
		t.Fatalf("largest-slowdown job not first: %v", jobs[0].Job.ID)
	}
	// Ties (jobs 1 and 3 both bsld 2) break by earlier submit.
	if jobs[1].Job.ID != 1 || jobs[2].Job.ID != 3 {
		t.Fatalf("tie order: got %d then %d, want 1 then 3", jobs[1].Job.ID, jobs[2].Job.ID)
	}
}

// TestSearchRespectsEstimates: the search must plan with the estimate,
// not the (hidden) actual runtime.
func TestSearchRespectsEstimates(t *testing.T) {
	now := job.Time(1000)
	// 4 free nodes. Job A (4 nodes) is running until now+100 per its
	// ESTIMATE. Job B (4 nodes, est 50) cannot start now; the schedule
	// must not claim it does.
	snap := &sim.Snapshot{Now: now, Capacity: 4, FreeNodes: 0}
	snap.Running = []sim.RunningJob{{ID: 9, Nodes: 4, Start: 0, PredictedEnd: now + 100}}
	snap.Queue = []sim.WaitingJob{{
		Job:      job.Job{ID: 1, Submit: now - 10, Nodes: 4, Runtime: 50, Request: 50},
		Estimate: 50, QueuePos: 0,
	}}
	sch := New(DDS, HeuristicLXF, DynamicBound(), 100)
	if starts := sch.Decide(snap); len(starts) != 0 {
		t.Errorf("started %v on a fully busy machine", starts)
	}
}

// TestSearchCommitsAllNowStarts: every job the best schedule starts at
// `now` is returned, not just a prefix.
func TestSearchCommitsAllNowStarts(t *testing.T) {
	now := job.Time(1000)
	snap := &sim.Snapshot{Now: now, Capacity: 8, FreeNodes: 8}
	for i := 0; i < 4; i++ {
		snap.Queue = append(snap.Queue, sim.WaitingJob{
			Job:      job.Job{ID: i + 1, Submit: job.Time(i), Nodes: 2, Runtime: 600, Request: 600},
			Estimate: 600, QueuePos: i,
		})
	}
	sch := New(DDS, HeuristicLXF, DynamicBound(), 1000)
	starts := sch.Decide(snap)
	if len(starts) != 4 {
		t.Errorf("started %d of 4 jobs that all fit now: %v", len(starts), starts)
	}
}
