package core

import (
	"math/rand"
	"testing"

	"schedsearch/internal/cluster"
)

// branchRanks returns, per level, the rank of the chosen job among the
// jobs still unscheduled in heuristic order (rank 0 = the heuristic
// choice). flatQueueSnapshot's heuristic order is ascending index.
func branchRanks(path []int) []int {
	used := make([]bool, len(path))
	ranks := make([]int, 0, len(path))
	for _, oi := range path {
		rank := 0
		for i := 0; i < oi; i++ {
			if !used[i] {
				rank++
			}
		}
		ranks = append(ranks, rank)
		used[oi] = true
	}
	return ranks
}

// adjacentIteration classifies a permutation for ADDS: -1 if any branch
// rank exceeds 1 (outside the adjacent tree), otherwise the iteration
// the path belongs to (deepest rank-1 level + 1; the all-rank-0 path is
// iteration 0).
func adjacentIteration(path []int) int {
	deepest := -1
	for lvl, r := range branchRanks(path) {
		if r > 1 {
			return -1
		}
		if r == 1 {
			deepest = lvl
		}
	}
	return deepest + 1
}

// TestADDSIterationLeafSetsMatchBruteForce mirrors the LDS/DDS property
// test: ADDS iteration i must evaluate exactly the permutations whose
// branch ranks are all in {0, 1} with the deepest rank-1 choice at
// level i-1, each once, and the union over iterations must be the full
// 2^(n-1) adjacent tree.
func TestADDSIterationLeafSetsMatchBruteForce(t *testing.T) {
	for n := 1; n <= 6; n++ {
		want := map[int]map[string]bool{} // iter -> perm set
		adjacent := 0
		for _, p := range permutations(n) {
			i := adjacentIteration(p)
			if i < 0 {
				continue
			}
			adjacent++
			if want[i] == nil {
				want[i] = map[string]bool{}
			}
			want[i][permKey(p)] = true
		}
		if n >= 1 && adjacent != 1<<(n-1) {
			t.Fatalf("n=%d: %d adjacent permutations, want %d", n, adjacent, 1<<(n-1))
		}

		total := 0
		for iter := 0; iter <= n-1; iter++ {
			got := iterationLeaves(t, n, ADDS, iter)
			if len(got) != len(want[iter]) {
				t.Errorf("n=%d ADDS iter=%d: %d leaves, brute force %d",
					n, iter, len(got), len(want[iter]))
			}
			seen := map[string]bool{}
			for _, p := range got {
				key := permKey(p)
				if seen[key] {
					t.Errorf("n=%d ADDS iter=%d: leaf %v evaluated twice", n, iter, p)
				}
				seen[key] = true
				if !want[iter][key] {
					t.Errorf("n=%d ADDS iter=%d: leaf %v does not belong to this iteration",
						n, iter, p)
				}
			}
			total += len(got)
		}
		if total != adjacent {
			t.Errorf("n=%d: %d ADDS leaves across iterations, want %d", n, total, adjacent)
		}
	}
}

// TestADDSIterNodeCountsMatchSequential anchors the closed form the
// parallel budget shard uses to the sequential search's actual visits.
func TestADDSIterNodeCountsMatchSequential(t *testing.T) {
	for n := 1; n <= 8; n++ {
		snap := flatQueueSnapshot(n)
		for iter := 0; iter <= n-1; iter++ {
			if got, want := addsIterNodes(n, iter), seqIterNodes(snap, ADDS, iter); got != want {
				t.Errorf("addsIterNodes(%d, %d) = %d, sequential visits %d", n, iter, got, want)
			}
		}
	}
}

// TestCDDSLeafSetOnFlatQueue: with identical jobs every schedule costs
// the same, so CDDS never climbs and must evaluate exactly the adjacent
// tree — the same 2^(n-1) leaves ADDS does, each once.
func TestCDDSLeafSetOnFlatQueue(t *testing.T) {
	for n := 2; n <= 6; n++ {
		snap := flatQueueSnapshot(n)
		var s searchState
		seen := map[string]int{}
		leaves := 0
		s.leafHook = func(path []int, _ Cost) {
			if adjacentIteration(path) < 0 {
				t.Errorf("n=%d: CDDS evaluated %v, outside the adjacent tree", n, path)
			}
			seen[permKey(append([]int(nil), path...))]++
			leaves++
		}
		s.reset(snap, HeuristicFCFS, 0, HierarchicalCost, 1)
		s.limit = satCap
		s.runCDDS()
		if s.aborted {
			t.Fatalf("n=%d: CDDS aborted with unlimited budget", n)
		}
		if leaves != 1<<(n-1) {
			t.Errorf("n=%d: CDDS evaluated %d leaves, want %d", n, leaves, 1<<(n-1))
		}
		for key, c := range seen {
			if c != 1 {
				t.Errorf("n=%d: CDDS evaluated %s %d times", n, key, c)
			}
		}
	}
}

// TestCDDSLocalOptimum: at unlimited budget CDDS terminates at a local
// optimum of the adjacent neighborhood — no single adjacent swap of the
// committed ordering may cost strictly less.
func TestCDDSLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		snap := randomSnapshot(rng, n)
		sch := New(CDDS, HeuristicLXF, DynamicBound(), 1<<30)
		if starts := sch.Decide(snap); len(starts) == 0 && snap.FreeNodes > 0 {
			// fine: all queued jobs may be wider than the free nodes
			_ = starts
		}
		if sch.s.aborted {
			t.Fatalf("trial %d: CDDS aborted with unlimited budget", trial)
		}
		best := append([]int(nil), sch.s.bestPath...)
		bestCost := sch.s.bestCost

		var es searchState
		es.reset(snap, HeuristicLXF, sch.Bound.At(snap), HierarchicalCost, 1)
		var undo []cluster.Placement
		perm := make([]int, n)
		for l := 0; l < n-1; l++ {
			copy(perm, best)
			perm[l], perm[l+1] = perm[l+1], perm[l]
			if c := es.evalOrder(perm, &undo); c.Less(bestCost) {
				t.Errorf("trial %d: swap at level %d improves the CDDS optimum (%v < %v)",
					trial, l, c, bestCost)
			}
		}
	}
}

// TestCDDSNeverWorseThanHeuristic: climbing only replaces the incumbent
// on strict improvement, so the committed cost is never above the
// iteration-0 (pure heuristic) schedule's.
func TestCDDSNeverWorseThanHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		snap := randomSnapshot(rng, n)
		cdds := New(CDDS, HeuristicLXF, DynamicBound(), 1<<30)
		heur := New(DDS, HeuristicLXF, DynamicBound(), 1) // budget 1: heuristic path only
		cdds.Decide(snap)
		heur.Decide(snap)
		if heur.LastCost().Less(cdds.LastCost()) {
			t.Errorf("trial %d: heuristic schedule %v beats CDDS %v",
				trial, heur.LastCost(), cdds.LastCost())
		}
	}
}

// TestCDDSDeterministic: CDDS is sequential-only; two runs over the same
// decision sequence must agree exactly, including effort counters.
func TestCDDSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := New(CDDS, HeuristicLXF, DynamicBound(), 200)
	b := New(CDDS, HeuristicLXF, DynamicBound(), 200)
	b.Workers = 8 // must be ignored: CDDS runs sequentially
	for step := 0; step < 20; step++ {
		snap := randomSnapshot(rng, 1+rng.Intn(6))
		assertSameDecision(t, "cdds-det", snap, a, b)
	}
	sa, sb := a.SearchStats, b.SearchStats
	sa.WallNs, sa.BusyNs = 0, 0 // wall-clock noise
	sb.WallNs, sb.BusyNs = 0, 0
	if sa != sb {
		t.Errorf("stats diverged:\n%+v\n%+v", sa, sb)
	}
}

// TestADDSParallelMatchesSequential extends the parallel differential to
// the adjacent algorithm.
func TestADDSParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		snap := randomSnapshot(rng, 2+rng.Intn(6))
		limit := 1 + rng.Intn(80)
		seq := New(ADDS, HeuristicLXF, DynamicBound(), limit)
		par := New(ADDS, HeuristicLXF, DynamicBound(), limit)
		par.Workers = 4
		assertSameDecision(t, par.Name(), snap, seq, par)
	}
}
