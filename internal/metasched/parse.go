package metasched

import (
	"errors"
	"fmt"
	"strings"

	"schedsearch/internal/sim"
)

var errEmptyPortfolio = errors.New("metasched: portfolio needs at least one member policy")

// MemberParser builds one portfolio member from its policy name — the
// base (non-meta) ParsePolicy, injected by the facade so metasched
// never imports it (no cycle).
type MemberParser func(name string, nodeLimit int) (sim.Policy, error)

// IsSpec reports whether a policy name uses the meta(...) portfolio
// grammar (it may still fail to parse).
func IsSpec(name string) bool { return strings.HasPrefix(name, "meta(") }

// Parse builds a Meta from the portfolio grammar
// "meta(SPEC,SPEC,...)", where each SPEC is any base policy name the
// member parser accepts ("DDS/lxf/dynB", "FCFS-backfill", ...). Every
// member receives the same node limit. The grammar is strict —
// trailing garbage after the closing parenthesis, empty member slots
// and nested portfolios are rejected — so Parse(m.Name()) round-trips
// exactly.
func Parse(name string, nodeLimit int, cfg Config, member MemberParser) (*Meta, error) {
	if !IsSpec(name) {
		return nil, fmt.Errorf("metasched: %q is not a meta(...) portfolio spec", name)
	}
	if !strings.HasSuffix(name, ")") {
		return nil, fmt.Errorf("metasched: %q: missing closing parenthesis", name)
	}
	inner := name[len("meta(") : len(name)-1]
	if inner == "" {
		return nil, errEmptyPortfolio
	}
	specs := strings.Split(inner, ",")
	members := make([]sim.Policy, 0, len(specs))
	for _, spec := range specs {
		if spec == "" {
			return nil, fmt.Errorf("metasched: %q: empty member slot", name)
		}
		if strings.ContainsAny(spec, "()") {
			return nil, fmt.Errorf("metasched: %q: nested portfolios are not supported", name)
		}
		p, err := member(spec, nodeLimit)
		if err != nil {
			return nil, err
		}
		members = append(members, p)
	}
	return New(members, cfg)
}
