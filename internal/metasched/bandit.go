package metasched

import (
	"fmt"
	"math"

	"schedsearch/internal/stats"
)

// BanditKind selects the arm-selection rule the meta-scheduler runs
// over its portfolio. All three are deterministic given the seed: the
// only randomness (EXP3's sampling) draws from a dedicated RNG
// substream, chaos-style, so replays are bit-identical.
type BanditKind int

const (
	// Greedy is discounted follow-the-leader over full-information
	// losses: every decision, every arm's shadow plan is scored, and
	// the arm with the lowest discounted mean loss is committed.
	// Because shadow simulation reveals every arm's loss every round,
	// no exploration bonus is needed — this is the default and the
	// strongest portfolio under the bench's weighted-cost criterion.
	Greedy BanditKind = iota
	// UCB is discounted UCB1 in classical partial-feedback mode: only
	// the committed arm's loss updates its statistics, and the
	// exploration bonus drives coverage. Shadow losses still feed the
	// regret series (reporting), just not the selection statistics.
	UCB
	// EXP3 is the adversarial exponential-weights bandit with
	// importance-weighted loss estimates and seeded sampling.
	EXP3
)

// String names the kind as the meta(...) grammar spells it.
func (k BanditKind) String() string {
	switch k {
	case Greedy:
		return "greedy"
	case UCB:
		return "ucb"
	case EXP3:
		return "exp3"
	default:
		return fmt.Sprintf("BanditKind(%d)", int(k))
	}
}

// bandit is the arm-selection state machine. pick returns the arm to
// commit this decision using only past observations; observe feeds the
// round's normalized losses (one per arm, in [0, 1]) and the arm that
// was committed. Implementations must be deterministic given their
// construction seed.
type bandit interface {
	pick() int
	observe(losses []float64, chosen int)
}

func newBandit(kind BanditKind, arms int, cfg Config) bandit {
	switch kind {
	case UCB:
		return &ucbBandit{
			loss:    make([]float64, arms),
			count:   make([]float64, arms),
			gamma:   cfg.gamma(),
			explore: cfg.explore(),
		}
	case EXP3:
		return &exp3Bandit{
			weights: initialWeights(arms),
			eta:     cfg.eta(),
			rng:     stats.NewRNG(cfg.Seed, banditStream),
		}
	default:
		return &greedyBandit{
			loss:   make([]float64, arms),
			count:  make([]float64, arms),
			gamma:  cfg.gamma(),
			margin: cfg.stickyMargin(),
			minGap: cfg.stickyGap(),
			sticky: -1,
		}
	}
}

func initialWeights(arms int) []float64 {
	w := make([]float64, arms)
	for i := range w {
		w[i] = 1
	}
	return w
}

// banditStream is the RNG substream label for bandit sampling (the
// workload/fault substreams in internal/chaos use 101..1xx; metasched
// claims 201).
const banditStream = 201

// greedyBandit: discounted follow-the-leader over full-information
// losses, with switch hysteresis. Ties break on the lowest arm index,
// so selection is a pure function of the observation history. The
// hysteresis keeps the current pick unless the best arm's discounted
// mean loss undercuts it by the relative margin — plan scores are
// myopic one-step estimates, so a marginal advantage is noise and
// flickering between arms mid-trajectory costs more than it wins.
type greedyBandit struct {
	loss   []float64 // discounted loss sums
	count  []float64 // discounted observation counts
	gamma  float64
	margin float64
	minGap float64
	sticky int // current pick (-1 before the first)
}

func (b *greedyBandit) pick() int {
	best, bestMean := 0, math.Inf(1)
	for i := range b.loss {
		mean := 0.0
		if b.count[i] > 0 {
			mean = b.loss[i] / b.count[i]
		}
		if mean < bestMean {
			best, bestMean = i, mean
		}
	}
	if b.sticky >= 0 && best != b.sticky {
		cur := 0.0
		if b.count[b.sticky] > 0 {
			cur = b.loss[b.sticky] / b.count[b.sticky]
		}
		// Relative margin plus an absolute floor: with regret-
		// proportional losses the discounted means hover near zero on
		// quiet stretches, where a purely relative test would still
		// flicker on noise.
		if cur-bestMean <= b.margin*cur+b.minGap {
			return b.sticky
		}
	}
	b.sticky = best
	return best
}

func (b *greedyBandit) observe(losses []float64, chosen int) {
	for i, l := range losses {
		b.loss[i] = b.gamma*b.loss[i] + l
		b.count[i] = b.gamma*b.count[i] + 1
	}
}

// ucbBandit: discounted UCB1 on the committed arm's loss only. Arms
// never observed have an infinite bonus (lowest index first), so every
// arm is tried before any is repeated.
type ucbBandit struct {
	loss    []float64
	count   []float64
	total   float64
	gamma   float64
	explore float64
}

func (b *ucbBandit) pick() int {
	best, bestScore := 0, math.Inf(1)
	for i := range b.loss {
		var score float64
		if b.count[i] <= 0 {
			score = math.Inf(-1) // unobserved: force a trial
		} else {
			mean := b.loss[i] / b.count[i]
			score = mean - b.explore*math.Sqrt(math.Log(b.total+1)/b.count[i])
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func (b *ucbBandit) observe(losses []float64, chosen int) {
	for i := range b.loss {
		b.loss[i] *= b.gamma
		b.count[i] *= b.gamma
	}
	b.total = b.gamma*b.total + 1
	b.loss[chosen] += losses[chosen]
	b.count[chosen]++
}

// exp3Bandit: exponential weights with importance-weighted loss
// estimates; the mixing term eta/K guarantees every arm keeps positive
// probability. Sampling draws one Float64 per decision from the seeded
// substream — the entire choice sequence is a function of (seed,
// losses).
type exp3Bandit struct {
	weights []float64
	eta     float64
	rng     *stats.RNG
}

func (b *exp3Bandit) probs(p []float64) []float64 {
	k := float64(len(b.weights))
	var sum float64
	for _, w := range b.weights {
		sum += w
	}
	for _, w := range b.weights {
		p = append(p, (1-b.eta)*w/sum+b.eta/k)
	}
	return p
}

func (b *exp3Bandit) pick() int {
	p := b.probs(make([]float64, 0, len(b.weights)))
	u := b.rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}

func (b *exp3Bandit) observe(losses []float64, chosen int) {
	p := b.probs(make([]float64, 0, len(b.weights)))
	k := float64(len(b.weights))
	est := losses[chosen] / p[chosen]
	b.weights[chosen] *= math.Exp(-b.eta * est / k)
	// Renormalize to dodge underflow on long runs; scaling all weights
	// leaves the distribution unchanged.
	var maxW float64
	for _, w := range b.weights {
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 && maxW < 1e-150 {
		for i := range b.weights {
			b.weights[i] /= maxW
		}
	}
}
