package metasched

import (
	"math"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func testPortfolio(t *testing.T, cfg Config) *Meta {
	t.Helper()
	m, err := New([]sim.Policy{
		core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 64),
		core.New(core.LDS, core.HeuristicFCFS, core.DynamicBound(), 64),
		policy.FCFSBackfill(),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShadowDeterminism is the shadow-simulation determinism keystone:
// two meta-schedulers with the same seed, the same portfolio and the
// same workload must produce bit-identical bandit choice sequences and
// regret series — across suite months, for both the sampling bandit
// (EXP3, seeded substream) and the deterministic default, with
// parallel search workers in the members. Run under -race this also
// pins the shadow path as data-race free.
func TestShadowDeterminism(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 13, JobScale: 0.02})
	for _, kind := range []BanditKind{Greedy, EXP3, UCB} {
		for _, month := range []string{"7/03", "1/04"} {
			cfg := Config{Seed: 7, Kind: kind, RecordHistory: true}
			var first []MetaDecision
			var firstStats Stats
			for rep := 0; rep < 2; rep++ {
				in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: 0.9})
				if err != nil {
					t.Fatal(err)
				}
				m := testPortfolio(t, cfg)
				m.SetSearchOptions(2, true) // parallel + warm members
				if _, err := sim.Run(in, m); err != nil {
					t.Fatalf("%v %s rep %d: %v", kind, month, rep, err)
				}
				hist := m.History()
				if len(hist) == 0 {
					t.Fatalf("%v %s: no decisions recorded", kind, month)
				}
				if rep == 0 {
					first = append([]MetaDecision(nil), hist...)
					firstStats = m.MetaStats()
					continue
				}
				if len(hist) != len(first) {
					t.Fatalf("%v %s: rerun made %d decisions, first %d", kind, month, len(hist), len(first))
				}
				for i := range hist {
					a, b := first[i], hist[i]
					if a.Arm != b.Arm || a.Policy != b.Policy || a.Regret != b.Regret ||
						a.NowS != b.NowS || a.Switched != b.Switched {
						t.Fatalf("%v %s: decision %d diverges:\nfirst %+v\nrerun %+v", kind, month, i, a, b)
					}
				}
				st, st0 := m.MetaStats(), firstStats
				if st.Decisions != st0.Decisions || st.Switches != st0.Switches ||
					st.CumRegret != st0.CumRegret || st.ShadowNodes != st0.ShadowNodes {
					t.Fatalf("%v %s: stats diverge:\nfirst %+v\nrerun %+v", kind, month, st0, st)
				}
			}
			t.Logf("%v %s: %d decisions, %d switches, cum regret %.1f",
				kind, month, firstStats.Decisions, firstStats.Switches, firstStats.CumRegret)
		}
	}
}

// TestMetaSchedulesValidly: the committed portfolio schedule completes
// every job, switches arms at least once under EXP3 (the sampler
// explores), and accounts shadow effort.
func TestMetaEndToEnd(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 13, JobScale: 0.02})
	in, _, err := suite.Input("10/03", workload.SimOptions{TargetLoad: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	m := testPortfolio(t, Config{Seed: 3, Kind: EXP3})
	res, err := sim.Run(in, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(in.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Records), len(in.Jobs))
	}
	st := m.MetaStats()
	if st.Decisions == 0 || st.Switches == 0 {
		t.Fatalf("EXP3 never switched: %+v", st)
	}
	if st.ShadowNodes == 0 || st.ShadowWallNs == 0 {
		t.Fatalf("no shadow effort accounted: %+v", st)
	}
	var commits int64
	for _, c := range st.ArmCommits {
		commits += c
	}
	if commits != int64(st.Decisions) {
		t.Fatalf("arm commits %v do not sum to decisions %d", st.ArmCommits, st.Decisions)
	}
	if name, _, ok := m.LastMetaDecision(); !ok || name == "" {
		t.Fatalf("no last decision record")
	}
}

// TestGreedyBandit pins the default bandit's selection rule: lowest
// discounted mean loss wins, ties break to the lowest index.
func TestGreedyBandit(t *testing.T) {
	b := newBandit(Greedy, 3, Config{})
	if got := b.pick(); got != 0 {
		t.Fatalf("fresh greedy picked %d, want 0", got)
	}
	b.observe([]float64{1, 0.2, 0.6}, 0)
	if got := b.pick(); got != 1 {
		t.Fatalf("after one round picked %d, want 1", got)
	}
	// Arm 2 now does consistently better; the discount lets it overtake.
	for i := 0; i < 50; i++ {
		b.observe([]float64{1, 0.5, 0.1}, 1)
	}
	if got := b.pick(); got != 2 {
		t.Fatalf("after regime change picked %d, want 2", got)
	}
}

// TestUCBBanditTriesEveryArm: each arm must be observed once before any
// repeats (infinite bonus on unobserved arms, lowest index first).
func TestUCBBanditTriesEveryArm(t *testing.T) {
	b := newBandit(UCB, 3, Config{})
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		arm := b.pick()
		if seen[arm] {
			t.Fatalf("round %d revisited arm %d before trying all", i, arm)
		}
		seen[arm] = true
		b.observe([]float64{0.5, 0.5, 0.5}, arm)
	}
}

// TestEXP3Bandit: probabilities stay a distribution, the loss-hit arm
// loses weight, and equal seeds give equal choice sequences.
func TestEXP3Bandit(t *testing.T) {
	mk := func(seed uint64) *exp3Bandit {
		return newBandit(EXP3, 4, Config{Seed: seed}).(*exp3Bandit)
	}
	b := mk(1)
	p := b.probs(nil)
	sum := 0.0
	for _, pi := range p {
		sum += pi
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	for i := 0; i < 30; i++ {
		b.observe([]float64{1, 0, 0, 0}, 0)
	}
	p = b.probs(nil)
	for i := 1; i < 4; i++ {
		if p[0] >= p[i] {
			t.Fatalf("punished arm kept probability %v vs arm %d's %v", p[0], i, p[i])
		}
	}

	a, c := mk(9), mk(9)
	for i := 0; i < 100; i++ {
		ai, ci := a.pick(), c.pick()
		if ai != ci {
			t.Fatalf("equal seeds diverged at round %d: %d vs %d", i, ai, ci)
		}
		losses := []float64{0.2, 0.8, 0.5, 0.1}
		a.observe(losses, ai)
		c.observe(losses, ci)
	}
}

// TestParseMeta covers the portfolio grammar: round-trip identity,
// member errors, nesting and garbage rejection.
func TestParseMeta(t *testing.T) {
	member := func(name string, nodeLimit int) (sim.Policy, error) {
		if name == "FCFS-backfill" {
			return policy.FCFSBackfill(), nil
		}
		if name == "DDS/lxf/dynB" {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), nodeLimit), nil
		}
		return nil, errEmptyPortfolio
	}
	m, err := Parse("meta(DDS/lxf/dynB,FCFS-backfill)", 100, Config{}, member)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "meta(DDS/lxf/dynB,FCFS-backfill)" {
		t.Fatalf("name %q does not round-trip", m.Name())
	}
	if len(m.Members()) != 2 {
		t.Fatalf("got %d members", len(m.Members()))
	}
	for _, bad := range []string{
		"meta()", "meta(", "meta(DDS/lxf/dynB", "meta(DDS/lxf/dynB)x",
		"meta(,FCFS-backfill)", "meta(DDS/lxf/dynB,)", "meta(meta(DDS/lxf/dynB))",
		"meta(nonsense)",
	} {
		if _, err := Parse(bad, 100, Config{}, member); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}
