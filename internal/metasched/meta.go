// Package metasched is the online meta-scheduler: a portfolio of
// scheduling policies run side by side, with one arm's decision
// committed at every decision point and every other arm shadow-
// simulated on the same snapshot under a bounded node budget. The
// shadow plans are scored on the uniform objective (core.PlanScorer),
// the per-round losses feed a seeded bandit (greedy follow-the-leader,
// UCB or EXP3), and the bandit's pick becomes the next incumbent —
// switching policies at decision-point granularity, which no fixed
// ParsePolicy string can do (the paper's own tables show no single
// policy wins every month).
//
// Determinism: shadow evaluation is passive (each arm is an
// independent policy instance deciding the same read-only snapshot;
// scoring runs on a private profile), loss normalization is pure
// arithmetic, and the only sampling bandit (EXP3) draws from a
// dedicated RNG substream keyed by Config.Seed — so the full choice
// sequence and regret series replay bit-identically. Wall-clock is
// measured for Stats only and never influences a decision; for that
// same reason member schedulers must not run with an SLO budget (see
// SetSearchOptions).
//
// A singleton portfolio commits its only member's decisions untouched
// — meta(P) is bit-identical to bare P (keystone differential).
package metasched

import (
	"strings"
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/sim"
)

// DefaultShadowLimit is the node budget a shadow evaluation of a
// search-policy arm runs under when Config.ShadowLimit is zero. Small
// relative to typical incumbent budgets (L=1000): shadows exist to
// rank arms, not to perfect their plans.
const DefaultShadowLimit = 200

// Config tunes the meta-scheduler. The zero value is usable: greedy
// bandit, default shadow budget, seed 0.
type Config struct {
	// Seed keys the bandit's RNG substream (EXP3 sampling). Two metas
	// with equal seeds, portfolios and inputs replay identically.
	Seed uint64
	// Kind selects the bandit (default Greedy).
	Kind BanditKind
	// ShadowLimit caps the node budget of each non-incumbent search
	// arm's evaluation; 0 means DefaultShadowLimit, negative means
	// full budget (shadows as expensive as the incumbent).
	ShadowLimit int
	// Gamma discounts past losses (default 0.98) so the portfolio
	// tracks workload regime changes within a month.
	Gamma float64
	// Explore is UCB's exploration coefficient (default 0.5).
	Explore float64
	// Eta is EXP3's learning rate (default 0.1).
	Eta float64
	// StickyMargin is the greedy bandit's switch hysteresis: the
	// portfolio switches arms only when the best arm's discounted mean
	// loss undercuts the incumbent's by this relative margin (default
	// 0.25; negative disables hysteresis).
	StickyMargin float64
	// StickyGap is the absolute floor of the hysteresis: below this
	// mean-loss gap a switch is never taken, whatever the relative
	// margin says (default 0.005; negative disables).
	StickyGap float64
	// ExcessWeight scalarizes hierarchical plan costs (0 means
	// core.DefaultExcessWeight).
	ExcessWeight float64
	// RecordHistory keeps the full per-decision MetaDecision series in
	// memory (tests and benches; unbounded, off by default).
	RecordHistory bool
}

func (c Config) gamma() float64 {
	if c.Gamma <= 0 || c.Gamma > 1 {
		return 0.98
	}
	return c.Gamma
}

func (c Config) explore() float64 {
	if c.Explore <= 0 {
		return 0.5
	}
	return c.Explore
}

func (c Config) eta() float64 {
	if c.Eta <= 0 || c.Eta >= 1 {
		return 0.1
	}
	return c.Eta
}

func (c Config) stickyMargin() float64 {
	if c.StickyMargin < 0 {
		return 0
	}
	if c.StickyMargin == 0 {
		return 0.25
	}
	return c.StickyMargin
}

func (c Config) stickyGap() float64 {
	if c.StickyGap < 0 {
		return 0
	}
	if c.StickyGap == 0 {
		return 0.005
	}
	return c.StickyGap
}

// EffectiveShadowLimit resolves the per-shadow node budget this config
// implies: the default when unset, 0 (members' own budgets) when
// negative, else ShadowLimit itself.
func (c Config) EffectiveShadowLimit() int { return c.shadowLimit() }

func (c Config) shadowLimit() int {
	if c.ShadowLimit == 0 {
		return DefaultShadowLimit
	}
	return c.ShadowLimit
}

// Stats aggregates meta-scheduling effort and behaviour over a run.
type Stats struct {
	// Decisions counts non-empty decision points; Switches counts
	// decisions whose committed arm differs from the previous one.
	Decisions int
	Switches  int
	// ArmCommits counts committed decisions per arm.
	ArmCommits []int64
	// CumRegret is the summed per-decision regret: the committed
	// plan's scalar score minus the round's best arm's (0 when the
	// incumbent was the best choice in hindsight).
	CumRegret float64
	// ShadowNodes counts search nodes spent in shadow evaluations of
	// search-policy arms; ShadowWallNs/IncumbentWallNs split the
	// decision wall time between shadows and the committed arm —
	// ShadowWallNs/(ShadowWallNs+IncumbentWallNs) is the shadow
	// overhead the bench reports.
	ShadowNodes     int64
	ShadowWallNs    int64
	IncumbentWallNs int64
}

// MetaDecision describes one committed decision for observability: the
// arm the bandit chose, the per-arm scalar plan scores, and the regret
// in hindsight. Assembled from state the decision already computes;
// recording it never perturbs scheduling.
type MetaDecision struct {
	Seq      int
	NowS     int64
	Arm      int
	Policy   string
	Regret   float64
	Switched bool
	Scores   []float64
}

// Meta is the portfolio policy (sim.Policy). Build with New or through
// ParsePolicy's meta(...) grammar.
type Meta struct {
	cfg     Config
	members []sim.Policy
	name    string
	bandit  bandit
	scorer  *core.PlanScorer

	prevArm   int
	havePrev  bool
	stats     Stats
	last      MetaDecision
	haveLast  bool
	history   []MetaDecision
	plans     [][]int
	scores    []float64
	losses    []float64
	lastNodes []int64 // per-arm SearchStats.Nodes high-water, for deltas
}

// New builds a meta-scheduler over the given member policies (at least
// one). Members must be distinct policy instances — each arm carries
// its own warm/search state.
func New(members []sim.Policy, cfg Config) (*Meta, error) {
	if len(members) == 0 {
		return nil, errEmptyPortfolio
	}
	names := make([]string, len(members))
	for i, p := range members {
		names[i] = p.Name()
	}
	m := &Meta{
		cfg:     cfg,
		members: members,
		name:    "meta(" + strings.Join(names, ",") + ")",
		bandit:  newBandit(cfg.Kind, len(members), cfg),
		scorer:  &core.PlanScorer{Bound: core.DynamicBound(), ExcessWeight: cfg.ExcessWeight},
		plans:   make([][]int, len(members)),
		scores:  make([]float64, len(members)),
		losses:  make([]float64, len(members)),
	}
	m.stats.ArmCommits = make([]int64, len(members))
	m.lastNodes = make([]int64, len(members))
	return m, nil
}

// Name implements sim.Policy: "meta(" + member names + ")", which
// ParsePolicy round-trips.
func (m *Meta) Name() string { return m.name }

// Members returns the portfolio's policies (callers must not mutate
// mid-run).
func (m *Meta) Members() []sim.Policy { return m.members }

// SetSearchOptions applies the per-process search tuning (worker count,
// warm start) to every member that is a search scheduler — the same
// knobs cmd/schedsim and cmd/schedd apply to a bare *core.Scheduler.
// SLO budgets are deliberately NOT propagated: an SLO adapts node
// budgets from wall-clock pace, which would make shadow plans — and
// therefore bandit choices — machine-dependent.
func (m *Meta) SetSearchOptions(workers int, warmStart bool) {
	for _, p := range m.members {
		if sch, ok := p.(*core.Scheduler); ok {
			sch.Workers = workers
			sch.WarmStart = warmStart
		}
	}
}

// Decide implements sim.Policy: run every arm on the snapshot, commit
// the bandit's incumbent, feed the round's losses back.
func (m *Meta) Decide(snap *sim.Snapshot) []int {
	if len(m.members) == 1 {
		// Singleton portfolio: transparent pass-through. No shadow, no
		// scoring, no bandit — bit-identical to the bare policy by
		// construction, with a zero-regret decision record.
		starts := m.members[0].Decide(snap)
		if len(snap.Queue) == 0 {
			return starts
		}
		m.commitRecord(snap, 0, nil)
		return starts
	}

	if len(snap.Queue) == 0 {
		// Not a decision point (the simulator never asks, the online
		// engine may): forward to every arm so stateful members observe
		// the same empty-queue stream they would bare, commit nothing.
		var starts []int
		for i, p := range m.members {
			s := p.Decide(snap)
			if i == m.prevIncumbent() {
				starts = s
			}
		}
		return starts
	}

	chosen := m.bandit.pick()

	// Run every arm. The committed arm runs at its configured budget;
	// search-scheduler shadows are clamped to the shadow budget.
	for i, p := range m.members {
		sch, isSearch := p.(*core.Scheduler)
		shadow := i != chosen
		limit := 0
		clamp := false
		if shadow && isSearch {
			if sl := m.cfg.shadowLimit(); sl > 0 && sl < sch.NodeLimit {
				limit, clamp = sch.NodeLimit, true
				sch.NodeLimit = sl
			}
		}
		t0 := time.Now()
		m.plans[i] = append(m.plans[i][:0], p.Decide(snap)...)
		wall := time.Since(t0).Nanoseconds()
		if clamp {
			sch.NodeLimit = limit
		}
		if shadow {
			m.stats.ShadowWallNs += wall
			if isSearch {
				m.stats.ShadowNodes += sch.SearchStats.Nodes - m.lastNodes[i]
			}
		} else {
			m.stats.IncumbentWallNs += wall
		}
		if isSearch {
			m.lastNodes[i] = sch.SearchStats.Nodes
		}
		m.scores[i] = m.scorer.Scalar(m.scorer.Score(snap, m.plans[i]))
	}

	// Turn the round's scores into [0, 1] losses proportional to the
	// arm's regret against the round's best plan, scaled by the round's
	// cost magnitude. A near-tie round yields near-zero losses for every
	// arm while a blowout yields losses near 1 — so the bandit weighs
	// decisions by how much they actually matter, instead of min-max
	// stretching every round to the full scale (which punishes losing a
	// coin-flip round as hard as losing a landslide and drives spurious
	// switches). EXP3 needs the [0, 1] bound; greedy and UCB inherit the
	// regret-proportional weighting.
	minS := m.scores[0]
	for _, s := range m.scores[1:] {
		if s < minS {
			minS = s
		}
	}
	denom := minS
	if denom < 1 {
		denom = 1
	}
	for i, s := range m.scores {
		l := (s - minS) / denom
		if l > 1 {
			l = 1
		}
		m.losses[i] = l
	}
	m.bandit.observe(m.losses, chosen)
	m.stats.CumRegret += m.scores[chosen] - minS
	m.commitRecord(snap, chosen, m.scores)
	m.last.Regret = m.scores[chosen] - minS
	if m.cfg.RecordHistory {
		m.history[len(m.history)-1].Regret = m.last.Regret
	}
	return m.plans[chosen]
}

func (m *Meta) prevIncumbent() int {
	if m.havePrev {
		return m.prevArm
	}
	return 0
}

// commitRecord updates stats and the last-decision record for the
// committed arm.
func (m *Meta) commitRecord(snap *sim.Snapshot, arm int, scores []float64) {
	switched := m.havePrev && arm != m.prevArm
	if switched {
		m.stats.Switches++
	}
	m.prevArm, m.havePrev = arm, true
	m.stats.Decisions++
	m.stats.ArmCommits[arm]++
	m.last = MetaDecision{
		Seq:      m.stats.Decisions,
		NowS:     int64(snap.Now),
		Arm:      arm,
		Policy:   m.members[arm].Name(),
		Switched: switched,
	}
	m.haveLast = true
	if m.cfg.RecordHistory {
		rec := m.last
		rec.Scores = append([]float64(nil), scores...)
		m.history = append(m.history, rec)
	}
}

// MetaStats returns the accumulated meta-scheduling statistics.
func (m *Meta) MetaStats() Stats { return m.stats }

// History returns the full decision series when Config.RecordHistory
// is on (nil otherwise).
func (m *Meta) History() []MetaDecision { return m.history }

// LastMetaDecision reports the most recent committed decision's policy
// name and regret estimate for the flight recorder; ok is false before
// the first decision.
func (m *Meta) LastMetaDecision() (policy string, regret float64, ok bool) {
	if !m.haveLast {
		return "", 0, false
	}
	return m.last.Policy, m.last.Regret, true
}

// LastDecision forwards the committed arm's search summary when that
// arm exposes one (flight-recorder detail: node counts, trajectory).
func (m *Meta) LastDecision() core.DecisionSummary {
	if !m.haveLast {
		return core.DecisionSummary{}
	}
	if ds, ok := m.members[m.last.Arm].(interface{ LastDecision() core.DecisionSummary }); ok {
		return ds.LastDecision()
	}
	return core.DecisionSummary{}
}
