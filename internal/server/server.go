// Package server exposes the online scheduling engine over an
// HTTP/JSON API:
//
//	POST /v1/jobs      submit a job            {"nodes":8,"runtime_s":3600}
//	                   or a batch of jobs      [{...}, {...}] → per-item results
//	GET  /v1/jobs/{id} one job's state         waiting | running | done
//	GET  /v1/queue     the waiting queue, in queue order
//	GET  /v1/machine   machine occupancy snapshot
//	GET  /v1/metrics   running Summary + engine counters (engine.Metrics)
//	GET  /v1/healthz   liveness (always 200 while serving)
//	GET  /v1/readyz    readiness (503 while draining or ingest-saturated)
//	GET  /v1/federation  per-shard federation report (federated daemons only)
//	POST /v1/drain     stop admitting, finish running jobs, then shut down
//
// With an ingest queue attached (WithIngest), submissions flow through
// the async accept path: array bodies get per-item results (one bad
// job rejects only itself), per-user token-bucket quotas answer 429,
// and a saturated accept queue answers 503 with a Retry-After hint
// instead of buffering unboundedly.
//
// GET /v1/metrics also speaks the Prometheus text exposition format:
// a request whose Accept header prefers text/plain over
// application/json gets schedsearch_* gauges and counters instead of
// the JSON report.
//
// All responses are JSON; errors are a structured
// {"error": "...", "code": "..."} body with a matching status code
// (400 malformed request, 404 unknown job, 409 duplicate job ID, 413
// oversized body, 503 draining). A panic in a handler is recovered
// into a generic 500 JSON body — never a stack trace on the wire.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/wire"
)

// Backend is what the server fronts: a bare *engine.Engine or a
// *federation.Router (both satisfy it). Submissions, queries and the
// drain all pass through this interface untouched.
type Backend interface {
	Submit(spec job.Job) (int, error)
	SubmitJob(j job.Job) error
	Job(id int) (engine.JobStatus, bool)
	Queue() []engine.JobStatus
	Machine() engine.Machine
	Metrics() engine.Metrics
	Drain(ctx context.Context) error
	Now() job.Time
}

// FederationBackend is a Backend that can report per-shard federation
// metrics; serving one enables GET /v1/federation.
type FederationBackend interface {
	Backend
	Federation() engine.FederationMetrics
}

// Server is the HTTP front end of one backend.
type Server struct {
	e   Backend
	mux *http.ServeMux
	// ingest, when configured (WithIngest), carries submissions through
	// the async accept queue: batched POST /v1/jobs bodies become
	// per-item results, quotas and backpressure apply, and admissions
	// are group-committed to the journal.
	ingest *ingest.Queue
	// flight, when configured (WithFlight), serves the decision flight
	// recorder over GET /v1/debug/decisions.
	flight *obs.FlightRecorder
	// tracer, when configured (WithTracer), propagates and originates
	// X-Schedsearch-Trace contexts on the submit paths; traceShard tags
	// this server's spans.
	tracer     *obs.Tracer
	traceShard int

	drainOnce sync.Once
	// onDrained runs once, after a requested drain completes (the
	// daemon uses it to stop the HTTP listener).
	onDrained func()
}

// Option customizes a Server at construction.
type Option func(*Server)

// WithIngest routes submissions through the given accept queue. The
// queue must front the same backend the server does; its lifecycle
// (Close) stays with the caller.
func WithIngest(q *ingest.Queue) Option {
	return func(s *Server) { s.ingest = q }
}

// New returns a server for the backend. onDrained, if non-nil, is
// called once after a POST /v1/drain has fully drained the backend.
func New(e Backend, onDrained func(), opts ...Option) *Server {
	s := &Server{e: e, mux: http.NewServeMux(), onDrained: onDrained}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.job)
	s.mux.HandleFunc("GET /v1/queue", s.queue)
	s.mux.HandleFunc("GET /v1/machine", s.machine)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.mux.HandleFunc("GET /v1/healthz", s.healthz)
	s.mux.HandleFunc("GET /v1/readyz", s.readyz)
	s.mux.HandleFunc("POST /v1/drain", s.drain)
	if _, ok := e.(FederationBackend); ok {
		s.mux.HandleFunc("GET /v1/federation", s.federation)
	}
	if s.flight != nil {
		s.mux.HandleFunc("GET /v1/debug/decisions", s.debugDecisions)
	}
	if sb, ok := e.(ShardBackend); ok {
		// A bare engine can serve as one shard of a distributed
		// federation; a federation router cannot (routers are not
		// shards of other routers), so it never exposes these routes.
		s.registerShardRoutes(sb)
	}
	return s
}

// maxBodyBytes bounds request bodies; a submit request is tiny.
const maxBodyBytes = 1 << 20

// ServeHTTP implements http.Handler. Handler panics are converted into
// a 500 JSON error body; the details stay server-side.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			// The response may be partially written; best effort. No
			// panic value or stack trace leaves the process.
			writeError(w, http.StatusInternalServerError, "internal",
				errors.New("internal server error"))
		}
	}()
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// The public wire DTOs live in internal/wire (the schema leaf shared
// with federation.RemoteShard); the aliases keep this package's names
// stable for handlers and tests.
type (
	// SubmitRequest is the POST /v1/jobs body.
	SubmitRequest = wire.SubmitRequest
	// JobResponse describes one job's current state.
	JobResponse = wire.JobResponse
	// QueueResponse is the GET /v1/queue body.
	QueueResponse = wire.QueueResponse
	// MachineResponse is the GET /v1/machine body.
	MachineResponse = wire.MachineResponse
	// RunningJob is one executing job in the machine snapshot.
	RunningJob = wire.RunningJob
	// DrainResponse is the POST /v1/drain body.
	DrainResponse = wire.DrainResponse
	// ErrorResponse is every error body: a human-readable message plus
	// a stable machine-readable code clients can switch on.
	ErrorResponse = wire.ErrorResponse
)

func (s *Server) jobResponse(st engine.JobStatus) JobResponse {
	resp := JobResponse{
		ID:        st.Job.ID,
		State:     st.State.String(),
		Nodes:     st.Job.Nodes,
		User:      st.Job.User,
		SubmitS:   st.Job.Submit,
		RuntimeS:  st.Job.Runtime,
		RequestS:  st.Job.Request,
		EstimateS: st.Estimate,
		NodeIDs:   st.NodeIDs,
	}
	switch st.State {
	case engine.StateWaiting:
		resp.WaitS = s.e.Now() - st.Job.Submit
	case engine.StateRunning:
		start := st.Start
		resp.StartS = &start
		resp.WaitS = st.Start - st.Job.Submit
	case engine.StateDone:
		start, end := st.Start, st.End
		resp.StartS = &start
		resp.EndS = &end
		resp.WaitS = st.Start - st.Job.Submit
		bsld := job.BoundedSlowdown(st.Job, st.Start)
		resp.BoundedSlowdown = &bsld
	}
	return resp
}

// submit handles POST /v1/jobs. The body is either a single job object
// (the original API, response shape unchanged) or an array of jobs —
// the batched path through the ingest queue with per-item results.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return
	}
	st := s.beginSubmitTrace(r)
	if firstJSONByte(body) == '[' {
		s.submitBatch(w, body, st)
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return
	}
	if req.ID < 0 {
		writeError(w, http.StatusBadRequest, "invalid_job",
			fmt.Errorf("invalid job ID %d", req.ID))
		return
	}
	spec := specFromRequest(req)
	id := req.ID
	if s.ingest != nil {
		// Single submits share the ingest path so quotas and
		// backpressure apply uniformly; the response shape is the same.
		results, qerr := s.ingest.SubmitBatch([]job.Job{spec})
		if qerr != nil {
			s.writeSaturated(w, qerr)
			return
		}
		if rerr := results[0].Err; rerr != nil {
			status, code := submitStatus(rerr)
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", retryAfterSeconds)
			}
			writeError(w, status, code, rerr)
			return
		}
		id = results[0].ID
	} else {
		var serr error
		if id == 0 {
			id, serr = s.e.Submit(spec)
		} else {
			serr = s.e.SubmitJob(spec)
		}
		if serr != nil {
			status, code := submitStatus(serr)
			writeError(w, status, code, serr)
			return
		}
		// Without an ingest queue there is no committer to force the
		// group-commit boundary, so a 201 must carry its own fsync — a
		// group-buffered journal would otherwise lose acknowledged
		// submits on crash.
		if js, ok := s.e.(journalSyncer); ok {
			if err := js.SyncJournal(); err != nil {
				writeError(w, http.StatusInternalServerError, "journal", err)
				return
			}
		}
	}
	s.bindSubmitTrace(&st, id, 0)
	js, _ := s.e.Job(id)
	writeJSON(w, http.StatusCreated, s.jobResponse(js))
}

// journalSyncer is the optional Backend surface (both *engine.Engine
// and *federation.Router have it) the synchronous submit path uses to
// make each acknowledged submit durable when no ingest queue fronts
// the backend.
type journalSyncer interface{ SyncJournal() error }

func (s *Server) job(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_job_id", err)
		return
	}
	st, ok := s.e.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponse(st))
}

func (s *Server) queue(w http.ResponseWriter, r *http.Request) {
	q := s.e.Queue()
	resp := QueueResponse{Length: len(q), Jobs: make([]JobResponse, len(q))}
	for i, st := range q {
		resp.Jobs[i] = s.jobResponse(st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) machine(w http.ResponseWriter, r *http.Request) {
	m := s.e.Machine()
	resp := MachineResponse{
		NowS:      m.Now,
		Capacity:  m.Capacity,
		FreeNodes: m.FreeNodes,
		Running:   make([]RunningJob, len(m.Running)),
	}
	for i, rj := range m.Running {
		resp.Running[i] = RunningJob{
			ID: rj.ID, Nodes: rj.Nodes, User: rj.User,
			StartS: rj.Start, PredictedEndS: rj.PredictedEnd,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.e.Metrics()
	var ing *ingest.Stats
	if s.ingest != nil {
		st := s.ingest.Stats()
		ing = &st
	}
	if acceptsPromText(r.Header.Get("Accept")) {
		var fed *engine.FederationMetrics
		if fb, ok := s.e.(FederationBackend); ok {
			f := fb.Federation()
			fed = &f
		}
		writeProm(w, m, fed, ing, s.tracer)
		return
	}
	if ing != nil {
		// Wrap rather than mutate the schema: the JSON report stays an
		// engine.Metrics with an extra ingest section.
		writeJSON(w, http.StatusOK, struct {
			engine.Metrics
			Ingest *ingest.Stats `json:"ingest"`
		}{m, ing})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) federation(w http.ResponseWriter, r *http.Request) {
	fb := s.e.(FederationBackend) // route is only registered for one
	writeJSON(w, http.StatusOK, fb.Federation())
}

func (s *Server) drain(w http.ResponseWriter, r *http.Request) {
	s.drainOnce.Do(func() {
		go func() {
			// Context.Background: the drain outlives the request.
			if err := s.e.Drain(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
				// The engine records its own fatal errors; nothing else
				// to do here.
				_ = err
			}
			if s.onDrained != nil {
				s.onDrained()
			}
		}()
	})
	m := s.e.Metrics()
	writeJSON(w, http.StatusAccepted, DrainResponse{
		Draining: m.Jobs.Waiting,
		Running:  m.Jobs.Running,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}
