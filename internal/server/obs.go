package server

import (
	"net/http"
	"time"

	"schedsearch/internal/obs"
)

// WithFlight exposes the decision flight recorder the backend's engine
// records into over GET /v1/debug/decisions. The recorder stays owned
// by the caller (it is the same one wired into engine.Config.Flight).
func WithFlight(f *obs.FlightRecorder) Option {
	return func(s *Server) { s.flight = f }
}

// WithTracer attaches the cross-process tracer: the submit paths parse
// (or mint) X-Schedsearch-Trace contexts, bind them to admitted job
// IDs, and record the front-door span — "admit" when the context
// arrived on the wire, "submit" when this process minted it. shard
// tags this server's spans with its shard index (0 standalone).
func WithTracer(tr *obs.Tracer, shard int) Option {
	return func(s *Server) { s.tracer = tr; s.traceShard = shard }
}

// submitTrace is one submit request's trace state, threaded from the
// header parse to the per-job bind.
type submitTrace struct {
	tc     obs.TraceContext
	parsed bool // arrived on the wire (span "admit") vs. minted here ("submit")
	start  time.Time
}

// beginSubmitTrace reads the request's trace header. Malformed,
// oversized or absent headers degrade to a freshly minted trace —
// never an error: a garbage header must not reject a submit.
func (s *Server) beginSubmitTrace(r *http.Request) submitTrace {
	if s.tracer == nil {
		return submitTrace{}
	}
	tc, parsed := s.tracer.ParseOrMint(r.Header.Get(obs.TraceHeader))
	return submitTrace{tc: tc, parsed: parsed, start: s.tracer.Now()}
}

// bindSubmitTrace binds the trace to an admitted job and records its
// front-door span. Batch items past the first re-mint unparsed traces
// so each job roots its own span tree; a propagated context is shared
// by the whole batch (the spans stay distinguishable by job ID).
func (s *Server) bindSubmitTrace(st *submitTrace, id, item int) {
	tr := s.tracer
	if tr == nil || id == 0 {
		return
	}
	tc := st.tc
	if item > 0 && !st.parsed {
		tc = tr.Mint()
	}
	name := "submit"
	if st.parsed {
		name = "admit"
	}
	tr.Bind(id, tc)
	tr.Record(name, tc, id, s.traceShard, st.start, tr.Now().Sub(st.start))
}

// DecisionsResponse is the GET /v1/debug/decisions body: the retained
// window of the decision flight recorder, oldest first, plus the
// all-time decision count (Total - len(Decisions) decisions have
// scrolled out of the ring).
type DecisionsResponse struct {
	Total     int64                `json:"total"`
	Decisions []obs.DecisionRecord `json:"decisions"`
}

// debugDecisions serves GET /v1/debug/decisions; registered only when
// a flight recorder is attached (WithFlight).
func (s *Server) debugDecisions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DecisionsResponse{
		Total:     s.flight.Total(),
		Decisions: s.flight.Snapshot(),
	})
}
