package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/sim"
	"schedsearch/internal/wire"
)

// This file is the shard-facing half of the distributed-federation wire
// protocol: the endpoints a federation router (federation.RemoteShard)
// drives on a single-engine schedd process to treat it as one shard.
//
//	POST /v1/shard/admit      admit a migrated job, preserving ID and submit time
//	POST /v1/shard/withdraw   withdraw a still-queued job (migration source side)
//	GET  /v1/shard/load       cheap occupancy summary (engine.Load)
//	GET  /v1/shard/records    completion records with shard-local node IDs
//	GET  /v1/shard/checkpoint committed history (engine.Checkpoint) for inspection
//
// The routes are registered only when the backend exposes the full
// shard seam (a bare *engine.Engine does; a federation router does
// not — routers are not shards of other routers).
//
// Idempotency is the load-bearing property. A migration is two calls
// with side effects — Withdraw on the source, Admit on the destination
// — and either acknowledgment can be lost on the wire while the
// operation itself committed. Both handlers therefore answer a retry
// like the original:
//
//   - A retried withdraw whose original landed finds the engine's
//     withdraw tombstone (engine.Withdrawn) and returns the same job
//     with "retried": true, instead of a not_queued error.
//   - A retried admit whose original landed is a duplicate-ID 409; the
//     client verifies the job exists on this shard and treats it as
//     success.
//
// Both mutation handlers fsync the journal before acknowledging, so an
// acknowledged migration step survives a process kill — the invariant
// the remote chaos tier (chaos.RunFederationRemote) exercises.

// ShardBackend is the backend surface the shard endpoints need: the
// ordinary Backend plus the migration and inspection seams of
// engine.Shard. A bare *engine.Engine satisfies it.
type ShardBackend interface {
	Backend
	Admit(j job.Job) error
	Withdraw(id int) (job.Job, error)
	Withdrawn(id int) (job.Job, bool)
	Load() engine.Load
	Records() []sim.Record
	Checkpoint() engine.Checkpoint
}

// The shard wire DTOs live in internal/wire (the schema leaf shared
// with federation.RemoteShard); the aliases keep this package's names
// stable for handlers and tests.
type (
	// WireJob is job.Job on the wire.
	WireJob = wire.WireJob
	// AdmitResponse is the POST /v1/shard/admit success body.
	AdmitResponse = wire.AdmitResponse
	// WithdrawRequest is the POST /v1/shard/withdraw body.
	WithdrawRequest = wire.WithdrawRequest
	// WithdrawResponse is the POST /v1/shard/withdraw success body.
	WithdrawResponse = wire.WithdrawResponse
	// LoadResponse is the GET /v1/shard/load body.
	LoadResponse = wire.LoadResponse
	// WireRecord is sim.Record on the wire.
	WireRecord = wire.WireRecord
	// RecordsResponse is the GET /v1/shard/records body.
	RecordsResponse = wire.RecordsResponse
)

// JobToWire converts a domain job to its wire form.
func JobToWire(j job.Job) WireJob { return wire.JobToWire(j) }

// registerShardRoutes mounts the shard wire protocol; called from New
// when the backend satisfies ShardBackend.
func (s *Server) registerShardRoutes(sb ShardBackend) {
	s.mux.HandleFunc("POST /v1/shard/admit", func(w http.ResponseWriter, r *http.Request) {
		s.shardAdmit(w, r, sb)
	})
	s.mux.HandleFunc("POST /v1/shard/withdraw", func(w http.ResponseWriter, r *http.Request) {
		s.shardWithdraw(w, r, sb)
	})
	s.mux.HandleFunc("GET /v1/shard/load", func(w http.ResponseWriter, r *http.Request) {
		ld := sb.Load()
		writeJSON(w, http.StatusOK, LoadResponse{
			Capacity: ld.Capacity, FreeNodes: ld.FreeNodes,
			Waiting: ld.Waiting, Running: ld.Running,
			QueuedNodeSec: ld.QueuedNodeSec, RemainingNodeSec: ld.RemainingNodeSec,
		})
	})
	s.mux.HandleFunc("GET /v1/shard/records", func(w http.ResponseWriter, r *http.Request) {
		recs := sb.Records()
		resp := RecordsResponse{Records: make([]WireRecord, len(recs))}
		for i, rec := range recs {
			resp.Records[i] = WireRecord{
				Job: JobToWire(rec.Job), StartS: rec.Start, EndS: rec.End,
				NodeIDs: rec.NodeIDs, Measured: rec.Measured,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	s.mux.HandleFunc("GET /v1/shard/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sb.Checkpoint())
	})
}

// decodeShardBody strictly decodes a shard-protocol request body,
// mapping oversized and malformed payloads to structured errors (the
// fuzz tier pins "never a panic, never a bare 500" down).
func decodeShardBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return false
	}
	return true
}

func (s *Server) shardAdmit(w http.ResponseWriter, r *http.Request, sb ShardBackend) {
	var t0 time.Time
	if s.tracer != nil {
		t0 = s.tracer.Now()
	}
	var wj WireJob
	if !decodeShardBody(w, r, &wj) {
		return
	}
	if wj.ID < 1 {
		writeError(w, http.StatusBadRequest, "invalid_job",
			fmt.Errorf("invalid job ID %d", wj.ID))
		return
	}
	if err := sb.Admit(wj.ToJob()); err != nil {
		status, code := submitStatus(err)
		writeError(w, status, code, err)
		return
	}
	// The admit is acknowledged only once durable: a group-buffered
	// journal must not lose a committed migration step to a process
	// kill after the router has already withdrawn the job elsewhere.
	if js, ok := s.e.(journalSyncer); ok {
		if err := js.SyncJournal(); err != nil {
			writeError(w, http.StatusInternalServerError, "journal", err)
			return
		}
	}
	if tr := s.tracer; tr != nil {
		// A shard only continues traces propagated over the federation
		// wire; it never originates one here (an untraced router stays
		// untraced end to end).
		if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
			tr.Bind(wj.ID, tc)
			tr.Record("admit", tc, wj.ID, s.traceShard, t0, tr.Now().Sub(t0))
		}
	}
	writeJSON(w, http.StatusCreated, AdmitResponse{ID: wj.ID})
}

func (s *Server) shardWithdraw(w http.ResponseWriter, r *http.Request, sb ShardBackend) {
	var req WithdrawRequest
	if !decodeShardBody(w, r, &req) {
		return
	}
	if req.ID < 1 {
		writeError(w, http.StatusBadRequest, "invalid_job",
			fmt.Errorf("invalid job ID %d", req.ID))
		return
	}
	j, err := sb.Withdraw(req.ID)
	if err == nil {
		if js, ok := s.e.(journalSyncer); ok {
			if serr := js.SyncJournal(); serr != nil {
				// The withdrawal committed but is not durable; refusing
				// the ack keeps the job from being admitted elsewhere
				// while this shard could resurrect it after a crash.
				writeError(w, http.StatusInternalServerError, "journal", serr)
				return
			}
		}
		writeJSON(w, http.StatusOK, WithdrawResponse{Job: JobToWire(j)})
		return
	}
	if errors.Is(err, engine.ErrNotQueued) {
		// Idempotent replay: the original withdraw landed and the ack
		// was lost. The tombstone (journal-backed, rebuilt on crash
		// recovery) returns the same job again.
		if tj, ok := sb.Withdrawn(req.ID); ok {
			writeJSON(w, http.StatusOK, WithdrawResponse{Job: JobToWire(tj), Retried: true})
			return
		}
		if _, ok := sb.Job(req.ID); ok {
			// Known but running or done: a legitimate race with the
			// dispatcher, not an error worth retrying.
			writeError(w, http.StatusConflict, "not_queued", err)
			return
		}
		writeError(w, http.StatusNotFound, "unknown_job", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err)
}
