package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/job"
)

// maxBatchItems caps the jobs in one batched submit. It exists so a
// body full of `{}` items cannot buy 1 MiB worth of queue slots with
// one request; larger workloads split across requests.
const maxBatchItems = 4096

// retryAfterSeconds is the Retry-After hint attached to backpressure
// rejections: the accept queue drains in milliseconds, so the shortest
// expressible delay is honest.
const retryAfterSeconds = "1"

// BatchItemResult is one item's outcome in a BatchResponse. Status is
// the HTTP status the item would have received as a single submit
// (201, 400, 409, 429, 503), so clients reuse their single-submit
// error handling per item.
type BatchItemResult struct {
	Index  int    `json:"index"`
	ID     int    `json:"id,omitempty"`
	Status int    `json:"status"`
	Code   string `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/jobs body for an array request: the
// batch itself succeeds (HTTP 200) even when individual items were
// rejected — one bad job does not reject its neighbors.
type BatchResponse struct {
	Accepted int               `json:"accepted"`
	Rejected int               `json:"rejected"`
	Items    []BatchItemResult `json:"items"`
}

// submitStatus maps an admission error to its HTTP status and stable
// error code; both the single and the batched submit path use it.
func submitStatus(err error) (int, string) {
	switch {
	case errors.Is(err, engine.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, engine.ErrDuplicateID):
		return http.StatusConflict, "duplicate_id"
	case errors.Is(err, ingest.ErrQuota):
		return http.StatusTooManyRequests, "quota_exceeded"
	default:
		return http.StatusBadRequest, "invalid_job"
	}
}

// specFromRequest converts one SubmitRequest to the job the backend
// admits.
func specFromRequest(req SubmitRequest) job.Job {
	return job.Job{
		ID:      req.ID,
		Nodes:   req.Nodes,
		Runtime: req.RuntimeS,
		Request: req.RequestS,
		User:    req.User,
	}
}

// submitBatch handles an array-bodied POST /v1/jobs through the ingest
// queue: per-item results, group-committed admission, explicit
// backpressure. body is the raw request payload (already bounded by
// MaxBytesReader).
func (s *Server) submitBatch(w http.ResponseWriter, body []byte, st submitTrace) {
	if s.ingest == nil {
		writeError(w, http.StatusBadRequest, "batch_unsupported",
			errors.New("batched submits need the ingest queue (run with -ingest-pending > 0)"))
		return
	}
	var reqs []SubmitRequest
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", err)
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "empty_batch", errors.New("batch holds no jobs"))
		return
	}
	if len(reqs) > maxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge, "batch_too_large",
			fmt.Errorf("batch of %d jobs exceeds the %d-item cap", len(reqs), maxBatchItems))
		return
	}
	jobs := make([]job.Job, len(reqs))
	pre := make([]*BatchItemResult, len(reqs)) // resolved before enqueue
	for i, req := range reqs {
		if req.ID < 0 {
			pre[i] = &BatchItemResult{
				Index: i, Status: http.StatusBadRequest, Code: "invalid_job",
				Error: fmt.Sprintf("invalid job ID %d", req.ID),
			}
			continue
		}
		jobs[i] = specFromRequest(req)
	}
	// Submit only the items that passed the cheap checks, remembering
	// their original indexes.
	live := make([]job.Job, 0, len(jobs))
	idx := make([]int, 0, len(jobs))
	for i := range jobs {
		if pre[i] == nil {
			live = append(live, jobs[i])
			idx = append(idx, i)
		}
	}
	var results []ingest.ItemResult
	if len(live) > 0 {
		var err error
		results, err = s.ingest.SubmitBatch(live)
		if err != nil {
			s.writeSaturated(w, err)
			return
		}
	}
	resp := BatchResponse{Items: make([]BatchItemResult, len(reqs))}
	for i := range reqs {
		if pre[i] != nil {
			resp.Items[i] = *pre[i]
			continue
		}
		resp.Items[i] = BatchItemResult{Index: i, Status: http.StatusCreated}
	}
	for k, r := range results {
		i := idx[k]
		if r.Err != nil {
			status, code := submitStatus(r.Err)
			resp.Items[i] = BatchItemResult{
				Index: i, Status: status, Code: code, Error: r.Err.Error(),
			}
			continue
		}
		s.bindSubmitTrace(&st, r.ID, k)
		resp.Items[i] = BatchItemResult{Index: i, ID: r.ID, Status: http.StatusCreated}
	}
	for _, it := range resp.Items {
		if it.Status == http.StatusCreated {
			resp.Accepted++
		} else {
			resp.Rejected++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeSaturated renders a whole-request backpressure rejection: 503
// with a Retry-After hint. Nothing of the batch was queued.
func (s *Server) writeSaturated(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds)
	code := "saturated"
	if errors.Is(err, ingest.ErrClosed) {
		code = "draining"
	}
	writeError(w, http.StatusServiceUnavailable, code, err)
}

// firstJSONByte returns the first non-whitespace byte of the body ('['
// selects the batch path).
func firstJSONByte(body []byte) byte {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return 0
	}
	return trimmed[0]
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	OK bool `json:"ok"`
}

// ReadyResponse is the GET /v1/readyz body; Ready is false (and the
// status 503) while the backend drains, the accept queue is saturated,
// or — on a federated router — any shard is unreachable or rebuilding.
// Shards carries the per-shard breakdown on federated backends so an
// operator (or orchestrator) can see which shard is holding readiness
// down.
type ReadyResponse struct {
	Ready     bool                 `json:"ready"`
	Draining  bool                 `json:"draining"`
	Saturated bool                 `json:"saturated"`
	Shards    []engine.ShardHealth `json:"shards,omitempty"`
}

// healthz is liveness: the process is up and serving.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{OK: true})
}

// drainer is the optional backend surface readiness consults; both
// *engine.Engine and *federation.Router have it.
type drainer interface {
	Draining() bool
}

// shardHealthReporter is the optional backend surface a federated
// router exposes: per-shard reachability. Readiness consults it so a
// router fronting an unreachable or rebuilding shard reports 503 with
// the per-shard breakdown, instead of claiming readiness it cannot
// honor for jobs routed to the dead shard.
type shardHealthReporter interface {
	ShardHealth() []engine.ShardHealth
}

// readyz is readiness: 200 only while the daemon is admitting work and
// every federated shard is reachable.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Ready: true}
	if d, ok := s.e.(drainer); ok {
		resp.Draining = d.Draining()
	} else {
		resp.Draining = s.e.Metrics().Draining
	}
	if s.ingest != nil && !s.ingest.Ready() {
		resp.Saturated = true
	}
	allShardsHealthy := true
	if shr, ok := s.e.(shardHealthReporter); ok {
		resp.Shards = shr.ShardHealth()
		for _, sh := range resp.Shards {
			if !sh.Healthy {
				allShardsHealthy = false
			}
		}
	}
	resp.Ready = !resp.Draining && !resp.Saturated && allShardsHealthy
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
