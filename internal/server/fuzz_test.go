package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/policy"
)

// FuzzBatchSubmit throws arbitrary bodies at POST /v1/jobs with the
// ingest queue attached — malformed JSON, object/array confusion,
// huge batches against the item cap, mixed valid and invalid items —
// and asserts the structural contract: the handler never panics (a
// 500 would reveal one; ServeHTTP converts panics to 500), every
// response is one JSON document, and a 200 batch response accounts
// for every submitted item exactly once with a sane per-item status.
func FuzzBatchSubmit(f *testing.F) {
	seeds := []string{
		`[{"nodes":4,"runtime_s":3600}]`,
		`[{"nodes":1,"runtime_s":60},{"nodes":0,"runtime_s":60}]`,
		`[{"id":5,"nodes":2,"runtime_s":600},{"id":5,"nodes":2,"runtime_s":600}]`,
		`[{"id":-1,"nodes":1,"runtime_s":60}]`,
		`[]`,
		`[{}]`,
		`[null]`,
		`["x"]`,
		`[{"nodes":4,`,
		`{"nodes":4,"runtime_s":3600}`,
		`   [ {"nodes":1,"runtime_s":1} ]`,
		`[[{"nodes":1}]]`,
		`[{"nodes":1,"runtime_s":60,"user":-3}]`,
		`[{"nodes":1,"runtime_s":-60}]`,
		`[{"nodes":99999999,"runtime_s":60}]`,
		`[{"nodes":1,"runtime_s":9223372036854775807}]`,
		"[" + strings.Repeat(`{"nodes":1,"runtime_s":60},`, 64) + `{"nodes":1,"runtime_s":60}]`,
		"[" + strings.Repeat(`{},`, 5000) + `{}]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		e, err := engine.New(engine.Config{
			Capacity: 64,
			Policy:   policy.FCFSBackfill(),
			Clock:    engine.NewVirtualClock(),
		})
		if err != nil {
			t.Fatal(err)
		}
		q, err := ingest.NewQueue(ingest.Config{Backend: e})
		if err != nil {
			t.Fatal(err)
		}
		defer q.Close()
		srv := New(e, nil, WithIngest(q))

		r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)

		if w.Code == http.StatusInternalServerError {
			t.Fatalf("handler panicked on %q", body)
		}
		var probe any
		if err := json.Unmarshal(w.Body.Bytes(), &probe); err != nil {
			t.Fatalf("non-JSON response %q to body %q", w.Body.String(), body)
		}
		if w.Code != http.StatusOK {
			return // single-submit 201s and structured errors: done
		}
		if firstJSONByte(body) != '[' {
			return // 200 only comes from the batch path
		}
		var resp BatchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("200 response is not a BatchResponse: %q", w.Body.String())
		}
		if len(resp.Items) == 0 || len(resp.Items) > maxBatchItems {
			t.Fatalf("batch response with %d items", len(resp.Items))
		}
		if resp.Accepted+resp.Rejected != len(resp.Items) {
			t.Fatalf("accounting broken: %d accepted + %d rejected != %d items",
				resp.Accepted, resp.Rejected, len(resp.Items))
		}
		for i, it := range resp.Items {
			if it.Index != i {
				t.Fatalf("item %d carries index %d", i, it.Index)
			}
			switch it.Status {
			case http.StatusCreated:
				if it.ID <= 0 {
					t.Fatalf("accepted item %d has ID %d", i, it.ID)
				}
			case http.StatusBadRequest, http.StatusConflict,
				http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if it.Code == "" {
					t.Fatalf("rejected item %d has no error code: %+v", i, it)
				}
			default:
				t.Fatalf("item %d has unexpected status %d", i, it.Status)
			}
		}
		// The queue must account for everything it accepted.
		q.Flush()
		if st := q.Stats(); st.Accepted != st.Committed+st.Rejected {
			t.Fatalf("queue accounting broken after batch: %+v", st)
		}
	})
}
