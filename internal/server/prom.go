package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/obs"
)

// acceptsPromText decides the /v1/metrics representation from the
// request's Accept header: the Prometheus text exposition format is
// served only when the client prefers text/plain strictly over
// application/json (a scraper's "text/plain;version=0.0.4;q=0.5,
// */*;q=0.1" does; a browser's "*/*" and an absent header keep the
// JSON default). Ties go to JSON.
func acceptsPromText(accept string) bool {
	qText, qJSON := 0.0, 0.0
	for _, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		mtype := strings.ToLower(strings.TrimSpace(fields[0]))
		if mtype == "" {
			continue
		}
		q := 1.0
		for _, p := range fields[1:] {
			p = strings.TrimSpace(p)
			if v, ok := strings.CutPrefix(p, "q="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					q = f
				}
			}
		}
		switch mtype {
		case "text/plain", "text/*":
			if q > qText {
				qText = q
			}
		case "application/json", "application/*":
			if q > qJSON {
				qJSON = q
			}
		case "*/*":
			if q > qText {
				qText = q
			}
			if q > qJSON {
				qJSON = q
			}
		}
	}
	return qText > qJSON
}

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// writeProm renders the running metrics — and, for a federated backend,
// the per-shard report; with an ingest queue attached, the accept
// path's counters and latency histogram; with a tracer attached, the
// per-span duration series — in the Prometheus text exposition format.
// Runtime self-metrics (goroutines, heap, GC) are always included.
func writeProm(w http.ResponseWriter, m engine.Metrics, fed *engine.FederationMetrics, ing *ingest.Stats, tr *obs.Tracer) {
	w.Header().Set("Content-Type", promContentType)
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, promFloat(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			name, help, name, name, promFloat(v))
	}
	hist := func(name, help string, h obs.HistSnapshot) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for i, le := range h.BucketLeUs {
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(float64(le)/1e6), h.BucketCount[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(h.AvgUs*float64(h.Count)/1e6))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}

	gauge("schedsearch_capacity_nodes", "Machine size in nodes.", float64(m.Capacity))
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauge("schedsearch_draining", "1 while the daemon is draining.", draining)

	fmt.Fprintf(&b, "# HELP schedsearch_jobs Admitted jobs by state.\n# TYPE schedsearch_jobs gauge\n")
	fmt.Fprintf(&b, "schedsearch_jobs{state=\"waiting\"} %d\n", m.Jobs.Waiting)
	fmt.Fprintf(&b, "schedsearch_jobs{state=\"running\"} %d\n", m.Jobs.Running)
	fmt.Fprintf(&b, "schedsearch_jobs{state=\"done\"} %d\n", m.Jobs.Done)

	counter("schedsearch_decisions_total", "Scheduling decision points.", float64(m.Engine.Decisions))
	counter("schedsearch_policy_panics_total", "Recovered policy panics (FCFS fallbacks).", float64(m.Engine.PolicyPanics))
	counter("schedsearch_search_nodes_total", "Search tree nodes expanded.", float64(m.Engine.SearchNodes))
	counter("schedsearch_search_leaves_total", "Search tree leaves evaluated.", float64(m.Engine.SearchLeaves))
	counter("schedsearch_search_budget_hits_total", "Search budget cutoffs.", float64(m.Engine.BudgetHits))
	counter("schedsearch_search_wall_seconds_total", "Wall time spent searching.", m.Engine.SearchWallMs/1e3)
	// Warm-start / adaptive-budget series, present only when the search
	// policy runs with WarmStart or an SLO budget (see engine.Counters).
	if m.Engine.WarmDecisions > 0 || m.Engine.SearchNodesToBest > 0 {
		counter("schedsearch_search_nodes_to_best_total", "Search nodes spent before the last incumbent improvement.", float64(m.Engine.SearchNodesToBest))
		counter("schedsearch_warm_decisions_total", "Decisions seeded from the carried warm-start ordering.", float64(m.Engine.WarmDecisions))
		counter("schedsearch_warm_seed_held_total", "Warm decisions where no enumerated schedule beat the seed.", float64(m.Engine.WarmSeedHeld))
	}
	if m.Engine.SearchEffLimit > 0 {
		gauge("schedsearch_search_eff_limit", "Mean effective node budget per decision (SLO-adapted).", m.Engine.SearchEffLimit)
	}
	gauge("schedsearch_decide_avg_ms", "Mean decision latency in milliseconds.", m.Engine.AvgDecideMs)
	gauge("schedsearch_decide_max_ms", "Max decision latency in milliseconds.", m.Engine.MaxDecideMs)

	gauge("schedsearch_journal_tail_events", "In-memory journal tail length since the last compaction.", float64(m.Engine.JournalTail))
	counter("schedsearch_journal_compactions_total", "Journal checkpoint compactions.", float64(m.Engine.Compactions))
	counter("schedsearch_journal_appends_total", "Events appended to the persistent journal.", float64(m.Engine.JournalAppends))
	counter("schedsearch_journal_syncs_total", "Journal fsync boundaries (group commits).", float64(m.Engine.JournalSyncs))
	if jf := m.Engine.JournalFsync; jf != nil {
		hist("schedsearch_journal_fsync_seconds", "Journal group-commit flush+fsync latency.", *jf)
	}

	gauge("schedsearch_measured_jobs", "Completed measured jobs in the summary.", float64(m.Summary.Jobs))
	gauge("schedsearch_avg_wait_hours", "Mean wait of measured jobs in hours.", m.Summary.AvgWaitH)
	gauge("schedsearch_avg_bounded_slowdown", "Mean bounded slowdown of measured jobs.", m.Summary.AvgBoundedSlowdown)
	gauge("schedsearch_avg_queue_len", "Time-averaged queue length.", m.Summary.AvgQueueLen)
	gauge("schedsearch_utilized_load", "Delivered fraction of machine capacity.", m.Summary.UtilizedLoad)

	if fed != nil {
		gauge("schedsearch_shards", "Engine shards in the federation.", float64(fed.Shards))
		counter("schedsearch_migrations_total", "Queued jobs migrated between shards.", float64(fed.Migrations))
		counter("schedsearch_rebalance_passes_total", "Rebalance passes run.", float64(fed.RebalancePasses))
		counter("schedsearch_routing_decisions_total", "Placement decisions made.", float64(fed.RoutingDecisions))
		counter("schedsearch_routing_seconds_total", "Wall time spent placing jobs.", float64(fed.RoutingNs)/1e9)
		fmt.Fprintf(&b, "# HELP schedsearch_shard_util Utilized load by shard.\n# TYPE schedsearch_shard_util gauge\n")
		for i, u := range fed.PerShardUtil {
			fmt.Fprintf(&b, "schedsearch_shard_util{shard=\"%d\"} %s\n", i, promFloat(u))
		}
		fmt.Fprintf(&b, "# HELP schedsearch_shard_jobs Admitted jobs by shard and state.\n# TYPE schedsearch_shard_jobs gauge\n")
		for _, sh := range fed.PerShard {
			fmt.Fprintf(&b, "schedsearch_shard_jobs{shard=\"%d\",state=\"waiting\"} %d\n", sh.Shard, sh.Jobs.Waiting)
			fmt.Fprintf(&b, "schedsearch_shard_jobs{shard=\"%d\",state=\"running\"} %d\n", sh.Shard, sh.Jobs.Running)
			fmt.Fprintf(&b, "schedsearch_shard_jobs{shard=\"%d\",state=\"done\"} %d\n", sh.Shard, sh.Jobs.Done)
		}
	}

	if ing != nil {
		gauge("schedsearch_ingest_pending", "Items accepted but not yet committed.", float64(ing.Pending))
		gauge("schedsearch_ingest_peak_pending", "High-water pending item count.", float64(ing.PeakPending))
		gauge("schedsearch_ingest_max_pending", "Configured pending bound (backpressure threshold).", float64(ing.MaxPending))
		counter("schedsearch_ingest_accepted_total", "Items accepted into the queue.", float64(ing.Accepted))
		counter("schedsearch_ingest_committed_total", "Items admitted to the backend.", float64(ing.Committed))
		counter("schedsearch_ingest_rejected_total", "Items rejected at admission (duplicates, invalid, draining).", float64(ing.Rejected))
		counter("schedsearch_ingest_quota_rejected_total", "Items rejected by per-user quotas.", float64(ing.QuotaRejected))
		counter("schedsearch_ingest_saturations_total", "Whole batches rejected with 503 backpressure.", float64(ing.Saturations))
		counter("schedsearch_ingest_batches_total", "Batches accepted.", float64(ing.Batches))
		counter("schedsearch_ingest_sync_groups_total", "Committer groups (journal fsync boundaries).", float64(ing.SyncGroups))
		if ing.QuotaUsers > 0 {
			gauge("schedsearch_ingest_quota_users", "Live per-user token buckets.", float64(ing.QuotaUsers))
		}
		lat := ing.Latency
		hist("schedsearch_ingest_accept_latency_seconds", "Accept-to-commit latency.", lat)
	}

	if tr != nil {
		stats := tr.Stats()
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(&b, "# HELP schedsearch_spans_total Trace spans recorded, by span name.\n# TYPE schedsearch_spans_total counter\n")
			for _, name := range names {
				fmt.Fprintf(&b, "schedsearch_spans_total{span=%q} %d\n", name, stats[name].Count)
			}
			fmt.Fprintf(&b, "# HELP schedsearch_span_seconds_total Wall time inside trace spans, by span name.\n# TYPE schedsearch_span_seconds_total counter\n")
			for _, name := range names {
				fmt.Fprintf(&b, "schedsearch_span_seconds_total{span=%q} %s\n", name, promFloat(float64(stats[name].TotalNs)/1e9))
			}
		}
		counter("schedsearch_spans_dropped_total", "Spans dropped after the trace buffer filled (stats above still count them).", float64(tr.Dropped()))
	}

	rt := obs.ReadRuntime()
	gauge("schedsearch_goroutines", "Live goroutines.", float64(rt.Goroutines))
	gauge("schedsearch_heap_alloc_bytes", "Bytes of live heap objects.", float64(rt.HeapAllocBytes))
	gauge("schedsearch_heap_sys_bytes", "Heap memory obtained from the OS.", float64(rt.HeapSysBytes))
	counter("schedsearch_gc_cycles_total", "Completed GC cycles.", float64(rt.NumGC))
	counter("schedsearch_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", float64(rt.GCPauseTotalNs)/1e9)
	gauge("schedsearch_gc_last_pause_seconds", "Duration of the most recent GC pause.", float64(rt.LastGCPauseNs)/1e9)

	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// promFloat renders a value the way the exposition format wants:
// decimal, no exponent surprises for integers.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
