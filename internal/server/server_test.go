package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
)

type fixture struct {
	srv *Server
	vc  *engine.VirtualClock
	e   *engine.Engine
	// drained is closed when onDrained fires.
	drained chan struct{}
}

func newFixture(t *testing.T, capacity int, pol sim.Policy) *fixture {
	t.Helper()
	vc := engine.NewVirtualClock()
	e, err := engine.New(engine.Config{Capacity: capacity, Policy: pol, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{vc: vc, e: e, drained: make(chan struct{})}
	f.srv = New(e, func() { close(f.drained) })
	return f
}

func (f *fixture) do(t *testing.T, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	f.srv.ServeHTTP(w, r)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, w.Body.String())
	}
	return w, decoded
}

func TestServerSubmitAndLifecycle(t *testing.T) {
	f := newFixture(t, 8, policy.FCFSBackfill())
	w, resp := f.do(t, "POST", "/v1/jobs", `{"nodes":4,"runtime_s":3600}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("submit: %d %v", w.Code, resp)
	}
	if resp["state"] != "waiting" || resp["id"] != float64(1) {
		t.Fatalf("submit response %v, want id=1 waiting", resp)
	}
	f.vc.RunDue() // decision point fires

	w, resp = f.do(t, "GET", "/v1/jobs/1", "")
	if w.Code != http.StatusOK || resp["state"] != "running" {
		t.Fatalf("job 1: %d %v, want running", w.Code, resp)
	}
	if resp["start_s"] != float64(0) {
		t.Fatalf("job 1 start %v, want 0", resp["start_s"])
	}

	f.vc.AdvanceTo(3600)
	w, resp = f.do(t, "GET", "/v1/jobs/1", "")
	if resp["state"] != "done" || resp["end_s"] != float64(3600) {
		t.Fatalf("job 1: %v, want done at 3600", resp)
	}
	if resp["bounded_slowdown"] != float64(1) {
		t.Fatalf("bounded slowdown %v, want 1 (no wait)", resp["bounded_slowdown"])
	}
}

func TestServerQueueAndMachine(t *testing.T) {
	f := newFixture(t, 4, policy.FCFSBackfill())
	f.do(t, "POST", "/v1/jobs", `{"nodes":4,"runtime_s":100}`)
	f.do(t, "POST", "/v1/jobs", `{"nodes":2,"runtime_s":100}`)
	f.vc.RunDue() // job 1 starts, job 2 queues behind it

	w, resp := f.do(t, "GET", "/v1/queue", "")
	if w.Code != http.StatusOK || resp["length"] != float64(1) {
		t.Fatalf("queue: %d %v, want length 1", w.Code, resp)
	}
	w, resp = f.do(t, "GET", "/v1/machine", "")
	if w.Code != http.StatusOK || resp["free_nodes"] != float64(0) || resp["capacity"] != float64(4) {
		t.Fatalf("machine: %d %v, want 0 free of 4", w.Code, resp)
	}
	running := resp["running"].([]any)
	if len(running) != 1 {
		t.Fatalf("machine running %v, want 1 job", running)
	}
}

func TestServerValidationAndNotFound(t *testing.T) {
	f := newFixture(t, 4, policy.FCFSBackfill())
	if w, _ := f.do(t, "POST", "/v1/jobs", `{"nodes":0,"runtime_s":10}`); w.Code != http.StatusBadRequest {
		t.Fatalf("zero-node submit: %d, want 400", w.Code)
	}
	if w, _ := f.do(t, "POST", "/v1/jobs", `not json`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", w.Code)
	}
	if w, _ := f.do(t, "GET", "/v1/jobs/99", ""); w.Code != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", w.Code)
	}
	if w, _ := f.do(t, "GET", "/v1/jobs/abc", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("non-numeric id: %d, want 400", w.Code)
	}
}

func TestServerMetricsWithSearchPolicy(t *testing.T) {
	pol := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 100)
	f := newFixture(t, 8, pol)
	for i := 0; i < 3; i++ {
		f.do(t, "POST", "/v1/jobs", `{"nodes":8,"runtime_s":600}`)
		f.vc.RunDue()
	}
	f.vc.Run() // drain all completions

	var m engine.Metrics
	w := httptest.NewRecorder()
	f.srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/metrics", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Policy != "DDS/lxf/dynB" {
		t.Fatalf("policy %q", m.Policy)
	}
	if m.Jobs.Done != 3 || m.Summary.Jobs != 3 {
		t.Fatalf("metrics %+v, want 3 done", m)
	}
	if m.Engine.Decisions == 0 || m.Engine.SearchNodes == 0 {
		t.Fatalf("engine counters %+v, want non-zero decisions and search nodes", m.Engine)
	}
	if m.Engine.SearchWallMs <= 0 || m.Engine.SearchSpeedup < 1 {
		t.Fatalf("engine counters %+v, want search wall time and speedup >= 1", m.Engine)
	}
	// Jobs 2 and 3 each waited 600s behind the previous full-machine
	// job: the running summary must reflect that.
	if m.Summary.AvgWaitH <= 0 || m.Summary.MaxWaitH < 0.3 {
		t.Fatalf("summary %+v, want positive waits", m.Summary)
	}
}

func TestServerDrain(t *testing.T) {
	f := newFixture(t, 4, policy.FCFSBackfill())
	f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":60}`)
	f.vc.RunDue()

	if w, _ := f.do(t, "POST", "/v1/drain", ""); w.Code != http.StatusAccepted {
		t.Fatalf("drain: %d, want 202", w.Code)
	}
	// Submissions are refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w, _ := f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":1}`)
		if w.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during drain: %d, want 503", w.Code)
		}
		time.Sleep(time.Millisecond)
	}
	f.vc.Run() // finish the running job
	select {
	case <-f.drained:
	case <-time.After(5 * time.Second):
		t.Fatal("onDrained never fired")
	}
	if _, resp := f.do(t, "GET", "/v1/metrics", ""); resp["draining"] != true {
		t.Fatalf("metrics %v, want draining=true", resp)
	}
}

// TestServerSingleSubmitSyncsJournal: without an ingest queue there is
// no committer to force the group-commit boundary, so a 201 on the
// synchronous submit path must carry its own fsync — a group-buffered
// journal would otherwise lose acknowledged submits on crash.
func TestServerSingleSubmitSyncsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	fj, err := engine.OpenFileJournal(path, 64) // group >> 1: Commit alone never syncs
	if err != nil {
		t.Fatal(err)
	}
	vc := engine.NewVirtualClock()
	e, err := engine.New(engine.Config{
		Capacity: 8, Policy: policy.FCFSBackfill(), Clock: vc, Journal: fj,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(e, nil)
	r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"nodes":4,"runtime_s":3600}`))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	if st := fj.Stats(); st.Syncs == 0 {
		t.Fatalf("acknowledged submit left %d appends unsynced (stats %+v)", st.Appends, st)
	}
	// The acknowledged submit is already on disk.
	_, events, err := engine.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != engine.EvSubmit {
		t.Fatalf("journal holds %d events, want the acknowledged EvSubmit first", len(events))
	}
}
