package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/job"
	"schedsearch/internal/policy"
)

// gatedBackend wraps the engine so a test can hold the ingest
// committer mid-commit (submissions block until the gate opens),
// keeping items pending long enough to observe saturation.
type gatedBackend struct {
	*engine.Engine
	gate chan struct{}
}

func (g *gatedBackend) Submit(spec job.Job) (int, error) {
	<-g.gate
	return g.Engine.Submit(spec)
}

func (g *gatedBackend) SubmitJob(j job.Job) error {
	<-g.gate
	return g.Engine.SubmitJob(j)
}

type ingestFixture struct {
	*fixture
	q *ingest.Queue
}

// newIngestFixture wires engine → ingest queue → server, optionally
// through a gate and with quotas, mirroring how cmd/schedd assembles
// the ingest path.
func newIngestFixture(t *testing.T, capacity int, icfg ingest.Config, gate chan struct{}) *ingestFixture {
	t.Helper()
	vc := engine.NewVirtualClock()
	e, err := engine.New(engine.Config{Capacity: capacity, Policy: policy.FCFSBackfill(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	var backend Backend = e
	icfg.Backend = e
	if gate != nil {
		gb := &gatedBackend{Engine: e, gate: gate}
		icfg.Backend = gb
		backend = gb
	}
	q, err := ingest.NewQueue(icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	f := &fixture{vc: vc, e: e, drained: make(chan struct{})}
	f.srv = New(backend, func() { close(f.drained) }, WithIngest(q))
	return &ingestFixture{fixture: f, q: q}
}

// batch runs a batched POST /v1/jobs and decodes the typed response.
func (f *ingestFixture) batch(t *testing.T, body string) (*httptest.ResponseRecorder, BatchResponse) {
	t.Helper()
	r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	w := httptest.NewRecorder()
	f.srv.ServeHTTP(w, r)
	var resp BatchResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("batch response not a BatchResponse: %q", w.Body.String())
		}
	}
	return w, resp
}

func TestBatchSubmit(t *testing.T) {
	f := newIngestFixture(t, 16, ingest.Config{}, nil)
	w, resp := f.batch(t, `[
		{"nodes":4,"runtime_s":3600},
		{"nodes":2,"runtime_s":1800,"user":7},
		{"nodes":1,"runtime_s":600}
	]`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	if resp.Accepted != 3 || resp.Rejected != 0 || len(resp.Items) != 3 {
		t.Fatalf("batch response %+v", resp)
	}
	for i, it := range resp.Items {
		if it.Status != http.StatusCreated || it.ID != i+1 || it.Index != i {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
	// The jobs really are in the engine, in batch order.
	for id := 1; id <= 3; id++ {
		if _, ok := f.e.Job(id); !ok {
			t.Fatalf("job %d missing from engine", id)
		}
	}
}

func TestBatchOneBadItemDoesNotRejectTheBatch(t *testing.T) {
	f := newIngestFixture(t, 16, ingest.Config{}, nil)
	w, resp := f.batch(t, `[
		{"nodes":4,"runtime_s":3600},
		{"nodes":0,"runtime_s":60},
		{"id":-4,"nodes":1,"runtime_s":60},
		{"nodes":1,"runtime_s":600}
	]`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	if resp.Accepted != 2 || resp.Rejected != 2 {
		t.Fatalf("batch response %+v", resp)
	}
	if it := resp.Items[1]; it.Status != http.StatusBadRequest || it.Code != "invalid_job" {
		t.Fatalf("zero-width item %+v, want 400 invalid_job", it)
	}
	if it := resp.Items[2]; it.Status != http.StatusBadRequest || it.Code != "invalid_job" {
		t.Fatalf("negative-ID item %+v, want 400 invalid_job", it)
	}
	if resp.Items[0].Status != http.StatusCreated || resp.Items[3].Status != http.StatusCreated {
		t.Fatalf("good items rejected: %+v", resp.Items)
	}
}

// TestBatchDuplicateIDWithinBatch is the satellite: two entries with
// the same client-assigned ID in one batch yield a per-item 409 for
// the second, the batch itself succeeds, and the queue keeps working.
func TestBatchDuplicateIDWithinBatch(t *testing.T) {
	f := newIngestFixture(t, 16, ingest.Config{}, nil)
	w, resp := f.batch(t, `[
		{"id":5,"nodes":2,"runtime_s":600},
		{"id":5,"nodes":2,"runtime_s":600},
		{"id":6,"nodes":1,"runtime_s":60}
	]`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch rejected whole: %d %s", w.Code, w.Body.String())
	}
	if resp.Accepted != 2 || resp.Rejected != 1 {
		t.Fatalf("batch response %+v", resp)
	}
	if it := resp.Items[0]; it.Status != http.StatusCreated || it.ID != 5 {
		t.Fatalf("first ID-5 item %+v, want 201", it)
	}
	if it := resp.Items[1]; it.Status != http.StatusConflict || it.Code != "duplicate_id" {
		t.Fatalf("second ID-5 item %+v, want 409 duplicate_id", it)
	}
	if it := resp.Items[2]; it.Status != http.StatusCreated {
		t.Fatalf("trailing item %+v, want 201", it)
	}
	// The queue is not corrupted: a follow-up batch commits cleanly.
	w, resp = f.batch(t, `[{"nodes":1,"runtime_s":60}]`)
	if w.Code != http.StatusOK || resp.Accepted != 1 {
		t.Fatalf("follow-up batch: %d %+v", w.Code, resp)
	}
	if st := f.q.Stats(); st.Committed != 3 || st.Rejected != 1 {
		t.Fatalf("queue stats %+v", st)
	}
}

func TestBatchRequestErrors(t *testing.T) {
	f := newIngestFixture(t, 16, ingest.Config{}, nil)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed", `[{"nodes":4,`, http.StatusBadRequest, "bad_json"},
		{"empty", `[]`, http.StatusBadRequest, "empty_batch"},
		{"not-an-array-of-objects", `["x"]`, http.StatusBadRequest, "bad_json"},
		{"too-many-items", "[" + strings.Repeat(`{},`, maxBatchItems) + `{}]`,
			http.StatusRequestEntityTooLarge, "batch_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, resp := f.do(t, "POST", "/v1/jobs", tc.body)
			if w.Code != tc.status || resp["code"] != tc.code {
				t.Fatalf("%s: %d %v, want %d %s", tc.name, w.Code, resp, tc.status, tc.code)
			}
		})
	}
}

func TestBatchWithoutIngestQueue(t *testing.T) {
	f := newFixture(t, 8, policy.FCFSBackfill())
	w, resp := f.do(t, "POST", "/v1/jobs", `[{"nodes":1,"runtime_s":60}]`)
	if w.Code != http.StatusBadRequest || resp["code"] != "batch_unsupported" {
		t.Fatalf("batch without ingest: %d %v", w.Code, resp)
	}
}

func TestSingleSubmitThroughIngest(t *testing.T) {
	f := newIngestFixture(t, 8, ingest.Config{}, nil)
	w, resp := f.do(t, "POST", "/v1/jobs", `{"nodes":4,"runtime_s":3600}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("submit: %d %v", w.Code, resp)
	}
	if resp["id"] != float64(1) || resp["state"] != "waiting" {
		t.Fatalf("single-through-ingest response %v", resp)
	}
	// Duplicate client IDs still answer 409 on the single path.
	f.do(t, "POST", "/v1/jobs", `{"id":9,"nodes":1,"runtime_s":60}`)
	w, resp = f.do(t, "POST", "/v1/jobs", `{"id":9,"nodes":1,"runtime_s":60}`)
	if w.Code != http.StatusConflict || resp["code"] != "duplicate_id" {
		t.Fatalf("duplicate single: %d %v", w.Code, resp)
	}
}

func TestQuotaRejections(t *testing.T) {
	// Quotas on the engine clock: burst 2, near-zero refill.
	vc := engine.NewVirtualClock()
	e, err := engine.New(engine.Config{Capacity: 16, Policy: policy.FCFSBackfill(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ingest.NewQueue(ingest.Config{
		Backend: e,
		Quotas:  ingest.NewQuotas(0.001, 2, e.Now),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	f := &ingestFixture{fixture: &fixture{vc: vc, e: e}, q: q}
	f.srv = New(e, nil, WithIngest(q))

	// Burst of 2 allowed; the third same-user submission answers 429.
	for i := 0; i < 2; i++ {
		w, resp := f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":60,"user":3}`)
		if w.Code != http.StatusCreated {
			t.Fatalf("in-quota submit %d: %d %v", i, w.Code, resp)
		}
	}
	w, resp := f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":60,"user":3}`)
	if w.Code != http.StatusTooManyRequests || resp["code"] != "quota_exceeded" {
		t.Fatalf("over-quota single: %d %v", w.Code, resp)
	}
	if w.Header().Get("Retry-After") != retryAfterSeconds {
		t.Fatalf("over-quota single Retry-After %q, want %q", w.Header().Get("Retry-After"), retryAfterSeconds)
	}
	// Batched: the over-quota item is a per-item 429, neighbors commit.
	br, batch := f.batch(t, `[
		{"nodes":1,"runtime_s":60,"user":3},
		{"nodes":1,"runtime_s":60,"user":4}
	]`)
	if br.Code != http.StatusOK {
		t.Fatalf("quota batch: %d %s", br.Code, br.Body.String())
	}
	if it := batch.Items[0]; it.Status != http.StatusTooManyRequests || it.Code != "quota_exceeded" {
		t.Fatalf("over-quota item %+v", it)
	}
	if it := batch.Items[1]; it.Status != http.StatusCreated {
		t.Fatalf("other user's item %+v", it)
	}
}

func TestSaturationBackpressure(t *testing.T) {
	gate := make(chan struct{})
	f := newIngestFixture(t, 16, ingest.Config{MaxPending: 1}, gate)

	// One submission stalls at the gated backend, filling the queue.
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"nodes":1,"runtime_s":60}`))
		w := httptest.NewRecorder()
		f.srv.ServeHTTP(w, r)
		done <- w
	}()
	waitFor(t, func() bool { return f.q.Stats().Pending == 1 })

	// The next submission must bounce: 503, Retry-After, nothing queued.
	w, resp := f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":60}`)
	if w.Code != http.StatusServiceUnavailable || resp["code"] != "saturated" {
		t.Fatalf("over-limit submit: %d %v", w.Code, resp)
	}
	if w.Header().Get("Retry-After") != retryAfterSeconds {
		t.Fatalf("Retry-After %q, want %q", w.Header().Get("Retry-After"), retryAfterSeconds)
	}
	// Batches bounce whole under saturation.
	wb, _ := f.batch(t, `[{"nodes":1,"runtime_s":60},{"nodes":1,"runtime_s":60}]`)
	if wb.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch under saturation: %d %s", wb.Code, wb.Body.String())
	}
	if st := f.q.Stats(); st.Saturations != 2 || st.PeakPending > st.MaxPending {
		t.Fatalf("stats %+v", st)
	}

	close(gate)
	if w := <-done; w.Code != http.StatusCreated {
		t.Fatalf("gated submit finished with %d %s", w.Code, w.Body.String())
	}
}

// TestHealthAndReadiness is the satellite: healthz is pure liveness;
// readyz flips to 503 while the accept queue is saturated and during a
// drain.
func TestHealthAndReadiness(t *testing.T) {
	gate := make(chan struct{})
	f := newIngestFixture(t, 16, ingest.Config{MaxPending: 1}, gate)

	readyz := func() (int, ReadyResponse) {
		r := httptest.NewRequest("GET", "/v1/readyz", nil)
		w := httptest.NewRecorder()
		f.srv.ServeHTTP(w, r)
		var resp ReadyResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("readyz body %q", w.Body.String())
		}
		return w.Code, resp
	}

	// Fresh daemon: alive and ready.
	w, resp := f.do(t, "GET", "/v1/healthz", "")
	if w.Code != http.StatusOK || resp["ok"] != true {
		t.Fatalf("healthz: %d %v", w.Code, resp)
	}
	if code, r := readyz(); code != http.StatusOK || !r.Ready || r.Draining || r.Saturated {
		t.Fatalf("fresh readyz: %d %+v", code, r)
	}

	// Saturated: readyz answers 503 with the saturated flag.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"nodes":1,"runtime_s":60}`))
		f.srv.ServeHTTP(httptest.NewRecorder(), r)
	}()
	waitFor(t, func() bool { return f.q.Stats().Pending == 1 })
	if code, r := readyz(); code != http.StatusServiceUnavailable || r.Ready || !r.Saturated {
		t.Fatalf("saturated readyz: %d %+v", code, r)
	}
	// Liveness is unaffected by saturation.
	if w, _ := f.do(t, "GET", "/v1/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", w.Code)
	}
	close(gate)
	<-done
	waitFor(t, func() bool { return f.q.Stats().Pending == 0 })
	if code, r := readyz(); code != http.StatusOK || !r.Ready {
		t.Fatalf("drained-queue readyz: %d %+v", code, r)
	}

	// Draining: readyz flips and stays down.
	f.vc.Run() // finish the committed job so the drain completes
	if w, _ := f.do(t, "POST", "/v1/drain", ""); w.Code != http.StatusAccepted {
		t.Fatalf("drain: %d", w.Code)
	}
	waitFor(t, func() bool {
		code, r := readyz()
		return code == http.StatusServiceUnavailable && r.Draining && !r.Ready
	})
	if w, _ := f.do(t, "GET", "/v1/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", w.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMetricsIncludeIngest(t *testing.T) {
	f := newIngestFixture(t, 16, ingest.Config{}, nil)
	if w, _ := f.batch(t, `[{"nodes":1,"runtime_s":60},{"nodes":2,"runtime_s":60}]`); w.Code != http.StatusOK {
		t.Fatalf("batch: %d", w.Code)
	}

	// JSON: the report grows an ingest section.
	w, resp := f.do(t, "GET", "/v1/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	ing, ok := resp["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing ingest section: %v", resp)
	}
	if ing["committed"] != float64(2) {
		t.Fatalf("ingest section %v, want committed=2", ing)
	}

	// Prometheus text: ingest counters and the latency histogram.
	r := httptest.NewRequest("GET", "/v1/metrics", nil)
	r.Header.Set("Accept", "text/plain;version=0.0.4,*/*;q=0.1")
	rec := httptest.NewRecorder()
	f.srv.ServeHTTP(rec, r)
	body := rec.Body.String()
	for _, want := range []string{
		"schedsearch_ingest_pending 0",
		"schedsearch_ingest_committed_total 2",
		"schedsearch_ingest_batches_total 1",
		"schedsearch_ingest_accept_latency_seconds_bucket{le=\"+Inf\"} 2",
		"schedsearch_ingest_accept_latency_seconds_count 2",
		"schedsearch_journal_tail_events",
		"schedsearch_journal_syncs_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	if rec.Header().Get("Content-Type") != promContentType {
		t.Errorf("content type %q", rec.Header().Get("Content-Type"))
	}
}

func TestMetricsWithoutIngestHaveNoIngestSection(t *testing.T) {
	f := newFixture(t, 8, policy.FCFSBackfill())
	_, resp := f.do(t, "GET", "/v1/metrics", "")
	if _, ok := resp["ingest"]; ok {
		t.Fatalf("bare-engine metrics grew an ingest section: %v", resp)
	}
	r := httptest.NewRequest("GET", "/v1/metrics", nil)
	r.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	f.srv.ServeHTTP(rec, r)
	if strings.Contains(rec.Body.String(), "schedsearch_ingest_") {
		t.Fatal("prom exposition exports ingest series without a queue")
	}
}

func TestBatchBodyTooLarge(t *testing.T) {
	f := newIngestFixture(t, 16, ingest.Config{}, nil)
	// One valid item padded past the 1 MiB body cap.
	big := fmt.Sprintf(`[{"nodes":1,"runtime_s":60},{"nodes":1,"runtime_s":%s60}]`,
		strings.Repeat(" ", maxBodyBytes))
	w, resp := f.do(t, "POST", "/v1/jobs", big)
	if w.Code != http.StatusRequestEntityTooLarge || resp["code"] != "body_too_large" {
		t.Fatalf("oversized body: %d %v", w.Code, resp)
	}
}
