package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"schedsearch/internal/policy"
)

// TestServerErrorPaths is the table-driven sweep of every error
// response: each hostile request must produce the right status and a
// structured {"error","code"} body — never a 500, never a stack trace.
func TestServerErrorPaths(t *testing.T) {
	f := newFixture(t, 8, policy.FCFSBackfill())
	// Occupy ID 7 for the duplicate case.
	if w, resp := f.do(t, "POST", "/v1/jobs", `{"id":7,"nodes":1,"runtime_s":60}`); w.Code != http.StatusCreated {
		t.Fatalf("seed submit: %d %v", w.Code, resp)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad-json", "POST", "/v1/jobs", `{"nodes":`, http.StatusBadRequest, "bad_json"},
		{"wrong-type", "POST", "/v1/jobs", `{"nodes":"eight"}`, http.StatusBadRequest, "bad_json"},
		{"not-json", "POST", "/v1/jobs", `nodes=8`, http.StatusBadRequest, "bad_json"},
		{"empty-body", "POST", "/v1/jobs", ``, http.StatusBadRequest, "bad_json"},
		{"zero-nodes", "POST", "/v1/jobs", `{"nodes":0,"runtime_s":10}`, http.StatusBadRequest, "invalid_job"},
		{"too-wide", "POST", "/v1/jobs", `{"nodes":9,"runtime_s":10}`, http.StatusBadRequest, "invalid_job"},
		{"negative-runtime", "POST", "/v1/jobs", `{"nodes":1,"runtime_s":-5}`, http.StatusBadRequest, "invalid_job"},
		{"negative-id", "POST", "/v1/jobs", `{"id":-3,"nodes":1,"runtime_s":10}`, http.StatusBadRequest, "invalid_job"},
		{"duplicate-id", "POST", "/v1/jobs", `{"id":7,"nodes":1,"runtime_s":10}`, http.StatusConflict, "duplicate_id"},
		{"oversized-body", "POST", "/v1/jobs",
			`{"nodes":1,"runtime_s":10,"pad":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`,
			http.StatusRequestEntityTooLarge, "body_too_large"},
		{"unknown-job", "GET", "/v1/jobs/999", "", http.StatusNotFound, "unknown_job"},
		{"non-numeric-id", "GET", "/v1/jobs/abc", "", http.StatusBadRequest, "bad_job_id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, resp := f.do(t, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("%s %s: status %d %v, want %d", tc.method, tc.path, w.Code, resp, tc.wantStatus)
			}
			if resp["code"] != tc.wantCode {
				t.Fatalf("%s %s: code %v, want %q", tc.method, tc.path, resp["code"], tc.wantCode)
			}
			if msg, ok := resp["error"].(string); !ok || msg == "" {
				t.Fatalf("%s %s: missing error message in %v", tc.method, tc.path, resp)
			} else if strings.Contains(msg, "goroutine") || strings.Contains(msg, ".go:") {
				t.Fatalf("%s %s: error message leaks internals: %q", tc.method, tc.path, msg)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("%s %s: Content-Type %q", tc.method, tc.path, ct)
			}
		})
	}
}

// TestServerSubmitAfterDrain: once draining, submissions get a
// structured 503 with code "draining".
func TestServerSubmitAfterDrain(t *testing.T) {
	f := newFixture(t, 4, policy.FCFSBackfill())
	if w, _ := f.do(t, "POST", "/v1/drain", ""); w.Code != http.StatusAccepted {
		t.Fatal("drain not accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		w, resp := f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":10}`)
		if w.Code == http.StatusServiceUnavailable {
			if resp["code"] != "draining" {
				t.Fatalf("code %v, want draining", resp["code"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during drain: %d, want 503", w.Code)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerClientAssignedID: a client-supplied ID is honored and
// reported back; the engine's auto-assigned IDs skip past it.
func TestServerClientAssignedID(t *testing.T) {
	f := newFixture(t, 8, policy.FCFSBackfill())
	w, resp := f.do(t, "POST", "/v1/jobs", `{"id":41,"nodes":1,"runtime_s":60}`)
	if w.Code != http.StatusCreated || resp["id"] != float64(41) {
		t.Fatalf("client-ID submit: %d %v", w.Code, resp)
	}
	w, resp = f.do(t, "POST", "/v1/jobs", `{"nodes":1,"runtime_s":60}`)
	if w.Code != http.StatusCreated || resp["id"] != float64(42) {
		t.Fatalf("auto-ID submit after client ID: %d %v, want id 42", w.Code, resp)
	}
}

// TestServerPanicRecovery: a handler panic becomes a generic 500 JSON
// body; the panic value and stack never reach the client.
func TestServerPanicRecovery(t *testing.T) {
	f := newFixture(t, 4, policy.FCFSBackfill())
	f.srv.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("secret internal state")
	})
	w := httptest.NewRecorder()
	f.srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	body := w.Body.String()
	if strings.Contains(body, "secret") || strings.Contains(body, "goroutine") {
		t.Fatalf("panic details leaked: %q", body)
	}
	_, resp := f.do(t, "GET", "/v1/metrics", "")
	if resp["policy"] != "FCFS-backfill" {
		t.Fatalf("server unusable after recovered panic: %v", resp)
	}
}
