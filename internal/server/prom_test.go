package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/obs"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
)

// TestAcceptsPromText pins the content-negotiation rule: Prometheus
// text only on a strict text/plain preference, JSON otherwise.
func TestAcceptsPromText(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{"text/plain", true},
		{"text/*", true},
		{"TEXT/PLAIN", true},
		{"text/plain; version=0.0.4", true},
		// The canonical Prometheus scraper header.
		{"text/plain;version=0.0.4;q=0.5, */*;q=0.1", true},
		// Explicit JSON preference beats a weaker text preference.
		{"application/json, text/plain;q=0.5", false},
		{"text/plain;q=0.2, application/json;q=0.9", false},
		// Equal preference ties to JSON.
		{"text/plain, application/json", false},
		{"text/plain;q=0.8, */*;q=0.8", false},
		// Garbage q-values fall back to 1.
		{"text/plain;q=banana, application/json;q=0.5", true},
		{"text/html", false},
	}
	for _, tc := range cases {
		if got := acceptsPromText(tc.accept); got != tc.want {
			t.Errorf("acceptsPromText(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

// TestMetricsContentNegotiation drives GET /v1/metrics through both
// representations against a live engine backend.
func TestMetricsContentNegotiation(t *testing.T) {
	f := newFixture(t, 8, policy.FCFSBackfill())
	w, _ := f.do(t, "POST", "/v1/jobs", `{"nodes":4,"runtime_s":3600}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("submit: %d", w.Code)
	}

	jsonReq := httptest.NewRequest("GET", "/v1/metrics", nil)
	jsonReq.Header.Set("Accept", "application/json")
	jw := httptest.NewRecorder()
	f.srv.ServeHTTP(jw, jsonReq)
	if ct := jw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON content type %q", ct)
	}
	var m engine.Metrics
	if err := json.Unmarshal(jw.Body.Bytes(), &m); err != nil {
		t.Fatalf("JSON body: %v", err)
	}
	if m.Capacity != 8 {
		t.Errorf("JSON metrics capacity %d, want 8", m.Capacity)
	}

	promReq := httptest.NewRequest("GET", "/v1/metrics", nil)
	promReq.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5, */*;q=0.1")
	pw := httptest.NewRecorder()
	f.srv.ServeHTTP(pw, promReq)
	if ct := pw.Header().Get("Content-Type"); ct != promContentType {
		t.Fatalf("prom content type %q", ct)
	}
	body := pw.Body.String()
	for _, want := range []string{
		"# TYPE schedsearch_jobs gauge",
		"schedsearch_capacity_nodes 8",
		`schedsearch_jobs{state="waiting"} 1`,
		"# TYPE schedsearch_decisions_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom body missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "schedsearch_shard_util") {
		t.Error("bare engine exposition leaked federation metrics")
	}
}

// TestServerFederation serves a federation router: submissions route
// through it, /v1/federation reports the shard geometry, and the
// Prometheus exposition grows per-shard series.
func TestServerFederation(t *testing.T) {
	vc := engine.NewVirtualClock()
	r, err := federation.New(federation.Config{
		Capacity: 64,
		Shards:   4,
		Clock:    vc,
		Policy:   func(int) sim.Policy { return policy.FCFSBackfill() },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(r, nil)

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(`{"nodes":8,"runtime_s":600}`)))
	if w.Code != http.StatusCreated {
		t.Fatalf("submit through router: %d %s", w.Code, w.Body.String())
	}

	// A job wider than every 16-node shard is a 400, not a 500.
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(`{"nodes":17,"runtime_s":600}`)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("too-wide job: %d %s", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/federation", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/federation: %d", w.Code)
	}
	var fm engine.FederationMetrics
	if err := json.Unmarshal(w.Body.Bytes(), &fm); err != nil {
		t.Fatalf("federation body: %v", err)
	}
	if fm.Shards != 4 || len(fm.PerShard) != 4 || fm.Placement == "" {
		t.Fatalf("federation report %+v", fm)
	}
	if fm.RoutingDecisions != 1 {
		t.Errorf("routing decisions %d, want 1", fm.RoutingDecisions)
	}
	if fm.Global.Capacity != 64 {
		t.Errorf("global capacity %d, want 64", fm.Global.Capacity)
	}

	promReq := httptest.NewRequest("GET", "/v1/metrics", nil)
	promReq.Header.Set("Accept", "text/plain")
	pw := httptest.NewRecorder()
	srv.ServeHTTP(pw, promReq)
	body := pw.Body.String()
	for _, want := range []string{
		"schedsearch_shards 4",
		`schedsearch_shard_util{shard="3"}`,
		"# TYPE schedsearch_migrations_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("federated prom body missing %q", want)
		}
	}

	// A bare-engine server must not register the federation route.
	bare := newFixture(t, 8, policy.FCFSBackfill())
	w = httptest.NewRecorder()
	bare.srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/federation", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("bare engine GET /v1/federation: %d, want 404", w.Code)
	}
}

// TestPromRuntimeJournalAndSpanSeries pins the observability series of
// the Prometheus exposition: process runtime gauges (always on), the
// journal fsync latency histogram (once the journal has synced), and
// the per-span-name duration counters (when the server carries a
// tracer).
func TestPromRuntimeJournalAndSpanSeries(t *testing.T) {
	vc := engine.NewVirtualClock()
	fj, err := engine.OpenFileJournal(t.TempDir()+"/j.journal", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fj.Close()
	tr := obs.NewTracer(obs.TracerOptions{Seed: 7})
	e, err := engine.New(engine.Config{
		Capacity: 8, Policy: policy.FCFSBackfill(), Clock: vc,
		Journal: fj, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(e, nil, WithTracer(tr, 0))

	// One traced submit (continues the wire header: an "admit" span)
	// and one untraced ("submit" span, minted here).
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"nodes":2,"runtime_s":600}`))
	req.Header.Set(obs.TraceHeader, "00000000000000ab-00000000000000cd")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		t.Fatalf("traced submit: %d %s", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(`{"nodes":1,"runtime_s":600}`)))
	if w.Code != http.StatusCreated {
		t.Fatalf("untraced submit: %d %s", w.Code, w.Body.String())
	}

	promReq := httptest.NewRequest("GET", "/v1/metrics", nil)
	promReq.Header.Set("Accept", "text/plain")
	pw := httptest.NewRecorder()
	srv.ServeHTTP(pw, promReq)
	body := pw.Body.String()
	for _, want := range []string{
		// Runtime self-metrics are unconditional.
		"# TYPE schedsearch_goroutines gauge",
		"schedsearch_heap_alloc_bytes ",
		"schedsearch_gc_cycles_total ",
		// The group-commit journal (group 1) fsynced both submits.
		`schedsearch_journal_fsync_seconds_bucket{le="+Inf"} 2`,
		"schedsearch_journal_fsync_seconds_count 2",
		"schedsearch_journal_fsync_seconds_sum ",
		// One continued trace, one minted trace.
		`schedsearch_spans_total{span="admit"} 1`,
		`schedsearch_spans_total{span="submit"} 1`,
		`schedsearch_span_seconds_total{span="admit"} `,
		"schedsearch_spans_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom body missing %q", want)
		}
	}

	// An untraced server must not emit span series, and a journal-less
	// engine must not emit the fsync histogram.
	bare := newFixture(t, 8, policy.FCFSBackfill())
	pw = httptest.NewRecorder()
	bare.srv.ServeHTTP(pw, promReq)
	body = pw.Body.String()
	if strings.Contains(body, "schedsearch_spans_total") {
		t.Error("untraced exposition leaked span series")
	}
	if strings.Contains(body, "schedsearch_journal_fsync_seconds") {
		t.Error("journal-less exposition leaked the fsync histogram")
	}
	if !strings.Contains(body, "schedsearch_goroutines") {
		t.Error("runtime gauges should be unconditional")
	}
}

// TestDebugDecisionsEndpoint drives the decision flight recorder
// through GET /v1/debug/decisions: records appear after submissions,
// carry the deciding policy and the started job IDs, and the route is
// absent entirely on a server wired without a recorder.
func TestDebugDecisionsEndpoint(t *testing.T) {
	vc := engine.NewVirtualClock()
	flight := obs.NewFlightRecorder(16)
	e, err := engine.New(engine.Config{
		Capacity: 8, Policy: policy.FCFSBackfill(), Clock: vc, Flight: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(e, nil, WithFlight(flight))

	for i := 0; i < 2; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs",
			strings.NewReader(`{"nodes":2,"runtime_s":600}`)))
		if w.Code != http.StatusCreated {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body.String())
		}
		vc.RunDue() // fire the decision point
	}

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/debug/decisions", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/debug/decisions: %d", w.Code)
	}
	var resp DecisionsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decisions body: %v", err)
	}
	if resp.Total < 2 || len(resp.Decisions) < 2 {
		t.Fatalf("want >= 2 decisions, got total %d, %d held", resp.Total, len(resp.Decisions))
	}
	started := 0
	for _, d := range resp.Decisions {
		if d.Policy != "FCFS-backfill" {
			t.Errorf("decision policy %q", d.Policy)
		}
		started += len(d.Started)
	}
	if started != 2 {
		t.Errorf("decisions started %d jobs in total, want 2", started)
	}

	// Without WithFlight the route does not exist.
	bare := newFixture(t, 8, policy.FCFSBackfill())
	w = httptest.NewRecorder()
	bare.srv.ServeHTTP(w, httptest.NewRequest("GET", "/v1/debug/decisions", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("bare GET /v1/debug/decisions: %d, want 404", w.Code)
	}
}
