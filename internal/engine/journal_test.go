package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// journalInput is a small month for file-journal tests: enough jobs to
// exercise every event kind without making fsync loops slow.
func journalInput(t *testing.T) sim.Input {
	t.Helper()
	suite := workload.NewSuite(workload.Config{Seed: 23, JobScale: 0.02})
	in, _, err := suite.Input("6/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// runWithJournal drives a trace through an engine wired to a
// FileJournal and returns the engine (journal synced and closed).
func runWithJournal(t *testing.T, in sim.Input, path string, group, compactEvery int) *Engine {
	t.Helper()
	fj, err := OpenFileJournal(path, group)
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	e, err := New(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: vc,
		MeasureStart: in.MeasureStart, MeasureEnd: in.MeasureEnd,
		Journal: fj, CompactEvery: compactEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFileJournalRoundtrip: the on-disk journal decodes back to the
// exact event sequence the engine holds in memory, and a rebuild from
// the loaded checkpoint reproduces the records.
func TestFileJournalRoundtrip(t *testing.T) {
	in := journalInput(t)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	e := runWithJournal(t, in, path, 8, 0)

	base, events, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if base != nil {
		t.Fatal("uncompacted journal decoded a base")
	}
	mem := e.Checkpoint().Events
	if len(events) != len(mem) {
		t.Fatalf("loaded %d events, engine holds %d", len(events), len(mem))
	}
	for i := range events {
		if !reflect.DeepEqual(events[i], mem[i]) {
			t.Fatalf("event %d: loaded %+v, engine %+v", i, events[i], mem[i])
		}
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Rebuild(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: NewVirtualClock(),
		MeasureStart: in.MeasureStart, MeasureEnd: in.MeasureEnd,
	}, cp)
	if err != nil {
		t.Fatal(err)
	}
	diffRecords(t, e.Records(), re.Records())
}

// TestFileJournalCompactedRoundtrip: with auto-compaction on, the file
// holds a base line plus a bounded tail, and rebuilding from it still
// reproduces the full record set.
func TestFileJournalCompactedRoundtrip(t *testing.T) {
	in := journalInput(t)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	const every = 32
	e := runWithJournal(t, in, path, 8, every)

	base, events, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil {
		t.Fatal("compacted journal has no base line")
	}
	tail := e.Checkpoint().Events
	if len(events) != len(tail) {
		t.Fatalf("file tail %d events, engine tail %d", len(events), len(tail))
	}
	if len(events) > every+in.Capacity {
		t.Fatalf("tail %d events, want bounded near %d", len(events), every)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Rebuild(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: NewVirtualClock(),
		MeasureStart: in.MeasureStart, MeasureEnd: in.MeasureEnd,
	}, cp)
	if err != nil {
		t.Fatal(err)
	}
	diffRecords(t, e.Records(), re.Records())
	if err := oracle.CheckRecords(in.Capacity, in.Jobs, re.Records()); err != nil {
		t.Fatal(err)
	}
}

// TestFileJournalCrashRecovery simulates a daemon crash: half the
// month runs against a journal, the process "dies", a new engine loads
// the checkpoint from disk and the remaining jobs arrive. Every job
// must complete exactly once and the combined schedule must satisfy
// the oracle. (Bit-identity to an uninterrupted run is not asserted
// here: disk recovery conservatively schedules a decision on wake,
// which may legitimately reorder the queue; the in-memory differential
// in compact_test.go covers bit-identity.)
func TestFileJournalCrashRecovery(t *testing.T) {
	in := journalInput(t)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	half := len(in.Jobs) / 2
	tCrash := in.Jobs[half].Submit

	fj, err := OpenFileJournal(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	e1, err := New(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: vc, Journal: fj,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs[:half] {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e1.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.AdvanceTo(tCrash)
	if err := e1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e1.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Rebuild(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: vc,
	}, cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs[half:] {
		j := j
		vc.AfterFunc(j.Submit-vc.Now(), func() {
			if err := e2.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := e2.Err(); err != nil {
		t.Fatal(err)
	}
	recs := e2.Records()
	if len(recs) != len(in.Jobs) {
		t.Fatalf("%d records after recovery, want %d", len(recs), len(in.Jobs))
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if seen[r.Job.ID] {
			t.Fatalf("job %d completed twice", r.Job.ID)
		}
		seen[r.Job.ID] = true
	}
	if err := oracle.CheckRecords(in.Capacity, in.Jobs, recs); err != nil {
		t.Fatal(err)
	}
}

// TestFileJournalGroupCommit: with group=16, the journal coalesces
// commit boundaries into roughly appends/16 fsyncs instead of one per
// event.
func TestFileJournalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	fj, err := OpenFileJournal(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		ev := Event{Kind: EvSubmit, At: job.Time(i), Job: job.Job{ID: i + 1, Nodes: 1, Runtime: 60}}
		if err := fj.Append(ev); err != nil {
			t.Fatal(err)
		}
		if err := fj.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := fj.Stats()
	if st.Appends != n {
		t.Fatalf("appends %d, want %d", st.Appends, n)
	}
	if want := int64(n / 16); st.Syncs != want {
		t.Fatalf("syncs %d, want %d (group commit not coalescing)", st.Syncs, want)
	}
	if err := fj.Sync(); err != nil { // flush the partial group
		t.Fatal(err)
	}
	if st := fj.Stats(); st.Syncs != n/16+1 {
		t.Fatalf("syncs after explicit Sync %d, want %d", st.Syncs, n/16+1)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	_, events, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("loaded %d events, want %d", len(events), n)
	}
}

// TestLoadJournalTornTail: a torn final line (the crash wrote half a
// record) is tolerated; garbage in the middle of the file is not.
func TestLoadJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	fj, err := OpenFileJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := Event{Kind: EvSubmit, At: job.Time(i), Job: job.Job{ID: i + 1, Nodes: 1, Runtime: 60}}
		if err := fj.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn tail: append half a JSON object with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ev":{"k":1,"t":99`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, events, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("loaded %d events, want 3", len(events))
	}

	// Mid-file corruption: a broken line followed by a good one errors.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, []byte("\n"+`{"ev":{"k":1,"t":100,"job":{"ID":9,"Nodes":1,"Runtime":60}}}`+"\n")...)
	if err := os.WriteFile(path, raw, 0644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadJournal(path); err == nil {
		t.Fatal("mid-file corruption silently ignored")
	}
}

// TestRecoverCheckpointTruncatesTornTail reproduces the post-crash
// append hazard: a torn final line must be truncated before the
// journal is reopened O_APPEND, or the first post-recovery event
// merges onto the partial line and the *next* restart reads the merged
// garbage as mid-file corruption.
func TestRecoverCheckpointTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	fj, err := OpenFileJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := Event{Kind: EvSubmit, At: job.Time(i), Job: job.Job{ID: i + 1, Nodes: 1, Runtime: 60}}
		if err := fj.Append(ev); err != nil {
			t.Fatal(err)
		}
		if err := fj.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ev":{"k":1,"t":99`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cp, err := RecoverCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Events) != 3 {
		t.Fatalf("recovered %d events, want 3", len(cp.Events))
	}

	// The first fsync-acknowledged event after recovery must land on a
	// clean line boundary and survive the next load.
	fj2, err := OpenFileJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: EvSubmit, At: 100, Job: job.Job{ID: 4, Nodes: 1, Runtime: 60}}
	if err := fj2.Append(ev); err != nil {
		t.Fatal(err)
	}
	if err := fj2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := fj2.Close(); err != nil {
		t.Fatal(err)
	}
	_, events, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal unreadable after post-recovery append: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("loaded %d events after post-recovery append, want 4", len(events))
	}
	if events[3].Job.ID != 4 {
		t.Fatalf("post-recovery event holds job %d, want 4", events[3].Job.ID)
	}
}

// TestLoadJournalUnterminatedTail: a final line missing its newline was
// never fsync-acknowledged (a sync flushes the trailing newline before
// the fsync that acknowledges it), so it is dropped even when it
// decodes — keeping it would let the next O_APPEND write merge onto
// it.
func TestLoadJournalUnterminatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	fj, err := OpenFileJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: EvSubmit, At: 0, Job: job.Job{ID: 1, Nodes: 1, Runtime: 60}}
	if err := fj.Append(ev); err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the (decodable) line without its trailing newline.
	complete := int64(len(raw))
	if err := os.WriteFile(path, append(raw, raw[:len(raw)-1]...), 0644); err != nil {
		t.Fatal(err)
	}
	_, events, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("loaded %d events, want 1 (unterminated tail kept)", len(events))
	}
	if _, err := RecoverCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != complete {
		t.Fatalf("recovered journal is %d bytes, want %d (tail truncated)", st.Size(), complete)
	}
}

// TestFileJournalCompactRewritesFile: an explicit Compact rewrites the
// file to a base line (atomic rename), after which LoadCheckpoint sees
// the base and an empty tail.
func TestFileJournalCompactRewritesFile(t *testing.T) {
	in := journalInput(t)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	fj, err := OpenFileJournal(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	e, err := New(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: vc, Journal: fj,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	base, events, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil {
		t.Fatal("compacted file has no base")
	}
	if len(events) != 0 {
		t.Fatalf("compacted file has %d tail events, want 0", len(events))
	}
	if len(base.Done) != len(in.Jobs) {
		t.Fatalf("base holds %d done jobs, want %d", len(base.Done), len(in.Jobs))
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Rebuild(Config{
		Capacity: in.Capacity, Policy: policy.FCFSBackfill(), Clock: NewVirtualClock(),
	}, cp)
	if err != nil {
		t.Fatal(err)
	}
	diffRecords(t, e.Records(), re.Records())
}
