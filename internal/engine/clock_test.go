package engine

import (
	"testing"
	"time"

	"schedsearch/internal/job"
)

func TestVirtualClockOrdering(t *testing.T) {
	vc := NewVirtualClock()
	var got []int
	vc.AfterFunc(10, func() { got = append(got, 1) })
	vc.AfterFunc(5, func() { got = append(got, 0) })
	vc.AfterFunc(10, func() { got = append(got, 2) }) // same time: scheduling order
	vc.AfterFunc(10, func() {
		got = append(got, 3)
	})
	if n := vc.AdvanceTo(7); n != 1 {
		t.Fatalf("AdvanceTo(7) fired %d timers, want 1", n)
	}
	if vc.Now() != 7 {
		t.Fatalf("now %d, want 7", vc.Now())
	}
	vc.Run()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestVirtualClockNestedTimersFireSameInstant(t *testing.T) {
	vc := NewVirtualClock()
	var got []string
	vc.AfterFunc(5, func() {
		got = append(got, "a")
		vc.AfterFunc(0, func() { got = append(got, "a+") })
	})
	vc.AfterFunc(5, func() { got = append(got, "b") })
	vc.AdvanceTo(5)
	// The nested zero-delay timer fires after every previously
	// scheduled timer at the same instant.
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "a+" {
		t.Fatalf("order %v, want [a b a+]", got)
	}
}

func TestVirtualClockStop(t *testing.T) {
	vc := NewVirtualClock()
	fired := false
	tm := vc.AfterFunc(5, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
	vc.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if _, ok := vc.NextAt(); ok {
		t.Fatal("NextAt reports a pending timer after Stop+Run")
	}
}

func TestRealClockSpeedup(t *testing.T) {
	c := NewRealClock(1000) // 1 engine second per wall millisecond
	done := make(chan job.Time, 1)
	c.AfterFunc(20, func() { done <- c.Now() })
	select {
	case at := <-done:
		if at < 15 {
			t.Fatalf("timer fired at engine time %d, want ~20", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}
