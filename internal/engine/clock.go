package engine

import (
	"container/heap"
	"sync"
	"time"

	"schedsearch/internal/job"
)

// Clock is the engine's source of time and timers, in simulation
// seconds (job.Time). Two implementations exist: RealClock maps the
// timeline onto the wall clock (optionally sped up), VirtualClock is
// deterministic and steppable so the engine can be unit-tested and can
// replay traces faster than real time.
//
// Implementations must be goroutine-safe. Callbacks run without any
// clock lock held, so they may call Now and AfterFunc freely.
type Clock interface {
	// Now returns the current time on the engine timeline.
	Now() job.Time
	// AfterFunc arranges for f to run once d seconds of engine time
	// have elapsed (d <= 0 means as soon as possible). On a RealClock
	// f runs on its own goroutine; on a VirtualClock f runs inside the
	// driver's RunDue/AdvanceTo/Run call.
	AfterFunc(d job.Duration, f func()) Timer
}

// Timer is a pending AfterFunc callback. Stop cancels it and reports
// whether it was still pending.
type Timer interface {
	Stop() bool
}

// RealClock maps the engine timeline onto the wall clock: time zero is
// the moment the clock was created, and one engine second corresponds
// to 1/Speedup wall seconds.
type RealClock struct {
	origin  time.Time
	start   job.Time
	speedup float64
}

// NewRealClock returns a wall clock starting at engine time zero.
// speedup is engine seconds per wall second; values <= 0 mean 1 (real
// time). A speedup of 3600 replays an hour of engine time per wall
// second.
func NewRealClock(speedup float64) *RealClock {
	return NewRealClockAt(0, speedup)
}

// NewRealClockAt returns a wall clock whose timeline starts at `start`
// engine seconds instead of zero. A daemon rebuilding from a journal
// resumes its clock at the last committed timestamp, so replayed
// history stays in the past (a rebuilt engine whose clock restarted at
// zero would violate start-before-arrival on every recovered job).
func NewRealClockAt(start job.Time, speedup float64) *RealClock {
	if speedup <= 0 {
		speedup = 1
	}
	return &RealClock{origin: time.Now(), start: start, speedup: speedup}
}

// Now implements Clock.
func (c *RealClock) Now() job.Time {
	return c.start + job.Time(time.Since(c.origin).Seconds()*c.speedup)
}

// AfterFunc implements Clock via time.AfterFunc.
func (c *RealClock) AfterFunc(d job.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	wall := time.Duration(float64(d) / c.speedup * float64(time.Second))
	return realTimer{t: time.AfterFunc(wall, f)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// VirtualClock is a deterministic, steppable clock. Time only moves
// when the driver calls AdvanceTo, RunDue or Run; timers fire in
// (time, scheduling order) sequence inside those calls, on the
// driver's goroutine. AfterFunc and Stop may be called concurrently
// from any goroutine (timer callbacks typically schedule new timers),
// but only one goroutine may drive AdvanceTo/RunDue/Run at a time.
type VirtualClock struct {
	mu   sync.Mutex
	now  job.Time
	seq  int64
	heap vtimerHeap
}

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now implements Clock.
func (c *VirtualClock) Now() job.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock; the timer fires at now+d when the driver
// advances past it.
func (c *VirtualClock) AfterFunc(d job.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &vtimer{at: c.now + d, seq: c.seq, f: f, c: c}
	c.seq++
	heap.Push(&c.heap, t)
	return t
}

// NextAt returns the due time of the earliest pending timer.
func (c *VirtualClock) NextAt() (job.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.heap.Len() > 0 {
		if !c.heap.ts[0].stopped {
			return c.heap.ts[0].at, true
		}
		heap.Pop(&c.heap)
	}
	return 0, false
}

// popDue removes and returns the earliest live timer due at or before
// limit, advancing now to its due time.
func (c *VirtualClock) popDue(limit job.Time) *vtimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.heap.Len() > 0 {
		t := c.heap.ts[0]
		if t.stopped {
			heap.Pop(&c.heap)
			continue
		}
		if t.at > limit {
			return nil
		}
		heap.Pop(&c.heap)
		t.fired = true
		if t.at > c.now {
			c.now = t.at
		}
		return t
	}
	return nil
}

// RunDue fires every timer due at the current time, including timers
// they schedule, and returns how many fired.
func (c *VirtualClock) RunDue() int { return c.AdvanceTo(c.Now()) }

// AdvanceTo moves time forward to t, firing due timers in (time,
// scheduling order) along the way, and returns how many fired. Time
// ends at t even if no timer was due. Advancing backwards is a no-op.
func (c *VirtualClock) AdvanceTo(t job.Time) int {
	n := 0
	for {
		tm := c.popDue(t)
		if tm == nil {
			break
		}
		tm.f()
		n++
	}
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
	return n
}

// Run fires all pending timers (including newly scheduled ones) in
// order until none remain, and returns how many fired. Time ends at
// the last timer's due time.
func (c *VirtualClock) Run() int {
	n := 0
	for {
		tm := c.popDue(job.Time(1) << 62)
		if tm == nil {
			return n
		}
		tm.f()
		n++
	}
}

// vtimer is one pending virtual timer; stopped timers stay in the heap
// and are discarded lazily.
type vtimer struct {
	at      job.Time
	seq     int64
	f       func()
	stopped bool
	fired   bool
	c       *VirtualClock
	idx     int
}

// Stop implements Timer. A stopped timer stays in the heap and is
// discarded lazily when it reaches the top.
func (t *vtimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// vtimerHeap orders timers by (at, seq).
type vtimerHeap struct{ ts []*vtimer }

func (h *vtimerHeap) Len() int { return len(h.ts) }
func (h *vtimerHeap) Less(i, k int) bool {
	if h.ts[i].at != h.ts[k].at {
		return h.ts[i].at < h.ts[k].at
	}
	return h.ts[i].seq < h.ts[k].seq
}
func (h *vtimerHeap) Swap(i, k int) {
	h.ts[i], h.ts[k] = h.ts[k], h.ts[i]
	h.ts[i].idx, h.ts[k].idx = i, k
}
func (h *vtimerHeap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(h.ts)
	h.ts = append(h.ts, t)
}
func (h *vtimerHeap) Pop() any {
	last := len(h.ts) - 1
	t := h.ts[last]
	h.ts = h.ts[:last]
	return t
}
