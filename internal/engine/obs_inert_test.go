package engine

import (
	"bytes"
	"encoding/json"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/metasched"
	"schedsearch/internal/obs"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// replayInstrumented mirrors replayInput with the full observability
// stack attached: a decision flight recorder, a tracer whose contexts
// are minted and bound at submit (as schedd's replay front door does),
// and the oracle riding along. The returned engine must have committed
// the exact schedule the bare replay commits.
func replayInstrumented(t *testing.T, in sim.Input, pol sim.Policy,
	flight *obs.FlightRecorder, tr *obs.Tracer) *Engine {
	t.Helper()
	vc := NewVirtualClock()
	orc := oracle.New(in.Capacity)
	measured := func(id int) bool {
		if in.Measured == nil {
			return true
		}
		return in.Measured[id]
	}
	e, err := New(Config{
		Capacity:     in.Capacity,
		Policy:       pol,
		Clock:        vc,
		Estimator:    in.Estimator,
		UseRequested: in.UseRequested,
		Measured:     measured,
		MeasureStart: in.MeasureStart,
		MeasureEnd:   in.MeasureEnd,
		Observer:     orc,
		Flight:       flight,
		Tracer:       tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			tc := tr.Mint()
			tr.Bind(j.ID, tc)
			t0 := tr.Now()
			if err := e.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
				return
			}
			tr.Record("submit", tc, j.ID, 0, t0, tr.Now().Sub(t0))
		})
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := orc.Final(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return e
}

// TestObservabilityInert is the observability keystone at the engine
// layer: with the decision flight recorder and tracing both on, every
// suite month must commit a schedule bit-identical — starts, ends,
// node IDs, completion order, decision count, whole summary — to the
// bare engine's, while the instrumentation actually captures every
// decision and every job. Run under -race this also pins the capture
// paths as data-race free.
func TestObservabilityInert(t *testing.T) {
	newPolicy := func() sim.Policy {
		sch := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 64)
		sch.WarmStart = true
		return sch
	}
	runObsInert(t, workload.MonthLabels(), newPolicy, "DDS/lxf/dynB", false)
}

// TestObservabilityInertMeta repeats the inertness keystone with a
// meta-scheduling portfolio deciding: instrumentation must stay
// bit-inert while every flight record now also carries the committed
// member's name and the decision's regret estimate.
func TestObservabilityInertMeta(t *testing.T) {
	newPolicy := func() sim.Policy {
		m, err := metasched.New([]sim.Policy{
			core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 64),
			core.New(core.LDS, core.HeuristicFCFS, core.DynamicBound(), 64),
		}, metasched.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	runObsInert(t, []string{"7/03", "1/04"}, newPolicy, "meta(DDS/lxf/dynB,LDS/fcfs/dynB)", true)
}

func runObsInert(t *testing.T, months []string, newPolicy func() sim.Policy, wantPolicy string, wantMeta bool) {
	suite := workload.NewSuite(workload.Config{Seed: 11, JobScale: 0.025})
	for _, month := range months {
		month := month
		t.Run(month, func(t *testing.T) {
			in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: 0.9})
			if err != nil {
				t.Fatal(err)
			}

			bare := replayInput(t, in, newPolicy())
			flight := obs.NewFlightRecorder(256)
			tr := obs.NewTracer(obs.TracerOptions{Seed: 1})
			inst := replayInstrumented(t, in, newPolicy(), flight, tr)

			bareRecs, instRecs := bare.Records(), inst.Records()
			if len(bareRecs) != len(instRecs) {
				t.Fatalf("bare completed %d jobs, instrumented %d", len(bareRecs), len(instRecs))
			}
			for i := range bareRecs {
				if bareRecs[i].Job.ID != instRecs[i].Job.ID {
					t.Fatalf("completion order diverges at %d: bare job %d, instrumented job %d",
						i, bareRecs[i].Job.ID, instRecs[i].Job.ID)
				}
				if recordKey(bareRecs[i]) != recordKey(instRecs[i]) {
					t.Fatalf("job %d: bare %s, instrumented %s",
						bareRecs[i].Job.ID, recordKey(bareRecs[i]), recordKey(instRecs[i]))
				}
			}
			bareM, instM := bare.Metrics(), inst.Metrics()
			if bareM.Engine.Decisions != instM.Engine.Decisions {
				t.Errorf("bare made %d decisions, instrumented %d",
					bareM.Engine.Decisions, instM.Engine.Decisions)
			}
			if bareM.Summary != instM.Summary {
				t.Errorf("summaries diverge:\nbare         %+v\ninstrumented %+v",
					bareM.Summary, instM.Summary)
			}

			// The instrumentation must have been live, not vacuous.
			if flight.Total() == 0 {
				t.Fatal("flight recorder captured no decisions")
			}
			for _, rec := range flight.Snapshot() {
				if rec.Policy != wantPolicy {
					t.Fatalf("flight record policy %q, want %q", rec.Policy, wantPolicy)
				}
				if wantMeta && rec.ChosenPolicy == "" {
					t.Fatalf("meta flight record at t=%d has no chosen policy", rec.NowS)
				}
				if !wantMeta && rec.ChosenPolicy != "" {
					t.Fatalf("fixed-policy flight record claims chosen policy %q", rec.ChosenPolicy)
				}
			}
			covered, total := tr.JobCoverage("submit", "decide")
			if total != len(in.Jobs) {
				t.Errorf("tracer saw %d jobs, workload has %d", total, len(in.Jobs))
			}
			if covered != total {
				t.Errorf("submit+decide span coverage %d/%d jobs", covered, total)
			}
			var buf bytes.Buffer
			if err := tr.WriteTrace(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("trace export is not valid trace-event JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("trace export is empty")
			}
		})
	}
}
