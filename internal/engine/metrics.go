package engine

import (
	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/obs"
	"schedsearch/internal/sim"
)

// Counters are the engine's scheduling-effort counters.
type Counters struct {
	// Decisions counts decision points (policy consultations with a
	// non-empty queue).
	Decisions int64 `json:"decisions"`
	// PolicyPanics counts recovered policy panics; each one fell back
	// to a strict-FCFS decision (see Config.Policy).
	PolicyPanics int64 `json:"policy_panics,omitempty"`
	// SearchNodes/SearchLeaves/BudgetHits mirror the search policy's
	// effort stats (zero for backfill policies).
	SearchNodes  int64 `json:"search_nodes"`
	SearchLeaves int64 `json:"search_leaves"`
	BudgetHits   int64 `json:"budget_hits"`
	// SearchWallMs is the wall-clock time spent inside the search across
	// all decisions; SearchSpeedup is the effective search parallelism
	// (worker busy time over wall time, 1.0 for sequential search).
	// Both are zero for backfill policies.
	SearchWallMs  float64 `json:"search_wall_ms"`
	SearchSpeedup float64 `json:"search_speedup"`
	// AvgDecideMs and MaxDecideMs are wall-clock decision latencies in
	// milliseconds (always wall time, even on a virtual clock).
	AvgDecideMs float64 `json:"avg_decide_ms"`
	MaxDecideMs float64 `json:"max_decide_ms"`
	// Warm-start / adaptive-budget stats, emitted only when the search
	// policy runs with WarmStart or an SLO budget (cold fixed-budget runs
	// keep their serialized form unchanged). SearchNodesToBest is the
	// cumulative node count at each decision's last incumbent
	// improvement; WarmDecisions/WarmSeedHeld count seeded decisions and
	// those where no enumerated schedule beat the carried seed;
	// SearchEffLimit is the mean effective node budget per decision.
	SearchNodesToBest int64   `json:"search_nodes_to_best,omitempty"`
	WarmDecisions     int64   `json:"warm_decisions,omitempty"`
	WarmSeedHeld      int64   `json:"warm_seed_held,omitempty"`
	SearchEffLimit    float64 `json:"search_eff_limit,omitempty"`
	// JournalTail is the in-memory event-tail length since the last
	// compaction; Compactions counts journal compactions. When a
	// persistent sink reports stats, JournalAppends and JournalSyncs
	// meter group-commit effectiveness (events per fsync is their
	// ratio).
	JournalTail    int64 `json:"journal_tail,omitempty"`
	Compactions    int64 `json:"journal_compactions,omitempty"`
	JournalAppends int64 `json:"journal_appends,omitempty"`
	JournalSyncs   int64 `json:"journal_syncs,omitempty"`
	// JournalFsync is the flush+fsync latency distribution of the
	// journal's group-commit boundaries, present only when the sink
	// reports it (FileJournal does).
	JournalFsync *obs.HistSnapshot `json:"journal_fsync,omitempty"`
}

// JobCounts breaks the admitted jobs down by state.
type JobCounts struct {
	Waiting int `json:"waiting"`
	Running int `json:"running"`
	Done    int `json:"done"`
}

// Metrics is the engine's running report: the paper's Summary measures
// over the completions so far plus serving counters. It is also the
// schema `schedsim -json` emits, so offline runs and the daemon's
// GET /v1/metrics are directly comparable.
type Metrics struct {
	Policy   string    `json:"policy"`
	NowS     job.Time  `json:"now_s"`
	Capacity int       `json:"capacity"`
	Draining bool      `json:"draining"`
	Jobs     JobCounts `json:"jobs"`
	// Summary covers completed measured jobs only; utilization and
	// queue length integrate from engine start to now.
	Summary metrics.Summary `json:"summary"`
	Engine  Counters        `json:"engine"`
	Error   string          `json:"error,omitempty"`
}

// Metrics computes the engine's running metrics.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	measureEnd := now
	if e.explicitWindow {
		measureEnd = e.intEnd
	}
	res := &sim.Result{
		Policy:       e.cfg.Policy.Name(),
		Records:      e.records,
		Decisions:    int(e.decisions),
		Capacity:     e.l.Capacity(),
		MeasureStart: e.intStart,
		MeasureEnd:   measureEnd,
	}
	// Integrate the queue-length tail since the last change, clamped to
	// the measurement window like noteQueueChange (without mutating).
	qInt := e.qlenInt
	lo, hi := e.qlenLast, now
	if lo < e.intStart {
		lo = e.intStart
	}
	if hi > e.intEnd {
		hi = e.intEnd
	}
	if hi > lo {
		qInt += float64(hi-lo) * float64(e.l.QueueLen())
	}
	if window := float64(measureEnd - res.MeasureStart); window > 0 {
		res.AvgQueueLen = qInt / window
	}
	res.MaxQueueLen = e.maxQ

	m := Metrics{
		Policy:   res.Policy,
		NowS:     now,
		Capacity: res.Capacity,
		Draining: e.draining,
		Jobs: JobCounts{
			Waiting: e.l.QueueLen(),
			Running: e.l.RunningLen(),
			Done:    len(e.records),
		},
		Summary: metrics.Summarize(res),
		Engine:  e.countersLocked(),
	}
	if e.fatal != nil {
		m.Error = e.fatal.Error()
	}
	return m
}

func (e *Engine) countersLocked() Counters {
	c := Counters{Decisions: e.decisions, PolicyPanics: e.policyPanics}
	if e.decisions > 0 {
		c.AvgDecideMs = float64(e.decideDur.Microseconds()) / 1000 / float64(e.decisions)
	}
	c.MaxDecideMs = float64(e.decideMax.Microseconds()) / 1000
	c.JournalTail = int64(len(e.journal))
	c.Compactions = e.compactions
	if sr, ok := e.cfg.Journal.(StatsReporter); ok {
		st := sr.Stats()
		c.JournalAppends = st.Appends
		c.JournalSyncs = st.Syncs
	}
	if lr, ok := e.cfg.Journal.(SyncLatencyReporter); ok {
		if snap := lr.SyncLatency(); snap.Count > 0 {
			c.JournalFsync = &snap
		}
	}
	if sch, ok := e.cfg.Policy.(*core.Scheduler); ok {
		c.fillSearch(sch)
	}
	return c
}

// fillSearch copies a search policy's effort stats into the counters.
// The warm/SLO fields are populated only when those modes are active so
// cold fixed-budget runs serialize exactly as before.
func (c *Counters) fillSearch(sch *core.Scheduler) {
	st := sch.SearchStats
	c.SearchNodes = st.Nodes
	c.SearchLeaves = st.Leaves
	c.BudgetHits = int64(st.BudgetHits)
	c.SearchWallMs = float64(st.WallNs) / 1e6
	c.SearchSpeedup = st.Speedup()
	if sch.WarmStart {
		c.SearchNodesToBest = st.NodesToBest
		c.WarmDecisions = int64(st.WarmDecisions)
		c.WarmSeedHeld = int64(st.WarmSeedHeld)
	}
	if sch.SLO > 0 && st.Decisions > 0 {
		c.SearchEffLimit = float64(st.EffectiveLimitSum) / float64(st.Decisions)
	}
}

// ShardStatus is one shard's slice of a federation report.
type ShardStatus struct {
	// Shard is the shard index; NodeBase is the first global node ID of
	// the shard's partition (its local node IDs map to
	// [NodeBase, NodeBase+Capacity)).
	Shard    int `json:"shard"`
	Capacity int `json:"capacity"`
	NodeBase int `json:"node_base"`
	// Util is the shard's utilized load over its own measurement
	// window (its Summary.UtilizedLoad).
	Util float64   `json:"util"`
	Jobs JobCounts `json:"jobs"`
	// Metrics is the shard engine's full running report.
	Metrics Metrics `json:"metrics"`
}

// FederationMetrics is the aggregated report of a sharded federation
// (internal/federation): per-shard state plus the router's own
// counters. The server's GET /v1/federation serves it.
type FederationMetrics struct {
	Shards    int    `json:"shards"`
	Placement string `json:"placement"`
	// Migrations counts queued jobs moved between shards by rebalance
	// passes; RebalancePasses counts the passes themselves.
	Migrations      int64 `json:"migrations"`
	RebalancePasses int64 `json:"rebalance_passes"`
	// Steals counts queued jobs pulled onto idle shards by the
	// work-stealing gossip pass; GossipPasses counts those passes.
	// Reroutes counts submissions re-placed after an unreachable
	// shard refused delivery (remote federations only).
	Steals       int64 `json:"steals,omitempty"`
	GossipPasses int64 `json:"gossip_passes,omitempty"`
	Reroutes     int64 `json:"reroutes,omitempty"`
	// RoutingDecisions and RoutingNs meter the router's placement cost:
	// calls to the placement policy and total wall time spent choosing
	// a shard (load collection included).
	RoutingDecisions int64 `json:"routing_decisions"`
	RoutingNs        int64 `json:"routing_ns"`
	// PerShardUtil is each shard's utilized load, indexed by shard.
	PerShardUtil []float64     `json:"per_shard_util"`
	PerShard     []ShardStatus `json:"per_shard"`
	// Global is the whole-machine view in the ordinary metrics schema
	// (the same report a federated GET /v1/metrics serves).
	Global Metrics `json:"global"`
}

// ShardHealth is one shard's reachability as seen from the federation
// router. For in-process shards Healthy mirrors Err() == nil; for
// remote shards it reflects the last wire interaction (a shard whose
// last call failed — connection refused, timeout, dropped response —
// is unhealthy until a call succeeds again). The server's
// GET /v1/readyz reports the per-shard breakdown and answers 503 while
// any shard is unhealthy.
type ShardHealth struct {
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
}

// AggregateShards fills the per-shard portion of a FederationMetrics
// from the shards' own metrics and the partition geometry; the caller
// (the federation router) adds its routing counters and the global
// view.
func AggregateShards(per []Metrics, caps, bases []int) FederationMetrics {
	fm := FederationMetrics{Shards: len(per)}
	for i, m := range per {
		fm.PerShardUtil = append(fm.PerShardUtil, m.Summary.UtilizedLoad)
		fm.PerShard = append(fm.PerShard, ShardStatus{
			Shard:    i,
			Capacity: caps[i],
			NodeBase: bases[i],
			Util:     m.Summary.UtilizedLoad,
			Jobs:     m.Jobs,
			Metrics:  m,
		})
	}
	return fm
}

// OfflineMetrics packages an offline simulation result in the same
// schema the daemon's /v1/metrics endpoint serves (`schedsim -json`
// uses it; the engine counters carry the simulator's decision count and
// the policy's search stats).
func OfflineMetrics(res *sim.Result, sum metrics.Summary, pol sim.Policy) Metrics {
	m := Metrics{
		Policy:   res.Policy,
		NowS:     res.MeasureEnd,
		Capacity: res.Capacity,
		Jobs:     JobCounts{Done: len(res.Records)},
		Summary:  sum,
		Engine:   Counters{Decisions: int64(res.Decisions)},
	}
	if sch, ok := pol.(*core.Scheduler); ok {
		m.Engine.fillSearch(sch)
	}
	return m
}
