package engine

import (
	"sync"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/predict"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// crashReplay replays a trace through an engine that crashes once at
// tCrash: a checkpoint is taken from the dying incarnation, a fresh
// engine (fresh policy/estimator instances, same clock) is rebuilt
// from it, and the remaining jobs flow to the new incarnation. The
// compaction mode decides what the checkpoint looks like:
//
//	"none"     full event journal (the pre-existing rebuild path)
//	"auto"     CompactEvery folds the journal as it grows, so the
//	           checkpoint is a base plus whatever tail accrued since
//	"explicit" Compact() fires right before the crash (empty tail)
//
// The returned engine is the surviving incarnation after the trace
// fully drains.
func crashReplay(t *testing.T, in sim.Input, newPol func() sim.Policy, newEst func() sim.Estimator, tCrash job.Time, mode string) *Engine {
	t.Helper()
	vc := NewVirtualClock()
	mkCfg := func() Config {
		cfg := Config{
			Capacity:     in.Capacity,
			Policy:       newPol(),
			Clock:        vc,
			UseRequested: in.UseRequested,
			MeasureStart: in.MeasureStart,
			MeasureEnd:   in.MeasureEnd,
		}
		if in.Measured != nil {
			cfg.Measured = func(id int) bool { return in.Measured[id] }
		}
		if newEst != nil {
			cfg.Estimator = newEst()
		}
		if mode == "auto" {
			cfg.CompactEvery = 48
		}
		return cfg
	}
	var mu sync.Mutex
	cur, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	engine := func() *Engine {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := engine().SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.AfterFunc(tCrash, func() {
		old := engine()
		if mode == "explicit" {
			if err := old.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
		cp := old.Checkpoint()
		if mode != "none" && cp.Base == nil {
			t.Errorf("mode %s: checkpoint has no base at t=%d", mode, tCrash)
		}
		ne, err := Rebuild(mkCfg(), cp)
		if err != nil {
			t.Errorf("rebuild at t=%d: %v", tCrash, err)
			return
		}
		mu.Lock()
		cur = ne
		mu.Unlock()
	})
	vc.Run()
	e := engine()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCompactedRebuildMatchesFullJournal is the compaction keystone:
// over every suite month, an engine that crashes mid-month and is
// rebuilt from a compacted checkpoint (base + tail) commits the
// bit-identical schedule — starts, ends, concrete node IDs, completion
// order, running Summary — as the uninterrupted engine and as a
// rebuild from the full, uncompacted journal.
func TestCompactedRebuildMatchesFullJournal(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 17, JobScale: 0.02})
	newPol := func() sim.Policy { return policy.FCFSBackfill() }
	for _, month := range workload.MonthLabels() {
		month := month
		t.Run(month, func(t *testing.T) {
			t.Parallel()
			in, _, err := suite.Input(month, workload.SimOptions{})
			if err != nil {
				t.Fatal(err)
			}
			base := replayInput(t, in, newPol())
			baseSum := base.Metrics().Summary
			tCrash := in.Jobs[len(in.Jobs)/2].Submit + 1
			for _, mode := range []string{"none", "auto", "explicit"} {
				e := crashReplay(t, in, newPol, nil, tCrash, mode)
				diffRecords(t, base.Records(), e.Records())
				if sum := e.Metrics().Summary; sum != baseSum {
					t.Errorf("mode %s: summary %+v, uninterrupted %+v", mode, sum, baseSum)
				}
				// Compacted rebuilds cannot carry a live oracle (the base
				// replays no events); the offline sweep is the verdict.
				if err := oracle.CheckRecords(in.Capacity, in.Jobs, e.Records()); err != nil {
					t.Errorf("mode %s: oracle: %v", mode, err)
				}
			}
		})
	}
}

// TestCompactedRebuildWithSearchAndEstimator repeats the keystone on
// one month with a discrepancy-search policy and a per-user history
// estimator: compaction must reconstruct estimator state (completions
// re-observed in order) and hand the search policy byte-identical
// snapshots, or the schedules diverge.
func TestCompactedRebuildWithSearchAndEstimator(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 17, JobScale: 0.02})
	cases := []struct {
		name string
		pol  func() sim.Policy
		est  func() sim.Estimator
		opt  workload.SimOptions
	}{
		{name: "DDS-lxf-dynB", pol: func() sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 150)
		}},
		{name: "LDS-fcfs-estimator", pol: func() sim.Policy {
			return core.New(core.LDS, core.HeuristicFCFS, core.FixedBound(50*job.Hour), 150)
		}, est: func() sim.Estimator { return predict.NewUserHistory() }},
		{name: "FCFS-requested", pol: func() sim.Policy { return policy.FCFSBackfill() },
			opt: workload.SimOptions{UseRequested: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			in, _, err := suite.Input("7/03", tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if tc.est != nil {
				in.Estimator = tc.est()
			}
			base := replayInput(t, in, tc.pol())
			tCrash := in.Jobs[len(in.Jobs)/2].Submit + 1
			for _, mode := range []string{"auto", "explicit"} {
				e := crashReplay(t, in, tc.pol, tc.est, tCrash, mode)
				diffRecords(t, base.Records(), e.Records())
				if want, got := base.Metrics().Summary, e.Metrics().Summary; got != want {
					t.Errorf("mode %s: summary %+v, uninterrupted %+v", mode, got, want)
				}
			}
		})
	}
}

// TestCompactionDoesNotDisturbLiveEngine: auto-compaction folds the
// journal while the engine keeps scheduling; the schedule and summary
// must be untouched, the tail must stay bounded, and a final
// checkpoint must rebuild into the same state.
func TestCompactionDoesNotDisturbLiveEngine(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 17, JobScale: 0.02})
	in, _, err := suite.Input("9/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newPol := func() sim.Policy { return policy.FCFSBackfill() }
	base := replayInput(t, in, newPol())

	vc := NewVirtualClock()
	const every = 64
	mkCfg := func(compactEvery int) Config {
		cfg := Config{
			Capacity: in.Capacity, Policy: newPol(), Clock: vc,
			MeasureStart: in.MeasureStart, MeasureEnd: in.MeasureEnd,
			CompactEvery: compactEvery,
		}
		if in.Measured != nil {
			cfg.Measured = func(id int) bool { return in.Measured[id] }
		}
		return cfg
	}
	e, err := New(mkCfg(every))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	diffRecords(t, base.Records(), e.Records())
	m := e.Metrics()
	if m.Engine.Compactions == 0 {
		t.Fatal("no compactions despite CompactEvery")
	}
	// The tail resets at every compaction boundary, so it can only hold
	// the events committed since (one boundary may append a batch of
	// events before the next commit check — allow one batch of slack).
	if m.Engine.JournalTail > every+int64(in.Capacity) {
		t.Fatalf("journal tail %d, want bounded near %d", m.Engine.JournalTail, every)
	}
	if want := metrics.Summarize(&sim.Result{
		Policy: "FCFS-backfill", Records: base.Records(), Capacity: in.Capacity,
		MeasureStart: in.MeasureStart, MeasureEnd: in.MeasureEnd,
	}); m.Summary.Jobs != want.Jobs {
		t.Fatalf("summary jobs %d, want %d", m.Summary.Jobs, want.Jobs)
	}

	// A rebuild from the compacted final checkpoint reproduces the
	// records exactly.
	re, err := Rebuild(mkCfg(0), e.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	diffRecords(t, e.Records(), re.Records())
}
