package engine

import (
	"fmt"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Base is the folded prefix of a compacted checkpoint: the complete
// committed state of the engine at the compaction instant, captured so
// the event tail can be truncated. Rebuild restores a base directly —
// completed jobs into the records, running jobs onto their exact
// recorded nodes (allocation is lowest-free-first, a pure function of
// the allocated set, so the tail replays onto identical allocations),
// waiting jobs in queue order — and then replays the tail as usual.
// The queue-length integral and max-queue statistic ride along so the
// running Summary stays bit-identical with a full-journal replay.
type Base struct {
	// At is the compaction instant.
	At job.Time `json:"at"`
	// NextID is the engine's next auto-assigned job ID.
	NextID int `json:"next_id"`
	// Done holds the completion records so far, in completion order
	// (the estimator re-observes them in this order on rebuild).
	Done []BaseRecord `json:"done,omitempty"`
	// Running holds the running set in ledger slot order — the order
	// policies see in snapshots — with concrete node assignments.
	Running []BaseRunning `json:"running,omitempty"`
	// Waiting holds the queue in arrival order; Estimate 0 means the
	// job had not been estimated yet.
	Waiting []BaseWaiting `json:"waiting,omitempty"`
	// QlenInt, QlenLast and MaxQ carry the queue-length integral for
	// metrics continuity.
	QlenInt  float64  `json:"qlen_int"`
	QlenLast job.Time `json:"qlen_last"`
	MaxQ     int      `json:"max_q"`
}

// BaseRecord is one completed job in a Base.
type BaseRecord struct {
	Job     job.Job  `json:"job"`
	Start   job.Time `json:"start"`
	End     job.Time `json:"end"`
	NodeIDs []int    `json:"nodes,omitempty"`
}

// BaseRunning is one running job in a Base.
type BaseRunning struct {
	Job          job.Job  `json:"job"`
	Start        job.Time `json:"start"`
	PredictedEnd job.Time `json:"pend"`
	NodeIDs      []int    `json:"nodes"`
}

// BaseWaiting is one queued job in a Base.
type BaseWaiting struct {
	Job      job.Job      `json:"job"`
	Estimate job.Duration `json:"est,omitempty"`
}

// Compact folds the committed event journal into a Base snapshot and
// truncates the in-memory tail (and the persistent journal, when a
// sink is configured), bounding Rebuild cost by the live state instead
// of the full history. It can be taken at any time; the engine also
// compacts itself automatically when Config.CompactEvery is set.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactLocked()
}

func (e *Engine) compactLocked() error {
	if e.fatal != nil {
		return e.fatal
	}
	base := e.captureBaseLocked()
	if e.cfg.Journal != nil {
		if err := e.cfg.Journal.Compact(base); err != nil {
			e.setFatal(fmt.Errorf("engine: journal compact: %w", err))
			return e.fatal
		}
	}
	e.base = &base
	e.journal = e.journal[:0]
	e.compactions++
	return nil
}

// captureBaseLocked snapshots the committed state. The running set is
// captured in ledger slot order and the queue in arrival order so a
// restore reproduces the exact layout policies observe.
func (e *Engine) captureBaseLocked() Base {
	b := Base{
		At:       e.clock.Now(),
		NextID:   e.nextID,
		QlenInt:  e.qlenInt,
		QlenLast: e.qlenLast,
		MaxQ:     e.maxQ,
	}
	for _, r := range e.records {
		b.Done = append(b.Done, BaseRecord{Job: r.Job, Start: r.Start, End: r.End, NodeIDs: r.NodeIDs})
	}
	for _, rs := range e.l.RunningStates() {
		b.Running = append(b.Running, BaseRunning{
			Job: rs.Job, Start: rs.Start, PredictedEnd: rs.PredictedEnd, NodeIDs: rs.NodeIDs,
		})
	}
	snap := e.l.Snapshot(b.At)
	for _, w := range snap.Queue {
		b.Waiting = append(b.Waiting, BaseWaiting{Job: w.Job, Estimate: w.Estimate})
	}
	return b
}

// restoreBaseLocked rebuilds the engine's committed state from a base
// snapshot. It runs with the ledger observer detached: a base is
// already-observed history, and replaying it through an Observer would
// violate the oracle's monotonicity and conservation checks (see
// Rebuild). Compacted rebuilds are verified offline with
// oracle.CheckRecords instead.
func (e *Engine) restoreBaseLocked(b Base) error {
	if b.NextID > e.nextID {
		e.nextID = b.NextID
	}
	note := func(id int) error {
		if _, dup := e.jobs[id]; dup {
			return fmt.Errorf("engine: rebuild: base: job %d appears twice", id)
		}
		if id >= e.nextID {
			e.nextID = id + 1
		}
		return nil
	}
	for _, r := range b.Done {
		if err := note(r.Job.ID); err != nil {
			return err
		}
		measured := e.cfg.Measured == nil || e.cfg.Measured(r.Job.ID)
		e.records = append(e.records, sim.Record{
			Job: r.Job, Start: r.Start, End: r.End, NodeIDs: r.NodeIDs, Measured: measured,
		})
		e.jobs[r.Job.ID] = &JobStatus{
			Job: r.Job, State: StateDone, Start: r.Start, End: r.End, NodeIDs: r.NodeIDs,
		}
		if est := e.cfg.Estimator; est != nil {
			est.Observe(r.Job)
		}
	}
	for _, r := range b.Running {
		if err := note(r.Job.ID); err != nil {
			return err
		}
		if err := r.Job.Validate(e.l.Capacity()); err != nil {
			return fmt.Errorf("engine: rebuild: base: %w", err)
		}
		if err := e.l.Place(r.Job, r.Start, r.PredictedEnd, r.NodeIDs); err != nil {
			return fmt.Errorf("engine: rebuild: base: %w", err)
		}
		e.jobs[r.Job.ID] = &JobStatus{
			Job: r.Job, State: StateRunning, Start: r.Start,
			Estimate: r.PredictedEnd - r.Start,
			NodeIDs:  append([]int(nil), r.NodeIDs...),
		}
	}
	for _, w := range b.Waiting {
		if err := note(w.Job.ID); err != nil {
			return err
		}
		if err := w.Job.Validate(e.l.Capacity()); err != nil {
			return fmt.Errorf("engine: rebuild: base: %w", err)
		}
		e.l.Enqueue(w.Job, w.Estimate)
		e.jobs[w.Job.ID] = &JobStatus{Job: w.Job, State: StateWaiting, Estimate: w.Estimate}
	}
	e.qlenInt = b.QlenInt
	e.qlenLast = b.QlenLast
	e.maxQ = b.MaxQ
	return nil
}
