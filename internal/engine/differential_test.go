package engine

import (
	"fmt"
	"sync"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/predict"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// replayInput feeds a simulator input through an online engine on a
// VirtualClock: every job is delivered by a clock timer at its submit
// time, then the clock runs until the engine is idle. The correctness
// oracle rides along on every replay.
func replayInput(t *testing.T, in sim.Input, pol sim.Policy) *Engine {
	t.Helper()
	vc := NewVirtualClock()
	orc := oracle.New(in.Capacity)
	measured := func(id int) bool {
		if in.Measured == nil {
			return true
		}
		return in.Measured[id]
	}
	e, err := New(Config{
		Capacity:     in.Capacity,
		Policy:       pol,
		Clock:        vc,
		Estimator:    in.Estimator,
		UseRequested: in.UseRequested,
		Measured:     measured,
		MeasureStart: in.MeasureStart,
		MeasureEnd:   in.MeasureEnd,
		Observer:     orc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := orc.Final(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return e
}

// recordKey is everything a schedule determines about one job.
func recordKey(r sim.Record) string {
	return fmt.Sprintf("start=%d end=%d nodes=%v measured=%v", r.Start, r.End, r.NodeIDs, r.Measured)
}

func diffRecords(t *testing.T, simRecs, engRecs []sim.Record) {
	t.Helper()
	if len(simRecs) != len(engRecs) {
		t.Fatalf("simulator completed %d jobs, engine %d", len(simRecs), len(engRecs))
	}
	simBy := make(map[int]sim.Record, len(simRecs))
	for _, r := range simRecs {
		simBy[r.Job.ID] = r
	}
	mismatches := 0
	for i, r := range engRecs {
		want, ok := simBy[r.Job.ID]
		if !ok {
			t.Fatalf("engine completed job %d the simulator never saw", r.Job.ID)
		}
		if recordKey(r) != recordKey(want) {
			t.Errorf("job %d: engine %s, simulator %s", r.Job.ID, recordKey(r), recordKey(want))
			if mismatches++; mismatches > 5 {
				t.Fatal("too many mismatches")
			}
		}
		// Completion order must match too (same event ordering).
		if simRecs[i].Job.ID != r.Job.ID {
			t.Fatalf("completion order diverges at %d: engine job %d, simulator job %d",
				i, r.Job.ID, simRecs[i].Job.ID)
		}
	}
}

// TestEngineReplayMatchesSimulator replays generated monthly traces
// through the online engine and requires the schedule — starts, ends,
// concrete node IDs, completion order, decision count — to be identical
// to the offline simulator's, for backfill and search policies across
// estimate modes.
func TestEngineReplayMatchesSimulator(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 3, JobScale: 0.05})
	cases := []struct {
		name string
		pol  func() sim.Policy
		opt  workload.SimOptions
		est  func() sim.Estimator
	}{
		{name: "FCFS-backfill", pol: func() sim.Policy { return policy.FCFSBackfill() }},
		{name: "LXF-backfill-high-load", pol: func() sim.Policy { return policy.LXFBackfill() },
			opt: workload.SimOptions{TargetLoad: 0.9}},
		{name: "DDS-lxf-dynB", pol: func() sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 200)
		}},
		{name: "DDS-lxf-dynB-requested", pol: func() sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 200)
		}, opt: workload.SimOptions{UseRequested: true}},
		{name: "LDS-fcfs-50h-estimator", pol: func() sim.Policy {
			return core.New(core.LDS, core.HeuristicFCFS, core.FixedBound(50*job.Hour), 200)
		}, est: func() sim.Estimator { return predict.NewUserHistory() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, _, err := suite.Input("7/03", tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if tc.est != nil {
				in.Estimator = tc.est()
			}
			simOrc := oracle.New(in.Capacity)
			in.Observer = simOrc
			res, err := sim.Run(in, tc.pol())
			if err != nil {
				t.Fatal(err)
			}
			if err := simOrc.Final(); err != nil {
				t.Fatalf("simulator oracle: %v", err)
			}
			in.Observer = nil

			engIn := in
			if tc.est != nil {
				engIn.Estimator = tc.est() // fresh history for the engine run
			}
			e := replayInput(t, engIn, tc.pol())
			diffRecords(t, res.Records, e.Records())
			m := e.Metrics()
			if m.Engine.Decisions != int64(res.Decisions) {
				t.Errorf("engine made %d decisions, simulator %d", m.Engine.Decisions, res.Decisions)
			}
			// With the input's measurement window the whole summary —
			// including queue-length and utilization integrals — must
			// agree with the offline run.
			if want := metrics.Summarize(res); m.Summary != want {
				t.Errorf("engine summary %+v\nsimulator summary %+v", m.Summary, want)
			}
		})
	}
}

// TestEngineConcurrentSubmitMatchesSimulator hammers the engine with
// waves of concurrent submissions from many goroutines (run this under
// -race), then checks the resulting schedule equals the offline
// simulator's on the equivalent trace: the jobs in engine arrival
// order, submitted at the same instants.
func TestEngineConcurrentSubmitMatchesSimulator(t *testing.T) {
	const (
		capacity  = 64
		waves     = 6
		workers   = 8
		perWorker = 5
	)
	newPolicy := func() sim.Policy {
		return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 150)
	}
	vc := NewVirtualClock()
	e, err := New(Config{Capacity: capacity, Policy: newPolicy(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < perWorker; k++ {
					spec := job.Job{
						Nodes:   1 + (g*7+k*3)%32,
						Runtime: job.Duration(60 + (g*131+k*977+w*53)%7200),
						User:    g,
					}
					spec.Request = spec.Runtime + job.Duration((k%5)*600)
					if _, err := e.Submit(spec); err != nil {
						t.Error(err)
					}
				}
			}(g)
		}
		wg.Wait()
		total += workers * perWorker
		// Fire the wave's coalesced decision, then let half an hour of
		// completions interleave before the next burst.
		vc.AdvanceTo(vc.Now() + 1800)
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	// The equivalent trace: engine IDs are assigned in arrival order
	// under the engine lock, so ascending ID = queue arrival order.
	trace := make([]job.Job, 0, total)
	for id := 1; id <= total; id++ {
		st, ok := e.Job(id)
		if !ok {
			t.Fatalf("job %d missing from engine", id)
		}
		if st.State != StateDone {
			t.Fatalf("job %d not done after Run: %v", id, st.State)
		}
		trace = append(trace, st.Job)
	}
	res, err := sim.Run(sim.Input{Capacity: capacity, Jobs: trace}, newPolicy())
	if err != nil {
		t.Fatal(err)
	}
	diffRecords(t, res.Records, e.Records())
}
