package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
)

// panicPolicy panics on every decision; the engine must survive on the
// FCFS fallback.
type panicPolicy struct{}

func (panicPolicy) Name() string               { return "panic" }
func (panicPolicy) Decide(*sim.Snapshot) []int { panic("injected policy failure") }

// TestPolicyPanicFallback runs a whole trace against a policy that
// panics at every decision point. No panic may escape, every job must
// complete through the FCFS fallback, the recovered panics must be
// counted, and the committed schedule must satisfy the oracle.
func TestPolicyPanicFallback(t *testing.T) {
	const capacity = 16
	vc := NewVirtualClock()
	orc := oracle.New(capacity)
	e, err := New(Config{Capacity: capacity, Policy: panicPolicy{}, Clock: vc, Observer: orc})
	if err != nil {
		t.Fatal(err)
	}
	var submitted []job.Job
	at := job.Time(0)
	for i := 0; i < 40; i++ {
		spec := job.Job{
			Nodes:   1 + i%capacity,
			Runtime: job.Duration(30 + (i*97)%3600),
			User:    i % 4,
		}
		at += job.Time((i * 61) % 300)
		submitAt := at
		vc.AfterFunc(submitAt, func() {
			id, err := e.Submit(spec)
			if err != nil {
				t.Errorf("submit at t=%d: %v", submitAt, err)
				return
			}
			spec.ID = id
			spec.Submit = submitAt
			submitted = append(submitted, spec)
		})
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatalf("engine died despite panic recovery: %v", err)
	}
	m := e.Metrics()
	if m.Engine.PolicyPanics == 0 {
		t.Fatal("no panics recovered from a policy that always panics")
	}
	if m.Engine.PolicyPanics != m.Engine.Decisions {
		t.Errorf("recovered %d panics over %d decisions, want every decision to panic",
			m.Engine.PolicyPanics, m.Engine.Decisions)
	}
	if got := len(e.Records()); got != len(submitted) {
		t.Fatalf("completed %d of %d jobs under the fallback", got, len(submitted))
	}
	if err := orc.Final(); err != nil {
		t.Errorf("oracle: %v", err)
	}
	if err := oracle.CheckRecords(capacity, submitted, e.Records()); err != nil {
		t.Errorf("record sweep: %v", err)
	}
}

// TestRebuildEdgeCases covers the checkpoint/rebuild failure modes: a
// corrupted journal must be rejected loudly, never replayed into an
// inconsistent engine.
func TestRebuildEdgeCases(t *testing.T) {
	cfg := func() Config {
		return Config{Capacity: 8, Policy: panicPolicy{}, Clock: NewVirtualClock()}
	}
	ok := job.Job{ID: 1, Nodes: 2, Runtime: 100, Request: 100}

	t.Run("empty-checkpoint", func(t *testing.T) {
		e, err := Rebuild(cfg(), Checkpoint{})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(e.Records()); n != 0 {
			t.Fatalf("empty checkpoint rebuilt %d records", n)
		}
	})
	t.Run("draining-preserved", func(t *testing.T) {
		e, err := Rebuild(cfg(), Checkpoint{Draining: true})
		if err != nil {
			t.Fatal(err)
		}
		if !e.Draining() {
			t.Fatal("Draining flag lost across rebuild")
		}
		if _, err := e.Submit(job.Job{Nodes: 1, Runtime: 10}); !errors.Is(err, ErrDraining) {
			t.Fatalf("submit on rebuilt draining engine: %v, want ErrDraining", err)
		}
	})
	bad := []struct {
		name   string
		events []Event
	}{
		{"duplicate-submit", []Event{
			{Kind: EvSubmit, At: 0, Job: ok},
			{Kind: EvSubmit, At: 5, Job: ok},
		}},
		{"invalid-job", []Event{
			{Kind: EvSubmit, At: 0, Job: job.Job{ID: 1, Nodes: 99, Runtime: 10}},
		}},
		{"start-unknown-job", []Event{
			{Kind: EvStart, At: 0, ID: 42, NodeIDs: []int{0}},
		}},
		{"estimate-unknown-job", []Event{
			{Kind: EvEstimate, At: 0, ID: 42, Estimate: 10},
		}},
		{"finish-nothing-due", []Event{
			{Kind: EvFinish, At: 50, ID: 1},
		}},
		{"finish-wrong-time", []Event{
			{Kind: EvSubmit, At: 0, Job: ok},
			{Kind: EvEstimate, At: 0, ID: 1, Estimate: 100},
			{Kind: EvStart, At: 0, ID: 1, NodeIDs: []int{0, 1}},
			{Kind: EvFinish, At: 50, ID: 1},
		}},
		{"reallocated-nodes", []Event{
			{Kind: EvSubmit, At: 0, Job: ok},
			{Kind: EvStart, At: 0, ID: 1, NodeIDs: []int{6, 7}},
		}},
		{"unknown-kind", []Event{
			{Kind: EventKind(99), At: 0},
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Rebuild(cfg(), Checkpoint{Events: tc.events}); err == nil {
				t.Fatal("corrupted journal accepted")
			}
		})
	}
}

// TestDrainShutdownOrdering races concurrent submitters against Drain
// and a metrics scraper on a fast real clock (run under -race): every
// job the engine accepted must complete exactly once, every rejected
// submit must have failed with ErrDraining, and nothing may be lost or
// double-counted across the shutdown.
func TestDrainShutdownOrdering(t *testing.T) {
	const (
		capacity = 32
		workers  = 8
		perW     = 25
	)
	e, err := New(Config{
		Capacity: capacity,
		Policy:   panicPolicy{}, // worst case: every decision takes the fallback path
		Clock:    NewRealClock(36000),
	})
	if err != nil {
		t.Fatal(err)
	}

	var accepted, rejected int64
	var submitWG sync.WaitGroup
	drainAfter := int64(workers * perW / 2)
	drainOnce := sync.OnceFunc(func() { go e.Drain(context.Background()) })
	for g := 0; g < workers; g++ {
		submitWG.Add(1)
		go func(g int) {
			defer submitWG.Done()
			for k := 0; k < perW; k++ {
				_, err := e.Submit(job.Job{
					Nodes:   1 + (g*5+k)%capacity,
					Runtime: job.Duration(1 + (g*37+k*11)%120),
					User:    g,
				})
				switch {
				case err == nil:
					if atomic.AddInt64(&accepted, 1) >= drainAfter {
						drainOnce()
					}
				case errors.Is(err, ErrDraining):
					atomic.AddInt64(&rejected, 1)
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(g)
	}

	// Scrape metrics and snapshots concurrently with submits and drain.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := e.Metrics()
			if got := int64(m.Jobs.Waiting + m.Jobs.Running + m.Jobs.Done); got > atomic.LoadInt64(&accepted) {
				t.Errorf("metrics count %d jobs, only %d accepted so far", got, atomic.LoadInt64(&accepted))
			}
			e.Queue()
			e.Machine()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	submitWG.Wait()
	drainOnce() // all submits accepted without tripping the threshold
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	scrapeWG.Wait()

	acc, rej := atomic.LoadInt64(&accepted), atomic.LoadInt64(&rejected)
	if acc+rej != workers*perW {
		t.Fatalf("accepted %d + rejected %d != %d submitted", acc, rej, workers*perW)
	}
	recs := e.Records()
	if int64(len(recs)) != acc {
		t.Fatalf("drained with %d records for %d accepted jobs", len(recs), acc)
	}
	seen := make(map[int]bool, len(recs))
	for _, r := range recs {
		if seen[r.Job.ID] {
			t.Fatalf("job %d completed twice", r.Job.ID)
		}
		seen[r.Job.ID] = true
	}
	m := e.Metrics()
	if m.Jobs.Waiting != 0 || m.Jobs.Running != 0 || int64(m.Jobs.Done) != acc {
		t.Fatalf("post-drain job counts %+v, want all %d done", m.Jobs, acc)
	}
}
