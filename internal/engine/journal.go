package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"schedsearch/internal/job"
	"schedsearch/internal/obs"
)

// JournalSink persists the engine's committed event journal. The engine
// calls Append for every committed event (under its own mutex, so
// implementations see a serialized stream) and Commit at the end of
// every mutation (a submit, a decision, a completion batch, a
// withdrawal). A sink is free to defer durability inside Commit — that
// is the group-commit lever — but Sync must make everything appended so
// far durable before returning. Compact atomically replaces the
// persisted journal with a Base snapshot, truncating the event tail.
//
// A sink error is fatal to the engine: a scheduler that cannot journal
// its decisions must stop taking them rather than diverge from its
// recovery image.
type JournalSink interface {
	Append(ev Event) error
	Commit() error
	Sync() error
	Compact(base Base) error
}

// JournalStats counts a sink's work; the engine surfaces them in
// Metrics when the sink implements StatsReporter.
type JournalStats struct {
	// Appends is the number of events appended.
	Appends int64 `json:"appends"`
	// Syncs is the number of fsync boundaries — the group-commit
	// effectiveness measure is Appends/Syncs.
	Syncs int64 `json:"syncs"`
	// Compactions is the number of Compact calls.
	Compactions int64 `json:"compactions"`
}

// StatsReporter is the optional sink extension surfacing JournalStats.
type StatsReporter interface {
	Stats() JournalStats
}

// SyncLatencyReporter is the optional sink extension surfacing the
// fsync-latency histogram; the engine exposes it in Counters (and the
// server exports it as a Prometheus histogram) when the sink
// implements it.
type SyncLatencyReporter interface {
	SyncLatency() obs.HistSnapshot
}

// FileJournal is a durable JournalSink: a JSON-lines file holding an
// optional leading {"base": ...} snapshot followed by {"ev": ...}
// events in commit order. Commit fsyncs only once `group` events have
// accumulated since the last sync (group commit); Sync forces the
// boundary early (the ingest committer calls it once per accepted
// batch group, so a batch is acknowledged only after its events are
// durable). Compact rewrites the file atomically (temp file + rename).
type FileJournal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	group   int
	pending int
	stats   JournalStats
	lat     obs.Hist
}

// OpenFileJournal opens (creating if needed, appending if not) the
// journal at path. group is the number of events coalesced per fsync
// boundary; values < 1 mean 1 (sync every commit — the serial
// baseline).
func OpenFileJournal(path string, group int) (*FileJournal, error) {
	if group < 1 {
		group = 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: open journal: %w", err)
	}
	return &FileJournal{path: path, f: f, w: bufio.NewWriter(f), group: group}, nil
}

// Path returns the journal file path.
func (fj *FileJournal) Path() string { return fj.path }

// Append implements JournalSink; the event is buffered until the next
// fsync boundary.
func (fj *FileJournal) Append(ev Event) error {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if fj.f == nil {
		return errors.New("engine: journal closed")
	}
	if err := writeLine(fj.w, journalLine{Ev: eventToWire(ev)}); err != nil {
		return err
	}
	fj.pending++
	fj.stats.Appends++
	return nil
}

// Commit implements JournalSink: it fsyncs only when the group is full.
func (fj *FileJournal) Commit() error {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if fj.pending < fj.group {
		return nil
	}
	return fj.syncLocked()
}

// Sync implements JournalSink: everything appended becomes durable.
func (fj *FileJournal) Sync() error {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if fj.pending == 0 {
		return nil
	}
	return fj.syncLocked()
}

func (fj *FileJournal) syncLocked() error {
	if fj.f == nil {
		return errors.New("engine: journal closed")
	}
	t0 := time.Now()
	if err := fj.w.Flush(); err != nil {
		return fmt.Errorf("engine: journal flush: %w", err)
	}
	if err := fj.f.Sync(); err != nil {
		return fmt.Errorf("engine: journal sync: %w", err)
	}
	fj.lat.Observe(time.Since(t0))
	fj.pending = 0
	fj.stats.Syncs++
	return nil
}

// Compact implements JournalSink: the file is atomically replaced by
// one holding only the base snapshot, so recovery cost is bounded by
// the live state, not the history length.
func (fj *FileJournal) Compact(base Base) error {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if fj.f == nil {
		return errors.New("engine: journal closed")
	}
	tmp := fj.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("engine: journal compact: %w", err)
	}
	nw := bufio.NewWriter(nf)
	if err := writeLine(nw, journalLine{Base: &base}); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := nw.Flush(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: journal compact: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: journal compact: %w", err)
	}
	if err := os.Rename(tmp, fj.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: journal compact: %w", err)
	}
	// The rename is durable once the directory entry is synced.
	if dir, derr := os.Open(filepath.Dir(fj.path)); derr == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := fj.f
	fj.f = nf
	fj.w = nw
	fj.pending = 0
	fj.stats.Compactions++
	fj.stats.Syncs++
	old.Close()
	return nil
}

// Stats implements StatsReporter.
func (fj *FileJournal) Stats() JournalStats {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	return fj.stats
}

// SyncLatency implements SyncLatencyReporter: the flush+fsync latency
// distribution of the group-commit boundaries (Compact's snapshot
// rewrite is not included — it is a rare maintenance fsync, not a
// commit-path one).
func (fj *FileJournal) SyncLatency() obs.HistSnapshot {
	return fj.lat.Snapshot()
}

// Close syncs any buffered events and closes the file.
func (fj *FileJournal) Close() error {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if fj.f == nil {
		return nil
	}
	var err error
	if fj.pending > 0 {
		err = fj.syncLocked()
	}
	if cerr := fj.f.Close(); err == nil {
		err = cerr
	}
	fj.f = nil
	return err
}

// journalLine is one line of the JSON-lines journal file: exactly one
// of Base (the leading compaction snapshot) or Ev (a tail event).
type journalLine struct {
	Base *Base      `json:"base,omitempty"`
	Ev   *eventWire `json:"ev,omitempty"`
}

// eventWire is the on-disk shape of an Event; pointers and omitempty
// keep the common lines short.
type eventWire struct {
	Kind     uint8        `json:"k"`
	At       job.Time     `json:"t"`
	Job      *job.Job     `json:"job,omitempty"`
	ID       int          `json:"id,omitempty"`
	Estimate job.Duration `json:"est,omitempty"`
	NodeIDs  []int        `json:"nodes,omitempty"`
}

func eventToWire(ev Event) *eventWire {
	w := &eventWire{Kind: uint8(ev.Kind), At: ev.At, ID: ev.ID, Estimate: ev.Estimate, NodeIDs: ev.NodeIDs}
	if ev.Kind == EvSubmit {
		j := ev.Job
		w.Job = &j
	}
	return w
}

func eventFromWire(w *eventWire) Event {
	ev := Event{Kind: EventKind(w.Kind), At: w.At, ID: w.ID, Estimate: w.Estimate, NodeIDs: w.NodeIDs}
	if w.Job != nil {
		ev.Job = *w.Job
	}
	return ev
}

func writeLine(w *bufio.Writer, line journalLine) error {
	buf, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("engine: journal encode: %w", err)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("engine: journal write: %w", err)
	}
	if err := w.WriteByte('\n'); err != nil {
		return fmt.Errorf("engine: journal write: %w", err)
	}
	return nil
}

// LoadJournal reads a journal file back: the optional leading base
// snapshot and the event tail in commit order. A torn tail (a crash
// mid-write before the fsync boundary: a line that fails to decode, or
// any data after the file's last newline — a sync flushes each line's
// trailing newline before the fsync that acknowledges it, so such data
// was never acknowledged) is ignored, but corruption anywhere else is
// an error. Lines are read without a length cap, so a compacted base
// snapshot of any size loads back.
func LoadJournal(path string) (*Base, []Event, error) {
	base, events, _, err := loadJournal(path)
	return base, events, err
}

// loadJournal is LoadJournal plus the byte offset just past the last
// cleanly-parsed, newline-terminated line — the length recovery
// truncates the file to so post-crash appends start on a clean line
// boundary.
func loadJournal(path string) (*Base, []Event, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("engine: load journal: %w", err)
	}
	defer f.Close()
	var (
		base   *Base
		events []Event
		r      = bufio.NewReaderSize(f, 1<<20)
		off    int64 // bytes consumed so far
		valid  int64 // offset past the last fully-parsed line
		lineNo int
		torn   error
	)
	for {
		raw, rerr := r.ReadBytes('\n')
		if len(raw) > 0 {
			lineNo++
			off += int64(len(raw))
			terminated := raw[len(raw)-1] == '\n'
			data := bytes.TrimRight(raw, "\r\n")
			switch {
			case len(data) == 0:
				if terminated && torn == nil {
					valid = off
				}
			case !terminated:
				// Data past the final newline was never acknowledged —
				// a torn tail even when it happens to decode. Keeping it
				// would let the next O_APPEND write merge onto it.
				torn = fmt.Errorf("engine: load journal: line %d: no trailing newline", lineNo)
			default:
				var line journalLine
				if err := json.Unmarshal(data, &line); err != nil {
					torn = fmt.Errorf("engine: load journal: line %d: %w", lineNo, err)
					break
				}
				if torn != nil {
					// A decodable line after a broken one is corruption,
					// not a torn tail.
					return nil, nil, 0, torn
				}
				switch {
				case line.Base != nil:
					if lineNo != 1 {
						return nil, nil, 0, fmt.Errorf("engine: load journal: base snapshot at line %d (must be first)", lineNo)
					}
					base = line.Base
				case line.Ev != nil:
					events = append(events, eventFromWire(line.Ev))
				default:
					return nil, nil, 0, fmt.Errorf("engine: load journal: line %d holds neither base nor event", lineNo)
				}
				valid = off
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			return nil, nil, 0, fmt.Errorf("engine: load journal: %w", rerr)
		}
	}
	return base, events, valid, nil
}

// LoadCheckpoint reads a journal file into a Checkpoint ready for
// Rebuild. The decide-pending flag is not persisted; it is set
// unconditionally — Rebuild only acts on it when jobs are waiting, and
// an extra decision request on a queue the lost engine had already
// decided is absorbed by the coalescing (the policy sees the same
// snapshot it already answered).
func LoadCheckpoint(path string) (Checkpoint, error) {
	base, events, err := LoadJournal(path)
	if err != nil {
		return Checkpoint{}, err
	}
	return Checkpoint{Base: base, Events: events, DecidePending: true}, nil
}

// RecoverCheckpoint is LoadCheckpoint for crash recovery: it also
// truncates any torn tail off the file, so a subsequently-opened
// append handle (OpenFileJournal opens O_APPEND) starts on a clean
// line boundary. Without the truncation the first post-recovery event
// would merge onto the partial line, and the merged garbage — followed
// by decodable lines — reads as mid-file corruption on the next
// restart.
func RecoverCheckpoint(path string) (Checkpoint, error) {
	base, events, valid, err := loadJournal(path)
	if err != nil {
		return Checkpoint{}, err
	}
	if st, serr := os.Stat(path); serr == nil && st.Size() > valid {
		if terr := os.Truncate(path, valid); terr != nil {
			return Checkpoint{}, fmt.Errorf("engine: truncate torn journal tail: %w", terr)
		}
	}
	return Checkpoint{Base: base, Events: events, DecidePending: true}, nil
}
