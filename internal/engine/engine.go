// Package engine is the online scheduling engine: it drives any
// sim.Policy (backfill baselines and the search schedulers unchanged)
// against a Clock instead of a trace, owning the waiting queue and node
// allocation through the same sim.Ledger the offline simulator uses.
// Jobs are submitted while the engine runs (over HTTP via
// internal/server, or replayed from a trace on a VirtualClock), every
// decision point is serialized, and state is exposed through atomic
// snapshots.
//
// Event semantics match the simulator exactly: at any instant,
// completions are applied (in job-ID order) and arrivals enqueued
// before a single coalesced policy decision fires, so an engine replay
// of a trace on a VirtualClock yields the same schedule as sim.Run on
// that trace. The differential tests assert this.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/sim"
)

// ErrDraining is returned by Submit after Drain has been requested.
var ErrDraining = errors.New("engine: draining, not admitting jobs")

// ErrDuplicateID is wrapped by SubmitJob when the caller-assigned job
// ID is already in use (test with errors.Is).
var ErrDuplicateID = errors.New("duplicate job ID")

// ErrNotQueued is wrapped by Withdraw when the job is not currently
// waiting (unknown, already running, or done — running and completed
// jobs cannot be withdrawn on a non-preemptive machine).
var ErrNotQueued = errors.New("job not in queue")

// Config configures an Engine.
type Config struct {
	// Capacity is the machine size in nodes.
	Capacity int
	// Policy makes the scheduling decisions. The engine serializes
	// calls to it; it does not need to be goroutine-safe.
	Policy sim.Policy
	// Clock drives time; nil means NewRealClock(1).
	Clock Clock
	// Estimator, when non-nil, supplies planning estimates and
	// observes completions (overrides UseRequested).
	Estimator sim.Estimator
	// UseRequested makes the policy plan with user-requested runtimes.
	UseRequested bool
	// Measured flags jobs that belong to the measurement window in
	// Metrics; nil measures every job.
	Measured func(id int) bool
	// MeasureStart and MeasureEnd bound the queue-length and
	// utilization integration in Metrics, like the simulator's
	// measurement window (replay drivers copy them from the input).
	// Both zero means integrate from engine start to now.
	MeasureStart, MeasureEnd job.Time
	// Observer, when non-nil, receives every committed scheduling event
	// (the correctness oracle in internal/oracle implements it). On a
	// rebuilt engine the observer re-observes the replayed history
	// first, so attach a fresh observer to each Rebuild.
	Observer sim.Observer
	// Journal, when non-nil, receives every committed event for
	// persistence (see JournalSink). The engine calls Commit at each
	// mutation boundary; a group-committing sink defers the fsync until
	// its group fills or SyncJournal forces it. Sink errors are fatal.
	Journal JournalSink
	// CompactEvery, when > 0, folds the journal into a Base snapshot
	// (truncating the event tail, in memory and in the sink) whenever
	// the tail reaches this many events, so Rebuild cost stays bounded
	// on long-running daemons.
	CompactEvery int
	// Flight, when non-nil, receives a structured record of every
	// scheduling decision (queue depth, search effort, incumbent-cost
	// trajectory, committed starts). Capture is strictly passive and
	// alloc-free once the ring has wrapped: attaching a recorder never
	// changes a schedule.
	Flight *obs.FlightRecorder
	// Tracer, when non-nil, records a "decide" span for every started
	// job whose submission was traced (the trace context is looked up
	// in the tracer's job registry, bound at submit). Same inertness
	// guarantee as Flight.
	Tracer *obs.Tracer
	// TraceShard tags this engine's spans with its shard index in a
	// federation (0 for a standalone engine).
	TraceShard int
}

// State is a job's lifecycle position.
type State int

const (
	StateWaiting State = iota
	StateRunning
	StateDone
)

// String returns the API name of the state.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// JobStatus is one job's current state as reported by the engine.
type JobStatus struct {
	Job      job.Job
	State    State
	Estimate job.Duration
	// Start and End are valid for running (Start) and done (both).
	Start, End job.Time
	NodeIDs    []int
}

// Machine is an atomic snapshot of the machine state.
type Machine struct {
	Now       job.Time
	Capacity  int
	FreeNodes int
	Running   []sim.RunningJob
}

// Engine is the online scheduler. All methods are goroutine-safe.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	clock Clock
	l     *sim.Ledger

	jobs    map[int]*JobStatus
	nextID  int
	records []sim.Record
	journal []Event
	// withdrawn tombstones every job Withdraw removed, keyed by ID.
	// They make migration withdrawals idempotent over a lossy wire: a
	// retried Withdraw whose original landed finds the tombstone and
	// returns the same job instead of "not queued". Rebuild repopulates
	// them from EvWithdraw replay, so they survive a crash; compaction
	// folds the journal but keeps the in-memory tombstones for the
	// incarnation's lifetime. Bounded by the shard's migration count.
	withdrawn map[int]job.Job
	// base is the folded journal prefix after a compaction (nil until
	// the first Compact); journal holds only the tail since.
	base        *Base
	compactions int64
	// replaying suppresses sink writes while Rebuild re-applies
	// recovered history (the sink already holds those events).
	replaying bool

	decidePending bool
	finishTimer   Timer
	finishAt      job.Time
	finishArmed   bool

	draining bool
	done     chan struct{}
	fatal    error

	// Counters exposed via Metrics.
	decisions    int64
	policyPanics int64
	decideDur    time.Duration
	decideMax    time.Duration

	qlenInt        float64
	qlenLast       job.Time
	maxQ           int
	intStart       job.Time
	intEnd         job.Time
	explicitWindow bool

	// flightScratch is the reused record observeDecision assembles
	// before copying it into the flight recorder's ring.
	flightScratch obs.DecisionRecord
}

// New returns a started engine; it begins scheduling as soon as jobs
// are submitted.
func New(cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, errors.New("engine: nil policy")
	}
	l, err := sim.NewLedger(cfg.Capacity)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = NewRealClock(1)
	}
	l.SetObserver(cfg.Observer)
	e := &Engine{
		cfg:       cfg,
		clock:     cfg.Clock,
		l:         l,
		jobs:      make(map[int]*JobStatus),
		withdrawn: make(map[int]job.Job),
		nextID:    1,
		done:      make(chan struct{}),
		intStart:  cfg.MeasureStart,
		intEnd:    cfg.MeasureEnd,
	}
	e.explicitWindow = !(e.intStart == 0 && e.intEnd == 0)
	if !e.explicitWindow {
		e.intEnd = job.Time(1) << 59 // integrate everything
	}
	return e, nil
}

// Submit admits a new job: the engine assigns the next free ID, stamps
// the submission time from the clock, and schedules a decision. Only
// Nodes, Runtime, Request and User of spec are used.
func (e *Engine) Submit(spec job.Job) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	spec.ID = e.nextID
	if err := e.submitLocked(spec, false); err != nil {
		return 0, err
	}
	return spec.ID, nil
}

// SubmitJob admits a job keeping its caller-assigned ID (trace replay).
// The submission time is still stamped from the clock, so replay
// drivers must deliver each job when the clock reads its submit time.
func (e *Engine) SubmitJob(j job.Job) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(j, false)
}

// Admit admits a job keeping both its caller-assigned ID and its
// original submit time (clamped to now). The federation router uses it
// to migrate a still-queued job between shards without resetting the
// job's wait; everything else about admission — validation, duplicate
// detection, journaling, the coalesced decision — matches SubmitJob.
// Note that a live Observer sees the preserved submit time, which may
// be older than submissions it has already observed.
func (e *Engine) Admit(j job.Job) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(j, true)
}

func (e *Engine) submitLocked(j job.Job, preserveSubmit bool) error {
	if e.fatal != nil {
		return e.fatal
	}
	if e.draining {
		return ErrDraining
	}
	now := e.clock.Now()
	if !preserveSubmit || j.Submit < 0 || j.Submit > now {
		j.Submit = now
	}
	if j.Request < j.Runtime {
		j.Request = j.Runtime
	}
	if j.ID < 1 {
		return fmt.Errorf("engine: invalid job ID %d", j.ID)
	}
	if err := j.Validate(e.l.Capacity()); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if _, dup := e.jobs[j.ID]; dup {
		return fmt.Errorf("engine: %w: %d", ErrDuplicateID, j.ID)
	}
	if j.ID >= e.nextID {
		e.nextID = j.ID + 1
	}
	e.noteQueueChange(now)
	e.l.Enqueue(j, 0) // estimated lazily at the decision point
	e.jobs[j.ID] = &JobStatus{Job: j, State: StateWaiting}
	// A re-admission (migration undo, or a job bouncing back) retires
	// the withdraw tombstone: from here on the job's fate is this
	// incarnation's queue, and a stale tombstone must never satisfy a
	// future withdraw retry.
	delete(e.withdrawn, j.ID)
	e.appendEvent(Event{Kind: EvSubmit, At: now, Job: j})
	e.requestDecide()
	e.commitLocked()
	return e.fatal
}

// appendEvent commits one event to the in-memory journal and, outside
// of rebuild replay, to the configured sink. A sink write failure is
// fatal: the engine must not keep scheduling decisions it cannot
// recover.
func (e *Engine) appendEvent(ev Event) {
	e.journal = append(e.journal, ev)
	if e.cfg.Journal != nil && !e.replaying {
		if err := e.cfg.Journal.Append(ev); err != nil {
			e.setFatal(fmt.Errorf("engine: journal append: %w", err))
		}
	}
}

// commitLocked marks a mutation boundary: the sink gets its chance to
// fsync (group commit decides whether it actually does), and the
// journal auto-compacts once the tail is long enough.
func (e *Engine) commitLocked() {
	if e.fatal != nil {
		return
	}
	if e.cfg.Journal != nil {
		if err := e.cfg.Journal.Commit(); err != nil {
			e.setFatal(fmt.Errorf("engine: journal commit: %w", err))
			return
		}
	}
	if e.cfg.CompactEvery > 0 && len(e.journal) >= e.cfg.CompactEvery {
		_ = e.compactLocked()
	}
}

// SyncJournal forces any group-buffered journal writes to stable
// storage. The ingest committer calls it once per accepted batch group
// — the group-commit boundary: a batch is acknowledged to its clients
// only after this returns.
func (e *Engine) SyncJournal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Journal == nil {
		return nil
	}
	if err := e.cfg.Journal.Sync(); err != nil {
		e.setFatal(fmt.Errorf("engine: journal sync: %w", err))
		return e.fatal
	}
	return nil
}

// requestDecide coalesces decision requests: however many events land
// on one instant, the policy runs once, after all of them — the same
// batching the offline simulator applies.
func (e *Engine) requestDecide() {
	if e.decidePending {
		return
	}
	e.decidePending = true
	e.clock.AfterFunc(0, e.onDecide)
}

func (e *Engine) onDecide() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.decidePending = false
	e.completeDue()
	e.decideLocked()
	if now := e.clock.Now(); e.l.QueueLen() > e.maxQ && now >= e.intStart && now < e.intEnd {
		e.maxQ = e.l.QueueLen()
	}
	e.commitLocked()
	e.armFinish()
	e.checkIdle()
}

func (e *Engine) onFinish() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.finishArmed = false
	e.completeDue()
	if e.l.QueueLen() > 0 {
		e.requestDecide()
	}
	e.commitLocked()
	e.armFinish()
	e.checkIdle()
}

// completeDue applies every completion the clock has reached.
func (e *Engine) completeDue() {
	now := e.clock.Now()
	for {
		f, ok := e.l.PopDue(now)
		if !ok {
			return
		}
		if est := e.cfg.Estimator; est != nil {
			est.Observe(f.Job)
		}
		measured := e.cfg.Measured == nil || e.cfg.Measured(f.Job.ID)
		e.records = append(e.records, sim.Record{
			Job: f.Job, Start: f.Start, End: f.End,
			NodeIDs: f.NodeIDs, Measured: measured,
		})
		e.appendEvent(Event{Kind: EvFinish, At: f.End, ID: f.Job.ID})
		st := e.jobs[f.Job.ID]
		st.State = StateDone
		st.End = f.End
	}
}

func (e *Engine) estimate(j job.Job) job.Duration {
	est := j.Runtime
	switch {
	case e.cfg.Estimator != nil:
		est = e.cfg.Estimator.Estimate(j)
	case e.cfg.UseRequested:
		est = j.Request
	}
	if est < 1 {
		est = 1
	}
	if st := e.jobs[j.ID]; st != nil {
		st.Estimate = est
	}
	e.appendEvent(Event{Kind: EvEstimate, At: e.clock.Now(), ID: j.ID, Estimate: est})
	return est
}

func (e *Engine) decideLocked() {
	if e.fatal != nil || e.l.QueueLen() == 0 {
		return
	}
	now := e.clock.Now()
	e.l.FillEstimates(e.estimate)
	snap := e.l.Snapshot(now)
	e.decisions++
	t0 := time.Now()
	starts, panicked := e.safeDecide(snap)
	if panicked {
		// A panicking policy must not take the machine down: fall back
		// to a strict FCFS prefix decision, which is always feasible
		// and never starves the queue head.
		e.policyPanics++
		starts = fcfsFallback(snap)
	}
	d := time.Since(t0)
	e.decideDur += d
	if d > e.decideMax {
		e.decideMax = d
	}
	if len(starts) == 0 {
		if e.l.RunningLen() == 0 {
			e.setFatal(fmt.Errorf("engine: policy %q started nothing on an idle machine with %d queued jobs at t=%d",
				e.cfg.Policy.Name(), e.l.QueueLen(), now))
		}
		if e.cfg.Flight != nil || e.cfg.Tracer != nil {
			e.observeDecision(now, len(snap.Queue), d, nil)
		}
		return
	}
	e.noteQueueChange(now)
	started, err := e.l.Start(e.cfg.Policy.Name(), now, starts)
	if err != nil {
		e.setFatal(err)
		return
	}
	for _, s := range started {
		st := e.jobs[s.Job.ID]
		st.State = StateRunning
		st.Start = s.Start
		st.NodeIDs = s.NodeIDs
		e.appendEvent(Event{
			Kind: EvStart, At: now, ID: s.Job.ID,
			NodeIDs: append([]int(nil), s.NodeIDs...),
		})
	}
	if e.cfg.Flight != nil || e.cfg.Tracer != nil {
		e.observeDecision(now, len(snap.Queue), d, started)
	}
}

// safeDecide consults the policy, converting a panic into a recovered
// fallback signal instead of crashing the engine goroutine.
func (e *Engine) safeDecide(snap *sim.Snapshot) (starts []int, panicked bool) {
	defer func() {
		if recover() != nil {
			starts, panicked = nil, true
		}
	}()
	return e.cfg.Policy.Decide(snap), false
}

// fcfsFallback starts the longest strict-FCFS prefix of the queue that
// fits in the free nodes. It is always feasible, and on an idle machine
// it always starts the queue head (job widths are validated against
// capacity at admission), so the fallback can never stall the engine.
func fcfsFallback(snap *sim.Snapshot) []int {
	free := snap.FreeNodes
	var starts []int
	for qi, w := range snap.Queue {
		if w.Job.Nodes > free {
			break
		}
		free -= w.Job.Nodes
		starts = append(starts, qi)
	}
	return starts
}

// armFinish keeps exactly one clock timer outstanding, set to the
// earliest pending completion.
func (e *Engine) armFinish() {
	next, ok := e.l.NextFinish()
	if !ok {
		if e.finishTimer != nil {
			e.finishTimer.Stop()
			e.finishTimer = nil
		}
		e.finishArmed = false
		return
	}
	if e.finishArmed && e.finishAt == next {
		return
	}
	if e.finishTimer != nil {
		e.finishTimer.Stop()
	}
	d := next - e.clock.Now()
	if d < 0 {
		d = 0
	}
	e.finishTimer = e.clock.AfterFunc(d, e.onFinish)
	e.finishAt = next
	e.finishArmed = true
}

// noteQueueChange integrates queue length × time up to now (clamped to
// the measurement window), just before the queue length changes.
func (e *Engine) noteQueueChange(now job.Time) {
	if now <= e.qlenLast {
		return
	}
	lo := e.qlenLast
	if lo < e.intStart {
		lo = e.intStart
	}
	hi := now
	if hi > e.intEnd {
		hi = e.intEnd
	}
	if hi > lo {
		e.qlenInt += float64(hi-lo) * float64(e.l.QueueLen())
	}
	e.qlenLast = now
}

func (e *Engine) setFatal(err error) {
	if e.fatal == nil {
		e.fatal = err
		e.closeDone()
	}
}

func (e *Engine) closeDone() {
	select {
	case <-e.done:
	default:
		close(e.done)
	}
}

func (e *Engine) checkIdle() {
	if (e.draining || e.fatal != nil) && e.l.QueueLen() == 0 && e.l.RunningLen() == 0 {
		e.closeDone()
	}
}

// Drain stops admitting jobs and blocks until every admitted job has
// completed (or ctx is cancelled, or the engine hit a fatal error).
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	e.checkIdle()
	done := e.done
	e.mu.Unlock()
	select {
	case <-done:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.fatal
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been requested.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Err returns the engine's fatal error, if any (an infeasible or
// stalled policy decision stops the engine).
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fatal
}

// Now returns the engine's current time.
func (e *Engine) Now() job.Time { return e.clock.Now() }

// Job returns a copy of the job's current status.
func (e *Engine) Job(id int) (JobStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	out := *st
	out.NodeIDs = append([]int(nil), st.NodeIDs...)
	return out, true
}

// Queue returns the waiting jobs in queue (arrival) order.
func (e *Engine) Queue() []JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.l.Snapshot(e.clock.Now())
	out := make([]JobStatus, len(snap.Queue))
	for i, w := range snap.Queue {
		out[i] = JobStatus{Job: w.Job, State: StateWaiting, Estimate: w.Estimate}
	}
	return out
}

// Machine returns an atomic snapshot of machine occupancy.
func (e *Engine) Machine() Machine {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.l.Snapshot(e.clock.Now())
	return Machine{
		Now:       snap.Now,
		Capacity:  snap.Capacity,
		FreeNodes: snap.FreeNodes,
		Running:   snap.Running,
	}
}

// Records returns a copy of the completion records so far, in
// completion order (the same order the offline simulator emits).
func (e *Engine) Records() []sim.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]sim.Record(nil), e.records...)
}

// Withdraw removes a still-waiting job from the engine and returns the
// admitted job (with its stamped submit time). The federation router
// migrates queued jobs between shards this way; running and completed
// jobs cannot be withdrawn (non-preemption). The withdrawal is
// journaled, so a Rebuild replays it and the job stays gone.
func (e *Engine) Withdraw(id int) (job.Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fatal != nil {
		return job.Job{}, e.fatal
	}
	st, ok := e.jobs[id]
	if !ok || st.State != StateWaiting {
		return job.Job{}, fmt.Errorf("engine: withdraw job %d: %w", id, ErrNotQueued)
	}
	now := e.clock.Now()
	e.noteQueueChange(now)
	j, ok := e.l.Withdraw(id)
	if !ok {
		// jobs said waiting but the ledger disagrees: a bookkeeping bug.
		e.setFatal(fmt.Errorf("engine: withdraw job %d: waiting but not in ledger queue", id))
		return job.Job{}, e.fatal
	}
	delete(e.jobs, id)
	e.withdrawn[id] = j
	e.appendEvent(Event{Kind: EvWithdraw, At: now, ID: id})
	e.commitLocked()
	e.checkIdle()
	if e.fatal != nil {
		// The journal commit failed after the in-memory withdrawal was
		// applied; like the other mutation paths, a fatal error returns
		// the zero job — state is indeterminate and the engine is dead.
		return job.Job{}, e.fatal
	}
	return j, nil
}

// Withdrawn reports whether a Withdraw for the job ID has committed in
// this engine (and not been superseded by a re-admission), returning
// the withdrawn job. The federation's remote-shard withdraw handler
// uses it to answer a retried Withdraw whose original landed with the
// same job instead of an error — the idempotency seam that keeps a
// migration from dropping or duplicating a job when an acknowledgment
// is lost on the wire.
func (e *Engine) Withdrawn(id int) (job.Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.withdrawn[id]
	return j, ok
}

// Load is a cheap occupancy summary of one engine, consumed by the
// federation router's placement and rebalance passes.
type Load struct {
	// Capacity and FreeNodes mirror Machine.
	Capacity  int
	FreeNodes int
	// Waiting and Running are the queue and running-set sizes.
	Waiting int
	Running int
	// QueuedNodeSec and RemainingNodeSec are the outstanding work in
	// node-seconds (see sim.Ledger.Demand).
	QueuedNodeSec    int64
	RemainingNodeSec int64
}

// Score is the load measure placement and rebalancing compare:
// outstanding node-seconds per capacity node. It is comparable across
// shards of different sizes.
func (ld Load) Score() float64 {
	if ld.Capacity < 1 {
		return 0
	}
	return float64(ld.QueuedNodeSec+ld.RemainingNodeSec) / float64(ld.Capacity)
}

// Load returns the engine's current occupancy summary.
func (e *Engine) Load() Load {
	e.mu.Lock()
	defer e.mu.Unlock()
	queued, remaining := e.l.Demand(e.clock.Now())
	return Load{
		Capacity:         e.l.Capacity(),
		FreeNodes:        e.l.FreeNodes(),
		Waiting:          e.l.QueueLen(),
		Running:          e.l.RunningLen(),
		QueuedNodeSec:    queued,
		RemainingNodeSec: remaining,
	}
}

// Shard is the narrow engine surface the federation router
// (internal/federation) drives: admission, migration, state inspection
// and lifecycle, but none of the engine's construction or replay
// machinery. *Engine implements it; the router treats every shard
// through this interface so tests can substitute instrumented shards.
type Shard interface {
	// SubmitJob admits a job with a caller-assigned ID, stamping the
	// submit time from the clock.
	SubmitJob(j job.Job) error
	// Admit admits a job preserving its ID and submit time (migration).
	Admit(j job.Job) error
	// Withdraw removes a still-waiting job (migration source side).
	Withdraw(id int) (job.Job, error)
	// Job, Queue, Machine, Load, Metrics and Records expose state.
	Job(id int) (JobStatus, bool)
	Queue() []JobStatus
	Machine() Machine
	Load() Load
	Metrics() Metrics
	Records() []sim.Record
	// Checkpoint snapshots the committed history (crash/rebuild).
	Checkpoint() Checkpoint
	// Drain stops admission and waits for the shard to empty.
	Drain(ctx context.Context) error
	Draining() bool
	Err() error
	Now() job.Time
}

var _ Shard = (*Engine)(nil)
