package engine

import (
	"errors"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/policy"
)

// TestWithdrawAdmit exercises the migration primitives: a queued job
// can be withdrawn and re-admitted (submit time preserved), a running
// or finished job cannot, and the books stay balanced throughout.
func TestWithdrawAdmit(t *testing.T) {
	vc := NewVirtualClock()
	e, err := New(Config{Capacity: 8, Policy: policy.FCFSBackfill(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	var wide, queued int
	vc.AfterFunc(0, func() {
		// Fills the machine for an hour; everything behind it queues.
		if wide, err = e.Submit(job.Job{Nodes: 8, Runtime: 3600, Request: 3600}); err != nil {
			t.Error(err)
		}
		if queued, err = e.Submit(job.Job{Nodes: 2, Runtime: 60, Request: 60}); err != nil {
			t.Error(err)
		}
	})
	vc.AfterFunc(10, func() {
		if _, err := e.Withdraw(wide); !errors.Is(err, ErrNotQueued) {
			t.Errorf("withdraw of running job: %v, want ErrNotQueued", err)
		}
		if _, err := e.Withdraw(999); !errors.Is(err, ErrNotQueued) {
			t.Errorf("withdraw of unknown job: %v, want ErrNotQueued", err)
		}
		j, err := e.Withdraw(queued)
		if err != nil {
			t.Fatalf("withdraw queued job: %v", err)
		}
		if j.ID != queued || j.Submit != 0 {
			t.Fatalf("withdrew %+v, want ID %d submitted at 0", j, queued)
		}
		if _, ok := e.Job(queued); ok {
			t.Error("withdrawn job still known to the engine")
		}
		// Double withdraw must fail, re-admission must preserve the
		// original submit time even though the clock moved.
		if _, err := e.Withdraw(queued); !errors.Is(err, ErrNotQueued) {
			t.Errorf("double withdraw: %v, want ErrNotQueued", err)
		}
		if err := e.Admit(j); err != nil {
			t.Fatalf("re-admit: %v", err)
		}
		st, ok := e.Job(queued)
		if !ok || st.Job.Submit != 0 {
			t.Fatalf("re-admitted job: %+v, want submit time 0 preserved", st)
		}
	})
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Job.ID == queued && r.Job.Submit != 0 {
			t.Errorf("migrated job's record submit %d, want 0", r.Job.Submit)
		}
	}
}

// TestRebuildReplaysWithdraw checkpoints an engine whose journal holds
// a withdrawal and rebuilds it: the replayed engine must agree on the
// queue and never resurrect the withdrawn job.
func TestRebuildReplaysWithdraw(t *testing.T) {
	vc := NewVirtualClock()
	e, err := New(Config{Capacity: 4, Policy: policy.FCFSBackfill(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	var gone int
	vc.AfterFunc(0, func() {
		if _, err := e.Submit(job.Job{Nodes: 4, Runtime: 7200, Request: 7200}); err != nil {
			t.Error(err)
		}
		if gone, err = e.Submit(job.Job{Nodes: 1, Runtime: 60, Request: 60}); err != nil {
			t.Error(err)
		}
		if _, err := e.Submit(job.Job{Nodes: 2, Runtime: 120, Request: 120}); err != nil {
			t.Error(err)
		}
	})
	var rebuilt *Engine
	vc.AfterFunc(30, func() {
		if _, err := e.Withdraw(gone); err != nil {
			t.Fatalf("withdraw: %v", err)
		}
		cp := e.Checkpoint()
		found := false
		for _, ev := range cp.Events {
			if ev.Kind == EvWithdraw && ev.ID == gone {
				found = true
			}
		}
		if !found {
			t.Fatal("journal has no EvWithdraw event")
		}
		rebuilt, err = Rebuild(Config{Capacity: 4, Policy: policy.FCFSBackfill(), Clock: vc}, cp)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
	})
	vc.Run()
	if err := rebuilt.Err(); err != nil {
		t.Fatal(err)
	}
	if _, ok := rebuilt.Job(gone); ok {
		t.Error("rebuild resurrected the withdrawn job")
	}
	if got := len(rebuilt.Records()); got != 2 {
		t.Fatalf("rebuilt engine completed %d jobs, want 2", got)
	}
}

// TestLoadScore sanity-checks the load snapshot the federation router
// places by.
func TestLoadScore(t *testing.T) {
	vc := NewVirtualClock()
	e, err := New(Config{Capacity: 8, Policy: policy.FCFSBackfill(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	if l := e.Load(); l.Score() != 0 || l.FreeNodes != 8 {
		t.Fatalf("idle load: %+v", l)
	}
	vc.AfterFunc(0, func() {
		if _, err := e.Submit(job.Job{Nodes: 8, Runtime: 100, Request: 100}); err != nil {
			t.Error(err)
		}
		if _, err := e.Submit(job.Job{Nodes: 4, Runtime: 50, Request: 50}); err != nil {
			t.Error(err)
		}
	})
	var mid Load
	vc.AfterFunc(10, func() { mid = e.Load() })
	vc.Run()
	if mid.Running != 1 || mid.Waiting != 1 || mid.FreeNodes != 0 {
		t.Fatalf("mid-run load: %+v", mid)
	}
	// Remaining work at t=10: 8 nodes x 90s running + 4 x 50 queued.
	if mid.RemainingNodeSec != 8*90 || mid.QueuedNodeSec != 4*50 {
		t.Fatalf("demand integrals: %+v", mid)
	}
	if want := float64(8*90+4*50) / 8; mid.Score() != want {
		t.Fatalf("score %v, want %v", mid.Score(), want)
	}
}
