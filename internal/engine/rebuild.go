package engine

import (
	"fmt"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// EventKind tags one committed engine event in the journal.
type EventKind uint8

const (
	// EvSubmit is a job admission; Job carries the admitted job with
	// its stamped submit time.
	EvSubmit EventKind = iota
	// EvEstimate fixes a queued job's planning estimate (assigned at
	// the first decision point after arrival).
	EvEstimate
	// EvStart dispatches a job; NodeIDs records the concrete
	// allocation for verification on rebuild.
	EvStart
	// EvFinish completes a job at time At.
	EvFinish
	// EvWithdraw removes a still-waiting job from the queue without
	// starting it (a federation migration moved it to another shard).
	EvWithdraw
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvEstimate:
		return "estimate"
	case EvStart:
		return "start"
	case EvFinish:
		return "finish"
	case EvWithdraw:
		return "withdraw"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the engine's committed-history journal. Which
// fields are meaningful depends on Kind (see the kind constants).
type Event struct {
	Kind EventKind
	At   job.Time
	// Job is the admitted job (EvSubmit only).
	Job job.Job
	// ID identifies the job for every other kind.
	ID int
	// Estimate is the fixed planning estimate (EvEstimate only).
	Estimate job.Duration
	// NodeIDs is the recorded concrete allocation (EvStart only).
	NodeIDs []int
}

// Checkpoint is a consistent snapshot of the engine's committed
// history, sufficient to Rebuild an equivalent engine after a crash.
type Checkpoint struct {
	// Base, when non-nil, is the folded journal prefix of the last
	// compaction; Events then holds only the tail committed since.
	Base *Base
	// Events is the committed event journal in commit order.
	Events []Event
	// DecidePending records whether a coalesced decision was scheduled
	// but had not fired yet; Rebuild re-requests it so the rebuilt
	// engine decides at the same instant the lost engine would have.
	DecidePending bool
	// Draining records whether Drain had been requested.
	Draining bool
}

// Checkpoint returns a consistent copy of the engine's committed
// history. It can be taken at any time, including mid-run.
func (e *Engine) Checkpoint() Checkpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := Checkpoint{
		Events:        append([]Event(nil), e.journal...),
		DecidePending: e.decidePending,
		Draining:      e.draining,
	}
	if e.base != nil {
		// Compaction replaces e.base wholesale and never mutates it in
		// place, so a struct copy suffices.
		b := *e.base
		cp.Base = &b
	}
	return cp
}

// Rebuild reconstructs an engine from a checkpoint: the committed
// history is replayed directly against a fresh ledger (bypassing the
// policy), the pending-completion timer is re-armed, and a pending
// decision is re-requested, so a crashed engine resumed on the same
// clock commits exactly the schedule the uninterrupted engine would
// have. Replay order makes node allocation deterministic; Rebuild
// verifies each replayed dispatch lands on the recorded nodes and fails
// loudly on any divergence.
//
// cfg plays the role of the restarted process's configuration: pass the
// same capacity and clock. Policy and Estimator instances are fresh by
// construction (the crash lost them); estimator state is reconstructed
// by replaying completions in order. Attach a fresh Observer — it
// re-observes the replayed history before live events. The effort
// counters (decisions, latency) and the max-queue statistic restart at
// the rebuild point; the committed schedule and the queue-length
// integral do not.
//
// A compacted checkpoint (cp.Base != nil) restores the base state
// directly — running jobs land on their exact recorded nodes, so the
// tail replays onto identical allocations — and then replays the tail.
// A base is committed history that was already observed before the
// compaction, so Config.Observer is ignored on a compacted rebuild
// (replaying restored state through an observer would violate the
// oracle's monotonicity and conservation invariants); verify compacted
// rebuilds offline with oracle.CheckRecords instead.
//
// Config.Journal is not written during the replay itself — on crash
// recovery the sink already holds exactly these events — but live
// events after the rebuild flow to it as usual.
func Rebuild(cfg Config, cp Checkpoint) (*Engine, error) {
	if cp.Base != nil {
		cfg.Observer = nil
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replaying = true
	if cp.Base != nil {
		if err := e.restoreBaseLocked(*cp.Base); err != nil {
			return nil, err
		}
		b := *cp.Base
		e.base = &b
	}
	for i, ev := range cp.Events {
		if err := e.replayEvent(i, ev, cp.Events); err != nil {
			return nil, err
		}
	}
	e.replaying = false
	e.draining = cp.Draining
	e.armFinish()
	if cp.DecidePending && e.l.QueueLen() > 0 {
		e.requestDecide()
	}
	e.checkIdle()
	return e, nil
}

func (e *Engine) replayEvent(i int, ev Event, events []Event) error {
	switch ev.Kind {
	case EvSubmit:
		j := ev.Job
		if _, dup := e.jobs[j.ID]; dup {
			return fmt.Errorf("engine: rebuild: event %d: job %d admitted twice", i, j.ID)
		}
		if err := j.Validate(e.l.Capacity()); err != nil {
			return fmt.Errorf("engine: rebuild: event %d: %w", i, err)
		}
		e.noteQueueChange(ev.At)
		e.l.Enqueue(j, 0)
		e.jobs[j.ID] = &JobStatus{Job: j, State: StateWaiting}
		delete(e.withdrawn, j.ID)
		if j.ID >= e.nextID {
			e.nextID = j.ID + 1
		}
	case EvEstimate:
		if !e.l.SetEstimate(ev.ID, ev.Estimate) {
			return fmt.Errorf("engine: rebuild: event %d: estimate for job %d not in queue", i, ev.ID)
		}
		if st := e.jobs[ev.ID]; st != nil {
			st.Estimate = ev.Estimate
		}
	case EvStart:
		qi, ok := e.l.QueueIndex(ev.ID)
		if !ok {
			return fmt.Errorf("engine: rebuild: event %d: started job %d not in queue", i, ev.ID)
		}
		e.noteQueueChange(ev.At)
		started, err := e.l.Start(e.cfg.Policy.Name(), ev.At, []int{qi})
		if err != nil {
			return fmt.Errorf("engine: rebuild: event %d: %w", i, err)
		}
		s := started[0]
		if !equalInts(s.NodeIDs, ev.NodeIDs) {
			return fmt.Errorf("engine: rebuild: event %d: job %d reallocated nodes %v, recorded %v",
				i, ev.ID, s.NodeIDs, ev.NodeIDs)
		}
		st := e.jobs[ev.ID]
		st.State = StateRunning
		st.Start = s.Start
		st.NodeIDs = s.NodeIDs
		// The live engine samples the queue length at decision points
		// (after the whole batch of starts); mirror that at the last
		// start of each replayed batch.
		if i+1 >= len(events) || events[i+1].Kind != EvStart {
			if e.l.QueueLen() > e.maxQ && ev.At >= e.intStart && ev.At < e.intEnd {
				e.maxQ = e.l.QueueLen()
			}
		}
	case EvFinish:
		f, ok := e.l.PopDue(ev.At)
		if !ok {
			return fmt.Errorf("engine: rebuild: event %d: no completion due at t=%d", i, ev.At)
		}
		if f.Job.ID != ev.ID || f.End != ev.At {
			return fmt.Errorf("engine: rebuild: event %d: popped job %d at t=%d, recorded job %d at t=%d",
				i, f.Job.ID, f.End, ev.ID, ev.At)
		}
		if est := e.cfg.Estimator; est != nil {
			est.Observe(f.Job)
		}
		measured := e.cfg.Measured == nil || e.cfg.Measured(f.Job.ID)
		e.records = append(e.records, sim.Record{
			Job: f.Job, Start: f.Start, End: f.End,
			NodeIDs: f.NodeIDs, Measured: measured,
		})
		st := e.jobs[f.Job.ID]
		st.State = StateDone
		st.End = f.End
	case EvWithdraw:
		st, ok := e.jobs[ev.ID]
		if !ok || st.State != StateWaiting {
			return fmt.Errorf("engine: rebuild: event %d: withdrawn job %d not waiting", i, ev.ID)
		}
		e.noteQueueChange(ev.At)
		if _, ok := e.l.Withdraw(ev.ID); !ok {
			return fmt.Errorf("engine: rebuild: event %d: withdrawn job %d not in queue", i, ev.ID)
		}
		// Repopulate the idempotency tombstone: a rebuilt shard must
		// still answer a retried Withdraw whose original committed
		// before the crash.
		e.withdrawn[ev.ID] = st.Job
		delete(e.jobs, ev.ID)
	default:
		return fmt.Errorf("engine: rebuild: event %d: unknown kind %d", i, int(ev.Kind))
	}
	e.journal = append(e.journal, ev)
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
