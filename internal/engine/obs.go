package engine

import (
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/sim"
)

// decisionSummarizer is the optional policy surface the flight
// recorder reads per-decision search detail from. core.Scheduler
// implements it; chaos.FlakyPolicy forwards it to its inner policy;
// heuristic baselines simply lack it and get generic records.
type decisionSummarizer interface {
	LastDecision() core.DecisionSummary
}

// metaSummarizer is the optional surface meta-schedulers expose: which
// portfolio member the last decision committed and its regret estimate.
// metasched.Meta implements it.
type metaSummarizer interface {
	LastMetaDecision() (policy string, regret float64, ok bool)
}

// observeDecision captures one committed decision into the flight
// recorder and the tracer. It runs with the engine lock held, after
// the commit, and only reads state the decision already produced —
// instrumentation on vs. off is bit-identical (the inertness
// differentials pin this down).
func (e *Engine) observeDecision(now job.Time, queueDepth int, wall time.Duration, started []sim.Started) {
	if f := e.cfg.Flight; f != nil {
		rec := &e.flightScratch
		startedBuf := rec.Started[:0]
		trajBuf := rec.Trajectory[:0]
		*rec = obs.DecisionRecord{
			NowS:       int64(now),
			Policy:     e.cfg.Policy.Name(),
			QueueDepth: queueDepth,
			WallUs:     wall.Microseconds(),
		}
		for _, s := range started {
			startedBuf = append(startedBuf, s.Job.ID)
		}
		rec.Started = startedBuf
		if ms, ok := e.cfg.Policy.(metaSummarizer); ok {
			if name, regret, ok := ms.LastMetaDecision(); ok {
				rec.ChosenPolicy = name
				rec.MetaRegret = regret
			}
		}
		if ds, ok := e.cfg.Policy.(decisionSummarizer); ok {
			sum := ds.LastDecision()
			rec.EffectiveLimit = sum.EffectiveLimit
			rec.Nodes = sum.Nodes
			rec.Leaves = sum.Leaves
			rec.Pruned = sum.Pruned
			rec.NodesToBest = sum.NodesToBest
			rec.BudgetHit = sum.BudgetHit
			rec.WarmSeeded = sum.WarmSeeded
			rec.SeedHeld = sum.SeedHeld
			rec.Parallel = sum.Parallel
			if sum.BestFound {
				rec.BestExcess = sum.BestCost[0]
				rec.BestSlowdown = sum.BestCost[1]
			}
			for _, p := range sum.Trajectory {
				trajBuf = append(trajBuf, obs.TrajectoryPoint{
					Nodes: p.Nodes, Excess: p.Cost[0], Slowdown: p.Cost[1],
				})
			}
		}
		rec.Trajectory = trajBuf
		f.Record(rec)
	}
	if tr := e.cfg.Tracer; tr != nil {
		end := tr.Now()
		start := end.Add(-wall)
		for _, s := range started {
			if tc, ok := tr.Lookup(s.Job.ID); ok {
				tr.Record("decide", tc, s.Job.ID, e.cfg.TraceShard, start, wall)
			}
		}
	}
}
