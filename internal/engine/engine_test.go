package engine

import (
	"context"
	"testing"
	"time"

	"schedsearch/internal/job"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
)

func newVirtualEngine(t *testing.T, capacity int, pol sim.Policy) (*Engine, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock()
	e, err := New(Config{Capacity: capacity, Policy: pol, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	return e, vc
}

func TestEngineLifecycle(t *testing.T) {
	e, vc := newVirtualEngine(t, 4, policy.FCFSBackfill())
	id, err := e.Submit(job.Job{Nodes: 2, Runtime: 100, Request: 100})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := e.Job(id)
	if !ok || st.State != StateWaiting {
		t.Fatalf("before decide: state %v, want waiting", st.State)
	}
	vc.RunDue() // fire the coalesced decision at t=0
	st, _ = e.Job(id)
	if st.State != StateRunning || st.Start != 0 || len(st.NodeIDs) != 2 {
		t.Fatalf("after decide: %+v, want running at t=0 on 2 nodes", st)
	}
	m := e.Machine()
	if m.FreeNodes != 2 || len(m.Running) != 1 {
		t.Fatalf("machine %+v, want 2 free, 1 running", m)
	}
	vc.AdvanceTo(100)
	st, _ = e.Job(id)
	if st.State != StateDone || st.End != 100 {
		t.Fatalf("after completion: %+v, want done at t=100", st)
	}
	met := e.Metrics()
	if met.Jobs.Done != 1 || met.Engine.Decisions != 1 {
		t.Fatalf("metrics %+v, want 1 done, 1 decision", met)
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineQueuesWhenFull(t *testing.T) {
	e, vc := newVirtualEngine(t, 4, policy.FCFSBackfill())
	a, _ := e.Submit(job.Job{Nodes: 4, Runtime: 50, Request: 50})
	vc.RunDue()
	b, _ := e.Submit(job.Job{Nodes: 4, Runtime: 50, Request: 50})
	vc.RunDue()
	if st, _ := e.Job(b); st.State != StateWaiting {
		t.Fatalf("job %d state %v, want waiting behind job %d", b, st.State, a)
	}
	if q := e.Queue(); len(q) != 1 || q[0].Job.ID != b {
		t.Fatalf("queue %+v, want just job %d", q, b)
	}
	vc.Run() // completes a at t=50, starts b, completes b at t=100
	if st, _ := e.Job(b); st.State != StateDone || st.Start != 50 || st.End != 100 {
		t.Fatalf("job %d %+v, want start=50 end=100", b, st)
	}
}

func TestEngineSubmitValidation(t *testing.T) {
	e, _ := newVirtualEngine(t, 4, policy.FCFSBackfill())
	if _, err := e.Submit(job.Job{Nodes: 0, Runtime: 10}); err == nil {
		t.Fatal("zero-node job accepted")
	}
	if _, err := e.Submit(job.Job{Nodes: 8, Runtime: 10}); err == nil {
		t.Fatal("job wider than the machine accepted")
	}
	if _, err := e.Submit(job.Job{Nodes: 2, Runtime: -1}); err == nil {
		t.Fatal("negative runtime accepted")
	}
}

func TestEngineDrain(t *testing.T) {
	e, vc := newVirtualEngine(t, 4, policy.FCFSBackfill())
	if _, err := e.Submit(job.Job{Nodes: 1, Runtime: 30, Request: 30}); err != nil {
		t.Fatal(err)
	}
	vc.RunDue()

	drained := make(chan error, 1)
	go func() { drained <- e.Drain(context.Background()) }()
	for !e.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Submit(job.Job{Nodes: 1, Runtime: 1, Request: 1}); err != ErrDraining {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	vc.Run() // finish the running job
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
}

func TestEngineDrainContextCancel(t *testing.T) {
	e, vc := newVirtualEngine(t, 4, policy.FCFSBackfill())
	e.Submit(job.Job{Nodes: 1, Runtime: 1000, Request: 1000})
	vc.RunDue()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Drain(ctx); err != context.Canceled {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}
}

// stallPolicy refuses to start anything, which on an idle machine is a
// fatal policy bug the engine must surface rather than hang on.
type stallPolicy struct{}

func (stallPolicy) Name() string               { return "stall" }
func (stallPolicy) Decide(*sim.Snapshot) []int { return nil }

func TestEngineFatalOnStalledPolicy(t *testing.T) {
	e, vc := newVirtualEngine(t, 4, stallPolicy{})
	e.Submit(job.Job{Nodes: 1, Runtime: 10, Request: 10})
	vc.Run()
	if err := e.Err(); err == nil {
		t.Fatal("no fatal error after policy stalled on idle machine")
	}
	if _, err := e.Submit(job.Job{Nodes: 1, Runtime: 10, Request: 10}); err == nil {
		t.Fatal("submit accepted after fatal error")
	}
	if m := e.Metrics(); m.Error == "" {
		t.Fatal("metrics hide the fatal error")
	}
	if err := e.Drain(context.Background()); err == nil {
		t.Fatal("Drain reports success after fatal error")
	}
}

func TestEngineRealClock(t *testing.T) {
	// 6000 engine seconds per wall second: a 600-second job runs for
	// ~100ms of wall time.
	e, err := New(Config{Capacity: 4, Policy: policy.FCFSBackfill(), Clock: NewRealClock(6000)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Submit(job.Job{Nodes: 2, Runtime: 600, Request: 600}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	for _, r := range recs {
		if r.End != r.Start+600 {
			t.Fatalf("record %+v: end != start+600", r)
		}
	}
}
