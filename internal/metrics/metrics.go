// Package metrics computes the performance measures the paper evaluates
// policies with (Section 4): average and maximum wait, average bounded
// slowdown, the 98th-percentile wait, the normalized excessive-wait
// family (total, count and average of per-job wait in excess of a
// threshold), and per-job-class average-wait grids (Figure 5). All
// measures are computed over the measured jobs only.
package metrics

import (
	"fmt"
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Hours converts a duration in seconds to hours.
func Hours(d job.Duration) float64 { return float64(d) / float64(job.Hour) }

// Summary holds the headline measures of one simulation run.
type Summary struct {
	Policy string `json:"policy"`
	Jobs   int    `json:"jobs"`
	// AvgWaitH, MaxWaitH and P98WaitH are in hours.
	AvgWaitH float64 `json:"avg_wait_h"`
	MaxWaitH float64 `json:"max_wait_h"`
	P98WaitH float64 `json:"p98_wait_h"`
	// AvgBoundedSlowdown uses the paper's 1-minute runtime floor and
	// actual runtimes.
	AvgBoundedSlowdown float64 `json:"avg_bounded_slowdown"`
	MaxBoundedSlowdown float64 `json:"max_bounded_slowdown"`
	// AvgQueueLen is copied from the simulation result.
	AvgQueueLen float64 `json:"avg_queue_len"`
	// UtilizedLoad is the fraction of the machine's capacity delivered
	// to jobs (of any measurement status) during the measurement
	// window: busy node-seconds clipped to the window over capacity x
	// window length.
	UtilizedLoad float64 `json:"utilized_load"`
}

// Summarize computes the headline measures from a simulation result.
func Summarize(res *sim.Result) Summary {
	s := Summary{Policy: res.Policy, AvgQueueLen: res.AvgQueueLen}
	s.UtilizedLoad = Utilization(res)
	waits := make([]float64, 0, len(res.Records))
	var sumWait, sumBsld, maxBsld float64
	for _, r := range res.Records {
		if !r.Measured {
			continue
		}
		w := Hours(job.Wait(r.Job, r.Start))
		waits = append(waits, w)
		sumWait += w
		b := job.BoundedSlowdown(r.Job, r.Start)
		sumBsld += b
		if b > maxBsld {
			maxBsld = b
		}
	}
	s.Jobs = len(waits)
	if s.Jobs == 0 {
		return s
	}
	sort.Float64s(waits)
	s.AvgWaitH = sumWait / float64(s.Jobs)
	s.MaxWaitH = waits[len(waits)-1]
	s.P98WaitH = percentileSorted(waits, 98)
	s.AvgBoundedSlowdown = sumBsld / float64(s.Jobs)
	s.MaxBoundedSlowdown = maxBsld
	return s
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Utilization returns the fraction of capacity delivered to jobs during
// the result's measurement window (all jobs count — warm-up jobs also
// occupy the machine).
func Utilization(res *sim.Result) float64 {
	if res.Capacity <= 0 || res.MeasureEnd <= res.MeasureStart {
		return 0
	}
	var busy float64
	for _, r := range res.Records {
		lo, hi := r.Start, r.End
		if lo < res.MeasureStart {
			lo = res.MeasureStart
		}
		if hi > res.MeasureEnd {
			hi = res.MeasureEnd
		}
		if hi > lo {
			busy += float64(r.Job.Nodes) * float64(hi-lo)
		}
	}
	return busy / (float64(res.Capacity) * float64(res.MeasureEnd-res.MeasureStart))
}

// Excess summarizes the normalized excessive wait of a run with respect
// to a threshold (the paper's E^t measures): per-job wait in excess of
// the threshold, over jobs that have any.
type Excess struct {
	// ThresholdH is the threshold t in hours.
	ThresholdH float64
	// TotalH is the total excessive wait in hours over all jobs.
	TotalH float64
	// Count is the number of jobs with an excessive wait.
	Count int
	// AvgH is TotalH / Count (0 when Count is 0).
	AvgH float64
}

// ExcessiveWait computes the excessive-wait summary of a run w.r.t. a
// threshold in hours.
func ExcessiveWait(res *sim.Result, thresholdH float64) Excess {
	e := Excess{ThresholdH: thresholdH}
	for _, r := range res.Records {
		if !r.Measured {
			continue
		}
		ex := Hours(job.Wait(r.Job, r.Start)) - thresholdH
		if ex > 0 {
			e.TotalH += ex
			e.Count++
		}
	}
	if e.Count > 0 {
		e.AvgH = e.TotalH / float64(e.Count)
	}
	return e
}

// ClassGrid is the Figure 5 surface: average wait (hours) per
// (runtime-class, node-class) cell, with the per-cell job counts.
type ClassGrid struct {
	NodeClasses    []job.NodeRange
	RuntimeClasses []job.RuntimeRange
	// AvgWaitH[t][n] indexes runtime class t and node class n.
	AvgWaitH [][]float64
	Count    [][]int
}

// ComputeClassGrid builds the per-class average-wait grid of a run using
// the Figure 5 class boundaries (actual runtime and requested nodes).
func ComputeClassGrid(res *sim.Result) ClassGrid {
	g := ClassGrid{
		NodeClasses:    job.Fig5NodeClasses,
		RuntimeClasses: job.Fig5RuntimeClasses,
	}
	nt, nn := len(g.RuntimeClasses), len(g.NodeClasses)
	sums := make([][]float64, nt)
	g.AvgWaitH = make([][]float64, nt)
	g.Count = make([][]int, nt)
	for t := range sums {
		sums[t] = make([]float64, nn)
		g.AvgWaitH[t] = make([]float64, nn)
		g.Count[t] = make([]int, nn)
	}
	for _, r := range res.Records {
		if !r.Measured {
			continue
		}
		t := job.ClassifyRuntime(g.RuntimeClasses, r.Job.Runtime)
		n := job.ClassifyNodes(g.NodeClasses, r.Job.Nodes)
		if t < 0 || n < 0 {
			continue
		}
		sums[t][n] += Hours(job.Wait(r.Job, r.Start))
		g.Count[t][n]++
	}
	for t := 0; t < nt; t++ {
		for n := 0; n < nn; n++ {
			if g.Count[t][n] > 0 {
				g.AvgWaitH[t][n] = sums[t][n] / float64(g.Count[t][n])
			}
		}
	}
	return g
}

// CheckConservation verifies basic sanity of a simulation result: every
// job starts no earlier than submission and ends exactly runtime after
// start. It returns the first violation, or nil.
func CheckConservation(res *sim.Result) error {
	for _, r := range res.Records {
		if err := checkRecord(r); err != nil {
			return err
		}
	}
	return nil
}

func checkRecord(r sim.Record) error {
	if r.Start < r.Job.Submit {
		return &ValidationError{Record: r, Reason: "started before submission"}
	}
	rt := r.Job.Runtime
	if rt < 1 {
		rt = 1
	}
	if r.End != r.Start+rt {
		return &ValidationError{Record: r, Reason: "end != start + runtime"}
	}
	return nil
}

// ValidationError reports a malformed simulation record.
type ValidationError struct {
	Record sim.Record
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("metrics: job %d: %s", e.Record.Job.ID, e.Reason)
}
