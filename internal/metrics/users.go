package metrics

import (
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// UserSummary aggregates a run's measures for one user, supporting the
// fairshare extension's evaluation.
type UserSummary struct {
	User int
	Jobs int
	// DemandNodeH is the user's total processor demand in node-hours.
	DemandNodeH float64
	AvgWaitH    float64
	AvgBsld     float64
	MaxWaitH    float64
}

// PerUser summarizes the measured jobs of a run per user, sorted by
// descending demand (heaviest users first). Jobs with user 0 (unknown)
// are skipped.
func PerUser(res *sim.Result) []UserSummary {
	acc := map[int]*UserSummary{}
	for _, r := range res.Records {
		if !r.Measured || r.Job.User == 0 {
			continue
		}
		u := acc[r.Job.User]
		if u == nil {
			u = &UserSummary{User: r.Job.User}
			acc[r.Job.User] = u
		}
		u.Jobs++
		u.DemandNodeH += float64(r.Job.Demand()) / float64(job.Hour)
		w := Hours(job.Wait(r.Job, r.Start))
		u.AvgWaitH += w
		if w > u.MaxWaitH {
			u.MaxWaitH = w
		}
		u.AvgBsld += job.BoundedSlowdown(r.Job, r.Start)
	}
	out := make([]UserSummary, 0, len(acc))
	for _, u := range acc {
		u.AvgWaitH /= float64(u.Jobs)
		u.AvgBsld /= float64(u.Jobs)
		out = append(out, *u)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].DemandNodeH != out[k].DemandNodeH {
			return out[i].DemandNodeH > out[k].DemandNodeH
		}
		return out[i].User < out[k].User
	})
	return out
}

// SplitByDemand partitions the per-user summaries into the heavy users
// contributing the top half of demand and the rest, returning the
// job-weighted average bounded slowdown of each group. It quantifies
// what a fairshare objective trades: heavy-group service against
// light-group service.
func SplitByDemand(users []UserSummary) (heavyBsld, lightBsld float64) {
	var total float64
	for _, u := range users {
		total += u.DemandNodeH
	}
	var acc float64
	var hSum, hJobs, lSum, lJobs float64
	for _, u := range users {
		if acc < total/2 {
			hSum += u.AvgBsld * float64(u.Jobs)
			hJobs += float64(u.Jobs)
		} else {
			lSum += u.AvgBsld * float64(u.Jobs)
			lJobs += float64(u.Jobs)
		}
		acc += u.DemandNodeH
	}
	if hJobs > 0 {
		heavyBsld = hSum / hJobs
	}
	if lJobs > 0 {
		lightBsld = lSum / lJobs
	}
	return heavyBsld, lightBsld
}
