package metrics

import (
	"math"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func rec(id int, submit job.Time, nodes int, runtime job.Duration, start job.Time, measured bool) sim.Record {
	return sim.Record{
		Job:      job.Job{ID: id, Submit: submit, Nodes: nodes, Runtime: runtime, Request: runtime},
		Start:    start,
		End:      start + runtime,
		Measured: measured,
	}
}

func TestSummarizeBasics(t *testing.T) {
	res := &sim.Result{
		Policy:      "test",
		AvgQueueLen: 2.5,
		Records: []sim.Record{
			rec(1, 0, 1, job.Hour, 0, true),            // wait 0
			rec(2, 0, 1, job.Hour, 2*job.Hour, true),   // wait 2h, bsld 3
			rec(3, 0, 1, job.Hour, 10*job.Hour, false), // warm-up: excluded
		},
	}
	s := Summarize(res)
	if s.Jobs != 2 {
		t.Fatalf("Jobs = %d, want 2 (unmeasured excluded)", s.Jobs)
	}
	if s.AvgWaitH != 1 {
		t.Errorf("AvgWaitH = %v, want 1", s.AvgWaitH)
	}
	if s.MaxWaitH != 2 {
		t.Errorf("MaxWaitH = %v, want 2", s.MaxWaitH)
	}
	if s.AvgBoundedSlowdown != 2 { // (1 + 3) / 2
		t.Errorf("AvgBoundedSlowdown = %v, want 2", s.AvgBoundedSlowdown)
	}
	if s.MaxBoundedSlowdown != 3 {
		t.Errorf("MaxBoundedSlowdown = %v, want 3", s.MaxBoundedSlowdown)
	}
	if s.AvgQueueLen != 2.5 {
		t.Errorf("AvgQueueLen = %v, want 2.5 (copied)", s.AvgQueueLen)
	}
	if s.Policy != "test" {
		t.Errorf("Policy = %q", s.Policy)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&sim.Result{Policy: "x"})
	if s.Jobs != 0 || s.AvgWaitH != 0 || s.MaxWaitH != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeP98(t *testing.T) {
	// 100 jobs with waits 1..100 hours: p98 = 98.02 (linear interp on
	// closest ranks over 0..99).
	res := &sim.Result{}
	for i := 1; i <= 100; i++ {
		res.Records = append(res.Records,
			rec(i, 0, 1, job.Hour, job.Time(i)*job.Hour, true))
	}
	s := Summarize(res)
	if math.Abs(s.P98WaitH-98.02) > 0.001 {
		t.Errorf("P98WaitH = %v, want 98.02", s.P98WaitH)
	}
}

func TestExcessiveWait(t *testing.T) {
	res := &sim.Result{Records: []sim.Record{
		rec(1, 0, 1, job.Hour, 0, true),            // wait 0h
		rec(2, 0, 1, job.Hour, 10*job.Hour, true),  // wait 10h, excess 4
		rec(3, 0, 1, job.Hour, 20*job.Hour, true),  // wait 20h, excess 14
		rec(4, 0, 1, job.Hour, 30*job.Hour, false), // unmeasured
	}}
	e := ExcessiveWait(res, 6)
	if e.Count != 2 {
		t.Fatalf("Count = %d, want 2", e.Count)
	}
	if math.Abs(e.TotalH-18) > 1e-9 {
		t.Errorf("TotalH = %v, want 18", e.TotalH)
	}
	if math.Abs(e.AvgH-9) > 1e-9 {
		t.Errorf("AvgH = %v, want 9", e.AvgH)
	}
	if e.ThresholdH != 6 {
		t.Errorf("ThresholdH = %v", e.ThresholdH)
	}
}

func TestExcessiveWaitZeroWRTOwnMax(t *testing.T) {
	// By definition the excessive wait of a run w.r.t. its own maximum
	// wait is zero (the paper's FCFS-backfill property).
	res := &sim.Result{Records: []sim.Record{
		rec(1, 0, 1, job.Hour, 5*job.Hour, true),
		rec(2, 0, 1, job.Hour, 9*job.Hour, true),
	}}
	s := Summarize(res)
	e := ExcessiveWait(res, s.MaxWaitH)
	if e.Count != 0 || e.TotalH != 0 {
		t.Errorf("excess w.r.t. own max = %+v, want zero", e)
	}
}

func TestComputeClassGrid(t *testing.T) {
	res := &sim.Result{Records: []sim.Record{
		// 5-minute 1-node job waited 1h: class (<=10m, 1).
		rec(1, 0, 1, 5*job.Minute, job.Hour, true),
		// Another in the same class waited 3h.
		rec(2, 0, 1, 5*job.Minute, 3*job.Hour, true),
		// 12-hour 128-node job waited 10h: class (>8h, 65-128).
		rec(3, 0, 128, 12*job.Hour, 10*job.Hour, true),
	}}
	g := ComputeClassGrid(res)
	if g.Count[0][0] != 2 {
		t.Fatalf("Count[0][0] = %d, want 2", g.Count[0][0])
	}
	if g.AvgWaitH[0][0] != 2 {
		t.Errorf("AvgWaitH[0][0] = %v, want 2", g.AvgWaitH[0][0])
	}
	last := len(g.RuntimeClasses) - 1
	lastN := len(g.NodeClasses) - 1
	if g.Count[last][lastN] != 1 || g.AvgWaitH[last][lastN] != 10 {
		t.Errorf("wide-long cell = %d jobs, %v h", g.Count[last][lastN], g.AvgWaitH[last][lastN])
	}
	// Total classified jobs equals measured jobs.
	total := 0
	for ti := range g.Count {
		for ni := range g.Count[ti] {
			total += g.Count[ti][ni]
		}
	}
	if total != 3 {
		t.Errorf("grid total = %d, want 3", total)
	}
}

func TestCheckConservation(t *testing.T) {
	good := &sim.Result{Records: []sim.Record{rec(1, 0, 1, 100, 50, true)}}
	if err := CheckConservation(good); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	early := &sim.Result{Records: []sim.Record{rec(1, 100, 1, 100, 50, true)}}
	if err := CheckConservation(early); err == nil {
		t.Error("start-before-submit accepted")
	}
	bad := &sim.Result{Records: []sim.Record{{
		Job:   job.Job{ID: 1, Nodes: 1, Runtime: 100, Request: 100},
		Start: 0, End: 50, Measured: true,
	}}}
	if err := CheckConservation(bad); err == nil {
		t.Error("end != start+runtime accepted")
	}
}

func TestHours(t *testing.T) {
	if got := Hours(2 * job.Hour); got != 2 {
		t.Errorf("Hours = %v", got)
	}
	if got := Hours(30 * job.Minute); got != 0.5 {
		t.Errorf("Hours = %v", got)
	}
}
