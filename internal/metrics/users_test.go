package metrics

import (
	"math"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func urec(id, user int, nodes int, runtime job.Duration, start job.Time) sim.Record {
	return sim.Record{
		Job:      job.Job{ID: id, User: user, Nodes: nodes, Runtime: runtime, Request: runtime},
		Start:    start,
		End:      start + runtime,
		Measured: true,
	}
}

func TestPerUserAggregation(t *testing.T) {
	res := &sim.Result{Records: []sim.Record{
		urec(1, 7, 4, job.Hour, 0),          // user 7: wait 0
		urec(2, 7, 4, job.Hour, 2*job.Hour), // user 7: wait 2h
		urec(3, 8, 1, job.Hour, job.Hour),   // user 8: wait 1h
		{Job: job.Job{ID: 4, User: 0, Nodes: 1, Runtime: 60, Request: 60}, Measured: true}, // unknown: skipped
		{Job: job.Job{ID: 5, User: 9, Nodes: 1, Runtime: 60, Request: 60}, Measured: false},
	}}
	users := PerUser(res)
	if len(users) != 2 {
		t.Fatalf("%d users, want 2", len(users))
	}
	// Heaviest first: user 7 has 8 node-hours, user 8 has 1.
	if users[0].User != 7 || users[1].User != 8 {
		t.Fatalf("order: %v", users)
	}
	u7 := users[0]
	if u7.Jobs != 2 || u7.AvgWaitH != 1 || u7.MaxWaitH != 2 {
		t.Errorf("user 7 summary: %+v", u7)
	}
	if math.Abs(u7.DemandNodeH-8) > 1e-9 {
		t.Errorf("user 7 demand %v, want 8 node-hours", u7.DemandNodeH)
	}
}

func TestSplitByDemand(t *testing.T) {
	users := []UserSummary{
		{User: 1, Jobs: 2, DemandNodeH: 100, AvgBsld: 10},
		{User: 2, Jobs: 2, DemandNodeH: 10, AvgBsld: 2},
		{User: 3, Jobs: 6, DemandNodeH: 5, AvgBsld: 4},
	}
	heavy, light := SplitByDemand(users)
	if heavy != 10 {
		t.Errorf("heavy = %v, want 10 (user 1 alone covers half the demand)", heavy)
	}
	// light: users 2 and 3, job-weighted: (2*2 + 4*6)/8 = 3.5.
	if math.Abs(light-3.5) > 1e-9 {
		t.Errorf("light = %v, want 3.5", light)
	}
}

func TestSplitByDemandEmpty(t *testing.T) {
	h, l := SplitByDemand(nil)
	if h != 0 || l != 0 {
		t.Errorf("empty split = %v/%v", h, l)
	}
}

func TestUtilization(t *testing.T) {
	res := &sim.Result{
		Capacity:     4,
		MeasureStart: 100,
		MeasureEnd:   200,
		Records: []sim.Record{
			// Fully inside the window: 2 nodes x 50s.
			{Job: job.Job{ID: 1, Nodes: 2, Runtime: 50, Request: 50}, Start: 100, End: 150},
			// Straddles the start: only [100, 120) counts, 1 node.
			{Job: job.Job{ID: 2, Nodes: 1, Runtime: 70, Request: 70}, Start: 50, End: 120},
			// Entirely outside: contributes nothing.
			{Job: job.Job{ID: 3, Nodes: 4, Runtime: 50, Request: 50}, Start: 300, End: 350},
		},
	}
	// busy = 2*50 + 1*20 = 120 over 4*100 = 400 -> 0.3.
	if got := Utilization(res); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.3", got)
	}
}

func TestUtilizationDegenerate(t *testing.T) {
	if got := Utilization(&sim.Result{}); got != 0 {
		t.Errorf("Utilization of empty result = %v", got)
	}
	if got := Utilization(&sim.Result{Capacity: 4, MeasureStart: 10, MeasureEnd: 10}); got != 0 {
		t.Errorf("Utilization with empty window = %v", got)
	}
}

// TestUtilizationNeverExceedsOne on a saturating run.
func TestUtilizationBounded(t *testing.T) {
	res := &sim.Result{Capacity: 2, MeasureStart: 0, MeasureEnd: 100}
	res.Records = []sim.Record{
		{Job: job.Job{ID: 1, Nodes: 2, Runtime: 100, Request: 100}, Start: 0, End: 100},
	}
	if got := Utilization(res); got != 1 {
		t.Errorf("Utilization = %v, want 1", got)
	}
}
