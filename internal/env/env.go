// Package env exposes the simulator as a step/observe/act environment
// — the gym-style export mirroring the deep-batch-scheduler
// environments: an external optimizer (RL, black-box search) observes
// queue and machine feature vectors, returns scheduling decisions, and
// is rewarded on the same uniform objective the search policies
// optimize, against the exact simulator the differential tests trust.
//
// The Env is built directly on sim.Stepper — the same step/apply
// primitives sim.Run loops over — so an agent that feeds back a native
// policy's own decisions reproduces that policy's schedule
// bit-identically by construction (the replay keystone pins this).
// cmd/schedenv serves the environment over a JSON-lines stdio
// protocol (see wire.go).
package env

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"schedsearch/internal/cluster"
	"schedsearch/internal/core"
	"schedsearch/internal/metrics"
	"schedsearch/internal/sim"
)

// Config describes one environment: the workload episode and the
// policy resolver backing "policy" actions.
type Config struct {
	// Input is the episode workload (a generated suite month, a replay,
	// anything sim.Run accepts).
	Input sim.Input
	// Label names the environment in results and errors.
	Label string
	// Resolve builds a named policy for Action kind "policy" (the
	// facade's ParsePolicy, typically). nil disables policy actions.
	Resolve func(name string) (sim.Policy, error)
}

// Env is one episode of the scheduling environment. Not goroutine-
// safe. Create with New, drive with Reset then Step.
type Env struct {
	cfg       Config
	st        *sim.Stepper
	cur       *sim.Snapshot
	seq       int64
	total     float64
	scorer    *core.PlanScorer
	policies  map[string]sim.Policy
	obs       Observation
	prof      *cluster.Profile
	startsBuf []int
	seen      []bool
	undo      []cluster.Placement
}

// New builds the environment; call Reset to begin the episode.
func New(cfg Config) (*Env, error) {
	if cfg.Label == "" {
		cfg.Label = "env"
	}
	return &Env{cfg: cfg, scorer: core.NewPlanScorer()}, nil
}

// Reset (re)starts the episode from the beginning of the workload and
// returns the first observation. A nil observation with a nil error
// means the episode has no decision points at all (empty workload).
// Policy instances resolved by earlier episodes are discarded, so
// every episode is bit-reproducible from the input alone.
func (e *Env) Reset() (*Observation, error) {
	st, err := sim.NewStepper(e.cfg.Input, e.cfg.Label)
	if err != nil {
		return nil, err
	}
	e.st = st
	e.cur = nil
	e.seq = 0
	e.total = 0
	e.policies = nil
	snap, err := st.Next()
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, nil
	}
	e.cur = snap
	return e.observe(snap), nil
}

// Step commits the action for the pending observation, advances to the
// next decision point, and returns the next observation, the reward of
// this action (negated plan score — higher is better), and whether the
// episode completed (obs is nil when done). Invalid actions (bad
// indices, unknown policy, wire-level infeasibility) return an error
// WITHOUT consuming the decision — the caller may retry; simulator-
// level errors poison the episode.
func (e *Env) Step(a Action) (obs *Observation, reward float64, done bool, err error) {
	if e.st == nil {
		return nil, 0, false, fmt.Errorf("env: Step before Reset")
	}
	if e.cur == nil {
		return nil, 0, true, fmt.Errorf("env: Step on a completed episode")
	}
	starts, err := e.resolve(a)
	if err != nil {
		return nil, 0, false, err
	}
	reward = -e.scorer.Scalar(e.scorer.Score(e.cur, starts))
	if _, err := e.st.Apply(starts); err != nil {
		e.cur = nil
		return nil, 0, false, err
	}
	e.total += reward
	snap, err := e.st.Next()
	if err != nil {
		e.cur = nil
		return nil, 0, false, err
	}
	if snap == nil {
		e.cur = nil
		return nil, reward, true, nil
	}
	e.cur = snap
	return e.observe(snap), reward, false, nil
}

// Result returns the completed episode's simulation result (nil until
// Step reported done).
func (e *Env) Result() *sim.Result {
	if e.st == nil {
		return nil
	}
	return e.st.Result()
}

// TotalReward is the summed reward of the episode so far.
func (e *Env) TotalReward() float64 { return e.total }

// Decisions is the number of decision points surfaced so far.
func (e *Env) Decisions() int {
	if e.st == nil {
		return 0
	}
	return e.st.Decisions()
}

func (e *Env) observe(snap *sim.Snapshot) *Observation {
	e.seq++
	o := &e.obs
	o.Seq = e.seq
	o.NowS = int64(snap.Now)
	o.Capacity = snap.Capacity
	o.FreeNodes = snap.FreeNodes
	o.Running = o.Running[:0]
	for _, r := range snap.Running {
		rem := int64(r.PredictedEnd - snap.Now)
		if rem < 1 {
			rem = 1
		}
		o.Running = append(o.Running, RunningFeature{
			JobID: r.ID, User: r.User, Nodes: r.Nodes,
			StartS: int64(r.Start), RemainingS: rem,
		})
	}
	o.Queue = o.Queue[:0]
	for _, w := range snap.Queue {
		o.Queue = append(o.Queue, QueueFeature{
			QueuePos: w.QueuePos, JobID: w.Job.ID, User: w.Job.User,
			Nodes:     w.Job.Nodes,
			EstimateS: int64(w.Estimate),
			RequestS:  int64(w.Job.Request),
			WaitS:     int64(snap.Now - w.Job.Submit),
		})
	}
	return o
}

// resolve turns an action into QueuePos starts for the pending
// snapshot, validating at the wire level so bad actions never reach
// (and poison) the ledger.
func (e *Env) resolve(a Action) ([]int, error) {
	snap := e.cur
	n := len(snap.Queue)
	switch a.Kind {
	case "start":
		e.seen = resizeSeen(e.seen, n)
		width := 0
		for _, qi := range a.Start {
			if qi < 0 || qi >= n {
				return nil, fmt.Errorf("env: start index %d out of range [0,%d)", qi, n)
			}
			if e.seen[qi] {
				return nil, fmt.Errorf("env: duplicate start index %d", qi)
			}
			e.seen[qi] = true
			width += snap.Queue[qi].Job.Nodes
		}
		if width > snap.FreeNodes {
			return nil, fmt.Errorf("env: starts need %d nodes, only %d free", width, snap.FreeNodes)
		}
		return append(e.startsBuf[:0], a.Start...), nil
	case "order":
		if len(a.Order) != n {
			return nil, fmt.Errorf("env: order has %d entries for a queue of %d", len(a.Order), n)
		}
		e.seen = resizeSeen(e.seen, n)
		for _, qi := range a.Order {
			if qi < 0 || qi >= n || e.seen[qi] {
				return nil, fmt.Errorf("env: order is not a permutation of [0,%d)", n)
			}
			e.seen[qi] = true
		}
		return e.orderStarts(snap, a.Order), nil
	case "policy":
		if e.cfg.Resolve == nil {
			return nil, fmt.Errorf("env: policy actions are not enabled")
		}
		p, ok := e.policies[a.Policy]
		if !ok {
			var err error
			p, err = e.cfg.Resolve(a.Policy)
			if err != nil {
				return nil, fmt.Errorf("env: %w", err)
			}
			if e.policies == nil {
				e.policies = make(map[string]sim.Policy)
			}
			e.policies[a.Policy] = p
		}
		return append(e.startsBuf[:0], p.Decide(snap)...), nil
	default:
		return nil, fmt.Errorf("env: unknown action kind %q (want start, order or policy)", a.Kind)
	}
}

// orderStarts evaluates a full queue ordering the way the search
// policies commit one: each job placed at its earliest fit in order,
// and the jobs whose placement lands at now start now.
func (e *Env) orderStarts(snap *sim.Snapshot, order []int) []int {
	if e.prof == nil {
		e.prof = cluster.New(snap.Capacity, snap.Now)
	} else {
		e.prof.Reset(snap.Capacity, snap.Now)
	}
	for _, r := range snap.Running {
		end := r.PredictedEnd
		if end <= snap.Now {
			end = snap.Now + 1
		}
		e.prof.Place(snap.Now, r.Nodes, end-snap.Now)
	}
	starts := e.startsBuf[:0]
	e.undo = e.undo[:0]
	for _, qi := range order {
		w := snap.Queue[qi]
		est := w.Estimate
		if est < 1 {
			est = 1
		}
		at, pl := e.prof.PlaceEarliest(snap.Now, w.Job.Nodes, est)
		e.undo = append(e.undo, pl)
		if at == snap.Now {
			starts = append(starts, qi)
		}
	}
	for i := len(e.undo) - 1; i >= 0; i-- {
		e.prof.Undo(e.undo[i])
	}
	e.startsBuf = starts
	return starts
}

func resizeSeen(b []bool, n int) []bool {
	b = b[:0]
	for i := 0; i < n; i++ {
		b = append(b, false)
	}
	return b
}

// ServeConfig configures the JSON-lines stdio driver.
type ServeConfig struct {
	// NewInput builds a fresh episode workload for each reset.
	NewInput func() (sim.Input, error)
	// Resolve backs "policy" actions.
	Resolve func(name string) (sim.Policy, error)
	// Label names the environment in the hello line.
	Label string
}

// Serve speaks the wire protocol over r/w: hello first, then one JSON
// response line per request line (reset → observe, act → observe or
// done, close → return). Malformed or out-of-protocol requests get an
// error line and the session continues; episode-poisoning simulator
// errors also emit an error line (reset recovers). Returns on close,
// EOF, or a transport error.
func Serve(cfg ServeConfig, r io.Reader, w io.Writer) error {
	in, err := cfg.NewInput()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(Hello{
		Type: "hello", SchemaVersion: SchemaVersion,
		Capacity: in.Capacity, Jobs: len(in.Jobs), Label: cfg.Label,
	}); err != nil {
		return err
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var e *Env         // current episode (nil before first reset / after poison)
	inputReady := true // `in` holds an unused episode input
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			if err := enc.Encode(ErrorMsg{Type: "error", Error: "malformed request: " + err.Error()}); err != nil {
				return err
			}
			continue
		}
		switch req.Type {
		case "close":
			return nil
		case "reset":
			if !inputReady {
				fresh, err := cfg.NewInput()
				if err != nil {
					return err
				}
				in = fresh
			}
			inputReady = false
			env, err := New(Config{Input: in, Label: cfg.Label, Resolve: cfg.Resolve})
			if err != nil {
				return err
			}
			obs, err := env.Reset()
			if err != nil {
				if err := enc.Encode(ErrorMsg{Type: "error", Error: err.Error()}); err != nil {
					return err
				}
				continue
			}
			if obs == nil {
				if err := enc.Encode(DoneMsg{Type: "done"}); err != nil {
					return err
				}
				continue
			}
			e = env
			if err := enc.Encode(ObserveMsg{Type: "observe", Observation: *obs}); err != nil {
				return err
			}
		case "act":
			if e == nil {
				if err := enc.Encode(ErrorMsg{Type: "error", Error: "no active episode (send reset)"}); err != nil {
					return err
				}
				continue
			}
			obs, reward, done, err := e.Step(req.Action)
			if err != nil {
				poisoned := e.cur == nil
				if poisoned {
					e = nil
				}
				if err := enc.Encode(ErrorMsg{Type: "error", Error: err.Error()}); err != nil {
					return err
				}
				continue
			}
			if done {
				res := e.Result()
				msg := DoneMsg{
					Type: "done", Reward: reward, TotalReward: e.TotalReward(),
					Decisions: e.Decisions(), Jobs: len(res.Records),
					Summary: metrics.Summarize(res),
				}
				e = nil
				if err := enc.Encode(msg); err != nil {
					return err
				}
				continue
			}
			if err := enc.Encode(ObserveMsg{Type: "observe", Reward: reward, Observation: *obs}); err != nil {
				return err
			}
		default:
			if err := enc.Encode(ErrorMsg{Type: "error", Error: fmt.Sprintf("unknown request type %q", req.Type)}); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}
