package env

import "schedsearch/internal/metrics"

// SchemaVersion is the version of the wire schema below. The driver
// announces it in the hello message; clients must check it before
// interpreting observations. Additive changes (new fields) keep the
// version; renames, removals or semantic changes bump it.
const SchemaVersion = 1

// Observation is the feature-vector view of one decision point: the
// machine, its running jobs and the waiting queue, exactly the state a
// native policy sees in sim.Snapshot, flattened to stable wire types.
type Observation struct {
	// Seq numbers decision points from 1 within an episode.
	Seq int64 `json:"seq"`
	// NowS is the decision time in seconds since episode start.
	NowS int64 `json:"now_s"`
	// Capacity and FreeNodes describe the machine.
	Capacity  int `json:"capacity"`
	FreeNodes int `json:"free_nodes"`
	// Running lists executing jobs with their predicted remaining
	// runtimes (policies never see actual ends).
	Running []RunningFeature `json:"running"`
	// Queue lists waiting jobs; QueuePos indices are what actions
	// reference.
	Queue []QueueFeature `json:"queue"`
}

// RunningFeature is one executing job.
type RunningFeature struct {
	JobID      int   `json:"job_id"`
	User       int   `json:"user"`
	Nodes      int   `json:"nodes"`
	StartS     int64 `json:"start_s"`
	RemainingS int64 `json:"remaining_s"`
}

// QueueFeature is one waiting job.
type QueueFeature struct {
	QueuePos  int   `json:"queue_pos"`
	JobID     int   `json:"job_id"`
	User      int   `json:"user"`
	Nodes     int   `json:"nodes"`
	EstimateS int64 `json:"estimate_s"`
	RequestS  int64 `json:"request_s"`
	WaitS     int64 `json:"wait_s"`
}

// Action is one decision fed back into the environment.
type Action struct {
	// Kind selects the decision form:
	//   "start"  — Start lists the QueuePos indices to start now
	//              (the raw sim.Policy contract);
	//   "order"  — Order is a full queue permutation; the environment
	//              places it greedily (earliest fit per job, in order)
	//              and starts the jobs whose placement lands at now —
	//              exactly how the search policies commit an ordering;
	//   "policy" — delegate this decision to the named built-in policy
	//              (resolved once per episode and kept, so stateful
	//              policies carry their state across steps).
	Kind   string `json:"kind"`
	Start  []int  `json:"start,omitempty"`
	Order  []int  `json:"order,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// Protocol messages for the JSON-lines stdio driver (cmd/schedenv).
// The driver writes exactly one JSON object per line; clients write
// Request lines. A session is: hello, then per episode {reset →
// observe, (act → observe)*, act → done}, any number of episodes,
// close. Unknown or malformed requests get an error line and the
// session continues; errors inside the simulator poison the episode
// (reset starts a fresh one).

// Request is a client → driver line.
type Request struct {
	// Type is "reset", "act" or "close".
	Type string `json:"type"`
	// Action rides on "act" requests.
	Action Action `json:"action,omitempty"`
}

// Hello is the driver's first line.
type Hello struct {
	Type          string `json:"type"` // "hello"
	SchemaVersion int    `json:"schema_version"`
	Capacity      int    `json:"capacity"`
	Jobs          int    `json:"jobs"`
	Label         string `json:"label,omitempty"`
}

// ObserveMsg carries the next observation plus the reward of the
// action that produced it (0 on the first observation of an episode).
type ObserveMsg struct {
	Type        string      `json:"type"` // "observe"
	Reward      float64     `json:"reward"`
	Observation Observation `json:"observation"`
}

// DoneMsg ends an episode: the final reward, the episode totals and
// the run's summary measures.
type DoneMsg struct {
	Type        string          `json:"type"` // "done"
	Reward      float64         `json:"reward"`
	TotalReward float64         `json:"total_reward"`
	Decisions   int             `json:"decisions"`
	Jobs        int             `json:"jobs"`
	Summary     metrics.Summary `json:"summary"`
}

// ErrorMsg reports a rejected request or a poisoned episode.
type ErrorMsg struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}
