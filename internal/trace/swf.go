// Package trace reads and writes job traces in the Standard Workload
// Format (SWF) used by the Parallel Workloads Archive, so synthesized
// workloads can be exported for other simulators and real SWF traces can
// be fed into this one.
//
// SWF is a line-oriented format: comment lines begin with ';', data
// lines carry 18 whitespace-separated integer fields. This package maps
// the fields the simulator uses (job number, submit time, run time,
// allocated processors, requested time) and emits -1 for the rest.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"schedsearch/internal/job"
)

// Header carries the SWF comment-header metadata worth preserving.
type Header struct {
	Computer string
	Note     string
	MaxNodes int
}

// swfFields is the number of columns in an SWF record.
const swfFields = 18

// WriteSWF writes jobs as an SWF trace. Node counts are written to the
// "Number of Allocated Processors" field (field 5), matching archive
// conventions for node-allocated machines.
func WriteSWF(w io.Writer, jobs []job.Job, h Header) error {
	bw := bufio.NewWriter(w)
	if h.Computer != "" {
		fmt.Fprintf(bw, "; Computer: %s\n", h.Computer)
	}
	if h.MaxNodes > 0 {
		fmt.Fprintf(bw, "; MaxNodes: %d\n", h.MaxNodes)
	}
	if h.Note != "" {
		fmt.Fprintf(bw, "; Note: %s\n", h.Note)
	}
	fmt.Fprintf(bw, "; Fields: job submit wait runtime procs avgcpu mem reqprocs reqtime reqmem status user group app queue partition prevjob thinktime\n")
	for _, j := range jobs {
		// job submit wait run procs avgcpu usedmem reqprocs reqtime
		// reqmem status uid gid app queue partition prevjob thinktime
		fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, j.Nodes, j.Nodes, j.Request, j.User)
	}
	return bw.Flush()
}

// ReadSWF parses an SWF trace into jobs. Records with unusable fields
// (non-positive processors, negative submit, missing runtime) are
// skipped, matching how simulators consume archive traces. The requested
// time falls back to the runtime when absent.
func ReadSWF(r io.Reader) ([]job.Job, Header, error) {
	var h Header
	var jobs []job.Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeaderLine(line, &h)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, h, fmt.Errorf("trace: line %d: %d fields, want >= 5", lineNo, len(fields))
		}
		get := func(i int) int64 {
			if i >= len(fields) {
				return -1
			}
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return -1
			}
			return v
		}
		id := get(0)
		submit := get(1)
		runtime := get(3)
		procs := get(4)
		if procs <= 0 {
			procs = get(7) // fall back to requested processors
		}
		reqTime := get(8)
		if submit < 0 || runtime < 0 || procs <= 0 {
			continue
		}
		if reqTime < runtime {
			reqTime = runtime
		}
		user := get(11)
		if user < 0 {
			user = 0
		}
		jobs = append(jobs, job.Job{
			ID:      int(id),
			Submit:  submit,
			Nodes:   int(procs),
			Runtime: runtime,
			Request: reqTime,
			User:    int(user),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, h, fmt.Errorf("trace: %w", err)
	}
	return jobs, h, nil
}

func parseHeaderLine(line string, h *Header) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	switch {
	case strings.HasPrefix(body, "Computer:"):
		h.Computer = strings.TrimSpace(strings.TrimPrefix(body, "Computer:"))
	case strings.HasPrefix(body, "Note:"):
		h.Note = strings.TrimSpace(strings.TrimPrefix(body, "Note:"))
	case strings.HasPrefix(body, "MaxNodes:"):
		if n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(body, "MaxNodes:"))); err == nil {
			h.MaxNodes = n
		}
	}
}
