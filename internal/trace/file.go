package trace

import (
	"compress/gzip"
	"fmt"
	"os"
	"strings"

	"schedsearch/internal/job"
)

// ReadSWFFile reads an SWF trace from disk, transparently decompressing
// gzip files (the Parallel Workloads Archive distributes traces as
// .swf.gz). Compression is detected by the gzip magic bytes, not the
// file name, so renamed files still work.
func ReadSWFFile(path string) ([]job.Job, Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Header{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()

	var magic [2]byte
	n, err := f.Read(magic[:])
	if err != nil && n == 0 {
		// Empty file parses as an empty trace.
		return nil, Header{}, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, Header{}, fmt.Errorf("trace: %w", err)
	}
	if n == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, Header{}, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer gz.Close()
		return ReadSWF(gz)
	}
	return ReadSWF(f)
}

// WriteSWFFile writes an SWF trace to disk, gzip-compressing when the
// path ends in ".gz".
func WriteSWFFile(path string, jobs []job.Job, h Header) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := WriteSWF(gz, jobs, h); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		return f.Close()
	}
	if err := WriteSWF(f, jobs, h); err != nil {
		return err
	}
	return f.Close()
}
