package trace

import (
	"bytes"
	"strings"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 100, Request: 300},
		{ID: 2, Submit: 50, Nodes: 128, Runtime: 86400, Request: 86400},
		{ID: 3, Submit: 99, Nodes: 1, Runtime: 0, Request: 0},
	}
	var buf bytes.Buffer
	h := Header{Computer: "synthetic", MaxNodes: 128, Note: "test"}
	if err := WriteSWF(&buf, jobs, h); err != nil {
		t.Fatal(err)
	}
	got, gotH, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Computer != "synthetic" || gotH.MaxNodes != 128 || gotH.Note != "test" {
		t.Errorf("header round trip: %+v", gotH)
	}
	if len(got) != len(jobs) {
		t.Fatalf("%d jobs, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i] != jobs[i] {
			t.Errorf("job %d: %+v, want %+v", i, got[i], jobs[i])
		}
	}
}

func TestReadSkipsUnusableRecords(t *testing.T) {
	const data = `; Comment
1 100 -1 50 4 -1 -1 4 60 -1 1 -1 -1 -1 -1 -1 -1 -1
2 100 -1 50 0 -1 -1 0 60 -1 1 -1 -1 -1 -1 -1 -1 -1
3 -5 -1 50 4 -1 -1 4 60 -1 1 -1 -1 -1 -1 -1 -1 -1
4 100 -1 -1 4 -1 -1 4 60 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	jobs, _, err := ReadSWF(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != 1 {
		t.Errorf("jobs = %+v, want only job 1", jobs)
	}
}

func TestReadFallsBackToRequestedProcs(t *testing.T) {
	const data = `1 100 -1 50 -1 -1 -1 16 60 -1 1 -1 -1 -1 -1 -1 -1 -1`
	jobs, _, err := ReadSWF(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Nodes != 16 {
		t.Fatalf("jobs = %+v, want 16 nodes via requested procs", jobs)
	}
}

func TestReadClampsRequestBelowRuntime(t *testing.T) {
	const data = `1 100 -1 500 4 -1 -1 4 60 -1 1 -1 -1 -1 -1 -1 -1 -1`
	jobs, _, err := ReadSWF(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Request != 500 {
		t.Errorf("request = %d, want clamped to runtime 500", jobs[0].Request)
	}
}

func TestReadRejectsTruncatedLine(t *testing.T) {
	if _, _, err := ReadSWF(strings.NewReader("1 2 3")); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestReadEmptyAndBlank(t *testing.T) {
	jobs, _, err := ReadSWF(strings.NewReader("\n\n; only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("jobs = %v", jobs)
	}
}

// TestGeneratedMonthRoundTrips exports a generated month and reads it
// back, verifying the pipeline the wlgen CLI uses.
func TestGeneratedMonthRoundTrips(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 3, JobScale: 0.05})
	m, err := suite.Month("6/03")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, m.Jobs, Header{MaxNodes: 128}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m.Jobs) {
		t.Fatalf("%d jobs, want %d", len(got), len(m.Jobs))
	}
	for i := range got {
		if got[i] != m.Jobs[i] {
			t.Fatalf("job %d differs after round trip", i)
		}
	}
}
