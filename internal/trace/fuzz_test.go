package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSWF checks the parser never panics and that whatever it
// accepts round-trips through the writer.
func FuzzReadSWF(f *testing.F) {
	f.Add("; Computer: x\n1 0 -1 10 4 -1 -1 4 20 -1 1 7 -1 -1 -1 -1 -1 -1\n")
	f.Add("1 2 3 4 5\n")
	f.Add("; only a comment")
	f.Add("")
	f.Add("-1 -1 -1 -1 -1\n1 0 0 0 1 0 0 1 0 0 1 0 0 0 0 0 0 0")
	f.Add("9999999999999999999999 0 0 1 1")
	f.Fuzz(func(t *testing.T, data string) {
		jobs, h, err := ReadSWF(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, j := range jobs {
			if j.Nodes <= 0 || j.Runtime < 0 || j.Submit < 0 || j.Request < j.Runtime {
				t.Fatalf("parser accepted unusable job %+v", j)
			}
		}
		// Write what we parsed and re-read: must be identical.
		var buf bytes.Buffer
		if err := WriteSWF(&buf, jobs, h); err != nil {
			t.Fatal(err)
		}
		again, _, err := ReadSWF(&buf)
		if err != nil {
			t.Fatalf("rewritten trace rejected: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(jobs), len(again))
		}
		for i := range jobs {
			if again[i] != jobs[i] {
				t.Fatalf("round trip changed job %d: %+v -> %+v", i, jobs[i], again[i])
			}
		}
	})
}
