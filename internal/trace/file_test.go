package trace

import (
	"os"
	"path/filepath"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/workload"
)

func sampleJobs() []job.Job {
	return []job.Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 100, Request: 300, User: 7},
		{ID: 2, Submit: 50, Nodes: 128, Runtime: 86400, Request: 86400, User: 8},
	}
}

func TestFileRoundTripPlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.swf")
	if err := WriteSWFFile(path, sampleJobs(), Header{MaxNodes: 128}); err != nil {
		t.Fatal(err)
	}
	jobs, h, err := ReadSWFFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxNodes != 128 || len(jobs) != 2 || jobs[0] != sampleJobs()[0] {
		t.Errorf("round trip: %d jobs, header %+v", len(jobs), h)
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.swf.gz")
	if err := WriteSWFFile(path, sampleJobs(), Header{Computer: "x"}); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzipped (magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("written file is not gzip")
	}
	jobs, h, err := ReadSWFFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Computer != "x" || len(jobs) != 2 || jobs[1] != sampleJobs()[1] {
		t.Errorf("gzip round trip: %d jobs, header %+v", len(jobs), h)
	}
}

func TestReadSWFFileDetectsGzipByMagicNotName(t *testing.T) {
	// A gzipped file without the .gz suffix must still decompress.
	dir := t.TempDir()
	gzPath := filepath.Join(dir, "real.gz")
	if err := WriteSWFFile(gzPath, sampleJobs(), Header{}); err != nil {
		t.Fatal(err)
	}
	renamed := filepath.Join(dir, "renamed.swf")
	data, _ := os.ReadFile(gzPath)
	if err := os.WriteFile(renamed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, _, err := ReadSWFFile(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("%d jobs", len(jobs))
	}
}

func TestReadSWFFileErrors(t *testing.T) {
	if _, _, err := ReadSWFFile(filepath.Join(t.TempDir(), "missing.swf")); err == nil {
		t.Error("missing file accepted")
	}
	// Empty file parses as an empty trace.
	empty := filepath.Join(t.TempDir(), "empty.swf")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, _, err := ReadSWFFile(empty)
	if err != nil || len(jobs) != 0 {
		t.Errorf("empty file: %v jobs, err %v", jobs, err)
	}
}

// TestSuiteMonthFileRoundTripGzip exports a whole suite month — the
// month's jobs plus its warm-up/cool-down margins, exactly the slice a
// replay consumes — through the gzip file path and reads it back: every
// job attribute and the submit order must survive, so a month exported
// with wlgen replays identically to the in-memory suite.
func TestSuiteMonthFileRoundTripGzip(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 5, JobScale: 0.05})
	in, _, err := suite.Input("9/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Jobs) == 0 {
		t.Fatal("empty month slice")
	}
	path := filepath.Join(t.TempDir(), "month.swf.gz")
	if err := WriteSWFFile(path, in.Jobs, Header{MaxNodes: in.Capacity, Computer: "suite 9/03"}); err != nil {
		t.Fatal(err)
	}
	got, h, err := ReadSWFFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxNodes != in.Capacity {
		t.Errorf("header MaxNodes %d, want %d", h.MaxNodes, in.Capacity)
	}
	if len(got) != len(in.Jobs) {
		t.Fatalf("%d jobs after round trip, want %d", len(got), len(in.Jobs))
	}
	for i := range got {
		if got[i] != in.Jobs[i] {
			t.Fatalf("job %d differs after gzip file round trip:\n got %+v\nwant %+v", i, got[i], in.Jobs[i])
		}
		if i > 0 && got[i].Submit < got[i-1].Submit {
			t.Fatalf("submit order broken at %d", i)
		}
	}
}
