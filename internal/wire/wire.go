// Package wire holds the HTTP/JSON wire schema shared by the server
// (which produces and consumes these bodies in its handlers) and by
// federation.RemoteShard (which speaks the same schema as a client).
//
// It exists as its own leaf package so that the client side never has
// to import the server: internal/server re-exports every type here
// under its original name via type aliases, so handlers and existing
// callers are unaffected, while internal/federation imports only this
// package. That keeps server tests free to import federation (and
// ingest tests free to import federation, which batches through the
// server) without creating an import cycle through the test binary.
//
// The package may import only leaf domain packages (internal/job);
// anything needing engine or sim types stays in internal/server.
package wire

import "schedsearch/internal/job"

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// ID optionally assigns the job ID (trace replay clients); 0 lets
	// the engine assign the next free one. A taken ID is a 409.
	ID int `json:"id"`
	// Nodes is the number of whole nodes requested.
	Nodes int `json:"nodes"`
	// RuntimeS is the actual runtime in seconds (the engine
	// self-completes the job after this long; a deployment against a
	// real resource manager would take completions from it instead).
	RuntimeS job.Duration `json:"runtime_s"`
	// RequestS is the user-requested runtime limit in seconds;
	// defaults to runtime_s.
	RequestS job.Duration `json:"request_s"`
	// User identifies the submitting user (optional).
	User int `json:"user"`
}

// JobResponse describes one job's current state.
type JobResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	Nodes int    `json:"nodes"`
	User  int    `json:"user"`

	SubmitS   job.Time     `json:"submit_s"`
	RuntimeS  job.Duration `json:"runtime_s"`
	RequestS  job.Duration `json:"request_s"`
	EstimateS job.Duration `json:"estimate_s,omitempty"`

	// StartS/EndS are set once known; WaitS is the wait so far for
	// waiting jobs and the final wait otherwise.
	StartS *job.Time `json:"start_s,omitempty"`
	EndS   *job.Time `json:"end_s,omitempty"`
	WaitS  job.Time  `json:"wait_s"`
	// BoundedSlowdown is set for completed jobs (the paper's measure).
	BoundedSlowdown *float64 `json:"bounded_slowdown,omitempty"`
	NodeIDs         []int    `json:"node_ids,omitempty"`
}

// QueueResponse is the GET /v1/queue body.
type QueueResponse struct {
	Length int           `json:"length"`
	Jobs   []JobResponse `json:"jobs"`
}

// MachineResponse is the GET /v1/machine body.
type MachineResponse struct {
	NowS      job.Time     `json:"now_s"`
	Capacity  int          `json:"capacity"`
	FreeNodes int          `json:"free_nodes"`
	Running   []RunningJob `json:"running"`
}

// RunningJob is one executing job in the machine snapshot.
type RunningJob struct {
	ID            int      `json:"id"`
	Nodes         int      `json:"nodes"`
	User          int      `json:"user"`
	StartS        job.Time `json:"start_s"`
	PredictedEndS job.Time `json:"predicted_end_s"`
}

// DrainResponse is the POST /v1/drain body.
type DrainResponse struct {
	Draining int `json:"draining"`
	Running  int `json:"running"`
}

// ErrorResponse is every error body: a human-readable message plus a
// stable machine-readable code clients can switch on.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// WireJob is job.Job on the wire (job.Job itself carries no JSON tags;
// the wire names follow the public API's submit_s/runtime_s style).
type WireJob struct {
	ID       int          `json:"id"`
	SubmitS  job.Time     `json:"submit_s"`
	Nodes    int          `json:"nodes"`
	RuntimeS job.Duration `json:"runtime_s"`
	RequestS job.Duration `json:"request_s"`
	User     int          `json:"user"`
}

// ToJob converts the wire form back to the domain job.
func (w WireJob) ToJob() job.Job {
	return job.Job{
		ID: w.ID, Submit: w.SubmitS, Nodes: w.Nodes,
		Runtime: w.RuntimeS, Request: w.RequestS, User: w.User,
	}
}

// JobToWire converts a domain job to its wire form.
func JobToWire(j job.Job) WireJob {
	return WireJob{
		ID: j.ID, SubmitS: j.Submit, Nodes: j.Nodes,
		RuntimeS: j.Runtime, RequestS: j.Request, User: j.User,
	}
}

// AdmitResponse is the POST /v1/shard/admit success body.
type AdmitResponse struct {
	ID int `json:"id"`
}

// WithdrawRequest is the POST /v1/shard/withdraw body.
type WithdrawRequest struct {
	ID int `json:"id"`
}

// WithdrawResponse is the POST /v1/shard/withdraw success body.
// Retried marks an idempotent replay: the original withdraw had
// already committed and the same job is returned from its tombstone.
type WithdrawResponse struct {
	Job     WireJob `json:"job"`
	Retried bool    `json:"retried,omitempty"`
}

// LoadResponse is the GET /v1/shard/load body (engine.Load on the
// wire).
type LoadResponse struct {
	Capacity         int   `json:"capacity"`
	FreeNodes        int   `json:"free_nodes"`
	Waiting          int   `json:"waiting"`
	Running          int   `json:"running"`
	QueuedNodeSec    int64 `json:"queued_node_sec"`
	RemainingNodeSec int64 `json:"remaining_node_sec"`
}

// WireRecord is sim.Record on the wire.
type WireRecord struct {
	Job      WireJob  `json:"job"`
	StartS   job.Time `json:"start_s"`
	EndS     job.Time `json:"end_s"`
	NodeIDs  []int    `json:"node_ids,omitempty"`
	Measured bool     `json:"measured"`
}

// RecordsResponse is the GET /v1/shard/records body.
type RecordsResponse struct {
	Records []WireRecord `json:"records"`
}
