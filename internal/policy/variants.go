package policy

import (
	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// SelectiveBackfill implements the Selective-backfill strategy of
// Srinivasan et al. (JSSPP 2002): jobs are backfilled freely until their
// expansion factor ((wait + estimate)/estimate) crosses an adaptive
// threshold, at which point they are granted a reservation. The paper
// (Section 3.2) found it to behave like LXF-backfill on these workloads.
type SelectiveBackfill struct {
	// Threshold is the starting expansion-factor threshold; the policy
	// adapts it toward the running average expansion factor of started
	// jobs.
	Threshold float64

	startedXF  float64 // sum of expansion factors at start
	startedCnt int
}

// NewSelectiveBackfill returns a Selective-backfill policy with the
// conventional initial threshold.
func NewSelectiveBackfill() *SelectiveBackfill { return &SelectiveBackfill{Threshold: 2} }

// Name implements sim.Policy.
func (s *SelectiveBackfill) Name() string { return "Selective-backfill" }

func (s *SelectiveBackfill) threshold() float64 {
	if s.startedCnt == 0 {
		return s.Threshold
	}
	avg := s.startedXF / float64(s.startedCnt)
	if avg < 1 {
		avg = 1
	}
	return avg
}

// Decide implements sim.Policy.
func (s *SelectiveBackfill) Decide(snap *sim.Snapshot) []int {
	// Jobs whose expansion factor exceeds the threshold get
	// reservations, most-expanded first; the rest backfill in LXF
	// order.
	order := PriorityOrder(snap, LXF{})
	thr := s.threshold()
	prof := BuildProfile(snap)
	var starts []int
	for _, qi := range order {
		w := snap.Queue[qi]
		est := estimateOf(w)
		xf := job.BoundedSlowdownAt(w.Job.Submit, est, snap.Now)
		t := prof.EarliestFit(snap.Now, w.Job.Nodes, est)
		switch {
		case t == snap.Now:
			prof.Place(t, w.Job.Nodes, est)
			starts = append(starts, qi)
			s.startedXF += xf
			s.startedCnt++
		case xf >= thr:
			// Expanded past the threshold: hold a reservation.
			prof.Place(t, w.Job.Nodes, est)
		}
	}
	return starts
}

// RelaxedBackfill implements the relaxed backfill strategy of Ward,
// Mahood & West (JSSPP 2002): backfilling a lower-priority job is
// permitted even if it delays the highest-priority waiting job, as long
// as the delay stays within Relax times that job's runtime estimate.
type RelaxedBackfill struct {
	Priority Priority
	// Relax is the tolerated delay of the head job as a fraction of its
	// runtime estimate (Ward et al. study factors around 0.5-2).
	Relax float64
}

// NewRelaxedBackfill returns relaxed backfill over FCFS priority with a
// relaxation factor of 1.
func NewRelaxedBackfill() *RelaxedBackfill {
	return &RelaxedBackfill{Priority: FCFS{}, Relax: 1}
}

// Name implements sim.Policy.
func (r *RelaxedBackfill) Name() string { return "Relaxed-backfill" }

// Decide implements sim.Policy.
func (r *RelaxedBackfill) Decide(snap *sim.Snapshot) []int {
	order := PriorityOrder(snap, r.Priority)
	prof := BuildProfile(snap)
	var starts []int

	// The head job is the highest-priority job that cannot start now.
	headIdx := -1 // index into order
	var headFit job.Time
	var headLimit job.Time
	for oi, qi := range order {
		w := snap.Queue[qi]
		est := estimateOf(w)
		t := prof.EarliestFit(snap.Now, w.Job.Nodes, est)
		if t == snap.Now {
			prof.Place(t, w.Job.Nodes, est)
			starts = append(starts, qi)
			continue
		}
		headIdx = oi
		headFit = t
		headLimit = t + job.Duration(r.Relax*float64(est))
		break
	}
	if headIdx < 0 {
		return starts
	}
	head := snap.Queue[order[headIdx]]
	headEst := estimateOf(head)

	// Try to start each remaining job now, accepting the move only if
	// the head job's earliest fit stays within its relaxed limit.
	for _, qi := range order[headIdx+1:] {
		w := snap.Queue[qi]
		est := estimateOf(w)
		if prof.EarliestFit(snap.Now, w.Job.Nodes, est) != snap.Now {
			continue
		}
		pl := prof.Place(snap.Now, w.Job.Nodes, est)
		if prof.EarliestFit(snap.Now, head.Job.Nodes, headEst) > headLimit {
			prof.Undo(pl)
			continue
		}
		starts = append(starts, qi)
	}
	// Note the head job holds no hard reservation: its protection is
	// the relaxed limit test above, re-evaluated at every decision.
	_ = headFit
	return starts
}

// SlackBackfill implements a slack-based backfill in the spirit of Talby
// & Feitelson (IPPS 1999): when a job first joins the queue it is
// promised a start time (its earliest fit at that moment) plus a slack
// proportional to its estimate; any backfill move is legal only if every
// queued job can still meet its promise.
type SlackBackfill struct {
	Priority Priority
	// SlackFactor scales each job's runtime estimate into its slack.
	SlackFactor float64
	// MinSlack is the slack floor so very short jobs keep a usable
	// promise window.
	MinSlack job.Duration

	promises map[int]job.Time // job ID -> latest allowed start
}

// NewSlackBackfill returns slack-based backfill over FCFS priority.
func NewSlackBackfill() *SlackBackfill {
	return &SlackBackfill{Priority: FCFS{}, SlackFactor: 1, MinSlack: 2 * job.Hour}
}

// Name implements sim.Policy.
func (s *SlackBackfill) Name() string { return "Slack-backfill" }

// Decide implements sim.Policy.
func (s *SlackBackfill) Decide(snap *sim.Snapshot) []int {
	if s.promises == nil {
		s.promises = make(map[int]job.Time)
	}
	order := PriorityOrder(snap, s.Priority)
	prof := BuildProfile(snap)

	// Issue promises to newly seen jobs and renew promises that have
	// become unmeetable through load the policy did not control (e.g.
	// runtime-estimate shortfalls): a stale promise must not veto all
	// future backfilling.
	infos := make([]pinfo, 0, len(order))
	for _, qi := range order {
		w := snap.Queue[qi]
		est := estimateOf(w)
		fit := prof.EarliestFit(snap.Now, w.Job.Nodes, est)
		infos = append(infos, pinfo{qi: qi, est: est, fit: fit})
		slack := job.Duration(s.SlackFactor * float64(est))
		if slack < s.MinSlack {
			slack = s.MinSlack
		}
		if p, ok := s.promises[w.Job.ID]; !ok || fit > p {
			s.promises[w.Job.ID] = fit + slack
		}
	}

	// Start jobs in priority order when they fit now, but accept a
	// backfill move only if it does not push any higher-priority held
	// job from meeting its promise to missing it.
	var starts []int
	var held []pinfo
	for _, in := range infos {
		w := snap.Queue[in.qi]
		t := prof.EarliestFit(snap.Now, w.Job.Nodes, in.est)
		if t != snap.Now {
			in.fit = t
			held = append(held, in)
			continue
		}
		// Record the held jobs' fits before the tentative placement.
		for hi := range held {
			hw := snap.Queue[held[hi].qi]
			held[hi].fit = prof.EarliestFit(snap.Now, hw.Job.Nodes, held[hi].est)
		}
		pl := prof.Place(snap.Now, w.Job.Nodes, in.est)
		violated := false
		for _, h := range held {
			hw := snap.Queue[h.qi]
			after := prof.EarliestFit(snap.Now, hw.Job.Nodes, h.est)
			promise := s.promises[hw.Job.ID]
			if after > promise && h.fit <= promise {
				violated = true
				break
			}
		}
		if violated {
			prof.Undo(pl)
			held = append(held, in)
			continue
		}
		starts = append(starts, in.qi)
	}

	// Garbage-collect promises for jobs no longer queued.
	live := make(map[int]bool, len(snap.Queue))
	for _, w := range snap.Queue {
		live[w.Job.ID] = true
	}
	for id := range s.promises {
		if !live[id] {
			delete(s.promises, id)
		}
	}
	return starts
}

// pinfo pairs a queue index with the runtime estimate the policy plans
// with and a scratch earliest-fit time.
type pinfo struct {
	qi  int
	est job.Duration
	fit job.Time
}
