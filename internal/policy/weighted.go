package policy

import (
	"fmt"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// WeightedPriority is the Maui-style tunable priority function the
// paper's introduction describes as the status quo: a job's priority is
// a weighted sum of job measures (current wait, expansion factor,
// requested processors, requested runtime). The paper's argument is
// that such weights are hard to tune and fragile across months; the
// weighted-priority experiment demonstrates exactly that against the
// goal-oriented search policies.
type WeightedPriority struct {
	// WaitWeight is priority per hour of current wait.
	WaitWeight float64
	// XFactorWeight is priority per unit of expansion factor
	// ((wait + estimate)/estimate).
	XFactorWeight float64
	// NodesWeight is priority per requested node (positive favours
	// wide jobs, as sites often do to improve packing of large jobs).
	NodesWeight float64
	// ShortWeight is priority per hour BELOW the runtime limit,
	// favouring short jobs when positive.
	ShortWeight float64
	// name labels the configuration in reports.
	name string
}

// Name implements Priority.
func (p WeightedPriority) Name() string {
	if p.name != "" {
		return p.name
	}
	return fmt.Sprintf("W(%g,%g,%g,%g)", p.WaitWeight, p.XFactorWeight, p.NodesWeight, p.ShortWeight)
}

// WithName labels the configuration.
func (p WeightedPriority) WithName(name string) WeightedPriority {
	p.name = name
	return p
}

// Score implements Priority.
func (p WeightedPriority) Score(w sim.WaitingJob, now job.Time) float64 {
	waitH := float64(now-w.Job.Submit) / float64(job.Hour)
	if waitH < 0 {
		waitH = 0
	}
	estH := float64(w.Estimate) / float64(job.Hour)
	xf := job.BoundedSlowdownAt(w.Job.Submit, w.Estimate, now)
	return p.WaitWeight*waitH +
		p.XFactorWeight*xf +
		p.NodesWeight*float64(w.Job.Nodes) +
		p.ShortWeight*(-estH)
}

// MauiDefault returns a configuration resembling common production
// defaults: dominated by queue time with a small expansion-factor term.
func MauiDefault() WeightedPriority {
	return WeightedPriority{WaitWeight: 1, XFactorWeight: 0.5}.WithName("Maui-default")
}

// NewWeightedBackfill wraps the priority in EASY backfill with one
// reservation, the configuration production Maui runs.
func NewWeightedBackfill(p WeightedPriority) *Backfill {
	b := NewBackfill(p)
	b.name = p.Name() + "-backfill"
	return b
}
