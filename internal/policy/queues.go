package policy

import (
	"fmt"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// QueueClass is one class of a multi-queue scheduler: jobs whose
// estimate falls in (0, MaxRuntime] and whose size falls within
// MaxNodes route to the first matching class.
type QueueClass struct {
	// Name labels the queue ("short", "medium", "long").
	Name string
	// MaxRuntime admits jobs with estimates up to this bound
	// (0 = unbounded).
	MaxRuntime job.Duration
	// MaxNodes admits jobs up to this width (0 = unbounded).
	MaxNodes int
	// Priority orders the queues: higher drains first.
	Priority int
}

// MultiQueue is the PBS/LSF-style queue-based priority scheduler of the
// paper's introduction: jobs are routed to classes by size, classes are
// served strictly by priority (FCFS within a class), with EASY backfill
// across the whole queue. The paper's criticism — low-priority queues
// can starve — is demonstrated by the queue-based experiment and the
// starvation test.
type MultiQueue struct {
	Classes []QueueClass
	// Reservations protects the head of the highest-priority non-empty
	// class (1 = EASY-style).
	Reservations int
}

// NewMultiQueue returns the conventional three-queue configuration:
// short jobs (<= 1h) highest priority, medium (<= 5h), then long.
func NewMultiQueue() *MultiQueue {
	return &MultiQueue{
		Classes: []QueueClass{
			{Name: "short", MaxRuntime: job.Hour, Priority: 3},
			{Name: "medium", MaxRuntime: 5 * job.Hour, Priority: 2},
			{Name: "long", Priority: 1},
		},
		Reservations: 1,
	}
}

// Name implements sim.Policy.
func (m *MultiQueue) Name() string { return "MultiQueue-backfill" }

// classOf routes a job to the first matching class index.
func (m *MultiQueue) classOf(w sim.WaitingJob) int {
	for i, c := range m.Classes {
		if c.MaxRuntime > 0 && w.Estimate > c.MaxRuntime {
			continue
		}
		if c.MaxNodes > 0 && w.Job.Nodes > c.MaxNodes {
			continue
		}
		return i
	}
	return len(m.Classes) - 1 // last class is the catch-all
}

// queuePriority scores a job: class priority dominates, FCFS within the
// class.
type queuePriority struct{ m *MultiQueue }

func (q queuePriority) Name() string { return "MultiQueue" }

func (q queuePriority) Score(w sim.WaitingJob, _ job.Time) float64 {
	ci := q.m.classOf(w)
	// Class priority dominates; earlier submits win within a class.
	// Submit times fit comfortably in float64's integer range.
	return float64(q.m.Classes[ci].Priority)*1e15 - float64(w.Job.Submit)
}

// Decide implements sim.Policy: EASY backfill over the class-then-FCFS
// priority order.
func (m *MultiQueue) Decide(snap *sim.Snapshot) []int {
	if len(m.Classes) == 0 {
		panic("policy: MultiQueue with no classes")
	}
	b := Backfill{Priority: queuePriority{m: m}, Reservations: m.Reservations}
	return b.Decide(snap)
}

// String describes the configuration.
func (m *MultiQueue) String() string {
	s := "MultiQueue["
	for i, c := range m.Classes {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s(p%d)", c.Name, c.Priority)
	}
	return s + "]"
}
