package policy

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// TestSJFBackfillStarvesLongJob demonstrates the starvation problem the
// paper cites (Section 3.2): under SJF-backfill a steady stream of
// short jobs keeps overtaking a long job, while FCFS-backfill serves it
// promptly. We drive both policies through the simulator on a crafted
// trace.
func TestSJFBackfillStarvesLongJob(t *testing.T) {
	// 4-node machine. A 4-node long job arrives at t=10 behind a
	// 4-node job running until t=100. From t=20 on, a 4-node short job
	// arrives every 50s — each finishing just as the next arrives, so
	// SJF always has a shorter job to run.
	var jobs []job.Job
	id := 1
	add := func(submit job.Time, nodes int, runtime job.Duration) {
		jobs = append(jobs, job.Job{ID: id, Submit: submit, Nodes: nodes,
			Runtime: runtime, Request: runtime})
		id++
	}
	add(0, 4, 100)   // initial running job
	add(10, 4, 5000) // the long job
	for i := 0; i < 40; i++ {
		add(job.Time(20+50*i), 4, 49)
	}

	startOfLong := func(p sim.Policy) job.Time {
		res, err := sim.Run(sim.Input{Capacity: 4, Jobs: append([]job.Job(nil), jobs...)}, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			if r.Job.ID == 2 {
				return r.Start
			}
		}
		t.Fatal("long job never ran")
		return 0
	}

	sjf := startOfLong(NewBackfill(SJF{}))
	fcfs := startOfLong(FCFSBackfill())
	if fcfs > 150 {
		t.Errorf("FCFS-backfill delayed the long job to %d", fcfs)
	}
	if sjf < 1000 {
		t.Errorf("SJF-backfill started the long job at %d; expected starvation past the short-job stream", sjf)
	}
}

// TestConservativeBackfillProtectsEveryJob: with a reservation for every
// queued job, a backfill candidate that would delay ANY queued job is
// rejected, not just one that delays the head.
func TestConservativeBackfillProtectsEveryJob(t *testing.T) {
	// 6-node machine, 5 busy until t=100 (1 free now). Queue (FCFS):
	//   J1: 5 nodes, 100s — reserved [100, 200), leaving 1 node free.
	//   J2: 6 nodes, 100s — reserved [200, 300) under conservative.
	//   J3: 1 node, 250s  — fits now, but runs into J2's whole-machine
	//       reservation, so conservative rejects it while EASY (which
	//       only protects J1) backfills it.
	//   J4: 1 node, 90s   — harmless; conservative's only backfill.
	running := []sim.RunningJob{{ID: 9, Nodes: 5, Start: 0, PredictedEnd: 100}}
	queue := []sim.WaitingJob{
		wjob(1, 0, 5, 100),
		wjob(2, 1, 6, 100),
		wjob(3, 2, 1, 250),
		wjob(4, 3, 1, 90),
	}
	starts := ConservativeBackfill(FCFS{}).Decide(snapOf(0, 6, running, queue))
	if len(starts) != 1 || starts[0] != 3 {
		t.Errorf("conservative starts = %v, want [3] (only the 90s job)", starts)
	}
	// EASY (1 reservation) accepts J3 because only J1 is protected; J3
	// then occupies the single free node, shutting out J4.
	easy := FCFSBackfill().Decide(snapOf(0, 6, running, queue))
	if len(easy) != 1 || easy[0] != 2 {
		t.Errorf("EASY starts = %v, want [2] (the 250s job backfills)", easy)
	}
}

func TestConservativeBackfillName(t *testing.T) {
	if got := ConservativeBackfill(FCFS{}).Name(); got != "Conservative-backfill(FCFS)" {
		t.Errorf("Name = %q", got)
	}
}

// TestBackfillEndToEndUtilization: on a saturated random month slice,
// EASY backfill keeps utilization strictly higher than strict FCFS
// (no-backfill) queueing.
func TestBackfillEndToEndBeatsNoBackfill(t *testing.T) {
	var jobs []job.Job
	id := 1
	// Alternating wide/narrow jobs create backfill holes.
	for i := 0; i < 60; i++ {
		nodes := 3
		runtime := job.Duration(300)
		if i%3 == 0 {
			nodes = 4
			runtime = 600
		}
		jobs = append(jobs, job.Job{ID: id, Submit: job.Time(i * 10), Nodes: nodes,
			Runtime: runtime, Request: runtime})
		id++
	}
	makespan := func(p sim.Policy) job.Time {
		res, err := sim.Run(sim.Input{Capacity: 6, Jobs: append([]job.Job(nil), jobs...)}, p)
		if err != nil {
			t.Fatal(err)
		}
		var end job.Time
		for _, r := range res.Records {
			if r.End > end {
				end = r.End
			}
		}
		return end
	}
	noBF := &Backfill{Priority: FCFS{}, Reservations: len(jobs) + 1}
	// Conservative over FCFS still backfills (it just protects all
	// reservations); strict FCFS is emulated with a scripted policy in
	// the sim tests, so here compare EASY against Conservative: EASY
	// must be at least as fast.
	easySpan := makespan(FCFSBackfill())
	consSpan := makespan(noBF)
	if easySpan > consSpan {
		t.Errorf("EASY makespan %d worse than conservative %d", easySpan, consSpan)
	}
}

func TestLXFWDefaultWeight(t *testing.T) {
	p := NewLXFW()
	if p.WaitWeight <= 0 || p.WaitWeight > 1 {
		t.Errorf("default wait weight %v implausible", p.WaitWeight)
	}
	if p.Name() != "LXF&W" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestRelaxedBackfillAllowsBoundedDelay(t *testing.T) {
	// 4-node machine, 3 busy until t=100. Head job wants 4 nodes
	// (fit at 100). A 1-node 150s backfill delays it to 150 — within
	// Relax=1 x 1000s, so relaxed backfill accepts what EASY rejects.
	running := []sim.RunningJob{{ID: 9, Nodes: 3, Start: 0, PredictedEnd: 100}}
	queue := []sim.WaitingJob{
		wjob(1, 0, 4, 1000),
		wjob(2, 1, 1, 150),
	}
	easy := FCFSBackfill().Decide(snapOf(0, 4, running, queue))
	if len(easy) != 0 {
		t.Fatalf("EASY starts = %v, want none", easy)
	}
	relaxed := NewRelaxedBackfill().Decide(snapOf(0, 4, running, queue))
	if len(relaxed) != 1 || relaxed[0] != 1 {
		t.Fatalf("relaxed starts = %v, want [1]", relaxed)
	}
	// But a delay beyond the relaxation limit is rejected.
	tight := &RelaxedBackfill{Priority: FCFS{}, Relax: 0.01}
	if starts := tight.Decide(snapOf(0, 4, running, queue)); len(starts) != 0 {
		t.Fatalf("tight relaxed starts = %v, want none", starts)
	}
}

func TestSlackBackfillRenewsStalePromises(t *testing.T) {
	s := NewSlackBackfill()
	// First decision: machine busy far into the future; promise issued.
	running := []sim.RunningJob{{ID: 9, Nodes: 4, Start: 0, PredictedEnd: 1000}}
	queue := []sim.WaitingJob{wjob(1, 0, 4, 100)}
	s.Decide(snapOf(10, 4, running, queue))
	p1 := s.promises[1]
	// Later the machine is even busier (the running job overran): the
	// promise must renew rather than block forever.
	running2 := []sim.RunningJob{{ID: 9, Nodes: 4, Start: 0, PredictedEnd: 50000}}
	s.Decide(snapOf(20000, 4, running2, queue))
	if s.promises[1] <= p1 {
		t.Errorf("promise not renewed: %d -> %d", p1, s.promises[1])
	}
}

func TestSlackBackfillCleansDepartedPromises(t *testing.T) {
	s := NewSlackBackfill()
	queue := []sim.WaitingJob{wjob(1, 0, 2, 100), wjob(2, 0, 2, 100)}
	s.Decide(snapOf(10, 4, nil, queue))
	if len(s.promises) == 0 {
		t.Fatal("no promises issued")
	}
	// Next decision with an empty queue: promises must be collected.
	s.Decide(snapOf(20, 4, nil, nil))
	if len(s.promises) != 0 {
		t.Errorf("%d stale promises retained", len(s.promises))
	}
}
