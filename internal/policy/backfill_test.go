package policy

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func wjob(id int, submit job.Time, nodes int, est job.Duration) sim.WaitingJob {
	return sim.WaitingJob{
		Job:      job.Job{ID: id, Submit: submit, Nodes: nodes, Runtime: est, Request: est},
		Estimate: est,
	}
}

func snapOf(now job.Time, capacity int, running []sim.RunningJob, queue []sim.WaitingJob) *sim.Snapshot {
	free := capacity
	for _, r := range running {
		free -= r.Nodes
	}
	for i := range queue {
		queue[i].QueuePos = i
	}
	return &sim.Snapshot{Now: now, Capacity: capacity, FreeNodes: free, Running: running, Queue: queue}
}

func TestFCFSBackfillStartsInOrder(t *testing.T) {
	snap := snapOf(0, 4, nil, []sim.WaitingJob{
		wjob(1, 0, 2, 100),
		wjob(2, 1, 2, 100),
		wjob(3, 2, 2, 100),
	})
	starts := FCFSBackfill().Decide(snap)
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 1 {
		t.Errorf("starts = %v, want [0 1]", starts)
	}
}

func TestBackfillFillsHoleWithoutDelayingReservation(t *testing.T) {
	// 4-node machine; 3 nodes busy until t=100. Head job wants 4 nodes
	// (reserved at t=100). A 1-node 50s job fits in the hole; a 1-node
	// 200s job would delay the reservation and must NOT start.
	running := []sim.RunningJob{{ID: 9, Nodes: 3, Start: 0, PredictedEnd: 100}}
	queue := []sim.WaitingJob{
		wjob(1, 0, 4, 1000), // head, cannot start
		wjob(2, 1, 1, 200),  // would delay reservation
		wjob(3, 2, 1, 50),   // fits the hole
	}
	starts := FCFSBackfill().Decide(snapOf(0, 4, running, queue))
	if len(starts) != 1 || starts[0] != 2 {
		t.Errorf("starts = %v, want [2] (only the 50s job backfills)", starts)
	}
}

func TestBackfillZeroReservationsStarvesHead(t *testing.T) {
	// Without reservations, the long backfill job is allowed to delay
	// the head job — showing the reservation is what protects it.
	running := []sim.RunningJob{{ID: 9, Nodes: 3, Start: 0, PredictedEnd: 100}}
	queue := []sim.WaitingJob{
		wjob(1, 0, 4, 1000),
		wjob(2, 1, 1, 200),
	}
	b := &Backfill{Priority: FCFS{}, Reservations: 0}
	starts := b.Decide(snapOf(0, 4, running, queue))
	if len(starts) != 1 || starts[0] != 1 {
		t.Errorf("starts = %v, want [1]", starts)
	}
}

func TestBackfillMultipleReservations(t *testing.T) {
	// Two reservations: the second-priority job also gets a protected
	// start time, further restricting backfill.
	running := []sim.RunningJob{{ID: 9, Nodes: 3, Start: 0, PredictedEnd: 100}}
	queue := []sim.WaitingJob{
		wjob(1, 0, 4, 100), // reserved at t=100
		wjob(2, 1, 4, 100), // reserved at t=200
		wjob(3, 2, 1, 150), // fits neither hole (delays 2nd reservation)
		wjob(4, 3, 1, 100), // fits the first hole exactly
	}
	b := &Backfill{Priority: FCFS{}, Reservations: 2}
	starts := b.Decide(snapOf(0, 4, running, queue))
	if len(starts) != 1 || starts[0] != 3 {
		t.Errorf("starts = %v, want [3]", starts)
	}
}

func TestLXFPriorityOrdersBySlowdown(t *testing.T) {
	now := job.Time(1000)
	// Short job waited as long as long job: short job has larger
	// slowdown, so LXF puts it first.
	queue := []sim.WaitingJob{
		wjob(1, 0, 1, 10000), // slowdown (1000+10000)/10000 = 1.1
		wjob(2, 0, 1, 100),   // slowdown (1000+100)/100 = 11
	}
	snap := snapOf(now, 4, nil, queue)
	order := PriorityOrder(snap, LXF{})
	if order[0] != 1 {
		t.Errorf("LXF order = %v, want job 2 (queue index 1) first", order)
	}
	// FCFS prefers earlier submit with ID tiebreak.
	order = PriorityOrder(snap, FCFS{})
	if order[0] != 0 {
		t.Errorf("FCFS order = %v, want queue index 0 first", order)
	}
}

func TestSJFPriority(t *testing.T) {
	queue := []sim.WaitingJob{
		wjob(1, 0, 1, 5000),
		wjob(2, 10, 1, 50),
	}
	order := PriorityOrder(snapOf(100, 4, nil, queue), SJF{})
	if order[0] != 1 {
		t.Errorf("SJF order = %v, want the short job first", order)
	}
}

func TestLXFWAddsWaitWeight(t *testing.T) {
	p := LXFW{WaitWeight: 1000} // exaggerated weight: wait dominates
	queue := []sim.WaitingJob{
		wjob(1, 0, 1, 10000),      // long wait
		wjob(2, 999*3600, 1, 100), // tiny wait, bigger slowdown
	}
	order := PriorityOrder(snapOf(1000*3600, 4, nil, queue), p)
	if order[0] != 0 {
		t.Errorf("LXF&W with huge wait weight should prefer the old job: %v", order)
	}
}

func TestPriorityOrderDeterministicTiebreak(t *testing.T) {
	queue := []sim.WaitingJob{
		wjob(5, 100, 1, 100),
		wjob(2, 100, 1, 100),
		wjob(9, 100, 1, 100),
	}
	order := PriorityOrder(snapOf(200, 4, nil, queue), FCFS{})
	// Equal submit and score: lower job ID first.
	wantIDs := []int{2, 5, 9}
	for i, qi := range order {
		if queue[qi].Job.ID != wantIDs[i] {
			t.Fatalf("order %v: position %d has job %d, want %d",
				order, i, queue[qi].Job.ID, wantIDs[i])
		}
	}
}

func TestBuildProfileAccountsRunning(t *testing.T) {
	running := []sim.RunningJob{
		{ID: 1, Nodes: 2, Start: 0, PredictedEnd: 100},
		{ID: 2, Nodes: 1, Start: 0, PredictedEnd: 50},
	}
	prof := BuildProfile(snapOf(10, 4, running, nil))
	if got := prof.FreeAt(10); got != 1 {
		t.Errorf("FreeAt(now) = %d, want 1", got)
	}
	if got := prof.FreeAt(60); got != 2 {
		t.Errorf("FreeAt(60) = %d, want 2", got)
	}
	if got := prof.FreeAt(150); got != 4 {
		t.Errorf("FreeAt(150) = %d, want 4", got)
	}
}

func TestBuildProfileOverdueRunningJob(t *testing.T) {
	// A job past its predicted end still holds nodes; the profile must
	// not underflow.
	running := []sim.RunningJob{{ID: 1, Nodes: 4, Start: 0, PredictedEnd: 50}}
	prof := BuildProfile(snapOf(100, 4, running, nil))
	if got := prof.FreeAt(100); got != 0 {
		t.Errorf("FreeAt(now) = %d, want 0 (overdue job still running)", got)
	}
}

// TestBackfillNeverExceedsCapacity drives all backfill variants with
// random queues and verifies the started set always fits.
func TestBackfillNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := []func() sim.Policy{
		func() sim.Policy { return FCFSBackfill() },
		func() sim.Policy { return LXFBackfill() },
		func() sim.Policy { return NewBackfill(SJF{}) },
		func() sim.Policy { return NewBackfill(NewLXFW()) },
		func() sim.Policy { return NewSelectiveBackfill() },
		func() sim.Policy { return NewRelaxedBackfill() },
		func() sim.Policy { return NewSlackBackfill() },
		func() sim.Policy { return NewLookahead() },
	}
	for trial := 0; trial < 100; trial++ {
		capacity := 4 + rng.Intn(28)
		now := job.Time(10000)
		var running []sim.RunningJob
		used := 0
		for used < capacity && rng.Float64() < 0.7 {
			n := 1 + rng.Intn(capacity-used)
			running = append(running, sim.RunningJob{
				ID: 1000 + len(running), Nodes: n, Start: 0,
				PredictedEnd: now + job.Duration(1+rng.Intn(5000)),
			})
			used += n
		}
		var queue []sim.WaitingJob
		for i := 0; i < 1+rng.Intn(12); i++ {
			queue = append(queue, wjob(i+1, job.Time(rng.Intn(int(now))),
				1+rng.Intn(capacity), job.Duration(1+rng.Intn(7200))))
		}
		snap := snapOf(now, capacity, running, queue)
		for _, f := range mk {
			pol := f()
			starts := pol.Decide(snap)
			total := 0
			seen := map[int]bool{}
			for _, qi := range starts {
				if qi < 0 || qi >= len(queue) || seen[qi] {
					t.Fatalf("trial %d %s: bad starts %v", trial, pol.Name(), starts)
				}
				seen[qi] = true
				total += queue[qi].Job.Nodes
			}
			if total > snap.FreeNodes {
				t.Fatalf("trial %d %s: started %d nodes with %d free",
					trial, pol.Name(), total, snap.FreeNodes)
			}
		}
	}
}

// TestBackfillWorkConserving: if any queued job fits in the free nodes
// for its full estimate without delaying the reservation, plain EASY
// backfill starts at least one job.
func TestBackfillWorkConservingOnIdleMachine(t *testing.T) {
	queue := []sim.WaitingJob{wjob(1, 0, 3, 100), wjob(2, 0, 2, 100)}
	for _, pol := range []sim.Policy{FCFSBackfill(), LXFBackfill(), NewLookahead(),
		NewSelectiveBackfill(), NewRelaxedBackfill(), NewSlackBackfill()} {
		starts := pol.Decide(snapOf(0, 4, nil, append([]sim.WaitingJob(nil), queue...)))
		if len(starts) == 0 {
			t.Errorf("%s started nothing on an idle machine", pol.Name())
		}
	}
}

func TestLookaheadMaximizesUtilization(t *testing.T) {
	// 8-node machine, 2 busy until far future; the 7-node head job is
	// reserved. Backfill candidates: 4, 3, 3 nodes. Greedy FCFS
	// backfill starts the 4-node job (then neither 3-node job fits);
	// lookahead's knapsack should pick 3+3 = 6 nodes instead.
	queue := []sim.WaitingJob{
		wjob(1, 0, 7, 100), // head: cannot start, gets the reservation
		wjob(2, 1, 4, 100),
		wjob(3, 2, 3, 100),
		wjob(4, 3, 3, 100),
	}
	running := []sim.RunningJob{{ID: 9, Nodes: 2, Start: 0, PredictedEnd: 1000000}}
	starts := NewLookahead().Decide(snapOf(10, 8, running, queue))
	total := 0
	for _, qi := range starts {
		total += queue[qi].Job.Nodes
	}
	if total != 6 {
		t.Errorf("lookahead packed %d nodes (starts %v), want 6", total, starts)
	}
	// Greedy FCFS backfill on the same snapshot packs only 4 nodes —
	// the contrast that motivates lookahead.
	gStarts := FCFSBackfill().Decide(snapOf(10, 8, running, queue))
	gTotal := 0
	for _, qi := range gStarts {
		gTotal += queue[qi].Job.Nodes
	}
	if gTotal != 4 {
		t.Errorf("FCFS-backfill packed %d nodes (starts %v), want 4", gTotal, gStarts)
	}
}

func TestSelectiveBackfillGrantsReservationWhenExpanded(t *testing.T) {
	// A job far past the expansion threshold gets a reservation that
	// blocks a conflicting backfill.
	running := []sim.RunningJob{{ID: 9, Nodes: 3, Start: 0, PredictedEnd: 100000}}
	queue := []sim.WaitingJob{
		wjob(1, 0, 4, 1000),      // waited 50000s on a 1000s job: xf huge
		wjob(2, 49000, 1, 90000), // would delay job 1 behind the running job
	}
	s := NewSelectiveBackfill()
	starts := s.Decide(snapOf(50000, 4, running, queue))
	if len(starts) != 0 {
		t.Errorf("starts = %v, want [] (reservation for the expanded job blocks backfill)", starts)
	}
}

func TestBackfillName(t *testing.T) {
	if got := FCFSBackfill().Name(); got != "FCFS-backfill" {
		t.Errorf("Name = %q", got)
	}
	if got := LXFBackfill().WithName("custom").Name(); got != "custom" {
		t.Errorf("Name = %q", got)
	}
}
