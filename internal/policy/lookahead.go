package policy

import (
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Lookahead implements a backfill scheduler in the spirit of Shmueli &
// Feitelson's LOS (JSSPP 2003): instead of backfilling jobs one at a
// time in priority order, it selects — by dynamic programming over the
// free nodes — the set of backfill candidates that maximizes immediate
// node utilization, while protecting the highest-priority waiting job
// with a reservation. The paper (Section 3.2) found it to behave like
// FCFS-backfill on these workloads.
type Lookahead struct {
	Priority Priority
}

// NewLookahead returns a lookahead scheduler over FCFS priority.
func NewLookahead() *Lookahead { return &Lookahead{Priority: FCFS{}} }

// Name implements sim.Policy.
func (l *Lookahead) Name() string { return "Lookahead" }

// Decide implements sim.Policy.
func (l *Lookahead) Decide(snap *sim.Snapshot) []int {
	order := PriorityOrder(snap, l.Priority)
	prof := BuildProfile(snap)

	// Start priority jobs greedily until the first job that cannot
	// start now; reserve for it.
	var starts []int
	rest := order
	for len(rest) > 0 {
		w := snap.Queue[rest[0]]
		est := estimateOf(w)
		t := prof.EarliestFit(snap.Now, w.Job.Nodes, est)
		if t != snap.Now {
			prof.Place(t, w.Job.Nodes, est) // reservation for the head job
			break
		}
		prof.Place(t, w.Job.Nodes, est)
		starts = append(starts, rest[0])
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return starts
	}
	rest = rest[1:] // skip the reserved head job

	// Candidates: jobs that could individually start now without
	// delaying the reservation (the reservation is already in the
	// profile, so EarliestFit == Now implies no conflict).
	type cand struct {
		qi    int
		nodes int
		est   job.Duration
	}
	var cands []cand
	free := prof.FreeAt(snap.Now)
	for _, qi := range rest {
		w := snap.Queue[qi]
		est := estimateOf(w)
		if w.Job.Nodes <= free && prof.EarliestFit(snap.Now, w.Job.Nodes, est) == snap.Now {
			cands = append(cands, cand{qi: qi, nodes: w.Job.Nodes, est: est})
		}
	}
	if len(cands) == 0 {
		return starts
	}

	// 0/1 knapsack over free nodes maximizing utilized nodes. choice
	// backtracking reconstructs the chosen set; ties resolve toward
	// higher-priority (earlier) candidates by iterating them first.
	best := make([]int, free+1) // best[u] = max nodes usable with budget u
	take := make([][]bool, len(cands))
	for i := range take {
		take[i] = make([]bool, free+1)
	}
	for i, c := range cands {
		for u := free; u >= c.nodes; u-- {
			if v := best[u-c.nodes] + c.nodes; v > best[u] {
				best[u] = v
				take[i][u] = true
			}
		}
	}
	// Reconstruct: walk candidates in reverse.
	chosen := make([]bool, len(cands))
	u := free
	for i := len(cands) - 1; i >= 0; i-- {
		if take[i][u] {
			chosen[i] = true
			u -= cands[i].nodes
		}
	}

	// Place the chosen set; the knapsack ignores the time dimension, so
	// each placement is re-verified and skipped if the combination of
	// earlier picks pushed it off "now".
	var picked []cand
	for i, c := range cands {
		if chosen[i] {
			picked = append(picked, c)
		}
	}
	sort.SliceStable(picked, func(a, b int) bool { return picked[a].nodes > picked[b].nodes })
	for _, c := range picked {
		if prof.EarliestFit(snap.Now, c.nodes, c.est) == snap.Now {
			prof.Place(snap.Now, c.nodes, c.est)
			starts = append(starts, c.qi)
		}
	}
	return starts
}
