package policy

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

func TestWeightedPriorityComponents(t *testing.T) {
	now := job.Time(2 * job.Hour)
	w := wjob(1, 0, 8, job.Hour) // waited 2h, est 1h, 8 nodes

	cases := []struct {
		p    WeightedPriority
		want float64
	}{
		{WeightedPriority{WaitWeight: 1}, 2},                   // 2 hours waited
		{WeightedPriority{XFactorWeight: 1}, 3},                // (2h+1h)/1h
		{WeightedPriority{NodesWeight: 1}, 8},                  // nodes
		{WeightedPriority{ShortWeight: 1}, -1},                 // -est hours
		{WeightedPriority{WaitWeight: 1, NodesWeight: 0.5}, 6}, // 2 + 4
	}
	for _, c := range cases {
		if got := c.p.Score(w, now); got != c.want {
			t.Errorf("%s.Score = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

func TestWeightedPriorityNames(t *testing.T) {
	if got := (WeightedPriority{WaitWeight: 1}).Name(); got != "W(1,0,0,0)" {
		t.Errorf("Name = %q", got)
	}
	if got := MauiDefault().Name(); got != "Maui-default" {
		t.Errorf("Name = %q", got)
	}
	if got := NewWeightedBackfill(MauiDefault()).Name(); got != "Maui-default-backfill" {
		t.Errorf("backfill Name = %q", got)
	}
}

func TestWeightedPriorityNegativeWaitClamped(t *testing.T) {
	p := WeightedPriority{WaitWeight: 1}
	w := wjob(1, 100, 1, 60)
	if got := p.Score(w, 50); got != 0 {
		t.Errorf("future-submitted job scored %v, want 0", got)
	}
}

func TestMultiQueueRouting(t *testing.T) {
	m := NewMultiQueue()
	cases := []struct {
		est  job.Duration
		want string
	}{
		{30 * job.Minute, "short"},
		{job.Hour, "short"},
		{job.Hour + 1, "medium"},
		{5 * job.Hour, "medium"},
		{5*job.Hour + 1, "long"},
		{24 * job.Hour, "long"},
	}
	for _, c := range cases {
		w := wjob(1, 0, 1, c.est)
		ci := m.classOf(w)
		if got := m.Classes[ci].Name; got != c.want {
			t.Errorf("est %d routed to %q, want %q", c.est, got, c.want)
		}
	}
}

func TestMultiQueuePrefersHighPriorityClass(t *testing.T) {
	// A later-submitted short job must outrank an earlier long job.
	m := NewMultiQueue()
	queue := []sim.WaitingJob{
		wjob(1, 0, 4, 10*job.Hour),     // long, first
		wjob(2, 100, 4, 30*job.Minute), // short, later
	}
	order := PriorityOrder(snapOf(1000, 4, nil, queue), queuePriority{m: m})
	if order[0] != 1 {
		t.Errorf("order = %v, want the short job first", order)
	}
}

func TestMultiQueueStarvesLongQueueUnderShortStream(t *testing.T) {
	// The paper's criticism of queue-based priority: a steady stream of
	// short jobs starves the long queue. A long 4-node job arrives at
	// t=10; 4-node short (30 min) jobs arrive every 1800s. MultiQueue
	// keeps picking the short queue; FCFS-backfill serves arrival order.
	var jobs []job.Job
	id := 1
	add := func(submit job.Time, runtime job.Duration) {
		jobs = append(jobs, job.Job{ID: id, Submit: submit, Nodes: 4,
			Runtime: runtime, Request: runtime})
		id++
	}
	add(0, 1800)        // initial short job running
	add(10, 8*job.Hour) // the long job
	for i := 1; i <= 30; i++ {
		add(job.Time(i)*1800-100, 1800)
	}
	startOfLong := func(p sim.Policy) job.Time {
		res, err := sim.Run(sim.Input{Capacity: 4, Jobs: append([]job.Job(nil), jobs...)}, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			if r.Job.ID == 2 {
				return r.Start
			}
		}
		t.Fatal("long job never ran")
		return 0
	}
	mq := startOfLong(NewMultiQueue())
	fcfs := startOfLong(FCFSBackfill())
	if fcfs > 2*1800 {
		t.Errorf("FCFS-backfill delayed the long job to %d", fcfs)
	}
	if mq < 10*1800 {
		t.Errorf("MultiQueue started the long job at %d; expected starvation behind the short stream", mq)
	}
}

func TestMultiQueueString(t *testing.T) {
	if got := NewMultiQueue().String(); got != "MultiQueue[short(p3) medium(p2) long(p1)]" {
		t.Errorf("String = %q", got)
	}
	if got := NewMultiQueue().Name(); got != "MultiQueue-backfill" {
		t.Errorf("Name = %q", got)
	}
}

func TestMultiQueueMaxNodesRouting(t *testing.T) {
	m := &MultiQueue{Classes: []QueueClass{
		{Name: "narrow", MaxNodes: 8, Priority: 2},
		{Name: "wide", Priority: 1},
	}, Reservations: 1}
	if ci := m.classOf(wjob(1, 0, 4, job.Hour)); m.Classes[ci].Name != "narrow" {
		t.Errorf("4-node job routed to %q", m.Classes[ci].Name)
	}
	if ci := m.classOf(wjob(1, 0, 64, job.Hour)); m.Classes[ci].Name != "wide" {
		t.Errorf("64-node job routed to %q", m.Classes[ci].Name)
	}
}
