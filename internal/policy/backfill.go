// Package policy implements the priority-backfill scheduling policies
// the paper compares against (Section 3.2): EASY-style backfill with a
// configurable number of reservations and pluggable priority functions
// (FCFS, SJF, LXF, LXF&W), plus the published variants Selective-,
// Slack-, and Relaxed-backfill and the Lookahead scheduler.
package policy

import (
	"sort"

	"schedsearch/internal/cluster"
	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Priority scores a waiting job at a decision instant; larger scores
// schedule first. Implementations must be deterministic.
type Priority interface {
	// Name is the short priority tag used in policy names ("FCFS").
	Name() string
	// Score returns the job's priority at time now.
	Score(w sim.WaitingJob, now job.Time) float64
}

// FCFS prioritizes by arrival order (earlier submit = higher priority).
type FCFS struct{}

func (FCFS) Name() string { return "FCFS" }
func (FCFS) Score(w sim.WaitingJob, _ job.Time) float64 {
	return -float64(w.Job.Submit)
}

// SJF prioritizes the shortest estimated runtime first.
type SJF struct{}

func (SJF) Name() string { return "SJF" }
func (SJF) Score(w sim.WaitingJob, _ job.Time) float64 {
	return -float64(w.Estimate)
}

// LXF prioritizes the largest current bounded slowdown ("expansion
// factor") first, computed with the runtime estimate the policy sees.
type LXF struct{}

func (LXF) Name() string { return "LXF" }
func (LXF) Score(w sim.WaitingJob, now job.Time) float64 {
	return job.BoundedSlowdownAt(w.Job.Submit, w.Estimate, now)
}

// LXFW is LXF plus a small weight on the current wait time (LXF&W in the
// paper's terminology), which bounds starvation of long jobs.
type LXFW struct {
	// WaitWeight is the priority added per hour of waiting; the paper's
	// prior work uses a very small weight (default 0.02/h via NewLXFW).
	WaitWeight float64
}

// NewLXFW returns LXF&W with the conventional small wait weight.
func NewLXFW() LXFW { return LXFW{WaitWeight: 0.02} }

func (LXFW) Name() string { return "LXF&W" }
func (p LXFW) Score(w sim.WaitingJob, now job.Time) float64 {
	waitHours := float64(now-w.Job.Submit) / float64(job.Hour)
	return job.BoundedSlowdownAt(w.Job.Submit, w.Estimate, now) + p.WaitWeight*waitHours
}

// Backfill is an EASY-style priority backfill policy: jobs are
// considered in priority order; the first Reservations jobs that cannot
// start now are given scheduled start times (reservations) at their
// earliest fit; lower-priority jobs may start now only if they do not
// delay any reservation. The paper's FCFS-backfill and LXF-backfill use
// one reservation.
type Backfill struct {
	Priority     Priority
	Reservations int
	name         string
}

// NewBackfill returns a backfill policy with one reservation, matching
// the paper's configuration.
func NewBackfill(p Priority) *Backfill { return &Backfill{Priority: p, Reservations: 1} }

// FCFSBackfill returns the paper's FCFS-backfill baseline.
func FCFSBackfill() *Backfill { return NewBackfill(FCFS{}) }

// ConservativeBackfill returns conservative backfill: every queued job
// holds a reservation, so no backfill move can delay any higher-priority
// job's planned start.
func ConservativeBackfill(p Priority) *Backfill {
	b := &Backfill{Priority: p, Reservations: int(^uint(0) >> 1)}
	b.name = "Conservative-backfill(" + p.Name() + ")"
	return b
}

// LXFBackfill returns the paper's LXF-backfill baseline.
func LXFBackfill() *Backfill { return NewBackfill(LXF{}) }

// Name implements sim.Policy.
func (b *Backfill) Name() string {
	if b.name != "" {
		return b.name
	}
	return b.Priority.Name() + "-backfill"
}

// WithName overrides the report name (for ablation variants).
func (b *Backfill) WithName(name string) *Backfill {
	b.name = name
	return b
}

// Decide implements sim.Policy.
func (b *Backfill) Decide(snap *sim.Snapshot) []int {
	order := PriorityOrder(snap, b.Priority)
	prof := BuildProfile(snap)
	var starts []int
	reserved := 0
	for _, qi := range order {
		w := snap.Queue[qi]
		est := estimateOf(w)
		t := prof.EarliestFit(snap.Now, w.Job.Nodes, est)
		switch {
		case t == snap.Now:
			prof.Place(t, w.Job.Nodes, est)
			starts = append(starts, qi)
		case reserved < b.Reservations:
			prof.Place(t, w.Job.Nodes, est)
			reserved++
		}
	}
	return starts
}

// estimateOf floors the runtime estimate at one second so profile
// placements are always non-empty.
func estimateOf(w sim.WaitingJob) job.Duration {
	if w.Estimate < 1 {
		return 1
	}
	return w.Estimate
}

// PriorityOrder returns queue indices sorted by descending priority with
// deterministic tiebreak (submit time, then job ID).
func PriorityOrder(snap *sim.Snapshot, p Priority) []int {
	type scored struct {
		qi    int
		score float64
	}
	ss := make([]scored, len(snap.Queue))
	for i, w := range snap.Queue {
		ss[i] = scored{qi: i, score: p.Score(w, snap.Now)}
	}
	sort.SliceStable(ss, func(a, c int) bool {
		if ss[a].score != ss[c].score {
			return ss[a].score > ss[c].score
		}
		ja, jc := snap.Queue[ss[a].qi].Job, snap.Queue[ss[c].qi].Job
		if ja.Submit != jc.Submit {
			return ja.Submit < jc.Submit
		}
		return ja.ID < jc.ID
	})
	order := make([]int, len(ss))
	for i, s := range ss {
		order[i] = s.qi
	}
	return order
}

// BuildProfile constructs the availability profile implied by the
// snapshot: capacity minus each running job until its predicted end.
func BuildProfile(snap *sim.Snapshot) *cluster.Profile {
	prof := cluster.New(snap.Capacity, snap.Now)
	for _, r := range snap.Running {
		end := r.PredictedEnd
		if end <= snap.Now {
			// The job has exhausted its estimate but has not finished;
			// plan as if it ends imminently.
			end = snap.Now + 1
		}
		prof.Place(snap.Now, r.Nodes, end-snap.Now)
	}
	return prof
}
