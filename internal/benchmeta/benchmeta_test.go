package benchmeta

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

func TestCollect(t *testing.T) {
	m := Collect("searchbench -ingest")
	if m.GeneratedBy != "searchbench -ingest" {
		t.Errorf("GeneratedBy = %q", m.GeneratedBy)
	}
	if m.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", m.GoVersion, runtime.Version())
	}
	if m.GOOS != runtime.GOOS || m.GOARCH != runtime.GOARCH {
		t.Errorf("GOOS/GOARCH = %q/%q", m.GOOS, m.GOARCH)
	}
	if m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Errorf("NumCPU=%d GOMAXPROCS=%d", m.NumCPU, m.GOMAXPROCS)
	}
	if _, err := time.Parse(time.RFC3339, m.GeneratedAt); err != nil {
		t.Errorf("GeneratedAt %q is not RFC 3339: %v", m.GeneratedAt, err)
	}
}

// TestMetaEmbedsFlat ensures embedding Meta in a report struct keeps
// the provenance keys at the top level of the JSON document (the
// BENCH_*.json schema relies on this).
func TestMetaEmbedsFlat(t *testing.T) {
	type report struct {
		Meta
		Results []int `json:"results"`
	}
	b, err := json.Marshal(report{Meta: Collect("x"), Results: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(b, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"generated_by", "go_version", "gomaxprocs", "results"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("key %q missing from embedded-Meta JSON: %s", key, b)
		}
	}
}
