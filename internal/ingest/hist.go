package ingest

import "schedsearch/internal/obs"

// Hist and HistSnapshot moved to internal/obs when the observability
// layer grew its own latency histograms (journal fsync, span
// durations); the ingest queue keeps these aliases so its accept-path
// API and the serialized Metrics schema are unchanged.
type (
	// Hist is a log-bucketed latency histogram (power-of-two
	// microsecond buckets); see obs.Hist.
	Hist = obs.Hist
	// HistSnapshot is a point-in-time copy of a Hist; see
	// obs.HistSnapshot.
	HistSnapshot = obs.HistSnapshot
)
