package ingest

import (
	"path/filepath"
	"reflect"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// quantize floors every submit time to a bucket boundary so that many
// jobs share each submit instant — the batched path then has real
// multi-job batches to commit, not a degenerate one-job-per-batch run.
// Floor quantization preserves arrival order.
func quantize(jobs []job.Job, bucket job.Duration) []job.Job {
	out := make([]job.Job, len(jobs))
	for i, j := range jobs {
		j.Submit -= j.Submit % job.Time(bucket)
		out[i] = j
	}
	return out
}

// serialReplay is the baseline: one SubmitJob call per job, straight
// into the engine, exactly as PR 1's daemon accepted traffic.
func serialReplay(t *testing.T, in sim.Input, pol sim.Policy, sink engine.JournalSink) *engine.Engine {
	t.Helper()
	vc := engine.NewVirtualClock()
	e, err := engine.New(engineConfig(in, pol, vc, sink))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := e.SubmitJob(j); err != nil {
				t.Errorf("serial submit %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if sink != nil {
		if err := e.SyncJournal(); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func engineConfig(in sim.Input, pol sim.Policy, vc engine.Clock, sink engine.JournalSink) engine.Config {
	cfg := engine.Config{
		Capacity:     in.Capacity,
		Policy:       pol,
		Clock:        vc,
		Estimator:    in.Estimator,
		UseRequested: in.UseRequested,
		MeasureStart: in.MeasureStart,
		MeasureEnd:   in.MeasureEnd,
		Journal:      sink,
	}
	if in.Measured != nil {
		measured := in.Measured
		cfg.Measured = func(id int) bool { return measured[id] }
	}
	return cfg
}

// batches groups the (already quantized, submit-ordered) trace by
// submit instant, preserving trace order inside each batch.
func batches(jobs []job.Job) [][]job.Job {
	var out [][]job.Job
	for _, j := range jobs {
		if n := len(out); n > 0 && out[n-1][0].Submit == j.Submit {
			out[n-1] = append(out[n-1], j)
			continue
		}
		out = append(out, []job.Job{j})
	}
	return out
}

// batchedReplay drives the same trace through the ingest queue: one
// blocking SubmitBatch per submit instant. The virtual clock freezes
// while the committer drains, so the committed order is the batch
// order — deterministically the serial order.
func batchedReplay(t *testing.T, in sim.Input, pol sim.Policy, sink engine.JournalSink, maxBatch int) (*engine.Engine, *Queue) {
	t.Helper()
	vc := engine.NewVirtualClock()
	e, err := engine.New(engineConfig(in, pol, vc, sink))
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(Config{Backend: e, MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches(in.Jobs) {
		batch := batch
		vc.AfterFunc(batch[0].Submit, func() {
			results, err := q.SubmitBatch(batch)
			if err != nil {
				t.Errorf("batch at t=%d: %v", batch[0].Submit, err)
				return
			}
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("batch item %d (job %d): %v", r.Index, batch[r.Index].ID, r.Err)
				}
			}
		})
	}
	vc.Run()
	q.Close()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	return e, q
}

func diffRecords(t *testing.T, want, got []sim.Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("serial completed %d jobs, batched %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Job.ID != g.Job.ID || w.Start != g.Start || w.End != g.End ||
			w.Measured != g.Measured || !reflect.DeepEqual(w.NodeIDs, g.NodeIDs) {
			t.Fatalf("record %d diverges:\nserial  job=%d start=%d end=%d nodes=%v\nbatched job=%d start=%d end=%d nodes=%v",
				i, w.Job.ID, w.Start, w.End, w.NodeIDs, g.Job.ID, g.Start, g.End, g.NodeIDs)
		}
	}
}

// TestBatchedIngestMatchesSerial is the ingest keystone: over every
// suite month, submitting the trace in batches through the accept
// queue — with group-committed journal writes — produces the
// bit-identical schedule, summary, decision count, and journal event
// stream as the serial one-job-per-call path with per-event fsyncs.
func TestBatchedIngestMatchesSerial(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 23, JobScale: 0.02})
	newPol := func() sim.Policy { return policy.FCFSBackfill() }
	for _, month := range workload.MonthLabels() {
		month := month
		t.Run(month, func(t *testing.T) {
			t.Parallel()
			in, _, err := suite.Input(month, workload.SimOptions{})
			if err != nil {
				t.Fatal(err)
			}
			in.Jobs = quantize(in.Jobs, 1800)

			dir := t.TempDir()
			serialSink, err := engine.OpenFileJournal(filepath.Join(dir, "serial.journal"), 1)
			if err != nil {
				t.Fatal(err)
			}
			se := serialReplay(t, in, newPol(), serialSink)

			batchSink, err := engine.OpenFileJournal(filepath.Join(dir, "batched.journal"), 64)
			if err != nil {
				t.Fatal(err)
			}
			be, q := batchedReplay(t, in, newPol(), batchSink, 7)

			diffRecords(t, se.Records(), be.Records())
			sm, bm := se.Metrics(), be.Metrics()
			if sm.Summary != bm.Summary {
				t.Errorf("summary diverges:\nserial  %+v\nbatched %+v", sm.Summary, bm.Summary)
			}
			if sm.Engine.Decisions != bm.Engine.Decisions {
				t.Errorf("serial made %d decisions, batched %d", sm.Engine.Decisions, bm.Engine.Decisions)
			}
			if err := oracle.CheckRecords(in.Capacity, in.Jobs, be.Records()); err != nil {
				t.Errorf("oracle: %v", err)
			}

			// The journals must hold the identical event stream...
			if err := serialSink.Close(); err != nil {
				t.Fatal(err)
			}
			if err := batchSink.Close(); err != nil {
				t.Fatal(err)
			}
			_, serialEvents, err := engine.LoadJournal(serialSink.Path())
			if err != nil {
				t.Fatal(err)
			}
			_, batchEvents, err := engine.LoadJournal(batchSink.Path())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialEvents, batchEvents) {
				t.Errorf("journal event streams diverge: serial %d events, batched %d",
					len(serialEvents), len(batchEvents))
			}
			// ...while the batched side actually coalesced fsyncs.
			ss, bs := serialSink.Stats(), batchSink.Stats()
			if ss.Appends != bs.Appends {
				t.Errorf("journal appends diverge: serial %d, batched %d", ss.Appends, bs.Appends)
			}
			if bs.Syncs >= ss.Syncs {
				t.Errorf("group commit did not coalesce: batched %d syncs vs serial %d", bs.Syncs, ss.Syncs)
			}
			qs := q.Stats()
			if qs.Committed != int64(len(in.Jobs)) {
				t.Errorf("queue committed %d of %d jobs", qs.Committed, len(in.Jobs))
			}
			if qs.Rejected != 0 || qs.Saturations != 0 {
				t.Errorf("unexpected rejections: %+v", qs)
			}
		})
	}
}

// TestBatchedIngestMatchesSerialWithSearch repeats the keystone on one
// month with a discrepancy-search policy and auto-compaction enabled,
// so group commit, search, and journal folding all interleave.
func TestBatchedIngestMatchesSerialWithSearch(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 23, JobScale: 0.02})
	newPol := func() sim.Policy {
		return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 150)
	}
	in, _, err := suite.Input("7/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in.Jobs = quantize(in.Jobs, 3600)

	se := serialReplay(t, in, newPol(), nil)

	vc := engine.NewVirtualClock()
	cfg := engineConfig(in, newPol(), vc, nil)
	cfg.CompactEvery = 64
	be, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(Config{Backend: be, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches(in.Jobs) {
		batch := batch
		vc.AfterFunc(batch[0].Submit, func() {
			if _, err := q.SubmitBatch(batch); err != nil {
				t.Errorf("batch at t=%d: %v", batch[0].Submit, err)
			}
		})
	}
	vc.Run()
	q.Close()
	if err := be.Err(); err != nil {
		t.Fatal(err)
	}
	diffRecords(t, se.Records(), be.Records())
	if sm, bm := se.Metrics(), be.Metrics(); sm.Summary != bm.Summary {
		t.Errorf("summary diverges:\nserial  %+v\nbatched %+v", sm.Summary, bm.Summary)
	}
	if be.Metrics().Engine.Compactions == 0 {
		t.Error("auto-compaction never ran despite CompactEvery")
	}
}

// TestBatchedIngestMatchesSerialFederated proves the queue is backend-
// agnostic: batched submission through a 2-shard hash-by-user router
// (per-shard group-committed journals) merges to the bit-identical
// global schedule as serial submission through an identically
// configured router.
func TestBatchedIngestMatchesSerialFederated(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 23, JobScale: 0.02})
	in, _, err := suite.Input("9/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in.Jobs = quantize(in.Jobs, 1800)
	// A 2-shard split can only place jobs no wider than one shard.
	fit := in.Jobs[:0]
	for _, j := range in.Jobs {
		if j.Nodes <= in.Capacity/2 {
			fit = append(fit, j)
		}
	}
	in.Jobs = fit

	newRouter := func(t *testing.T, vc engine.Clock, dir string) *federation.Router {
		t.Helper()
		placement, err := federation.ParsePlacement("hash-by-user")
		if err != nil {
			t.Fatal(err)
		}
		measured := in.Measured
		cfg := federation.Config{
			Capacity:  in.Capacity,
			Shards:    2,
			Policy:    func(int) sim.Policy { return policy.FCFSBackfill() },
			Placement: placement,
			Clock:     vc,
			Journal: func(shard int) engine.JournalSink {
				sink, err := engine.OpenFileJournal(filepath.Join(dir, "shard"+string(rune('0'+shard))+".journal"), 32)
				if err != nil {
					t.Fatalf("shard %d journal: %v", shard, err)
				}
				return sink
			},
			MeasureStart: in.MeasureStart,
			MeasureEnd:   in.MeasureEnd,
			Measured:     func(id int) bool { return measured[id] },
		}
		r, err := federation.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Serial through the router.
	svc := engine.NewVirtualClock()
	sr := newRouter(t, svc, t.TempDir())
	for _, j := range in.Jobs {
		j := j
		svc.AfterFunc(j.Submit, func() {
			if err := sr.SubmitJob(j); err != nil {
				t.Errorf("serial submit %d: %v", j.ID, err)
			}
		})
	}
	svc.Run()
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}

	// Batched through an identical router.
	bvc := engine.NewVirtualClock()
	br := newRouter(t, bvc, t.TempDir())
	q, err := NewQueue(Config{Backend: br, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches(in.Jobs) {
		batch := batch
		bvc.AfterFunc(batch[0].Submit, func() {
			results, err := q.SubmitBatch(batch)
			if err != nil {
				t.Errorf("batch at t=%d: %v", batch[0].Submit, err)
				return
			}
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("batch item %d: %v", r.Index, r.Err)
				}
			}
		})
	}
	bvc.Run()
	q.Close()
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}

	diffRecords(t, sr.Records(), br.Records())
	if sm, bm := sr.Metrics(), br.Metrics(); sm.Summary != bm.Summary {
		t.Errorf("summary diverges:\nserial  %+v\nbatched %+v", sm.Summary, bm.Summary)
	}
	shardRecs := make([][]sim.Record, br.NumShards())
	for i := range shardRecs {
		shardRecs[i] = br.ShardRecords(i)
	}
	if err := oracle.CheckFederation(in.Capacity, br.ShardCapacities(), in.Jobs, shardRecs); err != nil {
		t.Errorf("federation oracle: %v", err)
	}
}
