package ingest

import (
	"sync"

	"schedsearch/internal/job"
)

// Quotas rate-limits admissions per user with token buckets: each user
// accrues Rate tokens per engine-time second up to Burst, and every
// accepted item spends one. The engine clock (not the wall clock)
// drives refill, so quota behavior is deterministic under replay and
// scales with -speedup like everything else.
//
// Memory stays proportional to the recently active user population,
// not the user-ID space: a bucket that has refilled to Burst carries
// no information (a fresh bucket starts full), so a lazy sweep deletes
// full buckets as time passes. With ~1M simulated users hammering the
// daemon, only the users seen within the last Burst/Rate seconds hold
// a bucket.
type Quotas struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	now   func() job.Time

	buckets   map[int]*bucket
	lastSweep job.Time
	// sweepEvery spaces the lazy sweeps, in engine seconds.
	sweepEvery job.Duration
}

type bucket struct {
	tokens float64
	last   job.Time
}

// NewQuotas returns a quota table: rate tokens per second, bursts up
// to burst, with time read from now (pass the backend's clock —
// engine.Engine.Now fits). rate and burst are clamped to be positive.
func NewQuotas(rate, burst float64, now func() job.Time) *Quotas {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	sweep := job.Duration(burst/rate) + 1
	return &Quotas{
		rate:       rate,
		burst:      burst,
		now:        now,
		buckets:    make(map[int]*bucket),
		sweepEvery: sweep,
	}
}

// Allow spends one token from the user's bucket, reporting false when
// the bucket is empty (the item is rejected with ErrQuota).
func (q *Quotas) Allow(user int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	q.maybeSweep(now)
	b := q.buckets[user]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[user] = b
	} else if now > b.last {
		b.tokens += float64(now-b.last) * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// maybeSweep drops buckets that have refilled to Burst (indistinguish-
// able from absent) at most once per sweepEvery seconds, bounding the
// table by the recently active users.
func (q *Quotas) maybeSweep(now job.Time) {
	if now-q.lastSweep < q.sweepEvery {
		return
	}
	q.lastSweep = now
	for user, b := range q.buckets {
		if float64(now-b.last)*q.rate+b.tokens >= q.burst {
			delete(q.buckets, user)
		}
	}
}

// Users returns the number of live buckets (recently active users).
func (q *Quotas) Users() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
