// Package ingest is the high-throughput admission path between the
// HTTP front end (internal/server) and a scheduling backend (a bare
// engine or a federation router): an async accept queue with bounded
// memory and explicit backpressure, per-user token-bucket quotas, and
// group-committed handoff to the backend — one journal fsync per
// accepted batch group instead of one per job.
//
// The queue preserves submission order: a single committer goroutine
// drains enqueued batches FIFO and commits their items one at a time
// through the same Submit/SubmitJob calls a serial client would make,
// so batched ingest produces bit-identical schedules to the serial
// path (the differential tests assert this over the whole suite). One
// bad job rejects only its own slot: every item gets an individual
// result, and the batch as a whole succeeds.
//
// Backpressure is explicit and immediate: when accepting a batch would
// push the pending-item count past MaxPending, Enqueue fails with
// ErrSaturated and nothing is queued — the HTTP layer translates that
// into 503 + Retry-After, and the queue's memory stays bounded no
// matter how hard clients push.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"schedsearch/internal/job"
)

// ErrSaturated is returned by Enqueue when accepting the batch would
// exceed MaxPending. Nothing was queued; the client should retry after
// a short backoff.
var ErrSaturated = errors.New("ingest: accept queue saturated")

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("ingest: queue closed")

// ErrQuota is wrapped by per-item results when the submitting user's
// token bucket is empty (test with errors.Is). The item was never
// queued; the rest of its batch proceeds.
var ErrQuota = errors.New("ingest: user quota exceeded")

// Backend is the admission surface the committer drives; both
// *engine.Engine and *federation.Router satisfy it (it is a subset of
// server.Backend).
type Backend interface {
	// Submit admits a job with a backend-assigned ID.
	Submit(spec job.Job) (int, error)
	// SubmitJob admits a job keeping its caller-assigned ID.
	SubmitJob(j job.Job) error
}

// Syncer is the optional Backend extension for group commit: after
// committing a group of items, the committer calls SyncJournal once,
// making the whole group durable on a single fsync boundary.
type Syncer interface {
	SyncJournal() error
}

// Config configures a Queue.
type Config struct {
	// Backend receives the committed jobs.
	Backend Backend
	// MaxPending bounds accepted-but-uncommitted items across all
	// batches; 0 means 4096. Enqueue fails with ErrSaturated rather
	// than grow past it.
	MaxPending int
	// MaxBatch caps the items the committer folds into one commit
	// group (= one journal sync); 0 means 256. A single enqueued batch
	// larger than MaxBatch still commits as one group.
	MaxBatch int
	// Quotas, when non-nil, rate-limits items per user at accept time.
	Quotas *Quotas
}

// ItemResult is one batch item's outcome.
type ItemResult struct {
	// Index is the item's position in the submitted batch.
	Index int
	// ID is the admitted job's ID (assigned by the backend when the
	// item carried ID 0). Zero when Err != nil.
	ID int
	// Err is nil for admitted items; otherwise the admission error
	// (engine.ErrDuplicateID, engine.ErrDraining, ErrQuota, a
	// validation error, ...).
	Err error
}

// Ticket tracks one accepted batch through the queue. Done is closed
// once every item has been committed or rejected; Results is valid
// after that. A client that disconnects mid-batch simply abandons its
// ticket — the batch still commits (admission is not tied to the
// client's connection).
type Ticket struct {
	g *group
}

// Done returns a channel closed when the batch has fully committed.
func (t *Ticket) Done() <-chan struct{} { return t.g.done }

// Results returns the per-item outcomes, in item order. It must not be
// called before Done is closed.
func (t *Ticket) Results() []ItemResult { return t.g.results }

type group struct {
	items   []job.Job
	skip    []bool // pre-resolved at accept time (quota); committer skips
	results []ItemResult
	enq     time.Time
	done    chan struct{}
}

func (g *group) live() int {
	n := 0
	for _, s := range g.skip {
		if !s {
			n++
		}
	}
	return n
}

// Queue is the async accept queue. All methods are goroutine-safe.
type Queue struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	groups  []*group
	pending int // items accepted but not yet committed (in-flight included)
	closed  bool
	idle    chan struct{} // closed when the committer exits

	accepted    int64
	committed   int64
	rejected    int64
	quotaHits   int64
	saturations int64
	batches     int64
	syncGroups  int64
	peakPending int

	hist Hist
}

// NewQueue returns a started queue; Close releases its committer.
func NewQueue(cfg Config) (*Queue, error) {
	if cfg.Backend == nil {
		return nil, errors.New("ingest: nil backend")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	q := &Queue{cfg: cfg, idle: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.run()
	return q, nil
}

// Enqueue accepts a batch for asynchronous admission and returns its
// Ticket, or ErrSaturated (nothing queued, retry later) / ErrClosed.
// Quota rejections are resolved immediately: those items are never
// queued and carry ErrQuota in the ticket's results, while the rest of
// the batch proceeds.
func (q *Queue) Enqueue(jobs []job.Job) (*Ticket, error) {
	if len(jobs) == 0 {
		return nil, errors.New("ingest: empty batch")
	}
	g := &group{
		items:   jobs,
		skip:    make([]bool, len(jobs)),
		results: make([]ItemResult, len(jobs)),
		enq:     time.Now(),
		done:    make(chan struct{}),
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if q.pending+len(jobs) > q.cfg.MaxPending {
		q.saturations++
		q.mu.Unlock()
		return nil, ErrSaturated
	}
	live := len(jobs)
	for i := range jobs {
		g.results[i] = ItemResult{Index: i}
		if q.cfg.Quotas != nil && !q.cfg.Quotas.Allow(jobs[i].User) {
			g.skip[i] = true
			g.results[i].Err = fmt.Errorf("user %d: %w", jobs[i].User, ErrQuota)
			q.quotaHits++
			live--
		}
	}
	q.accepted += int64(live)
	q.batches++
	q.pending += live
	if q.pending > q.peakPending {
		q.peakPending = q.pending
	}
	if live == 0 {
		// Every item was quota-rejected; nothing to commit.
		q.mu.Unlock()
		close(g.done)
		return &Ticket{g: g}, nil
	}
	q.groups = append(q.groups, g)
	q.cond.Broadcast()
	q.mu.Unlock()
	return &Ticket{g: g}, nil
}

// SubmitBatch enqueues the batch and blocks until it has committed,
// returning the per-item results. It is the synchronous rendezvous the
// HTTP handler uses: the response is written only after the batch is
// durable (group commit included).
func (q *Queue) SubmitBatch(jobs []job.Job) ([]ItemResult, error) {
	t, err := q.Enqueue(jobs)
	if err != nil {
		return nil, err
	}
	<-t.Done()
	return t.Results(), nil
}

// run is the committer: it drains batches FIFO, folding consecutive
// batches into commit groups of up to MaxBatch items, commits each
// item through the backend in order, then syncs the backend journal
// once per group before resolving the tickets.
func (q *Queue) run() {
	defer close(q.idle)
	for {
		q.mu.Lock()
		for len(q.groups) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.groups) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		var take []*group
		n := 0
		for len(q.groups) > 0 {
			g := q.groups[0]
			if len(take) > 0 && n+g.live() > q.cfg.MaxBatch {
				break
			}
			take = append(take, g)
			n += g.live()
			q.groups = q.groups[1:]
		}
		q.mu.Unlock()

		committed := int64(0)
		for _, g := range take {
			for i := range g.items {
				if g.skip[i] {
					continue
				}
				j := g.items[i]
				if j.ID == 0 {
					id, err := q.cfg.Backend.Submit(j)
					g.results[i].ID = id
					g.results[i].Err = err
				} else {
					g.results[i].ID = j.ID
					if err := q.cfg.Backend.SubmitJob(j); err != nil {
						g.results[i].ID = 0
						g.results[i].Err = err
					}
				}
				if g.results[i].Err == nil {
					committed++
				}
			}
		}
		var syncErr error
		if committed > 0 {
			if s, ok := q.cfg.Backend.(Syncer); ok {
				syncErr = s.SyncJournal()
			}
		}

		q.mu.Lock()
		q.pending -= n
		q.committed += committed
		q.rejected += int64(n) - committed
		q.syncGroups++
		if syncErr != nil {
			// The group is not durable; fail every item that thought it
			// had committed (the backend is fatal at this point anyway).
			for _, g := range take {
				for i := range g.results {
					if !g.skip[i] && g.results[i].Err == nil {
						g.results[i].ID = 0
						g.results[i].Err = syncErr
					}
				}
			}
			q.committed -= committed
			q.rejected += committed
		}
		for _, g := range take {
			q.hist.ObserveN(time.Since(g.enq), len(g.items))
		}
		q.cond.Broadcast() // wake Flush waiters
		q.mu.Unlock()
		for _, g := range take {
			close(g.done)
		}
	}
}

// Flush blocks until every accepted item has been committed or
// rejected. The chaos harness calls it before advancing a virtual
// clock so fault schedules stay deterministic.
func (q *Queue) Flush() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.pending > 0 {
		q.cond.Wait()
	}
}

// Close stops accepting, lets the committer drain what was already
// accepted, and waits for it to exit.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.idle
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.idle
}

// Ready reports whether the queue is accepting: open and below the
// pending bound. The server's /v1/readyz consults it.
func (q *Queue) Ready() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return !q.closed && q.pending < q.cfg.MaxPending
}

// Stats is a point-in-time snapshot of the queue's counters.
type Stats struct {
	// Pending and PeakPending are the current and high-water pending
	// item counts; MaxPending is the configured bound PeakPending can
	// never exceed.
	Pending     int `json:"pending"`
	PeakPending int `json:"peak_pending"`
	MaxPending  int `json:"max_pending"`
	// Accepted counts items taken into the queue (quota rejections
	// excluded); Committed and Rejected split their outcomes.
	Accepted  int64 `json:"accepted"`
	Committed int64 `json:"committed"`
	Rejected  int64 `json:"rejected"`
	// QuotaRejected counts items refused at accept time by the per-
	// user token buckets; Saturations counts whole batches refused
	// with ErrSaturated.
	QuotaRejected int64 `json:"quota_rejected"`
	Saturations   int64 `json:"saturations"`
	// Batches counts accepted batches; SyncGroups counts committer
	// groups (= journal fsync boundaries). Batches/SyncGroups > 1
	// means group commit is folding concurrent batches.
	Batches    int64 `json:"batches"`
	SyncGroups int64 `json:"sync_groups"`
	// QuotaUsers is the number of live token buckets (recently active
	// users), when quotas are enabled.
	QuotaUsers int `json:"quota_users,omitempty"`
	// Latency is the accept-to-commit latency histogram.
	Latency HistSnapshot `json:"latency"`
}

// Stats returns the queue's counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Pending:       q.pending,
		PeakPending:   q.peakPending,
		MaxPending:    q.cfg.MaxPending,
		Accepted:      q.accepted,
		Committed:     q.committed,
		Rejected:      q.rejected,
		QuotaRejected: q.quotaHits,
		Saturations:   q.saturations,
		Batches:       q.batches,
		SyncGroups:    q.syncGroups,
		Latency:       q.hist.Snapshot(),
	}
	if q.cfg.Quotas != nil {
		st.QuotaUsers = q.cfg.Quotas.Users()
	}
	return st
}
