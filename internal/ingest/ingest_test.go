package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"schedsearch/internal/job"
)

// fakeBackend is a scriptable Backend: Submit assigns sequential IDs,
// SubmitJob rejects IDs in reject, and an optional gate blocks every
// commit until released (to hold items pending for saturation tests).
type fakeBackend struct {
	mu       sync.Mutex
	nextID   int
	accepted []job.Job
	reject   map[int]error
	gate     chan struct{}
	syncs    int
	syncErr  error
}

func (b *fakeBackend) wait() {
	if b.gate != nil {
		<-b.gate
	}
}

func (b *fakeBackend) Submit(spec job.Job) (int, error) {
	b.wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	spec.ID = b.nextID
	b.accepted = append(b.accepted, spec)
	return spec.ID, nil
}

func (b *fakeBackend) SubmitJob(j job.Job) error {
	b.wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.reject[j.ID]; err != nil {
		return err
	}
	b.accepted = append(b.accepted, j)
	return nil
}

func (b *fakeBackend) SyncJournal() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.syncs++
	return b.syncErr
}

func (b *fakeBackend) committed() []job.Job {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]job.Job(nil), b.accepted...)
}

func newTestQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := NewQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

func TestQueueCommitsInOrder(t *testing.T) {
	b := &fakeBackend{}
	q := newTestQueue(t, Config{Backend: b})
	var jobs []job.Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, job.Job{ID: i + 1, Nodes: 1, Runtime: 60, Request: 60, User: i % 3})
	}
	results, err := q.SubmitBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.ID != i+1 {
			t.Fatalf("item %d got ID %d", i, r.ID)
		}
	}
	got := b.committed()
	for i, j := range got {
		if j.ID != i+1 {
			t.Fatalf("commit order broken: position %d holds job %d", i, j.ID)
		}
	}
	st := q.Stats()
	if st.Accepted != 10 || st.Committed != 10 || st.Rejected != 0 || st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
	if b.syncs != 1 {
		t.Fatalf("backend synced %d times, want 1 group sync", b.syncs)
	}
	if st.Latency.Count != 10 {
		t.Fatalf("latency histogram saw %d samples, want 10", st.Latency.Count)
	}
}

func TestQueueAssignsIDsForZeroIDItems(t *testing.T) {
	b := &fakeBackend{}
	q := newTestQueue(t, Config{Backend: b})
	results, err := q.SubmitBatch([]job.Job{
		{Nodes: 1, Runtime: 60, Request: 60},
		{Nodes: 2, Runtime: 60, Request: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID != 1 || results[1].ID != 2 {
		t.Fatalf("backend-assigned IDs: %+v", results)
	}
}

func TestQueuePerItemRejection(t *testing.T) {
	dup := errors.New("duplicate id")
	b := &fakeBackend{reject: map[int]error{2: dup}}
	q := newTestQueue(t, Config{Backend: b})
	results, err := q.SubmitBatch([]job.Job{
		{ID: 1, Nodes: 1, Runtime: 60, Request: 60},
		{ID: 2, Nodes: 1, Runtime: 60, Request: 60},
		{ID: 3, Nodes: 1, Runtime: 60, Request: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good items rejected: %+v", results)
	}
	if !errors.Is(results[1].Err, dup) || results[1].ID != 0 {
		t.Fatalf("bad item result %+v, want the backend error and ID 0", results[1])
	}
	st := q.Stats()
	if st.Committed != 2 || st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := b.committed(); len(got) != 2 {
		t.Fatalf("backend holds %d jobs, want 2", len(got))
	}
}

func TestQueueSaturation(t *testing.T) {
	gate := make(chan struct{})
	b := &fakeBackend{gate: gate}
	q := newTestQueue(t, Config{Backend: b, MaxPending: 3})

	// Two items go in and stall at the gated backend.
	first, err := q.Enqueue([]job.Job{
		{ID: 1, Nodes: 1, Runtime: 60, Request: 60},
		{ID: 2, Nodes: 1, Runtime: 60, Request: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A batch that would push pending to 4 > 3 must bounce whole.
	if _, err := q.Enqueue([]job.Job{
		{ID: 3, Nodes: 1, Runtime: 60, Request: 60},
		{ID: 4, Nodes: 1, Runtime: 60, Request: 60},
	}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("enqueue past bound: %v, want ErrSaturated", err)
	}
	if q.Ready() {
		// pending=2 < 3, so Ready stays true: saturation is per-batch.
		// (Only a full queue flips readiness.)
	}
	// One more item still fits.
	if _, err := q.Enqueue([]job.Job{{ID: 5, Nodes: 1, Runtime: 60, Request: 60}}); err != nil {
		t.Fatalf("enqueue within bound: %v", err)
	}
	if q.Ready() {
		t.Fatal("queue at MaxPending must report not ready")
	}
	st := q.Stats()
	if st.Saturations != 1 || st.Pending != 3 || st.PeakPending != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.PeakPending > st.MaxPending {
		t.Fatalf("peak pending %d exceeded bound %d", st.PeakPending, st.MaxPending)
	}

	close(gate)
	<-first.Done()
	q.Flush()
	if !q.Ready() {
		t.Fatal("drained queue must be ready again")
	}
	if got := q.Stats(); got.Pending != 0 || got.Committed != 3 {
		t.Fatalf("after drain: %+v", got)
	}
}

func TestQueueCloseRejectsAndDrains(t *testing.T) {
	b := &fakeBackend{}
	q, err := NewQueue(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := q.Enqueue([]job.Job{{ID: 1, Nodes: 1, Runtime: 60, Request: 60}})
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	// The accepted batch drained before Close returned.
	select {
	case <-tk.Done():
	default:
		t.Fatal("Close returned before the accepted batch committed")
	}
	if r := tk.Results()[0]; r.Err != nil {
		t.Fatalf("drained item failed: %v", r.Err)
	}
	if _, err := q.Enqueue([]job.Job{{ID: 2, Nodes: 1, Runtime: 60, Request: 60}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	if q.Ready() {
		t.Fatal("closed queue must not be ready")
	}
	q.Close() // idempotent
}

func TestQueueEmptyBatch(t *testing.T) {
	q := newTestQueue(t, Config{Backend: &fakeBackend{}})
	if _, err := q.Enqueue(nil); err == nil {
		t.Fatal("empty batch must error")
	}
}

func TestQueueSyncFailureFailsGroup(t *testing.T) {
	b := &fakeBackend{syncErr: errors.New("disk gone")}
	q := newTestQueue(t, Config{Backend: b})
	results, err := q.SubmitBatch([]job.Job{{ID: 1, Nodes: 1, Runtime: 60, Request: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, b.syncErr) || results[0].ID != 0 {
		t.Fatalf("item survived a failed group sync: %+v", results[0])
	}
	st := q.Stats()
	if st.Committed != 0 || st.Rejected != 1 {
		t.Fatalf("stats after sync failure: %+v", st)
	}
}

func TestQueueGroupCommitFoldsBatches(t *testing.T) {
	gate := make(chan struct{})
	b := &fakeBackend{gate: gate}
	q := newTestQueue(t, Config{Backend: b, MaxBatch: 100, MaxPending: 1000})
	// First batch engages the committer and stalls at the gate; the
	// rest pile up and must fold into one commit group = one sync.
	var tickets []*Ticket
	for i := 0; i < 10; i++ {
		tk, err := q.Enqueue([]job.Job{{ID: i + 1, Nodes: 1, Runtime: 60, Request: 60}})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	close(gate)
	for _, tk := range tickets {
		<-tk.Done()
	}
	st := q.Stats()
	if st.Batches != 10 {
		t.Fatalf("batches %d, want 10", st.Batches)
	}
	if st.SyncGroups >= st.Batches {
		t.Fatalf("no folding: %d sync groups for %d batches", st.SyncGroups, st.Batches)
	}
	if b.syncs != int(st.SyncGroups) {
		t.Fatalf("backend saw %d syncs, stats say %d groups", b.syncs, st.SyncGroups)
	}
}

func TestQuotaRejectionsResolveImmediately(t *testing.T) {
	clock := job.Time(0)
	quotas := NewQuotas(1, 2, func() job.Time { return clock })
	b := &fakeBackend{}
	q := newTestQueue(t, Config{Backend: b, Quotas: quotas})

	// Burst 2: the third same-user item in one instant is rejected.
	results, err := q.SubmitBatch([]job.Job{
		{ID: 1, Nodes: 1, Runtime: 60, Request: 60, User: 7},
		{ID: 2, Nodes: 1, Runtime: 60, Request: 60, User: 7},
		{ID: 3, Nodes: 1, Runtime: 60, Request: 60, User: 7},
		{ID: 4, Nodes: 1, Runtime: 60, Request: 60, User: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err != nil || results[3].Err != nil {
		t.Fatalf("in-quota items rejected: %+v", results)
	}
	if !errors.Is(results[2].Err, ErrQuota) {
		t.Fatalf("over-quota item: %v, want ErrQuota", results[2].Err)
	}
	st := q.Stats()
	if st.QuotaRejected != 1 || st.Accepted != 3 || st.Committed != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.QuotaUsers != 2 {
		t.Fatalf("quota users %d, want 2", st.QuotaUsers)
	}

	// A batch rejected in full resolves without touching the committer.
	tk, err := q.Enqueue([]job.Job{{ID: 5, Nodes: 1, Runtime: 60, Request: 60, User: 7}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	case <-time.After(time.Second):
		t.Fatal("all-quota-rejected batch did not resolve immediately")
	}
	if !errors.Is(tk.Results()[0].Err, ErrQuota) {
		t.Fatalf("result %+v", tk.Results()[0])
	}

	// Refill: one engine-second restores one token.
	clock = 1
	results, err = q.SubmitBatch([]job.Job{{ID: 6, Nodes: 1, Runtime: 60, Request: 60, User: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("refilled user still rejected: %v", results[0].Err)
	}
}

func TestQuotasRefillAndSweep(t *testing.T) {
	clock := job.Time(0)
	q := NewQuotas(0.5, 4, func() job.Time { return clock })

	for i := 0; i < 4; i++ {
		if !q.Allow(1) {
			t.Fatalf("burst draw %d refused", i)
		}
	}
	if q.Allow(1) {
		t.Fatal("empty bucket allowed a draw")
	}
	// 0.5 tokens/s: after 1s still empty, after 2s one token.
	clock = 1
	if q.Allow(1) {
		t.Fatal("refill too fast")
	}
	clock = 2
	if !q.Allow(1) {
		t.Fatal("token not refilled")
	}
	if q.Users() != 1 {
		t.Fatalf("users %d, want 1", q.Users())
	}

	// Full buckets are swept: long idle → table empties even though
	// other users keep arriving.
	clock = 100
	if !q.Allow(2) {
		t.Fatal("fresh user refused")
	}
	if n := q.Users(); n > 2 {
		t.Fatalf("users %d after sweep window", n)
	}
	clock = 200
	q.Allow(3) // triggers the next sweep; users 1 and 2 are full again
	if n := q.Users(); n > 2 {
		t.Fatalf("sweep kept %d buckets", n)
	}
}

func TestQuotasClamping(t *testing.T) {
	q := NewQuotas(-1, 0, func() job.Time { return 0 })
	if !q.Allow(1) {
		t.Fatal("clamped quotas must allow at least one draw")
	}
	if q.Allow(1) {
		t.Fatal("burst clamped to 1, second draw must fail")
	}
}

func TestHistQuantilesAndBuckets(t *testing.T) {
	var h Hist
	if s := h.Snapshot(); s.Count != 0 || s.P99Us != 0 {
		t.Fatalf("zero hist snapshot %+v", s)
	}
	// 90 fast samples (~3µs) and 10 slow (~1000µs).
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	// Quantiles are conservative bucket upper bounds: p50 covers the
	// 3µs mass (bucket le=4), p99 the 1000µs mass (le=1024).
	if s.P50Us != 4 {
		t.Fatalf("p50 %dµs, want 4", s.P50Us)
	}
	if s.P99Us != 1024 {
		t.Fatalf("p99 %dµs, want 1024", s.P99Us)
	}
	if s.MaxUs != 1000 {
		t.Fatalf("max %dµs", s.MaxUs)
	}
	// Cumulative buckets end at the last non-empty one, monotone.
	if len(s.BucketLeUs) == 0 || s.BucketCount[len(s.BucketCount)-1] != 100 {
		t.Fatalf("buckets %+v", s)
	}
	for i := 1; i < len(s.BucketCount); i++ {
		if s.BucketCount[i] < s.BucketCount[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", s.BucketCount)
		}
	}
	// ObserveN attributes the same latency to every item of a batch.
	h.ObserveN(3*time.Microsecond, 5)
	if got := h.Snapshot().Count; got != 105 {
		t.Fatalf("count after ObserveN %d", got)
	}
	h.ObserveN(time.Microsecond, 0) // no-op
	if got := h.Snapshot().Count; got != 105 {
		t.Fatalf("ObserveN(0) changed count to %d", got)
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	b := &fakeBackend{}
	q := newTestQueue(t, Config{Backend: b, MaxPending: 10000})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				results, err := q.SubmitBatch([]job.Job{{
					Nodes: 1, Runtime: 60, Request: 60, User: w,
				}})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if results[0].Err != nil {
					t.Errorf("worker %d item: %v", w, results[0].Err)
				}
			}
		}(w)
	}
	wg.Wait()
	st := q.Stats()
	if st.Committed != workers*perWorker {
		t.Fatalf("committed %d, want %d", st.Committed, workers*perWorker)
	}
	seen := make(map[int]bool)
	for _, j := range b.committed() {
		if seen[j.ID] {
			t.Fatalf("job %d committed twice", j.ID)
		}
		seen[j.ID] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("%d unique jobs, want %d", len(seen), workers*perWorker)
	}
}

func TestNewQueueValidation(t *testing.T) {
	if _, err := NewQueue(Config{}); err == nil {
		t.Fatal("nil backend must error")
	}
}

func TestStatsInvariant(t *testing.T) {
	// Accepted = Committed + Rejected + Pending must hold at rest.
	b := &fakeBackend{reject: map[int]error{3: fmt.Errorf("no")}}
	q := newTestQueue(t, Config{Backend: b})
	if _, err := q.SubmitBatch([]job.Job{
		{ID: 1, Nodes: 1, Runtime: 60, Request: 60},
		{ID: 3, Nodes: 1, Runtime: 60, Request: 60},
	}); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Accepted != st.Committed+st.Rejected+int64(st.Pending) {
		t.Fatalf("invariant broken: %+v", st)
	}
}
