package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/metrics"
)

func init() {
	All = append(All, Experiment{
		ID:    "verify",
		Title: "Verify the paper's headline claims programmatically",
		Run:   RunVerify,
	})
}

// Claim is one of the paper's falsifiable conclusions, checked against
// a regenerated experiment.
type Claim struct {
	ID     string
	Text   string
	Holds  bool
	Detail string
}

// VerifyClaims regenerates Figures 3 and 4 and checks the paper's
// stated conclusions. Claims are phrased as month-aggregate statements
// so they are robust to workload-synthesis noise at any scale.
func VerifyClaims(cfg Config) ([]Claim, error) {
	cfg = cfg.withDefaults()
	fig3, err := Fig3Result(cfg)
	if err != nil {
		return nil, err
	}
	fig4, err := Fig4Result(cfg)
	if err != nil {
		return nil, err
	}
	return verifyFrom(fig3, fig4), nil
}

// verifyFrom evaluates the claims against precomputed comparisons
// (shared with the replication harness).
func verifyFrom(fig3, fig4 *CompareResult) []Claim {
	collect := func(r *CompareResult, policy string, get func(metrics.Summary) float64) []float64 {
		out := make([]float64, len(r.Months))
		for i, m := range r.Months {
			out[i] = get(r.Summaries[policy][m])
		}
		return out
	}
	meanOf := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	winsLE := func(a, b []float64) int {
		n := 0
		for i := range a {
			if a[i] <= b[i]+1e-9 {
				n++
			}
		}
		return n
	}
	maxWait := func(s metrics.Summary) float64 { return s.MaxWaitH }
	avgWait := func(s metrics.Summary) float64 { return s.AvgWaitH }
	bsld := func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown }

	var claims []Claim
	add := func(id, text string, holds bool, detail string) {
		claims = append(claims, Claim{ID: id, Text: text, Holds: holds, Detail: detail})
	}

	nMonths := len(fig3.Months)

	// Claim 1 (Section 3.2 / Figure 3): LXF-backfill improves the
	// average slowdown of FCFS-backfill...
	f3FcfsB, f3LxfB := collect(fig3, "FCFS-backfill", bsld), collect(fig3, "LXF-backfill", bsld)
	add("lxf-beats-fcfs-averages",
		"LXF-backfill has a lower mean avg bounded slowdown than FCFS-backfill (original load)",
		meanOf(f3LxfB) < meanOf(f3FcfsB),
		fmt.Sprintf("LXF %.1f vs FCFS %.1f", meanOf(f3LxfB), meanOf(f3FcfsB)))

	// Claim 2: ...but has a worse maximum wait (the trade-off).
	f3FcfsM, f3LxfM := collect(fig3, "FCFS-backfill", maxWait), collect(fig3, "LXF-backfill", maxWait)
	add("lxf-worse-max-wait",
		"LXF-backfill has a worse mean maximum wait than FCFS-backfill (original load)",
		meanOf(f3LxfM) > meanOf(f3FcfsM),
		fmt.Sprintf("LXF %.1f h vs FCFS %.1f h", meanOf(f3LxfM), meanOf(f3FcfsM)))

	// Claim 3 (the headline, Figure 3): DDS/lxf/dynB beats LXF-backfill
	// on max wait in (nearly) every month.
	f3DdsM := collect(fig3, "DDS/lxf/dynB", maxWait)
	w := winsLE(f3DdsM, f3LxfM)
	add("dds-best-max-wait",
		"DDS/lxf/dynB's max wait beats LXF-backfill's in >= 80% of months (original load)",
		w*10 >= nMonths*8,
		fmt.Sprintf("%d/%d months", w, nMonths))

	// Claim 4: while tracking LXF-backfill's averages far below
	// FCFS-backfill's.
	f3DdsB := collect(fig3, "DDS/lxf/dynB", bsld)
	add("dds-near-lxf-averages",
		"DDS/lxf/dynB's mean avg bounded slowdown is much closer to LXF-backfill's than to FCFS-backfill's",
		meanOf(f3DdsB)-meanOf(f3LxfB) < (meanOf(f3FcfsB)-meanOf(f3DdsB)),
		fmt.Sprintf("DDS %.1f, LXF %.1f, FCFS %.1f", meanOf(f3DdsB), meanOf(f3LxfB), meanOf(f3FcfsB)))

	// Claim 5 (Figure 4): the performance differences grow under high
	// load (measured on the FCFS-LXF slowdown gap).
	f4FcfsB, f4LxfB := collect(fig4, "FCFS-backfill", bsld), collect(fig4, "LXF-backfill", bsld)
	add("high-load-widens-gap",
		"the FCFS-vs-LXF slowdown gap is larger at rho=0.9 than at the original load",
		meanOf(f4FcfsB)-meanOf(f4LxfB) > meanOf(f3FcfsB)-meanOf(f3LxfB),
		fmt.Sprintf("gap %.1f at rho=0.9 vs %.1f at original", meanOf(f4FcfsB)-meanOf(f4LxfB), meanOf(f3FcfsB)-meanOf(f3LxfB)))

	// Claim 6 (Figure 4f): DDS/lxf/dynB's total E^max is close to zero
	// in most months while LXF-backfill's is large.
	var ddsEx, lxfEx float64
	ddsSmall := 0
	for _, m := range fig4.Months {
		ddsEx += fig4.ExcessMax["DDS/lxf/dynB"][m].TotalH
		lxfEx += fig4.ExcessMax["LXF-backfill"][m].TotalH
		if fig4.ExcessMax["DDS/lxf/dynB"][m].TotalH < 50 {
			ddsSmall++
		}
	}
	add("dds-near-zero-excess",
		"DDS/lxf/dynB has near-zero total E^max in >= 70% of months and an order of magnitude less than LXF-backfill overall (rho=0.9)",
		ddsSmall*10 >= nMonths*7 && ddsEx*5 < lxfEx,
		fmt.Sprintf("small in %d/%d months; totals %.0f h vs LXF %.0f h", ddsSmall, nMonths, ddsEx, lxfEx))

	// Claim 7 (Figure 4a): FCFS-backfill has the worst mean average
	// wait under high load.
	f4FcfsA := collect(fig4, "FCFS-backfill", avgWait)
	f4LxfA := collect(fig4, "LXF-backfill", avgWait)
	f4DdsA := collect(fig4, "DDS/lxf/dynB", avgWait)
	add("fcfs-worst-avg-wait-high-load",
		"FCFS-backfill has the worst mean average wait at rho=0.9",
		meanOf(f4FcfsA) > meanOf(f4LxfA) && meanOf(f4FcfsA) > meanOf(f4DdsA),
		fmt.Sprintf("FCFS %.2f, LXF %.2f, DDS %.2f h", meanOf(f4FcfsA), meanOf(f4LxfA), meanOf(f4DdsA)))

	return claims
}

// RunVerify prints the claim checklist; it fails (returns an error) if
// any claim does not hold, making it usable as a CI gate.
func RunVerify(cfg Config, w io.Writer) error {
	claims, err := VerifyClaims(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Verifying the paper's headline claims ===")
	failed := 0
	for _, c := range claims {
		status := "PASS"
		if !c.Holds {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "[%s] %-32s %s\n       measured: %s\n", status, c.ID, c.Text, c.Detail)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d claims failed", failed, len(claims))
	}
	fmt.Fprintf(w, "\nall %d claims hold\n", len(claims))
	return nil
}
