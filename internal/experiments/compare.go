package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/core"
	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// CompareResult is a policy-by-month grid of the paper's measures, the
// shared shape of Figures 3, 4 and 8.
type CompareResult struct {
	Months   []string
	Policies []string
	// Summaries[policy][month]
	Summaries map[string]map[string]metrics.Summary
	// Excess98 and ExcessMax hold the normalized excessive-wait
	// summaries w.r.t. FCFS-backfill's 98th-percentile and maximum wait
	// of the same month (the paper's E^98% and E^max), when computed.
	Excess98  map[string]map[string]metrics.Excess
	ExcessMax map[string]map[string]metrics.Excess
}

// Get returns the summary for (policy, month).
func (r *CompareResult) Get(policyName, month string) metrics.Summary {
	return r.Summaries[policyName][month]
}

// comparePolicies runs the grid and computes summaries plus, when
// refPolicy is non-empty, the excessive-wait measures w.r.t. that
// policy's per-month max and 98th-percentile wait.
func comparePolicies(cfg Config, opt workload.SimOptions, specs []PolicySpec, refPolicy string) (*CompareResult, error) {
	cfg = cfg.withDefaults()
	results, err := runGrid(cfg, opt, specs)
	if err != nil {
		return nil, err
	}
	out := &CompareResult{
		Months:    cfg.Months,
		Summaries: map[string]map[string]metrics.Summary{},
	}
	for _, s := range specs {
		out.Policies = append(out.Policies, s.Name)
		out.Summaries[s.Name] = map[string]metrics.Summary{}
	}
	for _, m := range cfg.Months {
		for _, s := range specs {
			out.Summaries[s.Name][m] = metrics.Summarize(results[runKey{m, s.Name}])
		}
	}
	if refPolicy != "" {
		out.Excess98 = map[string]map[string]metrics.Excess{}
		out.ExcessMax = map[string]map[string]metrics.Excess{}
		for _, s := range specs {
			out.Excess98[s.Name] = map[string]metrics.Excess{}
			out.ExcessMax[s.Name] = map[string]metrics.Excess{}
		}
		for _, m := range cfg.Months {
			ref := out.Summaries[refPolicy][m]
			for _, s := range specs {
				res := results[runKey{m, s.Name}]
				out.Excess98[s.Name][m] = metrics.ExcessiveWait(res, ref.P98WaitH)
				out.ExcessMax[s.Name][m] = metrics.ExcessiveWait(res, ref.MaxWaitH)
			}
		}
	}
	return out, nil
}

// headlineSpecs are FCFS-backfill, LXF-backfill and DDS/lxf/dynB with a
// per-month node limit, the cast of Figures 3, 4 and 8.
func headlineSpecs(cfg Config, limitFor func(month string) int) []PolicySpec {
	return []PolicySpec{
		{Name: "FCFS-backfill", New: func(string) sim.Policy { return policy.FCFSBackfill() }},
		{Name: "LXF-backfill", New: func(string) sim.Policy { return policy.LXFBackfill() }},
		{Name: "DDS/lxf/dynB", New: func(month string) sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), limitFor(month))
		}},
	}
}

// writeMeasure renders one measure as a table (months as columns) and a
// bar chart, mirroring one panel of a figure.
func (r *CompareResult) writeMeasure(w io.Writer, title, unit string, get func(metrics.Summary) float64) {
	t := report.NewTable(title, "policy", r.Months...)
	chart := report.NewBarChart(title, unit, r.Policies...)
	type gcell struct {
		label string
		vals  []float64
	}
	groups := make([]gcell, len(r.Months))
	for mi, m := range r.Months {
		groups[mi] = gcell{label: m, vals: make([]float64, len(r.Policies))}
	}
	for _, p := range r.Policies {
		vals := make([]float64, len(r.Months))
		for mi, m := range r.Months {
			vals[mi] = get(r.Summaries[p][m])
			groups[mi].vals[indexOf(r.Policies, p)] = vals[mi]
		}
		t.AddFloats(p, 2, vals...)
	}
	t.Write(w)
	fmt.Fprintln(w)
	for _, g := range groups {
		chart.AddGroup(g.label, g.vals...)
	}
	chart.Write(w)
	fmt.Fprintln(w)
}

// writeExcess renders one excessive-wait panel.
func (r *CompareResult) writeExcess(w io.Writer, title string, src map[string]map[string]metrics.Excess, get func(metrics.Excess) float64) {
	t := report.NewTable(title, "policy", r.Months...)
	for _, p := range r.Policies {
		vals := make([]float64, len(r.Months))
		for mi, m := range r.Months {
			vals[mi] = get(src[p][m])
		}
		t.AddFloats(p, 1, vals...)
	}
	t.Write(w)
	fmt.Fprintln(w)
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// RunFig3 regenerates Figure 3: FCFS-backfill vs LXF-backfill vs
// DDS/lxf/dynB (L=1K) under the original load, with panels (a) average
// wait, (b) maximum wait, (c) average bounded slowdown.
func RunFig3(cfg Config, w io.Writer) error {
	res, err := Fig3Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Figure 3: original load, R*=T, L=1K ===")
	res.writeMeasure(w, "(a) average wait", "h", func(s metrics.Summary) float64 { return s.AvgWaitH })
	res.writeMeasure(w, "(b) maximum wait", "h", func(s metrics.Summary) float64 { return s.MaxWaitH })
	res.writeMeasure(w, "(c) average bounded slowdown", "", func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown })
	return nil
}

// Fig3Result computes Figure 3's data.
func Fig3Result(cfg Config) (*CompareResult, error) {
	cfg = cfg.withDefaults()
	limitFor := func(string) int { return cfg.limit(1000) }
	return comparePolicies(cfg, workload.SimOptions{}, headlineSpecs(cfg, limitFor), "FCFS-backfill")
}

// RunFig4 regenerates Figure 4: the same comparison under high load
// (rho = 0.9), with the additional excessive-wait and queue-length
// panels. DDS/lxf/dynB uses L=8K for January 2004 and L=1K elsewhere,
// as in the paper.
func RunFig4(cfg Config, w io.Writer) error {
	res, err := Fig4Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Figure 4: high load (rho=0.9), R*=T, L=1K (8K for 1/04) ===")
	res.writeMeasure(w, "(a) average wait", "h", func(s metrics.Summary) float64 { return s.AvgWaitH })
	res.writeMeasure(w, "(b) maximum wait", "h", func(s metrics.Summary) float64 { return s.MaxWaitH })
	res.writeMeasure(w, "(c) average bounded slowdown", "", func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown })
	res.writeMeasure(w, "(d) average queue length", "jobs", func(s metrics.Summary) float64 { return s.AvgQueueLen })
	res.writeExcess(w, "(e) total excessive wait w.r.t. 98%-ile wait of FCFS-backfill (h)", res.Excess98, func(e metrics.Excess) float64 { return e.TotalH })
	res.writeExcess(w, "(f) total excessive wait w.r.t. max wait of FCFS-backfill (h)", res.ExcessMax, func(e metrics.Excess) float64 { return e.TotalH })
	res.writeExcess(w, "(g) # jobs with excessive wait w.r.t. max wait of FCFS-backfill", res.ExcessMax, func(e metrics.Excess) float64 { return float64(e.Count) })
	res.writeExcess(w, "(h) avg excessive wait w.r.t. max wait of FCFS-backfill (h)", res.ExcessMax, func(e metrics.Excess) float64 { return e.AvgH })
	return nil
}

// Fig4Result computes Figure 4's data.
func Fig4Result(cfg Config) (*CompareResult, error) {
	cfg = cfg.withDefaults()
	limitFor := func(month string) int {
		if month == "1/04" {
			return cfg.limit(8000)
		}
		return cfg.limit(1000)
	}
	return comparePolicies(cfg, workload.SimOptions{TargetLoad: 0.9}, headlineSpecs(cfg, limitFor), "FCFS-backfill")
}

// RunFig8 regenerates Figure 8: the high-load comparison when schedulers
// only see user-requested runtimes (R* = R), with L=4K everywhere.
func RunFig8(cfg Config, w io.Writer) error {
	res, err := Fig8Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Figure 8: inaccurate requested runtimes (R*=R), rho=0.9, L=4K ===")
	res.writeMeasure(w, "(a) average wait", "h", func(s metrics.Summary) float64 { return s.AvgWaitH })
	res.writeMeasure(w, "(b) maximum wait", "h", func(s metrics.Summary) float64 { return s.MaxWaitH })
	res.writeMeasure(w, "(c) average bounded slowdown", "", func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown })
	res.writeExcess(w, "(d) total excessive wait w.r.t. max wait of FCFS-backfill (h)", res.ExcessMax, func(e metrics.Excess) float64 { return e.TotalH })
	return nil
}

// Fig8Result computes Figure 8's data.
func Fig8Result(cfg Config) (*CompareResult, error) {
	cfg = cfg.withDefaults()
	limitFor := func(string) int { return cfg.limit(4000) }
	opt := workload.SimOptions{TargetLoad: 0.9, UseRequested: true}
	return comparePolicies(cfg, opt, headlineSpecs(cfg, limitFor), "FCFS-backfill")
}
