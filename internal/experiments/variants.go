package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func init() {
	All = append(All, Experiment{
		ID:    "ext-variants",
		Title: "Extension: published backfill variants vs the two baselines (Section 3.2)",
		Run:   RunExtVariants,
	})
}

// RunExtVariants reproduces the paper's Section 3.2 aside: on these
// workloads Selective-backfill behaves like LXF-backfill and Lookahead
// behaves like FCFS-backfill (results the paper mentions but does not
// show "to conserve space"); the other published variants are included
// for completeness.
func RunExtVariants(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "=== Extension: backfill variants vs baselines, rho=0.9 ===")
	specs := []PolicySpec{
		{Name: "FCFS-backfill", New: func(string) sim.Policy { return policy.FCFSBackfill() }},
		{Name: "LXF-backfill", New: func(string) sim.Policy { return policy.LXFBackfill() }},
		{Name: "Selective-backfill", New: func(string) sim.Policy { return policy.NewSelectiveBackfill() }},
		{Name: "Lookahead", New: func(string) sim.Policy { return policy.NewLookahead() }},
		{Name: "Slack-backfill", New: func(string) sim.Policy { return policy.NewSlackBackfill() }},
		{Name: "Relaxed-backfill", New: func(string) sim.Policy { return policy.NewRelaxedBackfill() }},
		{Name: "Conservative-backfill", New: func(string) sim.Policy { return policy.ConservativeBackfill(policy.FCFS{}) }},
	}
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return err
	}
	for _, panel := range []struct {
		title string
		get   func(metrics.Summary) float64
		prec  int
	}{
		{"(a) average wait (h)", func(s metrics.Summary) float64 { return s.AvgWaitH }, 2},
		{"(b) maximum wait (h)", func(s metrics.Summary) float64 { return s.MaxWaitH }, 1},
		{"(c) average bounded slowdown", func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown }, 1},
		{"(d) utilized load", func(s metrics.Summary) float64 { return s.UtilizedLoad }, 3},
	} {
		t := report.NewTable(panel.title, "policy", cfg.Months...)
		for _, s := range specs {
			vals := make([]float64, len(cfg.Months))
			for mi, m := range cfg.Months {
				vals[mi] = panel.get(metrics.Summarize(results[runKey{m, s.Name}]))
			}
			t.AddFloats(s.Name, panel.prec, vals...)
		}
		t.Write(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Expected (paper, Section 3.2): Selective-backfill tracks LXF-backfill;")
	fmt.Fprintln(w, "Lookahead tracks FCFS-backfill.")
	return nil
}
