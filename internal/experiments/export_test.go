package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExportCSV(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 1, Scale: 0.08, LimitScale: 0.05, Months: []string{"6/03", "9/03"}}
	if err := ExportCSV(cfg, dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig2_max_wait.csv", "fig2_avg_bsld.csv",
		"fig3_avg_wait.csv", "fig3_max_wait.csv", "fig3_avg_bsld.csv", "fig3_total_excess_max.csv",
		"fig4_avg_wait.csv", "fig4_max_wait.csv", "fig4_avg_bsld.csv", "fig4_total_excess_max.csv",
		"fig7_avg_bsld.csv", "fig7_total_excess_max.csv",
	}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 3 {
			t.Fatalf("%s: only %d lines", name, len(lines))
		}
		header := strings.Split(lines[0], ",")
		if len(header) != 3 { // label + two months
			t.Fatalf("%s: header %q", name, lines[0])
		}
		if header[1] != "6/03" || header[2] != "9/03" {
			t.Fatalf("%s: month columns %v", name, header[1:])
		}
		for _, l := range lines[1:] {
			if strings.Count(l, ",") != 2 {
				t.Fatalf("%s: malformed row %q", name, l)
			}
		}
	}
}

func TestExportCSVBadDir(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.05, Months: []string{"6/03"}}
	if err := ExportCSV(cfg, "/dev/null/nope"); err == nil {
		t.Error("unwritable directory accepted")
	}
}
