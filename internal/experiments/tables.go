package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/report"
	"schedsearch/internal/workload"
)

// RunTable2 prints the modeled system configuration (Table 2).
func RunTable2(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "=== Table 2: capacity and job limits on IA-64 ===")
	t := report.NewTable("", "period", "capacity (#nodes)", "job limit N", "job limit R")
	t.AddRow("6/03 - 11/03", "128", "128", "12h")
	t.AddRow("12/03 - 3/04", "128", "128", "24h")
	t.Write(w)
	return nil
}

// RunTable3 prints the published Table 3 job-mix targets next to the
// generated workload's values, per month.
func RunTable3(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	fmt.Fprintln(w, "=== Table 3: monthly job mix (paper spec vs generated) ===")
	cols := []string{"total"}
	for _, r := range job.Table3NodeRanges {
		cols = append(cols, r.String())
	}
	for _, label := range cfg.Months {
		m, err := suite.Month(label)
		if err != nil {
			return err
		}
		st := m.Stats(suite.Capacity)
		t := report.NewTable(fmt.Sprintf("month %s", label), "measure", cols...)
		addMix := func(name string, total float64, frac []float64, prec int) {
			cells := []string{fmt.Sprintf("%.*f", prec, total)}
			for _, f := range frac {
				cells = append(cells, fmt.Sprintf("%.1f%%", f*100))
			}
			t.AddRow(name, cells...)
		}
		addMix("#jobs (spec)", float64(m.Spec.TotalJobs), m.Spec.JobFrac[:], 0)
		addMix("#jobs (gen)", float64(st.TotalJobs), st.JobFrac[:], 0)
		addMix("demand (spec)", m.Spec.Load, m.Spec.DemandFrac[:], 2)
		addMix("demand (gen)", st.Load, st.DemandFrac[:], 2)
		t.Write(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunTable4 prints the published Table 4 runtime-class fractions next to
// the generated workload's values.
func RunTable4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	fmt.Fprintln(w, "=== Table 4: runtime distribution, fraction of all jobs (paper spec vs generated) ===")
	cols := make([]string, 0, len(job.Table4NodeClasses)+1)
	for _, c := range job.Table4NodeClasses {
		cols = append(cols, c.String())
	}
	cols = append(cols, "all")
	for _, part := range []struct {
		title string
		spec  func(workload.MonthSpec) [5]float64
		gen   func(workload.MixStats) [5]float64
	}{
		{"T <= 1 hour", func(s workload.MonthSpec) [5]float64 { return s.ShortFrac }, func(s workload.MixStats) [5]float64 { return s.ShortFrac }},
		{"T > 5 hours", func(s workload.MonthSpec) [5]float64 { return s.LongFrac }, func(s workload.MixStats) [5]float64 { return s.LongFrac }},
	} {
		t := report.NewTable(part.title, "month", cols...)
		for _, label := range cfg.Months {
			m, err := suite.Month(label)
			if err != nil {
				return err
			}
			st := m.Stats(suite.Capacity)
			addRow := func(tag string, fr [5]float64) {
				cells := make([]string, 0, len(cols))
				var sum float64
				for _, f := range fr {
					cells = append(cells, fmt.Sprintf("%.1f%%", f*100))
					sum += f
				}
				cells = append(cells, fmt.Sprintf("%.1f%%", sum*100))
				t.AddRow(tag, cells...)
			}
			addRow(label+" (spec)", part.spec(m.Spec))
			addRow(label+" (gen)", part.gen(st))
		}
		t.Write(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig1d prints the search-tree size as a function of the number of
// waiting jobs (Figure 1(d)): n! paths and sum_{k=1..n} n!/(n-k)! nodes.
func RunFig1d(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 1(d): tree size vs number of waiting jobs ===")
	t := report.NewTable("", "#jobs", "#paths", "#nodes")
	for _, n := range []int{1, 2, 3, 4, 8, 10, 15, 20} {
		sz := core.SizeOfTree(n)
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", sz.Paths), fmt.Sprintf("%d", sz.Nodes))
	}
	t.Write(w)
	fmt.Fprintln(w, "\nLDS/DDS iteration path counts for n = 4 (paper Section 2.2):")
	t2 := report.NewTable("", "iteration", "LDS paths (exactly k discrepancies)", "DDS paths (discrepancy at depth i)")
	for it := 0; it <= 3; it++ {
		t2.AddRow(fmt.Sprintf("%d", it),
			fmt.Sprintf("%d", core.CountLDSPaths(4, it)),
			fmt.Sprintf("%d", core.CountDDSPaths(4, it)))
	}
	t2.Write(w)
	return nil
}
