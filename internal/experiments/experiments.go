// Package experiments regenerates every table and figure of the paper's
// evaluation: the workload overview tables (Tables 3-4), the search-tree
// size table (Figure 1d), the fixed-bound sensitivity study (Figure 2),
// the policy comparisons under original and high load (Figures 3-4), the
// per-job-class analysis (Figure 5), the node-budget study (Figure 6),
// the search-algorithm comparison (Figure 7), and the inaccurate-
// estimate study (Figure 8).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// Config scopes an experiment run.
type Config struct {
	// Seed drives workload synthesis.
	Seed uint64
	// Scale shrinks months (job count and duration together) for quick
	// runs; 1 reproduces the paper's full scale.
	Scale float64
	// Months restricts the evaluated months (default: all ten).
	Months []string
	// LimitScale scales the paper's search node limits L, so scaled-
	// down runs spend proportionally less search effort. Default 1.
	LimitScale float64
	// Workers caps parallel simulations (default: GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if len(c.Months) == 0 {
		c.Months = workload.MonthLabels()
	}
	if c.LimitScale == 0 {
		c.LimitScale = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// limit applies LimitScale to a paper node limit.
func (c Config) limit(l int) int {
	s := int(float64(l) * c.LimitScale)
	if s < 16 {
		s = 16
	}
	return s
}

func (c Config) suite() *workload.Suite {
	return workload.NewSuite(workload.Config{Seed: c.Seed, JobScale: c.Scale})
}

// PolicySpec names a policy and builds a fresh instance per simulation
// (policies may carry state across decisions within one run).
type PolicySpec struct {
	Name string
	// New builds the policy for the given month label (Figure 4 uses a
	// larger node budget for January 2004 only).
	New func(month string) sim.Policy
}

// Baselines returns the paper's two baseline backfill policies.
func searchSpec(name string, build func(limit int) *core.Scheduler, limitFor func(month string) int) PolicySpec {
	return PolicySpec{Name: name, New: func(month string) sim.Policy { return build(limitFor(month)) }}
}

// task identifies one simulation.
type runKey struct {
	Month  string
	Policy string
}

// runGrid simulates every (month, policy) pair in parallel and returns
// the results keyed by month and policy name.
func runGrid(cfg Config, opt workload.SimOptions, specs []PolicySpec) (map[runKey]*sim.Result, error) {
	cfg = cfg.withDefaults()
	suite := cfg.suite()

	type task struct {
		month string
		spec  PolicySpec
	}
	var tasks []task
	for _, m := range cfg.Months {
		if _, err := suite.Month(m); err != nil {
			return nil, err
		}
		for _, s := range specs {
			tasks = append(tasks, task{month: m, spec: s})
		}
	}

	// A fixed worker pool capped at cfg.Workers (default GOMAXPROCS)
	// drains the task channel: spawning one goroutine per task would
	// stack hundreds of simulations' worth of memory for a grid run.
	// The first error is propagated and stops further work; remaining
	// tasks are skipped.
	results := make(map[runKey]*sim.Result, len(tasks))
	var mu sync.Mutex
	var firstErr error
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	taskCh := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				if failed() {
					continue // drain the channel without working
				}
				in, _, err := suite.Input(t.month, opt)
				var res *sim.Result
				if err == nil {
					res, err = sim.Run(in, t.spec.New(t.month))
				}
				if err == nil {
					err = metrics.CheckConservation(res)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s/%s: %w", t.month, t.spec.Name, err)
					}
				} else {
					results[runKey{Month: t.month, Policy: t.spec.Name}] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, t := range tasks {
		taskCh <- t
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All lists every experiment in paper order.
var All = []Experiment{
	{ID: "table2", Title: "Table 2: capacity and job limits", Run: RunTable2},
	{ID: "table3", Title: "Table 3: monthly job mix (spec vs generated)", Run: RunTable3},
	{ID: "table4", Title: "Table 4: runtime distribution (spec vs generated)", Run: RunTable4},
	{ID: "fig1d", Title: "Figure 1(d): search tree size vs number of waiting jobs", Run: RunFig1d},
	{ID: "fig2", Title: "Figure 2: sensitivity to fixed target bound (DDS/lxf, original load)", Run: RunFig2},
	{ID: "fig3", Title: "Figure 3: policy comparison under original load", Run: RunFig3},
	{ID: "fig4", Title: "Figure 4: policy comparison under high load (rho=0.9)", Run: RunFig4},
	{ID: "fig5", Title: "Figure 5: per-job-class average wait, July 2003, rho=0.9", Run: RunFig5},
	{ID: "fig6", Title: "Figure 6: impact of node budget L, January 2004, rho=0.9", Run: RunFig6},
	{ID: "fig7", Title: "Figure 7: search algorithms and branching heuristics (L=2K)", Run: RunFig7},
	{ID: "fig8", Title: "Figure 8: inaccurate requested runtimes (R*=R, L=4K)", Run: RunFig8},
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// hoursLabel formats a duration in hours for chart units.
func hoursOf(d job.Duration) float64 { return float64(d) / float64(job.Hour) }
