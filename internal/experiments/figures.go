package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// Fig2Data holds the fixed-bound sensitivity study: per bound ω, the
// per-month maximum wait and average bounded slowdown of DDS/lxf.
type Fig2Data struct {
	Months  []string
	OmegasH []int
	// MaxWaitH[omega][month index], AvgBsld likewise.
	MaxWaitH map[int][]float64
	AvgBsld  map[int][]float64
}

// Fig2Result computes Figure 2: DDS/lxf with fixed target bounds ω of
// 50h, 100h and 300h under the original load, L=1K.
func Fig2Result(cfg Config) (*Fig2Data, error) {
	cfg = cfg.withDefaults()
	omegas := []int{50, 100, 300}
	var specs []PolicySpec
	for _, oh := range omegas {
		oh := oh
		specs = append(specs, PolicySpec{
			Name: fmt.Sprintf("w=%dh", oh),
			New: func(string) sim.Policy {
				return core.New(core.DDS, core.HeuristicLXF,
					core.FixedBound(job.Duration(oh)*job.Hour), cfg.limit(1000))
			},
		})
	}
	results, err := runGrid(cfg, workload.SimOptions{}, specs)
	if err != nil {
		return nil, err
	}
	d := &Fig2Data{
		Months:   cfg.Months,
		OmegasH:  omegas,
		MaxWaitH: map[int][]float64{},
		AvgBsld:  map[int][]float64{},
	}
	for i, oh := range omegas {
		d.MaxWaitH[oh] = make([]float64, len(cfg.Months))
		d.AvgBsld[oh] = make([]float64, len(cfg.Months))
		for mi, m := range cfg.Months {
			s := metrics.Summarize(results[runKey{m, specs[i].Name}])
			d.MaxWaitH[oh][mi] = s.MaxWaitH
			d.AvgBsld[oh][mi] = s.AvgBoundedSlowdown
		}
	}
	return d, nil
}

// RunFig2 renders Figure 2.
func RunFig2(cfg Config, w io.Writer) error {
	d, err := Fig2Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Figure 2: sensitivity to fixed target bound (DDS/lxf, R*=T, original load, L=1K) ===")
	ta := report.NewTable("(a) maximum wait (h)", "bound", d.Months...)
	tb := report.NewTable("(b) average bounded slowdown", "bound", d.Months...)
	for _, oh := range d.OmegasH {
		label := fmt.Sprintf("w=%dh", oh)
		ta.AddFloats(label, 1, d.MaxWaitH[oh]...)
		tb.AddFloats(label, 1, d.AvgBsld[oh]...)
	}
	ta.Write(w)
	fmt.Fprintln(w)
	tb.Write(w)
	return nil
}

// Fig5Data holds the per-job-class average-wait surfaces of the three
// headline policies for one month.
type Fig5Data struct {
	Month string
	// Grids[policy name]
	Grids map[string]metrics.ClassGrid
	Order []string
}

// Fig5Result computes Figure 5: the average wait of each (actual
// runtime x requested nodes) job class under FCFS-backfill,
// LXF-backfill and DDS/lxf/dynB for July 2003 at rho = 0.9.
func Fig5Result(cfg Config) (*Fig5Data, error) {
	cfg = cfg.withDefaults()
	cfg.Months = []string{"7/03"}
	limitFor := func(string) int { return cfg.limit(1000) }
	specs := headlineSpecs(cfg, limitFor)
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return nil, err
	}
	d := &Fig5Data{Month: "7/03", Grids: map[string]metrics.ClassGrid{}}
	for _, s := range specs {
		d.Order = append(d.Order, s.Name)
		d.Grids[s.Name] = metrics.ComputeClassGrid(results[runKey{"7/03", s.Name}])
	}
	return d, nil
}

// RunFig5 renders Figure 5.
func RunFig5(cfg Config, w io.Writer) error {
	d, err := Fig5Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Figure 5: avg wait (h) per job class (N x T), %s, rho=0.9, R*=T ===\n", d.Month)
	for _, p := range d.Order {
		g := d.Grids[p]
		cols := make([]string, len(g.NodeClasses))
		for i, nc := range g.NodeClasses {
			cols[i] = nc.String()
		}
		t := report.NewTable(fmt.Sprintf("(%s)", p), "runtime \\ nodes", cols...)
		for ti, tc := range g.RuntimeClasses {
			cells := make([]string, len(cols))
			for ni := range cols {
				if g.Count[ti][ni] == 0 {
					cells[ni] = "-"
				} else {
					cells[ni] = fmt.Sprintf("%.1f", g.AvgWaitH[ti][ni])
				}
			}
			t.AddRow(tc.String(), cells...)
		}
		t.Write(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig6Data holds the node-budget study for January 2004 under high
// load: DDS/lxf/dynB across L, plus the two backfill baselines.
type Fig6Data struct {
	Month    string
	Limits   []int
	ByLimit  map[int]metrics.Summary
	ExcessBy map[int]metrics.Excess // w.r.t. FCFS-backfill max wait
	FCFS     metrics.Summary
	LXF      metrics.Summary
	FCFSEx   metrics.Excess
	LXFEx    metrics.Excess
}

// Fig6Result computes Figure 6: the impact of the node budget L (1K to
// 100K) on DDS/lxf/dynB for January 2004 at rho = 0.9.
func Fig6Result(cfg Config) (*Fig6Data, error) {
	cfg = cfg.withDefaults()
	cfg.Months = []string{"1/04"}
	limits := []int{1000, 2000, 4000, 8000, 10000, 100000}

	specs := []PolicySpec{
		{Name: "FCFS-backfill", New: func(string) sim.Policy { return policy.FCFSBackfill() }},
		{Name: "LXF-backfill", New: func(string) sim.Policy { return policy.LXFBackfill() }},
	}
	for _, l := range limits {
		l := l
		specs = append(specs, PolicySpec{
			Name: fmt.Sprintf("DDS/lxf/dynB L=%d", l),
			New: func(string) sim.Policy {
				return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(l))
			},
		})
	}
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return nil, err
	}
	d := &Fig6Data{
		Month:    "1/04",
		Limits:   limits,
		ByLimit:  map[int]metrics.Summary{},
		ExcessBy: map[int]metrics.Excess{},
	}
	d.FCFS = metrics.Summarize(results[runKey{"1/04", "FCFS-backfill"}])
	d.LXF = metrics.Summarize(results[runKey{"1/04", "LXF-backfill"}])
	threshold := d.FCFS.MaxWaitH
	d.FCFSEx = metrics.ExcessiveWait(results[runKey{"1/04", "FCFS-backfill"}], threshold)
	d.LXFEx = metrics.ExcessiveWait(results[runKey{"1/04", "LXF-backfill"}], threshold)
	for _, l := range limits {
		key := runKey{"1/04", fmt.Sprintf("DDS/lxf/dynB L=%d", l)}
		d.ByLimit[l] = metrics.Summarize(results[key])
		d.ExcessBy[l] = metrics.ExcessiveWait(results[key], threshold)
	}
	return d, nil
}

// RunFig6 renders Figure 6.
func RunFig6(cfg Config, w io.Writer) error {
	d, err := Fig6Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Figure 6: impact of node budget L on DDS/lxf/dynB, %s, rho=0.9, R*=T ===\n", d.Month)
	cols := []string{"FCFS-BF", "LXF-BF"}
	for _, l := range d.Limits {
		cols = append(cols, fmt.Sprintf("L=%d", l))
	}
	t := report.NewTable("", "measure", cols...)
	addRow := func(name string, fc, lx float64, get func(int) float64, prec int) {
		cells := []string{fmt.Sprintf("%.*f", prec, fc), fmt.Sprintf("%.*f", prec, lx)}
		for _, l := range d.Limits {
			cells = append(cells, fmt.Sprintf("%.*f", prec, get(l)))
		}
		t.AddRow(name, cells...)
	}
	addRow("(a) total excess wait wrt FCFS-BF max (h)", d.FCFSEx.TotalH, d.LXFEx.TotalH,
		func(l int) float64 { return d.ExcessBy[l].TotalH }, 1)
	addRow("(b) max wait (h)", d.FCFS.MaxWaitH, d.LXF.MaxWaitH,
		func(l int) float64 { return d.ByLimit[l].MaxWaitH }, 1)
	addRow("(c) avg wait (h)", d.FCFS.AvgWaitH, d.LXF.AvgWaitH,
		func(l int) float64 { return d.ByLimit[l].AvgWaitH }, 2)
	addRow("(d) avg bounded slowdown", d.FCFS.AvgBoundedSlowdown, d.LXF.AvgBoundedSlowdown,
		func(l int) float64 { return d.ByLimit[l].AvgBoundedSlowdown }, 1)
	t.Write(w)
	return nil
}

// Fig7Data compares search algorithms and branching heuristics.
type Fig7Data struct {
	Months   []string
	Policies []string
	AvgBsld  map[string][]float64
	ExcessH  map[string][]float64 // total excess wait wrt FCFS-BF max
}

// Fig7Result computes Figure 7: DDS/fcfs/dynB vs DDS/lxf/dynB vs
// LDS/lxf/dynB at L=2K under rho = 0.9 (FCFS-backfill is also run to
// provide the excessive-wait threshold).
func Fig7Result(cfg Config) (*Fig7Data, error) {
	cfg = cfg.withDefaults()
	mk := func(a core.Algorithm, h core.Heuristic) func(string) sim.Policy {
		return func(string) sim.Policy {
			return core.New(a, h, core.DynamicBound(), cfg.limit(2000))
		}
	}
	specs := []PolicySpec{
		{Name: "FCFS-backfill", New: func(string) sim.Policy { return policy.FCFSBackfill() }},
		{Name: "DDS/fcfs/dynB", New: mk(core.DDS, core.HeuristicFCFS)},
		{Name: "DDS/lxf/dynB", New: mk(core.DDS, core.HeuristicLXF)},
		{Name: "LDS/lxf/dynB", New: mk(core.LDS, core.HeuristicLXF)},
	}
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return nil, err
	}
	d := &Fig7Data{
		Months:   cfg.Months,
		Policies: []string{"DDS/fcfs/dynB", "DDS/lxf/dynB", "LDS/lxf/dynB"},
		AvgBsld:  map[string][]float64{},
		ExcessH:  map[string][]float64{},
	}
	for _, p := range d.Policies {
		d.AvgBsld[p] = make([]float64, len(cfg.Months))
		d.ExcessH[p] = make([]float64, len(cfg.Months))
	}
	for mi, m := range cfg.Months {
		ref := metrics.Summarize(results[runKey{m, "FCFS-backfill"}])
		for _, p := range d.Policies {
			res := results[runKey{m, p}]
			d.AvgBsld[p][mi] = metrics.Summarize(res).AvgBoundedSlowdown
			d.ExcessH[p][mi] = metrics.ExcessiveWait(res, ref.MaxWaitH).TotalH
		}
	}
	return d, nil
}

// RunFig7 renders Figure 7.
func RunFig7(cfg Config, w io.Writer) error {
	d, err := Fig7Result(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Figure 7: search algorithms and branching heuristics, rho=0.9, R*=T, L=2K ===")
	ta := report.NewTable("(a) average bounded slowdown", "policy", d.Months...)
	tb := report.NewTable("(b) total excess wait wrt FCFS-BF max (h)", "policy", d.Months...)
	for _, p := range d.Policies {
		ta.AddFloats(p, 1, d.AvgBsld[p]...)
		tb.AddFloats(p, 1, d.ExcessH[p]...)
	}
	ta.Write(w)
	fmt.Fprintln(w)
	tb.Write(w)
	return nil
}
