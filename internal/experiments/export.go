package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"schedsearch/internal/metrics"
	"schedsearch/internal/report"
)

// ExportCSV regenerates the headline figures (2, 3, 4, 7) and writes
// their data series as CSV files into dir, for plotting with external
// tools. File names follow "<figure>_<panel>.csv"; rows are policies or
// parameter settings, columns are months.
func ExportCSV(cfg Config, dir string) error {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	write := func(name string, t *report.Table) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		t.WriteCSV(f)
		return nil
	}

	// Figure 2.
	fig2, err := Fig2Result(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("", "bound", fig2.Months...)
	for _, oh := range fig2.OmegasH {
		t.AddFloats(fmt.Sprintf("w=%dh", oh), 3, fig2.MaxWaitH[oh]...)
	}
	if err := write("fig2_max_wait.csv", t); err != nil {
		return err
	}
	t = report.NewTable("", "bound", fig2.Months...)
	for _, oh := range fig2.OmegasH {
		t.AddFloats(fmt.Sprintf("w=%dh", oh), 3, fig2.AvgBsld[oh]...)
	}
	if err := write("fig2_avg_bsld.csv", t); err != nil {
		return err
	}

	// Figures 3 and 4 share the comparison shape.
	for _, fig := range []struct {
		name string
		get  func(Config) (*CompareResult, error)
	}{
		{"fig3", Fig3Result},
		{"fig4", Fig4Result},
	} {
		res, err := fig.get(cfg)
		if err != nil {
			return err
		}
		panels := []struct {
			file string
			get  func(metrics.Summary) float64
		}{
			{fig.name + "_avg_wait.csv", func(s metrics.Summary) float64 { return s.AvgWaitH }},
			{fig.name + "_max_wait.csv", func(s metrics.Summary) float64 { return s.MaxWaitH }},
			{fig.name + "_avg_bsld.csv", func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown }},
		}
		for _, p := range panels {
			t := report.NewTable("", "policy", res.Months...)
			for _, pol := range res.Policies {
				vals := make([]float64, len(res.Months))
				for mi, m := range res.Months {
					vals[mi] = p.get(res.Summaries[pol][m])
				}
				t.AddFloats(pol, 3, vals...)
			}
			if err := write(p.file, t); err != nil {
				return err
			}
		}
		if res.ExcessMax != nil {
			t := report.NewTable("", "policy", res.Months...)
			for _, pol := range res.Policies {
				vals := make([]float64, len(res.Months))
				for mi, m := range res.Months {
					vals[mi] = res.ExcessMax[pol][m].TotalH
				}
				t.AddFloats(pol, 3, vals...)
			}
			if err := write(fig.name+"_total_excess_max.csv", t); err != nil {
				return err
			}
		}
	}

	// Figure 7.
	fig7, err := Fig7Result(cfg)
	if err != nil {
		return err
	}
	t = report.NewTable("", "policy", fig7.Months...)
	for _, p := range fig7.Policies {
		t.AddFloats(p, 3, fig7.AvgBsld[p]...)
	}
	if err := write("fig7_avg_bsld.csv", t); err != nil {
		return err
	}
	t = report.NewTable("", "policy", fig7.Months...)
	for _, p := range fig7.Policies {
		t.AddFloats(p, 3, fig7.ExcessH[p]...)
	}
	return write("fig7_total_excess_max.csv", t)
}
