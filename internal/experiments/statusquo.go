package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/core"
	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// The ext-statusquo and ext-dfs experiments back the paper's motivating
// arguments (Sections 1 and 2): hand-tuned weighted priority functions
// are fragile across months, queue-based priorities starve low-priority
// queues, and naive depth-first search wastes its budget — the reasons
// for goal-oriented discrepancy search.

func init() {
	All = append(All,
		Experiment{ID: "ext-statusquo", Title: "Extension: status-quo schedulers (Maui weights, multi-queue) vs goal-oriented search", Run: RunExtStatusQuo},
		Experiment{ID: "ext-dfs", Title: "Extension: naive DFS vs discrepancy search at equal budget", Run: RunExtDFS},
	)
}

// RunExtStatusQuo compares three hand-tuned Maui-style weight settings
// and the PBS-style multi-queue scheduler against DDS/lxf/dynB. The
// point is the paper's introduction: each weight setting wins somewhere
// and loses somewhere else, while the goal-oriented policy needs no
// tuning.
func RunExtStatusQuo(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "=== Extension: status-quo priority schedulers, rho=0.9 ===")
	specs := []PolicySpec{
		{Name: "Maui(wait)", New: func(string) sim.Policy {
			return policy.NewWeightedBackfill(policy.WeightedPriority{WaitWeight: 1}.WithName("Maui(wait)"))
		}},
		{Name: "Maui(xfactor)", New: func(string) sim.Policy {
			return policy.NewWeightedBackfill(policy.WeightedPriority{XFactorWeight: 1}.WithName("Maui(xfactor)"))
		}},
		{Name: "Maui(mixed)", New: func(string) sim.Policy {
			return policy.NewWeightedBackfill(policy.WeightedPriority{
				WaitWeight: 1, XFactorWeight: 0.5, NodesWeight: 0.02, ShortWeight: 0.1,
			}.WithName("Maui(mixed)"))
		}},
		{Name: "MultiQueue", New: func(string) sim.Policy { return policy.NewMultiQueue() }},
		{Name: "DDS/lxf/dynB", New: func(string) sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(1000))
		}},
	}
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return err
	}
	ta := report.NewTable("(a) maximum wait (h)", "policy", cfg.Months...)
	tb := report.NewTable("(b) average bounded slowdown", "policy", cfg.Months...)
	for _, s := range specs {
		var maxW, bsld []float64
		for _, m := range cfg.Months {
			sum := metrics.Summarize(results[runKey{m, s.Name}])
			maxW = append(maxW, sum.MaxWaitH)
			bsld = append(bsld, sum.AvgBoundedSlowdown)
		}
		ta.AddFloats(s.Name, 1, maxW...)
		tb.AddFloats(s.Name, 1, bsld...)
	}
	ta.Write(w)
	fmt.Fprintln(w)
	tb.Write(w)
	fmt.Fprintln(w, "\nNo single weight setting dominates across months; the goal-oriented")
	fmt.Fprintln(w, "search policy needs no per-month tuning (Section 1's motivation).")
	return nil
}

// RunExtDFS compares plain depth-first enumeration against LDS and DDS
// at the same node budget: within a budget DFS only permutes the tail
// of the heuristic schedule, so it should behave like the bare
// heuristic while the discrepancy algorithms find real improvements.
func RunExtDFS(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "=== Extension: naive DFS vs discrepancy search, rho=0.9, L=2K ===")
	mk := func(a core.Algorithm) func(string) sim.Policy {
		return func(string) sim.Policy {
			return core.New(a, core.HeuristicLXF, core.DynamicBound(), cfg.limit(2000))
		}
	}
	specs := []PolicySpec{
		{Name: "FCFS-backfill", New: func(string) sim.Policy { return policy.FCFSBackfill() }},
		{Name: "DFS/lxf/dynB", New: mk(core.DFS)},
		{Name: "LDS/lxf/dynB", New: mk(core.LDS)},
		{Name: "DDS/lxf/dynB", New: mk(core.DDS)},
	}
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return err
	}
	ta := report.NewTable("(a) average bounded slowdown", "policy", cfg.Months...)
	tb := report.NewTable("(b) total excess wait wrt FCFS-BF max (h)", "policy", cfg.Months...)
	for _, s := range specs[1:] {
		var bsld, excess []float64
		for _, m := range cfg.Months {
			ref := metrics.Summarize(results[runKey{m, "FCFS-backfill"}])
			res := results[runKey{m, s.Name}]
			bsld = append(bsld, metrics.Summarize(res).AvgBoundedSlowdown)
			excess = append(excess, metrics.ExcessiveWait(res, ref.MaxWaitH).TotalH)
		}
		ta.AddFloats(s.Name, 1, bsld...)
		tb.AddFloats(s.Name, 1, excess...)
	}
	ta.Write(w)
	fmt.Fprintln(w)
	tb.Write(w)
	return nil
}
