package experiments

import (
	"fmt"
	"io"
	"math"

	"schedsearch/internal/metrics"
	"schedsearch/internal/report"
)

func init() {
	All = append(All, Experiment{
		ID:    "replicate",
		Title: "Replicate the headline comparison across 5 workload seeds (mean ± std)",
		Run:   RunReplicate,
	})
}

// Replication aggregates the headline comparison over several
// independently synthesized workload suites — a robustness check the
// paper could not do with one physical trace.
type Replication struct {
	Seeds    []uint64
	Policies []string
	// GrandMean[measure][policy] holds per-seed month-mean values.
	PerSeed map[string]map[string][]float64
	// ClaimPasses[claim id] counts seeds where the claim held.
	ClaimPasses map[string]int
	ClaimTexts  map[string]string
}

// replicationMeasures are the aggregated measures tracked per seed.
var replicationMeasures = []struct {
	Name string
	Get  func(metrics.Summary) float64
}{
	{"avg wait (h)", func(s metrics.Summary) float64 { return s.AvgWaitH }},
	{"max wait (h)", func(s metrics.Summary) float64 { return s.MaxWaitH }},
	{"avg bounded slowdown", func(s metrics.Summary) float64 { return s.AvgBoundedSlowdown }},
}

// Replicate runs Figures 3/4 plus the claim checks for each seed.
func Replicate(cfg Config, seeds []uint64) (*Replication, error) {
	cfg = cfg.withDefaults()
	rep := &Replication{
		Seeds:       seeds,
		PerSeed:     map[string]map[string][]float64{},
		ClaimPasses: map[string]int{},
		ClaimTexts:  map[string]string{},
	}
	for _, seed := range seeds {
		scfg := cfg
		scfg.Seed = seed

		fig3, err := Fig3Result(scfg)
		if err != nil {
			return nil, err
		}
		fig4, err := Fig4Result(scfg)
		if err != nil {
			return nil, err
		}
		if rep.Policies == nil {
			rep.Policies = fig4.Policies
		}
		for _, m := range replicationMeasures {
			if rep.PerSeed[m.Name] == nil {
				rep.PerSeed[m.Name] = map[string][]float64{}
			}
			for _, p := range fig4.Policies {
				var sum float64
				for _, month := range fig4.Months {
					sum += m.Get(fig4.Summaries[p][month])
				}
				rep.PerSeed[m.Name][p] = append(rep.PerSeed[m.Name][p],
					sum/float64(len(fig4.Months)))
			}
		}

		for _, c := range verifyFrom(fig3, fig4) {
			rep.ClaimTexts[c.ID] = c.Text
			if c.Holds {
				rep.ClaimPasses[c.ID]++
			}
		}
	}
	return rep, nil
}

// meanStd returns the mean and population standard deviation.
func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return m, math.Sqrt(ss / float64(len(xs)))
}

// RunReplicate renders the replication over five seeds derived from
// cfg.Seed.
func RunReplicate(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	seeds := make([]uint64, 5)
	for i := range seeds {
		seeds[i] = cfg.Seed + uint64(i)
	}
	rep, err := Replicate(cfg, seeds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Replication across %d workload seeds (rho=0.9, month-mean +/- std) ===\n", len(seeds))
	cols := make([]string, len(rep.Policies))
	copy(cols, rep.Policies)
	t := report.NewTable("", "measure", cols...)
	for _, m := range replicationMeasures {
		cells := make([]string, len(rep.Policies))
		for i, p := range rep.Policies {
			mean, std := meanStd(rep.PerSeed[m.Name][p])
			cells[i] = fmt.Sprintf("%.2f +/- %.2f", mean, std)
		}
		t.AddRow(m.Name, cells...)
	}
	t.Write(w)
	fmt.Fprintln(w, "\nclaim stability across seeds:")
	for id, text := range rep.ClaimTexts {
		fmt.Fprintf(w, "  %d/%d  %-32s %s\n", rep.ClaimPasses[id], len(seeds), id, text)
	}
	return nil
}
