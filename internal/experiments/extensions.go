package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/predict"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// The ext-* experiments implement the paper's future-work directions
// (Section 7): runtime prediction, local/hybrid search, fairshare in
// the objective, and branch-and-bound pruning. They are extensions —
// nothing in Figures 2-8 uses them.

func init() {
	All = append(All,
		Experiment{ID: "ext-predict", Title: "Extension: history-based runtime prediction (R*=pred)", Run: RunExtPredict},
		Experiment{ID: "ext-local", Title: "Extension: local search and DDS-seeded hybrid search", Run: RunExtLocal},
		Experiment{ID: "ext-fairshare", Title: "Extension: fairshare in the search objective", Run: RunExtFairshare},
		Experiment{ID: "ext-prune", Title: "Extension: branch-and-bound pruning", Run: RunExtPrune},
	)
}

// recordingEstimator wraps a predictor and accumulates accuracy
// statistics by pairing each job's estimate (made at arrival) with its
// actual runtime (seen at completion).
type recordingEstimator struct {
	inner    sim.Estimator
	acc      predict.Accuracy
	estimate map[int]job.Duration
}

func newRecordingEstimator(inner sim.Estimator) *recordingEstimator {
	return &recordingEstimator{inner: inner, estimate: map[int]job.Duration{}}
}

func (r *recordingEstimator) Estimate(j job.Job) job.Duration {
	e := r.inner.Estimate(j)
	r.estimate[j.ID] = e
	return e
}

func (r *recordingEstimator) Observe(j job.Job) {
	if e, ok := r.estimate[j.ID]; ok {
		r.acc.Record(e, j.Runtime)
		delete(r.estimate, j.ID)
	}
	r.inner.Observe(j)
}

// RunExtPredict compares DDS/lxf/dynB planning with perfect runtimes
// (R*=T), user requests (R*=R), and history-based predictions
// (R*=pred), under high load with L=4K (the Figure 8 configuration plus
// the prediction mode the paper proposes as future work).
func RunExtPredict(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	fmt.Fprintln(w, "=== Extension: runtime prediction, DDS/lxf/dynB, rho=0.9, L=4K ===")

	type mode struct {
		name string
		opt  workload.SimOptions
		pred bool
	}
	modes := []mode{
		{name: "R*=T", opt: workload.SimOptions{TargetLoad: 0.9}},
		{name: "R*=R", opt: workload.SimOptions{TargetLoad: 0.9, UseRequested: true}},
		{name: "R*=pred", opt: workload.SimOptions{TargetLoad: 0.9}, pred: true},
	}
	ta := report.NewTable("(a) average wait (h)", "mode", cfg.Months...)
	tb := report.NewTable("(b) maximum wait (h)", "mode", cfg.Months...)
	tc := report.NewTable("(c) average bounded slowdown", "mode", cfg.Months...)
	td := report.NewTable("(d) prediction accuracy (R*=pred only)", "measure", cfg.Months...)
	var meanErr, meanRatio, underFrac []float64

	for _, md := range modes {
		var avgW, maxW, bsld []float64
		for _, m := range cfg.Months {
			in, _, err := suite.Input(m, md.opt)
			if err != nil {
				return err
			}
			var rec *recordingEstimator
			if md.pred {
				rec = newRecordingEstimator(predict.NewUserHistory())
				in.Estimator = rec
			}
			pol := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(4000))
			res, err := sim.Run(in, pol)
			if err != nil {
				return err
			}
			s := metrics.Summarize(res)
			avgW = append(avgW, s.AvgWaitH)
			maxW = append(maxW, s.MaxWaitH)
			bsld = append(bsld, s.AvgBoundedSlowdown)
			if rec != nil {
				meanErr = append(meanErr, rec.acc.MeanAbsErrH())
				meanRatio = append(meanRatio, rec.acc.MeanRatio())
				underFrac = append(underFrac, rec.acc.UnderFrac())
			}
		}
		ta.AddFloats(md.name, 2, avgW...)
		tb.AddFloats(md.name, 1, maxW...)
		tc.AddFloats(md.name, 1, bsld...)
	}
	td.AddFloats("mean abs error (h)", 2, meanErr...)
	td.AddFloats("mean est/actual", 2, meanRatio...)
	td.AddFloats("underprediction frac", 2, underFrac...)
	for _, t := range []*report.Table{ta, tb, tc, td} {
		t.Write(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunExtLocal compares complete search (DDS), pure local search (LS)
// and the DDS-seeded hybrid (DDS+LS) at the same node budget.
func RunExtLocal(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "=== Extension: local and hybrid search, rho=0.9, L=2K ===")
	specs := []PolicySpec{
		{Name: "FCFS-backfill", New: func(string) sim.Policy { return policy.FCFSBackfill() }},
		{Name: "DDS/lxf/dynB", New: func(string) sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(2000))
		}},
		{Name: "LS/lxf/dynB", New: func(string) sim.Policy {
			return core.NewLocal(core.HeuristicLXF, core.DynamicBound(), cfg.limit(2000))
		}},
		{Name: "DDS+LS/lxf/dynB", New: func(string) sim.Policy {
			return core.NewHybrid(core.HeuristicLXF, core.DynamicBound(), cfg.limit(2000))
		}},
	}
	results, err := runGrid(cfg, workload.SimOptions{TargetLoad: 0.9}, specs)
	if err != nil {
		return err
	}
	ta := report.NewTable("(a) average bounded slowdown", "policy", cfg.Months...)
	tb := report.NewTable("(b) total excess wait wrt FCFS-BF max (h)", "policy", cfg.Months...)
	for _, s := range specs[1:] {
		var bsld, excess []float64
		for _, m := range cfg.Months {
			ref := metrics.Summarize(results[runKey{m, "FCFS-backfill"}])
			res := results[runKey{m, s.Name}]
			bsld = append(bsld, metrics.Summarize(res).AvgBoundedSlowdown)
			excess = append(excess, metrics.ExcessiveWait(res, ref.MaxWaitH).TotalH)
		}
		ta.AddFloats(s.Name, 1, bsld...)
		tb.AddFloats(s.Name, 1, excess...)
	}
	ta.Write(w)
	fmt.Fprintln(w)
	tb.Write(w)
	return nil
}

// RunExtFairshare contrasts DDS/lxf/dynB with its fairshare-wrapped
// variant: heavy users (top half of demand) versus the rest.
func RunExtFairshare(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	fmt.Fprintln(w, "=== Extension: fairshare objective, rho=0.9, L=1K, alpha=4 ===")
	t := report.NewTable("job-weighted avg bounded slowdown by user group", "policy/group", cfg.Months...)
	var baseH, baseL, fsH, fsL []float64
	var baseAll, fsAll []float64
	for _, m := range cfg.Months {
		in, _, err := suite.Input(m, workload.SimOptions{TargetLoad: 0.9})
		if err != nil {
			return err
		}
		base := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(1000))
		resB, err := sim.Run(in, base)
		if err != nil {
			return err
		}
		fsPol := core.NewFairshare(core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(1000)), 4)
		resF, err := sim.Run(in, fsPol)
		if err != nil {
			return err
		}
		hb, lb := metrics.SplitByDemand(metrics.PerUser(resB))
		hf, lf := metrics.SplitByDemand(metrics.PerUser(resF))
		baseH = append(baseH, hb)
		baseL = append(baseL, lb)
		fsH = append(fsH, hf)
		fsL = append(fsL, lf)
		baseAll = append(baseAll, metrics.Summarize(resB).AvgBoundedSlowdown)
		fsAll = append(fsAll, metrics.Summarize(resF).AvgBoundedSlowdown)
	}
	t.AddFloats("DDS/lxf/dynB heavy", 1, baseH...)
	t.AddFloats("DDS/lxf/dynB light", 1, baseL...)
	t.AddFloats("DDS/lxf/dynB all", 1, baseAll...)
	t.AddFloats("+fairshare heavy", 1, fsH...)
	t.AddFloats("+fairshare light", 1, fsL...)
	t.AddFloats("+fairshare all", 1, fsAll...)
	t.Write(w)
	fmt.Fprintln(w, "\nfairshare discounts over-served (heavy) users' slowdown cost, so the")
	fmt.Fprintln(w, "light group's service should improve at some cost to the heavy group.")
	return nil
}

// RunExtPrune contrasts the paper-faithful search with branch-and-bound
// pruning at the same node budget: pruned subtrees let the budget reach
// deeper iterations, which should only improve the committed schedules.
func RunExtPrune(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	fmt.Fprintln(w, "=== Extension: branch-and-bound pruning, rho=0.9, L=1K ===")
	t := report.NewTable("", "measure", cfg.Months...)
	var offB, onB, offM, onM, prunedFrac []float64
	for _, m := range cfg.Months {
		in, _, err := suite.Input(m, workload.SimOptions{TargetLoad: 0.9})
		if err != nil {
			return err
		}
		plain := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(1000))
		resP, err := sim.Run(in, plain)
		if err != nil {
			return err
		}
		pruned := core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(1000))
		pruned.Prune = true
		resQ, err := sim.Run(in, pruned)
		if err != nil {
			return err
		}
		sp, sq := metrics.Summarize(resP), metrics.Summarize(resQ)
		offB = append(offB, sp.AvgBoundedSlowdown)
		onB = append(onB, sq.AvgBoundedSlowdown)
		offM = append(offM, sp.MaxWaitH)
		onM = append(onM, sq.MaxWaitH)
		frac := 0.0
		if pruned.SearchStats.Nodes > 0 {
			frac = float64(pruned.SearchStats.Pruned) / float64(pruned.SearchStats.Nodes)
		}
		prunedFrac = append(prunedFrac, frac)
	}
	t.AddFloats("avg bsld (no prune)", 1, offB...)
	t.AddFloats("avg bsld (prune)", 1, onB...)
	t.AddFloats("max wait h (no prune)", 1, offM...)
	t.AddFloats("max wait h (prune)", 1, onM...)
	t.AddFloats("pruned/visited", 2, prunedFrac...)
	t.Write(w)
	return nil
}
