package experiments

import (
	"strings"
	"testing"

	"schedsearch/internal/workload"
)

// quickCfg is a scaled-down configuration: months are 15% of paper
// scale (job count and duration), search budgets 25% of the paper's.
// Shape assertions below are made robust to this scale by aggregating
// over months rather than requiring every month individually.
func quickCfg() Config {
	return Config{Seed: 1, Scale: 0.15, LimitScale: 0.25}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3Result(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Months) != 10 {
		t.Fatalf("%d months", len(res.Months))
	}
	var fcfsMax, lxfMax, ddsMax []float64
	var fcfsBsld, lxfBsld, ddsBsld []float64
	var fcfsAvg, ddsAvg []float64
	ddsWinsMax := 0
	for _, m := range res.Months {
		f := res.Get("FCFS-backfill", m)
		l := res.Get("LXF-backfill", m)
		d := res.Get("DDS/lxf/dynB", m)
		if f.Jobs == 0 || f.Jobs != l.Jobs || f.Jobs != d.Jobs {
			t.Fatalf("%s: job counts differ: %d/%d/%d", m, f.Jobs, l.Jobs, d.Jobs)
		}
		fcfsMax = append(fcfsMax, f.MaxWaitH)
		lxfMax = append(lxfMax, l.MaxWaitH)
		ddsMax = append(ddsMax, d.MaxWaitH)
		fcfsBsld = append(fcfsBsld, f.AvgBoundedSlowdown)
		lxfBsld = append(lxfBsld, l.AvgBoundedSlowdown)
		ddsBsld = append(ddsBsld, d.AvgBoundedSlowdown)
		fcfsAvg = append(fcfsAvg, f.AvgWaitH)
		ddsAvg = append(ddsAvg, d.AvgWaitH)
		if d.MaxWaitH <= l.MaxWaitH+1e-9 {
			ddsWinsMax++
		}
	}
	// Paper shape 1: LXF-backfill improves FCFS-backfill's average
	// slowdown substantially.
	if mean(lxfBsld) >= mean(fcfsBsld) {
		t.Errorf("LXF avg bsld %.2f not below FCFS %.2f", mean(lxfBsld), mean(fcfsBsld))
	}
	// Paper shape 2: but LXF-backfill has a worse maximum wait.
	if mean(lxfMax) <= mean(fcfsMax) {
		t.Errorf("LXF mean max wait %.2f not above FCFS %.2f", mean(lxfMax), mean(fcfsMax))
	}
	// Paper shape 3: DDS/lxf/dynB beats LXF-backfill on max wait in
	// (nearly) every month and on average.
	if ddsWinsMax < 8 {
		t.Errorf("DDS max wait beats LXF in only %d/10 months", ddsWinsMax)
	}
	if mean(ddsMax) >= mean(fcfsMax)*1.1 {
		t.Errorf("DDS mean max wait %.2f well above FCFS %.2f", mean(ddsMax), mean(fcfsMax))
	}
	// Paper shape 4: DDS/lxf/dynB's averages are much closer to LXF
	// than to FCFS.
	if mean(ddsBsld) >= mean(fcfsBsld) {
		t.Errorf("DDS avg bsld %.2f not below FCFS %.2f", mean(ddsBsld), mean(fcfsBsld))
	}
	if mean(ddsAvg) >= mean(fcfsAvg)*1.05 {
		t.Errorf("DDS avg wait %.2f above FCFS %.2f", mean(ddsAvg), mean(fcfsAvg))
	}
}

func TestFig4ExcessMeasures(t *testing.T) {
	cfg := quickCfg()
	cfg.Months = []string{"6/03", "9/03", "2/04"} // keep the test quick
	res, err := Fig4Result(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cfg.Months {
		// By definition FCFS-backfill has zero excessive wait w.r.t.
		// its own maximum wait.
		if e := res.ExcessMax["FCFS-backfill"][m]; e.TotalH != 0 || e.Count != 0 {
			t.Errorf("%s: FCFS E^max = %+v, want zero", m, e)
		}
		// The excess w.r.t. p98 is positive for FCFS (2%% of jobs wait
		// beyond p98 by construction).
		if e := res.Excess98["FCFS-backfill"][m]; e.Count == 0 {
			t.Errorf("%s: FCFS E^98 count = 0, expected ~2%% of jobs", m)
		}
		// Excess family internal consistency for every policy.
		for _, p := range res.Policies {
			e := res.ExcessMax[p][m]
			if e.Count > 0 && e.AvgH <= 0 {
				t.Errorf("%s/%s: count %d but avg %.2f", m, p, e.Count, e.AvgH)
			}
			if e.Count == 0 && e.TotalH != 0 {
				t.Errorf("%s/%s: zero count but total %.2f", m, p, e.TotalH)
			}
			s := res.Summaries[p][m]
			if s.AvgQueueLen < 0 {
				t.Errorf("%s/%s: negative queue length", m, p)
			}
		}
	}
}

func TestFig2BoundSensitivity(t *testing.T) {
	cfg := quickCfg()
	cfg.Months = []string{"6/03", "8/03", "12/03", "2/04"}
	d, err := Fig2Result(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's trend: max wait grows with the bound ω (smaller
	// bounds clamp the tail). Aggregate over months for robustness.
	m50 := mean(d.MaxWaitH[50])
	m300 := mean(d.MaxWaitH[300])
	if m50 > m300+5 {
		t.Errorf("mean max wait at w=50h (%.1f) far above w=300h (%.1f)", m50, m300)
	}
	for _, oh := range d.OmegasH {
		for mi := range d.Months {
			if d.MaxWaitH[oh][mi] < 0 || d.AvgBsld[oh][mi] < 1 {
				t.Errorf("w=%dh month %s: implausible values %v / %v",
					oh, d.Months[mi], d.MaxWaitH[oh][mi], d.AvgBsld[oh][mi])
			}
		}
	}
}

func TestFig5Grids(t *testing.T) {
	d, err := Fig5Result(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Order) != 3 {
		t.Fatalf("%d policies", len(d.Order))
	}
	totals := map[string]int{}
	for _, p := range d.Order {
		g := d.Grids[p]
		for ti := range g.Count {
			for ni := range g.Count[ti] {
				totals[p] += g.Count[ti][ni]
				if g.Count[ti][ni] == 0 && g.AvgWaitH[ti][ni] != 0 {
					t.Errorf("%s: empty cell with nonzero wait", p)
				}
			}
		}
	}
	// All policies classify the same job population.
	if totals[d.Order[0]] != totals[d.Order[1]] || totals[d.Order[0]] != totals[d.Order[2]] {
		t.Errorf("grid totals differ: %v", totals)
	}
	if totals[d.Order[0]] == 0 {
		t.Error("empty grids")
	}
}

func TestFig6NodeBudget(t *testing.T) {
	cfg := quickCfg()
	cfg.LimitScale = 0.05 // 1K..100K become 50..5000: quick but ordered
	d, err := Fig6Result(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Limits) != 6 {
		t.Fatalf("%d limits", len(d.Limits))
	}
	// The largest budget must not be much worse than the smallest on
	// the first-level objective (the anytime property: more search can
	// only help the committed measure up to workload noise).
	lo := d.ExcessBy[d.Limits[0]].TotalH
	hi := d.ExcessBy[d.Limits[len(d.Limits)-1]].TotalH
	if hi > lo*1.5+20 {
		t.Errorf("excess grew with budget: L=%d -> %.1f, L=%d -> %.1f",
			d.Limits[0], lo, d.Limits[len(d.Limits)-1], hi)
	}
	if d.FCFSEx.TotalH != 0 {
		t.Errorf("FCFS excess w.r.t. own max = %.2f, want 0", d.FCFSEx.TotalH)
	}
}

func TestFig7Algorithms(t *testing.T) {
	cfg := quickCfg()
	cfg.Months = []string{"6/03", "9/03", "1/04"}
	d, err := Fig7Result(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Policies) != 3 {
		t.Fatalf("policies: %v", d.Policies)
	}
	// Paper shape: DDS/fcfs behaves like FCFS-backfill — a clearly
	// worse average bounded slowdown than the lxf-branching policies.
	fcfsB := mean(d.AvgBsld["DDS/fcfs/dynB"])
	lxfB := mean(d.AvgBsld["DDS/lxf/dynB"])
	if fcfsB <= lxfB {
		t.Errorf("DDS/fcfs avg bsld %.2f not above DDS/lxf %.2f", fcfsB, lxfB)
	}
}

func TestFig8RequestedRuntimes(t *testing.T) {
	cfg := quickCfg()
	cfg.Months = []string{"6/03", "10/03"}
	res, err := Fig8Result(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cfg.Months {
		for _, p := range res.Policies {
			s := res.Summaries[p][m]
			if s.Jobs == 0 {
				t.Errorf("%s/%s: no jobs", m, p)
			}
		}
	}
}

func TestRunnersRender(t *testing.T) {
	cfg := quickCfg()
	cfg.Months = []string{"6/03"}
	for _, e := range All {
		switch e.ID {
		case "fig6": // exercised separately (slow at full limits)
			continue
		case "verify", "replicate": // need all ten months / many seeds; tested separately
			continue
		case "overhead": // wall-clock measurement; smoke-tested below
			continue
		}
		var sb strings.Builder
		if err := e.Run(cfg, &sb); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if sb.Len() == 0 {
			t.Errorf("%s: empty output", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig3"); !ok {
		t.Error("fig3 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestRunGridUnknownMonth(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.05, Months: []string{"5/03"}}
	if _, err := runGrid(cfg, workload.SimOptions{}, nil); err == nil {
		t.Error("unknown month accepted")
	}
}

func TestExtensionExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"ext-predict", "ext-local", "ext-fairshare", "ext-prune"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("%s not registered", id)
		}
	}
}

// TestVerifyClaimsHold checks the programmatic claim verifier at
// reduced scale over all ten months.
func TestVerifyClaimsHold(t *testing.T) {
	claims, err := VerifyClaims(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 7 {
		t.Fatalf("%d claims, want 7", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %s failed: %s (%s)", c.ID, c.Text, c.Detail)
		}
	}
}

// TestReplicateAggregates runs a tiny two-seed replication and checks
// the aggregation plumbing.
func TestReplicateAggregates(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.1, LimitScale: 0.1}
	rep, err := Replicate(cfg, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 3 {
		t.Fatalf("policies: %v", rep.Policies)
	}
	for _, m := range replicationMeasures {
		for _, p := range rep.Policies {
			vals := rep.PerSeed[m.Name][p]
			if len(vals) != 2 {
				t.Fatalf("%s/%s: %d per-seed values", m.Name, p, len(vals))
			}
			for _, v := range vals {
				if v < 0 {
					t.Errorf("%s/%s: negative aggregate %v", m.Name, p, v)
				}
			}
		}
	}
	if len(rep.ClaimTexts) != 7 {
		t.Errorf("%d claims tracked", len(rep.ClaimTexts))
	}
	for id, n := range rep.ClaimPasses {
		if n > 2 {
			t.Errorf("claim %s passed %d times with 2 seeds", id, n)
		}
	}
}

// TestOverheadRuns smoke-tests the wall-clock overhead experiment.
func TestOverheadRuns(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.05, LimitScale: 0.02}
	var sb strings.Builder
	if err := RunOverhead(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "microseconds per decision") {
		t.Errorf("output: %s", sb.String())
	}
}

// TestLublinRobustness asserts the headline shape on the
// Lublin-Feitelson workload: DDS/lxf/dynB keeps the best max wait.
func TestLublinRobustness(t *testing.T) {
	var sb strings.Builder
	cfg := Config{Seed: 1, Scale: 0.3, LimitScale: 0.25}
	if err := RunExtLublin(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DDS/lxf/dynB") {
		t.Errorf("output: %s", sb.String())
	}
}
