package experiments

import (
	"fmt"
	"io"

	"schedsearch/internal/core"
	"schedsearch/internal/metrics"
	"schedsearch/internal/policy"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func init() {
	All = append(All, Experiment{
		ID:    "ext-lublin",
		Title: "Extension: robustness on a Lublin-Feitelson-style workload",
		Run:   RunExtLublin,
	})
}

// RunExtLublin repeats the headline comparison on a synthetic workload
// drawn from the Lublin-Feitelson general model rather than the
// NCSA-calibrated generator: if the paper's conclusion only held on the
// calibrated months it would be a modeling artifact; holding here too
// is evidence it is a property of the policies.
func RunExtLublin(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "=== Extension: Lublin-Feitelson-style workload, load 0.85, L=1K ===")

	days := int(30 * cfg.Scale)
	if days < 3 {
		days = 3
	}
	seeds := []uint64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2}
	pols := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"FCFS-backfill", func() sim.Policy { return policy.FCFSBackfill() }},
		{"LXF-backfill", func() sim.Policy { return policy.LXFBackfill() }},
		{"DDS/lxf/dynB", func() sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(1000))
		}},
	}
	cols := make([]string, len(seeds))
	for i := range seeds {
		cols[i] = fmt.Sprintf("seed %d", seeds[i])
	}
	ta := report.NewTable("(a) maximum wait (h)", "policy", cols...)
	tb := report.NewTable("(b) average bounded slowdown", "policy", cols...)
	tc := report.NewTable("(c) average wait (h)", "policy", cols...)
	for _, p := range pols {
		var maxW, bsld, avgW []float64
		for _, seed := range seeds {
			in := workload.LublinInput(workload.LublinConfig{
				Seed: seed, Days: days, TargetLoad: 0.85,
			})
			res, err := sim.Run(in, p.mk())
			if err != nil {
				return err
			}
			s := metrics.Summarize(res)
			maxW = append(maxW, s.MaxWaitH)
			bsld = append(bsld, s.AvgBoundedSlowdown)
			avgW = append(avgW, s.AvgWaitH)
		}
		ta.AddFloats(p.name, 1, maxW...)
		tb.AddFloats(p.name, 1, bsld...)
		tc.AddFloats(p.name, 2, avgW...)
	}
	for _, t := range []*report.Table{ta, tb, tc} {
		t.Write(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Expected shape (as on the calibrated workload): DDS/lxf/dynB holds the")
	fmt.Fprintln(w, "best max wait while its averages track LXF-backfill's.")
	return nil
}
