package experiments

import (
	"fmt"
	"io"
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/report"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func init() {
	All = append(All, Experiment{
		ID:    "overhead",
		Title: "Scheduling overhead: wall time per decision vs queue length and L (Section 2.3)",
		Run:   RunOverhead,
	})
}

// timedPolicy wraps a policy and bins the wall-clock cost of each
// Decide call by queue length.
type timedPolicy struct {
	inner sim.Policy
	// bins: queue length ranges [1,10), [10,20), [20,40), [40,inf).
	count [4]int
	total [4]time.Duration
}

func queueBin(n int) int {
	switch {
	case n < 10:
		return 0
	case n < 20:
		return 1
	case n < 40:
		return 2
	default:
		return 3
	}
}

var queueBinLabels = []string{"1-9", "10-19", "20-39", ">=40"}

func (tp *timedPolicy) Name() string { return tp.inner.Name() }

func (tp *timedPolicy) Decide(sn *sim.Snapshot) []int {
	start := time.Now()
	out := tp.inner.Decide(sn)
	b := queueBin(len(sn.Queue))
	tp.count[b]++
	tp.total[b] += time.Since(start)
	return out
}

// RunOverhead measures the per-decision wall time of DDS/lxf/dynB at
// several node budgets on the hardest month, the modern counterpart of
// the paper's "30-65 ms to visit 1K-8K nodes in a tree of 30 jobs on a
// 2-GHz Pentium 4".
func RunOverhead(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	const month = "1/04"
	fmt.Fprintf(w, "=== Scheduling overhead, DDS/lxf/dynB, %s, rho=0.9 ===\n", month)
	limits := []int{1000, 4000, 16000}
	t := report.NewTable("mean microseconds per decision, by queue length", "L \\ queue", queueBinLabels...)
	for _, l := range limits {
		in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: 0.9})
		if err != nil {
			return err
		}
		tp := &timedPolicy{inner: core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), cfg.limit(l))}
		if _, err := sim.Run(in, tp); err != nil {
			return err
		}
		cells := make([]string, len(queueBinLabels))
		for b := range cells {
			if tp.count[b] == 0 {
				cells[b] = "-"
				continue
			}
			us := float64(tp.total[b].Microseconds()) / float64(tp.count[b])
			cells[b] = fmt.Sprintf("%.0f (n=%d)", us, tp.count[b])
		}
		t.AddRow(fmt.Sprintf("L=%d", cfg.limit(l)), cells...)
	}
	t.Write(w)
	fmt.Fprintln(w, "\nThe paper reports 30-65 ms per decision for L=1K-8K at queue length")
	fmt.Fprintln(w, "~30 on 2005 hardware (Java, 2-GHz Pentium 4).")
	return nil
}
