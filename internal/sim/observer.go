package sim

import "schedsearch/internal/job"

// Observer receives the ledger's committed scheduling events as they
// happen. It is the opt-in hook the correctness oracle
// (internal/oracle) attaches to: because both the offline simulator and
// the online engine drive the same Ledger, one observer implementation
// sees the complete event stream of either driver.
//
// Callbacks run synchronously inside ledger operations, under whatever
// serialization the driver already provides (the simulator is
// single-threaded, the engine holds its mutex), so implementations need
// no locking of their own but must not call back into the ledger.
type Observer interface {
	// ObserveSubmit fires when a job enters the waiting queue. The
	// job's Submit field is its arrival time.
	ObserveSubmit(j job.Job)
	// ObserveStart fires for each job a committed decision dispatches,
	// in dispatch order; now is the decision timestamp.
	ObserveStart(now job.Time, s Started)
	// ObserveFinish fires when a completed job is popped from the
	// ledger, in completion (time, job ID) order.
	ObserveFinish(f Finished)
}

// WithdrawObserver is an optional Observer extension: implementations
// additionally see still-waiting jobs leaving the queue without
// starting. The federation layer (internal/federation) withdraws a
// queued job from one shard and admits it on another when rebalancing;
// an observer that tracks job conservation needs to see the withdrawal
// or it would report the migrated job as lost.
type WithdrawObserver interface {
	Observer
	// ObserveWithdraw fires when a waiting job is removed from the
	// queue without being started.
	ObserveWithdraw(j job.Job)
}

// SetObserver attaches an observer to the ledger (nil detaches). The
// observer sees every Enqueue, committed Start and PopDue from then on.
func (l *Ledger) SetObserver(obs Observer) { l.obs = obs }
