package sim

import "fmt"

// Stepper is the simulator with control inverted: instead of driving a
// Policy itself (Run), it hands each decision point to the caller and
// waits for the decision. It is the seam the step/observe/act
// environment export (internal/env) is built on — Run is implemented
// as a thin loop over the very same step/apply primitives, so a caller
// that feeds back a policy's own decisions reproduces Run's schedule
// bit-identically by construction.
//
// Protocol: Next advances to a decision point and returns the snapshot;
// the caller must commit exactly one Apply per non-nil snapshot before
// calling Next again. Next returning (nil, nil) means the episode is
// complete and Result is available. A Stepper is single-use and not
// goroutine-safe.
type Stepper struct {
	e       *engine
	pending bool // a snapshot is out, awaiting Apply
	done    bool
	res     *Result
	err     error
}

// NewStepper prepares a stepped episode over the input. The name labels
// the run (Result.Policy and error messages), standing in for the
// policy name Run would use.
func NewStepper(in Input, name string) (*Stepper, error) {
	e, err := newEngine(in, nil)
	if err != nil {
		return nil, err
	}
	e.name = name
	return &Stepper{e: e}, nil
}

// Next advances the simulation to the next decision point and returns
// the policy-visible snapshot. It returns (nil, nil) when the episode
// is complete. The snapshot must be treated as read-only and is only
// valid until the following Apply.
func (st *Stepper) Next() (*Snapshot, error) {
	if st.err != nil {
		return nil, st.err
	}
	if st.done {
		return nil, nil
	}
	if st.pending {
		return nil, fmt.Errorf("sim: Stepper.Next with a decision pending (call Apply first)")
	}
	snap, err := st.e.step()
	if err != nil {
		st.err = err
		return nil, err
	}
	if snap == nil {
		st.done = true
		st.res = st.e.result()
		return nil, nil
	}
	st.pending = true
	return snap, nil
}

// Apply commits the decision for the snapshot the last Next returned:
// starts are QueuePos indices into that snapshot's Queue. It returns
// the jobs started (placement included), exactly as the Ledger
// committed them. Feasibility is verified; an infeasible set is an
// error and poisons the episode.
func (st *Stepper) Apply(starts []int) ([]Started, error) {
	if st.err != nil {
		return nil, st.err
	}
	if !st.pending {
		return nil, fmt.Errorf("sim: Stepper.Apply with no decision pending")
	}
	st.pending = false
	started, err := st.e.apply(starts)
	if err != nil {
		st.err = err
		return nil, err
	}
	return started, nil
}

// Result returns the completed episode's result; it is nil until Next
// has returned (nil, nil).
func (st *Stepper) Result() *Result { return st.res }

// Decisions returns the number of decision points surfaced so far.
func (st *Stepper) Decisions() int { return st.e.decisions }
