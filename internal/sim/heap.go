package sim

import "schedsearch/internal/job"

// finishEvent is a pending job completion. slot indexes engine.running;
// id breaks timestamp ties deterministically.
type finishEvent struct {
	at   job.Time
	slot int
	id   int
}

// finishHeap is a binary min-heap of finish events ordered by (at, id).
// It never holds more events than the machine has running jobs (at most
// the node capacity), so the linear scan in reslot is cheap.
type finishHeap struct {
	es []finishEvent
}

func (h *finishHeap) Len() int { return len(h.es) }

func (h *finishHeap) less(i, k int) bool {
	if h.es[i].at != h.es[k].at {
		return h.es[i].at < h.es[k].at
	}
	return h.es[i].id < h.es[k].id
}

func (h *finishHeap) swap(i, k int) { h.es[i], h.es[k] = h.es[k], h.es[i] }

func (h *finishHeap) push(e finishEvent) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *finishHeap) peek() finishEvent { return h.es[0] }

func (h *finishHeap) pop() finishEvent {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.es) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.es) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return top
}

// reslot rewrites the event referring to running-slot old so it refers
// to slot new; the engine calls it when it swap-removes a running job.
func (h *finishHeap) reslot(old, new int) {
	for i := range h.es {
		if h.es[i].slot == old {
			h.es[i].slot = new
			return
		}
	}
}
