package sim

import (
	"math/rand"
	"testing"

	"schedsearch/internal/job"
)

// randomFeasiblePolicy starts a random feasible subset of the queue at
// every decision, always including at least one job when the machine is
// otherwise idle (so it never stalls).
type randomFeasiblePolicy struct {
	rng *rand.Rand
}

func (p *randomFeasiblePolicy) Name() string { return "random-feasible" }

func (p *randomFeasiblePolicy) Decide(sn *Snapshot) []int {
	free := sn.FreeNodes
	var starts []int
	order := p.rng.Perm(len(sn.Queue))
	for _, qi := range order {
		if sn.Queue[qi].Job.Nodes <= free && p.rng.Intn(3) > 0 {
			free -= sn.Queue[qi].Job.Nodes
			starts = append(starts, qi)
		}
	}
	if len(starts) == 0 && len(sn.Running) == 0 {
		// Never deadlock: start the widest job that fits.
		for _, qi := range order {
			if sn.Queue[qi].Job.Nodes <= sn.FreeNodes {
				return []int{qi}
			}
		}
	}
	return starts
}

// TestEngineUnderRandomPolicies drives the engine with arbitrary (but
// feasible) scheduling decisions over random traces and verifies the
// core guarantees: every job runs exactly once, conservation holds, and
// concurrent node usage never exceeds capacity.
func TestEngineUnderRandomPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		capacity := 2 + rng.Intn(30)
		n := 30 + rng.Intn(120)
		jobs := make([]job.Job, n)
		at := job.Time(0)
		for i := range jobs {
			at += job.Time(rng.Intn(200))
			rt := job.Duration(rng.Intn(1000))
			jobs[i] = job.Job{
				ID: i + 1, Submit: at,
				Nodes:   1 + rng.Intn(capacity),
				Runtime: rt,
				Request: rt + job.Duration(rng.Intn(1000)),
			}
		}
		res, err := Run(Input{Capacity: capacity, Jobs: jobs},
			&randomFeasiblePolicy{rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Records) != n {
			t.Fatalf("trial %d: %d records for %d jobs", trial, len(res.Records), n)
		}
		seen := map[int]bool{}
		type ev struct {
			at    job.Time
			delta int
		}
		var evs []ev
		for _, r := range res.Records {
			if seen[r.Job.ID] {
				t.Fatalf("trial %d: job %d ran twice", trial, r.Job.ID)
			}
			seen[r.Job.ID] = true
			if r.Start < r.Job.Submit {
				t.Fatalf("trial %d: job %d started before submission", trial, r.Job.ID)
			}
			evs = append(evs, ev{at: r.Start, delta: r.Job.Nodes}, ev{at: r.End, delta: -r.Job.Nodes})
		}
		// Sweep: releases before acquisitions at the same instant.
		used := 0
		for {
			best := -1
			for i, e := range evs {
				if best == -1 || e.at < evs[best].at ||
					(e.at == evs[best].at && e.delta < evs[best].delta) {
					best = i
				}
			}
			if best == -1 {
				break
			}
			used += evs[best].delta
			if used > capacity {
				t.Fatalf("trial %d: %d nodes used on a %d-node machine at t=%d",
					trial, used, capacity, evs[best].at)
			}
			evs[best] = evs[len(evs)-1]
			evs = evs[:len(evs)-1]
		}
	}
}
