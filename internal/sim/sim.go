// Package sim implements the event-driven simulator used to evaluate
// scheduling policies: jobs arrive from a trace, a non-preemptive policy
// is consulted at every decision point (each job arrival and each job
// completion), and per-job start/end records plus queue statistics are
// collected. The methodology matches the paper (Section 4): each
// monthly simulation carries a warm-up and cool-down margin, and
// measures are later computed only over the jobs flagged as measured.
//
// The queue/allocation bookkeeping itself lives in Ledger, which the
// online engine (internal/engine) shares, so offline simulation and
// online serving produce identical schedules from identical decision
// points.
package sim

import (
	"fmt"

	"schedsearch/internal/job"
)

// WaitingJob is a queued job as visible to a scheduling policy. Estimate
// is the runtime the policy is allowed to use for planning: the actual
// runtime when the simulation runs with perfect information (R* = T in
// the paper), or the user-requested runtime (R* = R).
type WaitingJob struct {
	Job      job.Job
	Estimate job.Duration
	// QueuePos is the job's index in Snapshot.Queue; policies return
	// these indices from Decide.
	QueuePos int
}

// RunningJob is an executing job as visible to a policy: the policy sees
// the predicted end (start + estimate), never the actual end.
type RunningJob struct {
	ID           int
	Nodes        int
	User         int
	Start        job.Time
	PredictedEnd job.Time
}

// Snapshot is the system state handed to a policy at a decision point.
// Policies must treat it as read-only.
type Snapshot struct {
	Now       job.Time
	Capacity  int
	FreeNodes int
	Running   []RunningJob
	Queue     []WaitingJob
}

// Policy decides, at each decision point, which queued jobs start now.
type Policy interface {
	// Name identifies the policy in reports (e.g. "FCFS-backfill",
	// "DDS/lxf/dynB").
	Name() string
	// Decide returns the QueuePos indices of the jobs to start at
	// snap.Now. The engine verifies feasibility; returning an
	// infeasible set is a programming error and fails the simulation.
	Decide(snap *Snapshot) []int
}

// Record is the outcome of one job.
type Record struct {
	Job   job.Job
	Start job.Time
	End   job.Time
	// NodeIDs are the concrete nodes the job ran on (lowest-first
	// allocation), as a resource manager would report.
	NodeIDs []int
	// Measured marks jobs inside the measurement window (submitted
	// during the month proper, not warm-up or cool-down).
	Measured bool
}

// Result is the outcome of one simulation run.
type Result struct {
	Policy  string
	Records []Record
	// Decisions is the number of decision points at which the policy
	// was consulted with a non-empty queue.
	Decisions int
	// AvgQueueLen is the time-averaged queue length over the
	// measurement window.
	AvgQueueLen float64
	// MaxQueueLen is the maximum queue length observed in the window.
	MaxQueueLen int
	// Capacity and the measurement window, echoed from the input so
	// measures like utilization can be derived from the result alone.
	Capacity                 int
	MeasureStart, MeasureEnd job.Time
}

// Input is a simulation workload: jobs sorted by submit time plus the
// machine and measurement configuration.
type Input struct {
	Capacity int
	Jobs     []job.Job
	// Measured reports whether the job with the given ID belongs to
	// the measurement window. A nil map measures every job.
	Measured map[int]bool
	// MeasureStart/MeasureEnd bound the queue-length integration
	// window; if both are zero the whole run is integrated.
	MeasureStart, MeasureEnd job.Time
	// UseRequested makes policies see user-requested runtimes
	// (R* = R) instead of actual runtimes (R* = T).
	UseRequested bool
	// Estimator, when non-nil, overrides both modes: each arriving
	// job's estimate is Estimate(job), and Observe(job) is called at
	// every completion (before any same-instant arrivals are
	// estimated). See internal/predict for implementations.
	Estimator Estimator
	// Observer, when non-nil, receives every committed scheduling event
	// (the correctness oracle in internal/oracle implements it).
	Observer Observer
}

// Estimator produces runtime estimates for arriving jobs and learns
// from completions (the runtime-prediction extension).
type Estimator interface {
	Estimate(j job.Job) job.Duration
	Observe(j job.Job)
}

// Run simulates the input under the policy and returns the result.
func Run(in Input, p Policy) (*Result, error) {
	e, err := newEngine(in, p)
	if err != nil {
		return nil, err
	}
	return e.run()
}

type queued struct {
	j        job.Job
	estimate job.Duration
}

type running struct {
	j            job.Job
	start        job.Time
	predictedEnd job.Time
	nodeIDs      []int
}

type engine struct {
	in     Input
	policy Policy
	// name labels the run in errors and the Result; it is the policy's
	// name under Run, or the caller-supplied label under a Stepper
	// (which has no policy).
	name string

	clock   job.Time
	nextIdx int // next arrival in in.Jobs
	l       *Ledger

	records        []Record
	decisions      int
	qlenInt        float64 // integral of queue length over measurement window
	qlenLast       job.Time
	maxQ           int
	intStart       job.Time
	intEnd         job.Time
	explicitWindow bool
}

func newEngine(in Input, p Policy) (*engine, error) {
	l, err := NewLedger(in.Capacity)
	if err != nil {
		return nil, err
	}
	for i := range in.Jobs {
		if err := in.Jobs[i].Validate(in.Capacity); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if i > 0 && in.Jobs[i].Submit < in.Jobs[i-1].Submit {
			return nil, fmt.Errorf("sim: jobs not sorted by submit at index %d", i)
		}
	}
	l.SetObserver(in.Observer)
	e := &engine{
		in:       in,
		policy:   p,
		l:        l,
		intStart: in.MeasureStart,
		intEnd:   in.MeasureEnd,
	}
	e.explicitWindow = !(e.intStart == 0 && e.intEnd == 0)
	if !e.explicitWindow {
		e.intEnd = job.Time(1) << 59 // integrate everything
	}
	if p != nil {
		e.name = p.Name()
	}
	return e, nil
}

func (e *engine) measured(id int) bool {
	if e.in.Measured == nil {
		return true
	}
	return e.in.Measured[id]
}

func (e *engine) estimate(j job.Job) job.Duration {
	est := j.Runtime
	switch {
	case e.in.Estimator != nil:
		est = e.in.Estimator.Estimate(j)
	case e.in.UseRequested:
		est = j.Request
	}
	if est < 1 {
		est = 1
	}
	return est
}

// advanceQueueIntegral accumulates queue-length × time up to now.
func (e *engine) advanceQueueIntegral(now job.Time) {
	lo := e.qlenLast
	if lo < e.intStart {
		lo = e.intStart
	}
	hi := now
	if hi > e.intEnd {
		hi = e.intEnd
	}
	if hi > lo {
		e.qlenInt += float64(hi-lo) * float64(e.l.QueueLen())
	}
	e.qlenLast = now
}

// run drives the step/apply pair with the configured policy — the
// classic closed-loop simulation. The same two primitives back the
// step/observe/act export in internal/env, so an external driver that
// feeds back the policy's own decisions replays this loop bit-
// identically by construction.
func (e *engine) run() (*Result, error) {
	for {
		snap, err := e.step()
		if err != nil {
			return nil, err
		}
		if snap == nil {
			return e.result(), nil
		}
		if _, err := e.apply(e.policy.Decide(snap)); err != nil {
			return nil, err
		}
	}
}

// step advances the simulation to the next decision point: events are
// consumed in time order (finishes at an instant strictly before that
// instant's arrivals) until the queue is non-empty, and the policy-
// visible snapshot is returned. A nil snapshot with a nil error means
// the episode is complete (every job has finished); call result().
// Each non-nil snapshot is one decision the caller must commit with
// apply before stepping again.
func (e *engine) step() (*Snapshot, error) {
	for {
		// Next event time: earliest of next arrival and next finish.
		var next job.Time
		haveArr := e.nextIdx < len(e.in.Jobs)
		finAt, haveFin := e.l.NextFinish()
		switch {
		case haveArr && haveFin:
			next = min64(e.in.Jobs[e.nextIdx].Submit, finAt)
		case haveArr:
			next = e.in.Jobs[e.nextIdx].Submit
		case haveFin:
			next = finAt
		default:
			// No more events. Every job must have been started.
			if e.l.QueueLen() > 0 {
				return nil, fmt.Errorf("sim: policy %q stalled with %d queued jobs and idle machine",
					e.name, e.l.QueueLen())
			}
			return nil, nil
		}

		e.advanceQueueIntegral(next)
		e.clock = next

		// Process all finishes at this instant first (free the nodes),
		// then all arrivals.
		for {
			f, ok := e.l.PopDue(e.clock)
			if !ok {
				break
			}
			if e.in.Estimator != nil {
				e.in.Estimator.Observe(f.Job)
			}
			e.records = append(e.records, Record{
				Job:      f.Job,
				Start:    f.Start,
				End:      f.End,
				NodeIDs:  f.NodeIDs,
				Measured: e.measured(f.Job.ID),
			})
		}
		for e.nextIdx < len(e.in.Jobs) && e.in.Jobs[e.nextIdx].Submit == e.clock {
			j := e.in.Jobs[e.nextIdx]
			e.nextIdx++
			e.l.Enqueue(j, e.estimate(j))
		}
		if e.l.QueueLen() > 0 {
			e.decisions++
			return e.l.Snapshot(e.clock), nil
		}
	}
}

// apply commits one decision at the current decision point: the starts
// are the QueuePos indices of the snapshot step returned. An empty
// decision is legal only while the machine is busy (a policy may wait
// for nodes to free); on an idle machine it would stall the clock.
func (e *engine) apply(starts []int) ([]Started, error) {
	var started []Started
	if len(starts) == 0 {
		if e.l.RunningLen() == 0 {
			return nil, fmt.Errorf("sim: policy %q started nothing on an idle machine with %d queued jobs at t=%d",
				e.name, e.l.QueueLen(), e.clock)
		}
	} else {
		e.advanceQueueIntegral(e.clock) // queue length changes now (zero dt, keeps bookkeeping exact)
		var err error
		started, err = e.l.Start(e.name, e.clock, starts)
		if err != nil {
			return nil, err
		}
	}
	if e.l.QueueLen() > e.maxQ && e.clock >= e.intStart && e.clock < e.intEnd {
		e.maxQ = e.l.QueueLen()
	}
	return started, nil
}

func (e *engine) result() *Result {
	var window float64
	if e.explicitWindow {
		window = float64(e.intEnd - e.intStart)
		if e.qlenLast < e.intEnd {
			// Integrate the tail of the window (queue is empty by now).
			e.advanceQueueIntegral(e.intEnd)
		}
	} else {
		// No explicit window: average over the span of activity.
		var first job.Time
		if len(e.in.Jobs) > 0 {
			first = e.in.Jobs[0].Submit
		}
		window = float64(e.qlenLast - first)
	}
	avgQ := 0.0
	if window > 0 {
		avgQ = e.qlenInt / window
	}
	measureEnd := e.intEnd
	if !e.explicitWindow {
		measureEnd = e.qlenLast
	}
	return &Result{
		Policy:       e.name,
		Records:      e.records,
		Decisions:    e.decisions,
		AvgQueueLen:  avgQ,
		MaxQueueLen:  e.maxQ,
		Capacity:     e.in.Capacity,
		MeasureStart: e.intStart,
		MeasureEnd:   measureEnd,
	}
}

func min64(a, b job.Time) job.Time {
	if a < b {
		return a
	}
	return b
}
