package sim

import (
	"math/rand"
	"strings"
	"testing"

	"schedsearch/internal/job"
)

func stepTrace(rng *rand.Rand, capacity, n int) []job.Job {
	jobs := make([]job.Job, n)
	at := job.Time(0)
	for i := range jobs {
		at += job.Time(rng.Intn(150))
		rt := job.Duration(rng.Intn(800))
		jobs[i] = job.Job{
			ID: i + 1, Submit: at,
			Nodes:   1 + rng.Intn(capacity),
			Runtime: rt,
			Request: rt + job.Duration(rng.Intn(800)),
		}
	}
	return jobs
}

// TestStepperMatchesRun is the inversion-of-control differential: an
// external loop that drives a Stepper with a policy's own decisions
// must reproduce sim.Run exactly — records, decision count, queue
// statistics, everything in the Result.
func TestStepperMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		capacity := 2 + rng.Intn(24)
		jobs := stepTrace(rng, capacity, 40+rng.Intn(80))
		in := Input{Capacity: capacity, Jobs: jobs}

		native, err := Run(in, &randomFeasiblePolicy{rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: native run: %v", trial, err)
		}

		pol := &randomFeasiblePolicy{rng: rand.New(rand.NewSource(int64(trial)))}
		st, err := NewStepper(in, pol.Name())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for {
			snap, err := st.Next()
			if err != nil {
				t.Fatalf("trial %d: Next: %v", trial, err)
			}
			if snap == nil {
				break
			}
			if _, err := st.Apply(pol.Decide(snap)); err != nil {
				t.Fatalf("trial %d: Apply: %v", trial, err)
			}
		}
		stepped := st.Result()
		if stepped == nil {
			t.Fatalf("trial %d: no result after completion", trial)
		}

		if len(stepped.Records) != len(native.Records) {
			t.Fatalf("trial %d: stepped %d records, native %d", trial, len(stepped.Records), len(native.Records))
		}
		for i := range native.Records {
			a, b := native.Records[i], stepped.Records[i]
			if a.Job.ID != b.Job.ID || a.Start != b.Start || a.End != b.End {
				t.Fatalf("trial %d: record %d diverges: native %+v, stepped %+v", trial, i, a, b)
			}
			for k := range a.NodeIDs {
				if a.NodeIDs[k] != b.NodeIDs[k] {
					t.Fatalf("trial %d: job %d node IDs diverge", trial, a.Job.ID)
				}
			}
		}
		if stepped.Decisions != native.Decisions ||
			stepped.AvgQueueLen != native.AvgQueueLen ||
			stepped.MaxQueueLen != native.MaxQueueLen {
			t.Fatalf("trial %d: stats diverge: native %+v, stepped %+v", trial, native, stepped)
		}
	}
}

// TestStepperProtocol pins the misuse errors: Apply without a pending
// decision, Next with one outstanding, and error poisoning.
func TestStepperProtocol(t *testing.T) {
	jobs := []job.Job{{ID: 1, Submit: 0, Nodes: 1, Runtime: 10, Request: 10}}
	st, err := NewStepper(Input{Capacity: 2, Jobs: jobs}, "proto")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(nil); err == nil || !strings.Contains(err.Error(), "no decision pending") {
		t.Fatalf("Apply before Next: %v", err)
	}
	snap, err := st.Next()
	if err != nil || snap == nil {
		t.Fatalf("Next: %v %v", snap, err)
	}
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "decision pending") {
		t.Fatalf("double Next: %v", err)
	}
	// An empty decision on an idle machine is a stall: the error must
	// stick to the episode.
	if _, err := st.Apply(nil); err == nil || !strings.Contains(err.Error(), "idle machine") {
		t.Fatalf("idle stall: %v", err)
	}
	if _, err := st.Next(); err == nil {
		t.Fatal("poisoned stepper kept going")
	}
	if st.Result() != nil {
		t.Fatal("poisoned stepper produced a result")
	}
}
