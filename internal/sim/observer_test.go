// External test package: the oracle imports sim, so wiring the oracle
// into simulator runs has to live outside package sim.
package sim_test

import (
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// recordingObserver checks the raw stream contract: submit before
// start before finish per job, and counts that match the result.
type recordingObserver struct {
	t        *testing.T
	submits  map[int]bool
	starts   map[int]bool
	finishes int
}

func newRecordingObserver(t *testing.T) *recordingObserver {
	return &recordingObserver{t: t, submits: make(map[int]bool), starts: make(map[int]bool)}
}

func (r *recordingObserver) ObserveSubmit(j job.Job) {
	if r.submits[j.ID] {
		r.t.Errorf("job %d submitted twice", j.ID)
	}
	r.submits[j.ID] = true
}

func (r *recordingObserver) ObserveStart(now job.Time, s sim.Started) {
	id := s.Job.ID
	if !r.submits[id] {
		r.t.Errorf("job %d started before ObserveSubmit", id)
	}
	if r.starts[id] {
		r.t.Errorf("job %d started twice", id)
	}
	r.starts[id] = true
	if s.Start != now {
		r.t.Errorf("job %d dispatched for t=%d at t=%d", id, s.Start, now)
	}
}

func (r *recordingObserver) ObserveFinish(f sim.Finished) {
	if !r.starts[f.Job.ID] {
		r.t.Errorf("job %d finished before ObserveStart", f.Job.ID)
	}
	r.finishes++
}

// TestObserverStreamContract runs the simulator with a recording
// observer and requires the callback stream to cover exactly the run:
// every input job submitted, every record started and finished, in
// lifecycle order.
func TestObserverStreamContract(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 9, JobScale: 0.02})
	in, _, err := suite.Input("7/03", workload.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecordingObserver(t)
	in.Observer = rec
	res, err := sim.Run(in, policy.FCFSBackfill())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.submits) != len(in.Jobs) {
		t.Errorf("observed %d submits for %d input jobs", len(rec.submits), len(in.Jobs))
	}
	if rec.finishes != len(res.Records) {
		t.Errorf("observed %d finishes for %d records", rec.finishes, len(res.Records))
	}
}

// TestSimulatorSatisfiesOracle attaches the live oracle to offline
// simulator runs across policy families and load levels: the
// schedule-invariant contract must hold for every one, live and on the
// final record sweep.
func TestSimulatorSatisfiesOracle(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 4, JobScale: 0.03})
	cases := []struct {
		name string
		pol  func() sim.Policy
		opt  workload.SimOptions
	}{
		{name: "FCFS-backfill", pol: func() sim.Policy { return policy.FCFSBackfill() }},
		{name: "LXF-backfill-high-load", pol: func() sim.Policy { return policy.LXFBackfill() },
			opt: workload.SimOptions{TargetLoad: 0.9}},
		{name: "DDS-lxf-dynB", pol: func() sim.Policy {
			return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 100)
		}},
		{name: "LDS-fcfs-50h-requested", pol: func() sim.Policy {
			return core.New(core.LDS, core.HeuristicFCFS, core.FixedBound(50*job.Hour), 100)
		}, opt: workload.SimOptions{UseRequested: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, _, err := suite.Input("7/03", tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			orc := oracle.New(in.Capacity)
			in.Observer = orc
			res, err := sim.Run(in, tc.pol())
			if err != nil {
				t.Fatal(err)
			}
			if err := orc.Final(); err != nil {
				t.Fatalf("live oracle: %v", err)
			}
			if err := oracle.CheckRecords(in.Capacity, in.Jobs, res.Records); err != nil {
				t.Fatalf("record sweep: %v", err)
			}
		})
	}
}
