package sim

import (
	"strings"
	"testing"

	"schedsearch/internal/job"
)

// scripted is a policy driven by a function, for engine tests.
type scripted struct {
	name   string
	decide func(*Snapshot) []int
}

func (s scripted) Name() string              { return s.name }
func (s scripted) Decide(sn *Snapshot) []int { return s.decide(sn) }

// greedyFCFS starts queued jobs in arrival order while they fit —
// enough for engine mechanics tests.
func greedyFCFS() Policy {
	return scripted{name: "greedy", decide: func(sn *Snapshot) []int {
		free := sn.FreeNodes
		var starts []int
		for i, w := range sn.Queue {
			if w.Job.Nodes <= free {
				free -= w.Job.Nodes
				starts = append(starts, i)
			} else {
				break // strict FCFS: no backfill
			}
		}
		return starts
	}}
}

func mkJob(id int, submit job.Time, nodes int, runtime job.Duration) job.Job {
	return job.Job{ID: id, Submit: submit, Nodes: nodes, Runtime: runtime, Request: runtime}
}

func TestRunEmptyTrace(t *testing.T) {
	res, err := Run(Input{Capacity: 4}, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Decisions != 0 {
		t.Errorf("empty trace produced %d records, %d decisions", len(res.Records), res.Decisions)
	}
}

func TestRunSingleJob(t *testing.T) {
	in := Input{Capacity: 4, Jobs: []job.Job{mkJob(1, 100, 2, 50)}}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("%d records, want 1", len(res.Records))
	}
	r := res.Records[0]
	if r.Start != 100 || r.End != 150 {
		t.Errorf("record start/end = %d/%d, want 100/150", r.Start, r.End)
	}
	if !r.Measured {
		t.Error("job not measured with nil Measured map")
	}
}

func TestRunQueueing(t *testing.T) {
	// Two 3-node jobs on a 4-node machine: the second waits.
	in := Input{Capacity: 4, Jobs: []job.Job{
		mkJob(1, 0, 3, 100),
		mkJob(2, 10, 3, 100),
	}}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Record{}
	for _, r := range res.Records {
		byID[r.Job.ID] = r
	}
	if byID[1].Start != 0 {
		t.Errorf("job 1 start = %d, want 0", byID[1].Start)
	}
	if byID[2].Start != 100 {
		t.Errorf("job 2 start = %d, want 100 (after job 1)", byID[2].Start)
	}
}

func TestRunSimultaneousEvents(t *testing.T) {
	// Jobs arriving at the exact completion instant of a predecessor
	// must see the freed nodes.
	in := Input{Capacity: 4, Jobs: []job.Job{
		mkJob(1, 0, 4, 100),
		mkJob(2, 100, 4, 10),
	}}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Job.ID == 2 && r.Start != 100 {
			t.Errorf("job 2 start = %d, want 100 (start at the freeing instant)", r.Start)
		}
	}
}

func TestRunZeroRuntimeJob(t *testing.T) {
	in := Input{Capacity: 4, Jobs: []job.Job{mkJob(1, 0, 4, 0), mkJob(2, 0, 4, 10)}}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("%d records, want 2", len(res.Records))
	}
	byID := map[int]Record{}
	for _, r := range res.Records {
		byID[r.Job.ID] = r
	}
	// The zero-length job occupies the machine for one second.
	if byID[1].End != byID[1].Start+1 {
		t.Errorf("zero-runtime job end = %d, want start+1", byID[1].End)
	}
	if byID[2].Start < byID[1].End {
		t.Errorf("job 2 started at %d before job 1 released at %d", byID[2].Start, byID[1].End)
	}
}

func TestRunRejectsUnsortedJobs(t *testing.T) {
	in := Input{Capacity: 4, Jobs: []job.Job{mkJob(1, 100, 1, 10), mkJob(2, 50, 1, 10)}}
	if _, err := Run(in, greedyFCFS()); err == nil {
		t.Fatal("unsorted jobs accepted")
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	cases := []job.Job{
		{ID: 1, Submit: 0, Nodes: 0, Runtime: 10, Request: 10},   // zero nodes
		{ID: 1, Submit: 0, Nodes: 8, Runtime: 10, Request: 10},   // over capacity
		{ID: 1, Submit: 0, Nodes: 1, Runtime: 10, Request: 5},    // request < runtime
		{ID: 1, Submit: -5, Nodes: 1, Runtime: 10, Request: 10},  // negative submit
		{ID: 1, Submit: 0, Nodes: 1, Runtime: -10, Request: -10}, // negative runtime
	}
	for _, j := range cases {
		if _, err := Run(Input{Capacity: 4, Jobs: []job.Job{j}}, greedyFCFS()); err == nil {
			t.Errorf("invalid job %+v accepted", j)
		}
	}
}

func TestRunPolicyErrors(t *testing.T) {
	in := Input{Capacity: 4, Jobs: []job.Job{mkJob(1, 0, 2, 10), mkJob(2, 0, 2, 10)}}
	cases := []struct {
		name   string
		decide func(*Snapshot) []int
		substr string
	}{
		{"stall", func(*Snapshot) []int { return nil }, "started nothing"},
		{"bad index", func(*Snapshot) []int { return []int{7} }, "invalid queue index"},
		{"duplicate", func(*Snapshot) []int { return []int{0, 0} }, "duplicate"},
		{"over capacity", func(sn *Snapshot) []int {
			var all []int
			for i, w := range sn.Queue {
				_ = w
				all = append(all, i)
			}
			if len(all) < 2 {
				return all
			}
			return all
		}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(in, scripted{name: c.name, decide: c.decide})
			switch c.name {
			case "over capacity":
				// Both 2-node jobs fit on 4 nodes, so this one succeeds.
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
			default:
				if err == nil {
					t.Fatal("no error")
				}
				if !strings.Contains(err.Error(), c.substr) {
					t.Errorf("error %q does not contain %q", err, c.substr)
				}
			}
		})
	}
}

func TestRunOverCapacityStartRejected(t *testing.T) {
	in := Input{Capacity: 4, Jobs: []job.Job{mkJob(1, 0, 3, 10), mkJob(2, 0, 3, 10)}}
	pol := scripted{name: "greedy-all", decide: func(sn *Snapshot) []int {
		var all []int
		for i := range sn.Queue {
			all = append(all, i)
		}
		return all
	}}
	if _, err := Run(in, pol); err == nil || !strings.Contains(err.Error(), "free") {
		t.Fatalf("over-capacity start not rejected: %v", err)
	}
}

func TestMeasuredFlag(t *testing.T) {
	in := Input{
		Capacity: 4,
		Jobs:     []job.Job{mkJob(1, 0, 1, 10), mkJob(2, 5, 1, 10)},
		Measured: map[int]bool{2: true},
	}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		want := r.Job.ID == 2
		if r.Measured != want {
			t.Errorf("job %d measured = %v, want %v", r.Job.ID, r.Measured, want)
		}
	}
}

func TestEstimateSelection(t *testing.T) {
	j := job.Job{ID: 1, Submit: 0, Nodes: 1, Runtime: 100, Request: 500}
	var sawEstimate job.Duration
	pol := scripted{name: "probe", decide: func(sn *Snapshot) []int {
		sawEstimate = sn.Queue[0].Estimate
		return []int{0}
	}}
	if _, err := Run(Input{Capacity: 4, Jobs: []job.Job{j}}, pol); err != nil {
		t.Fatal(err)
	}
	if sawEstimate != 100 {
		t.Errorf("estimate with R*=T: %d, want 100", sawEstimate)
	}
	if _, err := Run(Input{Capacity: 4, Jobs: []job.Job{j}, UseRequested: true}, pol); err != nil {
		t.Fatal(err)
	}
	if sawEstimate != 500 {
		t.Errorf("estimate with R*=R: %d, want 500", sawEstimate)
	}
}

func TestPredictedEndVsActualEnd(t *testing.T) {
	// With R* = R, a running job's predicted end exceeds its actual
	// end; the next decision must happen at the ACTUAL end.
	jobs := []job.Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 50, Request: 500},
		{ID: 2, Submit: 10, Nodes: 4, Runtime: 10, Request: 10},
	}
	var predicted job.Time
	pol := scripted{name: "probe", decide: func(sn *Snapshot) []int {
		if len(sn.Running) == 1 && sn.Now == 10 {
			predicted = sn.Running[0].PredictedEnd
		}
		var starts []int
		free := sn.FreeNodes
		for i, w := range sn.Queue {
			if w.Job.Nodes <= free {
				free -= w.Job.Nodes
				starts = append(starts, i)
			}
		}
		return starts
	}}
	res, err := Run(Input{Capacity: 4, Jobs: jobs, UseRequested: true}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if predicted != 500 {
		t.Errorf("predicted end seen by policy = %d, want 500", predicted)
	}
	for _, r := range res.Records {
		if r.Job.ID == 2 && r.Start != 50 {
			t.Errorf("job 2 start = %d, want 50 (actual completion)", r.Start)
		}
	}
}

func TestQueueLengthStats(t *testing.T) {
	// One running job blocks three 4-node arrivals for 100s each in
	// sequence; queue length is 3 for the first 100s, 2 for the next,
	// etc.
	jobs := []job.Job{
		mkJob(1, 0, 4, 100),
		mkJob(2, 0, 4, 100),
		mkJob(3, 0, 4, 100),
		mkJob(4, 0, 4, 100),
	}
	in := Input{Capacity: 4, Jobs: jobs, MeasureStart: 0, MeasureEnd: 400}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	// Integral = 3*100 + 2*100 + 1*100 + 0*100 = 600 over 400s -> 1.5.
	if res.AvgQueueLen < 1.49 || res.AvgQueueLen > 1.51 {
		t.Errorf("AvgQueueLen = %v, want 1.5", res.AvgQueueLen)
	}
	if res.MaxQueueLen != 3 {
		t.Errorf("MaxQueueLen = %d, want 3", res.MaxQueueLen)
	}
}

func TestDecisionsCount(t *testing.T) {
	in := Input{Capacity: 4, Jobs: []job.Job{mkJob(1, 0, 4, 10), mkJob(2, 5, 4, 10)}}
	res, err := Run(in, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	// Decision points with a non-empty queue: t=0 (job 1 arrives),
	// t=5 (job 2 arrives, can't start), t=10 (job 1 finishes).
	if res.Decisions != 3 {
		t.Errorf("Decisions = %d, want 3", res.Decisions)
	}
}

func TestBackfillOpportunityVisible(t *testing.T) {
	// The snapshot passed to the policy must expose running jobs'
	// predicted ends so backfill decisions are possible.
	jobs := []job.Job{
		mkJob(1, 0, 3, 100),
		mkJob(2, 1, 3, 50), // must wait for job 1
		mkJob(3, 2, 1, 40), // can backfill alongside job 1
	}
	sawRunning := false
	pol := scripted{name: "backfill-probe", decide: func(sn *Snapshot) []int {
		if len(sn.Running) > 0 && sn.Running[0].PredictedEnd == 100 {
			sawRunning = true
		}
		var starts []int
		free := sn.FreeNodes
		for i, w := range sn.Queue {
			if w.Job.Nodes <= free {
				free -= w.Job.Nodes
				starts = append(starts, i)
			}
		}
		return starts
	}}
	res, err := Run(Input{Capacity: 4, Jobs: jobs}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !sawRunning {
		t.Error("policy never saw the running job's predicted end")
	}
	for _, r := range res.Records {
		if r.Job.ID == 3 && r.Start != 2 {
			t.Errorf("backfilled job started at %d, want 2", r.Start)
		}
	}
}
