package sim

import (
	"fmt"

	"schedsearch/internal/cluster"
	"schedsearch/internal/job"
)

// Ledger is the queue and allocation bookkeeping shared by the offline
// simulator (Run) and the online engine (internal/engine): the waiting
// queue in arrival order, the running set with concrete node
// assignments, and the pending-completion heap. It validates policy
// decisions, hands out node IDs lowest-first, and pops completions in
// deterministic (time, job ID) order, so any two drivers feeding it the
// same decision points produce byte-identical schedules.
//
// The Ledger itself is not goroutine-safe; callers serialize access
// (the simulator is single-threaded, the engine holds a mutex).
type Ledger struct {
	capacity int
	free     int
	nodes    *cluster.NodeSet
	queue    []queued
	running  []running
	events   finishHeap
	obs      Observer
}

// Started reports one job the Ledger just dispatched.
type Started struct {
	Job job.Job
	// Start is the dispatch time.
	Start job.Time
	// PredictedEnd is Start plus the planning estimate (what policies
	// see; the actual completion uses the real runtime).
	PredictedEnd job.Time
	// NodeIDs are the concrete nodes assigned, lowest-first.
	NodeIDs []int
}

// Finished reports one completed job popped from the Ledger.
type Finished struct {
	Job        job.Job
	Start, End job.Time
	NodeIDs    []int
}

// NewLedger returns an empty ledger for a machine of the given size.
func NewLedger(capacity int) (*Ledger, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("sim: capacity %d", capacity)
	}
	return &Ledger{
		capacity: capacity,
		free:     capacity,
		nodes:    cluster.NewNodeSet(capacity),
	}, nil
}

// Capacity returns the machine size.
func (l *Ledger) Capacity() int { return l.capacity }

// FreeNodes returns the number of unallocated nodes.
func (l *Ledger) FreeNodes() int { return l.free }

// QueueLen returns the number of waiting jobs.
func (l *Ledger) QueueLen() int { return len(l.queue) }

// RunningLen returns the number of running jobs.
func (l *Ledger) RunningLen() int { return len(l.running) }

// Enqueue appends a job to the waiting queue. A zero estimate means
// "not yet estimated"; FillEstimates (or a non-zero estimate here)
// must supply one before the job is visible in a Snapshot.
func (l *Ledger) Enqueue(j job.Job, estimate job.Duration) {
	l.queue = append(l.queue, queued{j: j, estimate: estimate})
	if l.obs != nil {
		l.obs.ObserveSubmit(j)
	}
}

// SetEstimate sets the planning estimate of the queued job with the
// given ID (the engine's rebuild path replays recorded estimates this
// way) and reports whether the job was found in the queue.
func (l *Ledger) SetEstimate(id int, estimate job.Duration) bool {
	for i := range l.queue {
		if l.queue[i].j.ID == id {
			l.queue[i].estimate = estimate
			return true
		}
	}
	return false
}

// Withdraw removes the waiting job with the given ID from the queue,
// preserving the arrival order of the remaining jobs, and returns it.
// Running or completed jobs cannot be withdrawn (non-preemption); the
// second result is false when the ID is not in the queue. An attached
// WithdrawObserver sees the removal.
func (l *Ledger) Withdraw(id int) (job.Job, bool) {
	for i := range l.queue {
		if l.queue[i].j.ID != id {
			continue
		}
		j := l.queue[i].j
		l.queue = append(l.queue[:i], l.queue[i+1:]...)
		if wo, ok := l.obs.(WithdrawObserver); ok {
			wo.ObserveWithdraw(j)
		}
		return j, true
	}
	return job.Job{}, false
}

// Demand sums the outstanding work on the ledger at now, in
// node-seconds: queued is Σ nodes × planning time over waiting jobs
// (the estimate once fixed, else the request, floored at one second),
// remaining is Σ nodes × remaining predicted time over running jobs
// (floored at one second per job — a job past its predicted end still
// holds its nodes). The federation router's placement and rebalance
// passes consume these through engine.Load.
func (l *Ledger) Demand(now job.Time) (queued, remaining int64) {
	for _, q := range l.queue {
		est := q.estimate
		if est < 1 {
			est = q.j.Request
		}
		if est < 1 {
			est = 1
		}
		queued += int64(q.j.Nodes) * est
	}
	for _, r := range l.running {
		rem := r.predictedEnd - now
		if rem < 1 {
			rem = 1
		}
		remaining += int64(r.j.Nodes) * rem
	}
	return queued, remaining
}

// QueueIndex returns the current queue position of the waiting job with
// the given ID.
func (l *Ledger) QueueIndex(id int) (int, bool) {
	for i := range l.queue {
		if l.queue[i].j.ID == id {
			return i, true
		}
	}
	return 0, false
}

// FillEstimates computes the planning estimate of every queued job that
// does not have one yet, clamped to at least one second. Deferring
// estimation to the first decision point after arrival keeps estimator
// semantics identical between drivers: completions at the same instant
// are always observed before the new arrivals are estimated.
func (l *Ledger) FillEstimates(fn func(job.Job) job.Duration) {
	for i := range l.queue {
		if l.queue[i].estimate > 0 {
			continue
		}
		est := fn(l.queue[i].j)
		if est < 1 {
			est = 1
		}
		l.queue[i].estimate = est
	}
}

// NextFinish returns the earliest pending completion time.
func (l *Ledger) NextFinish() (job.Time, bool) {
	if l.events.Len() == 0 {
		return 0, false
	}
	return l.events.peek().at, true
}

// PopDue pops the earliest completion with time <= now, freeing its
// nodes. Completions at the same instant pop in job-ID order.
func (l *Ledger) PopDue(now job.Time) (Finished, bool) {
	if l.events.Len() == 0 || l.events.peek().at > now {
		return Finished{}, false
	}
	ev := l.events.pop()
	slot := ev.slot
	r := l.running[slot]
	l.free += r.j.Nodes
	if err := l.nodes.Release(r.nodeIDs); err != nil {
		// The ledger allocated these nodes itself; a release failure is
		// a ledger bug, not a policy error.
		panic(fmt.Sprintf("sim: %v", err))
	}
	// Remove by swapping with the last; fix the heap's slot pointers.
	last := len(l.running) - 1
	if slot != last {
		l.running[slot] = l.running[last]
		l.events.reslot(last, slot)
	}
	l.running = l.running[:last]
	f := Finished{Job: r.j, Start: r.start, End: ev.at, NodeIDs: r.nodeIDs}
	if l.obs != nil {
		l.obs.ObserveFinish(f)
	}
	return f, true
}

// RunningState is one running job's full restorable state, as captured
// for a compacted checkpoint base: unlike Snapshot's RunningJob it
// carries the whole job and the concrete node assignment.
type RunningState struct {
	Job          job.Job
	Start        job.Time
	PredictedEnd job.Time
	NodeIDs      []int
}

// RunningStates returns the running set in internal slot order — the
// order Snapshot presents to policies — with full jobs and node
// assignments. Checkpoint compaction captures it; restoring the same
// sequence through Place reproduces the slot layout exactly, so a
// rebuilt ledger hands policies byte-identical snapshots.
func (l *Ledger) RunningStates() []RunningState {
	out := make([]RunningState, len(l.running))
	for i, r := range l.running {
		out[i] = RunningState{
			Job:          r.j,
			Start:        r.start,
			PredictedEnd: r.predictedEnd,
			NodeIDs:      append([]int(nil), r.nodeIDs...),
		}
	}
	return out
}

// Place restores one running job from a checkpoint base onto its exact
// recorded nodes. Node allocation is lowest-free-first, a pure function
// of the allocated set, so replaying a tail after restoring every base
// job onto its original nodes allocates identically to the full-history
// replay. Place emits no observer events: a base is committed history,
// already observed before the checkpoint (compacted rebuilds are
// verified offline with oracle.CheckRecords instead). Call it in
// RunningStates order.
func (l *Ledger) Place(j job.Job, start, predictedEnd job.Time, nodeIDs []int) error {
	if len(nodeIDs) != j.Nodes {
		return fmt.Errorf("sim: place job %d: %d node IDs for %d nodes", j.ID, len(nodeIDs), j.Nodes)
	}
	if err := l.nodes.Claim(nodeIDs); err != nil {
		return fmt.Errorf("sim: place job %d: %v", j.ID, err)
	}
	l.free -= j.Nodes
	rt := j.Runtime
	if rt < 1 {
		rt = 1
	}
	slot := len(l.running)
	l.running = append(l.running, running{
		j:            j,
		start:        start,
		predictedEnd: predictedEnd,
		nodeIDs:      append([]int(nil), nodeIDs...),
	})
	l.events.push(finishEvent{at: start + rt, slot: slot, id: j.ID})
	return nil
}

// Snapshot builds the read-only system state a policy sees at a
// decision point.
func (l *Ledger) Snapshot(now job.Time) *Snapshot {
	snap := &Snapshot{
		Now:       now,
		Capacity:  l.capacity,
		FreeNodes: l.free,
		Running:   make([]RunningJob, len(l.running)),
		Queue:     make([]WaitingJob, len(l.queue)),
	}
	for i, r := range l.running {
		snap.Running[i] = RunningJob{
			ID:           r.j.ID,
			Nodes:        r.j.Nodes,
			User:         r.j.User,
			Start:        r.start,
			PredictedEnd: r.predictedEnd,
		}
	}
	for i, q := range l.queue {
		snap.Queue[i] = WaitingJob{Job: q.j, Estimate: q.estimate, QueuePos: i}
	}
	return snap
}

// Start validates and applies a policy decision: the queue positions in
// starts begin executing at now. It allocates concrete nodes, schedules
// the completions, and compacts the queue preserving arrival order.
// policyName labels error messages.
func (l *Ledger) Start(policyName string, now job.Time, starts []int) ([]Started, error) {
	seen := make(map[int]bool, len(starts))
	need := 0
	for _, qi := range starts {
		if qi < 0 || qi >= len(l.queue) {
			return nil, fmt.Errorf("sim: policy %q returned invalid queue index %d", policyName, qi)
		}
		if seen[qi] {
			return nil, fmt.Errorf("sim: policy %q returned duplicate queue index %d", policyName, qi)
		}
		seen[qi] = true
		need += l.queue[qi].j.Nodes
	}
	if need > l.free {
		return nil, fmt.Errorf("sim: policy %q started %d nodes with only %d free at t=%d",
			policyName, need, l.free, now)
	}
	out := make([]Started, 0, len(starts))
	for _, qi := range starts {
		q := l.queue[qi]
		rt := q.j.Runtime
		if rt < 1 {
			rt = 1 // zero-length jobs still occupy the machine for an instant
		}
		est := q.estimate
		if est < 1 {
			est = 1
		}
		l.free -= q.j.Nodes
		ids, err := l.nodes.Alloc(q.j.Nodes)
		if err != nil {
			return nil, fmt.Errorf("sim: %v", err)
		}
		slot := len(l.running)
		l.running = append(l.running, running{
			j:            q.j,
			start:        now,
			predictedEnd: now + est,
			nodeIDs:      ids,
		})
		l.events.push(finishEvent{at: now + rt, slot: slot, id: q.j.ID})
		out = append(out, Started{Job: q.j, Start: now, PredictedEnd: now + est, NodeIDs: ids})
	}
	// Compact the queue, preserving arrival order.
	kept := l.queue[:0]
	for qi := range l.queue {
		if !seen[qi] {
			kept = append(kept, l.queue[qi])
		}
	}
	l.queue = kept
	if l.obs != nil {
		for _, s := range out {
			l.obs.ObserveStart(now, s)
		}
	}
	return out, nil
}
