package sim

import (
	"testing"

	"schedsearch/internal/job"
)

// recordingEstimator logs the order of Estimate/Observe calls.
type recordingEstimator struct {
	calls     []string
	estimates map[int]job.Duration
}

func (r *recordingEstimator) Estimate(j job.Job) job.Duration {
	r.calls = append(r.calls, "E")
	if e, ok := r.estimates[j.ID]; ok {
		return e
	}
	return j.Request
}

func (r *recordingEstimator) Observe(j job.Job) {
	r.calls = append(r.calls, "O")
}

func TestEstimatorOverridesModes(t *testing.T) {
	j1 := job.Job{ID: 1, Submit: 0, Nodes: 1, Runtime: 100, Request: 500}
	est := &recordingEstimator{estimates: map[int]job.Duration{1: 321}}
	var seen job.Duration
	pol := scripted{name: "probe", decide: func(sn *Snapshot) []int {
		seen = sn.Queue[0].Estimate
		return []int{0}
	}}
	// Estimator wins even when UseRequested is set.
	in := Input{Capacity: 4, Jobs: []job.Job{j1}, UseRequested: true, Estimator: est}
	if _, err := Run(in, pol); err != nil {
		t.Fatal(err)
	}
	if seen != 321 {
		t.Errorf("estimate = %d, want the estimator's 321", seen)
	}
}

func TestEstimatorObservesBeforeSameInstantArrival(t *testing.T) {
	// Job 1 finishes at t=100; job 2 arrives at t=100. The estimator
	// must see Observe(job1) before Estimate(job2).
	jobs := []job.Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 100, Request: 100},
		{ID: 2, Submit: 100, Nodes: 4, Runtime: 50, Request: 50},
	}
	est := &recordingEstimator{}
	if _, err := Run(Input{Capacity: 4, Jobs: jobs, Estimator: est}, greedyFCFS()); err != nil {
		t.Fatal(err)
	}
	// Expected call sequence: E(1) at t=0, O(1) then E(2) at t=100,
	// O(2) at t=150.
	want := []string{"E", "O", "E", "O"}
	if len(est.calls) != len(want) {
		t.Fatalf("calls = %v, want %v", est.calls, want)
	}
	for i := range want {
		if est.calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", est.calls, want)
		}
	}
}

// underEstimator predicts far less than the actual runtime; the engine
// must still run jobs to their actual end and never corrupt state.
type underEstimator struct{}

func (underEstimator) Estimate(j job.Job) job.Duration { return 1 }
func (underEstimator) Observe(job.Job)                 {}

func TestUnderpredictionIsSafe(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 1000, Request: 1000},
		{ID: 2, Submit: 10, Nodes: 4, Runtime: 100, Request: 100},
		{ID: 3, Submit: 20, Nodes: 2, Runtime: 100, Request: 100},
	}
	res, err := Run(Input{Capacity: 4, Jobs: jobs, Estimator: underEstimator{}}, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Record{}
	for _, r := range res.Records {
		byID[r.Job.ID] = r
	}
	if byID[1].End != 1000 {
		t.Errorf("job 1 end = %d, want its actual 1000", byID[1].End)
	}
	if byID[2].Start < 1000 {
		t.Errorf("job 2 started at %d while job 1 held the machine", byID[2].Start)
	}
}
