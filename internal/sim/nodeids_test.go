package sim

import (
	"testing"

	"schedsearch/internal/job"
)

// TestNodeAssignmentsDisjoint verifies that the node IDs the engine
// reports never overlap between concurrently running jobs.
func TestNodeAssignmentsDisjoint(t *testing.T) {
	var jobs []job.Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, job.Job{
			ID: i + 1, Submit: job.Time(i * 7),
			Nodes:   1 + (i*3)%4,
			Runtime: job.Duration(20 + (i*13)%100),
			Request: job.Duration(20 + (i*13)%100),
		})
	}
	res, err := Run(Input{Capacity: 6, Jobs: jobs}, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if len(r.NodeIDs) != r.Job.Nodes {
			t.Fatalf("job %d got %d node IDs, wants %d nodes", r.Job.ID, len(r.NodeIDs), r.Job.Nodes)
		}
	}
	// Pairwise overlap check for concurrent records.
	for i, a := range res.Records {
		for _, b := range res.Records[i+1:] {
			if a.Start >= b.End || b.Start >= a.End {
				continue // not concurrent
			}
			inA := map[int]bool{}
			for _, id := range a.NodeIDs {
				inA[id] = true
			}
			for _, id := range b.NodeIDs {
				if inA[id] {
					t.Fatalf("jobs %d and %d share node %d while overlapping in time",
						a.Job.ID, b.Job.ID, id)
				}
			}
		}
	}
}

// TestNodeAssignmentsWithinCapacity verifies IDs stay in range.
func TestNodeAssignmentsWithinCapacity(t *testing.T) {
	jobs := []job.Job{mkJob(1, 0, 4, 10), mkJob(2, 0, 2, 10)}
	res, err := Run(Input{Capacity: 6, Jobs: jobs}, greedyFCFS())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		for _, id := range r.NodeIDs {
			if id < 0 || id >= 6 {
				t.Errorf("job %d on node %d, capacity 6", r.Job.ID, id)
			}
		}
	}
}
