package federation

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func TestPartitionCapacity(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{128, 4, []int{32, 32, 32, 32}},
		{128, 1, []int{128}},
		{130, 4, []int{33, 33, 32, 32}},
		{7, 3, []int{3, 2, 2}},
		{3, 3, []int{1, 1, 1}},
	}
	for _, tc := range cases {
		caps, err := PartitionCapacity(tc.total, tc.n)
		if err != nil {
			t.Fatalf("PartitionCapacity(%d,%d): %v", tc.total, tc.n, err)
		}
		if fmt.Sprint(caps) != fmt.Sprint(tc.want) {
			t.Errorf("PartitionCapacity(%d,%d) = %v, want %v", tc.total, tc.n, caps, tc.want)
		}
	}
	if _, err := PartitionCapacity(2, 3); err == nil {
		t.Error("capacity < shards should fail")
	}
	if _, err := PartitionCapacity(8, 0); err == nil {
		t.Error("zero shards should fail")
	}
}

func TestParsePlacement(t *testing.T) {
	for _, name := range []string{"least-loaded", "best-fit", "hash-by-user"} {
		p, err := ParsePlacement(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("ParsePlacement(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ParsePlacement("round-robin"); err == nil {
		t.Error("unknown placement should fail")
	}
}

func TestPlacementPicks(t *testing.T) {
	cands := []Candidate{
		{Shard: 0, Load: engine.Load{Capacity: 32, FreeNodes: 2, QueuedNodeSec: 6400}},
		{Shard: 1, Load: engine.Load{Capacity: 32, FreeNodes: 20, RemainingNodeSec: 320}},
		{Shard: 2, Load: engine.Load{Capacity: 32, FreeNodes: 6, RemainingNodeSec: 640}},
	}
	j := job.Job{ID: 1, Nodes: 4, Runtime: 100, Request: 100}

	if got := (LeastLoaded{}).Pick(j, cands); got != 1 {
		t.Errorf("LeastLoaded picked %d, want 1 (lowest score)", got)
	}
	// Best fit: shards 1 and 2 can start the job now; 2 leaves the
	// smaller slack (6-4=2 vs 20-4=16).
	if got := (BestFit{}).Pick(j, cands); got != 2 {
		t.Errorf("BestFit picked %d, want 2 (tightest fit)", got)
	}
	// No shard startable: falls back to least-loaded.
	wide := job.Job{ID: 2, Nodes: 25, Runtime: 100, Request: 100}
	if got := (BestFit{}).Pick(wide, cands); got != 1 {
		t.Errorf("BestFit fallback picked %d, want 1", got)
	}
	// Hash-by-user: deterministic, and every job of one user lands on
	// the same index.
	h := HashByUser{}
	for user := 0; user < 50; user++ {
		j1 := job.Job{ID: 3, Nodes: 1, Runtime: 1, Request: 1, User: user}
		a, b := h.Pick(j1, cands), h.Pick(j1, cands)
		if a != b || a < 0 || a >= len(cands) {
			t.Fatalf("HashByUser user %d: picks %d and %d", user, a, b)
		}
	}
	// Waiting jobs disqualify a shard from "startable now".
	cands[1].Load.Waiting = 1
	if got := (BestFit{}).Pick(j, cands); got != 2 {
		t.Errorf("BestFit with backlog on 1 picked %d, want 2", got)
	}
}

// replayRouter drives a simulator input through a federation on a
// virtual clock and returns the router after the run goes idle.
func replayRouter(t *testing.T, in sim.Input, cfg Config) *Router {
	t.Helper()
	vc := engine.NewVirtualClock()
	cfg.Clock = vc
	cfg.Capacity = in.Capacity
	cfg.UseRequested = in.UseRequested
	cfg.MeasureStart = in.MeasureStart
	cfg.MeasureEnd = in.MeasureEnd
	if in.Measured != nil {
		measured := in.Measured
		cfg.Measured = func(id int) bool { return measured[id] }
	} else {
		cfg.Measured = func(int) bool { return true }
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		j := j
		vc.AfterFunc(j.Submit, func() {
			if err := r.SubmitJob(j); err != nil {
				t.Errorf("submit job %d: %v", j.ID, err)
			}
		})
	}
	vc.Run()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return r
}

// checkFederationRun applies the global oracle sweep to a finished
// federated run.
func checkFederationRun(t *testing.T, r *Router, submitted []job.Job) {
	t.Helper()
	shardRecs := make([][]sim.Record, r.NumShards())
	for i := range shardRecs {
		shardRecs[i] = r.ShardRecords(i)
	}
	if err := oracle.CheckFederation(r.cfg.Capacity, r.ShardCapacities(), submitted, shardRecs); err != nil {
		t.Fatalf("federation oracle: %v", err)
	}
}

func recordKey(r sim.Record) string {
	return fmt.Sprintf("start=%d end=%d nodes=%v measured=%v", r.Start, r.End, r.NodeIDs, r.Measured)
}

// TestOneShardMatchesEngine is the keystone differential: a 1-shard
// federation must commit a bit-identical schedule — starts, ends,
// concrete node IDs, completion order, decision count, whole summary —
// to a bare engine on every suite month. The router must be a pure
// pass-through when there is nothing to shard.
func TestOneShardMatchesEngine(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 11, JobScale: 0.025})
	newPolicy := func() sim.Policy {
		return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 64)
	}
	for _, month := range workload.MonthLabels() {
		month := month
		t.Run(month, func(t *testing.T) {
			in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: 0.9})
			if err != nil {
				t.Fatal(err)
			}

			// Bare engine replay.
			vc := engine.NewVirtualClock()
			measured := in.Measured
			e, err := engine.New(engine.Config{
				Capacity:     in.Capacity,
				Policy:       newPolicy(),
				Clock:        vc,
				MeasureStart: in.MeasureStart,
				MeasureEnd:   in.MeasureEnd,
				Measured:     func(id int) bool { return measured[id] },
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range in.Jobs {
				j := j
				vc.AfterFunc(j.Submit, func() {
					if err := e.SubmitJob(j); err != nil {
						t.Errorf("engine submit %d: %v", j.ID, err)
					}
				})
			}
			vc.Run()
			if err := e.Err(); err != nil {
				t.Fatal(err)
			}

			// 1-shard federation replay of the same input.
			r := replayRouter(t, in, Config{
				Shards: 1,
				Policy: func(int) sim.Policy { return newPolicy() },
			})

			engRecs, fedRecs := e.Records(), r.Records()
			if len(engRecs) != len(fedRecs) {
				t.Fatalf("engine completed %d jobs, federation %d", len(engRecs), len(fedRecs))
			}
			for i := range engRecs {
				if engRecs[i].Job.ID != fedRecs[i].Job.ID {
					t.Fatalf("completion order diverges at %d: engine job %d, federation job %d",
						i, engRecs[i].Job.ID, fedRecs[i].Job.ID)
				}
				if recordKey(engRecs[i]) != recordKey(fedRecs[i]) {
					t.Fatalf("job %d: engine %s, federation %s",
						engRecs[i].Job.ID, recordKey(engRecs[i]), recordKey(fedRecs[i]))
				}
			}
			em, fm := e.Metrics(), r.Metrics()
			if em.Engine.Decisions != fm.Engine.Decisions {
				t.Errorf("engine made %d decisions, federation %d", em.Engine.Decisions, fm.Engine.Decisions)
			}
			if em.Summary != fm.Summary {
				t.Errorf("summaries diverge:\nengine     %+v\nfederation %+v", em.Summary, fm.Summary)
			}
			checkFederationRun(t, r, in.Jobs)
		})
	}
}

// TestFederatedSuiteMonth runs a 4-shard federation with rebalancing
// over a suite month and checks the global invariants: job conservation
// across migrations, shard-local node IDs, whole-machine capacity.
func TestFederatedSuiteMonth(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 11, JobScale: 0.025})
	in, _, err := suite.Input("7/03", workload.SimOptions{TargetLoad: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Partitioned shards can't hold the widest jobs; drop them from the
	// input up front (the router would reject them with ErrTooWide).
	shardCap := in.Capacity / 4
	jobs := in.Jobs[:0]
	for _, j := range in.Jobs {
		if j.Nodes <= shardCap {
			jobs = append(jobs, j)
		}
	}
	in.Jobs = jobs

	for _, place := range []Placement{LeastLoaded{}, BestFit{}, HashByUser{}} {
		t.Run(place.Name(), func(t *testing.T) {
			r := replayRouter(t, in, Config{
				Shards:         4,
				Placement:      place,
				Policy:         func(int) sim.Policy { return policy.FCFSBackfill() },
				RebalanceEvery: 10 * job.Minute,
			})
			if got := len(r.Records()); got != len(in.Jobs) {
				t.Fatalf("completed %d of %d jobs", got, len(in.Jobs))
			}
			checkFederationRun(t, r, in.Jobs)
			fm := r.Federation()
			if fm.Shards != 4 || len(fm.PerShard) != 4 || len(fm.PerShardUtil) != 4 {
				t.Fatalf("federation metrics geometry: %+v", fm)
			}
			if fm.RoutingDecisions != int64(len(in.Jobs)) {
				t.Errorf("routed %d jobs, submitted %d", fm.RoutingDecisions, len(in.Jobs))
			}
			if fm.Global.Jobs.Done != len(in.Jobs) {
				t.Errorf("global metrics count %d done, want %d", fm.Global.Jobs.Done, len(in.Jobs))
			}
		})
	}
}

// TestRebalanceMigrates pins the rebalance pass down: all load is
// steered onto shard 0 (hash-by-user with a single user), and the pass
// must move queued jobs to the idle shards without losing or restarting
// any.
func TestRebalanceMigrates(t *testing.T) {
	vc := engine.NewVirtualClock()
	r, err := New(Config{
		Capacity:       64,
		Shards:         2,
		Clock:          vc,
		Placement:      HashByUser{},
		Policy:         func(int) sim.Policy { return policy.FCFSBackfill() },
		RebalanceEvery: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	var submitted []job.Job
	vc.AfterFunc(0, func() {
		// One user: every job hashes to the same shard. The first fills
		// the shard for a long time; the rest pile up in its queue.
		for i := 0; i < 12; i++ {
			rt := job.Duration(3600)
			spec := job.Job{Nodes: 16, Runtime: rt, Request: rt, User: 7}
			id, err := r.Submit(spec)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			st, ok := r.Job(id)
			if !ok {
				t.Errorf("job %d vanished after submit", id)
				return
			}
			submitted = append(submitted, st.Job)
		}
	})
	vc.Run()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	fm := r.Federation()
	if fm.Migrations == 0 {
		t.Fatal("rebalance pass never migrated a job off the overloaded shard")
	}
	if fm.RebalancePasses == 0 {
		t.Fatal("rebalance pass never ran")
	}
	if got := len(r.Records()); got != len(submitted) {
		t.Fatalf("completed %d of %d jobs", got, len(submitted))
	}
	// Migration must not have restarted anyone: monotone queue behavior
	// means total makespan shrinks versus the one-shard pile-up. With 32
	// nodes per shard and 16-node hour jobs, one shard needs 6 hours; a
	// balanced pair needs 3.
	last := r.Records()[len(r.Records())-1]
	if last.End > 4*3600 {
		t.Errorf("makespan %ds — rebalancing did not spread the backlog", last.End)
	}
	checkFederationRun(t, r, submitted)
}

// TestTooWide checks that a job no shard can hold is rejected with
// ErrTooWide and leaves no trace in the directory.
func TestTooWide(t *testing.T) {
	r, err := New(Config{
		Capacity: 128,
		Shards:   4,
		Clock:    engine.NewVirtualClock(),
		Policy:   func(int) sim.Policy { return policy.FCFSBackfill() },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Submit(job.Job{Nodes: 33, Runtime: 60, Request: 60})
	if !errors.Is(err, ErrTooWide) {
		t.Fatalf("want ErrTooWide, got %v", err)
	}
	// Whole-machine validation still screens absurd widths first.
	_, err = r.Submit(job.Job{Nodes: 129, Runtime: 60, Request: 60})
	if err == nil || errors.Is(err, ErrTooWide) {
		t.Fatalf("want capacity validation error, got %v", err)
	}
	if id, err := r.Submit(job.Job{Nodes: 32, Runtime: 60, Request: 60}); err != nil || id != 1 {
		t.Fatalf("widest fitting job: id %d, %v", id, err)
	}
}

// TestRebuildShard crashes one shard mid-run and rebuilds it from its
// journal; the rebuilt federation must finish every job and pass the
// global oracle.
func TestRebuildShard(t *testing.T) {
	vc := engine.NewVirtualClock()
	r, err := New(Config{
		Capacity:  64,
		Shards:    2,
		Clock:     vc,
		Placement: LeastLoaded{},
		Policy:    func(int) sim.Policy { return policy.FCFSBackfill() },
	})
	if err != nil {
		t.Fatal(err)
	}
	var submitted []job.Job
	submit := func(n int, rt job.Duration) {
		spec := job.Job{Nodes: n, Runtime: rt, Request: rt}
		id, err := r.Submit(spec)
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		st, _ := r.Job(id)
		submitted = append(submitted, st.Job)
	}
	vc.AfterFunc(0, func() {
		for i := 0; i < 8; i++ {
			submit(8, 1800)
		}
	})
	vc.AfterFunc(600, func() {
		for i := 0; i < 2; i++ {
			if err := r.RebuildShard(i); err != nil {
				t.Errorf("rebuild shard %d: %v", i, err)
			}
		}
		for i := 0; i < 4; i++ {
			submit(4, 900)
		}
	})
	vc.Run()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Records()); got != len(submitted) {
		t.Fatalf("completed %d of %d jobs", got, len(submitted))
	}
	checkFederationRun(t, r, submitted)
}

// TestDrainStopsAdmission drains the router and checks both the router
// and the shards refuse new work while the backlog completes.
func TestDrainStopsAdmission(t *testing.T) {
	vc := engine.NewVirtualClock()
	r, err := New(Config{
		Capacity: 32,
		Shards:   2,
		Clock:    vc,
		Policy:   func(int) sim.Policy { return policy.FCFSBackfill() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(job.Job{Nodes: 4, Runtime: 60, Request: 60}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Drain(context.Background()) }()
	for !r.Draining() {
		runtime.Gosched()
	}
	if _, err := r.Submit(job.Job{Nodes: 1, Runtime: 1, Request: 1}); !errors.Is(err, engine.ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	go vc.Run()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := len(r.Records()); got != 1 {
		t.Fatalf("drained with %d records, want 1", got)
	}
}
