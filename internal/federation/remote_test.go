package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/policy"
	"schedsearch/internal/server"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

func noSleep(time.Duration) {}

// startShardProc boots one "shard process": an engine fronted by its
// own HTTP server on a real TCP listener, dialed back through a
// RemoteShard client. Everything a federation router does to it
// crosses the wire as JSON.
func startShardProc(t *testing.T, ec engine.Config, opts RemoteShardOptions, srvOpts ...server.Option) (*engine.Engine, *RemoteShard) {
	t.Helper()
	e, err := engine.New(ec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(e, nil, srvOpts...))
	t.Cleanup(ts.Close)
	if opts.Sleep == nil {
		opts.Sleep = noSleep
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	return e, NewRemoteShard(ts.URL, opts)
}

// TestRemoteShardMatchesInProcess is the distributed keystone
// differential: a 4-shard federation whose shards are separate schedd
// HTTP processes must commit a bit-identical schedule — starts, ends,
// node IDs, completion order, decision counts, whole summary — to the
// in-process 4-shard router on every suite month. The shard processes
// share the router's virtual clock, and every HTTP call resolves
// synchronously inside the timer callback that issued it, so the
// (time, seq) timer discipline is preserved exactly while every
// submission, migration withdraw/admit, and load snapshot crosses real
// TCP and the JSON wire schema.
func TestRemoteShardMatchesInProcess(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 11, JobScale: 0.025})
	newPolicy := func() sim.Policy {
		return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 64)
	}
	const shards = 4
	for _, month := range workload.MonthLabels() {
		month := month
		t.Run(month, func(t *testing.T) {
			in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: 0.9})
			if err != nil {
				t.Fatal(err)
			}
			// Partitioned shards can't hold the widest jobs; drop them
			// from the input up front.
			shardCap := in.Capacity / shards
			jobs := in.Jobs[:0]
			for _, j := range in.Jobs {
				if j.Nodes <= shardCap {
					jobs = append(jobs, j)
				}
			}
			in.Jobs = jobs

			// In-process reference run.
			ref := replayRouter(t, in, Config{
				Shards:         shards,
				Policy:         func(int) sim.Policy { return newPolicy() },
				RebalanceEvery: 10 * job.Minute,
			})

			// Remote run: same partition, each shard its own process
			// behind HTTP.
			caps, err := PartitionCapacity(in.Capacity, shards)
			if err != nil {
				t.Fatal(err)
			}
			vc := engine.NewVirtualClock()
			measured := in.Measured
			isMeasured := func(id int) bool { return measured[id] }
			if measured == nil {
				isMeasured = func(int) bool { return true }
			}
			remotes := make([]engine.Shard, shards)
			for i := 0; i < shards; i++ {
				_, rs := startShardProc(t, engine.Config{
					Capacity:     caps[i],
					Policy:       newPolicy(),
					Clock:        vc,
					UseRequested: in.UseRequested,
					MeasureStart: in.MeasureStart,
					MeasureEnd:   in.MeasureEnd,
					Measured:     isMeasured,
				}, RemoteShardOptions{})
				remotes[i] = rs
			}
			rr, err := NewWithShards(Config{
				Clock:          vc,
				RebalanceEvery: 10 * job.Minute,
				UseRequested:   in.UseRequested,
				MeasureStart:   in.MeasureStart,
				MeasureEnd:     in.MeasureEnd,
				Measured:       isMeasured,
			}, remotes)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range in.Jobs {
				j := j
				vc.AfterFunc(j.Submit, func() {
					if err := rr.SubmitJob(j); err != nil {
						t.Errorf("remote submit job %d: %v", j.ID, err)
					}
				})
			}
			vc.Run()
			if err := rr.Err(); err != nil {
				t.Fatal(err)
			}

			refRecs, remRecs := ref.Records(), rr.Records()
			if len(refRecs) != len(remRecs) {
				t.Fatalf("in-process completed %d jobs, remote %d", len(refRecs), len(remRecs))
			}
			for i := range refRecs {
				if refRecs[i].Job.ID != remRecs[i].Job.ID {
					t.Fatalf("completion order diverges at %d: in-process job %d, remote job %d",
						i, refRecs[i].Job.ID, remRecs[i].Job.ID)
				}
				if recordKey(refRecs[i]) != recordKey(remRecs[i]) {
					t.Fatalf("job %d: in-process %s, remote %s",
						refRecs[i].Job.ID, recordKey(refRecs[i]), recordKey(remRecs[i]))
				}
			}
			refM, remM := ref.Metrics(), rr.Metrics()
			if refM.Engine.Decisions != remM.Engine.Decisions {
				t.Errorf("in-process made %d decisions, remote %d",
					refM.Engine.Decisions, remM.Engine.Decisions)
			}
			if refM.Summary != remM.Summary {
				t.Errorf("summaries diverge:\nin-process %+v\nremote     %+v", refM.Summary, remM.Summary)
			}
			refF, remF := ref.Federation(), rr.Federation()
			if refF.Migrations != remF.Migrations {
				t.Errorf("in-process migrated %d jobs, remote %d", refF.Migrations, remF.Migrations)
			}
			for _, sh := range rr.ShardHealth() {
				if !sh.Healthy {
					t.Errorf("shard %d unhealthy after clean run: %s", sh.Shard, sh.Err)
				}
			}
			checkFederationRun(t, rr, in.Jobs)
		})
	}
}

// TestWorkStealingFillsIdleShard pins the gossip steal step down: all
// load is steered onto one shard (hash-by-user, a single user), the
// rebalance pass is off, and stealing alone must spread the backlog
// onto the idle shard without losing or restarting anyone.
func TestWorkStealingFillsIdleShard(t *testing.T) {
	vc := engine.NewVirtualClock()
	r, err := New(Config{
		Capacity:     64,
		Shards:       2,
		Clock:        vc,
		Placement:    HashByUser{},
		Policy:       func(int) sim.Policy { return policy.FCFSBackfill() },
		GossipEvery:  30,
		WorkStealing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var submitted []job.Job
	vc.AfterFunc(0, func() {
		for i := 0; i < 12; i++ {
			rt := job.Duration(3600)
			id, err := r.Submit(job.Job{Nodes: 16, Runtime: rt, Request: rt, User: 7})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			st, ok := r.Job(id)
			if !ok {
				t.Errorf("job %d vanished after submit", id)
				return
			}
			submitted = append(submitted, st.Job)
		}
	})
	vc.Run()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	fm := r.Federation()
	if fm.GossipPasses == 0 {
		t.Fatal("gossip pass never ran")
	}
	if fm.Steals == 0 {
		t.Fatal("idle shard never stole from the overloaded one")
	}
	if got := len(r.Records()); got != len(submitted) {
		t.Fatalf("completed %d of %d jobs", got, len(submitted))
	}
	// One shard alone needs 6 waves of 2×16-node hour jobs; with the
	// idle shard stealing, the pile splits and the makespan shrinks.
	last := r.Records()[len(r.Records())-1]
	if last.End > 4*3600 {
		t.Errorf("makespan %ds — stealing did not spread the backlog", last.End)
	}
	checkFederationRun(t, r, submitted)
}

// dropResponses is a fault transport: matching requests are performed
// server-side but their responses are lost, so the client sees an
// uncertain transport failure whose operation actually landed — the
// nastiest wire failure a migration step can take.
type dropResponses struct {
	mu   sync.Mutex
	path string
	n    int // drop the first n matching responses
	hits int
}

func (d *dropResponses) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	drop := d.n > 0 && req.URL.Path == d.path
	if drop {
		d.n--
		d.hits++
	}
	d.mu.Unlock()
	if drop {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("fault: response to %s dropped", d.path)
	}
	return resp, nil
}

// TestWithdrawRetryIdempotent loses the acknowledgment of a migration
// withdraw whose operation landed. The client's retry must hit the
// source shard's tombstone and return the same job — exactly once: the
// job ends up on the destination, is gone from the source, and both
// journals agree after a rebuild.
func TestWithdrawRetryIdempotent(t *testing.T) {
	dir := t.TempDir()
	vc := engine.NewVirtualClock()
	newShard := func(name string, fault http.RoundTripper) (*engine.Engine, *RemoteShard, string) {
		path := filepath.Join(dir, name+".journal")
		fj, err := engine.OpenFileJournal(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		e, rs := startShardProc(t, engine.Config{
			Capacity: 32,
			Policy:   policy.FCFSBackfill(),
			Clock:    vc,
			Journal:  fj,
		}, RemoteShardOptions{Transport: fault})
		return e, rs, path
	}
	fault := &dropResponses{path: "/v1/shard/withdraw", n: 1}
	srcEng, src, srcPath := newShard("src", fault)
	dstEng, dst, dstPath := newShard("dst", nil)

	jBlock := job.Job{ID: 1, Nodes: 32, Runtime: 7200, Request: 7200}
	jMove := job.Job{ID: 2, Nodes: 8, Runtime: 600, Request: 600}
	vc.AfterFunc(0, func() {
		if err := src.SubmitJob(jBlock); err != nil {
			t.Errorf("submit blocker: %v", err)
		}
		if err := src.SubmitJob(jMove); err != nil {
			t.Errorf("submit mover: %v", err)
		}
	})
	vc.AfterFunc(60, func() {
		// First wire attempt lands but the ack is dropped; the client
		// retries and must get the tombstoned job back.
		j, err := src.Withdraw(jMove.ID)
		if err != nil {
			t.Errorf("withdraw with dropped ack: %v", err)
			return
		}
		if j.ID != jMove.ID || j.Nodes != jMove.Nodes {
			t.Errorf("withdraw returned %+v, want job %d", j, jMove.ID)
		}
		if err := dst.Admit(j); err != nil {
			t.Errorf("admit on destination: %v", err)
		}
	})
	vc.Run()
	if fault.hits != 1 {
		t.Fatalf("fault transport dropped %d responses, want 1", fault.hits)
	}
	if _, ok := srcEng.Job(jMove.ID); ok {
		t.Error("moved job still present on the source shard")
	}
	st, ok := dstEng.Job(jMove.ID)
	if !ok || st.State != engine.StateDone {
		t.Fatalf("moved job on destination: ok=%v state=%v", ok, st.State)
	}
	if st.Job.Submit != 0 {
		t.Errorf("migration reset the submit time to %d", st.Job.Submit)
	}

	// Journal truth: exactly one submit on each side, a withdraw on the
	// source, and rebuilt engines agree the job lives on dst only.
	if err := srcEng.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	if err := dstEng.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	countEvents := func(path string, id int) (submits, withdraws int) {
		t.Helper()
		_, events, err := engine.LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			switch {
			case ev.Kind == engine.EvSubmit && ev.Job.ID == id:
				submits++
			case ev.Kind == engine.EvWithdraw && ev.ID == id:
				withdraws++
			}
		}
		return
	}
	if s, w := countEvents(srcPath, jMove.ID); s != 1 || w != 1 {
		t.Errorf("source journal: %d submits, %d withdraws of job %d (want 1, 1)", s, w, jMove.ID)
	}
	if s, w := countEvents(dstPath, jMove.ID); s != 1 || w != 0 {
		t.Errorf("destination journal: %d submits, %d withdraws of job %d (want 1, 0)", s, w, jMove.ID)
	}
}

// TestAdmitRetryIdempotent loses the acknowledgment of a migration
// admit whose operation landed. The client must detect the job is
// already on the shard and report success without admitting a second
// copy; an explicit second admit must surface the duplicate.
func TestAdmitRetryIdempotent(t *testing.T) {
	vc := engine.NewVirtualClock()
	fault := &dropResponses{path: "/v1/shard/admit", n: 1}
	e, rs := startShardProc(t, engine.Config{
		Capacity: 32,
		Policy:   policy.FCFSBackfill(),
		Clock:    vc,
	}, RemoteShardOptions{Transport: fault})

	j := job.Job{ID: 9, Submit: 0, Nodes: 8, Runtime: 600, Request: 600}
	vc.AfterFunc(0, func() {
		if err := rs.Admit(j); err != nil {
			t.Errorf("admit with dropped ack: %v", err)
		}
		if q := e.Queue(); len(q) != 0 {
			// The admit triggers a decide at this instant; the job may
			// be waiting or already started, but never duplicated.
			if len(q) != 1 || q[0].Job.ID != j.ID {
				t.Errorf("queue after retried admit: %+v", q)
			}
		}
		if err := rs.Admit(j); !errors.Is(err, engine.ErrDuplicateID) {
			t.Errorf("second admit: %v, want ErrDuplicateID", err)
		}
	})
	vc.Run()
	if fault.hits != 1 {
		t.Fatalf("fault transport dropped %d responses, want 1", fault.hits)
	}
	st, ok := e.Job(j.ID)
	if !ok || st.State != engine.StateDone {
		t.Fatalf("job after run: ok=%v state=%v", ok, st.State)
	}
	if got := len(e.Records()); got != 1 {
		t.Fatalf("%d completion records, want exactly 1", got)
	}
}

// refuseDial is a fault transport simulating a dead process: every
// request fails with a dial error, the one failure class the client
// may treat as certainly-not-delivered.
type refuseDial struct{}

func (refuseDial) RoundTrip(req *http.Request) (*http.Response, error) {
	return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
}

// stubBody answers every request 200 with a fixed body — the fuzz
// harness's hostile shard.
type stubBody struct{ data []byte }

func (s stubBody) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(bytes.NewReader(s.data)),
		Header:     make(http.Header),
	}, nil
}

// FuzzRemoteShardDecode fuzzes both ends of the shard wire protocol:
// arbitrary bytes as request bodies against the server's shard
// endpoints (must answer structured JSON errors, never panic, never a
// bare 500), and the same bytes as a hostile shard's 200 response
// bodies against every RemoteShard decode path (must return errors or
// valid values, never panic).
func FuzzRemoteShardDecode(f *testing.F) {
	f.Add([]byte(`{"id":2}`))
	f.Add([]byte(`{"id":-1}`))
	f.Add([]byte(`{"job":{"id":3,"submit_s":5,"nodes":4,"runtime_s":60,"request_s":60,"user":1},"retried":true}`))
	f.Add([]byte(`{"capacity":32,"free_nodes":16,"waiting":2,"running":1,"queued_node_sec":100,"remaining_node_sec":50}`))
	f.Add([]byte(`{"records":[{"job":{"id":1},"start_s":0,"end_s":9,"measured":true}]}`))
	f.Add([]byte(`{"id":9007199254740993,"nodes":-4,"runtime_s":-1}`))
	f.Add([]byte(`[{"id":1},{"id":2}]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add(bytes.Repeat([]byte(`9`), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := engine.New(engine.Config{
			Capacity: 32,
			Policy:   policy.FCFSBackfill(),
			Clock:    engine.NewVirtualClock(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(e, nil)
		for _, path := range []string{"/v1/shard/admit", "/v1/shard/withdraw"} {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest("POST", path, bytes.NewReader(data)))
			if w.Code == http.StatusInternalServerError {
				t.Fatalf("POST %s with %q: bare 500: %s", path, data, w.Body.String())
			}
			if w.Code >= 400 {
				var er server.ErrorResponse
				if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Code == "" {
					t.Fatalf("POST %s with %q: unstructured error %d: %s", path, data, w.Code, w.Body.String())
				}
			}
		}

		// Client side: every decode surface against a hostile 200 body.
		rs := NewRemoteShard("http://shard", RemoteShardOptions{
			Transport: stubBody{data: data},
			Sleep:     noSleep,
			Retries:   -1, // single attempt: the body never changes
		})
		rs.Load()
		rs.Queue()
		rs.Machine()
		rs.Metrics()
		rs.Records()
		rs.Checkpoint()
		rs.Job(7)
		rs.LookupJob(7)
		_, _ = rs.Withdraw(7)
		_ = rs.Admit(job.Job{ID: 5, Nodes: 1, Runtime: 1, Request: 1})
		_ = rs.SubmitJob(job.Job{ID: 6, Nodes: 1, Runtime: 1, Request: 1})
	})
}

// TestRemoteShardUnreachable pins the error taxonomy down: a dead
// process yields ErrUnreachable (certainly not delivered), health
// reflects it, and the router reroutes submissions around the dark
// shard while readyz-style health reports the breakdown.
func TestRemoteShardUnreachable(t *testing.T) {
	vc := engine.NewVirtualClock()
	_, live := startShardProc(t, engine.Config{
		Capacity: 32,
		Policy:   policy.FCFSBackfill(),
		Clock:    vc,
	}, RemoteShardOptions{})
	if _, err := live.Probe(); err != nil {
		t.Fatal(err)
	}
	dead := NewRemoteShard("http://127.0.0.1:1", RemoteShardOptions{
		Transport: refuseDial{},
		Sleep:     noSleep,
	})
	if err := dead.SubmitJob(job.Job{ID: 1, Nodes: 1, Runtime: 1, Request: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dead shard submit: %v, want ErrUnreachable", err)
	}
	if dead.Healthy() == nil {
		t.Fatal("dead shard reports healthy")
	}

	// A router fronting [live, dead] must route around the dead shard.
	// The dead shard's capacity comes from a pre-warmed load cache so
	// construction succeeds, mimicking a shard that died after joining.
	dead.mu.Lock()
	dead.lastLoad = engine.Load{Capacity: 32, FreeNodes: 32}
	dead.haveLoad = true
	dead.mu.Unlock()
	r, err := NewWithShards(Config{Clock: vc}, []engine.Shard{live, dead})
	if err != nil {
		t.Fatal(err)
	}
	vc.AfterFunc(0, func() {
		for i := 0; i < 4; i++ {
			if _, err := r.Submit(job.Job{Nodes: 8, Runtime: 60, Request: 60}); err != nil {
				t.Errorf("submit with one dark shard: %v", err)
			}
		}
	})
	vc.Run()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Records()); got != 4 {
		t.Fatalf("completed %d of 4 jobs with a dark shard", got)
	}
	health := r.ShardHealth()
	if len(health) != 2 || !health[0].Healthy || health[1].Healthy {
		t.Fatalf("shard health breakdown: %+v", health)
	}
}
