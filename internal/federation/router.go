// Package federation shards one machine's node space across N
// independent scheduling engines and fronts them with a Router: jobs
// are placed onto a shard by a pluggable placement policy, a periodic
// rebalance pass migrates still-queued (never started — non-preemption
// is preserved) jobs from overloaded to underloaded shards, and the
// router aggregates state, metrics and records into one whole-machine
// view with global node IDs.
//
// Each shard runs the full scheduling policy (backfill or discrepancy
// search) over its own partition of the nodes, so a shard's decisions
// are bit-identical to a standalone engine fed the same jobs — the
// 1-shard federation differential test pins that down against the bare
// engine on every suite month. The scalability claim is that per-shard
// search cost shrinks with per-shard queue depth while shards decide
// concurrently; cmd/searchbench -federation measures it.
//
// A job wider than every shard's partition cannot run anywhere and is
// rejected with ErrTooWide: partitioning trades maximum job width for
// decision throughput.
//
// Shards need not be in-process: NewWithShards fronts pre-built
// engine.Shard values — typically RemoteShard clients driving
// out-of-process schedd shards over HTTP. The router then runs in
// degraded mode when shards go dark: submissions are rerouted around
// unreachable shards (only on failures that certainly never
// delivered), wire-uncertain migration steps are parked and
// reconciled on the next gossip or rebalance tick, and per-shard
// reachability is exported through ShardHealth for readiness probes.
package federation

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/obs"
	"schedsearch/internal/sim"
)

// ErrTooWide is wrapped by Submit/SubmitJob when a job needs more nodes
// than the widest shard's partition (test with errors.Is).
var ErrTooWide = errors.New("job wider than every shard")

// Config configures a Router and its shards.
type Config struct {
	// Capacity is the whole machine size in nodes; it is partitioned
	// near-evenly across Shards (the first Capacity%Shards shards get
	// one extra node).
	Capacity int
	// Shards is the number of engine partitions (>= 1).
	Shards int
	// Policy constructs shard i's scheduling policy. It is called once
	// per shard incarnation (again after a crash/rebuild); shards must
	// not share policy state.
	Policy func(shard int) sim.Policy
	// Placement picks the shard for each admitted job; nil means
	// LeastLoaded.
	Placement Placement
	// Clock drives every shard; nil means one shared NewRealClock(1).
	Clock engine.Clock
	// Estimator, when non-nil, constructs shard i's estimator (fresh
	// per incarnation). Per-user history is per-shard; the hash-by-user
	// placement keeps a user's jobs on one shard so the history stays
	// whole.
	Estimator func(shard int) sim.Estimator
	// UseRequested, Measured, MeasureStart and MeasureEnd are passed
	// through to every shard (see engine.Config).
	UseRequested bool
	Measured     func(id int) bool
	MeasureStart job.Time
	MeasureEnd   job.Time
	// Observer, when non-nil, constructs shard i's observer (fresh per
	// incarnation, as engine.Rebuild requires). Note that per-shard
	// oracles see migrations as withdrawals and late-stamped
	// admissions; the global verdict is oracle.CheckFederation over
	// the per-shard records.
	Observer func(shard int) sim.Observer
	// RebalanceEvery is the period of the rebalance pass on the shared
	// clock; 0 disables rebalancing. With one shard the pass never
	// runs.
	RebalanceEvery job.Duration
	// MaxMigrationsPerPass bounds one rebalance pass (default 8).
	MaxMigrationsPerPass int
	// Journal, when non-nil, constructs shard i's journal sink (fresh
	// per incarnation; on crash recovery the sink reopens the shard's
	// journal file). CompactEvery is passed through to every shard.
	Journal      func(shard int) engine.JournalSink
	CompactEvery int
	// GossipEvery is the period of the load-gossip pass on the shared
	// clock: the router polls every shard's load (which refreshes
	// remote shards' reachability and cached loads), resolves parked
	// wire-uncertain migration steps, and — with WorkStealing on —
	// lets idle shards steal queued work. 0 disables the pass.
	GossipEvery job.Duration
	// WorkStealing enables the steal step of the gossip pass: a shard
	// with free nodes and an empty queue takes the youngest fitting
	// queued job from the most loaded shard, filling holes the
	// score-driven rebalance pass is too conservative to fill.
	WorkStealing bool
	// CachedLoads makes placement probe the load cache refreshed by the
	// gossip/rebalance passes instead of issuing N live Load calls per
	// submission — for remote shards, N HTTP round trips off the submit
	// path. Opt-in because it changes the placement policy's inputs
	// (loads up to GossipEvery old): a cached-loads router places
	// differently than a live-loads one, so differential tests comparing
	// against a live-probing reference must leave it off. Until the
	// first gossip/rebalance pass fills the cache, placement probes
	// live.
	CachedLoads bool
	// Tracer, when non-nil, records route/probe/migrate/reconcile spans
	// for traced jobs, and mints a trace for any job submitted directly
	// to the router (bypassing a traced front-end server). Router spans
	// carry shard -1 ("the router's lane"); per-shard spans carry the
	// shard index. Strictly passive: attaching a tracer never changes a
	// placement or a schedule.
	Tracer *obs.Tracer
	// Flight, when non-nil, is shared by every in-process shard engine:
	// all shards record their decisions into the one ring (the ring is
	// internally locked), so the front-end serves a single federation-wide
	// decision history. Ignored for externally-owned shards
	// (NewWithShards) — a remote shard daemon owns its own recorder.
	Flight *obs.FlightRecorder
	// Logger receives structured routing events — reroutes around dark
	// shards, parked wire-uncertain steps, reconciliations — with trace
	// IDs attached when the job is traced (default: discard).
	Logger *slog.Logger
}

// Router is the federation front-end. All methods are goroutine-safe.
type Router struct {
	mu     sync.Mutex
	cfg    Config
	clock  engine.Clock
	place  Placement
	shards []engine.Shard
	caps   []int
	bases  []int

	dir      map[int]int // job ID -> shard index, for the job's lifetime
	nextID   int
	draining bool
	failure  error

	// remote marks externally-owned shards (NewWithShards): the router
	// neither constructs nor rebuilds them.
	remote bool
	// pending holds migration/submission steps whose wire outcome is
	// unknown; resolvePendingLocked retires them on gossip and
	// rebalance ticks.
	pending []pendingMig

	polName        string
	explicitWindow bool

	tracer *obs.Tracer
	log    *slog.Logger
	// loadCache is the per-shard load snapshot the gossip/rebalance
	// passes refresh; with Config.CachedLoads, placement reads it
	// instead of live-probing every shard (loadCacheOK gates the first
	// fill).
	loadCache   []engine.Load
	loadCacheOK bool

	rebArmed         bool
	gossipArmed      bool
	migrations       int64
	rebalances       int64
	routingDecisions int64
	routingNs        int64
	reroutes         int64
	steals           int64
	gossips          int64
}

// initObsLocked wires the router's observability hooks from its config
// (New and NewWithShards both call it during construction).
func (r *Router) initObsLocked() {
	r.tracer = r.cfg.Tracer
	r.log = r.cfg.Logger
	if r.log == nil {
		r.log = obs.NopLogger()
	}
}

// logJob returns the logger for a job-scoped routing event, with the
// job's trace attached when known.
func (r *Router) logJob(id int) *slog.Logger {
	l := r.log.With("job", id)
	if r.tracer != nil {
		if tc, ok := r.tracer.Lookup(id); ok {
			l = l.With(obs.TraceAttr(tc))
		}
	}
	return l
}

// healthChecker is the optional shard surface reporting reachability;
// RemoteShard has it, in-process engines (always reachable) do not.
type healthChecker interface {
	Healthy() error
}

// loadProber is the optional shard surface for construction-time
// capacity discovery with retries.
type loadProber interface {
	Probe() (engine.Load, error)
}

// jobProber distinguishes "the shard answered: no such job" from "the
// shard could not be asked" — reconciliation of an uncertain
// submission needs the difference that Job's boolean cannot carry.
type jobProber interface {
	LookupJob(id int) (engine.JobStatus, bool, error)
}

// Stages of a parked wire-uncertain step (pendingMig.stage).
const (
	// stageWithdraw: a migration withdraw's outcome is unknown — the
	// job is on the source, or tombstoned there with the ack lost.
	stageWithdraw = iota
	// stageAdmit: the job is withdrawn and held by the router; its
	// admission to pendingMig.shard has not certainly succeeded.
	stageAdmit
	// stageSubmit: a routed submission's outcome is unknown; the ID is
	// burned and the directory entry provisional until the shard
	// answers a lookup.
	stageSubmit
)

// pendingMig is one parked step: the job (held only in stageAdmit),
// the shard whose answer resolves it, and the stage.
type pendingMig struct {
	id    int
	shard int
	j     job.Job
	stage int
}

// PartitionCapacity splits total nodes near-evenly into n partitions:
// every partition gets total/n nodes and the first total%n partitions
// one extra, so the sizes sum to total and differ by at most one.
func PartitionCapacity(total, n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("federation: %d shards", n)
	}
	if total < n {
		return nil, fmt.Errorf("federation: capacity %d < %d shards", total, n)
	}
	caps := make([]int, n)
	base, extra := total/n, total%n
	for i := range caps {
		caps[i] = base
		if i < extra {
			caps[i]++
		}
	}
	return caps, nil
}

// New builds the router and its N shard engines.
func New(cfg Config) (*Router, error) {
	if cfg.Policy == nil {
		return nil, errors.New("federation: nil policy factory")
	}
	caps, err := PartitionCapacity(cfg.Capacity, cfg.Shards)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = engine.NewRealClock(1)
	}
	if cfg.Placement == nil {
		cfg.Placement = LeastLoaded{}
	}
	if cfg.MaxMigrationsPerPass == 0 {
		cfg.MaxMigrationsPerPass = 8
	}
	r := &Router{
		cfg:    cfg,
		clock:  cfg.Clock,
		place:  cfg.Placement,
		caps:   caps,
		dir:    make(map[int]int),
		nextID: 1,
	}
	r.explicitWindow = !(cfg.MeasureStart == 0 && cfg.MeasureEnd == 0)
	r.initObsLocked()
	base := 0
	for i := range caps {
		r.bases = append(r.bases, base)
		base += caps[i]
		e, err := engine.New(r.shardConfig(i))
		if err != nil {
			return nil, err
		}
		r.shards = append(r.shards, e)
	}
	r.polName = r.shards[0].Metrics().Policy
	return r, nil
}

// NewWithShards fronts pre-built shards — typically RemoteShard
// clients for out-of-process schedd shards — instead of constructing
// in-process engines. Partition capacities are discovered from the
// shards themselves, so cfg.Capacity, cfg.Shards and the per-shard
// factories (Policy, Estimator, Observer, Journal) are ignored: each
// shard process owns its policy and journal. cfg.Clock still drives
// the router's own rebalance and gossip timers.
func NewWithShards(cfg Config, shards []engine.Shard) (*Router, error) {
	if len(shards) < 1 {
		return nil, errors.New("federation: no shards")
	}
	if cfg.Clock == nil {
		cfg.Clock = engine.NewRealClock(1)
	}
	if cfg.Placement == nil {
		cfg.Placement = LeastLoaded{}
	}
	if cfg.MaxMigrationsPerPass == 0 {
		cfg.MaxMigrationsPerPass = 8
	}
	r := &Router{
		cfg:    cfg,
		clock:  cfg.Clock,
		place:  cfg.Placement,
		shards: append([]engine.Shard(nil), shards...),
		dir:    make(map[int]int),
		nextID: 1,
		remote: true,
	}
	r.explicitWindow = !(cfg.MeasureStart == 0 && cfg.MeasureEnd == 0)
	r.initObsLocked()
	total := 0
	for i, s := range r.shards {
		var ld engine.Load
		if p, ok := s.(loadProber); ok {
			var err error
			if ld, err = p.Probe(); err != nil {
				return nil, fmt.Errorf("federation: probe shard %d: %w", i, err)
			}
		} else {
			ld = s.Load()
		}
		if ld.Capacity < 1 {
			return nil, fmt.Errorf("federation: shard %d reports capacity %d", i, ld.Capacity)
		}
		r.caps = append(r.caps, ld.Capacity)
		r.bases = append(r.bases, total)
		total += ld.Capacity
	}
	r.cfg.Capacity = total
	r.cfg.Shards = len(r.shards)
	r.polName = r.shards[0].Metrics().Policy
	return r, nil
}

// shardConfig assembles shard i's engine configuration with fresh
// policy/estimator/observer instances (New and RebuildShard both use
// it — a rebuilt incarnation gets fresh instances like a restarted
// process).
func (r *Router) shardConfig(i int) engine.Config {
	ec := engine.Config{
		Capacity:     r.caps[i],
		Policy:       r.cfg.Policy(i),
		Clock:        r.clock,
		UseRequested: r.cfg.UseRequested,
		Measured:     r.cfg.Measured,
		MeasureStart: r.cfg.MeasureStart,
		MeasureEnd:   r.cfg.MeasureEnd,
		CompactEvery: r.cfg.CompactEvery,
		// In-process shards share the router's tracer (and so its job
		// registry, bound at routing), tagging decide spans per shard,
		// and the router-wide flight-recorder ring.
		Tracer:     r.cfg.Tracer,
		TraceShard: i,
		Flight:     r.cfg.Flight,
	}
	if r.cfg.Journal != nil {
		ec.Journal = r.cfg.Journal(i)
	}
	if r.cfg.Estimator != nil {
		ec.Estimator = r.cfg.Estimator(i)
	}
	if r.cfg.Observer != nil {
		if obs := r.cfg.Observer(i); obs != nil {
			ec.Observer = obs
		}
	}
	return ec
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// ShardCapacities returns a copy of the partition sizes, by shard.
func (r *Router) ShardCapacities() []int {
	return append([]int(nil), r.caps...)
}

// ShardRecords returns shard i's completion records with shard-local
// node IDs (oracle.CheckFederation consumes these).
func (r *Router) ShardRecords(i int) []sim.Record {
	r.mu.Lock()
	s := r.shards[i]
	r.mu.Unlock()
	return s.Records()
}

// Submit admits a new job: the router assigns the next free global ID,
// places the job on a shard, and the shard stamps the submit time.
func (r *Router) Submit(spec job.Job) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec.ID = r.nextID
	if err := r.routeLocked(spec); err != nil {
		return 0, err
	}
	return spec.ID, nil
}

// SubmitJob admits a job keeping its caller-assigned ID (trace replay),
// placing it on a shard.
func (r *Router) SubmitJob(j job.Job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.routeLocked(j)
}

func (r *Router) routeLocked(j job.Job) error {
	if r.failure != nil {
		return r.failure
	}
	if r.draining {
		return engine.ErrDraining
	}
	if j.ID < 1 {
		return fmt.Errorf("federation: invalid job ID %d", j.ID)
	}
	if _, dup := r.dir[j.ID]; dup {
		return fmt.Errorf("federation: %w: %d", engine.ErrDuplicateID, j.ID)
	}
	// The same normalization the engine applies at admission, so
	// validation against the whole machine sees the job the shard will.
	if j.Request < j.Runtime {
		j.Request = j.Runtime
	}
	if err := j.Validate(r.cfg.Capacity); err != nil {
		return fmt.Errorf("federation: %w", err)
	}
	var tc obs.TraceContext
	if r.tracer != nil {
		// A job arriving through a traced front-end server is already
		// bound; a job submitted directly to the router makes the router
		// its front door, so the trace roots here.
		var bound bool
		if tc, bound = r.tracer.Lookup(j.ID); !bound {
			tc = r.tracer.Mint()
			r.tracer.Bind(j.ID, tc)
			r.tracer.Record("submit", tc, j.ID, -1, r.tracer.Now(), 0)
		}
	}
	t0 := time.Now()
	cands := r.candidatesLocked(j)
	if len(cands) == 0 {
		widest := 0
		for _, c := range r.caps {
			if c > widest {
				widest = c
			}
		}
		return fmt.Errorf("federation: %w: job %d needs %d nodes, widest shard has %d",
			ErrTooWide, j.ID, j.Nodes, widest)
	}
	pick := cands[r.place.Pick(j, cands)].Shard
	routeDur := time.Since(t0)
	r.routingNs += routeDur.Nanoseconds()
	r.routingDecisions++
	if r.tracer != nil {
		r.tracer.Record("route", tc, j.ID, pick, r.tracer.Now().Add(-routeDur), routeDur)
	}
	err := r.shards[pick].SubmitJob(j)
	// Degraded mode: an unreachable shard certainly never saw the job,
	// so it is safe to route around it. Uncertain failures are the
	// opposite — the job MAY be admitted there, so rerouting could
	// double-admit; the ID is burned, the directory entry parked, and
	// the gossip tick resolves it by asking the shard once it answers.
	for errors.Is(err, ErrUnreachable) && len(cands) > 1 {
		rest := make([]Candidate, 0, len(cands)-1)
		for _, c := range cands {
			if c.Shard != pick {
				rest = append(rest, c)
			}
		}
		cands = rest
		from := pick
		pick = cands[r.place.Pick(j, cands)].Shard
		r.reroutes++
		r.logJob(j.ID).Warn("rerouting around unreachable shard", "from", from, "to", pick)
		err = r.shards[pick].SubmitJob(j)
	}
	if err != nil {
		if errors.Is(err, ErrUncertain) {
			r.dir[j.ID] = pick
			if j.ID >= r.nextID {
				r.nextID = j.ID + 1
			}
			r.pending = append(r.pending, pendingMig{id: j.ID, shard: pick, stage: stageSubmit})
			r.logJob(j.ID).Warn("parked wire-uncertain submission", "shard", pick)
			r.armRebalanceLocked()
			r.armGossipLocked()
		}
		return err
	}
	r.dir[j.ID] = pick
	if j.ID >= r.nextID {
		r.nextID = j.ID + 1
	}
	r.armRebalanceLocked()
	r.armGossipLocked()
	return nil
}

// candidatesLocked lists the shards whose partition can hold the job at
// all, with their current loads. Unreachable shards are filtered out —
// unless every capacity-eligible shard is dark, in which case all of
// them are offered anyway (a submit attempt is also a probe, and
// failing towards ErrUnreachable beats a spurious ErrTooWide: the
// distinction between "no shard fits" and "the fitting shards are
// down" is kept intact).
func (r *Router) candidatesLocked(j job.Job) []Candidate {
	cands := make([]Candidate, 0, len(r.shards))
	var sick []Candidate
	cached := r.cfg.CachedLoads && r.loadCacheOK
	for i, s := range r.shards {
		if j.Nodes > r.caps[i] {
			continue
		}
		var ld engine.Load
		if cached {
			ld = r.loadCache[i]
		} else {
			var p0 time.Time
			if r.tracer != nil {
				p0 = r.tracer.Now()
			}
			ld = s.Load()
			if r.tracer != nil {
				if tc, ok := r.tracer.Lookup(j.ID); ok {
					r.tracer.Record("probe", tc, j.ID, i, p0, r.tracer.Now().Sub(p0))
				}
			}
		}
		c := Candidate{Shard: i, Load: ld}
		if !r.healthyLocked(i) {
			sick = append(sick, c)
			continue
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return sick
	}
	return cands
}

// updateLoadCacheLocked refreshes the placement load cache from a
// pass's freshly polled loads (a no-op unless CachedLoads is on).
func (r *Router) updateLoadCacheLocked(loads []engine.Load) {
	if !r.cfg.CachedLoads {
		return
	}
	if len(r.loadCache) != len(loads) {
		r.loadCache = make([]engine.Load, len(loads))
	}
	copy(r.loadCache, loads)
	r.loadCacheOK = true
}

// healthyLocked reports shard i's reachability; in-process shards are
// always reachable.
func (r *Router) healthyLocked(i int) bool {
	if hc, ok := r.shards[i].(healthChecker); ok {
		return hc.Healthy() == nil
	}
	return true
}

// armRebalanceLocked keeps at most one rebalance timer outstanding. The
// timer re-arms itself only while jobs are outstanding, so a
// virtual-clock replay terminates; the next submission re-arms it.
func (r *Router) armRebalanceLocked() {
	if r.cfg.RebalanceEvery <= 0 || len(r.shards) < 2 || r.rebArmed || r.draining {
		return
	}
	r.rebArmed = true
	r.clock.AfterFunc(r.cfg.RebalanceEvery, r.onRebalance)
}

func (r *Router) onRebalance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rebArmed = false
	r.resolvePendingLocked()
	loads := make([]engine.Load, len(r.shards))
	outstanding := 0
	for i, s := range r.shards {
		loads[i] = s.Load()
		outstanding += loads[i].Waiting + loads[i].Running
	}
	r.updateLoadCacheLocked(loads)
	if !r.draining {
		r.rebalances++
		for n := 0; n < r.cfg.MaxMigrationsPerPass; n++ {
			if !r.migrateOneLocked(loads) {
				break
			}
		}
	}
	if outstanding > 0 || len(r.pending) > 0 {
		r.armRebalanceLocked()
	}
}

// armGossipLocked keeps at most one gossip timer outstanding, with the
// same only-while-outstanding re-arm discipline as the rebalance timer
// so virtual-clock replays terminate.
func (r *Router) armGossipLocked() {
	if r.cfg.GossipEvery <= 0 || r.gossipArmed || r.draining {
		return
	}
	r.gossipArmed = true
	r.clock.AfterFunc(r.cfg.GossipEvery, r.onGossip)
}

// onGossip is the periodic load-gossip pass: poll every shard's load —
// for remote shards that refreshes reachability and the cached
// last-known load degraded routing falls back on — resolve parked
// wire-uncertain steps, and optionally steal work onto idle shards.
func (r *Router) onGossip() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gossipArmed = false
	r.gossips++
	r.resolvePendingLocked()
	loads := make([]engine.Load, len(r.shards))
	outstanding := 0
	for i, s := range r.shards {
		loads[i] = s.Load()
		outstanding += loads[i].Waiting + loads[i].Running
	}
	r.updateLoadCacheLocked(loads)
	if r.cfg.WorkStealing && !r.draining {
		for n := 0; n < r.cfg.MaxMigrationsPerPass; n++ {
			if !r.stealOneLocked(loads) {
				break
			}
		}
	}
	if outstanding > 0 || len(r.pending) > 0 {
		r.armGossipLocked()
	}
}

// stealOneLocked lets the emptiest idle shard (free nodes, nothing
// queued) take the youngest fitting queued job from the most loaded
// shard. Where the rebalance pass equalizes load scores, stealing
// targets outright idleness: a hole big enough to start the job now.
// Reports whether a job moved.
func (r *Router) stealOneLocked(loads []engine.Load) bool {
	thief := -1
	for i, ld := range loads {
		if ld.Waiting == 0 && ld.FreeNodes > 0 && r.healthyLocked(i) {
			if thief == -1 || ld.FreeNodes > loads[thief].FreeNodes {
				thief = i
			}
		}
	}
	if thief == -1 {
		return false
	}
	victim := -1
	for i, ld := range loads {
		if i == thief || ld.Waiting == 0 || !r.healthyLocked(i) {
			continue
		}
		if victim == -1 || ld.Score() > loads[victim].Score() {
			victim = i
		}
	}
	if victim == -1 {
		return false
	}
	queue := r.shards[victim].Queue()
	for k := len(queue) - 1; k >= 0; k-- {
		st := queue[k]
		// Steal only what can start immediately on the thief's hole;
		// anything else is the rebalance pass's business.
		if st.Job.Nodes > loads[thief].FreeNodes {
			continue
		}
		if !r.moveLocked(st.Job.ID, victim, thief) {
			return false
		}
		r.steals++
		est := st.Estimate
		if est < 1 {
			est = st.Job.Request
		}
		if est < 1 {
			est = 1
		}
		d := int64(st.Job.Nodes) * est
		loads[victim].Waiting--
		loads[victim].QueuedNodeSec -= d
		loads[thief].Waiting++
		loads[thief].QueuedNodeSec += d
		return true
	}
	return false
}

// moveLocked withdraws job id from src and admits it on dst, parking
// any wire-uncertain step for later reconciliation. Reports whether
// the job landed on dst; on false the job is back on src, parked
// pending, or (certainly) still running on src.
func (r *Router) moveLocked(id, src, dst int) bool {
	var t0 time.Time
	if r.tracer != nil {
		t0 = r.tracer.Now()
	}
	j, err := r.shards[src].Withdraw(id)
	if err != nil {
		if errors.Is(err, ErrUncertain) {
			// The withdraw may have committed with the ack lost; the
			// source's tombstone will answer the reconciliation retry.
			r.pending = append(r.pending, pendingMig{id: id, shard: src, stage: stageWithdraw})
			r.logJob(id).Warn("parked wire-uncertain withdraw", "shard", src)
		}
		// ErrUnreachable: certainly still queued on src. ErrNotQueued:
		// started in the meantime. Either way, nothing moved.
		return false
	}
	if err := r.shards[dst].Admit(j); err != nil {
		if errors.Is(err, ErrUncertain) {
			// May be admitted on dst — re-admitting to src could
			// double-admit. Hold the job and let reconciliation finish
			// the admit once dst answers.
			r.dir[id] = dst
			r.pending = append(r.pending, pendingMig{id: id, shard: dst, j: j, stage: stageAdmit})
			r.logJob(id).Warn("parked wire-uncertain admit", "shard", dst)
			return false
		}
		// Certainly not on dst (unreachable, or a definitive
		// rejection): the job must not be lost — put it back.
		if err2 := r.shards[src].Admit(j); err2 != nil {
			if errors.Is(err2, ErrUncertain) || errors.Is(err2, ErrUnreachable) {
				r.pending = append(r.pending, pendingMig{id: id, shard: src, j: j, stage: stageAdmit})
				return false
			}
			r.failLocked(fmt.Errorf("federation: job %d lost in migration %d->%d: %v; re-admit: %v",
				id, src, dst, err, err2))
		}
		return false
	}
	r.dir[id] = dst
	if r.tracer != nil {
		if tc, ok := r.tracer.Lookup(id); ok {
			r.tracer.Record("migrate", tc, id, dst, t0, r.tracer.Now().Sub(t0))
		}
	}
	return true
}

// resolvePendingLocked retries every parked wire-uncertain step once;
// steps whose shard is still dark stay parked for the next tick.
func (r *Router) resolvePendingLocked() {
	if len(r.pending) == 0 {
		return
	}
	var still []pendingMig
	for _, p := range r.pending {
		var t0 time.Time
		if r.tracer != nil {
			t0 = r.tracer.Now()
		}
		kept := len(still)
		switch p.stage {
		case stageWithdraw:
			j, err := r.shards[p.shard].Withdraw(p.id)
			if err == nil {
				// Committed — originally (tombstone) or just now. The
				// migration itself is stale; put the job back where it
				// came from.
				if aerr := r.shards[p.shard].Admit(j); aerr != nil {
					if errors.Is(aerr, ErrUncertain) || errors.Is(aerr, ErrUnreachable) {
						still = append(still, pendingMig{id: p.id, shard: p.shard, j: j, stage: stageAdmit})
						continue
					}
					r.failLocked(fmt.Errorf("federation: job %d lost reconciling withdraw on shard %d: %v",
						p.id, p.shard, aerr))
				}
				continue
			}
			if errors.Is(err, engine.ErrNotQueued) {
				// Never withdrawn — the job started (or finished) on
				// the source. Resolved.
				continue
			}
			still = append(still, p)
		case stageAdmit:
			err := r.shards[p.shard].Admit(p.j)
			if err == nil || errors.Is(err, engine.ErrDuplicateID) {
				// Landed now, or had landed all along.
				r.dir[p.id] = p.shard
				continue
			}
			still = append(still, p)
		case stageSubmit:
			if pr, ok := r.shards[p.shard].(jobProber); ok {
				_, present, err := pr.LookupJob(p.id)
				if err != nil {
					still = append(still, p)
					continue
				}
				if present {
					r.dir[p.id] = p.shard
				} else {
					// Certainly never admitted; free the directory
					// entry (the ID stays burned).
					delete(r.dir, p.id)
				}
				continue
			}
			if _, present := r.shards[p.shard].Job(p.id); !present {
				delete(r.dir, p.id)
			}
		}
		if len(still) == kept {
			// The step left the parked set — resolved one way or the
			// other (the fail path sets r.failure, which routes report).
			if r.tracer != nil {
				if tc, ok := r.tracer.Lookup(p.id); ok {
					r.tracer.Record("reconcile", tc, p.id, p.shard, t0, r.tracer.Now().Sub(t0))
				}
			}
			r.logJob(p.id).Info("reconciled parked step", "shard", p.shard, "stage", p.stage)
		}
	}
	r.pending = still
}

// migrateOneLocked moves one still-queued job from the most to the
// least loaded shard if — and only if — the move strictly reduces the
// pair's maximum load score, which rules out oscillation. Candidates
// are taken from the back of the source queue (the youngest arrivals),
// so the migration disturbs the source shard's arrival-order queue as
// little as possible. Reports whether a job moved.
func (r *Router) migrateOneLocked(loads []engine.Load) bool {
	src, dst := -1, -1
	for i := range loads {
		// Dark shards neither give up nor receive work: their loads are
		// stale caches and a migration leg against them can only park.
		if !r.healthyLocked(i) {
			continue
		}
		if src == -1 || loads[i].Score() > loads[src].Score() {
			src = i
		}
		if dst == -1 || loads[i].Score() < loads[dst].Score() {
			dst = i
		}
	}
	if src == -1 || src == dst || loads[src].Score() <= loads[dst].Score() {
		return false
	}
	queue := r.shards[src].Queue()
	for k := len(queue) - 1; k >= 0; k-- {
		st := queue[k]
		if st.Job.Nodes > r.caps[dst] {
			continue
		}
		est := st.Estimate
		if est < 1 {
			est = st.Job.Request
		}
		if est < 1 {
			est = 1
		}
		d := int64(st.Job.Nodes) * est
		// The move must leave the destination strictly below the
		// source's old score, or it just trades places.
		if loads[dst].Score()+float64(d)/float64(loads[dst].Capacity) >= loads[src].Score() {
			continue
		}
		if !r.moveLocked(st.Job.ID, src, dst) {
			// Started between Queue() and Withdraw (real clock): try an
			// earlier arrival. Any wire trouble: stop the pass — the
			// loads are suspect now.
			if r.healthyLocked(src) && r.healthyLocked(dst) && len(r.pending) == 0 {
				continue
			}
			return false
		}
		r.migrations++
		loads[src].Waiting--
		loads[src].QueuedNodeSec -= d
		loads[dst].Waiting++
		loads[dst].QueuedNodeSec += d
		return true
	}
	return false
}

func (r *Router) failLocked(err error) {
	if r.failure == nil {
		r.failure = err
	}
}

// Job returns the job's current status, with node IDs mapped to the
// global node space.
func (r *Router) Job(id int) (engine.JobStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	si, ok := r.dir[id]
	if !ok {
		return engine.JobStatus{}, false
	}
	st, ok := r.shards[si].Job(id)
	if !ok {
		return engine.JobStatus{}, false
	}
	for k := range st.NodeIDs {
		st.NodeIDs[k] += r.bases[si]
	}
	return st, true
}

// JobShard returns the shard currently (or finally) responsible for the
// job.
func (r *Router) JobShard(id int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	si, ok := r.dir[id]
	return si, ok
}

// Queue returns every waiting job across the shards, in global arrival
// order (submit time, then ID).
func (r *Router) Queue() []engine.JobStatus {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	var out []engine.JobStatus
	for _, s := range shards {
		out = append(out, s.Queue()...)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Job.Submit != out[k].Job.Submit {
			return out[i].Job.Submit < out[k].Job.Submit
		}
		return out[i].Job.ID < out[k].Job.ID
	})
	return out
}

// Machine returns the whole-machine occupancy snapshot: total capacity
// and free nodes, and the running set merged across shards in (start,
// ID) order.
func (r *Router) Machine() engine.Machine {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	m := engine.Machine{Now: r.clock.Now(), Capacity: r.cfg.Capacity}
	for _, s := range shards {
		sm := s.Machine()
		m.FreeNodes += sm.FreeNodes
		m.Running = append(m.Running, sm.Running...)
	}
	sort.Slice(m.Running, func(i, k int) bool {
		if m.Running[i].Start != m.Running[k].Start {
			return m.Running[i].Start < m.Running[k].Start
		}
		return m.Running[i].ID < m.Running[k].ID
	})
	return m
}

// Records returns the federation's completion records merged into
// global (end time, job ID) order, with node IDs mapped to the global
// node space — the same shape a standalone engine of the whole machine
// emits.
func (r *Router) Records() []sim.Record {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	bases := append([]int(nil), r.bases...)
	r.mu.Unlock()
	var merged []sim.Record
	for i, s := range shards {
		for _, rec := range s.Records() {
			if len(rec.NodeIDs) > 0 {
				ids := make([]int, len(rec.NodeIDs))
				for k, n := range rec.NodeIDs {
					ids[k] = n + bases[i]
				}
				rec.NodeIDs = ids
			}
			merged = append(merged, rec)
		}
	}
	sort.Slice(merged, func(i, k int) bool {
		if merged[i].End != merged[k].End {
			return merged[i].End < merged[k].End
		}
		return merged[i].Job.ID < merged[k].Job.ID
	})
	return merged
}

// Metrics returns the whole-machine running report in the ordinary
// engine.Metrics schema: the summary is computed over the merged global
// records, counters are aggregated across shards. A federated
// GET /v1/metrics is therefore directly comparable with a standalone
// engine's.
func (r *Router) Metrics() engine.Metrics {
	per := r.shardMetrics()
	now := r.clock.Now()
	measureEnd := now
	if r.explicitWindow {
		measureEnd = r.cfg.MeasureEnd
	}
	records := r.Records()
	res := &sim.Result{
		Policy:       r.polName,
		Records:      records,
		Capacity:     r.cfg.Capacity,
		MeasureStart: r.cfg.MeasureStart,
		MeasureEnd:   measureEnd,
	}
	m := engine.Metrics{
		Policy:   r.polName,
		NowS:     now,
		Capacity: r.cfg.Capacity,
	}
	var wallMs, busyMs, decideMsSum float64
	for _, pm := range per {
		res.Decisions += int(pm.Engine.Decisions)
		res.AvgQueueLen += pm.Summary.AvgQueueLen
		m.Jobs.Waiting += pm.Jobs.Waiting
		m.Jobs.Running += pm.Jobs.Running
		m.Jobs.Done += pm.Jobs.Done
		m.Draining = m.Draining || pm.Draining
		c := &m.Engine
		c.Decisions += pm.Engine.Decisions
		c.PolicyPanics += pm.Engine.PolicyPanics
		c.SearchNodes += pm.Engine.SearchNodes
		c.SearchLeaves += pm.Engine.SearchLeaves
		c.BudgetHits += pm.Engine.BudgetHits
		wallMs += pm.Engine.SearchWallMs
		busyMs += pm.Engine.SearchWallMs * pm.Engine.SearchSpeedup
		decideMsSum += pm.Engine.AvgDecideMs * float64(pm.Engine.Decisions)
		if pm.Engine.MaxDecideMs > m.Engine.MaxDecideMs {
			m.Engine.MaxDecideMs = pm.Engine.MaxDecideMs
		}
		if pm.Error != "" && m.Error == "" {
			m.Error = pm.Error
		}
	}
	m.Engine.SearchWallMs = wallMs
	if wallMs > 0 {
		m.Engine.SearchSpeedup = busyMs / wallMs
	}
	if m.Engine.Decisions > 0 {
		m.Engine.AvgDecideMs = decideMsSum / float64(m.Engine.Decisions)
	}
	m.Summary = metrics.Summarize(res)
	r.mu.Lock()
	if r.failure != nil && m.Error == "" {
		m.Error = r.failure.Error()
	}
	m.Draining = m.Draining || r.draining
	r.mu.Unlock()
	return m
}

// Federation returns the sharded detail report: per-shard metrics and
// partition geometry plus the router's placement/rebalance counters.
func (r *Router) Federation() engine.FederationMetrics {
	per := r.shardMetrics()
	r.mu.Lock()
	caps := append([]int(nil), r.caps...)
	bases := append([]int(nil), r.bases...)
	fm := engine.AggregateShards(per, caps, bases)
	fm.Placement = r.place.Name()
	fm.Migrations = r.migrations
	fm.RebalancePasses = r.rebalances
	fm.RoutingDecisions = r.routingDecisions
	fm.RoutingNs = r.routingNs
	fm.Reroutes = r.reroutes
	fm.Steals = r.steals
	fm.GossipPasses = r.gossips
	r.mu.Unlock()
	fm.Global = r.Metrics()
	return fm
}

func (r *Router) shardMetrics() []engine.Metrics {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	per := make([]engine.Metrics, len(shards))
	for i, s := range shards {
		per[i] = s.Metrics()
	}
	return per
}

// RebuildShard simulates a crash of shard i: the shard's committed
// journal is checkpointed, a fresh engine (fresh policy, estimator and
// observer instances, same clock) is rebuilt from it via
// engine.Rebuild, and the router swaps it in. The other shards keep
// scheduling throughout; the abandoned incarnation's timers may still
// fire but mutate only the discarded engine.
func (r *Router) RebuildShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("federation: rebuild shard %d of %d", i, len(r.shards))
	}
	if r.remote {
		return errors.New("federation: remote shards rebuild from their own journals; restart the shard process instead")
	}
	cp := r.shards[i].Checkpoint()
	ne, err := engine.Rebuild(r.shardConfig(i), cp)
	if err != nil {
		return err
	}
	r.shards[i] = ne
	return nil
}

// SyncJournal forces group-buffered journal writes on every shard to
// stable storage, so a federated backend satisfies ingest.Syncer: the
// ingest committer makes a whole accepted batch group durable across
// all shards with one call. Shards without a journal sink are no-ops.
func (r *Router) SyncJournal() error {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	var first error
	for _, sh := range shards {
		if s, ok := sh.(interface{ SyncJournal() error }); ok {
			if err := s.SyncJournal(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Drain stops admitting jobs on the router and every shard, then blocks
// until all shards have emptied (or ctx is cancelled). Rebalancing
// stops with admission — a drain must not shuffle the remaining
// backlog.
func (r *Router) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	errs := make(chan error, len(shards))
	for _, s := range shards {
		s := s
		go func() { errs <- s.Drain(ctx) }()
	}
	var first error
	for range shards {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Draining reports whether Drain has been requested.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Err returns the first fatal error: a lost-job migration failure or
// any shard engine's fatal.
func (r *Router) Err() error {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	failure := r.failure
	r.mu.Unlock()
	if failure != nil {
		return failure
	}
	for _, s := range shards {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ShardHealth reports per-shard reachability for readiness probes: a
// federated /v1/readyz answers 503 with this breakdown while any shard
// is dark. In-process shards are unhealthy only on a fatal engine
// error; remote shards additionally on wire unreachability. A shard
// mid journal-rebuild holds the router lock, so probes block until the
// rebuilt shard is swapped in rather than reporting it ready early.
func (r *Router) ShardHealth() []engine.ShardHealth {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	out := make([]engine.ShardHealth, len(shards))
	for i, s := range shards {
		out[i] = engine.ShardHealth{Shard: i, Healthy: true}
		var err error
		if hc, ok := s.(healthChecker); ok {
			err = hc.Healthy()
		} else {
			err = s.Err()
		}
		if err != nil {
			out[i].Healthy = false
			out[i].Err = err.Error()
		}
	}
	return out
}

// PendingReconciliations reports how many wire-uncertain steps are
// parked awaiting a shard's answer (tests drain on zero).
func (r *Router) PendingReconciliations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Now returns the shared clock's current time.
func (r *Router) Now() job.Time { return r.clock.Now() }
