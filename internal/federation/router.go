// Package federation shards one machine's node space across N
// independent scheduling engines and fronts them with a Router: jobs
// are placed onto a shard by a pluggable placement policy, a periodic
// rebalance pass migrates still-queued (never started — non-preemption
// is preserved) jobs from overloaded to underloaded shards, and the
// router aggregates state, metrics and records into one whole-machine
// view with global node IDs.
//
// Each shard runs the full scheduling policy (backfill or discrepancy
// search) over its own partition of the nodes, so a shard's decisions
// are bit-identical to a standalone engine fed the same jobs — the
// 1-shard federation differential test pins that down against the bare
// engine on every suite month. The scalability claim is that per-shard
// search cost shrinks with per-shard queue depth while shards decide
// concurrently; cmd/searchbench -federation measures it.
//
// A job wider than every shard's partition cannot run anywhere and is
// rejected with ErrTooWide: partitioning trades maximum job width for
// decision throughput.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/metrics"
	"schedsearch/internal/sim"
)

// ErrTooWide is wrapped by Submit/SubmitJob when a job needs more nodes
// than the widest shard's partition (test with errors.Is).
var ErrTooWide = errors.New("job wider than every shard")

// Config configures a Router and its shards.
type Config struct {
	// Capacity is the whole machine size in nodes; it is partitioned
	// near-evenly across Shards (the first Capacity%Shards shards get
	// one extra node).
	Capacity int
	// Shards is the number of engine partitions (>= 1).
	Shards int
	// Policy constructs shard i's scheduling policy. It is called once
	// per shard incarnation (again after a crash/rebuild); shards must
	// not share policy state.
	Policy func(shard int) sim.Policy
	// Placement picks the shard for each admitted job; nil means
	// LeastLoaded.
	Placement Placement
	// Clock drives every shard; nil means one shared NewRealClock(1).
	Clock engine.Clock
	// Estimator, when non-nil, constructs shard i's estimator (fresh
	// per incarnation). Per-user history is per-shard; the hash-by-user
	// placement keeps a user's jobs on one shard so the history stays
	// whole.
	Estimator func(shard int) sim.Estimator
	// UseRequested, Measured, MeasureStart and MeasureEnd are passed
	// through to every shard (see engine.Config).
	UseRequested bool
	Measured     func(id int) bool
	MeasureStart job.Time
	MeasureEnd   job.Time
	// Observer, when non-nil, constructs shard i's observer (fresh per
	// incarnation, as engine.Rebuild requires). Note that per-shard
	// oracles see migrations as withdrawals and late-stamped
	// admissions; the global verdict is oracle.CheckFederation over
	// the per-shard records.
	Observer func(shard int) sim.Observer
	// RebalanceEvery is the period of the rebalance pass on the shared
	// clock; 0 disables rebalancing. With one shard the pass never
	// runs.
	RebalanceEvery job.Duration
	// MaxMigrationsPerPass bounds one rebalance pass (default 8).
	MaxMigrationsPerPass int
	// Journal, when non-nil, constructs shard i's journal sink (fresh
	// per incarnation; on crash recovery the sink reopens the shard's
	// journal file). CompactEvery is passed through to every shard.
	Journal      func(shard int) engine.JournalSink
	CompactEvery int
}

// Router is the federation front-end. All methods are goroutine-safe.
type Router struct {
	mu     sync.Mutex
	cfg    Config
	clock  engine.Clock
	place  Placement
	shards []engine.Shard
	caps   []int
	bases  []int

	dir      map[int]int // job ID -> shard index, for the job's lifetime
	nextID   int
	draining bool
	failure  error

	polName        string
	explicitWindow bool

	rebArmed         bool
	migrations       int64
	rebalances       int64
	routingDecisions int64
	routingNs        int64
}

// PartitionCapacity splits total nodes near-evenly into n partitions:
// every partition gets total/n nodes and the first total%n partitions
// one extra, so the sizes sum to total and differ by at most one.
func PartitionCapacity(total, n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("federation: %d shards", n)
	}
	if total < n {
		return nil, fmt.Errorf("federation: capacity %d < %d shards", total, n)
	}
	caps := make([]int, n)
	base, extra := total/n, total%n
	for i := range caps {
		caps[i] = base
		if i < extra {
			caps[i]++
		}
	}
	return caps, nil
}

// New builds the router and its N shard engines.
func New(cfg Config) (*Router, error) {
	if cfg.Policy == nil {
		return nil, errors.New("federation: nil policy factory")
	}
	caps, err := PartitionCapacity(cfg.Capacity, cfg.Shards)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = engine.NewRealClock(1)
	}
	if cfg.Placement == nil {
		cfg.Placement = LeastLoaded{}
	}
	if cfg.MaxMigrationsPerPass == 0 {
		cfg.MaxMigrationsPerPass = 8
	}
	r := &Router{
		cfg:    cfg,
		clock:  cfg.Clock,
		place:  cfg.Placement,
		caps:   caps,
		dir:    make(map[int]int),
		nextID: 1,
	}
	r.explicitWindow = !(cfg.MeasureStart == 0 && cfg.MeasureEnd == 0)
	base := 0
	for i := range caps {
		r.bases = append(r.bases, base)
		base += caps[i]
		e, err := engine.New(r.shardConfig(i))
		if err != nil {
			return nil, err
		}
		r.shards = append(r.shards, e)
	}
	r.polName = r.shards[0].Metrics().Policy
	return r, nil
}

// shardConfig assembles shard i's engine configuration with fresh
// policy/estimator/observer instances (New and RebuildShard both use
// it — a rebuilt incarnation gets fresh instances like a restarted
// process).
func (r *Router) shardConfig(i int) engine.Config {
	ec := engine.Config{
		Capacity:     r.caps[i],
		Policy:       r.cfg.Policy(i),
		Clock:        r.clock,
		UseRequested: r.cfg.UseRequested,
		Measured:     r.cfg.Measured,
		MeasureStart: r.cfg.MeasureStart,
		MeasureEnd:   r.cfg.MeasureEnd,
		CompactEvery: r.cfg.CompactEvery,
	}
	if r.cfg.Journal != nil {
		ec.Journal = r.cfg.Journal(i)
	}
	if r.cfg.Estimator != nil {
		ec.Estimator = r.cfg.Estimator(i)
	}
	if r.cfg.Observer != nil {
		if obs := r.cfg.Observer(i); obs != nil {
			ec.Observer = obs
		}
	}
	return ec
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// ShardCapacities returns a copy of the partition sizes, by shard.
func (r *Router) ShardCapacities() []int {
	return append([]int(nil), r.caps...)
}

// ShardRecords returns shard i's completion records with shard-local
// node IDs (oracle.CheckFederation consumes these).
func (r *Router) ShardRecords(i int) []sim.Record {
	r.mu.Lock()
	s := r.shards[i]
	r.mu.Unlock()
	return s.Records()
}

// Submit admits a new job: the router assigns the next free global ID,
// places the job on a shard, and the shard stamps the submit time.
func (r *Router) Submit(spec job.Job) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec.ID = r.nextID
	if err := r.routeLocked(spec); err != nil {
		return 0, err
	}
	return spec.ID, nil
}

// SubmitJob admits a job keeping its caller-assigned ID (trace replay),
// placing it on a shard.
func (r *Router) SubmitJob(j job.Job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.routeLocked(j)
}

func (r *Router) routeLocked(j job.Job) error {
	if r.failure != nil {
		return r.failure
	}
	if r.draining {
		return engine.ErrDraining
	}
	if j.ID < 1 {
		return fmt.Errorf("federation: invalid job ID %d", j.ID)
	}
	if _, dup := r.dir[j.ID]; dup {
		return fmt.Errorf("federation: %w: %d", engine.ErrDuplicateID, j.ID)
	}
	// The same normalization the engine applies at admission, so
	// validation against the whole machine sees the job the shard will.
	if j.Request < j.Runtime {
		j.Request = j.Runtime
	}
	if err := j.Validate(r.cfg.Capacity); err != nil {
		return fmt.Errorf("federation: %w", err)
	}
	t0 := time.Now()
	cands := r.candidatesLocked(j)
	if len(cands) == 0 {
		widest := 0
		for _, c := range r.caps {
			if c > widest {
				widest = c
			}
		}
		return fmt.Errorf("federation: %w: job %d needs %d nodes, widest shard has %d",
			ErrTooWide, j.ID, j.Nodes, widest)
	}
	pick := cands[r.place.Pick(j, cands)].Shard
	r.routingNs += time.Since(t0).Nanoseconds()
	r.routingDecisions++
	if err := r.shards[pick].SubmitJob(j); err != nil {
		return err
	}
	r.dir[j.ID] = pick
	if j.ID >= r.nextID {
		r.nextID = j.ID + 1
	}
	r.armRebalanceLocked()
	return nil
}

// candidatesLocked lists the shards whose partition can hold the job at
// all, with their current loads.
func (r *Router) candidatesLocked(j job.Job) []Candidate {
	cands := make([]Candidate, 0, len(r.shards))
	for i, s := range r.shards {
		if j.Nodes > r.caps[i] {
			continue
		}
		cands = append(cands, Candidate{Shard: i, Load: s.Load()})
	}
	return cands
}

// armRebalanceLocked keeps at most one rebalance timer outstanding. The
// timer re-arms itself only while jobs are outstanding, so a
// virtual-clock replay terminates; the next submission re-arms it.
func (r *Router) armRebalanceLocked() {
	if r.cfg.RebalanceEvery <= 0 || len(r.shards) < 2 || r.rebArmed || r.draining {
		return
	}
	r.rebArmed = true
	r.clock.AfterFunc(r.cfg.RebalanceEvery, r.onRebalance)
}

func (r *Router) onRebalance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rebArmed = false
	loads := make([]engine.Load, len(r.shards))
	outstanding := 0
	for i, s := range r.shards {
		loads[i] = s.Load()
		outstanding += loads[i].Waiting + loads[i].Running
	}
	if !r.draining {
		r.rebalances++
		for n := 0; n < r.cfg.MaxMigrationsPerPass; n++ {
			if !r.migrateOneLocked(loads) {
				break
			}
		}
	}
	if outstanding > 0 {
		r.armRebalanceLocked()
	}
}

// migrateOneLocked moves one still-queued job from the most to the
// least loaded shard if — and only if — the move strictly reduces the
// pair's maximum load score, which rules out oscillation. Candidates
// are taken from the back of the source queue (the youngest arrivals),
// so the migration disturbs the source shard's arrival-order queue as
// little as possible. Reports whether a job moved.
func (r *Router) migrateOneLocked(loads []engine.Load) bool {
	src, dst := 0, 0
	for i := 1; i < len(loads); i++ {
		if loads[i].Score() > loads[src].Score() {
			src = i
		}
		if loads[i].Score() < loads[dst].Score() {
			dst = i
		}
	}
	if src == dst || loads[src].Score() <= loads[dst].Score() {
		return false
	}
	queue := r.shards[src].Queue()
	for k := len(queue) - 1; k >= 0; k-- {
		st := queue[k]
		if st.Job.Nodes > r.caps[dst] {
			continue
		}
		est := st.Estimate
		if est < 1 {
			est = st.Job.Request
		}
		if est < 1 {
			est = 1
		}
		d := int64(st.Job.Nodes) * est
		// The move must leave the destination strictly below the
		// source's old score, or it just trades places.
		if loads[dst].Score()+float64(d)/float64(loads[dst].Capacity) >= loads[src].Score() {
			continue
		}
		j, err := r.shards[src].Withdraw(st.Job.ID)
		if err != nil {
			// The job started between Queue() and Withdraw (real
			// clock); try an earlier arrival.
			continue
		}
		if err := r.shards[dst].Admit(j); err != nil {
			// Undo: the job must not be lost. Re-admission to its own
			// shard cannot fail outside a fatal engine error.
			if err2 := r.shards[src].Admit(j); err2 != nil {
				r.failLocked(fmt.Errorf("federation: job %d lost in migration %d->%d: %v; re-admit: %v",
					j.ID, src, dst, err, err2))
			}
			return false
		}
		r.dir[j.ID] = dst
		r.migrations++
		loads[src].Waiting--
		loads[src].QueuedNodeSec -= d
		loads[dst].Waiting++
		loads[dst].QueuedNodeSec += d
		return true
	}
	return false
}

func (r *Router) failLocked(err error) {
	if r.failure == nil {
		r.failure = err
	}
}

// Job returns the job's current status, with node IDs mapped to the
// global node space.
func (r *Router) Job(id int) (engine.JobStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	si, ok := r.dir[id]
	if !ok {
		return engine.JobStatus{}, false
	}
	st, ok := r.shards[si].Job(id)
	if !ok {
		return engine.JobStatus{}, false
	}
	for k := range st.NodeIDs {
		st.NodeIDs[k] += r.bases[si]
	}
	return st, true
}

// JobShard returns the shard currently (or finally) responsible for the
// job.
func (r *Router) JobShard(id int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	si, ok := r.dir[id]
	return si, ok
}

// Queue returns every waiting job across the shards, in global arrival
// order (submit time, then ID).
func (r *Router) Queue() []engine.JobStatus {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	var out []engine.JobStatus
	for _, s := range shards {
		out = append(out, s.Queue()...)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Job.Submit != out[k].Job.Submit {
			return out[i].Job.Submit < out[k].Job.Submit
		}
		return out[i].Job.ID < out[k].Job.ID
	})
	return out
}

// Machine returns the whole-machine occupancy snapshot: total capacity
// and free nodes, and the running set merged across shards in (start,
// ID) order.
func (r *Router) Machine() engine.Machine {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	m := engine.Machine{Now: r.clock.Now(), Capacity: r.cfg.Capacity}
	for _, s := range shards {
		sm := s.Machine()
		m.FreeNodes += sm.FreeNodes
		m.Running = append(m.Running, sm.Running...)
	}
	sort.Slice(m.Running, func(i, k int) bool {
		if m.Running[i].Start != m.Running[k].Start {
			return m.Running[i].Start < m.Running[k].Start
		}
		return m.Running[i].ID < m.Running[k].ID
	})
	return m
}

// Records returns the federation's completion records merged into
// global (end time, job ID) order, with node IDs mapped to the global
// node space — the same shape a standalone engine of the whole machine
// emits.
func (r *Router) Records() []sim.Record {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	bases := append([]int(nil), r.bases...)
	r.mu.Unlock()
	var merged []sim.Record
	for i, s := range shards {
		for _, rec := range s.Records() {
			if len(rec.NodeIDs) > 0 {
				ids := make([]int, len(rec.NodeIDs))
				for k, n := range rec.NodeIDs {
					ids[k] = n + bases[i]
				}
				rec.NodeIDs = ids
			}
			merged = append(merged, rec)
		}
	}
	sort.Slice(merged, func(i, k int) bool {
		if merged[i].End != merged[k].End {
			return merged[i].End < merged[k].End
		}
		return merged[i].Job.ID < merged[k].Job.ID
	})
	return merged
}

// Metrics returns the whole-machine running report in the ordinary
// engine.Metrics schema: the summary is computed over the merged global
// records, counters are aggregated across shards. A federated
// GET /v1/metrics is therefore directly comparable with a standalone
// engine's.
func (r *Router) Metrics() engine.Metrics {
	per := r.shardMetrics()
	now := r.clock.Now()
	measureEnd := now
	if r.explicitWindow {
		measureEnd = r.cfg.MeasureEnd
	}
	records := r.Records()
	res := &sim.Result{
		Policy:       r.polName,
		Records:      records,
		Capacity:     r.cfg.Capacity,
		MeasureStart: r.cfg.MeasureStart,
		MeasureEnd:   measureEnd,
	}
	m := engine.Metrics{
		Policy:   r.polName,
		NowS:     now,
		Capacity: r.cfg.Capacity,
	}
	var wallMs, busyMs, decideMsSum float64
	for _, pm := range per {
		res.Decisions += int(pm.Engine.Decisions)
		res.AvgQueueLen += pm.Summary.AvgQueueLen
		m.Jobs.Waiting += pm.Jobs.Waiting
		m.Jobs.Running += pm.Jobs.Running
		m.Jobs.Done += pm.Jobs.Done
		m.Draining = m.Draining || pm.Draining
		c := &m.Engine
		c.Decisions += pm.Engine.Decisions
		c.PolicyPanics += pm.Engine.PolicyPanics
		c.SearchNodes += pm.Engine.SearchNodes
		c.SearchLeaves += pm.Engine.SearchLeaves
		c.BudgetHits += pm.Engine.BudgetHits
		wallMs += pm.Engine.SearchWallMs
		busyMs += pm.Engine.SearchWallMs * pm.Engine.SearchSpeedup
		decideMsSum += pm.Engine.AvgDecideMs * float64(pm.Engine.Decisions)
		if pm.Engine.MaxDecideMs > m.Engine.MaxDecideMs {
			m.Engine.MaxDecideMs = pm.Engine.MaxDecideMs
		}
		if pm.Error != "" && m.Error == "" {
			m.Error = pm.Error
		}
	}
	m.Engine.SearchWallMs = wallMs
	if wallMs > 0 {
		m.Engine.SearchSpeedup = busyMs / wallMs
	}
	if m.Engine.Decisions > 0 {
		m.Engine.AvgDecideMs = decideMsSum / float64(m.Engine.Decisions)
	}
	m.Summary = metrics.Summarize(res)
	r.mu.Lock()
	if r.failure != nil && m.Error == "" {
		m.Error = r.failure.Error()
	}
	m.Draining = m.Draining || r.draining
	r.mu.Unlock()
	return m
}

// Federation returns the sharded detail report: per-shard metrics and
// partition geometry plus the router's placement/rebalance counters.
func (r *Router) Federation() engine.FederationMetrics {
	per := r.shardMetrics()
	r.mu.Lock()
	caps := append([]int(nil), r.caps...)
	bases := append([]int(nil), r.bases...)
	fm := engine.AggregateShards(per, caps, bases)
	fm.Placement = r.place.Name()
	fm.Migrations = r.migrations
	fm.RebalancePasses = r.rebalances
	fm.RoutingDecisions = r.routingDecisions
	fm.RoutingNs = r.routingNs
	r.mu.Unlock()
	fm.Global = r.Metrics()
	return fm
}

func (r *Router) shardMetrics() []engine.Metrics {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	per := make([]engine.Metrics, len(shards))
	for i, s := range shards {
		per[i] = s.Metrics()
	}
	return per
}

// RebuildShard simulates a crash of shard i: the shard's committed
// journal is checkpointed, a fresh engine (fresh policy, estimator and
// observer instances, same clock) is rebuilt from it via
// engine.Rebuild, and the router swaps it in. The other shards keep
// scheduling throughout; the abandoned incarnation's timers may still
// fire but mutate only the discarded engine.
func (r *Router) RebuildShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("federation: rebuild shard %d of %d", i, len(r.shards))
	}
	cp := r.shards[i].Checkpoint()
	ne, err := engine.Rebuild(r.shardConfig(i), cp)
	if err != nil {
		return err
	}
	r.shards[i] = ne
	return nil
}

// SyncJournal forces group-buffered journal writes on every shard to
// stable storage, so a federated backend satisfies ingest.Syncer: the
// ingest committer makes a whole accepted batch group durable across
// all shards with one call. Shards without a journal sink are no-ops.
func (r *Router) SyncJournal() error {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	var first error
	for _, sh := range shards {
		if s, ok := sh.(interface{ SyncJournal() error }); ok {
			if err := s.SyncJournal(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Drain stops admitting jobs on the router and every shard, then blocks
// until all shards have emptied (or ctx is cancelled). Rebalancing
// stops with admission — a drain must not shuffle the remaining
// backlog.
func (r *Router) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	shards := append([]engine.Shard(nil), r.shards...)
	r.mu.Unlock()
	errs := make(chan error, len(shards))
	for _, s := range shards {
		s := s
		go func() { errs <- s.Drain(ctx) }()
	}
	var first error
	for range shards {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Draining reports whether Drain has been requested.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Err returns the first fatal error: a lost-job migration failure or
// any shard engine's fatal.
func (r *Router) Err() error {
	r.mu.Lock()
	shards := append([]engine.Shard(nil), r.shards...)
	failure := r.failure
	r.mu.Unlock()
	if failure != nil {
		return failure
	}
	for _, s := range shards {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Now returns the shared clock's current time.
func (r *Router) Now() job.Time { return r.clock.Now() }
