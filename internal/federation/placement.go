package federation

import (
	"fmt"

	"schedsearch/internal/engine"
	"schedsearch/internal/job"
)

// Candidate pairs a shard index with its load at routing time. The
// router hands a placement policy only eligible candidates — shards
// whose capacity can hold the job at all.
type Candidate struct {
	Shard int
	Load  engine.Load
}

// Placement picks the shard a new job is routed to. Implementations
// must be deterministic functions of the job and the candidate list
// (same inputs, same pick), so a virtual-clock federation replay is
// reproducible. Pick returns an index into cands, which is never
// empty.
type Placement interface {
	Name() string
	Pick(j job.Job, cands []Candidate) int
}

// ParsePlacement resolves a placement policy by its flag name:
// "least-loaded", "best-fit" or "hash-by-user".
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "least-loaded":
		return LeastLoaded{}, nil
	case "best-fit":
		return BestFit{}, nil
	case "hash-by-user":
		return HashByUser{}, nil
	}
	return nil, fmt.Errorf("federation: unknown placement %q (want least-loaded, best-fit or hash-by-user)", name)
}

// LeastLoaded routes each job to the shard with the least outstanding
// work per capacity node (engine.Load.Score), ties to the lowest shard
// index. It equalizes backlog, which is what minimizes queueing delay
// under heterogeneous load.
type LeastLoaded struct{}

// Name implements Placement.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Placement.
func (LeastLoaded) Pick(j job.Job, cands []Candidate) int {
	best := 0
	bestScore := cands[0].Load.Score()
	for i := 1; i < len(cands); i++ {
		if s := cands[i].Load.Score(); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// BestFit routes by node demand: among shards that can start the job
// immediately (enough free nodes), pick the tightest fit — fewest free
// nodes left over — so wide holes are preserved for wide jobs. When no
// shard can start the job now, it falls back to least-loaded. Ties go
// to the lowest shard index.
type BestFit struct{}

// Name implements Placement.
func (BestFit) Name() string { return "best-fit" }

// Pick implements Placement.
func (BestFit) Pick(j job.Job, cands []Candidate) int {
	best, bestSlack := -1, 0
	for i, c := range cands {
		slack := c.Load.FreeNodes - j.Nodes
		if slack < 0 || c.Load.Waiting > 0 {
			// Not startable now: no free room, or jobs already queued
			// ahead of it.
			continue
		}
		if best < 0 || slack < bestSlack {
			best, bestSlack = i, slack
		}
	}
	if best >= 0 {
		return best
	}
	return LeastLoaded{}.Pick(j, cands)
}

// HashByUser routes every job of one user to the same shard (cache and
// estimator affinity: per-user runtime history stays on one shard), by
// hashing the user ID over the candidate list. Jobs of unknown users
// (User 0) hash together.
type HashByUser struct{}

// Name implements Placement.
func (HashByUser) Name() string { return "hash-by-user" }

// Pick implements Placement.
func (HashByUser) Pick(j job.Job, cands []Candidate) int {
	return int(splitmix64(uint64(int64(j.User))) % uint64(len(cands)))
}

// splitmix64 is the standard 64-bit finalizer; it spreads consecutive
// user IDs uniformly over shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
