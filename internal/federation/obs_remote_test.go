package federation

import (
	"bytes"
	"encoding/json"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/server"
	"schedsearch/internal/sim"
	"schedsearch/internal/workload"
)

// TestRemoteTracedObservabilityInert is the observability keystone at
// the federation layer: a 4-shard remote federation with the full
// stack on — one tracer shared by the router, every shard HTTP server,
// every RemoteShard client and every shard engine, plus a shared
// decision flight recorder — must commit a schedule bit-identical to
// the bare in-process router on every suite month. On top of the
// differential it asserts the trace is actually complete: ≥ 99% of
// jobs carry the full submit→route→admit→decide span tree across the
// process boundary, and the export parses as Chrome trace-event JSON.
func TestRemoteTracedObservabilityInert(t *testing.T) {
	suite := workload.NewSuite(workload.Config{Seed: 11, JobScale: 0.025})
	newPolicy := func() sim.Policy {
		return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 64)
	}
	const shards = 4
	for _, month := range workload.MonthLabels() {
		month := month
		t.Run(month, func(t *testing.T) {
			in, _, err := suite.Input(month, workload.SimOptions{TargetLoad: 0.9})
			if err != nil {
				t.Fatal(err)
			}
			shardCap := in.Capacity / shards
			jobs := in.Jobs[:0]
			for _, j := range in.Jobs {
				if j.Nodes <= shardCap {
					jobs = append(jobs, j)
				}
			}
			in.Jobs = jobs

			// Bare in-process reference: no tracer, no recorder.
			ref := replayRouter(t, in, Config{
				Shards:         shards,
				Policy:         func(int) sim.Policy { return newPolicy() },
				RebalanceEvery: 10 * job.Minute,
			})

			// Instrumented remote run.
			caps, err := PartitionCapacity(in.Capacity, shards)
			if err != nil {
				t.Fatal(err)
			}
			vc := engine.NewVirtualClock()
			measured := in.Measured
			isMeasured := func(id int) bool { return measured[id] }
			if measured == nil {
				isMeasured = func(int) bool { return true }
			}
			tr := obs.NewTracer(obs.TracerOptions{Seed: 3})
			flight := obs.NewFlightRecorder(256)
			remotes := make([]engine.Shard, shards)
			for i := 0; i < shards; i++ {
				_, rs := startShardProc(t, engine.Config{
					Capacity:     caps[i],
					Policy:       newPolicy(),
					Clock:        vc,
					UseRequested: in.UseRequested,
					MeasureStart: in.MeasureStart,
					MeasureEnd:   in.MeasureEnd,
					Measured:     isMeasured,
					Tracer:       tr,
					TraceShard:   i,
					Flight:       flight,
				}, RemoteShardOptions{Tracer: tr}, server.WithTracer(tr, i))
				remotes[i] = rs
			}
			rr, err := NewWithShards(Config{
				Clock:          vc,
				RebalanceEvery: 10 * job.Minute,
				UseRequested:   in.UseRequested,
				MeasureStart:   in.MeasureStart,
				MeasureEnd:     in.MeasureEnd,
				Measured:       isMeasured,
				Tracer:         tr,
			}, remotes)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range in.Jobs {
				j := j
				vc.AfterFunc(j.Submit, func() {
					if err := rr.SubmitJob(j); err != nil {
						t.Errorf("remote submit job %d: %v", j.ID, err)
					}
				})
			}
			vc.Run()
			if err := rr.Err(); err != nil {
				t.Fatal(err)
			}

			// The differential: instrumentation must not have moved a
			// single start, end, node or completion.
			refRecs, remRecs := ref.Records(), rr.Records()
			if len(refRecs) != len(remRecs) {
				t.Fatalf("bare completed %d jobs, instrumented remote %d", len(refRecs), len(remRecs))
			}
			for i := range refRecs {
				if refRecs[i].Job.ID != remRecs[i].Job.ID {
					t.Fatalf("completion order diverges at %d: bare job %d, instrumented job %d",
						i, refRecs[i].Job.ID, remRecs[i].Job.ID)
				}
				if recordKey(refRecs[i]) != recordKey(remRecs[i]) {
					t.Fatalf("job %d: bare %s, instrumented %s",
						refRecs[i].Job.ID, recordKey(refRecs[i]), recordKey(remRecs[i]))
				}
			}
			refM, remM := ref.Metrics(), rr.Metrics()
			if refM.Engine.Decisions != remM.Engine.Decisions {
				t.Errorf("bare made %d decisions, instrumented %d",
					refM.Engine.Decisions, remM.Engine.Decisions)
			}
			if refM.Summary != remM.Summary {
				t.Errorf("summaries diverge:\nbare         %+v\ninstrumented %+v",
					refM.Summary, remM.Summary)
			}
			if refF, remF := ref.Federation(), rr.Federation(); refF.Migrations != remF.Migrations {
				t.Errorf("bare migrated %d jobs, instrumented %d", refF.Migrations, remF.Migrations)
			}
			checkFederationRun(t, rr, in.Jobs)

			// The trace must span the process boundary for ≥ 99% of jobs.
			covered, total := tr.JobCoverage("submit", "route", "admit", "decide")
			if total != len(in.Jobs) {
				t.Errorf("tracer saw %d jobs, workload has %d", total, len(in.Jobs))
			}
			if total == 0 || covered*100 < total*99 {
				t.Errorf("full submit→route→admit→decide coverage %d/%d jobs (< 99%%)", covered, total)
			}
			if flight.Total() == 0 {
				t.Error("shared flight recorder captured no shard decisions")
			}
			var buf bytes.Buffer
			if err := tr.WriteTrace(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("trace export is not valid trace-event JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("trace export is empty")
			}
		})
	}
}
