package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/obs"
	"schedsearch/internal/sim"
	"schedsearch/internal/wire"
)

// ErrUnreachable marks a wire failure where the request was certainly
// never processed (connection refused, no route): the operation did
// not happen and may be safely redirected elsewhere. The router's
// degraded mode reroutes submissions on it.
var ErrUnreachable = errors.New("federation: shard unreachable")

// ErrUncertain marks a wire failure where the request MAY have been
// processed (timeout or connection loss after the request was sent,
// retries exhausted): the operation's outcome is unknown. Mutations
// failing this way must not be blindly redirected — the router parks
// uncertain migrations for reconciliation instead.
var ErrUncertain = errors.New("federation: request outcome unknown")

// RemoteShardOptions tunes a RemoteShard's wire behavior.
type RemoteShardOptions struct {
	// Timeout bounds each HTTP call (default 5s).
	Timeout time.Duration
	// Retries is how many times a failed call is retried (default 2,
	// so 3 attempts total). Structured API errors are never retried —
	// only transport failures.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt
	// (default 25ms).
	Backoff time.Duration
	// Sleep replaces time.Sleep between retries (tests and
	// virtual-clock harnesses pass a no-op).
	Sleep func(time.Duration)
	// Transport replaces the HTTP transport (fault injection).
	Transport http.RoundTripper
	// Logger receives structured retry/failure events on the wire paths
	// (default: discard). Job-scoped events carry the job's trace ID
	// when a Tracer is attached and the job is bound.
	Logger *slog.Logger
	// Tracer, when non-nil, stamps X-Schedsearch-Trace on every
	// job-scoped request whose job is bound in the tracer's registry,
	// propagating the trace across the process boundary.
	Tracer *obs.Tracer
}

// RemoteShard drives one out-of-process schedd shard through its HTTP
// API, implementing the same engine.Shard seam the router uses for
// in-process engines: submissions, withdraw/admit migration steps,
// load snapshots, records, metrics and checkpoints all cross the wire
// as JSON.
//
// Every call carries a per-call timeout and bounded retries with
// exponential backoff. Failures are classified: a dial error means the
// request was never delivered (certain, safe to reroute), anything
// after the request may have been sent is uncertain — mutations then
// resolve the uncertainty by reading the shard back (submit/admit
// verify the job landed; withdraw retries against the shard's
// idempotent tombstone) and only report ErrUncertain once retries are
// exhausted with the shard still dark.
//
// The shard's reachability is tracked across calls (Healthy); the
// router skips unhealthy shards when placing work and readyz reports
// the per-shard breakdown. All methods are goroutine-safe.
type RemoteShard struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	sleep   func(time.Duration)
	log     *slog.Logger
	tracer  *obs.Tracer

	mu sync.Mutex
	// lastErr is the transport outcome of the most recent attempt (nil
	// after any response from the shard, including API errors).
	lastErr error
	// remoteFatal is a fatal error the shard itself reported via
	// metrics (engine.Metrics.Error).
	remoteFatal error
	// Cached last-known views, served when the shard is unreachable so
	// degraded routing still has loads to compare (and a front-end can
	// report final metrics for shard daemons that exited after a
	// drain).
	lastLoad     engine.Load
	haveLoad     bool
	lastMetrics  engine.Metrics
	haveMetrics  bool
	lastNow      job.Time
	lastDraining bool
}

// NewRemoteShard returns a client for the shard at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewRemoteShard(baseURL string, opts RemoteShardOptions) *RemoteShard {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 25 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	tr := opts.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	base := strings.TrimRight(baseURL, "/")
	return &RemoteShard{
		base:    base,
		hc:      &http.Client{Transport: tr},
		timeout: opts.Timeout,
		retries: opts.Retries,
		backoff: opts.Backoff,
		sleep:   opts.Sleep,
		log:     logger.With("shard", base),
		tracer:  opts.Tracer,
	}
}

// logJob returns the logger for a job-scoped wire event, with the
// job's trace attached when known.
func (rs *RemoteShard) logJob(id int) *slog.Logger {
	l := rs.log.With("job", id)
	if rs.tracer != nil {
		if tc, ok := rs.tracer.Lookup(id); ok {
			l = l.With(obs.TraceAttr(tc))
		}
	}
	return l
}

// Addr returns the shard's base URL.
func (rs *RemoteShard) Addr() string { return rs.base }

// Healthy returns nil when the last wire interaction reached the shard
// and the shard reports no fatal error; otherwise the blocking error.
func (rs *RemoteShard) Healthy() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.lastErr != nil {
		return rs.lastErr
	}
	return rs.remoteFatal
}

// apiError is a structured error body answered by the shard: the shard
// is alive and definitively rejected the request.
type apiError struct {
	Status int
	Code   string
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("remote shard: %d %s: %s", e.Status, e.Code, e.Msg)
}

// mapAPIError translates wire error codes back into the sentinel
// errors in-process shards return, so the router's error handling is
// transport-agnostic.
func mapAPIError(ae *apiError) error {
	switch ae.Code {
	case "duplicate_id":
		return fmt.Errorf("%w: %v", engine.ErrDuplicateID, ae)
	case "draining":
		return fmt.Errorf("%w (%v)", engine.ErrDraining, ae)
	case "not_queued", "unknown_job":
		return fmt.Errorf("%w: %v", engine.ErrNotQueued, ae)
	}
	return ae
}

// isDialError reports whether the transport failure happened before
// the request could have been delivered — the one class of failure
// where "it did not happen" is certain.
func isDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// maxResponseBytes bounds response bodies the client will buffer; a
// hostile or corrupted shard cannot balloon the router's memory.
const maxResponseBytes = 64 << 20

// once performs a single HTTP attempt. A returned *apiError means the
// shard answered; any other error is a transport failure. Health is
// updated either way. jobID, when non-zero, names the job the call is
// about; a bound trace for it rides along as X-Schedsearch-Trace.
func (rs *RemoteShard) once(method, path string, reqBody, out any, jobID int) error {
	var body io.Reader
	if reqBody != nil {
		b, err := json.Marshal(reqBody)
		if err != nil {
			return fmt.Errorf("federation: encode %s: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), rs.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, rs.base+path, body)
	if err != nil {
		return err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if jobID != 0 && rs.tracer != nil {
		if h := rs.tracer.Header(jobID); h != "" {
			req.Header.Set(obs.TraceHeader, h)
		}
	}
	resp, err := rs.hc.Do(req)
	if err != nil {
		rs.markFail(err)
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		rs.markFail(err)
		return err
	}
	if len(data) > maxResponseBytes {
		err := fmt.Errorf("federation: %s %s: response exceeds %d bytes", method, path, maxResponseBytes)
		rs.markFail(err)
		return err
	}
	// Any complete response proves the shard alive, even a rejection.
	rs.markOK()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er wire.ErrorResponse
		_ = json.Unmarshal(data, &er)
		if er.Error == "" {
			er.Error = strings.TrimSpace(string(data))
		}
		return &apiError{Status: resp.StatusCode, Code: er.Code, Msg: er.Error}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			// A garbled success body: the operation's outcome on the
			// shard is fine, but the caller cannot use the answer.
			// Treated as a transport-class failure (retryable).
			return fmt.Errorf("federation: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

func (rs *RemoteShard) markOK() {
	rs.mu.Lock()
	rs.lastErr = nil
	rs.mu.Unlock()
}

func (rs *RemoteShard) markFail(err error) {
	rs.mu.Lock()
	rs.lastErr = err
	rs.mu.Unlock()
}

func (rs *RemoteShard) backoffFor(attempt int) time.Duration {
	d := rs.backoff
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	return d
}

// get performs an idempotent GET with retries; exhaustion wraps
// ErrUnreachable.
func (rs *RemoteShard) get(path string, out any) error {
	var lastErr error
	for a := 0; a <= rs.retries; a++ {
		if a > 0 {
			rs.sleep(rs.backoffFor(a))
		}
		err := rs.once(http.MethodGet, path, nil, out, 0)
		if err == nil {
			return nil
		}
		var ae *apiError
		if errors.As(err, &ae) {
			return mapAPIError(ae)
		}
		lastErr = err
	}
	rs.log.Warn("shard unreachable", "path", path, "err", lastErr)
	return fmt.Errorf("%w: GET %s: %v", ErrUnreachable, path, lastErr)
}

// postJobVerified delivers a job-admitting POST (SubmitJob or the
// migration Admit) with landed-verification: after an uncertain
// transport failure, a duplicate-ID rejection on retry — or the job
// simply being present on the shard — means the original landed and is
// success, not an error.
func (rs *RemoteShard) postJobVerified(path string, reqBody any, id int) error {
	uncertain := false
	var lastErr error
	for a := 0; a <= rs.retries; a++ {
		if a > 0 {
			rs.sleep(rs.backoffFor(a))
		}
		err := rs.once(http.MethodPost, path, reqBody, nil, id)
		if err == nil {
			return nil
		}
		var ae *apiError
		if errors.As(err, &ae) {
			if ae.Code == "duplicate_id" && uncertain {
				// A prior attempt's outcome was unknown; the duplicate
				// proves it landed. Verify the job exists to rule out a
				// genuine ID collision with someone else's job.
				if _, ok, lerr := rs.lookup(id); lerr == nil && ok {
					return nil
				}
			}
			return mapAPIError(ae)
		}
		lastErr = err
		rs.logJob(id).Debug("job delivery attempt failed", "path", path, "attempt", a+1, "err", err)
		if !isDialError(err) {
			uncertain = true
			// The request may have been processed with the response
			// lost; read the shard back before resending.
			if st, ok, lerr := rs.lookup(id); lerr == nil && ok && st.Job.ID == id {
				return nil
			}
		}
	}
	if uncertain {
		rs.logJob(id).Warn("job delivery outcome unknown after retries", "path", path, "err", lastErr)
		return fmt.Errorf("%w: POST %s job %d: %v", ErrUncertain, path, id, lastErr)
	}
	rs.logJob(id).Warn("shard unreachable for job delivery", "path", path, "err", lastErr)
	return fmt.Errorf("%w: POST %s job %d: %v", ErrUnreachable, path, id, lastErr)
}

// lookup fetches one job's status; ok=false with nil error means the
// shard answered "no such job".
func (rs *RemoteShard) lookup(id int) (engine.JobStatus, bool, error) {
	var jr wire.JobResponse
	err := rs.once(http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, &jr, id)
	if err == nil {
		return statusFromResponse(jr), true, nil
	}
	var ae *apiError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusNotFound {
			return engine.JobStatus{}, false, nil
		}
		return engine.JobStatus{}, false, mapAPIError(ae)
	}
	return engine.JobStatus{}, false, err
}

// statusFromResponse reconstructs an engine.JobStatus from the public
// job schema.
func statusFromResponse(jr wire.JobResponse) engine.JobStatus {
	st := engine.JobStatus{
		Job: job.Job{
			ID: jr.ID, Submit: jr.SubmitS, Nodes: jr.Nodes,
			Runtime: jr.RuntimeS, Request: jr.RequestS, User: jr.User,
		},
		Estimate: jr.EstimateS,
		NodeIDs:  jr.NodeIDs,
	}
	switch jr.State {
	case engine.StateRunning.String():
		st.State = engine.StateRunning
	case engine.StateDone.String():
		st.State = engine.StateDone
	default:
		st.State = engine.StateWaiting
	}
	if jr.StartS != nil {
		st.Start = *jr.StartS
	}
	if jr.EndS != nil {
		st.End = *jr.EndS
	}
	return st
}

// SubmitJob admits a job with a caller-assigned ID on the shard (the
// shard stamps the submit time from its own clock).
func (rs *RemoteShard) SubmitJob(j job.Job) error {
	return rs.postJobVerified("/v1/jobs", wire.SubmitRequest{
		ID: j.ID, Nodes: j.Nodes, RuntimeS: j.Runtime, RequestS: j.Request, User: j.User,
	}, j.ID)
}

// Admit admits a migrated job preserving its ID and submit time.
func (rs *RemoteShard) Admit(j job.Job) error {
	return rs.postJobVerified("/v1/shard/admit", wire.JobToWire(j), j.ID)
}

// Withdraw removes a still-queued job from the shard and returns it.
// The shard's withdraw tombstone makes retries idempotent: if the
// original landed and only the acknowledgment was lost, the retry
// returns the same job instead of failing.
func (rs *RemoteShard) Withdraw(id int) (job.Job, error) {
	uncertain := false
	var lastErr error
	for a := 0; a <= rs.retries; a++ {
		if a > 0 {
			rs.sleep(rs.backoffFor(a))
		}
		var resp wire.WithdrawResponse
		err := rs.once(http.MethodPost, "/v1/shard/withdraw", wire.WithdrawRequest{ID: id}, &resp, id)
		if err == nil {
			return resp.Job.ToJob(), nil
		}
		var ae *apiError
		if errors.As(err, &ae) {
			return job.Job{}, mapAPIError(ae)
		}
		lastErr = err
		rs.logJob(id).Debug("withdraw attempt failed", "attempt", a+1, "err", err)
		if !isDialError(err) {
			uncertain = true
		}
	}
	if uncertain {
		rs.logJob(id).Warn("withdraw outcome unknown after retries", "err", lastErr)
		return job.Job{}, fmt.Errorf("%w: withdraw job %d: %v", ErrUncertain, id, lastErr)
	}
	rs.logJob(id).Warn("shard unreachable for withdraw", "err", lastErr)
	return job.Job{}, fmt.Errorf("%w: withdraw job %d: %v", ErrUnreachable, id, lastErr)
}

// LookupJob distinguishes "the shard answered: no such job" (ok=false,
// nil error) from "the shard could not be asked" (non-nil error) —
// reconciling an uncertain submission needs the difference Job's
// boolean cannot carry.
func (rs *RemoteShard) LookupJob(id int) (engine.JobStatus, bool, error) {
	return rs.lookup(id)
}

// Job returns the job's status on the shard; false when the shard does
// not know the job or cannot be reached.
func (rs *RemoteShard) Job(id int) (engine.JobStatus, bool) {
	var jr wire.JobResponse
	if err := rs.get(fmt.Sprintf("/v1/jobs/%d", id), &jr); err != nil {
		return engine.JobStatus{}, false
	}
	return statusFromResponse(jr), true
}

// Queue returns the shard's waiting queue in arrival order; nil when
// unreachable.
func (rs *RemoteShard) Queue() []engine.JobStatus {
	var qr wire.QueueResponse
	if err := rs.get("/v1/queue", &qr); err != nil {
		return nil
	}
	out := make([]engine.JobStatus, len(qr.Jobs))
	for i, jr := range qr.Jobs {
		out[i] = statusFromResponse(jr)
	}
	return out
}

// Machine returns the shard's occupancy snapshot.
func (rs *RemoteShard) Machine() engine.Machine {
	var mr wire.MachineResponse
	if err := rs.get("/v1/machine", &mr); err != nil {
		return engine.Machine{}
	}
	m := engine.Machine{
		Now: mr.NowS, Capacity: mr.Capacity, FreeNodes: mr.FreeNodes,
		Running: make([]sim.RunningJob, len(mr.Running)),
	}
	for i, rj := range mr.Running {
		m.Running[i] = sim.RunningJob{
			ID: rj.ID, Nodes: rj.Nodes, User: rj.User,
			Start: rj.StartS, PredictedEnd: rj.PredictedEndS,
		}
	}
	rs.mu.Lock()
	rs.lastNow = m.Now
	rs.mu.Unlock()
	return m
}

// Load returns the shard's occupancy summary. It is called on every
// placement decision, so it makes a single live attempt (no retries);
// an unreachable shard answers with its last-known load — the gossip
// cache — while the health mark steers placement away from it.
func (rs *RemoteShard) Load() engine.Load {
	var lr wire.LoadResponse
	if err := rs.once(http.MethodGet, "/v1/shard/load", nil, &lr, 0); err != nil {
		rs.mu.Lock()
		defer rs.mu.Unlock()
		return rs.lastLoad
	}
	ld := engine.Load{
		Capacity: lr.Capacity, FreeNodes: lr.FreeNodes,
		Waiting: lr.Waiting, Running: lr.Running,
		QueuedNodeSec: lr.QueuedNodeSec, RemainingNodeSec: lr.RemainingNodeSec,
	}
	rs.mu.Lock()
	rs.lastLoad = ld
	rs.haveLoad = true
	rs.mu.Unlock()
	return ld
}

// Probe fetches the shard's load with retries, for construction-time
// capacity discovery. A shard that answered before and has since gone
// dark answers from the cache — a router can be rebuilt around a
// temporarily dead shard it had already joined.
func (rs *RemoteShard) Probe() (engine.Load, error) {
	var lr wire.LoadResponse
	if err := rs.get("/v1/shard/load", &lr); err != nil {
		rs.mu.Lock()
		defer rs.mu.Unlock()
		if rs.haveLoad {
			return rs.lastLoad, nil
		}
		return engine.Load{}, err
	}
	ld := engine.Load{
		Capacity: lr.Capacity, FreeNodes: lr.FreeNodes,
		Waiting: lr.Waiting, Running: lr.Running,
		QueuedNodeSec: lr.QueuedNodeSec, RemainingNodeSec: lr.RemainingNodeSec,
	}
	rs.mu.Lock()
	rs.lastLoad = ld
	rs.haveLoad = true
	rs.mu.Unlock()
	return ld, nil
}

// Metrics returns the shard's running report; when unreachable, the
// last-known report (a shard daemon that exited after its drain keeps
// its final numbers) or, with nothing cached, a minimal report
// carrying the wire error.
func (rs *RemoteShard) Metrics() engine.Metrics {
	var m engine.Metrics
	if err := rs.get("/v1/metrics", &m); err != nil {
		rs.mu.Lock()
		defer rs.mu.Unlock()
		if rs.haveMetrics {
			return rs.lastMetrics
		}
		return engine.Metrics{Error: err.Error()}
	}
	rs.mu.Lock()
	rs.lastMetrics = m
	rs.haveMetrics = true
	rs.lastDraining = m.Draining
	rs.lastNow = m.NowS
	if m.Error != "" && rs.remoteFatal == nil {
		rs.remoteFatal = fmt.Errorf("remote shard %s: %s", rs.base, m.Error)
	}
	rs.mu.Unlock()
	return m
}

// Records returns the shard's completion records (shard-local node
// IDs); nil when unreachable.
func (rs *RemoteShard) Records() []sim.Record {
	var resp wire.RecordsResponse
	if err := rs.get("/v1/shard/records", &resp); err != nil {
		return nil
	}
	out := make([]sim.Record, len(resp.Records))
	for i, wr := range resp.Records {
		out[i] = sim.Record{
			Job: wr.Job.ToJob(), Start: wr.StartS, End: wr.EndS,
			NodeIDs: wr.NodeIDs, Measured: wr.Measured,
		}
	}
	return out
}

// Checkpoint fetches the shard's committed history; the zero
// checkpoint when unreachable (remote shards rebuild themselves from
// their own journals — the router never rebuilds them).
func (rs *RemoteShard) Checkpoint() engine.Checkpoint {
	var cp engine.Checkpoint
	if err := rs.get("/v1/shard/checkpoint", &cp); err != nil {
		return engine.Checkpoint{}
	}
	return cp
}

// Drain asks the shard to stop admitting and waits (polling) until its
// backlog is empty or ctx is done. A shard daemon exits by itself once
// its drain completes, so a connection refused after the drain was
// acknowledged means done-and-gone, not failure — without this, the
// poll would chase a process that has already finished everything it
// was asked to.
func (rs *RemoteShard) Drain(ctx context.Context) error {
	if err := rs.once(http.MethodPost, "/v1/drain", nil, nil, 0); err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			return mapAPIError(ae)
		}
		return fmt.Errorf("%w: drain: %v", ErrUnreachable, err)
	}
	for {
		var m engine.Metrics
		err := rs.once(http.MethodGet, "/v1/metrics", nil, &m, 0)
		if err == nil {
			rs.mu.Lock()
			rs.lastMetrics = m
			rs.haveMetrics = true
			rs.lastDraining = m.Draining
			rs.mu.Unlock()
			if m.Jobs.Waiting == 0 && m.Jobs.Running == 0 {
				return nil
			}
		} else if isDialError(err) {
			// The shard accepted the drain and has since stopped
			// listening: a drained schedd only exits once its machine is
			// empty.
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		rs.sleep(20 * time.Millisecond)
	}
}

// Draining reports the shard's drain state as of the last metrics
// fetch (live when reachable).
func (rs *RemoteShard) Draining() bool {
	var m engine.Metrics
	if err := rs.once(http.MethodGet, "/v1/metrics", nil, &m, 0); err == nil {
		rs.mu.Lock()
		rs.lastDraining = m.Draining
		rs.mu.Unlock()
		return m.Draining
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.lastDraining
}

// Err returns a fatal error the shard has reported over the wire, nil
// otherwise. Reachability is Healthy's business, not Err's — a
// partitioned shard is unhealthy, not failed.
func (rs *RemoteShard) Err() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.remoteFatal
}

// Now returns the shard's clock as of the last snapshot that carried
// it (shards run their own clocks; the router keeps its own time).
func (rs *RemoteShard) Now() job.Time {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.lastNow
}

var _ engine.Shard = (*RemoteShard)(nil)
