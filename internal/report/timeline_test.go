package report

import (
	"strings"
	"testing"
)

func TestTimelineRendersBars(t *testing.T) {
	tl := NewTimeline()
	tl.Width = 20
	tl.Add(TimelineJob{Label: "j1", Submit: 0, Start: 0, End: 3600})
	tl.Add(TimelineJob{Label: "j2", Submit: 0, Start: 3600, End: 7200})
	var sb strings.Builder
	tl.Write(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// j1 runs immediately: bar starts with '#'; j2 queues first: '.'.
	if !strings.Contains(lines[1], "j1") || !strings.Contains(lines[1], "#") {
		t.Errorf("j1 row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "j2") || !strings.Contains(lines[2], ".") {
		t.Errorf("j2 row missing queued marker: %q", lines[2])
	}
	// j2's run bar must begin after j1's (halfway along the axis).
	j1Run := strings.Index(lines[1], "#")
	j2Run := strings.Index(lines[2], "#")
	if j2Run <= j1Run {
		t.Errorf("j2 run (%d) not after j1 run (%d):\n%s", j2Run, j1Run, out)
	}
}

func TestTimelineSortsBySubmit(t *testing.T) {
	tl := NewTimeline()
	tl.Add(TimelineJob{Label: "late", Submit: 100, Start: 100, End: 200})
	tl.Add(TimelineJob{Label: "early", Submit: 0, Start: 0, End: 50})
	var sb strings.Builder
	tl.Write(&sb)
	out := sb.String()
	if strings.Index(out, "early") > strings.Index(out, "late") {
		t.Errorf("rows not sorted by submit:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	NewTimeline().Write(&sb)
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("output: %q", sb.String())
	}
}

func TestTimelineDegenerateSpan(t *testing.T) {
	tl := NewTimeline()
	tl.Add(TimelineJob{Label: "j", Submit: 5, Start: 5, End: 5})
	var sb strings.Builder
	tl.Write(&sb) // must not divide by zero
	if !strings.Contains(sb.String(), "j") {
		t.Errorf("output: %q", sb.String())
	}
}

func TestAxisLegendEdges(t *testing.T) {
	s := axisLegend(0, 7200, 30, 1.0/3600, "h")
	if len(s) != 30 {
		t.Errorf("legend length %d, want 30: %q", len(s), s)
	}
	if !strings.HasPrefix(s, "0h") || !strings.Contains(s, "2h") {
		t.Errorf("legend = %q", s)
	}
}
