package report

import (
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tbl := NewTable("title", "month", "A", "B")
	tbl.AddRow("6/03", "1.0", "2.0")
	tbl.AddFloats("7/03", 2, 3.14159, 2.71828)
	var sb strings.Builder
	tbl.Write(&sb)
	out := sb.String()
	for _, want := range []string{"title", "month", "A", "B", "6/03", "3.14", "2.72"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("%d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: all data lines have equal length.
	if len(lines[1]) != len(lines[3]) || len(lines[1]) != len(lines[4]) {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tbl := NewTable("", "x", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("cell-count mismatch did not panic")
		}
	}()
	tbl.AddRow("r", "only one")
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "month", "avg,wait", `max"wait`)
	tbl.AddRow("6/03", "1.5", "2.5")
	var sb strings.Builder
	tbl.WriteCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"avg,wait"`) {
		t.Errorf("comma not escaped: %s", out)
	}
	if !strings.Contains(out, `"max""wait"`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if !strings.Contains(out, "6/03,1.5,2.5") {
		t.Errorf("row missing: %s", out)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("max wait", "h", "FCFS", "DDS")
	c.AddGroup("6/03", 50, 25)
	c.AddGroup("7/03", 100, 75)
	var sb strings.Builder
	c.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "max wait") || !strings.Contains(out, "6/03") {
		t.Errorf("chart output:\n%s", out)
	}
	// The 100-value bar must be the longest.
	longest, longestHashes := "", 0
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if n > longestHashes {
			longestHashes = n
			longest = line
		}
	}
	if !strings.Contains(longest, "100") {
		t.Errorf("longest bar is not the 100 value:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("empty", "", "only")
	c.AddGroup("g", 0)
	var sb strings.Builder
	c.Write(&sb) // must not divide by zero
	if !strings.Contains(sb.String(), "0") {
		t.Errorf("output: %s", sb.String())
	}
}

func TestBarChartGroupMismatchPanics(t *testing.T) {
	c := NewBarChart("", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("group size mismatch did not panic")
		}
	}()
	c.AddGroup("g", 1)
}
