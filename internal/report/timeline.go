package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TimelineJob is one bar of a schedule timeline.
type TimelineJob struct {
	Label  string
	Submit int64
	Start  int64
	End    int64
}

// Timeline renders jobs as ASCII bars on a shared time axis: '.' marks
// queued time (submit to start), '#' marks execution. It is the
// at-a-glance view of what a policy did to a window of jobs.
type Timeline struct {
	// Width is the number of axis columns (default 64).
	Width int
	// Unit labels the axis (e.g. "h"); Scale converts seconds to that
	// unit for the axis legend (e.g. 1.0/3600).
	Unit  string
	Scale float64
	jobs  []TimelineJob
}

// NewTimeline returns a timeline with an hours axis.
func NewTimeline() *Timeline {
	return &Timeline{Width: 64, Unit: "h", Scale: 1.0 / 3600}
}

// Add appends one job.
func (tl *Timeline) Add(j TimelineJob) { tl.jobs = append(tl.jobs, j) }

// Write renders the timeline, jobs sorted by submit time.
func (tl *Timeline) Write(w io.Writer) {
	if len(tl.jobs) == 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	width := tl.Width
	if width < 8 {
		width = 8
	}
	jobs := make([]TimelineJob, len(tl.jobs))
	copy(jobs, tl.jobs)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].Label < jobs[k].Label
	})

	lo, hi := jobs[0].Submit, jobs[0].End
	labelW := 0
	for _, j := range jobs {
		if j.Submit < lo {
			lo = j.Submit
		}
		if j.End > hi {
			hi = j.End
		}
		if len(j.Label) > labelW {
			labelW = len(j.Label)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	col := func(t int64) int {
		c := int(int64(width) * (t - lo) / span)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	fmt.Fprintf(w, "%-*s |%s|\n", labelW, "", axisLegend(lo, hi, width, tl.Scale, tl.Unit))
	for _, j := range jobs {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		cs, cr, ce := col(j.Submit), col(j.Start), col(j.End)
		for i := cs; i < cr; i++ {
			bar[i] = '.'
		}
		for i := cr; i <= ce; i++ {
			bar[i] = '#'
		}
		fmt.Fprintf(w, "%-*s |%s|\n", labelW, j.Label, string(bar))
	}
}

// axisLegend builds a width-character ruler with the start and end
// times at the edges.
func axisLegend(lo, hi int64, width int, scale float64, unit string) string {
	left := fmt.Sprintf("%.4g%s", float64(lo)*scale, unit)
	right := fmt.Sprintf("%.4g%s", float64(hi)*scale, unit)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	s := left + strings.Repeat("-", pad) + right
	if len(s) > width {
		s = s[:width]
	}
	return s
}
