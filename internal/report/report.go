// Package report renders experiment results as aligned text tables,
// ASCII bar charts (the paper's figures are per-month bar groups), and
// CSV for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned table with a row label column.
type Table struct {
	Title    string
	RowLabel string
	Columns  []string
	rows     []row
}

type row struct {
	label string
	cells []string
}

// NewTable creates a table whose data columns are named cols.
func NewTable(title, rowLabel string, cols ...string) *Table {
	return &Table{Title: title, RowLabel: rowLabel, Columns: cols}
}

// AddRow appends a row of formatted cells; counts must match Columns.
func (t *Table) AddRow(label string, cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row %q has %d cells, table has %d columns",
			label, len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, row{label: label, cells: cells})
}

// AddFloats appends a row of float cells with the given precision.
func (t *Table) AddFloats(label string, prec int, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%.*f", prec, v)
	}
	t.AddRow(label, cells...)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.RowLabel)
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.rows {
			if len(r.cells[i]) > widths[i+1] {
				widths[i+1] = len(r.cells[i])
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprintf(w, "  %-*s", widths[0], cells[0])
		for i, c := range cells[1:] {
			fmt.Fprintf(w, "  %*s", widths[i+1], c)
		}
		fmt.Fprintln(w)
	}
	header := append([]string{t.RowLabel}, t.Columns...)
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(append([]string{r.label}, r.cells...))
	}
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := append([]string{t.RowLabel}, t.Columns...)
	for i := range cells {
		cells[i] = esc(cells[i])
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.rows {
		out := make([]string, 0, len(r.cells)+1)
		out = append(out, esc(r.label))
		for _, c := range r.cells {
			out = append(out, esc(c))
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
}

// BarChart renders grouped horizontal bars: one group per category (a
// month), one bar per series (a policy) — an ASCII rendition of the
// paper's figure panels.
type BarChart struct {
	Title  string
	Unit   string
	Series []string
	groups []barGroup
}

type barGroup struct {
	label string
	vals  []float64
}

// NewBarChart creates a chart with the given series (bar) names.
func NewBarChart(title, unit string, series ...string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Series: series}
}

// AddGroup appends one category with one value per series.
func (b *BarChart) AddGroup(label string, vals ...float64) {
	if len(vals) != len(b.Series) {
		panic(fmt.Sprintf("report: group %q has %d values, chart has %d series",
			label, len(vals), len(b.Series)))
	}
	b.groups = append(b.groups, barGroup{label: label, vals: vals})
}

// Write renders the chart with bars scaled to the maximum value.
func (b *BarChart) Write(w io.Writer) {
	const width = 50
	var maxV float64
	for _, g := range b.groups {
		for _, v := range g.vals {
			if v > maxV {
				maxV = v
			}
		}
	}
	if b.Title != "" {
		fmt.Fprintf(w, "%s (max = %.4g %s)\n", b.Title, maxV, b.Unit)
	}
	nameW := 0
	for _, s := range b.Series {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	for _, g := range b.groups {
		fmt.Fprintf(w, "  %s\n", g.label)
		for i, v := range g.vals {
			n := 0
			if maxV > 0 {
				n = int(math.Round(v / maxV * width))
			}
			fmt.Fprintf(w, "    %-*s |%s %.4g\n", nameW, b.Series[i], strings.Repeat("#", n), v)
		}
	}
}
