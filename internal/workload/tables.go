// Package workload synthesizes the ten monthly NCSA IA-64 (Titan)
// workloads the paper evaluates on. The original traces are not public,
// so the generator is calibrated to the paper's published statistics:
// Table 2 (system capacity and runtime limits), Table 3 (per-month job
// count, offered load, and the job/demand mix across eight
// requested-node ranges) and Table 4 (the fraction of jobs per node
// class that are short, T <= 1h, or long, T > 5h). Every
// scheduling-relevant feature the paper discusses — including the July
// 2003 very-wide-job demand spike and the January 2004 mix of long
// one-node jobs and short medium-wide jobs — is reproduced from those
// tables. Generation is deterministic given a seed.
package workload

import "schedsearch/internal/job"

// Capacity is the node count of the modeled system (Table 2).
const Capacity = 128

// Runtime limits per Table 2.
const (
	Limit12h = 12 * job.Hour
	Limit24h = 24 * job.Hour
)

// MonthSpec is the published statistical profile of one monthly
// workload.
type MonthSpec struct {
	// Label is the paper's month tag, e.g. "6/03".
	Label string
	// Year and MonthOfYear identify the calendar month (for its length).
	Year, MonthOfYear int
	// TotalJobs is the number of jobs submitted during the month.
	TotalJobs int
	// Load is the offered load: total processor demand of the month's
	// jobs as a fraction of capacity x month duration.
	Load float64
	// JobFrac[i] is the fraction of the month's jobs whose requested
	// nodes fall in job.Table3NodeRanges[i].
	JobFrac [8]float64
	// DemandFrac[i] is the fraction of the month's processor demand
	// contributed by job.Table3NodeRanges[i].
	DemandFrac [8]float64
	// ShortFrac[c] is the fraction of ALL jobs in the month that are in
	// job.Table4NodeClasses[c] with actual runtime <= 1 hour.
	ShortFrac [5]float64
	// LongFrac[c] is the fraction of ALL jobs in the month that are in
	// job.Table4NodeClasses[c] with actual runtime > 5 hours.
	LongFrac [5]float64
	// RuntimeLimit is the job runtime limit in force (Table 2).
	RuntimeLimit job.Duration
}

// Months are the ten evaluated months, in order (Tables 3 and 4 of the
// paper, percentages converted to fractions).
var Months = []MonthSpec{
	{
		Label: "6/03", Year: 2003, MonthOfYear: 6, TotalJobs: 2191, Load: 0.82,
		JobFrac:      [8]float64{0.267, 0.113, 0.298, 0.063, 0.085, 0.105, 0.037, 0.024},
		DemandFrac:   [8]float64{0.003, 0.001, 0.013, 0.011, 0.230, 0.374, 0.217, 0.146},
		ShortFrac:    [5]float64{0.249, 0.111, 0.347, 0.062, 0.030},
		LongFrac:     [5]float64{0.003, 0.000, 0.007, 0.070, 0.017},
		RuntimeLimit: Limit12h,
	},
	{
		Label: "7/03", Year: 2003, MonthOfYear: 7, TotalJobs: 1399, Load: 0.89,
		JobFrac:      [8]float64{0.262, 0.091, 0.069, 0.184, 0.079, 0.132, 0.084, 0.085},
		DemandFrac:   [8]float64{0.005, 0.002, 0.004, 0.036, 0.067, 0.169, 0.213, 0.497},
		ShortFrac:    [5]float64{0.209, 0.077, 0.185, 0.134, 0.094},
		LongFrac:     [5]float64{0.024, 0.004, 0.030, 0.050, 0.046},
		RuntimeLimit: Limit12h,
	},
	{
		Label: "8/03", Year: 2003, MonthOfYear: 8, TotalJobs: 3220, Load: 0.79,
		JobFrac:      [8]float64{0.746, 0.054, 0.013, 0.049, 0.049, 0.046, 0.018, 0.021},
		DemandFrac:   [8]float64{0.017, 0.007, 0.001, 0.035, 0.096, 0.308, 0.179, 0.355},
		ShortFrac:    [5]float64{0.688, 0.043, 0.047, 0.046, 0.018},
		LongFrac:     [5]float64{0.025, 0.007, 0.010, 0.035, 0.014},
		RuntimeLimit: Limit12h,
	},
	{
		Label: "9/03", Year: 2003, MonthOfYear: 9, TotalJobs: 3056, Load: 0.72,
		JobFrac:      [8]float64{0.580, 0.104, 0.064, 0.058, 0.066, 0.084, 0.011, 0.029},
		DemandFrac:   [8]float64{0.031, 0.005, 0.005, 0.043, 0.088, 0.354, 0.124, 0.346},
		ShortFrac:    [5]float64{0.426, 0.098, 0.099, 0.109, 0.024},
		LongFrac:     [5]float64{0.039, 0.004, 0.013, 0.029, 0.012},
		RuntimeLimit: Limit12h,
	},
	{
		Label: "10/03", Year: 2003, MonthOfYear: 10, TotalJobs: 4149, Load: 0.71,
		JobFrac:      [8]float64{0.538, 0.205, 0.058, 0.088, 0.055, 0.036, 0.016, 0.003},
		DemandFrac:   [8]float64{0.047, 0.066, 0.016, 0.101, 0.173, 0.253, 0.241, 0.102},
		ShortFrac:    [5]float64{0.375, 0.083, 0.101, 0.049, 0.007},
		LongFrac:     [5]float64{0.041, 0.031, 0.021, 0.033, 0.008},
		RuntimeLimit: Limit12h,
	},
	{
		Label: "11/03", Year: 2003, MonthOfYear: 11, TotalJobs: 3446, Load: 0.73,
		JobFrac:      [8]float64{0.601, 0.174, 0.049, 0.053, 0.036, 0.041, 0.037, 0.008},
		DemandFrac:   [8]float64{0.080, 0.037, 0.009, 0.044, 0.116, 0.111, 0.370, 0.233},
		ShortFrac:    [5]float64{0.337, 0.125, 0.068, 0.051, 0.021},
		LongFrac:     [5]float64{0.087, 0.044, 0.014, 0.019, 0.016},
		RuntimeLimit: Limit12h,
	},
	{
		Label: "12/03", Year: 2003, MonthOfYear: 12, TotalJobs: 3517, Load: 0.74,
		JobFrac:      [8]float64{0.641, 0.125, 0.068, 0.035, 0.037, 0.059, 0.027, 0.009},
		DemandFrac:   [8]float64{0.110, 0.051, 0.076, 0.021, 0.095, 0.189, 0.397, 0.061},
		ShortFrac:    [5]float64{0.360, 0.065, 0.062, 0.070, 0.017},
		LongFrac:     [5]float64{0.140, 0.044, 0.027, 0.017, 0.010},
		RuntimeLimit: Limit24h,
	},
	{
		Label: "1/04", Year: 2004, MonthOfYear: 1, TotalJobs: 3154, Load: 0.73,
		JobFrac:      [8]float64{0.390, 0.183, 0.080, 0.046, 0.092, 0.181, 0.017, 0.012},
		DemandFrac:   [8]float64{0.120, 0.088, 0.053, 0.037, 0.173, 0.179, 0.171, 0.180},
		ShortFrac:    [5]float64{0.129, 0.060, 0.071, 0.205, 0.019},
		LongFrac:     [5]float64{0.231, 0.050, 0.024, 0.015, 0.007},
		RuntimeLimit: Limit24h,
	},
	{
		Label: "2/04", Year: 2004, MonthOfYear: 2, TotalJobs: 3969, Load: 0.74,
		JobFrac:      [8]float64{0.441, 0.318, 0.100, 0.045, 0.046, 0.025, 0.017, 0.008},
		DemandFrac:   [8]float64{0.077, 0.099, 0.117, 0.070, 0.188, 0.203, 0.081, 0.164},
		ShortFrac:    [5]float64{0.341, 0.205, 0.099, 0.046, 0.019},
		LongFrac:     [5]float64{0.068, 0.036, 0.033, 0.017, 0.003},
		RuntimeLimit: Limit24h,
	},
	{
		Label: "3/04", Year: 2004, MonthOfYear: 3, TotalJobs: 3468, Load: 0.75,
		JobFrac:      [8]float64{0.575, 0.131, 0.103, 0.076, 0.058, 0.023, 0.016, 0.017},
		DemandFrac:   [8]float64{0.028, 0.046, 0.083, 0.077, 0.376, 0.168, 0.063, 0.159},
		ShortFrac:    [5]float64{0.532, 0.101, 0.139, 0.045, 0.025},
		LongFrac:     [5]float64{0.030, 0.026, 0.032, 0.029, 0.003},
		RuntimeLimit: Limit24h,
	},
}

// SpecByLabel returns the month spec with the given label, or nil.
func SpecByLabel(label string) *MonthSpec {
	for i := range Months {
		if Months[i].Label == label {
			return &Months[i]
		}
	}
	return nil
}

// MonthLabels returns the ten month labels in evaluation order.
func MonthLabels() []string {
	labels := make([]string, len(Months))
	for i := range Months {
		labels[i] = Months[i].Label
	}
	return labels
}

// daysInMonth gives the calendar length of each evaluated month.
func daysInMonth(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	default:
		panic("workload: invalid month")
	}
}

// table4ClassOf maps a Table 3 node-range index to its Table 4 node
// class index (ranges {1},{2},{3-4,5-8},{9-16,17-32},{33-64,65-128}).
func table4ClassOf(rangeIdx int) int {
	switch rangeIdx {
	case 0:
		return 0
	case 1:
		return 1
	case 2, 3:
		return 2
	case 4, 5:
		return 3
	default:
		return 4
	}
}
