package workload

import (
	"math"
	"testing"

	"schedsearch/internal/job"
)

func TestLublinBasicShape(t *testing.T) {
	cfg := LublinConfig{Seed: 1, Days: 10, TargetLoad: 0.75}
	jobs := Lublin(cfg)
	if len(jobs) < 200 {
		t.Fatalf("only %d jobs over 10 days", len(jobs))
	}
	dur := job.Duration(10) * job.Day
	var demand float64
	serial, pow2, parallel := 0, 0, 0
	var last job.Time = -1
	for _, j := range jobs {
		if err := j.Validate(Capacity); err != nil {
			t.Fatal(err)
		}
		if j.Submit < last {
			t.Fatal("not sorted")
		}
		last = j.Submit
		if j.Submit >= dur {
			t.Fatalf("submit %d beyond trace span %d", j.Submit, dur)
		}
		demand += float64(j.Demand())
		if j.Nodes == 1 {
			serial++
		} else {
			parallel++
			if j.Nodes&(j.Nodes-1) == 0 {
				pow2++
			}
		}
		if j.User == 0 {
			t.Fatal("job without user")
		}
	}
	load := demand / (float64(Capacity) * float64(dur))
	if math.Abs(load-0.75) > 0.08 {
		t.Errorf("load %.3f, want ~0.75", load)
	}
	serialFrac := float64(serial) / float64(len(jobs))
	if serialFrac < 0.15 || serialFrac > 0.35 {
		t.Errorf("serial fraction %.2f, want ~0.24", serialFrac)
	}
	pow2Frac := float64(pow2) / float64(parallel)
	if pow2Frac < 0.6 {
		t.Errorf("power-of-two fraction %.2f among parallel jobs, want >= 0.6", pow2Frac)
	}
}

func TestLublinDeterministic(t *testing.T) {
	a := Lublin(LublinConfig{Seed: 7, Days: 3})
	b := Lublin(LublinConfig{Seed: 7, Days: 3})
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	c := Lublin(LublinConfig{Seed: 8, Days: 3})
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestLublinRuntimeSizeCorrelation(t *testing.T) {
	// Wider jobs draw from the long gamma component more often, so the
	// mean runtime of wide jobs should exceed that of narrow jobs.
	jobs := Lublin(LublinConfig{Seed: 3, Days: 30})
	var narrowSum, wideSum float64
	var narrowN, wideN int
	for _, j := range jobs {
		if j.Nodes <= 2 {
			narrowSum += float64(j.Runtime)
			narrowN++
		} else if j.Nodes >= 32 {
			wideSum += float64(j.Runtime)
			wideN++
		}
	}
	if narrowN == 0 || wideN == 0 {
		t.Fatal("missing size classes")
	}
	if wideSum/float64(wideN) <= narrowSum/float64(narrowN) {
		t.Errorf("wide jobs mean runtime %.0f not above narrow %.0f",
			wideSum/float64(wideN), narrowSum/float64(narrowN))
	}
}

func TestLublinInputRunnable(t *testing.T) {
	in := LublinInput(LublinConfig{Seed: 2, Days: 3, TargetLoad: 0.6})
	if in.Capacity != Capacity {
		t.Errorf("capacity %d", in.Capacity)
	}
	if len(in.Jobs) == 0 {
		t.Fatal("no jobs")
	}
}

func TestDayWarpIsMonotoneAndBounded(t *testing.T) {
	prev := -1.0
	for u := 0.0; u < 1.0; u += 0.01 {
		x := dayWarp(u)
		if x < 0 || x >= 1.0001 {
			t.Fatalf("dayWarp(%v) = %v out of range", u, x)
		}
		if x < prev {
			t.Fatalf("dayWarp not monotone at %v", u)
		}
		prev = x
	}
}
