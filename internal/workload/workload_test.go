package workload

import (
	"math"
	"testing"

	"schedsearch/internal/job"
)

func TestSpecTablesAreSane(t *testing.T) {
	if len(Months) != 10 {
		t.Fatalf("%d months, want 10", len(Months))
	}
	for _, spec := range Months {
		if spec.TotalJobs < 1000 || spec.TotalJobs > 5000 {
			t.Errorf("%s: implausible job count %d", spec.Label, spec.TotalJobs)
		}
		if spec.Load < 0.5 || spec.Load > 1 {
			t.Errorf("%s: implausible load %v", spec.Label, spec.Load)
		}
		// Table rows are percentages of the month: they must sum to ~1.
		if s := sumf(spec.JobFrac[:]); math.Abs(s-1) > 0.02 {
			t.Errorf("%s: job fractions sum to %v", spec.Label, s)
		}
		if s := sumf(spec.DemandFrac[:]); math.Abs(s-1) > 0.02 {
			t.Errorf("%s: demand fractions sum to %v", spec.Label, s)
		}
		// Short and long fractions per class cannot exceed the class's
		// job fraction (both are fractions of all jobs).
		for c := 0; c < 5; c++ {
			classFrac := 0.0
			for r := range spec.JobFrac {
				if table4ClassOf(r) == c {
					classFrac += spec.JobFrac[r]
				}
			}
			if spec.ShortFrac[c]+spec.LongFrac[c] > classFrac+0.03 {
				t.Errorf("%s class %d: short %.3f + long %.3f exceeds class jobs %.3f",
					spec.Label, c, spec.ShortFrac[c], spec.LongFrac[c], classFrac)
			}
		}
		// Runtime limit per Table 2.
		wantLimit := Limit12h
		if spec.Year == 2004 || spec.MonthOfYear == 12 {
			wantLimit = Limit24h
		}
		if spec.RuntimeLimit != wantLimit {
			t.Errorf("%s: runtime limit %d, want %d", spec.Label, spec.RuntimeLimit, wantLimit)
		}
	}
}

func TestSpecByLabel(t *testing.T) {
	if SpecByLabel("7/03") == nil {
		t.Error("7/03 not found")
	}
	if SpecByLabel("13/05") != nil {
		t.Error("nonexistent month found")
	}
	if got := len(MonthLabels()); got != 10 {
		t.Errorf("%d labels", got)
	}
}

func TestDaysInMonth(t *testing.T) {
	cases := []struct{ y, m, want int }{
		{2003, 6, 30}, {2003, 7, 31}, {2004, 2, 29}, {2003, 2, 28},
		{2100, 2, 28}, {2000, 2, 29},
	}
	for _, c := range cases {
		if got := daysInMonth(c.y, c.m); got != c.want {
			t.Errorf("daysInMonth(%d, %d) = %d, want %d", c.y, c.m, got, c.want)
		}
	}
}

func TestApportionSumsExactly(t *testing.T) {
	counts := apportion(100, []float64{0.333, 0.333, 0.334})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Errorf("apportion total = %d, want 100", total)
	}
	counts = apportion(7, []float64{1, 1, 1})
	total = 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Errorf("apportion total = %d, want 7", total)
	}
	if got := apportion(10, []float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Errorf("apportion with zero weights = %v", got)
	}
}

func TestGeneratedSuiteMatchesSpecs(t *testing.T) {
	suite := NewSuite(Config{Seed: 1})
	months := suite.RealMonths()
	if len(months) != 10 {
		t.Fatalf("%d real months", len(months))
	}
	for _, m := range months {
		st := m.Stats(suite.Capacity)
		if st.TotalJobs != m.Spec.TotalJobs {
			t.Errorf("%s: %d jobs generated, spec %d", m.Spec.Label, st.TotalJobs, m.Spec.TotalJobs)
		}
		if math.Abs(st.Load-m.Spec.Load) > 0.06 {
			t.Errorf("%s: load %.3f, spec %.2f", m.Spec.Label, st.Load, m.Spec.Load)
		}
		for r := range st.JobFrac {
			if d := math.Abs(st.JobFrac[r] - m.Spec.JobFrac[r]/sumf(m.Spec.JobFrac[:])); d > 0.015 {
				t.Errorf("%s range %s: job fraction off by %.3f", m.Spec.Label, job.Table3NodeRanges[r], d)
			}
			if d := math.Abs(st.DemandFrac[r] - m.Spec.DemandFrac[r]/sumf(m.Spec.DemandFrac[:])); d > 0.06 {
				t.Errorf("%s range %s: demand fraction off by %.3f", m.Spec.Label, job.Table3NodeRanges[r], d)
			}
		}
		for c := range st.ShortFrac {
			if d := math.Abs(st.ShortFrac[c] - m.Spec.ShortFrac[c]); d > 0.03 {
				t.Errorf("%s class %d: short fraction off by %.3f", m.Spec.Label, c, d)
			}
			if d := math.Abs(st.LongFrac[c] - m.Spec.LongFrac[c]); d > 0.03 {
				t.Errorf("%s class %d: long fraction off by %.3f", m.Spec.Label, c, d)
			}
		}
		// Every job respects the runtime limit and capacity.
		for _, j := range m.Jobs {
			if err := j.Validate(suite.Capacity); err != nil {
				t.Fatalf("%s: %v", m.Spec.Label, err)
			}
			if j.Runtime > m.Spec.RuntimeLimit {
				t.Fatalf("%s: job %d runtime %d beyond limit %d",
					m.Spec.Label, j.ID, j.Runtime, m.Spec.RuntimeLimit)
			}
			if j.Request > m.Spec.RuntimeLimit {
				t.Fatalf("%s: job %d request %d beyond limit %d",
					m.Spec.Label, j.ID, j.Request, m.Spec.RuntimeLimit)
			}
			if j.Submit < m.Start || j.Submit >= m.End {
				t.Fatalf("%s: job %d submitted at %d outside [%d, %d)",
					m.Spec.Label, j.ID, j.Submit, m.Start, m.End)
			}
		}
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := NewSuite(Config{Seed: 7})
	b := NewSuite(Config{Seed: 7})
	ma, _ := a.Month("9/03")
	mb, _ := b.Month("9/03")
	if len(ma.Jobs) != len(mb.Jobs) {
		t.Fatalf("different job counts: %d vs %d", len(ma.Jobs), len(mb.Jobs))
	}
	for i := range ma.Jobs {
		if ma.Jobs[i] != mb.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, ma.Jobs[i], mb.Jobs[i])
		}
	}
	c := NewSuite(Config{Seed: 8})
	mc, _ := c.Month("9/03")
	same := 0
	for i := range ma.Jobs {
		if i < len(mc.Jobs) && ma.Jobs[i] == mc.Jobs[i] {
			same++
		}
	}
	if same == len(ma.Jobs) {
		t.Error("different seeds produced identical months")
	}
}

func TestSuiteTimelineIDsAndOrder(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.1})
	var last job.Time = -1
	seen := map[int]bool{}
	for _, m := range suite.RealMonths() {
		for _, j := range m.Jobs {
			if j.Submit < last {
				t.Fatal("months out of order on the timeline")
			}
			last = j.Submit
			if seen[j.ID] {
				t.Fatalf("duplicate job ID %d", j.ID)
			}
			seen[j.ID] = true
		}
	}
}

func TestInputSlicingAndMeasurement(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.1})
	in, m, err := suite.Input("9/03", SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if in.Capacity != 128 {
		t.Errorf("capacity = %d", in.Capacity)
	}
	margin := job.Duration(float64(job.Week) * 0.1)
	measured, unmeasured := 0, 0
	for i, j := range in.Jobs {
		if i > 0 && j.Submit < in.Jobs[i-1].Submit {
			t.Fatal("slice not sorted")
		}
		if j.Submit < m.Start-margin || j.Submit >= m.End+margin {
			t.Fatalf("job %d at %d outside slice window", j.ID, j.Submit)
		}
		inMonth := j.Submit >= m.Start && j.Submit < m.End
		if in.Measured[j.ID] != inMonth {
			t.Fatalf("job %d measured=%v, inMonth=%v", j.ID, in.Measured[j.ID], inMonth)
		}
		if inMonth {
			measured++
		} else {
			unmeasured++
		}
	}
	if measured != len(m.Jobs) {
		t.Errorf("measured %d, month has %d", measured, len(m.Jobs))
	}
	if unmeasured == 0 {
		t.Error("no warm-up/cool-down jobs in slice")
	}
	if in.MeasureStart != m.Start || in.MeasureEnd != m.End {
		t.Errorf("measurement window [%d, %d), want [%d, %d)",
			in.MeasureStart, in.MeasureEnd, m.Start, m.End)
	}
}

func TestInputLoadScaling(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.1})
	m, _ := suite.Month("10/03") // lowest original load
	in, _, err := suite.Input("10/03", SimOptions{TargetLoad: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Offered load over the compressed measurement window must be ~0.9.
	var demand int64
	for _, j := range in.Jobs {
		if in.Measured[j.ID] {
			demand += j.Demand()
		}
	}
	window := float64(in.MeasureEnd - in.MeasureStart)
	load := float64(demand) / (float64(in.Capacity) * window)
	if math.Abs(load-0.9) > 0.02 {
		t.Errorf("scaled load %.3f, want 0.90 (original %.3f)", load, m.AchievedLoad)
	}
	// Attributes unchanged, only submit times move.
	orig, _, _ := suite.Input("10/03", SimOptions{})
	if len(orig.Jobs) != len(in.Jobs) {
		t.Fatalf("scaling changed job count")
	}
	for i := range in.Jobs {
		a, b := orig.Jobs[i], in.Jobs[i]
		if a.ID != b.ID || a.Nodes != b.Nodes || a.Runtime != b.Runtime || a.Request != b.Request {
			t.Fatalf("scaling changed job attributes: %+v vs %+v", a, b)
		}
	}
}

func TestInputUnknownMonth(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.05})
	if _, _, err := suite.Input("5/03", SimOptions{}); err == nil {
		t.Error("unknown month accepted")
	}
}

func TestRequestedRuntimesAreOverestimates(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.2})
	m, _ := suite.Month("6/03")
	exact, limit := 0, 0
	for _, j := range m.Jobs {
		if j.Request < j.Runtime {
			t.Fatalf("job %d: request %d < runtime %d", j.ID, j.Request, j.Runtime)
		}
		if j.Request == j.Runtime {
			exact++
		}
		if j.Request == m.Spec.RuntimeLimit {
			limit++
		}
	}
	n := len(m.Jobs)
	if exact == 0 {
		t.Error("no accurate requests generated")
	}
	if limit < n/10 {
		t.Errorf("only %d/%d jobs request the limit, expected a substantial minority", limit, n)
	}
}

func TestJobScalePreservesLoad(t *testing.T) {
	full := NewSuite(Config{Seed: 1})
	small := NewSuite(Config{Seed: 1, JobScale: 0.25})
	mf, _ := full.Month("8/03")
	ms, _ := small.Month("8/03")
	if math.Abs(mf.AchievedLoad-ms.AchievedLoad) > 0.08 {
		t.Errorf("scaled load %.3f deviates from full load %.3f", ms.AchievedLoad, mf.AchievedLoad)
	}
	wantJobs := int(math.Round(float64(mf.Spec.TotalJobs) * 0.25))
	if math.Abs(float64(len(ms.Jobs)-wantJobs)) > 2 {
		t.Errorf("scaled month has %d jobs, want ~%d", len(ms.Jobs), wantJobs)
	}
}

func TestTable4ClassOfCoversRanges(t *testing.T) {
	want := []int{0, 1, 2, 2, 3, 3, 4, 4}
	for r, w := range want {
		if got := table4ClassOf(r); got != w {
			t.Errorf("table4ClassOf(%d) = %d, want %d", r, got, w)
		}
	}
}

func TestPieceBoundsPartitionRuntimes(t *testing.T) {
	limit := Limit24h
	for _, rt := range []job.Duration{minRuntime, shortHi, shortHi + 1, medHi, medHi + 1, limit} {
		hits := 0
		for p := 0; p < 3; p++ {
			lo, hi := pieceBounds(p, limit)
			if rt >= lo && rt <= hi {
				hits++
			}
		}
		if hits != 1 {
			t.Errorf("runtime %d covered by %d pieces", rt, hits)
		}
	}
}
