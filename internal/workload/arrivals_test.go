package workload

import (
	"testing"

	"schedsearch/internal/job"
	"schedsearch/internal/stats"
)

func TestSampleArrivalsSortedAndInRange(t *testing.T) {
	r := stats.NewRNG(1, 0)
	start := job.Time(1000)
	dur := 10 * job.Day
	times := sampleArrivals(5000, start, dur, r)
	if len(times) != 5000 {
		t.Fatalf("%d arrivals", len(times))
	}
	for i, at := range times {
		if at < start || at >= start+dur {
			t.Fatalf("arrival %d at %d outside [%d, %d)", i, at, start, start+dur)
		}
		if i > 0 && at < times[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestSampleArrivalsDiurnalCycle(t *testing.T) {
	r := stats.NewRNG(2, 0)
	// Two full weeks starting at a day boundary.
	times := sampleArrivals(50000, 0, 2*job.Week, r)
	day, night := 0, 0
	for _, at := range times {
		h := (at / job.Hour) % 24
		if h >= 10 && h < 18 {
			day++ // 8 daytime hours
		}
		if h >= 0 && h < 8 {
			night++ // 8 night hours
		}
	}
	if day <= night {
		t.Errorf("daytime arrivals %d not above night arrivals %d", day, night)
	}
	if float64(day) < 1.5*float64(night) {
		t.Errorf("day/night ratio %.2f too flat", float64(day)/float64(night))
	}
}

func TestSampleArrivalsWeekendDip(t *testing.T) {
	r := stats.NewRNG(3, 0)
	times := sampleArrivals(70000, 0, 4*job.Week, r)
	perDow := make([]int, 7)
	for _, at := range times {
		perDow[(at/job.Day)%7]++
	}
	// Days 5 and 6 of the generator's week are the weekend.
	weekday := 0
	for d := 0; d < 5; d++ {
		weekday += perDow[d]
	}
	weekdayAvg := float64(weekday) / 5
	weekendAvg := float64(perDow[5]+perDow[6]) / 2
	if weekendAvg >= weekdayAvg {
		t.Errorf("weekend rate %.0f not below weekday rate %.0f", weekendAvg, weekdayAvg)
	}
}

func TestUsersAssignedAndSpecialized(t *testing.T) {
	suite := NewSuite(Config{Seed: 5, JobScale: 0.5})
	m, err := suite.Month("9/03")
	if err != nil {
		t.Fatal(err)
	}
	byUser := map[int][]job.Job{}
	for _, j := range m.Jobs {
		if j.User == 0 {
			t.Fatalf("job %d has no user", j.ID)
		}
		byUser[j.User] = append(byUser[j.User], j)
	}
	if len(byUser) < 20 {
		t.Fatalf("only %d users in a %d-job month", len(byUser), len(m.Jobs))
	}
	// Users specialize: all of a user's jobs fall in one runtime class.
	classOf := func(t job.Duration) int {
		switch {
		case t <= shortHi:
			return 0
		case t <= medHi:
			return 1
		default:
			return 2
		}
	}
	for u, jobs := range byUser {
		c := classOf(jobs[0].Runtime)
		for _, j := range jobs[1:] {
			if classOf(j.Runtime) != c {
				t.Fatalf("user %d mixes runtime classes", u)
			}
		}
	}
	// Activity is skewed: the busiest user submits several times the
	// median user's jobs.
	counts := make([]int, 0, len(byUser))
	for _, jobs := range byUser {
		counts = append(counts, len(jobs))
	}
	maxC, sum := 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(counts))
	if float64(maxC) < 3*mean {
		t.Errorf("heaviest user has %d jobs, mean %.1f — no zipf skew", maxC, mean)
	}
}

func TestUserRequestStylesArePersistent(t *testing.T) {
	suite := NewSuite(Config{Seed: 5, JobScale: 0.5})
	m, _ := suite.Month("9/03")
	limitReq := map[int]int{}
	jobsOf := map[int]int{}
	for _, j := range m.Jobs {
		jobsOf[j.User]++
		if j.Request == m.Spec.RuntimeLimit {
			limitReq[j.User]++
		}
	}
	// Limit-requesting is a per-user habit: among users with >= 5 jobs
	// and at least one limit request, most request the limit every time
	// (short jobs of accurate users can also round up to the limit, so
	// allow a minority of mixed users).
	allOrNothing, mixed := 0, 0
	for u, n := range jobsOf {
		if n < 5 || limitReq[u] == 0 {
			continue
		}
		if limitReq[u] == n {
			allOrNothing++
		} else {
			mixed++
		}
	}
	if allOrNothing == 0 {
		t.Fatal("no habitual limit-requesting users found")
	}
	if mixed > allOrNothing {
		t.Errorf("limit requests not habitual: %d mixed vs %d consistent users", mixed, allOrNothing)
	}
}

func TestUsersDistinctAcrossMonths(t *testing.T) {
	suite := NewSuite(Config{Seed: 5, JobScale: 0.2})
	a, _ := suite.Month("6/03")
	b, _ := suite.Month("7/03")
	usersA := map[int]bool{}
	for _, j := range a.Jobs {
		usersA[j.User] = true
	}
	for _, j := range b.Jobs {
		if usersA[j.User] {
			t.Fatalf("user %d appears in both 6/03 and 7/03 pools", j.User)
		}
	}
}
