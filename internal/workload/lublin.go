package workload

import (
	"math"
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
	"schedsearch/internal/stats"
)

// LublinConfig parameterizes a Lublin-Feitelson-style synthetic
// workload (Lublin & Feitelson, JPDC 2003) — the field's standard
// general model, used here as a robustness check: conclusions drawn on
// the NCSA-calibrated months should survive on a workload with entirely
// different statistical structure. The numeric constants follow the
// published batch-workload parameterization approximately; the model's
// qualitative structure (two-stage log-uniform sizes with a power-of-two
// bias, hyper-gamma runtimes whose mix shifts with job size, gamma
// interarrivals with a daily cycle) is what matters for this purpose.
type LublinConfig struct {
	Seed     uint64
	Capacity int
	// Days is the trace length.
	Days int
	// TargetLoad rescales the arrival rate so offered load hits this
	// fraction (default 0.75).
	TargetLoad float64
	// RuntimeLimit caps runtimes (default 24h); requests are modeled
	// with the same per-user habits as the calibrated generator.
	RuntimeLimit job.Duration
}

func (c LublinConfig) withDefaults() LublinConfig {
	if c.Capacity == 0 {
		c.Capacity = Capacity
	}
	if c.Days == 0 {
		c.Days = 30
	}
	if c.TargetLoad == 0 {
		c.TargetLoad = 0.75
	}
	if c.RuntimeLimit == 0 {
		c.RuntimeLimit = Limit24h
	}
	return c
}

// lublin model constants (batch workload, approximate published values).
const (
	lubSerialProb = 0.24 // fraction of one-node jobs
	lubPow2Prob   = 0.75 // fraction of parallel jobs with power-of-two size
	lubULow       = 0.8  // two-stage uniform over log2(size)
	lubUProb      = 0.86
	lubUMed       = 4.5
	// Hyper-gamma runtime components (seconds via scale): the first
	// component captures short jobs, the second long jobs; the mixing
	// probability decreases with job size (wider jobs run longer).
	lubShape1, lubScale1 = 4.2, 120.0
	lubShape2, lubScale2 = 6.0, 3600.0
	lubPa, lubPb         = -0.20, 0.85 // p = pb + pa*log2(size)/log2(max)
)

// Lublin synthesizes a Lublin-Feitelson-style trace, calibrated to the
// target load by scaling the arrival rate.
func Lublin(cfg LublinConfig) []job.Job {
	cfg = cfg.withDefaults()
	sizeRNG := stats.NewRNG(cfg.Seed, 101)
	runRNG := stats.NewRNG(cfg.Seed, 102)
	reqRNG := stats.NewRNG(cfg.Seed, 103)
	arrRNG := stats.NewRNG(cfg.Seed, 104)

	dur := job.Duration(cfg.Days) * job.Day
	maxLog := math.Log2(float64(cfg.Capacity))

	// First pass: synthesize job bodies until their demand reaches the
	// target; arrival times follow in a second pass.
	targetDemand := cfg.TargetLoad * float64(cfg.Capacity) * float64(dur)
	var jobs []job.Job
	var demand float64
	for demand < targetDemand {
		n := lublinSize(sizeRNG, cfg.Capacity, maxLog)
		t := lublinRuntime(runRNG, n, maxLog, cfg.RuntimeLimit)
		req := lublinRequest(reqRNG, t, cfg.RuntimeLimit)
		jobs = append(jobs, job.Job{
			ID:      len(jobs) + 1,
			Nodes:   n,
			Runtime: t,
			Request: req,
			User:    1 + len(jobs)%97, // simple rotating user pool
		})
		demand += float64(n) * float64(t)
	}

	// Arrivals: gamma-distributed interarrivals modulated by the daily
	// cycle, rescaled to fit the trace span exactly.
	raw := make([]float64, len(jobs))
	var total float64
	for i := range raw {
		raw[i] = arrRNG.Gamma(1.2, 1.0) // bursty but not heavy-tailed
		total += raw[i]
	}
	span := float64(dur - 1)
	at := 0.0
	for i := range jobs {
		at += raw[i] / total * span
		// Daily cycle: map the uniform position through a density that
		// favours daytime (inverse-CDF warp within each day).
		day := math.Floor(at / float64(job.Day))
		frac := at/float64(job.Day) - day
		warped := day + dayWarp(frac)
		jobs[i].Submit = job.Time(warped * float64(job.Day))
		if jobs[i].Submit >= dur {
			jobs[i].Submit = dur - 1
		}
	}
	sort.Sort(job.BySubmit(jobs))
	return jobs
}

// lublinSize draws a job size: serial with fixed probability, otherwise
// log2(size) from a two-stage uniform, snapped to a power of two with
// the published probability.
func lublinSize(r *stats.RNG, capacity int, maxLog float64) int {
	if r.Bool(lubSerialProb) {
		return 1
	}
	var l float64
	if r.Bool(lubUProb) {
		l = r.Uniform(lubULow, lubUMed)
	} else {
		l = r.Uniform(lubUMed, maxLog)
	}
	if r.Bool(lubPow2Prob) {
		l = math.Round(l)
	}
	n := int(math.Round(math.Pow(2, l)))
	if n < 2 {
		n = 2
	}
	if n > capacity {
		n = capacity
	}
	return n
}

// lublinRuntime draws a runtime from the size-dependent hyper-gamma.
func lublinRuntime(r *stats.RNG, n int, maxLog float64, limit job.Duration) job.Duration {
	p := lubPb + lubPa*math.Log2(float64(n))/maxLog
	if p < 0.05 {
		p = 0.05
	}
	if p > 0.95 {
		p = 0.95
	}
	hg := stats.HyperGamma{
		P:      p,
		Shape1: lubShape1, Scale1: lubScale1,
		Shape2: lubShape2, Scale2: lubScale2,
	}
	t := job.Duration(hg.Sample(r))
	if t < minRuntime {
		t = minRuntime
	}
	if t > limit {
		t = limit
	}
	return t
}

// lublinRequest reuses the calibrated generator's request habits
// per-draw (no per-user persistence needed for the robustness check).
func lublinRequest(r *stats.RNG, t, limit job.Duration) job.Duration {
	var req job.Duration
	switch {
	case r.Bool(0.20):
		req = t
	case r.Bool(0.30):
		req = limit
	default:
		req = job.Duration(float64(t) * r.LogUniform(1.2, 10))
	}
	const gran = 5 * job.Minute
	req = (req + gran - 1) / gran * gran
	if req < t {
		req = t
	}
	if req > limit {
		req = limit
	}
	return req
}

// dayWarp maps a uniform [0,1) day position through a diurnal density
// peaking in the afternoon (integral of 1 + 0.6*cos(2π(x - 14/24))
// normalized), keeping arrivals within the same day.
func dayWarp(u float64) float64 {
	// Invert numerically: F(x) = x + (0.6/2π)(sin(2π(x-c)) - sin(-2πc)),
	// c = 14/24. Bisection on [0, 1).
	const c = 14.0 / 24.0
	f := func(x float64) float64 {
		return x + 0.6/(2*math.Pi)*(math.Sin(2*math.Pi*(x-c))-math.Sin(-2*math.Pi*c))
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if f(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// LublinInput wraps the generated trace as a simulation input with
// everything measured.
func LublinInput(cfg LublinConfig) sim.Input {
	cfg = cfg.withDefaults()
	return sim.Input{
		Capacity: cfg.Capacity,
		Jobs:     Lublin(cfg),
	}
}
