package workload

import (
	"testing"

	"schedsearch/internal/job"
)

func TestPseudoMonthsHiddenButPresent(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.1})
	if _, err := suite.Month("warmup"); err == nil {
		t.Error("pseudo warm-up month exposed")
	}
	if _, err := suite.Month("cooldown"); err == nil {
		t.Error("pseudo cool-down month exposed")
	}
	// But their jobs feed the margins: the first real month's input
	// contains earlier-submitted unmeasured jobs.
	in, m, err := suite.Input("6/03", SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, j := range in.Jobs {
		if j.Submit < m.Start {
			warm++
		}
	}
	if warm == 0 {
		t.Error("no warm-up jobs before the first real month")
	}
	// And the last real month gets cool-down jobs.
	in, m, err = suite.Input("3/04", SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cool := 0
	for _, j := range in.Jobs {
		if j.Submit >= m.End {
			cool++
		}
	}
	if cool == 0 {
		t.Error("no cool-down jobs after the last real month")
	}
}

func TestMonthDurationsFollowCalendar(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.05})
	wantDays := map[string]int{
		"6/03": 30, "7/03": 31, "8/03": 31, "9/03": 30, "10/03": 31,
		"11/03": 30, "12/03": 31, "1/04": 31, "2/04": 29, "3/04": 31,
	}
	for label, days := range wantDays {
		m, err := suite.Month(label)
		if err != nil {
			t.Fatal(err)
		}
		want := job.Duration(float64(days) * float64(job.Day) * 0.05)
		got := m.Duration()
		if got < want-2 || got > want+2 {
			t.Errorf("%s: duration %d, want ~%d", label, got, want)
		}
	}
}

func TestMonthsAreContiguous(t *testing.T) {
	suite := NewSuite(Config{Seed: 1, JobScale: 0.05})
	months := suite.RealMonths()
	for i := 1; i < len(months); i++ {
		if months[i].Start != months[i-1].End {
			t.Errorf("%s starts at %d, previous ends at %d",
				months[i].Spec.Label, months[i].Start, months[i-1].End)
		}
	}
}

func TestComputeMixStatsEmpty(t *testing.T) {
	st := ComputeMixStats(nil, 128, job.Day)
	if st.TotalJobs != 0 || st.Load != 0 {
		t.Errorf("empty stats: %+v", st)
	}
	st = ComputeMixStats([]job.Job{{Nodes: 1, Runtime: 100}}, 128, 0)
	if st.TotalJobs != 1 {
		t.Errorf("zero-duration stats: %+v", st)
	}
}

func TestRuntimeClassWeightsClamp(t *testing.T) {
	spec := Months[0]
	for r := range spec.JobFrac {
		wS, wM, wL := runtimeClassWeights(spec, r)
		if wS < 0 || wM < 0 || wL < 0 {
			t.Errorf("range %d: negative weight (%v, %v, %v)", r, wS, wM, wL)
		}
		if s := wS + wM + wL; s < 0.999 || s > 1.001 {
			t.Errorf("range %d: weights sum to %v", r, s)
		}
	}
}

func TestSolvePiecesHitsTargets(t *testing.T) {
	for _, target := range []float64{600, 3600, 7200, 20000, 40000} {
		dS, dM, dL := solvePieces(0.4, 0.35, 0.25, target, Limit24h)
		got := 0.4*dS.Mean() + 0.35*dM.Mean() + 0.25*dL.Mean()
		// Reachable targets are hit within 3%; the extremes clamp
		// (e.g. 25% long jobs alone force a mean above ~5900s).
		if target > 7000 && target < 25000 {
			if got < target*0.97 || got > target*1.03 {
				t.Errorf("target %v: mixture mean %v", target, got)
			}
		}
		if dS.Mean() < minRuntime || dS.Mean() > float64(shortHi) {
			t.Errorf("short mean %v out of class", dS.Mean())
		}
		if dL.Mean() < float64(medHi) || dL.Mean() > float64(Limit24h) {
			t.Errorf("long mean %v out of class", dL.Mean())
		}
	}
}

func TestSampleNodesRespectsRange(t *testing.T) {
	suite := NewSuite(Config{Seed: 9, JobScale: 0.2})
	for _, m := range suite.RealMonths() {
		for _, j := range m.Jobs {
			if j.Nodes < 1 || j.Nodes > Capacity {
				t.Fatalf("%s: job %d with %d nodes", m.Spec.Label, j.ID, j.Nodes)
			}
		}
	}
}
