package workload

import (
	"fmt"
	"math"
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/sim"
)

// Month is one generated monthly workload on the suite timeline.
type Month struct {
	Spec MonthSpec
	// Start and End bound the month on the timeline (End exclusive).
	Start, End job.Time
	// Jobs are the jobs submitted during the month, submit-sorted.
	Jobs []job.Job
	// AchievedLoad is the generated offered load (demand of the
	// month's jobs over capacity x duration); it tracks Spec.Load up to
	// sampling noise and calibration limits.
	AchievedLoad float64
	// Pseudo marks the synthetic warm-up/cool-down margin months that
	// exist only to feed neighbors' margins.
	Pseudo bool
}

// Duration returns the month length.
func (m *Month) Duration() job.Duration { return m.End - m.Start }

// Suite is the full generated 10-month workload plus pseudo margin
// months, on one continuous timeline.
type Suite struct {
	Config   Config
	Capacity int

	months   []*Month // pseudo + 10 real + pseudo, timeline order
	timeline []job.Job
}

// NewSuite generates the whole workload suite deterministically from
// cfg.Seed. A pseudo month cloned from the first (last) real month's
// spec precedes (follows) the real months, providing warm-up and
// cool-down margins like the paper's adjacent-month weeks.
func NewSuite(cfg Config) *Suite {
	cfg = cfg.withDefaults()
	s := &Suite{Config: cfg, Capacity: cfg.Capacity}

	specs := make([]MonthSpec, 0, len(Months)+2)
	warmSpec := Months[0]
	warmSpec.Label = "warmup"
	coolSpec := Months[len(Months)-1]
	coolSpec.Label = "cooldown"
	specs = append(specs, warmSpec)
	specs = append(specs, Months...)
	specs = append(specs, coolSpec)

	var cursor job.Time
	for i, spec := range specs {
		days := daysInMonth(spec.Year, spec.MonthOfYear)
		dur := job.Duration(math.Round(float64(days) * float64(job.Day) * cfg.JobScale))
		if dur < job.Hour {
			dur = job.Hour
		}
		m := &Month{
			Spec:   spec,
			Start:  cursor,
			End:    cursor + dur,
			Pseudo: i == 0 || i == len(specs)-1,
		}
		m.Jobs = generateMonth(spec, cfg, i, m.Start, dur)
		var demand int64
		for _, j := range m.Jobs {
			demand += j.Demand()
		}
		m.AchievedLoad = float64(demand) / (float64(cfg.Capacity) * float64(dur))
		s.months = append(s.months, m)
		cursor = m.End
	}

	// Build the global submit-sorted timeline and assign IDs in submit
	// order.
	for _, m := range s.months {
		s.timeline = append(s.timeline, m.Jobs...)
	}
	sort.Sort(job.BySubmit(s.timeline))
	for i := range s.timeline {
		s.timeline[i].ID = i + 1
	}
	// Propagate the IDs back into the per-month views.
	idx := 0
	for _, m := range s.months {
		// Months partition the timeline by submit window, so re-slice.
		start := idx
		for idx < len(s.timeline) && s.timeline[idx].Submit < m.End {
			idx++
		}
		m.Jobs = s.timeline[start:idx]
	}
	return s
}

// RealMonths returns the ten evaluated months in order.
func (s *Suite) RealMonths() []*Month {
	out := make([]*Month, 0, len(s.months)-2)
	for _, m := range s.months {
		if !m.Pseudo {
			out = append(out, m)
		}
	}
	return out
}

// Month returns the real month with the paper's label ("6/03").
func (s *Suite) Month(label string) (*Month, error) {
	for _, m := range s.months {
		if !m.Pseudo && m.Spec.Label == label {
			return m, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown month %q", label)
}

// SimOptions configure how a month is turned into a simulation input.
type SimOptions struct {
	// TargetLoad, when non-zero, rescales interarrival times so the
	// month's offered load becomes the target (the paper's ρ = 0.9
	// experiments); zero keeps the original load.
	TargetLoad float64
	// UseRequested makes policies plan with user-requested runtimes
	// (R* = R) instead of actual runtimes (R* = T).
	UseRequested bool
}

// Input builds the simulation input for a month: the month's jobs plus
// one-week warm-up and cool-down margins (scaled with JobScale), with
// only the month's own jobs flagged measured. With TargetLoad set, all
// submit times in the slice are compressed toward the slice start so the
// measured load matches the target while job attributes are unchanged.
func (s *Suite) Input(label string, opt SimOptions) (sim.Input, *Month, error) {
	m, err := s.Month(label)
	if err != nil {
		return sim.Input{}, nil, err
	}
	margin := job.Duration(float64(job.Week) * s.Config.JobScale)
	if margin < 1 {
		margin = 1
	}
	sliceStart := m.Start - margin
	if sliceStart < 0 {
		sliceStart = 0
	}
	sliceEnd := m.End + margin

	lo := sort.Search(len(s.timeline), func(i int) bool { return s.timeline[i].Submit >= sliceStart })
	hi := sort.Search(len(s.timeline), func(i int) bool { return s.timeline[i].Submit >= sliceEnd })
	jobs := make([]job.Job, hi-lo)
	copy(jobs, s.timeline[lo:hi])

	measured := make(map[int]bool)
	for _, j := range jobs {
		if j.Submit >= m.Start && j.Submit < m.End {
			measured[j.ID] = true
		}
	}

	measureStart, measureEnd := m.Start, m.End
	if opt.TargetLoad > 0 {
		f := m.AchievedLoad / opt.TargetLoad
		scale := func(t job.Time) job.Time {
			return sliceStart + job.Time(math.Round(float64(t-sliceStart)*f))
		}
		for i := range jobs {
			jobs[i].Submit = scale(jobs[i].Submit)
		}
		measureStart, measureEnd = scale(m.Start), scale(m.End)
	}

	return sim.Input{
		Capacity:     s.Capacity,
		Jobs:         jobs,
		Measured:     measured,
		MeasureStart: measureStart,
		MeasureEnd:   measureEnd,
		UseRequested: opt.UseRequested,
	}, m, nil
}
