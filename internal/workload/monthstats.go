package workload

import (
	"schedsearch/internal/job"
)

// MixStats summarizes a month of jobs the way the paper's Tables 3 and 4
// do, so the generated workloads can be compared against the published
// targets.
type MixStats struct {
	TotalJobs int
	// Load is demand / (capacity x duration).
	Load float64
	// JobFrac and DemandFrac follow job.Table3NodeRanges.
	JobFrac    [8]float64
	DemandFrac [8]float64
	// ShortFrac and LongFrac follow job.Table4NodeClasses and are
	// fractions of all jobs in the month (T <= 1h and T > 5h).
	ShortFrac [5]float64
	LongFrac  [5]float64
}

// ComputeMixStats summarizes jobs over a window of the given duration on
// a machine of the given capacity.
func ComputeMixStats(jobs []job.Job, capacity int, dur job.Duration) MixStats {
	st := MixStats{TotalJobs: len(jobs)}
	if len(jobs) == 0 || dur <= 0 {
		return st
	}
	var totalDemand float64
	var demand [8]float64
	var count [8]int
	var short, long [5]int
	for _, j := range jobs {
		r := job.ClassifyNodes(job.Table3NodeRanges, j.Nodes)
		if r >= 0 {
			count[r]++
			demand[r] += float64(j.Demand())
		}
		totalDemand += float64(j.Demand())
		c := job.ClassifyNodes(job.Table4NodeClasses, j.Nodes)
		if c >= 0 {
			if j.Runtime <= job.Hour {
				short[c]++
			}
			if j.Runtime > 5*job.Hour {
				long[c]++
			}
		}
	}
	st.Load = totalDemand / (float64(capacity) * float64(dur))
	n := float64(len(jobs))
	for r := range count {
		st.JobFrac[r] = float64(count[r]) / n
		if totalDemand > 0 {
			st.DemandFrac[r] = demand[r] / totalDemand
		}
	}
	for c := range short {
		st.ShortFrac[c] = float64(short[c]) / n
		st.LongFrac[c] = float64(long[c]) / n
	}
	return st
}

// Stats summarizes the month's generated jobs.
func (m *Month) Stats(capacity int) MixStats {
	return ComputeMixStats(m.Jobs, capacity, m.Duration())
}
