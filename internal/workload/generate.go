package workload

import (
	"fmt"
	"math"
	"sort"

	"schedsearch/internal/job"
	"schedsearch/internal/stats"
)

// Config controls workload synthesis.
type Config struct {
	// Seed makes the whole suite deterministic.
	Seed uint64
	// Capacity overrides the system size (default 128 nodes).
	Capacity int
	// JobScale scales every month's job count AND duration by the same
	// factor, preserving offered load and queueing behaviour while
	// shortening simulations (used by benchmarks). Default 1.
	JobScale float64
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = Capacity
	}
	if c.JobScale == 0 {
		c.JobScale = 1
	}
	return c
}

// rng stream purposes, kept disjoint per month.
const (
	streamNodes = iota
	streamRuntime
	streamRequest
	streamArrival
	streamShuffle
	streamCount
)

// runtime piece boundaries (seconds): short <= 1h, medium (1h, 5h],
// long (5h, limit]; these are the class boundaries of Table 4.
const (
	minRuntime = 30
	shortHi    = job.Hour
	medHi      = 5 * job.Hour
)

// generateMonth synthesizes one month of jobs in [start, start+dur),
// matching the spec's job mix, demand mix, runtime classes and load.
// Job IDs are assigned later by the suite.
func generateMonth(spec MonthSpec, cfg Config, monthIdx int, start job.Time, dur job.Duration) []job.Job {
	total := int(math.Round(float64(spec.TotalJobs) * cfg.JobScale))
	if total < 1 {
		total = 1
	}
	nodesRNG := stats.NewRNG(cfg.Seed, uint64(monthIdx*streamCount+streamNodes))
	runRNG := stats.NewRNG(cfg.Seed, uint64(monthIdx*streamCount+streamRuntime))
	reqRNG := stats.NewRNG(cfg.Seed, uint64(monthIdx*streamCount+streamRequest))
	arrRNG := stats.NewRNG(cfg.Seed, uint64(monthIdx*streamCount+streamArrival))
	shufRNG := stats.NewRNG(cfg.Seed, uint64(monthIdx*streamCount+streamShuffle))

	counts := apportion(total, spec.JobFrac[:])
	jobs := make([]job.Job, 0, total)
	for r, cnt := range counts {
		if cnt == 0 {
			continue
		}
		jobs = append(jobs, synthesizeRange(spec, cfg, monthIdx, r, cnt, dur, nodesRNG, runRNG, reqRNG)...)
	}

	// Decouple job attributes from arrival order, then attach sorted
	// arrival times.
	shufRNG.Shuffle(len(jobs), func(i, k int) { jobs[i], jobs[k] = jobs[k], jobs[i] })
	arrivals := sampleArrivals(len(jobs), start, dur, arrRNG)
	for i := range jobs {
		jobs[i].Submit = arrivals[i]
	}
	sort.Sort(job.BySubmit(jobs))
	return jobs
}

// synthesizeRange builds the jobs of one Table 3 node range: node
// counts, actual runtimes calibrated to the range's demand share, and
// requested runtimes.
func synthesizeRange(spec MonthSpec, cfg Config, monthIdx, r, cnt int, dur job.Duration,
	nodesRNG, runRNG, reqRNG *stats.RNG) []job.Job {

	nr := job.Table3NodeRanges[r]
	hi := nr.Hi
	if hi > cfg.Capacity {
		hi = cfg.Capacity
	}
	out := make([]job.Job, cnt)
	var sumNodes int64
	for i := range out {
		n := sampleNodes(nr.Lo, hi, nodesRNG)
		out[i].Nodes = n
		sumNodes += int64(n)
	}

	// Target mean runtime for the range: its share of the month's
	// processor demand divided by the sampled node mass.
	demandShare := spec.DemandFrac[r] / sumf(spec.DemandFrac[:])
	targetDemand := demandShare * spec.Load * float64(cfg.Capacity) * float64(dur)
	targetMean := targetDemand / float64(sumNodes)

	wS, wM, wL := runtimeClassWeights(spec, r)
	dS, dM, dL := solvePieces(wS, wM, wL, targetMean, spec.RuntimeLimit)

	weights := []float64{wS, wM, wL}
	pieces := []stats.TruncExp{dS, dM, dL}
	pieceIdx := make([]int, cnt)
	for i := range out {
		pieceIdx[i] = runRNG.Choose(weights)
	}

	// Group the range's jobs into users. Users specialize: each user's
	// jobs share a runtime class (so Table 4 fractions are untouched)
	// and cluster around a per-user center runtime, giving history-
	// based runtime predictors a realistic signal. Request behaviour is
	// also a per-user habit.
	users := assignUsers(out, pieceIdx, pieces, monthIdx, r, runRNG, reqRNG)

	for i := range out {
		u := users[i]
		p := pieceIdx[i]
		// Mix the job's sample toward its user's center; the center is
		// drawn from the same distribution, so the class mean is
		// preserved in expectation.
		sample := pieces[p].Sample(runRNG)
		t := job.Duration(0.4*sample + 0.6*u.center)
		if t < minRuntime {
			t = minRuntime
		}
		if t > spec.RuntimeLimit {
			t = spec.RuntimeLimit
		}
		out[i].Runtime = t
		out[i].User = u.id
	}

	// The demand of a range is dominated by its few long wide jobs, so
	// sampling noise can move it far from the Table 3 target. Correct
	// by rescaling runtimes toward the target, clamped within each
	// job's runtime class so the Table 4 class fractions are preserved
	// exactly.
	calibrateDemand(out, pieceIdx, targetDemand, spec.RuntimeLimit)

	for i := range out {
		out[i].Request = users[i].request(out[i].Runtime, spec.RuntimeLimit, reqRNG)
	}
	return out
}

// userProfile is one synthetic user's habits: a runtime center within
// the user's preferred class and a runtime-request style.
type userProfile struct {
	id     int
	center float64
	// style: 0 = accurate requests, 1 = requests the limit, 2 =
	// overestimates by a habitual factor.
	style  int
	factor float64
}

// request models this user's runtime estimate for a job of actual
// runtime t.
func (u *userProfile) request(t, limit job.Duration, r *stats.RNG) job.Duration {
	var req job.Duration
	switch u.style {
	case 0:
		req = t
	case 1:
		req = limit
	default:
		// Habitual factor with mild per-job jitter.
		req = job.Duration(float64(t) * u.factor * r.Uniform(0.9, 1.2))
	}
	const gran = 5 * job.Minute
	req = (req + gran - 1) / gran * gran
	if req < t {
		req = t
	}
	if req > limit {
		req = limit
	}
	return req
}

// assignUsers groups the jobs of one node range into per-class user
// pools (roughly one user per eight jobs, zipf-weighted activity) and
// returns each job's user profile.
func assignUsers(out []job.Job, pieceIdx []int, pieces []stats.TruncExp,
	monthIdx, r int, runRNG, reqRNG *stats.RNG) []*userProfile {

	users := make([]*userProfile, len(out))
	// User IDs: unique per (month, range, class) pool, so prediction
	// history never crosses month boundaries.
	base := 1 + monthIdx*1000000 + r*10000
	for piece := 0; piece < 3; piece++ {
		var jobs []int
		for i, p := range pieceIdx {
			if p == piece {
				jobs = append(jobs, i)
			}
		}
		if len(jobs) == 0 {
			continue
		}
		nUsers := (len(jobs) + 7) / 8
		pool := make([]*userProfile, nUsers)
		zipf := make([]float64, nUsers)
		for u := range pool {
			prof := &userProfile{
				id:     base + piece*1000 + u,
				center: pieces[piece].Sample(runRNG),
			}
			switch {
			case reqRNG.Bool(0.20):
				prof.style = 0
			case reqRNG.Bool(0.30):
				prof.style = 1
			default:
				prof.style = 2
				prof.factor = reqRNG.LogUniform(1.2, 10)
			}
			pool[u] = prof
			zipf[u] = 1 / float64(u+1) // heavy users first
		}
		for _, ji := range jobs {
			users[ji] = pool[runRNG.Choose(zipf)]
		}
	}
	return users
}

// pieceBounds returns the inclusive runtime bounds of a runtime class.
func pieceBounds(piece int, limit job.Duration) (lo, hi job.Duration) {
	switch piece {
	case 0:
		return minRuntime, shortHi
	case 1:
		return shortHi + 1, medHi
	default:
		return medHi + 1, limit
	}
}

// calibrateDemand multiplicatively rescales runtimes toward the target
// node-seconds demand, keeping every job inside its runtime class. A few
// iterations converge unless the class bounds saturate.
func calibrateDemand(out []job.Job, pieceIdx []int, targetDemand float64, limit job.Duration) {
	for iter := 0; iter < 6; iter++ {
		var achieved float64
		for _, j := range out {
			achieved += float64(j.Demand())
		}
		if achieved <= 0 {
			return
		}
		f := targetDemand / achieved
		if f > 0.995 && f < 1.005 {
			return
		}
		for i := range out {
			lo, hi := pieceBounds(pieceIdx[i], limit)
			t := job.Duration(float64(out[i].Runtime) * f)
			if t < lo {
				t = lo
			}
			if t > hi {
				t = hi
			}
			out[i].Runtime = t
		}
	}
}

// sampleNodes draws a node count in [lo, hi], biased toward powers of
// two (and secondarily multiples of eight), matching how users request
// partition sizes in production traces.
func sampleNodes(lo, hi int, r *stats.RNG) int {
	if lo == hi {
		return lo
	}
	weights := make([]float64, hi-lo+1)
	for n := lo; n <= hi; n++ {
		w := 1.0
		if n&(n-1) == 0 { // power of two
			w = 12
		} else if n%8 == 0 {
			w = 3
		}
		weights[n-lo] = w
	}
	return lo + r.Choose(weights)
}

// runtimeClassWeights derives, for Table 3 node range r, the probability
// that a job is short (T <= 1h), medium, or long (T > 5h) from the
// Table 4 fractions of the month.
func runtimeClassWeights(spec MonthSpec, r int) (wS, wM, wL float64) {
	c := table4ClassOf(r)
	classJobFrac := 0.0
	norm := sumf(spec.JobFrac[:])
	for r2 := range spec.JobFrac {
		if table4ClassOf(r2) == c {
			classJobFrac += spec.JobFrac[r2] / norm
		}
	}
	if classJobFrac <= 0 {
		return 0.3, 0.5, 0.2
	}
	wS = clamp01(spec.ShortFrac[c] / classJobFrac)
	wL = clamp01(spec.LongFrac[c] / classJobFrac)
	if s := wS + wL; s > 1 {
		wS /= s
		wL /= s
	}
	wM = 1 - wS - wL
	return wS, wM, wL
}

// solvePieces picks a mean-targeted truncated-exponential distribution
// for each runtime class so that the mixture mean approaches target.
// The long class absorbs most of the adjustment (its upper bound is the
// runtime limit), then the medium, then the short class.
func solvePieces(wS, wM, wL, target float64, limit job.Duration) (dS, dM, dL stats.TruncExp) {
	mS, mM := 600.0, 9000.0 // 10 min, 2.5 h starting points
	mL := (float64(medHi) + float64(limit)) / 2

	residual := target - (wS*mS + wM*mM + wL*mL)
	adjust := func(m *float64, w, lo, hi float64) {
		if w <= 0 {
			return
		}
		next := *m + residual/w
		next = math.Max(lo, math.Min(hi, next))
		residual -= (next - *m) * w
		*m = next
	}
	if residual > 0 {
		adjust(&mL, wL, float64(medHi)*1.02, float64(limit)*0.98)
		adjust(&mM, wM, float64(shortHi)*1.05, float64(medHi)*0.95)
		adjust(&mS, wS, minRuntime*1.5, float64(shortHi)*0.95)
	} else {
		adjust(&mS, wS, minRuntime*1.5, float64(shortHi)*0.95)
		adjust(&mM, wM, float64(shortHi)*1.05, float64(medHi)*0.95)
		adjust(&mL, wL, float64(medHi)*1.02, float64(limit)*0.98)
	}

	dS = mustTruncExp(minRuntime, float64(shortHi), mS)
	dM = mustTruncExp(float64(shortHi), float64(medHi), mM)
	dL = mustTruncExp(float64(medHi), float64(limit), mL)
	return dS, dM, dL
}

func mustTruncExp(lo, hi, mean float64) stats.TruncExp {
	d, err := stats.SolveTruncExp(lo, hi, mean)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return d
}

// sampleArrivals draws n arrival times in [start, start+dur) from a
// nonhomogeneous hourly rate with weekday/weekend and time-of-day
// cycles, returned sorted.
func sampleArrivals(n int, start job.Time, dur job.Duration, r *stats.RNG) []job.Time {
	hours := int((dur + job.Hour - 1) / job.Hour)
	if hours < 1 {
		hours = 1
	}
	cum := make([]float64, hours+1)
	startDay := int(start / job.Day)
	for h := 0; h < hours; h++ {
		dow := (startDay + h/24) % 7
		dowF := 1.0
		if dow == 5 {
			dowF = 0.6
		} else if dow == 6 {
			dowF = 0.5
		}
		hod := float64(h % 24)
		bell := (1 + math.Cos(2*math.Pi*(hod-14)/24)) / 2
		cum[h+1] = cum[h] + dowF*(0.35+0.65*bell)
	}
	total := cum[hours]
	out := make([]job.Time, n)
	for i := range out {
		u := r.Float64() * total
		h := sort.SearchFloat64s(cum, u)
		if h > 0 {
			h--
		}
		if h >= hours {
			h = hours - 1
		}
		t := start + job.Time(h)*job.Hour + job.Time(r.Float64()*float64(job.Hour))
		if t >= start+dur {
			t = start + dur - 1
		}
		out[i] = t
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// apportion distributes total across buckets proportionally to weights
// using the largest-remainder method, so bucket counts sum exactly to
// total.
func apportion(total int, weights []float64) []int {
	norm := sumf(weights)
	counts := make([]int, len(weights))
	if norm <= 0 || total <= 0 {
		return counts
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / norm
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; i < total-assigned; i++ {
		counts[rems[i%len(rems)].idx]++
	}
	return counts
}

func sumf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
