package cluster

import "testing"

// FuzzProfileOps drives the profile with an op sequence decoded from
// fuzz bytes and checks invariants after every operation, cross-checking
// FreeAt against a brute-force reference.
func FuzzProfileOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const capacity = 16
		const horizon = 256
		p := New(capacity, 0)
		ref := newNaive(capacity, 0, horizon)
		type placed struct {
			pl    Placement
			t     Time
			nodes int
			d     Duration
		}
		var stack []placed
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 3
			nodes := int(data[i+1])%capacity + 1
			d := Duration(data[i+2])%60 + 1
			after := Time(data[i+3]) % (horizon / 2)
			switch op {
			case 0: // place at earliest fit
				got := p.EarliestFit(after, nodes, d)
				want := ref.earliestFit(after, nodes, d)
				if got != want {
					t.Fatalf("EarliestFit(%d, %d, %d) = %d, want %d", after, nodes, d, got, want)
				}
				if int(got)+int(d) >= horizon {
					continue
				}
				stack = append(stack, placed{pl: p.Place(got, nodes, d), t: got, nodes: nodes, d: d})
				ref.place(got, nodes, d)
			case 1: // undo last
				if len(stack) == 0 {
					continue
				}
				last := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				p.Undo(last.pl)
				ref.unplace(last.t, last.nodes, last.d)
			case 2: // check free capacity
				if got, want := p.FreeAt(after), ref.free[after]; got != want {
					t.Fatalf("FreeAt(%d) = %d, want %d", after, got, want)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
