// Package cluster models the space-shared machine: a pool of
// interchangeable whole nodes and an availability profile — free
// capacity as a step function of time — supporting earliest-fit queries
// and undoable placements. The profile is the inner-loop data structure
// of both the backfill policies and the search-based scheduler: a search
// visiting 100K tree nodes performs one Place and one Undo per node.
package cluster

import "fmt"

// Time and Duration are seconds, matching package job.
type (
	Time     = int64
	Duration = int64
)

// Forever is the effective end of time for the profile: the last step
// extends to Forever.
const Forever Time = 1 << 60

// step is one piece of the free-capacity step function: Free nodes are
// available from At until the next step's At (the last step extends to
// Forever).
type step struct {
	At   Time
	Free int
}

// Profile is the free-capacity-over-time step function. The zero value
// is not usable; construct with New.
type Profile struct {
	capacity int
	steps    []step
}

// New returns a profile for a machine with the given node capacity,
// fully free from the origin time onward.
func New(capacity int, origin Time) *Profile {
	if capacity < 1 {
		panic("cluster: capacity must be positive")
	}
	return &Profile{
		capacity: capacity,
		steps:    []step{{At: origin, Free: capacity}},
	}
}

// Reset reinitializes the profile in place to a fully free machine of
// the given capacity from origin onward, reusing the step storage. It
// makes the zero Profile usable and lets hot paths (one profile rebuild
// per scheduling decision per search worker) avoid reallocating.
func (p *Profile) Reset(capacity int, origin Time) {
	if capacity < 1 {
		panic("cluster: capacity must be positive")
	}
	p.capacity = capacity
	p.steps = append(p.steps[:0], step{At: origin, Free: capacity})
}

// Capacity returns the machine's total node count.
func (p *Profile) Capacity() int { return p.capacity }

// Origin returns the earliest time the profile covers.
func (p *Profile) Origin() Time { return p.steps[0].At }

// FreeAt returns the free capacity at time t. t must be >= Origin.
func (p *Profile) FreeAt(t Time) int {
	return p.steps[p.find(t)].Free
}

// Len returns the number of steps (for diagnostics and benchmarks).
func (p *Profile) Len() int { return len(p.steps) }

// Clone returns an independent copy of the profile.
func (p *Profile) Clone() *Profile {
	c := &Profile{capacity: p.capacity, steps: make([]step, len(p.steps))}
	copy(c.steps, p.steps)
	return c
}

// find returns the index of the step covering time t: the greatest i
// with steps[i].At <= t. t must be >= Origin.
func (p *Profile) find(t Time) int {
	// Binary search; profiles are small (tens to a few hundred steps),
	// but earliest-fit scans start here so keep it exact.
	lo, hi := 0, len(p.steps)-1
	if t < p.steps[0].At {
		panic(fmt.Sprintf("cluster: time %d precedes profile origin %d", t, p.steps[0].At))
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.steps[mid].At <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// EarliestFit returns the earliest time t >= after at which nodes free
// capacity is at least n for the full duration d. For d == 0 it returns
// the earliest time with free capacity >= n. n must be in [1, capacity].
func (p *Profile) EarliestFit(after Time, n int, d Duration) Time {
	if n < 1 || n > p.capacity {
		panic(fmt.Sprintf("cluster: EarliestFit n=%d outside [1,%d]", n, p.capacity))
	}
	if d < 0 {
		panic("cluster: EarliestFit negative duration")
	}
	if after < p.steps[0].At {
		after = p.steps[0].At
	}
	i := p.find(after)
	t := after
	for {
		// Advance to the first step at/after t with enough capacity.
		for p.steps[i].Free < n {
			i++
			if i == len(p.steps) {
				// Free capacity only ever returns to full capacity
				// at the end, and n <= capacity, so this cannot
				// happen: the last step is always feasible.
				panic("cluster: EarliestFit ran off profile end")
			}
			t = p.steps[i].At
		}
		if t < p.steps[i].At {
			t = p.steps[i].At
		}
		// Check [t, t+d) stays feasible.
		end := t + d
		j := i
		ok := true
		for j+1 < len(p.steps) && p.steps[j+1].At < end {
			j++
			if p.steps[j].Free < n {
				// Infeasible at step j; restart from the next step
				// after j with enough capacity.
				i = j
				t = p.steps[j].At
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
}

// Placement is the undo record for one Place call. It is valid only
// until the next Place or Undo on the profile (placements undo in LIFO
// order).
type Placement struct {
	lo, hi   int  // modified region [lo, hi) in the post-place steps
	insLo    bool // a step was inserted at the start boundary
	insHi    bool // a step was inserted at the end boundary
	n        int  // nodes subtracted
	origFree int  // free value the inserted end-boundary step restored
}

// Place reserves n nodes during [t, t+d), decreasing free capacity, and
// returns an undo record. It panics if the interval is not fully
// feasible (callers must place only at times returned by EarliestFit) or
// if d == 0 (an empty reservation is meaningless).
func (p *Profile) Place(t Time, n int, d Duration) Placement {
	if d <= 0 {
		panic("cluster: Place with non-positive duration")
	}
	if n < 1 || n > p.capacity {
		panic(fmt.Sprintf("cluster: Place n=%d outside [1,%d]", n, p.capacity))
	}
	end := t + d
	lo := p.find(t)
	var pl Placement
	pl.n = n

	// Split at t if needed so the region starts exactly at t.
	if p.steps[lo].At < t {
		p.steps = append(p.steps, step{})
		copy(p.steps[lo+2:], p.steps[lo+1:])
		p.steps[lo+1] = step{At: t, Free: p.steps[lo].Free}
		lo++
		pl.insLo = true
	}

	// Find the end of the region: first step with At >= end.
	hi := lo
	for hi < len(p.steps) && p.steps[hi].At < end {
		hi++
	}
	// Split at end if needed: the step hi-1 extends past end.
	last := hi - 1
	extendsPast := hi == len(p.steps) || p.steps[hi].At > end
	if extendsPast {
		pl.origFree = p.steps[last].Free
		p.steps = append(p.steps, step{})
		copy(p.steps[hi+1:], p.steps[hi:])
		p.steps[hi] = step{At: end, Free: pl.origFree}
		pl.insHi = true
	}

	for i := lo; i < hi; i++ {
		if p.steps[i].Free < n {
			panic(fmt.Sprintf("cluster: Place(%d, n=%d, d=%d) infeasible at step %d (free %d)",
				t, n, d, i, p.steps[i].Free))
		}
		p.steps[i].Free -= n
	}
	pl.lo, pl.hi = lo, hi
	return pl
}

// Undo reverts the most recent Place. Placements must be undone in
// strict LIFO order; undoing out of order corrupts the profile.
func (p *Profile) Undo(pl Placement) {
	for i := pl.lo; i < pl.hi; i++ {
		p.steps[i].Free += pl.n
	}
	// Remove inserted boundary steps (end first so indices stay valid).
	if pl.insHi {
		copy(p.steps[pl.hi:], p.steps[pl.hi+1:])
		p.steps = p.steps[:len(p.steps)-1]
	}
	if pl.insLo {
		copy(p.steps[pl.lo:], p.steps[pl.lo+1:])
		p.steps = p.steps[:len(p.steps)-1]
	}
}

// PlaceEarliest finds the earliest fit at or after `after` and places
// the job there, returning the chosen start time and the undo record.
func (p *Profile) PlaceEarliest(after Time, n int, d Duration) (Time, Placement) {
	t := p.EarliestFit(after, n, d)
	return t, p.Place(t, n, d)
}

// CheckInvariants verifies structural invariants; tests call it after
// mutation sequences. It returns an error describing the first violation.
func (p *Profile) CheckInvariants() error {
	if len(p.steps) == 0 {
		return fmt.Errorf("empty profile")
	}
	for i, s := range p.steps {
		if s.Free < 0 || s.Free > p.capacity {
			return fmt.Errorf("step %d free %d outside [0,%d]", i, s.Free, p.capacity)
		}
		if i > 0 && p.steps[i-1].At >= s.At {
			return fmt.Errorf("steps not strictly increasing at %d: %d >= %d",
				i, p.steps[i-1].At, s.At)
		}
	}
	if p.steps[len(p.steps)-1].Free != p.capacity {
		return fmt.Errorf("final step free %d != capacity %d",
			p.steps[len(p.steps)-1].Free, p.capacity)
	}
	return nil
}
