package cluster

import (
	"fmt"
	"math/bits"
)

// NodeSet tracks the allocation state of the machine's concrete nodes.
// The availability profile answers "how many nodes, when"; the NodeSet
// answers "which nodes" at dispatch time, the way a resource manager
// hands node lists to job launchers. Allocation is lowest-numbered-
// first, which is deterministic and matches common resource managers
// on switched (non-torus) clusters where placement does not matter.
type NodeSet struct {
	words []uint64 // bit set; 1 = free
	total int
	free  int
}

// NewNodeSet returns a set of n nodes (IDs 0..n-1), all free.
func NewNodeSet(n int) *NodeSet {
	if n < 1 {
		panic("cluster: NewNodeSet needs at least one node")
	}
	s := &NodeSet{words: make([]uint64, (n+63)/64), total: n, free: n}
	for i := 0; i < n; i++ {
		s.words[i/64] |= 1 << (i % 64)
	}
	return s
}

// Total returns the machine size.
func (s *NodeSet) Total() int { return s.total }

// Free returns the number of free nodes.
func (s *NodeSet) Free() int { return s.free }

// IsFree reports whether the node is free.
func (s *NodeSet) IsFree(id int) bool {
	if id < 0 || id >= s.total {
		return false
	}
	return s.words[id/64]&(1<<(id%64)) != 0
}

// Alloc claims the k lowest-numbered free nodes and returns their IDs.
func (s *NodeSet) Alloc(k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: Alloc(%d)", k)
	}
	if k > s.free {
		return nil, fmt.Errorf("cluster: Alloc(%d) with %d free", k, s.free)
	}
	ids := make([]int, 0, k)
	for w := range s.words {
		word := s.words[w]
		for word != 0 && len(ids) < k {
			bit := word & (-word) // lowest set bit
			idx := bits.TrailingZeros64(bit)
			id := w*64 + idx
			ids = append(ids, id)
			word &^= bit
			s.words[w] &^= bit
		}
		if len(ids) == k {
			break
		}
	}
	s.free -= k
	return ids, nil
}

// Claim allocates exactly the given nodes. Restoring a compacted
// checkpoint must put every running job back onto its recorded nodes —
// lowest-first Alloc would renumber them — so Claim validates that each
// requested node is free, then takes all of them atomically: on error
// nothing is claimed.
func (s *NodeSet) Claim(ids []int) error {
	for _, id := range ids {
		if id < 0 || id >= s.total {
			return fmt.Errorf("cluster: Claim of invalid node %d", id)
		}
		if s.words[id/64]&(1<<(id%64)) == 0 {
			return fmt.Errorf("cluster: Claim of allocated node %d", id)
		}
	}
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("cluster: Claim of node %d twice", id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		s.words[id/64] &^= 1 << (id % 64)
	}
	s.free -= len(ids)
	return nil
}

// Release frees previously allocated nodes. Releasing a node that is
// already free or out of range is an error (a double-free bug in the
// caller).
func (s *NodeSet) Release(ids []int) error {
	for _, id := range ids {
		if id < 0 || id >= s.total {
			return fmt.Errorf("cluster: Release of invalid node %d", id)
		}
		mask := uint64(1) << (id % 64)
		if s.words[id/64]&mask != 0 {
			return fmt.Errorf("cluster: double release of node %d", id)
		}
		s.words[id/64] |= mask
	}
	s.free += len(ids)
	return nil
}
