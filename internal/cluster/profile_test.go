package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a brute-force reference: free capacity per second over a
// bounded horizon.
type naive struct {
	capacity int
	origin   Time
	free     []int // free[t-origin]
}

func newNaive(capacity int, origin Time, horizon int) *naive {
	n := &naive{capacity: capacity, origin: origin, free: make([]int, horizon)}
	for i := range n.free {
		n.free[i] = capacity
	}
	return n
}

func (n *naive) place(t Time, nodes int, d Duration) {
	for x := t - n.origin; x < t-n.origin+d; x++ {
		n.free[x] -= nodes
	}
}

func (n *naive) unplace(t Time, nodes int, d Duration) {
	for x := t - n.origin; x < t-n.origin+d; x++ {
		n.free[x] += nodes
	}
}

func (n *naive) earliestFit(after Time, nodes int, d Duration) Time {
	for t := after - n.origin; ; t++ {
		ok := true
		for x := t; x < t+d; x++ {
			if int(x) >= len(n.free) {
				break // beyond horizon: fully free
			}
			if n.free[x] < nodes {
				ok = false
				t = x // restart after the blocking second
				break
			}
		}
		if ok {
			return n.origin + t
		}
	}
}

func TestProfileEmpty(t *testing.T) {
	p := New(16, 100)
	if got := p.EarliestFit(100, 16, 1000); got != 100 {
		t.Errorf("EarliestFit on empty profile = %d, want 100", got)
	}
	if got := p.EarliestFit(250, 1, 1); got != 250 {
		t.Errorf("EarliestFit(after=250) = %d, want 250", got)
	}
	if got := p.FreeAt(100); got != 16 {
		t.Errorf("FreeAt(origin) = %d, want 16", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilePlaceThenFit(t *testing.T) {
	p := New(10, 0)
	p.Place(0, 10, 100) // machine full for [0, 100)
	if got := p.EarliestFit(0, 1, 10); got != 100 {
		t.Errorf("fit during full machine = %d, want 100", got)
	}
	p.Place(100, 4, 50) // 6 free in [100, 150)
	if got := p.EarliestFit(0, 6, 50); got != 100 {
		t.Errorf("fit of 6 nodes = %d, want 100", got)
	}
	if got := p.EarliestFit(0, 7, 50); got != 150 {
		t.Errorf("fit of 7 nodes = %d, want 150", got)
	}
	if got := p.EarliestFit(0, 7, 1); got != 150 {
		t.Errorf("fit of short 7-node job = %d, want 150", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFitSpansHole(t *testing.T) {
	p := New(10, 0)
	p.Place(50, 8, 10) // only 2 free in [50, 60)
	// A 3-node 100-second job cannot run through the hole.
	if got := p.EarliestFit(0, 3, 100); got != 60 {
		t.Errorf("fit spanning hole = %d, want 60", got)
	}
	// But it fits before the hole if short enough.
	if got := p.EarliestFit(0, 3, 50); got != 0 {
		t.Errorf("fit before hole = %d, want 0", got)
	}
	// And a 2-node job can run through the hole.
	if got := p.EarliestFit(0, 2, 100); got != 0 {
		t.Errorf("2-node fit through hole = %d, want 0", got)
	}
}

func TestProfileZeroDuration(t *testing.T) {
	p := New(4, 0)
	p.Place(0, 4, 10)
	if got := p.EarliestFit(0, 1, 0); got != 10 {
		t.Errorf("zero-duration fit = %d, want 10", got)
	}
}

func TestProfileUndoRestoresSteps(t *testing.T) {
	p := New(8, 0)
	p.Place(0, 3, 100)
	p.Place(20, 2, 30)
	before := p.Clone()

	pl1 := p.Place(10, 1, 500)
	pl2 := p.Place(50, 2, 25)
	p.Undo(pl2)
	p.Undo(pl1)

	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(p.steps) != len(before.steps) {
		t.Fatalf("undo left %d steps, want %d", len(p.steps), len(before.steps))
	}
	for i := range p.steps {
		if p.steps[i] != before.steps[i] {
			t.Errorf("step %d = %+v, want %+v", i, p.steps[i], before.steps[i])
		}
	}
}

func TestProfilePlacePanicsWhenInfeasible(t *testing.T) {
	p := New(4, 0)
	p.Place(0, 4, 10)
	defer func() {
		if recover() == nil {
			t.Error("Place on a full machine did not panic")
		}
	}()
	p.Place(5, 1, 2)
}

func TestProfileEarliestFitArgValidation(t *testing.T) {
	p := New(4, 0)
	for _, n := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EarliestFit(n=%d) did not panic", n)
				}
			}()
			p.EarliestFit(0, n, 1)
		}()
	}
}

// TestProfileRandomAgainstNaive drives the profile with random
// place/fit/undo sequences and cross-checks every answer against the
// brute-force per-second reference.
func TestProfileRandomAgainstNaive(t *testing.T) {
	const horizon = 400
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		capacity := 1 + rng.Intn(32)
		p := New(capacity, 0)
		ref := newNaive(capacity, 0, horizon)

		type placed struct {
			pl    Placement
			t     Time
			nodes int
			d     Duration
		}
		var stack []placed

		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // place at earliest fit
				nodes := 1 + rng.Intn(capacity)
				d := Duration(1 + rng.Intn(60))
				after := Time(rng.Intn(horizon / 2))
				got := p.EarliestFit(after, nodes, d)
				want := ref.earliestFit(after, nodes, d)
				if got != want {
					t.Fatalf("trial %d step %d: EarliestFit(after=%d, n=%d, d=%d) = %d, want %d",
						trial, step, after, nodes, d, got, want)
				}
				if int(got)+int(d) >= horizon {
					continue // keep the reference in range
				}
				pl := p.Place(got, nodes, d)
				ref.place(got, nodes, d)
				stack = append(stack, placed{pl: pl, t: got, nodes: nodes, d: d})
			case op < 8: // undo last placement (LIFO)
				if len(stack) == 0 {
					continue
				}
				last := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				p.Undo(last.pl)
				ref.unplace(last.t, last.nodes, last.d)
			default: // spot-check FreeAt
				at := Time(rng.Intn(horizon))
				if got, want := p.FreeAt(at), ref.free[at]; got != want {
					t.Fatalf("trial %d step %d: FreeAt(%d) = %d, want %d",
						trial, step, at, got, want)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

// TestProfileFitIsFeasibleAndMinimal is a quick-check property: the
// returned fit time is feasible for the whole duration, and starting one
// second earlier (down to `after`) is infeasible.
func TestProfileFitIsFeasibleAndMinimal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(16)
		p := New(capacity, 0)
		// Random prior load.
		for i := 0; i < rng.Intn(12); i++ {
			n := 1 + rng.Intn(capacity)
			d := Duration(1 + rng.Intn(50))
			t0, _ := p.PlaceEarliest(Time(rng.Intn(100)), n, d)
			_ = t0
		}
		nodes := 1 + rng.Intn(capacity)
		d := Duration(1 + rng.Intn(50))
		after := Time(rng.Intn(100))
		fit := p.EarliestFit(after, nodes, d)
		if fit < after {
			return false
		}
		feasible := func(start Time) bool {
			for x := start; x < start+d; x++ {
				if p.FreeAt(x) < nodes {
					return false
				}
			}
			return true
		}
		if !feasible(fit) {
			return false
		}
		// Minimality: no earlier feasible start in [after, fit).
		for s := fit - 1; s >= after && s > fit-30; s-- {
			if feasible(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileCloneIsIndependent(t *testing.T) {
	p := New(8, 0)
	p.Place(0, 4, 100)
	c := p.Clone()
	c.Place(0, 4, 50)
	if got := p.FreeAt(10); got != 4 {
		t.Errorf("original mutated by clone placement: FreeAt(10) = %d, want 4", got)
	}
	if got := c.FreeAt(10); got != 0 {
		t.Errorf("clone FreeAt(10) = %d, want 0", got)
	}
}

func TestProfileLenGrowth(t *testing.T) {
	p := New(100, 0)
	var pls []Placement
	for i := 0; i < 50; i++ {
		_, pl := p.PlaceEarliest(Time(i), 1, Duration(10+i))
		pls = append(pls, pl)
	}
	if p.Len() > 2*50+1 {
		t.Errorf("profile has %d steps after 50 placements, want <= 101", p.Len())
	}
	for i := len(pls) - 1; i >= 0; i-- {
		p.Undo(pls[i])
	}
	if p.Len() != 1 {
		t.Errorf("profile has %d steps after undoing everything, want 1", p.Len())
	}
}
