package cluster

import (
	"math/rand"
	"testing"
)

func TestNodeSetAllocLowestFirst(t *testing.T) {
	s := NewNodeSet(8)
	ids, err := s.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Errorf("ids = %v, want [0 1 2]", ids)
	}
	if s.Free() != 5 {
		t.Errorf("Free = %d, want 5", s.Free())
	}
	// Release the middle node and re-alloc: lowest free is 1.
	if err := s.Release([]int{1}); err != nil {
		t.Fatal(err)
	}
	ids, err = s.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 1 || ids[1] != 3 {
		t.Errorf("ids = %v, want [1 3]", ids)
	}
}

func TestNodeSetExhaustion(t *testing.T) {
	s := NewNodeSet(4)
	if _, err := s.Alloc(5); err == nil {
		t.Error("over-allocation accepted")
	}
	if _, err := s.Alloc(0); err == nil {
		t.Error("zero allocation accepted")
	}
	ids, _ := s.Alloc(4)
	if s.Free() != 0 {
		t.Fatalf("Free = %d", s.Free())
	}
	if _, err := s.Alloc(1); err == nil {
		t.Error("allocation from empty set accepted")
	}
	if err := s.Release(ids); err != nil {
		t.Fatal(err)
	}
	if s.Free() != 4 {
		t.Errorf("Free = %d after full release", s.Free())
	}
}

func TestNodeSetDoubleReleaseAndBounds(t *testing.T) {
	s := NewNodeSet(4)
	ids, _ := s.Alloc(2)
	if err := s.Release(ids); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(ids); err == nil {
		t.Error("double release accepted")
	}
	if err := s.Release([]int{-1}); err == nil {
		t.Error("negative node accepted")
	}
	if err := s.Release([]int{4}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestNodeSetLargeMachineCrossesWords(t *testing.T) {
	s := NewNodeSet(128)
	a, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(28)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range append(a, b...) {
		if id < 0 || id >= 128 {
			t.Fatalf("node %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("node %d allocated twice", id)
		}
		seen[id] = true
	}
	if len(seen) != 128 || s.Free() != 0 {
		t.Errorf("allocated %d nodes, free %d", len(seen), s.Free())
	}
}

func TestNodeSetRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewNodeSet(77)
	var held [][]int
	heldCount := 0
	for step := 0; step < 5000; step++ {
		if rng.Intn(2) == 0 && s.Free() > 0 {
			k := 1 + rng.Intn(s.Free())
			ids, err := s.Alloc(k)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				if s.IsFree(id) {
					t.Fatalf("allocated node %d still free", id)
				}
			}
			held = append(held, ids)
			heldCount += k
		} else if len(held) > 0 {
			i := rng.Intn(len(held))
			if err := s.Release(held[i]); err != nil {
				t.Fatal(err)
			}
			heldCount -= len(held[i])
			held[i] = held[len(held)-1]
			held = held[:len(held)-1]
		}
		if s.Free() != 77-heldCount {
			t.Fatalf("step %d: Free = %d, want %d", step, s.Free(), 77-heldCount)
		}
	}
}

func TestNodeSetPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewNodeSet(0) did not panic")
		}
	}()
	NewNodeSet(0)
}
