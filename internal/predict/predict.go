// Package predict implements history-based job runtime prediction, the
// paper's second future-work direction ("applying job runtime prediction
// techniques to improve the accuracy of estimated job runtime for
// scheduling"). The reference predictor follows Tsafrir, Etsion &
// Feitelson: predict a job's runtime as the average of the same user's
// two most recent actual runtimes, capped at the user's request (jobs
// are killed at their request limit, so no prediction above it can be
// right).
package predict

import (
	"schedsearch/internal/job"
)

// Estimator produces runtime estimates for arriving jobs and learns
// from completions. The simulator guarantees Observe is called for
// every job that completes before an Estimate call, in simulated-time
// order.
type Estimator interface {
	// Estimate predicts the runtime of an arriving job.
	Estimate(j job.Job) job.Duration
	// Observe records a completed job's actual runtime.
	Observe(j job.Job)
}

// UserHistory is the Tsafrir-style predictor: the average of the user's
// last Window actual runtimes, capped at the job's requested runtime.
// Jobs of unknown users (or users with no history) fall back to the
// request.
type UserHistory struct {
	// Window is the history depth (Tsafrir uses 2).
	Window int
	// history[user] holds up to Window most recent runtimes, newest
	// last.
	history map[int][]job.Duration
}

// NewUserHistory returns the predictor with the conventional window of
// two jobs.
func NewUserHistory() *UserHistory { return &UserHistory{Window: 2} }

// Estimate implements Estimator.
func (p *UserHistory) Estimate(j job.Job) job.Duration {
	hist := p.history[j.User]
	if j.User == 0 || len(hist) == 0 {
		return j.Request
	}
	var sum job.Duration
	for _, t := range hist {
		sum += t
	}
	est := sum / job.Duration(len(hist))
	if est > j.Request {
		est = j.Request
	}
	if est < 1 {
		est = 1
	}
	return est
}

// Observe implements Estimator.
func (p *UserHistory) Observe(j job.Job) {
	if j.User == 0 {
		return
	}
	if p.history == nil {
		p.history = make(map[int][]job.Duration)
	}
	w := p.Window
	if w < 1 {
		w = 1
	}
	hist := append(p.history[j.User], j.Runtime)
	if len(hist) > w {
		hist = hist[len(hist)-w:]
	}
	p.history[j.User] = hist
}

// Accuracy accumulates prediction-quality statistics: for each job it
// compares an estimate against the actual runtime.
type Accuracy struct {
	Jobs int
	// SumAbsErrH is the summed absolute error in hours.
	SumAbsErrH float64
	// Under counts underpredictions (estimate < actual).
	Under int
	// SumRatio accumulates estimate/actual (with the paper's 1-minute
	// floor on actual), so Mean ratio near 1 is ideal.
	SumRatio float64
}

// Record adds one (estimate, actual) observation.
func (a *Accuracy) Record(estimate, actual job.Duration) {
	a.Jobs++
	diff := estimate - actual
	if diff < 0 {
		a.Under++
		diff = -diff
	}
	a.SumAbsErrH += float64(diff) / float64(job.Hour)
	floor := actual
	if floor < job.Minute {
		floor = job.Minute
	}
	a.SumRatio += float64(estimate) / float64(floor)
}

// MeanAbsErrH returns the mean absolute error in hours.
func (a *Accuracy) MeanAbsErrH() float64 {
	if a.Jobs == 0 {
		return 0
	}
	return a.SumAbsErrH / float64(a.Jobs)
}

// MeanRatio returns the mean estimate/actual ratio.
func (a *Accuracy) MeanRatio() float64 {
	if a.Jobs == 0 {
		return 0
	}
	return a.SumRatio / float64(a.Jobs)
}

// UnderFrac returns the fraction of underpredictions.
func (a *Accuracy) UnderFrac() float64 {
	if a.Jobs == 0 {
		return 0
	}
	return float64(a.Under) / float64(a.Jobs)
}
