package predict

import (
	"testing"

	"schedsearch/internal/job"
)

func j(id, user int, runtime, request job.Duration) job.Job {
	return job.Job{ID: id, User: user, Nodes: 1, Runtime: runtime, Request: request}
}

func TestUserHistoryFallsBackToRequest(t *testing.T) {
	p := NewUserHistory()
	if got := p.Estimate(j(1, 7, 100, 500)); got != 500 {
		t.Errorf("no-history estimate = %d, want request 500", got)
	}
	if got := p.Estimate(j(2, 0, 100, 500)); got != 500 {
		t.Errorf("unknown-user estimate = %d, want request 500", got)
	}
}

func TestUserHistoryAveragesLastTwo(t *testing.T) {
	p := NewUserHistory()
	p.Observe(j(1, 7, 100, 500))
	if got := p.Estimate(j(2, 7, 0, 500)); got != 100 {
		t.Errorf("one-job history estimate = %d, want 100", got)
	}
	p.Observe(j(2, 7, 300, 500))
	if got := p.Estimate(j(3, 7, 0, 500)); got != 200 {
		t.Errorf("two-job history estimate = %d, want 200", got)
	}
	// Window slides: a third observation drops the first.
	p.Observe(j(3, 7, 500, 600))
	if got := p.Estimate(j(4, 7, 0, 600)); got != 400 {
		t.Errorf("sliding-window estimate = %d, want (300+500)/2", got)
	}
}

func TestUserHistoryCapsAtRequest(t *testing.T) {
	p := NewUserHistory()
	p.Observe(j(1, 7, 10000, 10000))
	p.Observe(j(2, 7, 10000, 10000))
	if got := p.Estimate(j(3, 7, 0, 600)); got != 600 {
		t.Errorf("estimate = %d, want capped at request 600", got)
	}
}

func TestUserHistoryIsolatesUsers(t *testing.T) {
	p := NewUserHistory()
	p.Observe(j(1, 7, 100, 500))
	if got := p.Estimate(j(2, 8, 0, 500)); got != 500 {
		t.Errorf("user 8 saw user 7's history: %d", got)
	}
}

func TestUserHistoryIgnoresUnknownUserObservations(t *testing.T) {
	p := NewUserHistory()
	p.Observe(j(1, 0, 100, 500))
	if p.history != nil && len(p.history[0]) > 0 {
		t.Error("recorded history for user 0")
	}
}

func TestUserHistoryFloorsAtOneSecond(t *testing.T) {
	p := NewUserHistory()
	p.Observe(j(1, 7, 0, 500))
	if got := p.Estimate(j(2, 7, 0, 500)); got != 1 {
		t.Errorf("estimate = %d, want floor 1", got)
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	a.Record(2*job.Hour, job.Hour) // over by 1h
	a.Record(job.Hour, 2*job.Hour) // under by 1h
	if a.Jobs != 2 {
		t.Fatalf("Jobs = %d", a.Jobs)
	}
	if got := a.MeanAbsErrH(); got != 1 {
		t.Errorf("MeanAbsErrH = %v, want 1", got)
	}
	if got := a.UnderFrac(); got != 0.5 {
		t.Errorf("UnderFrac = %v, want 0.5", got)
	}
	if got := a.MeanRatio(); got != 1.25 { // (2 + 0.5)/2
		t.Errorf("MeanRatio = %v, want 1.25", got)
	}
}

func TestAccuracyShortJobFloor(t *testing.T) {
	var a Accuracy
	a.Record(job.Minute, 1) // actual floored to 1 minute for the ratio
	if got := a.MeanRatio(); got != 1 {
		t.Errorf("MeanRatio = %v, want 1 (1-minute floor)", got)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	var a Accuracy
	if a.MeanAbsErrH() != 0 || a.MeanRatio() != 0 || a.UnderFrac() != 0 {
		t.Error("empty accuracy not zero")
	}
}

func TestUserHistorySingleObservation(t *testing.T) {
	// One completed job is a full prediction basis: the "average" of a
	// single runtime is that runtime, not a blend with the request.
	p := NewUserHistory()
	p.Observe(j(1, 4, 30*job.Minute, 10*job.Hour))
	if got := p.Estimate(j(2, 4, 0, 10*job.Hour)); got != 30*job.Minute {
		t.Errorf("single-history estimate = %v, want 30m", got)
	}
}

func TestUserHistoryZeroHistoryUserAmongOthers(t *testing.T) {
	// A user with no completions falls back to the request even when
	// the predictor holds rich history for everyone else.
	p := NewUserHistory()
	for u := 1; u <= 5; u++ {
		p.Observe(j(u, u, job.Hour, 2*job.Hour))
		p.Observe(j(u+10, u, job.Hour, 2*job.Hour))
	}
	if got := p.Estimate(j(100, 9, 0, 7*job.Hour)); got != 7*job.Hour {
		t.Errorf("zero-history user estimate = %v, want the request (7h)", got)
	}
}

func TestUserHistoryObservedRuntimeAboveOwnRequest(t *testing.T) {
	// History can hold runtimes longer than a NEW job's request (the
	// user asked for less this time); the cap must apply at estimate
	// time, per job, not at observation time.
	p := NewUserHistory()
	p.Observe(j(1, 3, 8*job.Hour, 8*job.Hour))
	p.Observe(j(2, 3, 6*job.Hour, 6*job.Hour))
	if got := p.Estimate(j(3, 3, 0, job.Hour)); got != job.Hour {
		t.Errorf("estimate = %v, want capped at the new request (1h)", got)
	}
	// And the uncapped history is still intact for a roomier request.
	if got := p.Estimate(j(4, 3, 0, 24*job.Hour)); got != 7*job.Hour {
		t.Errorf("estimate = %v, want the 7h history average", got)
	}
}

func TestUserHistoryZeroWindowActsAsOne(t *testing.T) {
	p := &UserHistory{Window: 0}
	p.Observe(j(1, 2, job.Hour, 2*job.Hour))
	p.Observe(j(2, 2, 3*job.Hour, 4*job.Hour))
	// Window 0 clamps to 1: only the newest runtime is kept.
	if got := p.Estimate(j(3, 2, 0, 10*job.Hour)); got != 3*job.Hour {
		t.Errorf("window-0 estimate = %v, want newest runtime (3h)", got)
	}
}

func TestUserHistoryEstimateDoesNotLearn(t *testing.T) {
	// Estimate must be read-only: asking twice (or for a different
	// user) must not seed history.
	p := NewUserHistory()
	p.Estimate(j(1, 6, 0, job.Hour))
	p.Estimate(j(2, 6, 0, job.Hour))
	if got := p.Estimate(j(3, 6, 0, 5*job.Hour)); got != 5*job.Hour {
		t.Errorf("estimate after estimates = %v, want the request (5h)", got)
	}
}
