package job

import (
	"fmt"
	"math"
)

// NodeRange is an inclusive range of requested node counts, used to
// classify jobs the way the paper's tables and figures do.
type NodeRange struct {
	Lo, Hi int
}

// Contains reports whether n falls in the range.
func (r NodeRange) Contains(n int) bool { return n >= r.Lo && n <= r.Hi }

// String renders the range like the paper's column headers ("1", "3-4").
func (r NodeRange) String() string {
	if r.Lo == r.Hi {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// RuntimeRange is a half-open range (Lo, Hi] of actual runtimes in
// seconds; Lo = 0 means "from zero", Hi = MaxRuntime means unbounded.
type RuntimeRange struct {
	Lo, Hi Duration
}

// MaxRuntime is the sentinel upper bound for unbounded runtime ranges.
const MaxRuntime Duration = math.MaxInt64 / 4

// Contains reports whether t falls in (Lo, Hi].
func (r RuntimeRange) Contains(t Duration) bool { return t > r.Lo && t <= r.Hi }

// String renders the range using the paper's axis conventions.
func (r RuntimeRange) String() string {
	format := func(d Duration) string {
		switch {
		case d >= MaxRuntime:
			return "inf"
		case d%Hour == 0:
			return fmt.Sprintf("%dh", d/Hour)
		default:
			return fmt.Sprintf("%dm", d/Minute)
		}
	}
	if r.Lo == 0 {
		return "<=" + format(r.Hi)
	}
	if r.Hi >= MaxRuntime {
		return ">" + format(r.Lo)
	}
	return fmt.Sprintf("(%s,%s]", format(r.Lo), format(r.Hi))
}

// Table3NodeRanges are the eight requested-node ranges of the paper's
// Table 3 (monthly job-mix overview).
var Table3NodeRanges = []NodeRange{
	{1, 1}, {2, 2}, {3, 4}, {5, 8}, {9, 16}, {17, 32}, {33, 64}, {65, 128},
}

// Table4NodeClasses are the five node classes of the paper's Table 4
// (runtime-distribution overview).
var Table4NodeClasses = []NodeRange{
	{1, 1}, {2, 2}, {3, 8}, {9, 32}, {33, 128},
}

// Fig5NodeClasses are the five node classes of the paper's Figure 5
// (per-class average wait surface).
var Fig5NodeClasses = []NodeRange{
	{1, 1}, {2, 8}, {9, 32}, {33, 64}, {65, 128},
}

// Fig5RuntimeClasses are the five actual-runtime classes of Figure 5:
// up to 10 minutes, 1 hour, 4 hours, 8 hours, and beyond.
var Fig5RuntimeClasses = []RuntimeRange{
	{0, 10 * Minute},
	{10 * Minute, Hour},
	{Hour, 4 * Hour},
	{4 * Hour, 8 * Hour},
	{8 * Hour, MaxRuntime},
}

// ClassifyNodes returns the index of the range in ranges containing n,
// or -1 if none does.
func ClassifyNodes(ranges []NodeRange, n int) int {
	for i, r := range ranges {
		if r.Contains(n) {
			return i
		}
	}
	return -1
}

// ClassifyRuntime returns the index of the range in ranges containing t,
// or -1 if none does.
func ClassifyRuntime(ranges []RuntimeRange, t Duration) int {
	for i, r := range ranges {
		if r.Contains(t) {
			return i
		}
	}
	return -1
}
