package job

import "testing"

func TestNodeRangeString(t *testing.T) {
	if got := (NodeRange{1, 1}).String(); got != "1" {
		t.Errorf("String = %q", got)
	}
	if got := (NodeRange{3, 4}).String(); got != "3-4" {
		t.Errorf("String = %q", got)
	}
}

func TestTable3RangesPartitionCapacity(t *testing.T) {
	// Every node count 1..128 falls in exactly one Table 3 range.
	for n := 1; n <= 128; n++ {
		count := 0
		for _, r := range Table3NodeRanges {
			if r.Contains(n) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("node count %d falls in %d Table 3 ranges", n, count)
		}
	}
}

func TestTable4AndFig5ClassesPartitionCapacity(t *testing.T) {
	for _, classes := range [][]NodeRange{Table4NodeClasses, Fig5NodeClasses} {
		for n := 1; n <= 128; n++ {
			if ClassifyNodes(classes, n) < 0 {
				t.Errorf("node count %d unclassified", n)
			}
		}
	}
}

func TestFig5RuntimeClassesPartition(t *testing.T) {
	for _, rt := range []Duration{1, 60, 10 * Minute, 10*Minute + 1, Hour, 4 * Hour, 8 * Hour, 24 * Hour, 1000 * Hour} {
		count := 0
		for _, r := range Fig5RuntimeClasses {
			if r.Contains(rt) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("runtime %d falls in %d Figure 5 classes", rt, count)
		}
	}
}

func TestClassifyNodes(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {16, 4}, {32, 5}, {64, 6}, {128, 7},
	}
	for _, c := range cases {
		if got := ClassifyNodes(Table3NodeRanges, c.n); got != c.want {
			t.Errorf("ClassifyNodes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if got := ClassifyNodes(Table3NodeRanges, 0); got != -1 {
		t.Errorf("ClassifyNodes(0) = %d, want -1", got)
	}
	if got := ClassifyNodes(Table3NodeRanges, 500); got != -1 {
		t.Errorf("ClassifyNodes(500) = %d, want -1", got)
	}
}

func TestClassifyRuntimeBoundaries(t *testing.T) {
	// (Lo, Hi] semantics: exactly 10 minutes belongs to the first class.
	if got := ClassifyRuntime(Fig5RuntimeClasses, 10*Minute); got != 0 {
		t.Errorf("10m class = %d, want 0", got)
	}
	if got := ClassifyRuntime(Fig5RuntimeClasses, 10*Minute+1); got != 1 {
		t.Errorf("10m+1s class = %d, want 1", got)
	}
	if got := ClassifyRuntime(Fig5RuntimeClasses, 0); got != -1 {
		t.Errorf("0s class = %d, want -1 (exclusive lower bound)", got)
	}
}

func TestRuntimeRangeString(t *testing.T) {
	if got := (RuntimeRange{0, 10 * Minute}).String(); got != "<=10m" {
		t.Errorf("String = %q", got)
	}
	if got := (RuntimeRange{8 * Hour, MaxRuntime}).String(); got != ">8h" {
		t.Errorf("String = %q", got)
	}
	if got := (RuntimeRange{Hour, 4 * Hour}).String(); got != "(1h,4h]" {
		t.Errorf("String = %q", got)
	}
}
