// Package job defines the parallel-job model shared by the workload
// generator, the simulator, the scheduling policies and the metrics:
// a rigid job requesting a number of nodes and a runtime, plus the
// derived per-job performance measures used in the paper (wait,
// slowdown, bounded slowdown, excessive wait).
//
// All times are int64 seconds on the simulation timeline (0 = timeline
// origin); durations are int64 seconds.
package job

import "fmt"

// Time and duration aliases document intent; both are seconds.
type (
	// Time is an absolute instant on the simulation timeline, in seconds.
	Time = int64
	// Duration is a span of simulated time, in seconds.
	Duration = int64
)

// Common duration constants, in seconds.
const (
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
	Week   Duration = 7 * Day
)

// BoundedSlowdownFloor lower-bounds the runtime used in the bounded
// slowdown measure: jobs shorter than one minute are treated as
// one-minute jobs, following Mu'alem & Feitelson and the paper (Sec. 4).
const BoundedSlowdownFloor Duration = Minute

// Job is one rigid parallel job as submitted by a user.
type Job struct {
	// ID uniquely identifies the job within a trace.
	ID int
	// Submit is the job's arrival (submission) time.
	Submit Time
	// Nodes is the number of whole nodes requested; the node is the
	// smallest allocation unit on the modeled system.
	Nodes int
	// Runtime is the actual runtime T the job will execute for.
	Runtime Duration
	// Request is the user-requested runtime R (the runtime the
	// scheduler is told when it is not given actual runtimes).
	// Request >= Runtime on the modeled system, because jobs are
	// killed at their request limit.
	Request Duration
	// User identifies the submitting user (0 = unknown). User
	// identities feed the runtime-prediction and fairshare extensions;
	// the core policies ignore them.
	User int
}

// Validate reports whether the job is well-formed for a system with the
// given node capacity.
func (j Job) Validate(capacity int) error {
	switch {
	case j.Nodes < 1:
		return fmt.Errorf("job %d: requests %d nodes", j.ID, j.Nodes)
	case j.Nodes > capacity:
		return fmt.Errorf("job %d: requests %d nodes > capacity %d", j.ID, j.Nodes, capacity)
	case j.Runtime < 0:
		return fmt.Errorf("job %d: negative runtime %d", j.ID, j.Runtime)
	case j.Request < j.Runtime:
		return fmt.Errorf("job %d: request %d < runtime %d", j.ID, j.Request, j.Runtime)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	}
	return nil
}

// Demand returns the job's processor demand N×T in node-seconds.
func (j Job) Demand() int64 { return int64(j.Nodes) * j.Runtime }

// Wait returns the job's wait time given its start time.
func Wait(j Job, start Time) Duration { return start - j.Submit }

// Slowdown returns the job's (unbounded) slowdown given its start time:
// turnaround time divided by actual runtime.
func Slowdown(j Job, start Time) float64 {
	rt := j.Runtime
	if rt <= 0 {
		rt = 1
	}
	return float64(start-j.Submit+j.Runtime) / float64(rt)
}

// BoundedSlowdown returns the job's bounded slowdown given its start
// time, with actual runtime floored at BoundedSlowdownFloor. For a job
// shorter than one minute this equals 1 + wait-in-minutes, as in the
// paper.
func BoundedSlowdown(j Job, start Time) float64 {
	return BoundedSlowdownAt(j.Submit, j.Runtime, start)
}

// BoundedSlowdownAt is BoundedSlowdown over raw fields; policies use it
// with the runtime estimate they are allowed to see (actual or
// requested).
func BoundedSlowdownAt(submit Time, runtime Duration, start Time) float64 {
	rt := runtime
	if rt < BoundedSlowdownFloor {
		rt = BoundedSlowdownFloor
	}
	wait := start - submit
	if wait < 0 {
		wait = 0
	}
	return float64(wait+rt) / float64(rt)
}

// ExcessiveWait returns the job's wait time in excess of the threshold
// bound, or 0 if the wait is within the bound. The paper calls this the
// normalized excessive wait.
func ExcessiveWait(j Job, start Time, bound Duration) Duration {
	ex := Wait(j, start) - bound
	if ex < 0 {
		return 0
	}
	return ex
}

// ByID sorts jobs by ID (stable tiebreak by submit time).
type ByID []Job

func (s ByID) Len() int      { return len(s) }
func (s ByID) Swap(i, k int) { s[i], s[k] = s[k], s[i] }
func (s ByID) Less(i, k int) bool {
	if s[i].ID != s[k].ID {
		return s[i].ID < s[k].ID
	}
	return s[i].Submit < s[k].Submit
}

// BySubmit sorts jobs by submit time (tiebreak by ID), the canonical
// trace order.
type BySubmit []Job

func (s BySubmit) Len() int      { return len(s) }
func (s BySubmit) Swap(i, k int) { s[i], s[k] = s[k], s[i] }
func (s BySubmit) Less(i, k int) bool {
	if s[i].Submit != s[k].Submit {
		return s[i].Submit < s[k].Submit
	}
	return s[i].ID < s[k].ID
}
