package job

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Job{ID: 1, Submit: 0, Nodes: 4, Runtime: 100, Request: 200}
	if err := good.Validate(128); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []Job{
		{ID: 1, Nodes: 0, Runtime: 1, Request: 1},
		{ID: 1, Nodes: 129, Runtime: 1, Request: 1},
		{ID: 1, Nodes: 1, Runtime: -1, Request: 1},
		{ID: 1, Nodes: 1, Runtime: 10, Request: 5},
		{ID: 1, Submit: -1, Nodes: 1, Runtime: 1, Request: 1},
	}
	for _, j := range cases {
		if err := j.Validate(128); err == nil {
			t.Errorf("invalid job %+v accepted", j)
		}
	}
}

func TestDemand(t *testing.T) {
	j := Job{Nodes: 16, Runtime: 3600}
	if got := j.Demand(); got != 16*3600 {
		t.Errorf("Demand = %d", got)
	}
}

func TestWaitAndSlowdown(t *testing.T) {
	j := Job{Submit: 100, Runtime: 200}
	if got := Wait(j, 300); got != 200 {
		t.Errorf("Wait = %d", got)
	}
	// slowdown = (wait + runtime)/runtime = (200+200)/200 = 2.
	if got := Slowdown(j, 300); got != 2 {
		t.Errorf("Slowdown = %v", got)
	}
}

func TestBoundedSlowdownFloorRule(t *testing.T) {
	// Paper: jobs under 1 minute have bounded slowdown 1 + wait in
	// minutes, same as 1-minute jobs.
	short := Job{Submit: 0, Runtime: 10}
	oneMin := Job{Submit: 0, Runtime: 60}
	for _, wait := range []Time{0, 60, 300, 3600} {
		a := BoundedSlowdown(short, wait)
		b := BoundedSlowdown(oneMin, wait)
		if a != b {
			t.Errorf("wait %d: sub-minute job bsld %v != 1-minute job bsld %v", wait, a, b)
		}
		want := 1 + float64(wait)/60
		if a != want {
			t.Errorf("wait %d: bsld = %v, want %v", wait, a, want)
		}
	}
}

func TestBoundedSlowdownNeverBelowOne(t *testing.T) {
	prop := func(submit int16, runtime uint16, extra uint16) bool {
		j := Job{Submit: Time(submit), Runtime: Duration(runtime)}
		start := j.Submit + Time(extra)
		return BoundedSlowdown(j, start) >= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExcessiveWait(t *testing.T) {
	j := Job{Submit: 0, Runtime: 60}
	if got := ExcessiveWait(j, 100, 200); got != 0 {
		t.Errorf("within bound: %d, want 0", got)
	}
	if got := ExcessiveWait(j, 300, 200); got != 100 {
		t.Errorf("past bound: %d, want 100", got)
	}
	if got := ExcessiveWait(j, 200, 200); got != 0 {
		t.Errorf("exactly at bound: %d, want 0", got)
	}
}

func TestSortOrders(t *testing.T) {
	jobs := []Job{
		{ID: 3, Submit: 100},
		{ID: 1, Submit: 300},
		{ID: 2, Submit: 100},
	}
	bySubmit := append([]Job(nil), jobs...)
	sort.Sort(BySubmit(bySubmit))
	if bySubmit[0].ID != 2 || bySubmit[1].ID != 3 || bySubmit[2].ID != 1 {
		t.Errorf("BySubmit order: %v", bySubmit)
	}
	byID := append([]Job(nil), jobs...)
	sort.Sort(ByID(byID))
	if byID[0].ID != 1 || byID[1].ID != 2 || byID[2].ID != 3 {
		t.Errorf("ByID order: %v", byID)
	}
}
