package obs

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestWriteTraceGolden pins the Chrome trace-event byte format against
// testdata/trace_golden.json: a pinned clock and ID seed make the
// export fully deterministic, so any change to the on-disk trace
// schema shows up as a byte diff here before it breaks a Perfetto
// consumer.
func TestWriteTraceGolden(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	tr := NewTracer(TracerOptions{Seed: 42, Now: func() time.Time { return base }})
	tc := tr.Mint()
	tr.Bind(7, tc)
	tr.Record("submit", tc, 7, 0, base.Add(3*time.Microsecond), 12*time.Microsecond)
	tr.Record("route", tc, 7, 0, base.Add(16*time.Microsecond), 40*time.Microsecond)
	tr.Record("admit", tc, 7, 2, base.Add(31*time.Microsecond), 9*time.Microsecond)
	tr.Record("decide", tc, 7, 2, base.Add(120*time.Microsecond), 350*time.Microsecond)
	var sb strings.Builder
	if err := tr.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/trace_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != string(want) {
		t.Fatalf("trace-event format drifted from golden.\ngot:  %s\nwant: %s", got, want)
	}
}
