package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the repo's standard structured logger: leveled
// slog text records on w, every record tagged with the component
// (schedd, router, shard-3, ...).
func NewLogger(w io.Writer, component string) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil)).With("component", component)
}

// NopLogger returns a logger that discards every record — the default
// for library types whose caller wired no logger, so logging sites
// never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// TraceAttr renders a trace context as the standard "trace" log
// attribute, so log lines join up with trace spans.
func TraceAttr(tc TraceContext) slog.Attr {
	return slog.String("trace", tc.String())
}
