package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed, named unit of work attributed to a trace:
// route/probe on the router, submit/admit on the receiving server,
// decide on the shard engine, migrate/reconcile on rebalance paths.
type Span struct {
	Name    string
	TraceID uint64
	SpanID  uint64
	Parent  uint64
	JobID   int
	Shard   int
	Start   time.Time
	Dur     time.Duration
}

// SpanStat aggregates one span name's durations for the Prometheus
// exposition.
type SpanStat struct {
	Count   int64
	TotalNs int64
}

// TracerOptions configure a Tracer; the zero value gives sensible
// bounds, wall-clock time and a time-derived ID seed.
type TracerOptions struct {
	// MaxSpans bounds the retained span buffer (default 1<<17); spans
	// past the bound are dropped from the export but still counted in
	// the per-name stats.
	MaxSpans int
	// MaxJobs bounds the job ID -> trace context registry (default
	// 1<<16, FIFO eviction).
	MaxJobs int
	// Now supplies timestamps (default time.Now). Tests pin it for
	// byte-stable trace output.
	Now func() time.Time
	// Seed seeds the span/trace ID sequence (default from Now); a
	// fixed seed makes minted IDs reproducible for golden tests.
	Seed uint64
}

// Tracer mints trace contexts, keeps the bounded job registry that
// carries a context from submit to the decide that starts the job, and
// collects completed spans for the Chrome trace-event export and the
// per-span-name Prometheus series. All methods are goroutine-safe. A
// nil *Tracer is a valid "tracing off" value: every method no-ops.
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Time
	epoch   time.Time
	rng     uint64
	spans   []Span
	max     int
	dropped int64
	stats   map[string]*SpanStat
	byJob   map[int]TraceContext
	order   []int
	maxJobs int
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 1 << 17
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1 << 16
	}
	t := &Tracer{
		now:     opts.Now,
		max:     opts.MaxSpans,
		maxJobs: opts.MaxJobs,
		stats:   make(map[string]*SpanStat),
		byJob:   make(map[int]TraceContext),
	}
	t.epoch = t.now()
	t.rng = opts.Seed
	if t.rng == 0 {
		t.rng = uint64(t.epoch.UnixNano()) | 1
	}
	return t
}

// nextID steps the splitmix64 sequence; the caller holds t.mu.
func (t *Tracer) nextID() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Now returns the tracer's clock reading (span start timestamps come
// from here so pinned-clock tests stay byte-stable).
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// Mint creates a fresh trace context (new trace ID, new root span ID).
func (t *Tracer) Mint() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceContext{TraceID: t.nextID(), SpanID: t.nextID()}
}

// ParseOrMint parses an incoming trace header, minting a fresh context
// when the header is absent or malformed. parsed reports which: a
// parsed context means this process continues a remote caller's trace
// (an "admit" hop), a minted one means the trace starts here.
func (t *Tracer) ParseOrMint(header string) (tc TraceContext, parsed bool) {
	if t == nil {
		return TraceContext{}, false
	}
	if tc, ok := ParseTraceContext(header); ok {
		return tc, true
	}
	return t.Mint(), false
}

// Bind associates a job ID with its trace context so later hops (the
// decide that starts the job, shard wire calls about it) can pick the
// trace back up. The registry is bounded with FIFO eviction.
func (t *Tracer) Bind(jobID int, tc TraceContext) {
	if t == nil || jobID < 1 || !tc.Valid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byJob[jobID]; !ok {
		t.order = append(t.order, jobID)
		for len(t.order) > t.maxJobs {
			delete(t.byJob, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.byJob[jobID] = tc
}

// Lookup returns the job's bound trace context.
func (t *Tracer) Lookup(jobID int) (TraceContext, bool) {
	if t == nil {
		return TraceContext{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tc, ok := t.byJob[jobID]
	return tc, ok
}

// Header returns the wire header value for the job's trace, or "" when
// the job has no bound trace (the caller then sends no header).
func (t *Tracer) Header(jobID int) string {
	tc, ok := t.Lookup(jobID)
	if !ok {
		return ""
	}
	return tc.String()
}

// Record completes a span: a child of tc (the new span's parent is
// tc.SpanID) named name, attributed to jobID (0 = none) on shard,
// spanning [start, start+dur). Stats are always counted; the span
// itself is kept only while the buffer has room.
func (t *Tracer) Record(name string, tc TraceContext, jobID, shard int, start time.Time, dur time.Duration) {
	if t == nil || !tc.Valid() {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[name]
	if st == nil {
		st = &SpanStat{}
		t.stats[name] = st
	}
	st.Count++
	st.TotalNs += dur.Nanoseconds()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{
		Name: name, TraceID: tc.TraceID, SpanID: t.nextID(), Parent: tc.SpanID,
		JobID: jobID, Shard: shard, Start: start, Dur: dur,
	})
}

// Stats returns a copy of the per-span-name duration aggregates.
func (t *Tracer) Stats() map[string]SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]SpanStat, len(t.stats))
	for k, v := range t.stats {
		out[k] = *v
	}
	return out
}

// Dropped reports spans lost to the buffer bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// JobCoverage reports how many distinct traced jobs have a span of
// every required name, out of all distinct traced jobs — the span-tree
// completeness measure the federation keystone asserts on.
func (t *Tracer) JobCoverage(required ...string) (covered, total int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make(map[int]map[string]bool)
	for i := range t.spans {
		sp := &t.spans[i]
		if sp.JobID < 1 {
			continue
		}
		m := names[sp.JobID]
		if m == nil {
			m = make(map[string]bool, 4)
			names[sp.JobID] = m
		}
		m[sp.Name] = true
	}
	total = len(names)
	for _, m := range names {
		ok := true
		for _, want := range required {
			if !m[want] {
				ok = false
				break
			}
		}
		if ok {
			covered++
		}
	}
	return covered, total
}

// WriteTrace emits the retained spans as Chrome trace-event JSON
// (the "traceEvents" array of complete "X" events, timestamps in
// microseconds since the tracer epoch) — loadable directly in
// Perfetto or chrome://tracing with zero external dependencies.
// Events are ordered by start time (record order breaks ties) so the
// output is stable for golden tests.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	epoch := t.epoch
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, k int) bool { return spans[i].Start.Before(spans[k].Start) })
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	for i := range spans {
		sp := &spans[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw,
			`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{"trace":"%016x","span":"%016x","parent":"%016x","job":%d}}`,
			sp.Name, sp.Start.Sub(epoch).Microseconds(), sp.Dur.Microseconds(),
			sp.Shard, sp.TraceID, sp.SpanID, sp.Parent, sp.JobID)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
