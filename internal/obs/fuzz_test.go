package obs

import "testing"

// FuzzTraceContext pins the submit-path guarantee: any header —
// malformed, oversized, adversarial — either parses to a valid
// context that round-trips byte-identically, or is rejected so the
// receiver mints a fresh trace. Never a panic, never an error.
func FuzzTraceContext(f *testing.F) {
	f.Add("")
	f.Add("0123456789abcdef-0123456789abcdef")
	f.Add("0000000000000000-0000000000000000")
	f.Add("ffffffffffffffff-ffffffffffffffff")
	f.Add("DEADBEEFCAFEF00D-0123456789abcdef")
	f.Add("0123456789abcdef_0123456789abcdef")
	f.Add("0123456789abcdef-0123456789abcde")
	f.Add("g123456789abcdef-0123456789abcdef")
	f.Add("0123456789abcdef-0123456789abcdef-0123456789abcdef")
	f.Fuzz(func(t *testing.T, h string) {
		tc, ok := ParseTraceContext(h)
		if !ok {
			if tc != (TraceContext{}) {
				t.Fatalf("rejected header %q returned non-zero context %v", h, tc)
			}
			// The degrade path: the tracer mints instead of failing.
			tr := NewTracer(TracerOptions{Seed: 1})
			minted, parsed := tr.ParseOrMint(h)
			if parsed || !minted.Valid() {
				t.Fatalf("ParseOrMint(%q) = %v parsed=%v", h, minted, parsed)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted header %q with zero trace ID", h)
		}
		if got := tc.String(); got != h {
			t.Fatalf("accepted header %q does not round-trip: %q", h, got)
		}
	})
}
