// Package obs is the observability layer: a decision flight recorder
// (bounded ring of structured per-decision records), cross-process
// trace propagation (trace/span IDs minted at submit and carried on
// every shard wire call), Chrome trace-event export, latency
// histograms, runtime self-metrics and structured-logging helpers.
//
// The package is a leaf — it imports only the standard library — so
// core, engine, server, federation and the cmds can all attach to it
// without cycles. Everything here is strictly passive: instrumentation
// must never change a scheduling decision, which the suite-wide
// inertness differentials pin down (tracing on vs. off stays
// bit-identical across every suite month).
package obs

// TraceHeader is the HTTP header carrying the trace context on every
// cross-process call: submits through the front-end, and every
// /v1/shard/* request a federation router makes to a remote shard.
const TraceHeader = "X-Schedsearch-Trace"

// TraceContext identifies one request's position in a trace: the
// trace ID shared by every span of the job's journey, and the span ID
// of the caller's current span (the parent of whatever span the
// receiver opens).
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a real trace (a zero
// trace ID is "no trace").
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// String renders the canonical wire form: 16 lowercase hex digits of
// trace ID, a dash, 16 of span ID.
func (tc TraceContext) String() string {
	var b [33]byte
	putHex16(b[0:16], tc.TraceID)
	b[16] = '-'
	putHex16(b[17:33], tc.SpanID)
	return string(b[:])
}

func putHex16(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// ParseTraceContext parses the canonical wire form. It is deliberately
// strict (exactly 33 bytes, lowercase hex, non-zero trace ID) and
// never returns an error: a malformed, oversized or zero header yields
// ok=false and the receiver mints a fresh trace instead — a bad header
// must never fail a submit.
func ParseTraceContext(h string) (TraceContext, bool) {
	if len(h) != 33 || h[16] != '-' {
		return TraceContext{}, false
	}
	tid, ok := parseHex16(h[:16])
	if !ok || tid == 0 {
		return TraceContext{}, false
	}
	sid, ok := parseHex16(h[17:])
	if !ok {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tid, SpanID: sid}, true
}

func parseHex16(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
