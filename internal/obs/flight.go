package obs

import "sync"

// TrajectoryPoint is one improvement of the incumbent during a search
// decision: after Nodes expansions the best cost dropped to
// (Excess, Slowdown).
type TrajectoryPoint struct {
	Nodes    int64   `json:"nodes"`
	Excess   float64 `json:"excess_wait_s"`
	Slowdown float64 `json:"bounded_slowdown"`
}

// DecisionRecord is one scheduling decision as the flight recorder
// keeps it: what the policy saw, how hard the search worked, how the
// incumbent evolved, and what was committed.
type DecisionRecord struct {
	// Seq numbers decisions since process start (assigned by the ring).
	Seq int64 `json:"seq"`
	// NowS is the engine-clock instant of the decision.
	NowS int64 `json:"now_s"`
	// Policy is the deciding policy's name.
	Policy string `json:"policy"`
	// QueueDepth is the waiting-queue length the policy saw.
	QueueDepth int `json:"queue_depth"`
	// EffectiveLimit is the node budget after SLO adaptation (search
	// policies; 0 for heuristic baselines).
	EffectiveLimit int64 `json:"effective_limit,omitempty"`
	// Nodes/Leaves/Pruned count search-tree work this decision.
	Nodes  int64 `json:"nodes,omitempty"`
	Leaves int64 `json:"leaves,omitempty"`
	Pruned int64 `json:"pruned,omitempty"`
	// NodesToBest is how deep into the expansion the final incumbent
	// was found.
	NodesToBest int64 `json:"nodes_to_best,omitempty"`
	// BudgetHit marks a search cut off by its node budget.
	BudgetHit bool `json:"budget_hit,omitempty"`
	// WarmSeeded marks a decision seeded from the previous best plan;
	// SeedHeld that the seed survived as the final incumbent.
	WarmSeeded bool `json:"warm_seeded,omitempty"`
	SeedHeld   bool `json:"seed_held,omitempty"`
	// Parallel marks a multi-worker search.
	Parallel bool `json:"parallel,omitempty"`
	// BestExcess/BestSlowdown are the committed plan's objective
	// (hierarchical cost levels).
	BestExcess   float64 `json:"best_excess_wait_s,omitempty"`
	BestSlowdown float64 `json:"best_bounded_slowdown,omitempty"`
	// Trajectory is the incumbent-cost improvement sequence.
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
	// ChosenPolicy is the portfolio member a meta-scheduler committed
	// this decision (empty for fixed policies); MetaRegret is its
	// per-decision regret estimate — the chosen plan's score minus the
	// best shadow plan's.
	ChosenPolicy string  `json:"chosen_policy,omitempty"`
	MetaRegret   float64 `json:"meta_regret,omitempty"`
	// Started lists the job IDs the decision started, in commit order.
	Started []int `json:"started,omitempty"`
	// WallUs is the decision's wall time in microseconds.
	WallUs int64 `json:"wall_us"`
}

// FlightRecorder is a bounded ring of the most recent decisions.
// Record copies into a reused slot (no per-decision allocation once
// the ring has wrapped), so it is cheap enough to leave on in
// production. A nil *FlightRecorder no-ops.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []DecisionRecord
	next int
	n    int
	seq  int64
}

// NewFlightRecorder builds a ring keeping the last size decisions
// (minimum 16; size <= 0 gets the 256 default).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 256
	}
	if size < 16 {
		size = 16
	}
	return &FlightRecorder{ring: make([]DecisionRecord, size)}
}

// Record captures one decision. rec's slices are copied into the
// slot's reused backing arrays; the caller may reuse rec freely.
func (f *FlightRecorder) Record(rec *DecisionRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	slot := &f.ring[f.next]
	started := slot.Started[:0]
	traj := slot.Trajectory[:0]
	*slot = *rec
	slot.Seq = f.seq
	slot.Started = append(started, rec.Started...)
	slot.Trajectory = append(traj, rec.Trajectory...)
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
}

// Len reports how many records the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Total reports how many decisions have ever been recorded.
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Snapshot returns the held records oldest-first, deep-copied.
func (f *FlightRecorder) Snapshot() []DecisionRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DecisionRecord, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.n; i++ {
		rec := f.ring[(start+i)%len(f.ring)]
		rec.Started = append([]int(nil), rec.Started...)
		rec.Trajectory = append([]TrajectoryPoint(nil), rec.Trajectory...)
		out = append(out, rec)
	}
	return out
}
