package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: 1, SpanID: 0},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef},
		{TraceID: ^uint64(0), SpanID: ^uint64(0)},
	}
	for _, tc := range cases {
		h := tc.String()
		if len(h) != 33 {
			t.Fatalf("header %q: len %d", h, len(h))
		}
		got, ok := ParseTraceContext(h)
		if !ok || got != tc {
			t.Fatalf("round trip %v -> %q -> %v ok=%v", tc, h, got, ok)
		}
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	bad := []string{
		"",
		"xyz",
		strings.Repeat("0", 33),              // no dash
		"0000000000000000-0000000000000000",  // zero trace ID
		"DEADBEEFCAFEF00D-0123456789abcdef",  // uppercase is not canonical
		"deadbeefcafef00d-0123456789abcde",   // short span
		"deadbeefcafef00d-0123456789abcdef0", // long
		"deadbeefcafef00d_0123456789abcdef",  // wrong separator
		strings.Repeat("a", 4096) + "-" + strings.Repeat("b", 4096), // oversized
	}
	for _, h := range bad {
		if _, ok := ParseTraceContext(h); ok {
			t.Errorf("ParseTraceContext(%.40q) accepted", h)
		}
	}
}

func TestTracerMintBindLookup(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 7})
	tc := tr.Mint()
	if !tc.Valid() || tc.SpanID == 0 {
		t.Fatalf("minted %v", tc)
	}
	tr.Bind(42, tc)
	got, ok := tr.Lookup(42)
	if !ok || got != tc {
		t.Fatalf("lookup: %v ok=%v", got, ok)
	}
	if h := tr.Header(42); h != tc.String() {
		t.Fatalf("header %q want %q", h, tc.String())
	}
	if h := tr.Header(43); h != "" {
		t.Fatalf("unbound job header %q", h)
	}
	// ParseOrMint: a valid header continues the trace, junk mints.
	got2, parsed := tr.ParseOrMint(tc.String())
	if !parsed || got2 != tc {
		t.Fatalf("ParseOrMint valid: %v parsed=%v", got2, parsed)
	}
	got3, parsed := tr.ParseOrMint("garbage")
	if parsed || !got3.Valid() || got3.TraceID == tc.TraceID {
		t.Fatalf("ParseOrMint junk: %v parsed=%v", got3, parsed)
	}
}

func TestTracerBindEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 1, MaxJobs: 4})
	for id := 1; id <= 6; id++ {
		tr.Bind(id, TraceContext{TraceID: uint64(id), SpanID: 1})
	}
	for id := 1; id <= 2; id++ {
		if _, ok := tr.Lookup(id); ok {
			t.Errorf("job %d should have been evicted", id)
		}
	}
	for id := 3; id <= 6; id++ {
		if tc, ok := tr.Lookup(id); !ok || tc.TraceID != uint64(id) {
			t.Errorf("job %d: %v ok=%v", id, tc, ok)
		}
	}
}

func TestTracerSpanBoundAndStats(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 1, MaxSpans: 2})
	tc := tr.Mint()
	for i := 0; i < 5; i++ {
		tr.Record("decide", tc, i+1, 0, time.Unix(0, 0), time.Millisecond)
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3", got)
	}
	st := tr.Stats()["decide"]
	if st.Count != 5 || st.TotalNs != 5*int64(time.Millisecond) {
		t.Fatalf("stats %+v", st)
	}
	// Invalid contexts and nil tracers no-op.
	tr.Record("x", TraceContext{}, 0, 0, time.Unix(0, 0), time.Second)
	if _, ok := tr.Stats()["x"]; ok {
		t.Fatal("invalid context recorded")
	}
	var nilT *Tracer
	nilT.Record("x", tc, 0, 0, time.Unix(0, 0), 0)
	nilT.Bind(1, tc)
	if _, ok := nilT.Lookup(1); ok {
		t.Fatal("nil tracer lookup")
	}
}

func TestJobCoverage(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 1})
	tc := TraceContext{TraceID: 9, SpanID: 9}
	at := time.Unix(0, 0)
	tr.Record("submit", tc, 1, 0, at, 0)
	tr.Record("decide", tc, 1, 0, at, 0)
	tr.Record("submit", tc, 2, 0, at, 0)
	covered, total := tr.JobCoverage("submit", "decide")
	if covered != 1 || total != 2 {
		t.Fatalf("coverage %d/%d, want 1/2", covered, total)
	}
}

func TestFlightRecorderWrap(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		f.Record(&DecisionRecord{
			NowS:       int64(i),
			QueueDepth: i,
			Started:    []int{i, i + 1},
			Trajectory: []TrajectoryPoint{{Nodes: int64(i), Excess: float64(i)}},
		})
	}
	if f.Len() != 16 {
		t.Fatalf("len %d", f.Len())
	}
	if f.Total() != 40 {
		t.Fatalf("total %d", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot %d", len(snap))
	}
	for k, rec := range snap {
		i := 24 + k // oldest retained decision
		if rec.NowS != int64(i) || rec.Seq != int64(i+1) {
			t.Fatalf("slot %d: now=%d seq=%d", k, rec.NowS, rec.Seq)
		}
		if len(rec.Started) != 2 || rec.Started[0] != i {
			t.Fatalf("slot %d started %v", k, rec.Started)
		}
		if len(rec.Trajectory) != 1 || rec.Trajectory[0].Nodes != int64(i) {
			t.Fatalf("slot %d trajectory %v", k, rec.Trajectory)
		}
	}
	// Snapshot is a deep copy: mutating it must not reach the ring.
	snap[0].Started[0] = -1
	if f.Snapshot()[0].Started[0] == -1 {
		t.Fatal("snapshot aliases ring storage")
	}
	var nilF *FlightRecorder
	nilF.Record(&DecisionRecord{})
	if nilF.Len() != 0 || nilF.Snapshot() != nil {
		t.Fatal("nil recorder")
	}
}

func TestHistFsyncShape(t *testing.T) {
	var h Hist
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.ObserveN(100*time.Microsecond, 3)
	s := h.Snapshot()
	if s.Count != 5 || s.MaxUs != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if len(s.BucketLeUs) == 0 || s.BucketCount[len(s.BucketCount)-1] != 5 {
		t.Fatalf("buckets %v %v", s.BucketLeUs, s.BucketCount)
	}
	if s.P99Us < 100 {
		t.Fatalf("p99 %d", s.P99Us)
	}
}

// TestWriteTraceParses checks the export is valid trace-event JSON
// with the expected envelope; the exact byte format is pinned by
// TestWriteTraceGolden.
func TestWriteTraceParses(t *testing.T) {
	base := time.Unix(100, 0)
	tr := NewTracer(TracerOptions{Seed: 1, Now: func() time.Time { return base }})
	tc := tr.Mint()
	tr.Record("submit", tc, 1, 0, base.Add(5*time.Microsecond), 2*time.Microsecond)
	tr.Record("decide", tc, 1, 3, base.Add(9*time.Microsecond), 7*time.Microsecond)
	var sb strings.Builder
	if err := tr.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("not trace-event JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev.Name != "decide" || ev.Ph != "X" || ev.Ts != 9 || ev.Dur != 7 || ev.Tid != 3 {
		t.Fatalf("event %+v", ev)
	}
	if ev.Args["job"].(float64) != 1 {
		t.Fatalf("args %v", ev.Args)
	}
}
