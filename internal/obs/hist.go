package obs

import (
	"sync"
	"time"
)

// histBuckets is the number of log-spaced latency buckets: bucket i
// counts samples strictly under 2^i microseconds (a sample of exactly
// 2^i µs lands in bucket i+1), the last bucket is +Inf. 2^30 µs ≈ 18
// minutes, far past any sane latency this package measures.
const histBuckets = 32

// Hist is a log-bucketed latency histogram (power-of-two microsecond
// buckets). It trades per-sample precision for O(1) memory and
// lock-cheap observation — the shape Prometheus histograms expect.
// The zero value is ready to use. (It lives here so the ingest accept
// latency and the journal fsync latency share one implementation;
// internal/ingest aliases these names for compatibility.)
type Hist struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	total  int64
	sumUs  int64
	maxUs  int64
}

// bucketFor returns the index of the first bucket whose upper bound
// exceeds the latency.
func bucketFor(us int64) int {
	for i := 0; i < histBuckets-1; i++ {
		if us < int64(1)<<i {
			return i
		}
	}
	return histBuckets - 1
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) { h.ObserveN(d, 1) }

// ObserveN records the same latency for n samples (a batch of n items
// shares one accept-to-commit latency).
func (h *Hist) ObserveN(d time.Duration, n int) {
	if n < 1 {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bucketFor(us)
	h.mu.Lock()
	h.counts[b] += int64(n)
	h.total += int64(n)
	h.sumUs += us * int64(n)
	if us > h.maxUs {
		h.maxUs = us
	}
	h.mu.Unlock()
}

// HistSnapshot is a consistent copy of the histogram, with the derived
// quantiles precomputed (bucket upper bounds, so they are conservative
// — a reported p99 of 512µs means "under 512µs").
type HistSnapshot struct {
	Count int64   `json:"count"`
	AvgUs float64 `json:"avg_us"`
	MaxUs int64   `json:"max_us"`
	P50Us int64   `json:"p50_us"`
	P90Us int64   `json:"p90_us"`
	P99Us int64   `json:"p99_us"`
	// BucketLeUs and BucketCount are the cumulative Prometheus-style
	// buckets: BucketCount[i] samples were at most BucketLeUs[i]
	// microseconds. Only buckets up to the first non-empty tail are
	// included.
	BucketLeUs  []int64 `json:"bucket_le_us,omitempty"`
	BucketCount []int64 `json:"bucket_count,omitempty"`
}

// Snapshot returns a copy with quantiles computed.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.total, MaxUs: h.maxUs}
	if h.total == 0 {
		return s
	}
	s.AvgUs = float64(h.sumUs) / float64(h.total)
	s.P50Us = h.quantileLocked(0.50)
	s.P90Us = h.quantileLocked(0.90)
	s.P99Us = h.quantileLocked(0.99)
	// Emit cumulative buckets through the last non-empty one.
	last := 0
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	cum := int64(0)
	for i := 0; i <= last; i++ {
		cum += h.counts[i]
		s.BucketLeUs = append(s.BucketLeUs, int64(1)<<i)
		s.BucketCount = append(s.BucketCount, cum)
	}
	return s
}

// quantileLocked returns the upper bound of the bucket containing the
// q-quantile sample.
func (h *Hist) quantileLocked(q float64) int64 {
	want := int64(q * float64(h.total))
	if want >= h.total {
		want = h.total - 1
	}
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		if cum > want {
			if i == histBuckets-1 {
				return h.maxUs
			}
			return int64(1) << i
		}
	}
	return h.maxUs
}
