package obs

import "runtime"

// RuntimeStats is a point-in-time read of the Go runtime's own health
// signals, for the Prometheus self-metrics section.
type RuntimeStats struct {
	Goroutines     int
	HeapAllocBytes uint64
	HeapSysBytes   uint64
	GCPauseTotalNs uint64
	LastGCPauseNs  uint64
	NumGC          uint32
}

// ReadRuntime samples the runtime. runtime.ReadMemStats stops the
// world briefly; callers are scrape handlers, not hot paths.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCPauseTotalNs: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
	}
	if ms.NumGC > 0 {
		rs.LastGCPauseNs = ms.PauseNs[(ms.NumGC+255)%256]
	}
	return rs
}
