package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/server"
	"schedsearch/internal/sim"
	"schedsearch/internal/stats"
)

// RemoteFederationConfig describes a chaos scenario against an
// out-of-process-style federation: every shard is a full
// engine+HTTP-server "process" with its own journal file, fronted by
// federation.RemoteShard clients, and the router drives them over real
// TCP. On top of the embedded Config's fault classes,
// FaultCrashRebuild becomes a whole-process shard kill (server torn
// down, journal handle closed) followed by a journal-rebuild restart
// on the same address, and FaultPartition injects wire faults between
// the router and one shard: connection-refused windows (certain,
// rerouted), black-hole timeouts and dropped responses (uncertain,
// parked and reconciled on gossip ticks).
type RemoteFederationConfig struct {
	FederationConfig
	// Dir is the scratch directory for the per-shard journal files
	// (required — the injected crash restarts the victim from its
	// journal).
	Dir string
	// GossipEvery is the router's gossip period; reconciliation of
	// wire-uncertain steps rides on it (default 45 engine seconds).
	GossipEvery job.Duration
	// WorkStealing enables the gossip pass's steal step.
	WorkStealing bool
	// GroupCommit is the shard journals' appends-per-fsync
	// (default 1). Recovery correctness must not depend on it: the
	// shard server fsyncs before acknowledging every mutation.
	GroupCommit int
}

// RemoteFederationResult is the outcome of one remote federated chaos
// scenario.
type RemoteFederationResult struct {
	FederationResult
	// Uncertain counts legitimate submissions whose submit call
	// returned a wire failure (outcome unknown or all shards dark).
	// Such a job may be definitively absent at the end — its submitter
	// was told to retry — but must never be silently lost after an
	// acknowledgment, and never double-admitted.
	Uncertain int
	// PartitionedShard is the shard the partition windows targeted,
	// -1 when FaultPartition was off.
	PartitionedShard int
	// Reroutes and Pending come from the router: submissions routed
	// around dark shards, and wire-uncertain steps still parked at the
	// end of the run (after the final reconciliation ticks this is
	// normally 0, but a job whose shard answered is resolved either
	// way, so leftovers are not an invariant violation by themselves).
	Reroutes int64
	Pending  int
}

// shardProc is one emulated shard process: an engine journaling to its
// own file behind a real TCP HTTP server. kill tears the whole thing
// down like a SIGKILL (in-flight state lost, journal handle closed so
// the abandoned engine incarnation goes fatal on its next write, the
// listener refuses connections); start(recover=true) plays the restart:
// recover the journal, rebuild the engine, rebind the same address.
type shardProc struct {
	path  string // journal file
	group int
	addr  string // "127.0.0.1:0" until the first listen fixes the port
	mkCfg func() engine.Config

	eng *engine.Engine
	fj  *engine.FileJournal
	srv *http.Server
}

// start boots (or, with recover, restarts) the shard process. All
// calls happen on the virtual-clock driver goroutine.
func (sp *shardProc) start(recover bool) error {
	cfg := sp.mkCfg()
	var cp *engine.Checkpoint
	if recover {
		if st, err := os.Stat(sp.path); err == nil && st.Size() > 0 {
			c, err := engine.RecoverCheckpoint(sp.path)
			if err != nil {
				return fmt.Errorf("chaos: recover %s: %w", sp.path, err)
			}
			cp = &c
		}
	}
	fj, err := engine.OpenFileJournal(sp.path, sp.group)
	if err != nil {
		return err
	}
	cfg.Journal = fj
	var e *engine.Engine
	if cp != nil {
		e, err = engine.Rebuild(cfg, *cp)
	} else {
		e, err = engine.New(cfg)
	}
	if err != nil {
		fj.Close()
		return fmt.Errorf("chaos: shard engine %s: %w", sp.path, err)
	}
	ln, err := net.Listen("tcp", sp.addr)
	if err != nil {
		fj.Close()
		return fmt.Errorf("chaos: shard listen %s: %w", sp.addr, err)
	}
	sp.addr = ln.Addr().String()
	srv := &http.Server{Handler: server.New(e, nil)}
	go srv.Serve(ln)
	sp.eng, sp.fj, sp.srv = e, fj, srv
	return nil
}

// kill emulates a whole-process crash: the listener and every open
// connection close (future dials are refused), and the journal handle
// closes so the abandoned engine incarnation fails fatally on its next
// committed event instead of scheduling on. Everything the journal had
// committed stays on disk for the restart.
func (sp *shardProc) kill() {
	if sp.srv != nil {
		sp.srv.Close()
	}
	if sp.fj != nil {
		sp.fj.Close()
	}
	sp.eng, sp.fj, sp.srv = nil, nil, nil
}

func (sp *shardProc) stop() { sp.kill() }

// Wire-fault modes a faultTransport can be switched through.
const (
	ftClear = iota
	// ftRefuse answers every round trip with a dial error before
	// anything is sent: the request certainly never happened, the
	// router may reroute.
	ftRefuse
	// ftBlackhole loses the request without delivering it, but the
	// client cannot know that — a non-dial transport failure, so the
	// outcome is uncertain from the caller's side.
	ftBlackhole
	// ftDrop delivers the request to the shard and loses the response:
	// the mutation happened, the acknowledgment did not — the
	// idempotency machinery's worst case.
	ftDrop
)

// faultTransport wraps a shard client's HTTP transport with two fault
// shapes, both flipped from virtual-clock timers so every injection is
// deterministic:
//
//   - a whole-window mode (mode) failing every request — the shard
//     looks dark, the router's health probes see it immediately and
//     degraded routing steers around it;
//   - POST-only strike counters (refusePosts/dropPosts) that pass the
//     read-side health probes untouched and hit the next mutations —
//     the mid-operation case: placement already picked the shard, the
//     migration already withdrew the job, and THEN the wire fails.
//
// All accesses happen on the virtual-clock driver goroutine (requests
// resolve synchronously inside timer callbacks), so no lock is needed.
type faultTransport struct {
	inner       http.RoundTripper
	mode        int
	refusePosts int // refuse the next N POSTs before delivery (certain)
	dropPosts   int // deliver the next N POSTs, lose the responses (uncertain)
}

// set switches the whole-window fault mode.
func (ft *faultTransport) set(mode int) { ft.mode = mode }

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodPost && ft.refusePosts > 0 {
		ft.refusePosts--
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: errors.New("chaos: injected connection refused")}
	}
	if req.Method == http.MethodPost && ft.dropPosts > 0 {
		ft.dropPosts--
		resp, err := ft.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errors.New("chaos: injected response loss after delivery")
	}
	switch ft.mode {
	case ftRefuse:
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: errors.New("chaos: injected connection refused")}
	case ftBlackhole:
		return nil, errors.New("chaos: injected black-hole timeout")
	case ftDrop:
		resp, err := ft.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errors.New("chaos: injected response loss after delivery")
	}
	return ft.inner.RoundTrip(req)
}

// RunFederationRemote executes one remote federated scenario to
// completion and verifies the cross-process invariants: no job
// acknowledged as admitted is ever lost — across shard-process kills,
// journal-rebuild restarts and partition windows — no job is ever
// admitted on two shards, and the merged schedule passes
// oracle.CheckFederation. Submissions whose wire outcome stayed
// unknown are the one tolerated loss: the caller was told to retry.
func RunFederationRemote(config RemoteFederationConfig) (*RemoteFederationResult, error) {
	cfg, err := config.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	if config.Shards < 2 {
		return nil, fmt.Errorf("chaos: remote federation needs >= 2 shards, got %d", config.Shards)
	}
	if config.Dir == "" {
		return nil, errors.New("chaos: RemoteFederationConfig.Dir is required")
	}
	group := config.GroupCommit
	if group <= 0 {
		group = 1
	}
	gossip := config.GossipEvery
	if gossip <= 0 {
		gossip = 45
	}
	caps, err := federation.PartitionCapacity(cfg.Capacity, config.Shards)
	if err != nil {
		return nil, err
	}
	minCap := caps[len(caps)-1]
	planCfg := cfg
	planCfg.Capacity = minCap
	p := buildPlan(planCfg)

	vc := engine.NewVirtualClock()
	newPolicy := func() sim.Policy {
		pol := cfg.Policy()
		if cfg.Faults&(FaultPolicyPanic|FaultPolicyLatency) != 0 {
			fp := &FlakyPolicy{Inner: pol}
			if cfg.Faults&FaultPolicyPanic != 0 {
				fp.PanicEvery = cfg.PanicEvery
			}
			if cfg.Faults&FaultPolicyLatency != 0 {
				fp.Latency = cfg.Latency
				fp.LatencyEvery = 3
			}
			return fp
		}
		return pol
	}

	procs := make([]*shardProc, config.Shards)
	fts := make([]*faultTransport, config.Shards)
	shards := make([]engine.Shard, config.Shards)
	defer func() {
		for _, sp := range procs {
			if sp != nil {
				sp.stop()
			}
		}
	}()
	for i := range procs {
		capI := caps[i]
		sp := &shardProc{
			path:  filepath.Join(config.Dir, fmt.Sprintf("shard-%d.journal", i)),
			group: group,
			addr:  "127.0.0.1:0",
			mkCfg: func() engine.Config {
				return engine.Config{Capacity: capI, Policy: newPolicy(), Clock: vc}
			},
		}
		if err := sp.start(false); err != nil {
			return nil, err
		}
		procs[i] = sp
		fts[i] = &faultTransport{inner: http.DefaultTransport}
		shards[i] = federation.NewRemoteShard("http://"+sp.addr, federation.RemoteShardOptions{
			Timeout:   30 * time.Second,
			Retries:   1,
			Sleep:     func(time.Duration) {},
			Transport: fts[i],
		})
	}

	router, err := federation.NewWithShards(federation.Config{
		Clock:          vc,
		Placement:      config.Placement,
		RebalanceEvery: config.RebalanceEvery,
		GossipEvery:    gossip,
		WorkStealing:   config.WorkStealing,
	}, shards)
	if err != nil {
		return nil, err
	}

	h := &harness{}
	uncertain := make(map[int]bool) // legit submissions with unknown wire outcome
	wireFailed := 0
	for _, ps := range p.submits {
		ps := ps
		vc.AfterFunc(ps.at, func() {
			err := router.SubmitJob(ps.spec)
			h.mu.Lock()
			defer h.mu.Unlock()
			switch {
			case ps.wantErr && err == nil:
				if uncertain[ps.spec.ID] {
					// The original submission of this ID was wire-lost and
					// reconciled as never-admitted, so this "duplicate"
					// played the client's retry and won the slot.
					delete(uncertain, ps.spec.ID)
					h.accepted++
					return
				}
				h.fail(fmt.Errorf("chaos: injected-fault submission of job %d was accepted", ps.spec.ID))
			case ps.wantErr:
				h.rejected++
			case err == nil:
				h.accepted++
			case errors.Is(err, federation.ErrUncertain) || errors.Is(err, federation.ErrUnreachable):
				// The wire failed the submitter; the job may or may not
				// have landed. The client contract is "retry"; the
				// invariant checked below is that the job is either
				// definitively absent or admitted exactly once.
				uncertain[ps.spec.ID] = true
				wireFailed++
			default:
				h.fail(fmt.Errorf("chaos: legitimate job %d rejected: %w", ps.spec.ID, err))
			}
		})
	}

	restartedShard := -1
	if cfg.Faults&FaultCrashRebuild != 0 {
		rngC := stats.NewRNG(cfg.Seed, 104)
		victim := rngC.IntN(config.Shards)
		downFor := job.Duration(300 + rngC.IntN(900))
		vc.AfterFunc(p.crashAt, func() {
			procs[victim].kill()
		})
		vc.AfterFunc(p.crashAt+job.Time(downFor), func() {
			if err := procs[victim].start(true); err != nil {
				h.mu.Lock()
				h.fail(fmt.Errorf("chaos: restart shard %d at t=%d: %w",
					victim, p.crashAt+job.Time(downFor), err))
				h.mu.Unlock()
				return
			}
			restartedShard = victim
			h.mu.Lock()
			h.rebuilt = true
			h.mu.Unlock()
		})
	}

	partShard := -1
	if cfg.Faults&FaultPartition != 0 {
		rngP := stats.NewRNG(cfg.Seed, 105)
		partShard = rngP.IntN(config.Shards)
		span := job.Time(1)
		for _, ps := range p.submits {
			if ps.at > span {
				span = ps.at
			}
		}
		ft := fts[partShard]
		// Whole-window outages: every request to the victim fails for a
		// while; health probes catch it and routing degrades around it.
		modes := []int{ftRefuse, ftBlackhole, ftDrop}
		for w := 0; w < 3; w++ {
			at := job.Time(rngP.IntN(int(span)))
			dur := job.Duration(60 + rngP.IntN(540))
			mode := modes[rngP.IntN(len(modes))]
			vc.AfterFunc(at, func() { ft.set(mode) })
			vc.AfterFunc(at+job.Time(dur), func() { ft.set(ftClear) })
		}
		// Mid-operation strikes: reads stay live (the victim looks
		// healthy, so placement and migration still pick it) and the
		// next K mutations fail — refused before delivery (submissions
		// must reroute) or delivered with the ack lost (retries must hit
		// idempotency tombstones, withdraw/admit legs must park and
		// reconcile instead of duplicating or dropping the job).
		for s := 0; s < 6; s++ {
			at := job.Time(rngP.IntN(int(span)))
			k := 2 + rngP.IntN(3)
			if rngP.IntN(2) == 0 {
				vc.AfterFunc(at, func() { ft.refusePosts += k })
			} else {
				vc.AfterFunc(at, func() { ft.dropPosts += k })
			}
		}
	}

	if cfg.Faults&FaultClockJumps != 0 {
		driveJumps(vc, stats.NewRNG(cfg.Seed, 103))
	} else {
		vc.Run()
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failure != nil {
		return nil, h.failure
	}
	if err := router.Err(); err != nil {
		return nil, err
	}
	res := &RemoteFederationResult{
		FederationResult: FederationResult{
			Records:      router.Records(),
			Rejected:     h.rejected,
			RebuiltShard: restartedShard,
			Federation:   router.Federation(),
		},
		Uncertain:        wireFailed,
		PartitionedShard: partShard,
		Reroutes:         0,
		Pending:          router.PendingReconciliations(),
	}
	res.Reroutes = res.Federation.Reroutes

	// Conservation: every legitimate job is either done, or its submit
	// call reported a wire failure (the client was told to retry) and
	// the job is certainly admitted nowhere.
	for id := 1; id <= cfg.Jobs; id++ {
		st, ok := router.Job(id)
		if !ok {
			if uncertain[id] {
				continue
			}
			return nil, fmt.Errorf("chaos: job %d lost (accepted %d, wire-failed %d)",
				id, h.accepted, wireFailed)
		}
		if st.State != engine.StateDone {
			return nil, fmt.Errorf("chaos: job %d still %v after the run", id, st.State)
		}
		res.Accepted = append(res.Accepted, st.Job)
	}

	// No double admission: a job ID may complete on at most one shard
	// (migration withdraws before re-admitting; retries are answered by
	// tombstones, never by a second copy).
	shardRecs := make([][]sim.Record, router.NumShards())
	owner := make(map[int]int)
	for i := range shardRecs {
		shardRecs[i] = router.ShardRecords(i)
		for _, rec := range shardRecs[i] {
			if prev, dup := owner[rec.Job.ID]; dup {
				return nil, fmt.Errorf("chaos: job %d double-admitted: completed on shards %d and %d",
					rec.Job.ID, prev, i)
			}
			owner[rec.Job.ID] = i
		}
	}
	for i, sh := range router.ShardHealth() {
		if !sh.Healthy {
			return nil, fmt.Errorf("chaos: shard %d still unhealthy after the run: %s", i, sh.Err)
		}
	}
	if err := oracle.CheckFederation(cfg.Capacity, router.ShardCapacities(), res.Accepted, shardRecs); err != nil {
		return nil, err
	}
	return res, nil
}
