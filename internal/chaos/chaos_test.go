package chaos

import (
	"fmt"
	"testing"

	"schedsearch/internal/core"
	"schedsearch/internal/policy"
	"schedsearch/internal/sim"
)

func fcfs() sim.Policy { return policy.FCFSBackfill() }
func lxf() sim.Policy  { return policy.LXFBackfill() }
func dds() sim.Policy  { return core.New(core.DDS, core.HeuristicLXF, core.DynamicBound(), 100) }

// TestFaultMatrix runs every fault class in isolation and in
// combination, across policies and fixed seeds, and requires the
// oracle invariants to hold in all of them (Run fails otherwise). This
// is the ISSUE's "≥ 6 distinct fault types with fixed seeds" suite.
func TestFaultMatrix(t *testing.T) {
	cases := []struct {
		name   string
		faults Fault
		pol    func() sim.Policy
	}{
		{"clock-jumps", FaultClockJumps, fcfs},
		{"burst-submits", FaultBurstSubmits, lxf},
		{"duplicate-ids", FaultDuplicateIDs, fcfs},
		{"reordered-submits", FaultReorderedSubmits, lxf},
		{"hostile-specs", FaultHostileSpecs, fcfs},
		{"policy-panic", FaultPolicyPanic, dds},
		{"policy-latency", FaultPolicyLatency, dds},
		{"crash-rebuild", FaultCrashRebuild, dds},
		{"everything-fcfs", AllFaults, fcfs},
		{"everything-search", AllFaults, dds},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 7} {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				res, err := Run(Config{Seed: seed, Faults: tc.faults, Policy: tc.pol})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Records) != len(res.Accepted) {
					t.Fatalf("%d records for %d accepted jobs", len(res.Records), len(res.Accepted))
				}
				if tc.faults&(FaultDuplicateIDs|FaultHostileSpecs) != 0 && res.Rejected == 0 {
					t.Error("injected bad submissions but none were rejected")
				}
				if tc.faults&FaultPolicyPanic != 0 && res.Panics == 0 {
					t.Error("panic injection enabled but no panics were recovered")
				}
				if tc.faults&FaultCrashRebuild != 0 && !res.Rebuilt {
					t.Error("crash-rebuild enabled but the engine was never rebuilt")
				}
			})
		}
	}
}

// recordFingerprint serializes everything a schedule determines.
func recordFingerprint(res *Result) string {
	out := fmt.Sprintf("rejected=%d panics=%d\n", res.Rejected, res.Panics)
	for _, r := range res.Records {
		out += fmt.Sprintf("job=%d submit=%d start=%d end=%d nodes=%v\n",
			r.Job.ID, r.Job.Submit, r.Start, r.End, r.NodeIDs)
	}
	return out
}

// TestDeterminism replays each fault mix with the same seed and
// requires bit-identical committed schedules, including under clock
// jumps, recovered panics and a mid-run crash.
func TestDeterminism(t *testing.T) {
	for _, faults := range []Fault{
		FaultClockJumps | FaultBurstSubmits,
		FaultPolicyPanic | FaultReorderedSubmits,
		AllFaults,
	} {
		faults := faults
		t.Run(faults.String(), func(t *testing.T) {
			cfg := Config{Seed: 11, Faults: faults, Policy: dds, Jobs: 90}
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := recordFingerprint(a), recordFingerprint(b); fa != fb {
				t.Fatalf("same seed, different schedules:\n--- run A ---\n%s--- run B ---\n%s", fa, fb)
			}
		})
	}
}

// TestCrashRebuildBitIdentical is the ISSUE's acceptance case: an
// injected mid-run crash, rebuilt from the committed event journal on
// the same clock, must commit exactly the schedule the uninterrupted
// engine commits — same starts, ends and concrete node IDs for every
// job. Policy panics are excluded (a restarted injector would panic on
// a different cadence by design); every other fault stays on.
func TestCrashRebuildBitIdentical(t *testing.T) {
	base := AllFaults &^ (FaultCrashRebuild | FaultPolicyPanic)
	for _, tc := range []struct {
		name string
		pol  func() sim.Policy
	}{
		{"FCFS-backfill", fcfs},
		{"LXF-backfill", lxf},
		{"DDS-lxf-dynB", dds},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			smooth, err := Run(Config{Seed: 23, Faults: base, Policy: tc.pol})
			if err != nil {
				t.Fatal(err)
			}
			crashed, err := Run(Config{Seed: 23, Faults: base | FaultCrashRebuild, Policy: tc.pol})
			if err != nil {
				t.Fatal(err)
			}
			if !crashed.Rebuilt {
				t.Fatal("crash was never injected")
			}
			fs, fc := recordFingerprint(smooth), recordFingerprint(crashed)
			if fs != fc {
				t.Fatalf("crash-rebuild diverged from the uninterrupted run:\n--- uninterrupted ---\n%s--- crashed ---\n%s", fs, fc)
			}
		})
	}
}

type nopPolicy struct{}

func (nopPolicy) Name() string               { return "nop" }
func (nopPolicy) Decide(*sim.Snapshot) []int { return nil }

// TestFlakyPolicyCadence pins the injector's determinism: the panic
// pattern depends only on the call count.
func TestFlakyPolicyCadence(t *testing.T) {
	p := &FlakyPolicy{Inner: nopPolicy{}, PanicEvery: 3}
	panics := 0
	for i := 0; i < 9; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			p.Decide(&sim.Snapshot{})
		}()
	}
	if panics != 3 {
		t.Fatalf("9 calls with PanicEvery=3 recovered %d panics, want 3", panics)
	}
}

// TestConfigValidation covers the config seams.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seed: 1}); err == nil {
		t.Fatal("Run without a policy must fail")
	}
	if got := (FaultClockJumps | FaultPolicyPanic).String(); got != "clock-jumps+policy-panic" {
		t.Fatalf("Fault.String() = %q", got)
	}
	if got := Fault(0).String(); got != "none" {
		t.Fatalf("Fault(0).String() = %q", got)
	}
}
