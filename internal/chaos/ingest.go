package chaos

import (
	"errors"
	"fmt"
	"sync"

	"schedsearch/internal/engine"
	"schedsearch/internal/ingest"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
	"schedsearch/internal/stats"
)

// IngestFault is a bitmask of fault classes injected into the ingest
// path (the accept queue between clients and the engine).
type IngestFault uint

const (
	// IngestFaultBursts fires sustained over-limit submission bursts
	// while the backend is artificially stalled, so the accept queue
	// must shed whole batches with ErrSaturated instead of growing past
	// MaxPending. Shed batches are retried, like clients honoring
	// Retry-After.
	IngestFaultBursts IngestFault = 1 << iota
	// IngestFaultSlowClients trickles some batches one item at a time
	// with the clock creeping between items — a client too slow to
	// deliver its batch in one go.
	IngestFaultSlowClients
	// IngestFaultDisconnects abandons some tickets without ever reading
	// the results — a client that vanished mid-batch. The batch must
	// still commit (admission is not tied to the connection).
	IngestFaultDisconnects
	// IngestFaultDuplicates re-submits already-committed job IDs in
	// fresh batches; every duplicate must be rejected per-item without
	// failing its batch.
	IngestFaultDuplicates
	// IngestFaultQuotaStorm routes a burst of one hot user's jobs at
	// the queue; items beyond the user's token bucket must be rejected
	// with ErrQuota while every other user's jobs sail through.
	IngestFaultQuotaStorm
)

// AllIngestFaults enables every ingest fault class.
const AllIngestFaults = IngestFaultBursts | IngestFaultSlowClients |
	IngestFaultDisconnects | IngestFaultDuplicates | IngestFaultQuotaStorm

var ingestFaultNames = []struct {
	f    IngestFault
	name string
}{
	{IngestFaultBursts, "bursts"},
	{IngestFaultSlowClients, "slow-clients"},
	{IngestFaultDisconnects, "disconnects"},
	{IngestFaultDuplicates, "duplicate-ids"},
	{IngestFaultQuotaStorm, "quota-storm"},
}

// String names the enabled fault classes.
func (f IngestFault) String() string {
	if f == 0 {
		return "none"
	}
	out := ""
	for _, fn := range ingestFaultNames {
		if f&fn.f != 0 {
			if out != "" {
				out += "+"
			}
			out += fn.name
		}
	}
	return out
}

// IngestConfig describes one ingest chaos scenario.
type IngestConfig struct {
	// Seed derives every random choice in the scenario.
	Seed uint64
	// Capacity is the machine size in nodes (default 64).
	Capacity int
	// Jobs is the number of legitimate jobs (default 150).
	Jobs int
	// Users is the user-ID space jobs draw from (default 1000).
	Users int
	// Faults selects the injected fault classes.
	Faults IngestFault
	// Policy constructs the scheduling policy (required).
	Policy func() sim.Policy
	// MaxPending bounds the accept queue (default 32 — small, so
	// bursts genuinely overflow it).
	MaxPending int
	// MaxBatch caps committer groups (default 16).
	MaxBatch int
	// QuotaRate/QuotaBurst shape the hot user's token bucket when
	// IngestFaultQuotaStorm is set (defaults 0.001 tokens/s, burst 5).
	QuotaRate  float64
	QuotaBurst float64
}

func (c *IngestConfig) withDefaults() (IngestConfig, error) {
	out := *c
	if out.Policy == nil {
		return out, errors.New("chaos: IngestConfig.Policy is required")
	}
	if out.Capacity == 0 {
		out.Capacity = 64
	}
	if out.Jobs == 0 {
		out.Jobs = 150
	}
	if out.Users == 0 {
		out.Users = 1000
	}
	if out.MaxPending == 0 {
		out.MaxPending = 32
	}
	if out.MaxBatch == 0 {
		out.MaxBatch = 16
	}
	if out.QuotaRate == 0 {
		// Slow enough that inter-wave refill cannot absorb the storm.
		out.QuotaRate = 0.001
	}
	if out.QuotaBurst == 0 {
		out.QuotaBurst = 5
	}
	return out, nil
}

// IngestResult is the outcome of one ingest chaos scenario.
type IngestResult struct {
	// Records is the committed schedule in completion order.
	Records []sim.Record
	// Accepted is every committed job with its engine-stamped submit
	// time, in ID order.
	Accepted []job.Job
	// Shed counts whole batches bounced with ErrSaturated; Retried
	// counts their successful re-submissions (every shed batch must
	// eventually land).
	Shed, Retried int
	// DupRejected counts injected duplicate items refused per-item.
	DupRejected int
	// QuotaRejected lists the job IDs refused by the hot user's token
	// bucket (those jobs legitimately never run).
	QuotaRejected []int
	// Abandoned counts tickets dropped without reading results.
	Abandoned int
	// Stats is the final accept-queue snapshot; Metrics the engine's.
	Stats   ingest.Stats
	Metrics engine.Metrics
}

// stallableBackend fronts the engine for the accept queue; Stall holds
// commits mid-flight so the driver can fill the queue to its bound
// deterministically (the committer blocks here, keeping items pending).
type stallableBackend struct {
	e  *engine.Engine
	mu sync.RWMutex
}

func (b *stallableBackend) Submit(spec job.Job) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.e.Submit(spec)
}

func (b *stallableBackend) SubmitJob(j job.Job) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.e.SubmitJob(j)
}

func (b *stallableBackend) stall()  { b.mu.Lock() }
func (b *stallableBackend) resume() { b.mu.Unlock() }

// ingestWave is one deterministic step of the scenario: a clock
// advance followed by a volley of batches.
type ingestWave struct {
	at      job.Time
	batches [][]job.Job
	burst   bool
}

// buildIngestPlan derives the wave script from the seed. The
// legitimate workload stream is independent of the fault bits, so the
// same seed submits the same jobs whatever faults are enabled.
func buildIngestPlan(cfg IngestConfig) []ingestWave {
	rngW := stats.NewRNG(cfg.Seed, 201) // workload shape
	rngF := stats.NewRNG(cfg.Seed, 202) // fault weaving

	specs := make([]job.Job, cfg.Jobs)
	for i := range specs {
		rt := job.Duration(1 + rngW.IntN(5400))
		specs[i] = job.Job{
			ID:      i + 1,
			Nodes:   1 + rngW.IntN(cfg.Capacity),
			Runtime: rt,
			Request: rt + job.Duration(rngW.IntN(1800)),
			User:    1 + rngW.IntN(cfg.Users),
		}
	}
	if cfg.Faults&IngestFaultQuotaStorm != 0 {
		// The hot user owns a contiguous run of mid-plan jobs — enough
		// to blow through the token bucket inside one wave.
		storm := 2*int(cfg.QuotaBurst) + 4
		start := cfg.Jobs / 3
		for i := start; i < start+storm && i < cfg.Jobs; i++ {
			specs[i].User = 0 // user 0 is the hot user
		}
	}

	var waves []ingestWave
	at := job.Time(0)
	i := 0
	for i < len(specs) {
		at += job.Time(300 + rngW.IntN(900))
		w := ingestWave{at: at}
		// Every third wave (seeded) is a burst — and the first eligible
		// one always is, so the fault genuinely fires. A burst wave
		// swallows enough of the spec stream to guarantee it overflows
		// the queue bound while the backend is stalled.
		if cfg.Faults&IngestFaultBursts != 0 && (len(waves) == 1 || rngF.IntN(3) == 0) {
			w.burst = true
		}
		nBatches := 2 + rngW.IntN(3)
		items := 0 // quota-safe items: only these are guaranteed to occupy pending slots
		for b := 0; i < len(specs); b++ {
			if w.burst {
				if items > cfg.MaxPending+4 {
					break
				}
			} else if b >= nBatches {
				break
			}
			size := 1 + rngW.IntN(6)
			if i+size > len(specs) {
				size = len(specs) - i
			}
			w.batches = append(w.batches, specs[i:i+size])
			for _, s := range specs[i : i+size] {
				if s.User != 0 {
					items++
				}
			}
			i += size
		}
		// A trailing burst wave that ran out of jobs before reaching the
		// bound cannot overflow; demote it.
		if w.burst && items <= cfg.MaxPending {
			w.burst = false
		}
		waves = append(waves, w)
	}
	return waves
}

// RunIngest executes one ingest chaos scenario to completion. The
// driver is single-threaded against a virtual clock, faults included,
// so a scenario replays bit-identically: same seed and fault mask,
// same committed schedule. A nil error certifies that every invariant
// held: accepted jobs committed exactly once, duplicates and
// over-quota items rejected per-item, shed batches landed on retry,
// the queue never held more than MaxPending items, and the oracle
// cleared the final schedule.
func RunIngest(config IngestConfig) (*IngestResult, error) {
	cfg, err := config.withDefaults()
	if err != nil {
		return nil, err
	}
	waves := buildIngestPlan(cfg)
	rngF := stats.NewRNG(cfg.Seed, 203) // run-time fault choices

	vc := engine.NewVirtualClock()
	orc := oracle.New(cfg.Capacity)
	e, err := engine.New(engine.Config{
		Capacity: cfg.Capacity,
		Policy:   cfg.Policy(),
		Clock:    vc,
		Observer: orc,
	})
	if err != nil {
		return nil, err
	}
	backend := &stallableBackend{e: e}
	icfg := ingest.Config{
		Backend:    backend,
		MaxPending: cfg.MaxPending,
		MaxBatch:   cfg.MaxBatch,
	}
	if cfg.Faults&IngestFaultQuotaStorm != 0 {
		icfg.Quotas = ingest.NewQuotas(cfg.QuotaRate, cfg.QuotaBurst, e.Now)
	}
	q, err := ingest.NewQueue(icfg)
	if err != nil {
		return nil, err
	}
	defer q.Close()

	res := &IngestResult{}
	quotaRejected := make(map[int]bool)
	committed := []int{} // IDs committed so far, for duplicate picks
	dupUser := 0         // distinct synthetic user per injected duplicate

	// recordResults folds one batch's per-item outcomes into the
	// bookkeeping; only ErrQuota is a tolerated rejection here.
	recordResults := func(batch []job.Job, results []ingest.ItemResult) error {
		for _, r := range results {
			switch {
			case r.Err == nil:
				committed = append(committed, batch[r.Index].ID)
			case errors.Is(r.Err, ingest.ErrQuota):
				id := batch[r.Index].ID
				quotaRejected[id] = true
				res.QuotaRejected = append(res.QuotaRejected, id)
			default:
				return fmt.Errorf("chaos: legitimate job %d rejected: %w", batch[r.Index].ID, r.Err)
			}
		}
		return nil
	}
	submit := func(batch []job.Job) error {
		results, err := q.SubmitBatch(batch)
		if err != nil {
			return fmt.Errorf("chaos: batch rejected whole: %w", err)
		}
		return recordResults(batch, results)
	}

	var abandoned []struct {
		t     *ingest.Ticket
		batch []job.Job
	}
	// The first eligible batch of each kind is forced, so an enabled
	// fault class always fires at least once even when seeded rolls and
	// burst waves would starve it.
	needDisc := cfg.Faults&IngestFaultDisconnects != 0
	needSlow := cfg.Faults&IngestFaultSlowClients != 0
	now := job.Time(0)
	for _, w := range waves {
		vc.AdvanceTo(w.at)
		now = w.at

		// Duplicate injection: re-submit committed IDs in a fresh batch;
		// every item must be refused without failing the batch.
		if cfg.Faults&IngestFaultDuplicates != 0 && len(committed) > 0 {
			n := 1 + rngF.IntN(3)
			dups := make([]job.Job, n)
			for d := range dups {
				victim := committed[rngF.IntN(len(committed))]
				// Each dup comes from a fresh user outside the workload's
				// ID space, so quota buckets can never mask the
				// duplicate-ID rejection we are probing for.
				dupUser++
				dups[d] = job.Job{ID: victim, Nodes: 1 + rngF.IntN(4), Runtime: 60, Request: 60,
					User: cfg.Users + dupUser}
			}
			results, err := q.SubmitBatch(dups)
			if err != nil {
				return nil, fmt.Errorf("chaos: duplicate batch rejected whole: %w", err)
			}
			for _, r := range results {
				if r.Err == nil {
					return nil, fmt.Errorf("chaos: duplicate of job %d was accepted", dups[r.Index].ID)
				}
				if !errors.Is(r.Err, engine.ErrDuplicateID) {
					return nil, fmt.Errorf("chaos: duplicate of job %d rejected with %v, want ErrDuplicateID", dups[r.Index].ID, r.Err)
				}
				res.DupRejected++
			}
		}

		if w.burst {
			// Sustained over-limit burst: the backend stalls, so pending
			// only grows; batches past MaxPending must shed — and the
			// queue's memory must stay bounded the whole time.
			backend.stall()
			type accepted struct {
				t     *ingest.Ticket
				batch []job.Job
			}
			var live []accepted
			var shed [][]job.Job
			for _, batch := range w.batches {
				t, err := q.Enqueue(batch)
				if errors.Is(err, ingest.ErrSaturated) {
					shed = append(shed, batch)
					res.Shed++
					continue
				}
				if err != nil {
					backend.resume()
					return nil, fmt.Errorf("chaos: burst enqueue: %w", err)
				}
				live = append(live, accepted{t, batch})
				if p := q.Stats().Pending; p > cfg.MaxPending {
					backend.resume()
					return nil, fmt.Errorf("chaos: pending %d exceeded bound %d", p, cfg.MaxPending)
				}
			}
			if len(shed) == 0 {
				backend.resume()
				return nil, errors.New("chaos: burst wave failed to saturate the queue")
			}
			backend.resume()
			for _, a := range live {
				<-a.t.Done()
				if err := recordResults(a.batch, a.t.Results()); err != nil {
					return nil, err
				}
			}
			// Clients honor Retry-After: shed batches come back and must
			// land now that the queue drained.
			for _, batch := range shed {
				q.Flush()
				if err := submit(batch); err != nil {
					return nil, err
				}
				res.Retried++
			}
			q.Flush()
			continue
		}

		for _, batch := range w.batches {
			switch {
			case cfg.Faults&IngestFaultDisconnects != 0 && (needDisc || rngF.IntN(6) == 0):
				needDisc = false
				// The client vanishes without reading results; the batch
				// must still commit. Results are reconciled after Flush.
				t, err := q.Enqueue(batch)
				if err != nil {
					return nil, fmt.Errorf("chaos: disconnect enqueue: %w", err)
				}
				abandoned = append(abandoned, struct {
					t     *ingest.Ticket
					batch []job.Job
				}{t, batch})
				res.Abandoned++
			case cfg.Faults&IngestFaultSlowClients != 0 && (needSlow || rngF.IntN(5) == 0):
				needSlow = false
				// A slow client trickles its batch one item at a time,
				// the clock creeping between deliveries.
				for k := range batch {
					q.Flush()
					now++
					vc.AdvanceTo(now)
					if err := submit(batch[k : k+1]); err != nil {
						return nil, err
					}
				}
			default:
				if err := submit(batch); err != nil {
					return nil, err
				}
			}
		}
		// Rendezvous before the next clock advance keeps fault timing
		// deterministic: the committer is idle between waves.
		q.Flush()
	}

	q.Flush()
	for _, a := range abandoned {
		select {
		case <-a.t.Done():
		default:
			return nil, errors.New("chaos: abandoned ticket not resolved after Flush")
		}
		if err := recordResults(a.batch, a.t.Results()); err != nil {
			return nil, err
		}
	}
	vc.Run()
	if err := e.Err(); err != nil {
		return nil, err
	}

	// Every legitimate job either committed exactly once and completed,
	// or was quota-rejected and must be absent.
	for id := 1; id <= cfg.Jobs; id++ {
		st, ok := e.Job(id)
		if quotaRejected[id] {
			if ok {
				return nil, fmt.Errorf("chaos: quota-rejected job %d reached the engine", id)
			}
			continue
		}
		if !ok {
			return nil, fmt.Errorf("chaos: job %d lost", id)
		}
		if st.State != engine.StateDone {
			return nil, fmt.Errorf("chaos: job %d still %v after the run", id, st.State)
		}
		res.Accepted = append(res.Accepted, st.Job)
	}

	res.Records = e.Records()
	res.Stats = q.Stats()
	res.Metrics = e.Metrics()
	if res.Stats.PeakPending > cfg.MaxPending {
		return nil, fmt.Errorf("chaos: peak pending %d exceeded bound %d (unbounded queue memory)",
			res.Stats.PeakPending, cfg.MaxPending)
	}
	if res.Stats.Accepted != res.Stats.Committed+res.Stats.Rejected {
		return nil, fmt.Errorf("chaos: queue accounting broken: %+v", res.Stats)
	}
	if err := orc.Final(); err != nil {
		return nil, err
	}
	if err := oracle.CheckRecords(cfg.Capacity, res.Accepted, res.Records); err != nil {
		return nil, err
	}
	return res, nil
}
