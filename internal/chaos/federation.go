package chaos

import (
	"fmt"

	"schedsearch/internal/engine"
	"schedsearch/internal/federation"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
	"schedsearch/internal/stats"
)

// FederationConfig describes a chaos scenario against a sharded
// federation instead of a bare engine. The embedded Config keeps its
// meaning, with two twists: job widths are generated against the
// narrowest shard partition (so every legitimate job is admissible
// somewhere), and FaultCrashRebuild crashes and journal-rebuilds ONE
// seeded shard while the others keep scheduling — the federation
// analogue of a partial outage.
type FederationConfig struct {
	Config
	// Shards is the number of engine partitions (>= 2 to be
	// interesting; 1 degenerates to Run's machine).
	Shards int
	// Placement is the routing policy; nil means least-loaded.
	Placement federation.Placement
	// RebalanceEvery is the rebalance period (0 disables migration).
	RebalanceEvery job.Duration
}

// FederationResult is the outcome of one federated chaos scenario.
type FederationResult struct {
	// Records is the merged global schedule in completion order.
	Records []sim.Record
	// Accepted is every admitted job in ID order.
	Accepted []job.Job
	// Rejected counts refused submissions (duplicates, hostile specs
	// and too-wide jobs; every injected one must be refused).
	Rejected int
	// RebuiltShard is the shard that was crashed and rebuilt, -1 when
	// FaultCrashRebuild was off.
	RebuiltShard int
	// Federation is the final per-shard report (its Migrations counter
	// shows whether rebalancing actually moved jobs).
	Federation engine.FederationMetrics
}

// RunFederation executes one federated scenario to completion and
// verifies the cross-shard invariants with oracle.CheckFederation: job
// conservation across migrations and the shard crash, shard-local node
// allocation, and the whole-machine schedule invariants on the merged
// records. A nil error is a machine-checked certificate that the
// federation survived the fault mix intact.
func RunFederation(config FederationConfig) (*FederationResult, error) {
	cfg, err := config.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	if config.Shards < 1 {
		return nil, fmt.Errorf("chaos: %d shards", config.Shards)
	}
	caps, err := federation.PartitionCapacity(cfg.Capacity, config.Shards)
	if err != nil {
		return nil, err
	}
	minCap := caps[len(caps)-1] // partitions are non-increasing

	// The plan's widths are drawn against the narrowest partition so a
	// legitimate job always fits some shard; hostile oversized specs
	// overflow minCap and must be refused (by whole-machine validation
	// or ErrTooWide — either way, refused).
	planCfg := cfg
	planCfg.Capacity = minCap
	p := buildPlan(planCfg)

	vc := engine.NewVirtualClock()
	newPolicy := func(int) sim.Policy {
		pol := cfg.Policy()
		if cfg.Faults&(FaultPolicyPanic|FaultPolicyLatency) != 0 {
			fp := &FlakyPolicy{Inner: pol}
			if cfg.Faults&FaultPolicyPanic != 0 {
				fp.PanicEvery = cfg.PanicEvery
			}
			if cfg.Faults&FaultPolicyLatency != 0 {
				fp.Latency = cfg.Latency
				fp.LatencyEvery = 3
			}
			return fp
		}
		return pol
	}
	router, err := federation.New(federation.Config{
		Capacity:       cfg.Capacity,
		Shards:         config.Shards,
		Policy:         newPolicy,
		Placement:      config.Placement,
		Clock:          vc,
		RebalanceEvery: config.RebalanceEvery,
	})
	if err != nil {
		return nil, err
	}

	h := &harness{}
	for _, ps := range p.submits {
		ps := ps
		vc.AfterFunc(ps.at, func() {
			err := router.SubmitJob(ps.spec)
			h.mu.Lock()
			defer h.mu.Unlock()
			switch {
			case ps.wantErr && err == nil:
				h.fail(fmt.Errorf("chaos: injected-fault submission of job %d was accepted", ps.spec.ID))
			case ps.wantErr:
				h.rejected++
			case err != nil:
				h.fail(fmt.Errorf("chaos: legitimate job %d rejected: %w", ps.spec.ID, err))
			default:
				h.accepted++
			}
		})
	}
	rebuiltShard := -1
	if cfg.Faults&FaultCrashRebuild != 0 {
		rngC := stats.NewRNG(cfg.Seed, 104)
		victim := rngC.IntN(config.Shards)
		vc.AfterFunc(p.crashAt, func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if err := router.RebuildShard(victim); err != nil {
				h.fail(fmt.Errorf("chaos: rebuild shard %d at t=%d: %w", victim, p.crashAt, err))
				return
			}
			rebuiltShard = victim
			h.rebuilt = true
		})
	}

	if cfg.Faults&FaultClockJumps != 0 {
		driveJumps(vc, stats.NewRNG(cfg.Seed, 103))
	} else {
		vc.Run()
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failure != nil {
		return nil, h.failure
	}
	if err := router.Err(); err != nil {
		return nil, err
	}
	res := &FederationResult{
		Records:      router.Records(),
		Rejected:     h.rejected,
		RebuiltShard: rebuiltShard,
		Federation:   router.Federation(),
	}
	for id := 1; id <= cfg.Jobs; id++ {
		st, ok := router.Job(id)
		if !ok {
			return nil, fmt.Errorf("chaos: job %d lost (accepted %d)", id, h.accepted)
		}
		if st.State != engine.StateDone {
			return nil, fmt.Errorf("chaos: job %d still %v after the run", id, st.State)
		}
		res.Accepted = append(res.Accepted, st.Job)
	}
	shardRecs := make([][]sim.Record, router.NumShards())
	for i := range shardRecs {
		shardRecs[i] = router.ShardRecords(i)
	}
	if err := oracle.CheckFederation(cfg.Capacity, router.ShardCapacities(), res.Accepted, shardRecs); err != nil {
		return nil, err
	}
	return res, nil
}
