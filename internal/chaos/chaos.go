// Package chaos is a deterministic, seeded fault injector for the
// online scheduling engine. It drives an engine on a virtual clock
// through a generated workload while injecting faults through the
// engine's public seams — the Clock (jump advancement), the submission
// API (bursts, duplicate IDs, reordered and hostile specs) and the
// Policy interface (injected Decide panics and artificial latency) —
// plus a mid-run crash that rebuilds the engine from its committed
// event journal.
//
// Everything is derived from Config.Seed through independent
// stats.RNG streams, so a scenario replays bit-identically: same seed,
// same faults, same committed schedule. The correctness oracle
// (internal/oracle) observes every committed event and the final
// records are swept again with oracle.CheckRecords, so a Run that
// returns a Result with a nil error is a machine-checked certificate
// that the invariants held under that fault mix.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"schedsearch/internal/core"
	"schedsearch/internal/engine"
	"schedsearch/internal/job"
	"schedsearch/internal/oracle"
	"schedsearch/internal/sim"
	"schedsearch/internal/stats"
)

// Fault is a bitmask of injectable fault classes.
type Fault uint

const (
	// FaultClockJumps drives the virtual clock in irregular seeded
	// leaps that skip far past pending timers instead of stepping
	// event-to-event.
	FaultClockJumps Fault = 1 << iota
	// FaultBurstSubmits collapses arrival gaps so many jobs land on
	// the same instant and a single coalesced decision must absorb
	// the burst.
	FaultBurstSubmits
	// FaultDuplicateIDs re-submits already-admitted job IDs; the
	// engine must reject every duplicate without disturbing state.
	FaultDuplicateIDs
	// FaultReorderedSubmits delivers job specs out of their generated
	// order, so IDs arrive non-monotonically.
	FaultReorderedSubmits
	// FaultHostileSpecs submits malformed jobs (zero or oversized node
	// counts, negative runtimes, invalid IDs) that must all be
	// rejected cleanly.
	FaultHostileSpecs
	// FaultPolicyPanic makes Decide panic on a seeded cadence; the
	// engine must recover with its FCFS fallback.
	FaultPolicyPanic
	// FaultPolicyLatency adds wall-clock latency inside Decide
	// (scheduling outcomes on a virtual clock must not change).
	FaultPolicyLatency
	// FaultCrashRebuild kills the engine mid-run and resumes from a
	// Checkpoint via engine.Rebuild on the same clock.
	FaultCrashRebuild
	// FaultPartition injects wire faults between the router and one
	// out-of-process shard (connection refused, black-hole timeouts,
	// responses dropped after delivery). Only RunFederationRemote
	// honors it; it is deliberately NOT part of AllFaults so the
	// in-process soak matrices keep their historical fault mix.
	FaultPartition
)

// AllFaults enables every fault class.
const AllFaults = FaultClockJumps | FaultBurstSubmits | FaultDuplicateIDs |
	FaultReorderedSubmits | FaultHostileSpecs | FaultPolicyPanic |
	FaultPolicyLatency | FaultCrashRebuild

var faultNames = []struct {
	f    Fault
	name string
}{
	{FaultClockJumps, "clock-jumps"},
	{FaultBurstSubmits, "burst-submits"},
	{FaultDuplicateIDs, "duplicate-ids"},
	{FaultReorderedSubmits, "reordered-submits"},
	{FaultHostileSpecs, "hostile-specs"},
	{FaultPolicyPanic, "policy-panic"},
	{FaultPolicyLatency, "policy-latency"},
	{FaultCrashRebuild, "crash-rebuild"},
	{FaultPartition, "partition"},
}

// String names the enabled fault classes.
func (f Fault) String() string {
	if f == 0 {
		return "none"
	}
	out := ""
	for _, fn := range faultNames {
		if f&fn.f != 0 {
			if out != "" {
				out += "+"
			}
			out += fn.name
		}
	}
	return out
}

// Config describes one chaos scenario.
type Config struct {
	// Seed derives every random choice in the scenario.
	Seed uint64
	// Capacity is the machine size in nodes (default 64).
	Capacity int
	// Jobs is the number of legitimate jobs in the workload
	// (default 120).
	Jobs int
	// Faults selects the injected fault classes.
	Faults Fault
	// Policy constructs the scheduling policy; it is called once per
	// engine incarnation (fresh instance after a crash-rebuild, like a
	// restarted process). Default: a fresh FCFS-backfill-like fallback
	// is NOT assumed — Policy is required.
	Policy func() sim.Policy
	// PanicEvery makes every n-th Decide call panic when
	// FaultPolicyPanic is set (default 5).
	PanicEvery int
	// Latency is the injected wall-clock Decide latency when
	// FaultPolicyLatency is set (default 100µs).
	Latency time.Duration
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Policy == nil {
		return out, errors.New("chaos: Config.Policy is required")
	}
	if out.Capacity == 0 {
		out.Capacity = 64
	}
	if out.Jobs == 0 {
		out.Jobs = 120
	}
	if out.PanicEvery == 0 {
		out.PanicEvery = 5
	}
	if out.Latency == 0 {
		out.Latency = 100 * time.Microsecond
	}
	return out, nil
}

// Result is the outcome of one chaos scenario.
type Result struct {
	// Records is the committed schedule in completion order.
	Records []sim.Record
	// Accepted is every admitted job with its engine-stamped submit
	// time, in ID order.
	Accepted []job.Job
	// Rejected counts submissions the engine refused (duplicates and
	// hostile specs; every injected one must be refused).
	Rejected int
	// Panics is the number of recovered policy panics.
	Panics int64
	// Rebuilt reports whether a crash-rebuild was injected.
	Rebuilt bool
	// Metrics is the final engine metrics snapshot.
	Metrics engine.Metrics
}

// plannedSubmit is one scheduled submission.
type plannedSubmit struct {
	at      job.Time
	spec    job.Job
	wantErr bool
}

// plan is a fully deterministic scenario script.
type plan struct {
	submits []plannedSubmit
	crashAt job.Time
}

// buildPlan derives the scenario script from the seed. Independent RNG
// streams keep the legitimate workload identical whether or not fault
// entries are woven in.
func buildPlan(cfg Config) plan {
	rngW := stats.NewRNG(cfg.Seed, 101) // workload shape
	rngF := stats.NewRNG(cfg.Seed, 102) // fault injection

	n := cfg.Jobs
	arrive := make([]job.Time, n)
	specs := make([]job.Job, n)
	at := job.Time(0)
	burstLeft := 0
	for i := 0; i < n; i++ {
		gap := job.Duration(rngW.IntN(900))
		if cfg.Faults&FaultBurstSubmits != 0 {
			if burstLeft > 0 {
				burstLeft--
				gap = 0
			} else if rngW.IntN(6) == 0 {
				burstLeft = 3 + rngW.IntN(12)
			}
		}
		at += gap
		arrive[i] = at
		rt := job.Duration(1 + rngW.IntN(7200))
		if rngW.IntN(40) == 0 {
			rt = 0 // zero-runtime jobs occupy the machine for one instant
		}
		specs[i] = job.Job{
			ID:      i + 1,
			Nodes:   1 + rngW.IntN(cfg.Capacity),
			Runtime: rt,
			Request: rt + job.Duration(rngW.IntN(3600)),
			User:    rngW.IntN(8),
		}
	}

	// Reordering permutes which spec lands on which arrival slot, so
	// IDs arrive out of order while the arrival-time sequence stays.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if cfg.Faults&FaultReorderedSubmits != 0 {
		for i := n - 1; i > 0; i-- {
			k := rngF.IntN(i + 1)
			order[i], order[k] = order[k], order[i]
		}
	}
	p := plan{}
	arrivedAt := make([]job.Time, n) // by spec index
	for slot := 0; slot < n; slot++ {
		s := order[slot]
		p.submits = append(p.submits, plannedSubmit{at: arrive[slot], spec: specs[s]})
		arrivedAt[s] = arrive[slot]
	}

	if cfg.Faults&FaultDuplicateIDs != 0 {
		for d := 0; d < 1+n/10; d++ {
			victim := rngF.IntN(n)
			dup := specs[victim]
			dup.Nodes = 1 + rngF.IntN(cfg.Capacity) // shape may differ; the ID is the offense
			dup.Runtime = job.Duration(1 + rngF.IntN(600))
			dup.Request = dup.Runtime
			p.submits = append(p.submits, plannedSubmit{
				at:      arrivedAt[victim] + job.Time(rngF.IntN(1200)),
				spec:    dup,
				wantErr: true,
			})
		}
	}
	if cfg.Faults&FaultHostileSpecs != 0 {
		mk := func(mutate func(*job.Job)) plannedSubmit {
			j := job.Job{ID: n + 1000 + rngF.IntN(1000000), Nodes: 1 + rngF.IntN(cfg.Capacity),
				Runtime: 60, Request: 60}
			mutate(&j)
			return plannedSubmit{at: arrive[rngF.IntN(n)], spec: j, wantErr: true}
		}
		for h := 0; h < 1+n/20; h++ {
			switch rngF.IntN(4) {
			case 0:
				p.submits = append(p.submits, mk(func(j *job.Job) { j.Nodes = 0 }))
			case 1:
				p.submits = append(p.submits, mk(func(j *job.Job) { j.Nodes = cfg.Capacity + 1 + rngF.IntN(64) }))
			case 2:
				p.submits = append(p.submits, mk(func(j *job.Job) { j.Runtime = -job.Duration(1 + rngF.IntN(3600)) }))
			case 3:
				p.submits = append(p.submits, mk(func(j *job.Job) { j.ID = -rngF.IntN(3) }))
			}
		}
	}
	// Crash roughly 60% through the arrival timeline, offset so it
	// rarely coincides with an arrival instant (when it does, same-
	// instant ordering is still deterministic: submit timers are
	// registered before the crash timer).
	p.crashAt = arrive[(n*3)/5] + job.Time(rngF.IntN(600))
	return p
}

// harness tracks the current engine incarnation; a crash-rebuild swaps
// it while pending submission timers keep routing to the live one.
type harness struct {
	mu  sync.Mutex
	cur *engine.Engine
	orc *oracle.Oracle

	accepted  int
	rejected  int
	failure   error // first unexpected submit outcome or rebuild error
	panics    int64 // carried across incarnations
	rebuilt   bool
	incarnate func() (*engine.Engine, *oracle.Oracle, error) // rebuild factory
}

func (h *harness) fail(err error) {
	if h.failure == nil {
		h.failure = err
	}
}

// Run executes one scenario to completion and verifies the oracle
// invariants. The returned error is the first engine fatal, oracle
// violation or harness expectation failure; a nil error means the run
// survived the fault mix with every invariant intact.
func Run(config Config) (*Result, error) {
	cfg, err := config.withDefaults()
	if err != nil {
		return nil, err
	}
	p := buildPlan(cfg)
	vc := engine.NewVirtualClock()

	newPolicy := func() sim.Policy {
		pol := cfg.Policy()
		if cfg.Faults&(FaultPolicyPanic|FaultPolicyLatency) != 0 {
			fp := &FlakyPolicy{Inner: pol}
			if cfg.Faults&FaultPolicyPanic != 0 {
				fp.PanicEvery = cfg.PanicEvery
			}
			if cfg.Faults&FaultPolicyLatency != 0 {
				fp.Latency = cfg.Latency
				fp.LatencyEvery = 3
			}
			return fp
		}
		return pol
	}
	engCfg := func() engine.Config {
		return engine.Config{Capacity: cfg.Capacity, Clock: vc}
	}

	h := &harness{}
	ec := engCfg()
	ec.Policy = newPolicy()
	h.orc = oracle.New(cfg.Capacity)
	ec.Observer = h.orc
	h.cur, err = engine.New(ec)
	if err != nil {
		return nil, err
	}

	for _, ps := range p.submits {
		ps := ps
		vc.AfterFunc(ps.at, func() {
			h.mu.Lock()
			e := h.cur
			h.mu.Unlock()
			err := e.SubmitJob(ps.spec)
			h.mu.Lock()
			defer h.mu.Unlock()
			switch {
			case ps.wantErr && err == nil:
				h.fail(fmt.Errorf("chaos: injected-fault submission of job %d was accepted", ps.spec.ID))
			case ps.wantErr:
				h.rejected++
			case err != nil:
				h.fail(fmt.Errorf("chaos: legitimate job %d rejected: %w", ps.spec.ID, err))
			default:
				h.accepted++
			}
		})
	}
	if cfg.Faults&FaultCrashRebuild != 0 {
		vc.AfterFunc(p.crashAt, func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			// The dying engine carries its recovered-panic count into
			// the totals before it is discarded.
			h.panics += h.cur.Metrics().Engine.PolicyPanics
			cp := h.cur.Checkpoint()
			ec := engCfg()
			ec.Policy = newPolicy()
			orc := oracle.New(cfg.Capacity)
			ec.Observer = orc
			rebuilt, err := engine.Rebuild(ec, cp)
			if err != nil {
				h.fail(fmt.Errorf("chaos: rebuild at t=%d: %w", p.crashAt, err))
				return
			}
			h.cur, h.orc, h.rebuilt = rebuilt, orc, true
		})
	}

	if cfg.Faults&FaultClockJumps != 0 {
		driveJumps(vc, stats.NewRNG(cfg.Seed, 103))
	} else {
		vc.Run()
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	e, orc := h.cur, h.orc
	if h.failure != nil {
		return nil, h.failure
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	m := e.Metrics()
	res := &Result{
		Records:  e.Records(),
		Rejected: h.rejected,
		Panics:   h.panics + m.Engine.PolicyPanics,
		Rebuilt:  h.rebuilt,
		Metrics:  m,
	}
	for id := 1; id <= cfg.Jobs; id++ {
		st, ok := e.Job(id)
		if !ok {
			return nil, fmt.Errorf("chaos: job %d lost (accepted %d)", id, h.accepted)
		}
		if st.State != engine.StateDone {
			return nil, fmt.Errorf("chaos: job %d still %v after the run", id, st.State)
		}
		res.Accepted = append(res.Accepted, st.Job)
	}
	// Live invariants, end-of-run conservation, and an independent
	// replay sweep of the committed records.
	if err := orc.Final(); err != nil {
		return nil, err
	}
	if err := oracle.CheckRecords(cfg.Capacity, res.Accepted, res.Records); err != nil {
		return nil, err
	}
	return res, nil
}

// driveJumps advances the virtual clock in seeded irregular leaps: most
// steps go exactly to the next pending timer, but some overshoot far
// past it, forcing the engine to absorb a whole span of completions and
// decisions inside one advancement. Timer callbacks still observe their
// exact due times, so the committed schedule must not change — which is
// precisely the invariant the chaos tests pin down.
func driveJumps(vc *engine.VirtualClock, rng *stats.RNG) {
	for {
		next, ok := vc.NextAt()
		if !ok {
			return
		}
		target := next
		if rng.IntN(3) == 0 {
			target += job.Time(rng.IntN(200000))
		}
		vc.AdvanceTo(target)
	}
}

// FlakyPolicy wraps a policy with deterministic fault injection: every
// PanicEvery-th Decide call panics (before reaching the inner policy,
// so its state stays consistent) and every LatencyEvery-th call sleeps
// for Latency of wall time. Call counting makes the pattern
// reproducible run-to-run.
type FlakyPolicy struct {
	Inner        sim.Policy
	PanicEvery   int
	Latency      time.Duration
	LatencyEvery int

	calls int
}

// Name implements sim.Policy.
func (p *FlakyPolicy) Name() string { return p.Inner.Name() }

// Decide implements sim.Policy with injected faults.
func (p *FlakyPolicy) Decide(snap *sim.Snapshot) []int {
	p.calls++
	if p.Latency > 0 && p.LatencyEvery > 0 && p.calls%p.LatencyEvery == 0 {
		time.Sleep(p.Latency)
	}
	if p.PanicEvery > 0 && p.calls%p.PanicEvery == 0 {
		panic(fmt.Sprintf("chaos: injected policy panic (decision %d)", p.calls))
	}
	return p.Inner.Decide(snap)
}

// LastDecision forwards the inner policy's decision summary so the
// flight recorder sees through the fault-injection wrapper; a wrapped
// non-search policy yields the zero summary (generic records).
func (p *FlakyPolicy) LastDecision() core.DecisionSummary {
	if ds, ok := p.Inner.(interface{ LastDecision() core.DecisionSummary }); ok {
		return ds.LastDecision()
	}
	return core.DecisionSummary{}
}
