package chaos

import (
	"fmt"
	"testing"
)

// TestIngestFaultMatrix runs each ingest fault class in isolation and
// in combination; RunIngest fails on any invariant violation (lost or
// double-committed jobs, an accepted duplicate, unbounded queue
// growth, an oracle violation), so a nil error is the main assertion.
// On top of that, every fault class must demonstrably fire.
func TestIngestFaultMatrix(t *testing.T) {
	cases := []struct {
		name   string
		faults IngestFault
	}{
		{"none", 0},
		{"bursts", IngestFaultBursts},
		{"slow-clients", IngestFaultSlowClients},
		{"disconnects", IngestFaultDisconnects},
		{"duplicate-ids", IngestFaultDuplicates},
		{"quota-storm", IngestFaultQuotaStorm},
		{"everything", AllIngestFaults},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 7} {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				res, err := RunIngest(IngestConfig{Seed: seed, Faults: tc.faults, Policy: fcfs})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Records) == 0 || len(res.Records) != len(res.Accepted) {
					t.Fatalf("%d records for %d accepted jobs", len(res.Records), len(res.Accepted))
				}
				if st := res.Stats; st.PeakPending > st.MaxPending {
					t.Fatalf("peak pending %d exceeded bound %d", st.PeakPending, st.MaxPending)
				}
				if tc.faults&IngestFaultBursts != 0 {
					if res.Shed == 0 {
						t.Error("bursts enabled but no batch was shed")
					}
					if res.Retried != res.Shed {
						t.Errorf("%d shed batches but %d retries landed", res.Shed, res.Retried)
					}
					if res.Stats.Saturations != int64(res.Shed) {
						t.Errorf("stats count %d saturations, driver saw %d",
							res.Stats.Saturations, res.Shed)
					}
				} else if res.Shed != 0 || res.Stats.Saturations != 0 {
					t.Errorf("no burst fault but %d batches shed", res.Shed)
				}
				if tc.faults&IngestFaultDuplicates != 0 && res.DupRejected == 0 {
					t.Error("duplicate injection enabled but none were rejected")
				}
				if tc.faults&IngestFaultDisconnects != 0 && res.Abandoned == 0 {
					t.Error("disconnects enabled but no ticket was abandoned")
				}
				if tc.faults&IngestFaultQuotaStorm != 0 {
					if len(res.QuotaRejected) == 0 {
						t.Error("quota storm enabled but nothing was quota-rejected")
					}
					if res.Stats.QuotaRejected != int64(len(res.QuotaRejected)) {
						t.Errorf("stats count %d quota rejections, driver saw %d",
							res.Stats.QuotaRejected, len(res.QuotaRejected))
					}
				} else if len(res.QuotaRejected) != 0 {
					t.Error("quota rejections without the quota-storm fault")
				}
			})
		}
	}
}

// ingestFingerprint serializes everything an ingest run determines.
func ingestFingerprint(res *IngestResult) string {
	out := fmt.Sprintf("shed=%d dup=%d quota=%v abandoned=%d\n",
		res.Shed, res.DupRejected, res.QuotaRejected, res.Abandoned)
	for _, r := range res.Records {
		out += fmt.Sprintf("job=%d submit=%d start=%d end=%d nodes=%v\n",
			r.Job.ID, r.Job.Submit, r.Start, r.End, r.NodeIDs)
	}
	return out
}

// TestIngestDeterminism replays fault mixes with the same seed and
// requires bit-identical outcomes — committed schedule, shed counts,
// quota-rejected IDs — even though the accept queue runs a concurrent
// committer goroutine. The Flush rendezvous before every clock advance
// is what makes this hold.
func TestIngestDeterminism(t *testing.T) {
	for _, faults := range []IngestFault{
		IngestFaultBursts | IngestFaultDuplicates,
		IngestFaultSlowClients | IngestFaultDisconnects | IngestFaultQuotaStorm,
		AllIngestFaults,
	} {
		faults := faults
		t.Run(faults.String(), func(t *testing.T) {
			t.Parallel()
			cfg := IngestConfig{Seed: 42, Faults: faults, Policy: lxf}
			a, err := RunIngest(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunIngest(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := ingestFingerprint(a), ingestFingerprint(b); fa != fb {
				t.Fatalf("same seed, different outcome:\n--- run 1 ---\n%s--- run 2 ---\n%s", fa, fb)
			}
		})
	}
}

// TestIngestSearchPolicy drives the full fault mix into a search-based
// policy: scheduling cost must not break ingest invariants.
func TestIngestSearchPolicy(t *testing.T) {
	res, err := RunIngest(IngestConfig{Seed: 3, Faults: AllIngestFaults, Policy: dds, Jobs: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no jobs completed")
	}
}

func TestIngestFaultString(t *testing.T) {
	if got := IngestFault(0).String(); got != "none" {
		t.Errorf("zero mask = %q", got)
	}
	if got := (IngestFaultBursts | IngestFaultQuotaStorm).String(); got != "bursts+quota-storm" {
		t.Errorf("mask = %q", got)
	}
	if got := AllIngestFaults.String(); got != "bursts+slow-clients+disconnects+duplicate-ids+quota-storm" {
		t.Errorf("all = %q", got)
	}
}

func TestIngestConfigRequiresPolicy(t *testing.T) {
	if _, err := RunIngest(IngestConfig{Seed: 1}); err == nil {
		t.Fatal("RunIngest accepted a config without a policy")
	}
}
