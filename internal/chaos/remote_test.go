package chaos

import (
	"fmt"
	"testing"

	"schedsearch/internal/federation"
)

// TestRunFederationRemote drives the out-of-process federation chaos
// harness through its full fault mix: real TCP shard servers, a
// whole-process shard kill with a journal-rebuild restart, and
// partition windows (refused connections, black-hole timeouts,
// dropped responses) between the router and one shard. A nil error is
// the machine-checked certificate: no acknowledged job lost, none
// double-admitted, merged schedule oracle-clean.
func TestRunFederationRemote(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := RunFederationRemote(RemoteFederationConfig{
				FederationConfig: FederationConfig{
					Config: Config{
						Seed:   seed,
						Faults: AllFaults | FaultPartition,
						Policy: dds,
						Jobs:   80,
					},
					Shards:         4,
					Placement:      federation.LeastLoaded{},
					RebalanceEvery: 120,
				},
				Dir:          t.TempDir(),
				GossipEvery:  45,
				WorkStealing: true,
			})
			if err != nil {
				t.Fatalf("seed %d: %v (reproduce: chaos.RunFederationRemote with this seed)", seed, err)
			}
			if len(res.Records) == 0 {
				t.Fatal("no jobs completed")
			}
			if res.RebuiltShard < 0 {
				t.Fatal("the shard-process kill/restart never fired")
			}
			if res.PartitionedShard < 0 {
				t.Fatal("no partition windows were injected")
			}
			t.Logf("seed %d: %d completed, %d rejected, %d wire-uncertain, shard %d killed+restarted, shard %d partitioned, %d reroutes, %d migrations, %d steals",
				seed, len(res.Records), res.Rejected, res.Uncertain,
				res.RebuiltShard, res.PartitionedShard, res.Reroutes,
				res.Federation.Migrations, res.Federation.Steals)
		})
	}
}

// TestRunFederationRemotePartitionOnly isolates the partition fault:
// no crash, no policy faults — any job loss or double admission is
// then attributable to the wire-failure handling alone (reroute only
// on certain failures, park-and-reconcile on uncertain ones).
func TestRunFederationRemotePartitionOnly(t *testing.T) {
	res, err := RunFederationRemote(RemoteFederationConfig{
		FederationConfig: FederationConfig{
			Config: Config{
				Seed:   5,
				Faults: FaultPartition,
				Policy: fcfs,
				Jobs:   60,
			},
			Shards:         3,
			Placement:      federation.LeastLoaded{},
			RebalanceEvery: 90,
		},
		Dir:         t.TempDir(),
		GossipEvery: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionedShard < 0 {
		t.Fatal("no partition windows were injected")
	}
	t.Logf("%d completed, %d wire-uncertain, %d reroutes, %d pending at end",
		len(res.Records), res.Uncertain, res.Reroutes, res.Pending)
}

// TestRunFederationRemoteValidation covers the config seams.
func TestRunFederationRemoteValidation(t *testing.T) {
	if _, err := RunFederationRemote(RemoteFederationConfig{
		FederationConfig: FederationConfig{
			Config: Config{Seed: 1, Policy: fcfs},
			Shards: 1,
		},
		Dir: t.TempDir(),
	}); err == nil {
		t.Fatal("1-shard remote federation must be rejected")
	}
	if _, err := RunFederationRemote(RemoteFederationConfig{
		FederationConfig: FederationConfig{
			Config: Config{Seed: 1, Policy: fcfs},
			Shards: 2,
		},
	}); err == nil {
		t.Fatal("missing Dir must be rejected")
	}
	if got := FaultPartition.String(); got != "partition" {
		t.Fatalf("FaultPartition.String() = %q", got)
	}
}
